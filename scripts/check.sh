#!/usr/bin/env bash
# Full hygiene check: build + test the default preset, then the test
# suite again under ASan+UBSan, then (optionally, CHECK_WERROR=1) verify
# the tree is warning-clean with -Werror. CI (.github/workflows/ci.yml)
# runs the same presets.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${CHECK_SKIP_DEFAULT:-0}" != "1" ]]; then
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  ctest --preset default -j "$jobs"
fi

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

if [[ "${CHECK_WERROR:-0}" == "1" ]]; then
  cmake --preset werror
  cmake --build --preset werror -j "$jobs"
fi

echo "check.sh: all green"
