#!/usr/bin/env bash
# Full hygiene check: build + test the default preset, then the test
# suite again under ASan+UBSan, then the concurrency-sensitive suites
# under ThreadSanitizer, then (optionally, CHECK_WERROR=1) verify the
# tree is warning-clean with -Werror. CI (.github/workflows/ci.yml) runs
# the same presets.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${CHECK_SKIP_DEFAULT:-0}" != "1" ]]; then
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  ctest --preset default -j "$jobs"
fi

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

# The parallel verification driver and the engine it fans out, raced
# under TSan, plus the portfolio driver (TMAI prepass, then simplified
# vs Datalog on a shared CancellationToken). Only the concurrency-
# relevant suites are built: the rest of the tree is single-threaded
# and covered by the presets above.
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" \
  --target parallel_differential_test datalog_index_differential_test \
  tmai_soundness_test
ctest --preset tsan -R 'ParallelDifferential|IndexDifferential|TmaiPortfolio' \
  -j "$jobs"

if [[ "${CHECK_WERROR:-0}" == "1" ]]; then
  cmake --preset werror
  cmake --build --preset werror -j "$jobs"
fi

echo "check.sh: all green"
