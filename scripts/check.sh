#!/usr/bin/env bash
# Full hygiene check: build the sanitizer preset and run the test suite
# under ASan+UBSan, then (optionally, CHECK_WERROR=1) verify the tree is
# warning-clean with -Werror.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

if [[ "${CHECK_WERROR:-0}" == "1" ]]; then
  cmake --preset werror
  cmake --build --preset werror -j "$jobs"
fi

echo "check.sh: all green"
