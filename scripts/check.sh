#!/usr/bin/env bash
# Full hygiene check: build + test the default preset, then the test
# suite again under ASan+UBSan, then the concurrency-sensitive suites
# under ThreadSanitizer, then (optionally, CHECK_WERROR=1) verify the
# tree is warning-clean with -Werror. CI (.github/workflows/ci.yml) runs
# the same presets.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${CHECK_SKIP_DEFAULT:-0}" != "1" ]]; then
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  ctest --preset default -j "$jobs"
fi

# The full suite under ASan+UBSan includes the TMAI soundness
# differentials (small-set, relational and auto domains vs the exact
# Datalog backend, plus certificate checking on the catalog) — the
# pair-set/value-set indexing they exercise is exactly what the
# sanitizers watch.
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

# The parallel verification driver and the engine it fans out, raced
# under TSan, plus the portfolio driver (TMAI prepass under the kAuto
# domain — small-set plus the relational retry — then simplified vs
# Datalog on a shared CancellationToken). Only the concurrency-relevant
# suites are built: the rest of the tree is single-threaded and covered
# by the presets above.
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" \
  --target parallel_differential_test datalog_index_differential_test \
  tmai_soundness_test delta_parity_test shard_parity_test
ctest --preset tsan \
  -R 'ParallelDifferential|IndexDifferential|TmaiPortfolio|DeltaParity|ShardParity' \
  -j "$jobs"

# Optional (CHECK_BENCH=1): reproduce the bench_backends tables and gate
# the TMAI domain ablation the way CI does — relational proof rate must
# dominate small-set, all certificates valid, verdict parity. Needs jq.
if [[ "${CHECK_BENCH:-0}" == "1" ]]; then
  cmake --build --preset default -j "$jobs" --target bench_backends
  (cd build && ./bench/bench_backends --json --benchmark_filter=NONE \
    | tee ../BENCH_tables.txt)
  if grep -q MISMATCH BENCH_tables.txt; then
    echo "check.sh: bench ablation produced diverging results" >&2
    exit 1
  fi
  jq -e '.totals.proof_rate_relational >= .totals.proof_rate_smallset
         and .totals.certificates_valid == .totals.certificates_total
         and .totals.parity == "OK"' build/BENCH_tmai_domains.json

  # columnar/delta ablation: verdict parity across the storage/delta
  # arms is a hard gate, and the delta arm must remove at least half the
  # suite's join attempts (or win 1.5x wall clock) vs the hash baseline.
  jq -e '.totals.parity == "OK"
         and ((.totals.join_reduction >= 2.0)
              or (.totals.wall_speedup >= 1.5))
         and .totals.gate == "OK"' build/BENCH_columnar.json

  # serve-mode smoke: three requests through the daemon (one repeated);
  # the repeat must answer from the verdict cache with cache.hits == 1
  # and an identical verdict.
  cmake --build --preset default -j "$jobs" --target rapar_cli bench_serve
  req='{"id":1,"command":"verify","env_file":"examples/programs/mp_writer.rap","dis_files":["examples/programs/mp_reader_stale.rap"]}'
  bad='{"command":"nope"}'
  printf '%s\n' "$req" "$bad" "$req" \
    | ./build/examples/rapar_cli serve --threads 2 > serve_smoke.jsonl
  [[ "$(wc -l < serve_smoke.jsonl)" == "3" ]]
  jq -e -s '([.[] | select(.command == "error")] | length) == 1
            and (.[2].cache == "hit")
            and (.[2].verdict == .[0].verdict)
            and (.[2].telemetry["cache.hits"] == 1)' serve_smoke.jsonl
  rm -f serve_smoke.jsonl

  # serve replay bench: cache hits must be at least 2x faster than cold
  # sessions across the catalog, with verdict parity in every regime.
  (cd build && ./bench/bench_serve --json --benchmark_filter=NONE)
  jq -e '.totals.speedup_hit >= 2 and .totals.parity == "OK"' \
    build/BENCH_serve.json

  # shard scaling: merged-envelope parity is a hard gate; the 4-shard
  # TQBF speedup gate self-reports SKIPPED on < 4 hardware threads.
  jq -e '.totals.parity == "OK" and .totals.gate != "FAIL"' \
    build/BENCH_shards.json

  # multi-process shard smoke: the fork/exec orchestrator end to end,
  # then kill-and-resume through a checkpoint file.
  ./build/examples/rapar_cli verify --backend datalog --shards=2 \
    --format=json \
    --env examples/programs/dekker_env.rap \
    --dis examples/programs/dekker.rap > shard_smoke.json
  jq -e '.verdict == "safe" and .shard.count == 2' shard_smoke.json
  ./build/examples/rapar_cli verify --backend datalog \
    --scan-limit=5 --checkpoint=dekker.cp.json \
    --env examples/programs/dekker_env.rap \
    --dis examples/programs/dekker.rap > /dev/null || true
  ./build/examples/rapar_cli verify --backend datalog \
    --resume=dekker.cp.json --format=json \
    --env examples/programs/dekker_env.rap \
    --dis examples/programs/dekker.rap > resume_smoke.json
  jq -e '.verdict == "safe" and .checkpoint.resume_offset == 5' \
    resume_smoke.json
  rm -f shard_smoke.json resume_smoke.json dekker.cp.json
fi

if [[ "${CHECK_WERROR:-0}" == "1" ]]; then
  cmake --preset werror
  cmake --build --preset werror -j "$jobs"
fi

echo "check.sh: all green"
