// Unit and catalog tests for the thread-modular abstract-interpretation
// backend (src/tmai/): the ValueSet domain, abstract expression
// evaluation and assume-refinement, the SimplSystem adaptation, the
// precision the interference fixpoint must deliver on the benchmark
// catalog (a fixed fraction of the safe cases proven without any guess
// enumeration, and never "safe" on an unsafe case), and the TMAI-backed
// lint notes RA030–RA033.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "core/benchmarks.h"
#include "core/verifier.h"
#include "lang/expr.h"
#include "lang/parser.h"
#include "tmai/certcheck.h"
#include "tmai/domain.h"
#include "tmai/relational.h"
#include "tmai/tmai.h"
#include "tmai/tmai_diagnostics.h"

namespace rapar {
namespace {

using tmai::PairSet;
using tmai::ValueSet;
using tmai::VarVal;

constexpr Value kDom = 4;
constexpr int kLimit = 16;

ValueSet Set(std::initializer_list<Value> vs) {
  ValueSet s;
  for (Value v : vs) s.Insert(v);
  return s;
}

TEST(ValueSetTest, BasicsAndSingleton) {
  ValueSet s = ValueSet::Of(2);
  EXPECT_FALSE(s.top());
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(1));
  Value only = 0;
  EXPECT_TRUE(s.IsSingleton(kDom, &only));
  EXPECT_EQ(only, 2);
  s.Insert(1);
  EXPECT_FALSE(s.IsSingleton(kDom, &only));
  EXPECT_EQ(s.Size(kDom), 2u);

  ValueSet t = ValueSet::Top();
  EXPECT_TRUE(t.top());
  EXPECT_TRUE(t.Contains(3));
  EXPECT_EQ(t.Size(kDom), static_cast<std::size_t>(kDom));
  // A top set over a singleton domain is still a singleton.
  EXPECT_TRUE(t.IsSingleton(1, &only));
  EXPECT_EQ(only, 0);
}

TEST(ValueSetTest, LatticeOperations) {
  ValueSet a = Set({0, 1});
  EXPECT_TRUE(a.UnionWith(Set({2})));
  EXPECT_FALSE(a.UnionWith(Set({1, 2})));  // no change
  EXPECT_EQ(a, Set({0, 1, 2}));

  EXPECT_TRUE(a.SubsetOf(ValueSet::Top()));
  EXPECT_TRUE(Set({1}).SubsetOf(a));
  EXPECT_FALSE(a.SubsetOf(Set({1})));

  ValueSet b = Set({1, 2, 3});
  b.IntersectWith(Set({0, 2}), kDom);
  EXPECT_EQ(b, Set({2}));
  // Intersecting with top materializes nothing away.
  ValueSet c = Set({0, 3});
  c.IntersectWith(ValueSet::Top(), kDom);
  EXPECT_EQ(c, Set({0, 3}));
  // Top ∩ explicit materializes the domain first.
  ValueSet t = ValueSet::Top();
  t.IntersectWith(Set({1, 3}), kDom);
  EXPECT_EQ(t, Set({1, 3}));
}

TEST(ValueSetTest, WidenPushesOversizedSetsToTop) {
  ValueSet a = Set({0, 1, 2});
  a.Widen(3);
  EXPECT_FALSE(a.top());
  a.Insert(3);
  a.Widen(3);
  EXPECT_TRUE(a.top());
}

TEST(EvalExprSetTest, EnumeratesTheProductThroughConcreteEval) {
  std::vector<ValueSet> regs = {Set({1, 2}), Set({1, 3})};
  // r0 + 1 over the value sets: {2, 3}.
  ValueSet sum = tmai::EvalExprSet(*EAdd(EReg(RegId(0)), EConst(1)),
                                   regs, kDom, kLimit);
  EXPECT_EQ(sum, Set({2, 3}));
  // r0 == r1 can go both ways here (only (1,1) is equal): {0, 1}.
  ValueSet eq = tmai::EvalExprSet(*EEq(EReg(RegId(0)), EReg(RegId(1))),
                                  regs, kDom, kLimit);
  EXPECT_EQ(eq, Set({0, 1}));
  // 2 == 2 is constant true regardless of registers.
  ValueSet tt = tmai::EvalExprSet(*EEq(EConst(2), EConst(2)),
                                  regs, kDom, kLimit);
  EXPECT_EQ(tt, Set({1}));
}

TEST(EvalExprSetTest, FallbackWhenTheProductIsTooLarge) {
  // Six top registers over dom 4: 4^6 = 4096 assignments, beyond the
  // enumeration cap — arithmetic falls back to top, comparisons to {0,1}.
  std::vector<ValueSet> regs(6, ValueSet::Top());
  ExprPtr sum = EReg(RegId(0));
  for (int i = 1; i < 6; ++i) sum = EAdd(sum, EReg(RegId(i)));
  EXPECT_TRUE(tmai::EvalExprSet(*sum, regs, kDom, kLimit).top());
  ValueSet cmp = tmai::EvalExprSet(*EEq(sum, EConst(0)), regs, kDom, kLimit);
  EXPECT_EQ(cmp, Set({0, 1}));
}

TEST(RefineAssumeTest, EqualityNarrowsTheRegister) {
  std::vector<ValueSet> regs = {Set({0, 1, 2}), ValueSet::Top()};
  EXPECT_TRUE(tmai::RefineAssume(*ERegEq(RegId(0), 1), regs, kDom, kLimit));
  EXPECT_EQ(regs[0], Set({1}));
  EXPECT_TRUE(regs[1].top());  // untouched
}

TEST(RefineAssumeTest, UnsatisfiableGuardReportsFalse) {
  std::vector<ValueSet> regs = {Set({0, 2})};
  EXPECT_FALSE(tmai::RefineAssume(*ERegEq(RegId(0), 1), regs, kDom, kLimit));
}

TEST(RefineAssumeTest, ConjunctionRefinesBothSides) {
  std::vector<ValueSet> regs = {Set({0, 1}), Set({1, 2})};
  ExprPtr guard = EAnd(ERegEq(RegId(0), 1), ERegEq(RegId(1), 2));
  EXPECT_TRUE(tmai::RefineAssume(*guard, regs, kDom, kLimit));
  EXPECT_EQ(regs[0], Set({1}));
  EXPECT_EQ(regs[1], Set({2}));
}

Program Parse(const std::string& text) {
  Expected<Program> p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.error();
  return std::move(p).value();
}

constexpr char kMpWriter[] = R"(program writer
vars x y
regs one
dom 2
begin
  one := 1;
  y := one;
  x := one
end)";

constexpr char kMpReaderStale[] = R"(program reader
vars x y
regs a b
dom 2
begin
  a := x;
  assume (a == 1);
  b := y;
  assume (b == 0);
  assert false
end)";

ParamSystem MpSystem() {
  Expected<ParamSystem> sys = ParamSystem::Builder()
                                  .Env(Parse(kMpWriter))
                                  .Dis(Parse(kMpReaderStale))
                                  .Build();
  EXPECT_TRUE(sys.ok()) << sys.error();
  return std::move(sys).value();
}

TEST(TmaiSystemTest, FromSimplMarksEnvReplicatedAndCollapsesDuplicates) {
  ParamSystem sys = MpSystem();
  SimplSystem simpl = sys.simpl();
  // Duplicate the dis program: the duplicate must collapse into one
  // replicated entry.
  simpl.dis.push_back(simpl.dis[0]);
  tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(simpl);
  ASSERT_EQ(tsys.threads.size(), 2u);
  EXPECT_EQ(tsys.threads[0].cfa, simpl.env);
  EXPECT_TRUE(tsys.threads[0].replicated);
  EXPECT_EQ(tsys.threads[1].cfa, simpl.dis[0]);
  EXPECT_TRUE(tsys.threads[1].replicated);
  EXPECT_EQ(tsys.num_vars, simpl.num_vars);
}

// The message-passing pair is the canonical precision test: proving the
// reader's stale read impossible requires the acquire snapshot of the
// flag store (reading x=1 implies the writer's y=1 is visible *and its
// own timestamp is passed*, so y=0 is no longer readable).
TEST(TmaiFixpointTest, ProvesMessagePassingSafe) {
  ParamSystem sys = MpSystem();
  tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(sys.simpl());
  tmai::TmaiResult r = tmai::RunTmai(tsys, tmai::TmaiGoal{}, {});
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.safe);
  EXPECT_FALSE(r.assert_reachable);
}

TEST(TmaiFixpointTest, MessageGenerationQuery) {
  ParamSystem sys = MpSystem();
  tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(sys.simpl());
  // (x, 1) is generated — TMAI cannot prove it absent.
  tmai::TmaiGoal gen;
  gen.check_assert = false;
  gen.var = sys.vars().Find("x");
  gen.val = 1;
  EXPECT_FALSE(tmai::RunTmai(tsys, gen, {}).safe);
  // No thread ever stores 0 to x explicitly and the init message does not
  // count as "generated" — but proving a 0-store absent is the degenerate
  // goal the engine must refuse (val 0 is never provable).
  gen.val = 0;
  EXPECT_FALSE(tmai::RunTmai(tsys, gen, {}).safe);
}

TEST(TmaiBackendTest, VerifierIntegration) {
  ParamSystem sys = MpSystem();
  SafetyVerifier verifier(sys);
  VerifierOptions opts;
  opts.backend = Backend::kTmai;
  Verdict v = verifier.Run(std::nullopt, opts);
  EXPECT_TRUE(v.safe());
  EXPECT_EQ(v.backend, "tmai");
  EXPECT_EQ(v.telemetry.counter(obs::metric::kTmaiConverged), 1u);
  EXPECT_GT(v.telemetry.counter(obs::metric::kTmaiIterations), 0u);
}

// Soundness on the catalog: TMAI must never answer safe on a case that
// is actually unsafe, and it must prove a healthy fraction of the safe
// ones without touching the guess enumeration.
TEST(TmaiCatalogTest, NeverSafeOnUnsafeAndProvesSafeFraction) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  suite.push_back(ProducerConsumerSafe(2));
  int safe_total = 0;
  int safe_proved = 0;
  for (const BenchmarkCase& bench : suite) {
    SafetyVerifier verifier(bench.system);
    VerifierOptions opts;
    opts.backend = Backend::kTmai;
    Verdict v = verifier.Run(std::nullopt, opts);
    ASSERT_NE(v.result, Verdict::Result::kUnsafe) << bench.name;
    if (bench.expected_unsafe.value_or(false)) {
      EXPECT_NE(v.result, Verdict::Result::kSafe)
          << bench.name << ": TMAI proved an unsafe case safe";
    } else {
      ++safe_total;
      if (v.safe()) ++safe_proved;
    }
  }
  ASSERT_GT(safe_total, 0);
  // The acceptance bar: at least 30% of the safe catalog proven by the
  // abstraction alone.
  EXPECT_GE(safe_proved * 10, safe_total * 3)
      << "TMAI proved only " << safe_proved << "/" << safe_total
      << " safe catalog cases";
}

// Pin the individual cases the abstraction is known to handle so a
// precision regression names the benchmark it lost.
TEST(TmaiCatalogTest, ProvesKnownSafeCases) {
  const auto proves = [](const BenchmarkCase& bench) {
    SafetyVerifier verifier(bench.system);
    VerifierOptions opts;
    opts.backend = Backend::kTmai;
    return verifier.Run(std::nullopt, opts).safe();
  };
  EXPECT_TRUE(proves(Rcu()));
  EXPECT_TRUE(proves(ChaseLevDeque()));
  EXPECT_TRUE(proves(Seqlock()));
  EXPECT_TRUE(proves(ProducerConsumerSafe(2)));
}

PairSet Pairs(std::initializer_list<VarVal> ps) {
  PairSet s;
  for (VarVal p : ps) s.Insert(p);
  return s;
}

TEST(PairSetTest, BasicsAndMembership) {
  PairSet s = PairSet::Of(VarVal{1, 2});
  EXPECT_FALSE(s.top());
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.Contains(VarVal{1, 2}));
  EXPECT_FALSE(s.Contains(VarVal{2, 1}));
  s.Insert(VarVal{0, 1});
  s.Insert(VarVal{0, 1});  // idempotent
  ASSERT_EQ(s.pairs().size(), 2u);
  // Sorted lexicographically.
  EXPECT_EQ(s.pairs()[0], (VarVal{0, 1}));
  EXPECT_EQ(s.pairs()[1], (VarVal{1, 2}));

  PairSet t = PairSet::Top();
  EXPECT_TRUE(t.top());
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(t.Contains(VarVal{7, 7}));
}

TEST(PairSetTest, MustLatticeOperations) {
  // Union gains information; top absorbs.
  PairSet a = Pairs({{0, 1}});
  EXPECT_TRUE(a.UnionWith(Pairs({{1, 1}})));
  EXPECT_FALSE(a.UnionWith(Pairs({{0, 1}})));  // no growth
  EXPECT_EQ(a, Pairs({{0, 1}, {1, 1}}));
  EXPECT_TRUE(a.UnionWith(PairSet::Top()));
  EXPECT_TRUE(a.top());

  // Intersection is the must-join; top is neutral on either side.
  PairSet b = Pairs({{0, 1}, {1, 1}, {2, 1}});
  EXPECT_FALSE(b.IntersectWith(PairSet::Top()));
  EXPECT_TRUE(b.IntersectWith(Pairs({{1, 1}, {3, 1}})));
  EXPECT_EQ(b, Pairs({{1, 1}}));
  PairSet t = PairSet::Top();
  EXPECT_TRUE(t.IntersectWith(Pairs({{0, 2}})));
  EXPECT_EQ(t, Pairs({{0, 2}}));

  EXPECT_TRUE(Pairs({{1, 1}}).SubsetOf(Pairs({{0, 1}, {1, 1}})));
  EXPECT_FALSE(Pairs({{0, 1}, {1, 1}}).SubsetOf(Pairs({{1, 1}})));
  EXPECT_TRUE(Pairs({{1, 1}}).SubsetOf(PairSet::Top()));
  EXPECT_FALSE(PairSet::Top().SubsetOf(Pairs({{1, 1}})));
}

TEST(PairSetTest, WideningDropsToEmpty) {
  PairSet a = Pairs({{0, 1}, {1, 1}});
  a.Widen(2);
  EXPECT_EQ(a, Pairs({{0, 1}, {1, 1}}));  // within the limit: kept
  a.Widen(1);
  EXPECT_TRUE(a.empty());  // oversized: all must-information dropped
  PairSet t = PairSet::Top();
  t.Widen(8);
  EXPECT_TRUE(t.empty());  // top is never kept as a widening result
}

// The tentpole precision pins: mutual-exclusion protocols the small-set
// domain provably cannot handle (both critical flags are stored, so
// every later load may read them) and the relational domain must.
TEST(TmaiRelationalTest, ProvesMutualExclusionThatSmallSetCannot) {
  for (const BenchmarkCase& bench :
       {PetersonHandover(), DekkerCas(), Spinlock()}) {
    tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(bench.system.simpl());

    tmai::TmaiOptions small;
    small.domain = tmai::Domain::kSmallSet;
    tmai::TmaiResult sr = tmai::RunTmai(tsys, tmai::TmaiGoal{}, small);
    EXPECT_TRUE(sr.converged) << bench.name;
    EXPECT_FALSE(sr.safe) << bench.name << ": small-set should be unknown";

    tmai::TmaiOptions rel;
    rel.domain = tmai::Domain::kRelational;
    tmai::TmaiResult rr = tmai::RunTmai(tsys, tmai::TmaiGoal{}, rel);
    EXPECT_TRUE(rr.safe) << bench.name << ": relational should prove safe";
    EXPECT_EQ(rr.domain_used, tmai::Domain::kRelational);
    EXPECT_GT(rr.pruned_reads, 0u) << bench.name;
    ASSERT_NE(rr.certificate, nullptr) << bench.name;

    tmai::CertCheckResult cc = tmai::CheckCertificate(tsys, *rr.certificate);
    EXPECT_TRUE(cc.valid) << bench.name << ": " << cc.error;
    EXPECT_GT(cc.edges_checked, 0u);

    // kAuto lands on the relational proof.
    tmai::TmaiOptions aut;
    aut.domain = tmai::Domain::kAuto;
    tmai::TmaiResult ar = tmai::RunTmai(tsys, tmai::TmaiGoal{}, aut);
    EXPECT_TRUE(ar.safe) << bench.name;
    EXPECT_EQ(ar.domain_used, tmai::Domain::kRelational) << bench.name;
  }
}

// The relational domain strictly extends the small-set one: everything
// the small-set domain proves stays proved, and certificates are
// emitted under both domains.
TEST(TmaiRelationalTest, KeepsSmallSetProofsAndEmitsCertificates) {
  for (const BenchmarkCase& bench :
       {Rcu(), ChaseLevDeque(), Seqlock(), ProducerConsumerSafe(2)}) {
    tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(bench.system.simpl());
    for (tmai::Domain domain :
         {tmai::Domain::kSmallSet, tmai::Domain::kRelational}) {
      tmai::TmaiOptions opts;
      opts.domain = domain;
      tmai::TmaiResult r = tmai::RunTmai(tsys, tmai::TmaiGoal{}, opts);
      EXPECT_TRUE(r.safe) << bench.name << " under "
                          << tmai::DomainName(domain);
      ASSERT_NE(r.certificate, nullptr) << bench.name;
      EXPECT_EQ(r.certificate->domain, domain);
      tmai::CertCheckResult cc = tmai::CheckCertificate(tsys, *r.certificate);
      EXPECT_TRUE(cc.valid) << bench.name << " under "
                            << tmai::DomainName(domain) << ": " << cc.error;
    }
  }
}

TEST(TmaiRelationalTest, NeverSafeOnUnsafeCatalogCases) {
  for (const BenchmarkCase& bench : StandardBenchmarks()) {
    if (!bench.expected_unsafe.value_or(false)) continue;
    tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(bench.system.simpl());
    tmai::TmaiOptions opts;
    opts.domain = tmai::Domain::kRelational;
    EXPECT_FALSE(tmai::RunTmai(tsys, tmai::TmaiGoal{}, opts).safe)
        << bench.name << ": relational TMAI proved an unsafe case safe";
  }
}

TEST(TmaiCertificateTest, JsonRoundTripPreservesValidity) {
  BenchmarkCase bench = DekkerCas();
  tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(bench.system.simpl());
  tmai::TmaiOptions opts;
  opts.domain = tmai::Domain::kRelational;
  tmai::TmaiResult r = tmai::RunTmai(tsys, tmai::TmaiGoal{}, opts);
  ASSERT_TRUE(r.safe);
  ASSERT_NE(r.certificate, nullptr);

  JsonWriter w;
  tmai::WriteCertificateJson(*r.certificate, &w);
  Expected<JsonValue> parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  Expected<tmai::Certificate> cert =
      tmai::ParseCertificateJson(parsed.value());
  ASSERT_TRUE(cert.ok()) << cert.error();
  tmai::CertCheckResult cc = tmai::CheckCertificate(tsys, cert.value());
  EXPECT_TRUE(cc.valid) << cc.error;

  // Serialization is deterministic: re-rendering the parsed certificate
  // reproduces the bytes.
  JsonWriter w2;
  tmai::WriteCertificateJson(cert.value(), &w2);
  EXPECT_EQ(w.str(), w2.str());
}

TEST(TmaiCertificateTest, CheckerRejectsTamperedCertificates) {
  BenchmarkCase bench = PetersonHandover();
  tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(bench.system.simpl());
  tmai::TmaiOptions opts;
  opts.domain = tmai::Domain::kRelational;
  tmai::TmaiResult r = tmai::RunTmai(tsys, tmai::TmaiGoal{}, opts);
  ASSERT_TRUE(r.safe);
  ASSERT_NE(r.certificate, nullptr);

  {
    // Claiming a must-observation for the init message would let the
    // pruning rules drop reads of messages that always exist.
    tmai::Certificate bad = *r.certificate;
    bad.must.obs[0][0].Insert(VarVal{1, 1});
    EXPECT_FALSE(tmai::CheckCertificate(tsys, bad).valid);
  }
  {
    // Shrinking a store summary breaks table closure.
    tmai::Certificate bad = *r.certificate;
    bool cleared = false;
    for (auto& per_thread : bad.tables.store_vals) {
      for (ValueSet& s : per_thread) {
        if (!s.empty()) {
          s = ValueSet();
          cleared = true;
          break;
        }
      }
      if (cleared) break;
    }
    ASSERT_TRUE(cleared);
    EXPECT_FALSE(tmai::CheckCertificate(tsys, bad).valid);
  }
  {
    // Dropping an invariant disjunct breaks inductiveness (or entry
    // coverage when it was the entry disjunct).
    tmai::Certificate bad = *r.certificate;
    bool dropped = false;
    for (auto& th : bad.threads) {
      for (auto& node : th.invariants) {
        if (!node.empty()) {
          node.clear();
          dropped = true;
          break;
        }
      }
      if (dropped) break;
    }
    ASSERT_TRUE(dropped);
    EXPECT_FALSE(tmai::CheckCertificate(tsys, bad).valid);
  }
  {
    // A certificate for a different system shape is refused outright.
    tmai::Certificate bad = *r.certificate;
    bad.num_vars += 1;
    EXPECT_FALSE(tmai::CheckCertificate(tsys, bad).valid);
  }
}

TEST(TmaiDiagnosticsTest, MpPairYieldsTheFixpointNotes) {
  ParamSystem sys = MpSystem();
  tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(sys.simpl());
  std::vector<std::vector<Diagnostic>> diags = tmai::TmaiLint(tsys);
  ASSERT_EQ(diags.size(), 2u);

  const auto has_code = [](const std::vector<Diagnostic>& ds,
                           const char* code) {
    for (const Diagnostic& d : ds) {
      if (d.code == code) return true;
    }
    return false;
  };
  // Writer: both stores publish constants (RA031).
  EXPECT_TRUE(has_code(diags[0], "RA031"));
  // Reader: the stale-read guard is unsatisfiable (RA030) and the assert
  // behind it is dead (RA032).
  EXPECT_TRUE(has_code(diags[1], "RA030"));
  EXPECT_TRUE(has_code(diags[1], "RA032"));
  // Everything TMAI emits is a note.
  for (const auto& per_thread : diags) {
    for (const Diagnostic& d : per_thread) {
      EXPECT_EQ(d.severity, Severity::kNote) << d.code;
    }
  }
}

}  // namespace
}  // namespace rapar
