// Differential check: cross-guess delta solving (EngineOptions::
// delta_solve) must be invisible in the verdict. Because delta state only
// commits on definitively-negative solves — and every terminating solve
// (goal found or budget blown) is re-run cold with reference semantics —
// verdict, witness_guess, guesses, budget_aborted_guess, exhaustive and
// total_tuples are bit-identical to the snapshot-rollback baseline at
// every thread count and in every storage mode. Join/probe aggregates are
// the documented exception (they depend on which guesses a worker's delta
// chain happens to cover, like index_builds; see the determinism rule in
// encoding/datalog_verifier.h) and are not compared.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>

#include "common/rng.h"
#include "core/benchmarks.h"
#include "encoding/datalog_verifier.h"
#include "lang/random_program.h"

namespace rapar {
namespace {

struct RunConfig {
  unsigned threads = 1;
  bool delta = false;
  dl::StorageMode storage = dl::StorageMode::kHash;
};

DatalogVerdict RunOne(const SimplSystem& sys, const RunConfig& cfg,
                      std::size_t max_tuples,
                      std::optional<std::pair<VarId, Value>> goal = {},
                      std::size_t batch_size = 32) {
  DatalogVerifierOptions opts;
  opts.goal_message = goal;
  opts.guess.max_guesses = 2'000;
  opts.max_tuples_per_query = max_tuples;
  opts.threads = cfg.threads;
  opts.batch_size = batch_size;
  opts.engine.delta_solve = cfg.delta;
  opts.engine.storage = cfg.storage;
  return DatalogVerify(sys, opts);
}

// The delta-invariant slice of the verdict.
void ExpectVerdictIdentical(const DatalogVerdict& base,
                            const DatalogVerdict& v,
                            const std::string& label) {
  EXPECT_EQ(base.unsafe, v.unsafe) << label;
  EXPECT_EQ(base.exhaustive, v.exhaustive) << label;
  EXPECT_EQ(base.witness_guess, v.witness_guess) << label;
  EXPECT_EQ(base.guesses, v.guesses) << label;
  EXPECT_EQ(base.queries_evaluated, v.queries_evaluated) << label;
  EXPECT_EQ(base.budget_aborted_guess, v.budget_aborted_guess) << label;
  EXPECT_EQ(base.total_tuples, v.total_tuples) << label;
  EXPECT_EQ(base.width_report, v.width_report) << label;
  EXPECT_EQ(base.parallel.early_exit_index, v.parallel.early_exit_index)
      << label;
}

const RunConfig kDeltaConfigs[] = {
    {1, true, dl::StorageMode::kHash},
    {2, true, dl::StorageMode::kHash},
    {8, true, dl::StorageMode::kHash},
    {1, true, dl::StorageMode::kAuto},
    {2, true, dl::StorageMode::kAuto},
    {8, true, dl::StorageMode::kAuto},
};

std::string Label(const std::string& name, const RunConfig& cfg) {
  return name + " @" + std::to_string(cfg.threads) +
         (cfg.storage == dl::StorageMode::kAuto ? " auto" : " hash");
}

TEST(DeltaParityTest, BenchmarkCatalogIdenticalToSnapshotRollback) {
  for (BenchmarkCase& bench : StandardBenchmarks()) {
    const DatalogVerdict base =
        RunOne(bench.system.simpl(), RunConfig{}, 500'000);
    for (const RunConfig& cfg : kDeltaConfigs) {
      const DatalogVerdict v = RunOne(bench.system.simpl(), cfg, 500'000);
      ExpectVerdictIdentical(base, v, Label(bench.name, cfg));
    }
  }
}

TEST(DeltaParityTest, DeltaChainActuallyEngagesOnTheCatalog) {
  // Delta state commits after every definitively-negative solve, so a
  // multi-guess scan must report retract/assert work somewhere in the
  // catalog — otherwise the whole suite would be vacuously comparing
  // cold solves.
  std::size_t engaged = 0;
  std::size_t reseeded = 0;
  for (BenchmarkCase& bench : StandardBenchmarks()) {
    const DatalogVerdict v =
        RunOne(bench.system.simpl(),
               RunConfig{1, true, dl::StorageMode::kHash}, 500'000);
    engaged += v.delta_asserts + v.delta_retracts;
    reseeded += v.delta_reseeded_strata;
  }
  EXPECT_GT(engaged, 0u) << "delta never engaged on any catalog bench";
  EXPECT_GT(reseeded, 0u);
}

TEST(DeltaParityTest, BudgetAbortStopsAtTheSameGuess) {
  // max_tuples=3 blows the budget on the first query; the delta path must
  // fall back to the cold abort at the same index with the same stats.
  BenchmarkCase bench = PetersonRa();
  const DatalogVerdict base =
      RunOne(bench.system.simpl(), RunConfig{}, /*max_tuples=*/3);
  ASSERT_NE(base.budget_aborted_guess, kNoGuessIndex);
  EXPECT_FALSE(base.exhaustive);
  for (const RunConfig& cfg : kDeltaConfigs) {
    const DatalogVerdict v =
        RunOne(bench.system.simpl(), cfg, /*max_tuples=*/3);
    ExpectVerdictIdentical(base, v, Label("budget", cfg));
  }
}

TEST(DeltaParityTest, SmallBatchesStressTheEarlyExitOrdering) {
  // batch_size 1 maximizes interleaving; the witness must still be the
  // lowest-enumeration-index one even when workers carry delta chains.
  BenchmarkCase bench = ProducerConsumer(2);
  const DatalogVerdict base = RunOne(bench.system.simpl(), RunConfig{},
                                     500'000, {}, /*batch_size=*/1);
  ASSERT_TRUE(base.unsafe);
  for (const RunConfig& cfg : kDeltaConfigs) {
    const DatalogVerdict v = RunOne(bench.system.simpl(), cfg, 500'000, {},
                                    /*batch_size=*/1);
    ExpectVerdictIdentical(base, v, Label("pc-unsafe", cfg));
  }
}

TEST(DeltaParityTest, RandomSystemsIdenticalAcrossTwoHundredSeeds) {
  // Same corpus as parallel_differential_test: even seeds ask an MG goal
  // (early-exit heavy), odd seeds run assert-false (mostly safe scans).
  int unsafe_seen = 0;
  int exhaustive_seen = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    RandomProgramOptions env_opts;
    env_opts.num_vars = 2;
    env_opts.num_regs = 2;
    env_opts.dom = 3;
    env_opts.size = 5;
    env_opts.allow_cas = false;
    env_opts.allow_loops = false;
    RandomProgramOptions dis_opts = env_opts;
    dis_opts.size = 4;

    Program env = RandomProgram(rng, env_opts, "env");
    Program dis = RandomProgram(rng, dis_opts, "dis");
    Expected<ParamSystem> sys = ParamSystem::Builder()
                                    .Env(std::move(env))
                                    .Dis(std::move(dis))
                                    .Build();
    ASSERT_TRUE(sys.ok()) << "seed " << seed;
    std::optional<std::pair<VarId, Value>> goal;
    if (seed % 2 == 0) {
      const VarId v0 = sys.value().vars().Find("v0");
      ASSERT_TRUE(v0.valid()) << "seed " << seed;
      goal = {v0, static_cast<Value>((seed / 2) % 3)};
    }
    const DatalogVerdict base =
        RunOne(sys.value().simpl(), RunConfig{}, 200'000, goal,
               /*batch_size=*/8);
    for (unsigned threads : {1u, 2u, 8u}) {
      const RunConfig cfg{threads, true, dl::StorageMode::kAuto};
      const DatalogVerdict v =
          RunOne(sys.value().simpl(), cfg, 200'000, goal, /*batch_size=*/8);
      ExpectVerdictIdentical(
          base, v, "seed " + std::to_string(seed) + " @" +
                       std::to_string(threads));
    }
    unsafe_seen += base.unsafe;
    exhaustive_seen += base.exhaustive;
  }
  // The corpus must exercise both early exits and full scans.
  EXPECT_GT(unsafe_seen, 20);
  EXPECT_GT(exhaustive_seen, 100);
}

}  // namespace
}  // namespace rapar
