// Differential check: the Datalog program optimizer (src/dlopt/) must
// never change a verdict. Runs the Datalog backend with dlopt on and off
// across the benchmark catalog and a corpus of random systems, demanding
// identical results whenever both runs are conclusive — the executable
// counterpart of the "verdict-preserving by construction" claim in
// dlopt/optimize.h. Mirrors prepass_differential_test.cpp one layer down.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "core/benchmarks.h"
#include "encoding/datalog_verifier.h"
#include "lang/random_program.h"

namespace rapar {
namespace {

struct Pair {
  DatalogVerdict with;
  DatalogVerdict without;
};

// Calls DatalogVerify directly on the simplified system (no CFA prepass:
// this test isolates the Datalog-level transforms).
Pair VerifyBothWays(const SimplSystem& sys, std::size_t max_guesses,
                    std::size_t max_tuples) {
  DatalogVerifierOptions on;
  on.guess.max_guesses = max_guesses;
  on.max_tuples_per_query = max_tuples;
  on.enable_dlopt = true;
  DatalogVerifierOptions off = on;
  off.enable_dlopt = false;
  return Pair{DatalogVerify(sys, on), DatalogVerify(sys, off)};
}

void ExpectAgreement(const Pair& p, const std::string& label) {
  if (!p.with.exhaustive || !p.without.exhaustive) {
    // An UNSAFE answer is sound even from a capped run; a negative one
    // decides nothing.
    if (p.with.unsafe && p.without.unsafe) {
      return;
    }
    if (!p.with.unsafe && !p.without.unsafe) {
      return;
    }
    // One side found the bug, the other was capped before finding it —
    // only a disagreement if the capped side claims exhaustiveness.
    EXPECT_FALSE(p.with.exhaustive && p.without.exhaustive) << label;
    return;
  }
  EXPECT_EQ(p.with.unsafe, p.without.unsafe)
      << label << ": dlopt changed the verdict (rules "
      << p.with.total_rules << " -> " << p.with.total_rules_after << ")";
}

TEST(DlOptDifferentialTest, BenchmarkCatalogVerdictsUnchanged) {
  std::size_t total_before = 0;
  std::size_t total_after = 0;
  for (BenchmarkCase& bench : StandardBenchmarks()) {
    // Some catalog systems have huge guess spaces; capped runs are still
    // compared (soundly) by ExpectAgreement.
    Pair p = VerifyBothWays(bench.system.simpl(), 2'000, 500'000);
    ExpectAgreement(p, bench.name);
    EXPECT_EQ(p.with.total_rules, p.without.total_rules) << bench.name;
    EXPECT_LE(p.with.total_rules_after, p.with.total_rules) << bench.name;
    EXPECT_FALSE(p.without.dlopt.Any()) << bench.name;
    total_before += p.with.total_rules;
    total_after += p.with.total_rules_after;
  }
  // Across the catalog the optimizer must be doing real work.
  ASSERT_GT(total_before, 0u);
  EXPECT_LT(total_after, total_before);
}

TEST(DlOptDifferentialTest, ProducerConsumerPrunesSubstantially) {
  BenchmarkCase bench = ProducerConsumer(2);
  Pair p = VerifyBothWays(bench.system.simpl(), 2'000, 500'000);
  ExpectAgreement(p, bench.name);
  ASSERT_GT(p.with.total_rules, 0u);
  // The acceptance bar for the makeP family: >= 30% of emitted rules are
  // statically removable (dead control locations + demand cones).
  EXPECT_LE(p.with.total_rules_after * 10, p.with.total_rules * 7)
      << "only " << p.with.total_rules - p.with.total_rules_after << " of "
      << p.with.total_rules << " rules pruned";
  EXPECT_TRUE(p.with.dlopt.Any());
  EXPECT_FALSE(p.with.width_report.empty());
}

TEST(DlOptDifferentialTest, RandomSystemsAgreeAcrossTwoHundredSeeds) {
  int conclusive = 0;
  int pruned = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    RandomProgramOptions env_opts;
    env_opts.num_vars = 2;
    env_opts.num_regs = 2;
    env_opts.dom = 3;
    env_opts.size = 5;
    env_opts.allow_cas = false;
    env_opts.allow_loops = false;
    RandomProgramOptions dis_opts = env_opts;
    dis_opts.size = 4;

    Program env = RandomProgram(rng, env_opts, "env");
    Program dis = RandomProgram(rng, dis_opts, "dis");
    Expected<ParamSystem> sys = ParamSystem::Builder()
                                    .Env(std::move(env))
                                    .Dis(std::move(dis))
                                    .Build();
    ASSERT_TRUE(sys.ok()) << "seed " << seed << ": "
                          << (sys.ok() ? "" : sys.error());
    Pair p = VerifyBothWays(sys.value().simpl(), 500, 200'000);
    ExpectAgreement(p, "seed " + std::to_string(seed));
    conclusive += p.with.exhaustive && p.without.exhaustive;
    pruned += p.with.dlopt.Any();
  }
  // The corpus must actually exercise the comparison and the pruning.
  EXPECT_GT(conclusive, 100);
  EXPECT_GT(pruned, 100);
}

}  // namespace
}  // namespace rapar
