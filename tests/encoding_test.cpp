// Tests for the makeP encoding (§4.1) and the Datalog-backed verifier
// (Theorem 4.1), cross-validated against the saturation explorer.
#include "encoding/datalog_verifier.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datalog/engine.h"
#include "encoding/makep.h"
#include "lang/parser.h"
#include "lang/random_program.h"
#include "simplified/explorer.h"

namespace rapar {
namespace {

struct Sys {
  std::vector<std::unique_ptr<Cfa>> owned;
  SimplSystem sys;
  VarTable vars;
};

Sys MakeSys(const std::string& env_text,
            const std::vector<std::string>& dis_texts) {
  Sys out;
  auto parse = [&](const std::string& text) {
    Expected<Program> p = ParseProgram(text);
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    return std::move(p).value();
  };
  Program env = parse(env_text);
  out.sys.dom = env.dom();
  out.sys.num_vars = env.vars().size();
  out.vars = env.vars();
  out.owned.push_back(std::make_unique<Cfa>(Cfa::Build(env)));
  out.sys.env = out.owned[0].get();
  for (const auto& text : dis_texts) {
    Program d = parse(text);
    out.owned.push_back(std::make_unique<Cfa>(Cfa::Build(d)));
    out.sys.dis.push_back(out.owned.back().get());
  }
  return out;
}

// --- Guess enumeration ---------------------------------------------------

TEST(DisGuessTest, NoDisThreadsYieldsOneEmptyGuess) {
  Sys s = MakeSys(R"(
    program env
    vars x
    regs r
    dom 2
    begin
      r := x
    end
  )", {});
  bool complete = false;
  auto guesses = EnumerateDisGuesses(s.sys, {}, &complete);
  EXPECT_TRUE(complete);
  ASSERT_EQ(guesses.size(), 1u);
  EXPECT_TRUE(guesses[0].threads.empty());
}

TEST(DisGuessTest, LoadBranchesOverDomainAndSources) {
  // One dis thread: a single load of x. Paths: one per domain value.
  // Sources: value 0 -> {init, env}; value 1, 2 -> {env} (no dis store).
  Sys s = MakeSys(R"(
    program env
    vars x
    regs r
    dom 3
    begin
      skip
    end
  )", {R"(
    program dis
    vars x
    regs r
    dom 3
    begin
      r := x
    end
  )"});
  bool complete = false;
  auto guesses = EnumerateDisGuesses(s.sys, {}, &complete);
  EXPECT_TRUE(complete);
  EXPECT_EQ(guesses.size(), 4u);  // (0,init), (0,env), (1,env), (2,env)
}

TEST(DisGuessTest, AssumePrunesInfeasiblePaths) {
  Sys s = MakeSys(R"(
    program env
    vars x
    regs r
    dom 3
    begin
      skip
    end
  )", {R"(
    program dis
    vars x
    regs r
    dom 3
    begin
      r := x;
      assume (r == 2)
    end
  )"});
  bool complete = false;
  auto guesses = EnumerateDisGuesses(s.sys, {}, &complete);
  EXPECT_TRUE(complete);
  // Only the value-2 read survives, and 2 can only come from env.
  ASSERT_EQ(guesses.size(), 1u);
  EXPECT_TRUE(guesses[0].threads[0].steps[0].read_from_env);
  EXPECT_EQ(guesses[0].threads[0].steps[0].read_value, 2);
}

TEST(DisGuessTest, StoreInterleavingsEnumerated) {
  // Two dis threads each storing once to x: two merge orders; each store
  // is a path without reads.
  const char* disA = R"(
    program disA
    vars x
    regs one
    dom 2
    begin
      one := 1;
      x := one
    end
  )";
  Sys s = MakeSys(R"(
    program env
    vars x
    regs r
    dom 2
    begin
      skip
    end
  )", {disA, disA});
  bool complete = false;
  auto guesses = EnumerateDisGuesses(s.sys, {}, &complete);
  EXPECT_TRUE(complete);
  EXPECT_EQ(guesses.size(), 2u);
  for (const DisGuess& g : guesses) {
    EXPECT_EQ(g.StoresOn(0), 2);
  }
}

TEST(DisGuessTest, CasGlueAndAdjacency) {
  Sys s = MakeSys(R"(
    program env
    vars x
    regs r
    dom 3
    begin
      skip
    end
  )", {R"(
    program dis
    vars x
    regs zero one
    dom 3
    begin
      zero := 0;
      one := 1;
      cas(x, zero, one)
    end
  )"});
  bool complete = false;
  auto guesses = EnumerateDisGuesses(s.sys, {}, &complete);
  EXPECT_TRUE(complete);
  // CAS on init (glued) or CAS on an env message with value 0 (no glue).
  ASSERT_EQ(guesses.size(), 2u);
  int glued = 0;
  for (const DisGuess& g : guesses) {
    if (g.mem[0][0].glued) {
      ++glued;
      EXPECT_TRUE(g.GapFrozen(0, 0));
    }
  }
  EXPECT_EQ(glued, 1);
}

// --- makeP structure -------------------------------------------------------

TEST(MakePTest, EmitsCacheDatalogWithAtMostTwoBodyAtoms) {
  Sys s = MakeSys(R"(
    program env
    vars x y
    regs r one
    dom 2
    begin
      one := 1;
      r := x;
      y := one
    end
  )", {R"(
    program dis
    vars x y
    regs one
    dom 2
    begin
      one := 1;
      x := one
    end
  )"});
  bool complete = false;
  auto guesses = EnumerateDisGuesses(s.sys, {}, &complete);
  ASSERT_FALSE(guesses.empty());
  MakePOptions opts;
  opts.goal_message = {s.vars.Find("y"), 1};
  MakePResult q = MakeP(s.sys, guesses[0], opts);
  for (const dl::Rule& r : q.prog->rules()) {
    EXPECT_LE(r.body.size(), 2u);
  }
  // The instance is printable.
  EXPECT_NE(q.prog->ToString().find("emp"), std::string::npos);
}

// --- Verifier end-to-end ----------------------------------------------------

TEST(DatalogVerifierTest, MessagePassingForbidden) {
  const char* env = R"(
    program writer
    vars x y
    regs one
    dom 2
    begin
      one := 1;
      y := one;
      x := one
    end
  )";
  const char* dis = R"(
    program reader
    vars x y
    regs a b
    dom 2
    begin
      a := x;
      assume (a == 1);
      b := y;
      assume (b == 0);
      assert false
    end
  )";
  Sys s = MakeSys(env, {dis});
  DatalogVerdict v = DatalogVerify(s.sys);
  EXPECT_FALSE(v.unsafe);
  EXPECT_TRUE(v.exhaustive);
  EXPECT_GT(v.guesses, 0u);
}

TEST(DatalogVerifierTest, MessagePassingPositive) {
  const char* env = R"(
    program writer
    vars x y
    regs one
    dom 2
    begin
      one := 1;
      y := one;
      x := one
    end
  )";
  const char* dis = R"(
    program reader
    vars x y
    regs a b
    dom 2
    begin
      a := x;
      assume (a == 1);
      b := y;
      assume (b == 1);
      assert false
    end
  )";
  Sys s = MakeSys(env, {dis});
  DatalogVerdict v = DatalogVerify(s.sys);
  EXPECT_TRUE(v.unsafe);
  EXPECT_FALSE(v.witness_guess.empty());
}

TEST(DatalogVerifierTest, EnvOnlyChainGoal) {
  const char* env = R"(
    program chain
    vars x
    regs r s
    dom 4
    begin
      r := x;
      s := r + 1;
      x := s
    end
  )";
  Sys s = MakeSys(env, {});
  DatalogVerifierOptions opts;
  opts.goal_message = {VarId(0), Value(3)};
  DatalogVerdict v = DatalogVerify(s.sys, opts);
  EXPECT_TRUE(v.unsafe);

  opts.goal_message = {VarId(0), Value(0)};  // init value, never stored...
  DatalogVerdict v0 = DatalogVerify(s.sys, opts);
  // ...except by an env thread that read 3 and wrapped around: 3+1 = 0.
  EXPECT_TRUE(v0.unsafe);
}

TEST(DatalogVerifierTest, CasContentionSafe) {
  const char* env = R"(
    program noop
    vars x f1 f2
    regs r
    dom 2
    begin
      skip
    end
  )";
  auto contender = [](const char* flag) {
    return std::string(R"(
      program contender
      vars x f1 f2
      regs zero one
      dom 2
      begin
        zero := 0;
        one := 1;
        cas(x, zero, one);
        )") + flag + R"( := one
      end
    )";
  };
  const char* checker = R"(
    program checker
    vars x f1 f2
    regs a b
    dom 2
    begin
      a := f1;
      assume (a == 1);
      b := f2;
      assume (b == 1);
      assert false
    end
  )";
  Sys s = MakeSys(env, {contender("f1"), contender("f2"), checker});
  DatalogVerdict v = DatalogVerify(s.sys);
  EXPECT_TRUE(v.exhaustive);
  EXPECT_FALSE(v.unsafe);
}

// --- Differential: Datalog backend vs saturation explorer -------------------

class BackendAgreementTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BackendAgreementTest, VerdictsAgree) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  RandomProgramOptions env_opts;
  env_opts.num_vars = 2;
  env_opts.num_regs = 1;
  env_opts.dom = 2;
  env_opts.size = 3;
  RandomProgramOptions dis_opts = env_opts;
  dis_opts.size = 3;
  dis_opts.allow_cas = (seed % 3 == 0);

  Program env = RandomProgram(rng, env_opts, "env");
  Program dis = RandomProgram(rng, dis_opts, "dis");

  Sys s;
  s.owned.push_back(std::make_unique<Cfa>(Cfa::Build(env)));
  s.owned.push_back(std::make_unique<Cfa>(Cfa::Build(dis)));
  s.sys.env = s.owned[0].get();
  s.sys.dis = {s.owned[1].get()};
  s.sys.dom = env_opts.dom;
  s.sys.num_vars = env_opts.num_vars;

  // Goal: is the message (v0, 1) generable?
  const std::pair<VarId, Value> goal{VarId(0), Value(1)};

  SimplExplorer ex(s.sys);
  SimplExplorerOptions eopts;
  eopts.goal = goal;
  eopts.max_states = 60'000;
  eopts.time_budget_ms = 10'000;
  SimplResult er = ex.Check(eopts);
  if (!er.goal_reached && !er.exhaustive) {
    GTEST_SKIP() << "explorer inconclusive";
  }

  DatalogVerifierOptions dopts;
  dopts.goal_message = goal;
  dopts.guess.max_guesses = 50'000;
  DatalogVerdict dv = DatalogVerify(s.sys, dopts);
  if (!dv.unsafe && !dv.exhaustive) GTEST_SKIP() << "guess cap hit";

  EXPECT_EQ(er.goal_reached, dv.unsafe) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Corpus, BackendAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 30));

}  // namespace
}  // namespace rapar
