// Cache Datalog tests: bounded-cache derivability (⊢_k), minimal cache
// size, and the Lemma 4.2 cache-to-linear transformation.
#include "datalog/cache.h"

#include <gtest/gtest.h>

#include "datalog/cache_to_linear.h"
#include "datalog/engine.h"

namespace rapar::dl {
namespace {

// A chain derivation: p0 -> p1 -> ... -> pn, each step consuming only the
// previous atom. A cache of size 1 suffices (drop after use... actually
// the body atom must be cached while firing, and the head needs a slot, so
// size 2).
struct ChainProgram {
  Program prog;
  std::vector<PredId> preds;

  explicit ChainProgram(int n) {
    for (int i = 0; i <= n; ++i) {
      preds.push_back(prog.AddPred("p" + std::to_string(i), 0));
    }
    prog.AddFact(Atom{preds[0], {}});
    for (int i = 0; i < n; ++i) {
      prog.AddRule(Rule{Atom{preds[i + 1], {}}, {Atom{preds[i], {}}}, {}});
    }
  }
};

TEST(CacheDatalogTest, ChainNeedsCacheTwo) {
  ChainProgram chain(5);
  const Atom goal{chain.preds[5], {}};
  EXPECT_FALSE(CacheQuery(chain.prog, goal, 1).derivable);
  EXPECT_TRUE(CacheQuery(chain.prog, goal, 2).derivable);
  EXPECT_EQ(MinimalCacheSize(chain.prog, goal, 5), 2);
}

// A join derivation: goal :- a, b. Both a and b must be cached
// simultaneously, plus a slot for the goal.
TEST(CacheDatalogTest, JoinNeedsCacheThree) {
  Program prog;
  PredId a = prog.AddPred("a", 0);
  PredId b = prog.AddPred("b", 0);
  PredId g = prog.AddPred("g", 0);
  prog.AddFact(Atom{a, {}});
  prog.AddFact(Atom{b, {}});
  prog.AddRule(Rule{Atom{g, {}}, {Atom{a, {}}, Atom{b, {}}}, {}});
  const Atom goal{g, {}};
  EXPECT_FALSE(CacheQuery(prog, goal, 2).derivable);
  EXPECT_TRUE(CacheQuery(prog, goal, 3).derivable);
  EXPECT_EQ(MinimalCacheSize(prog, goal, 5), 3);
}

TEST(CacheDatalogTest, UnderivableGoal) {
  ChainProgram chain(3);
  Program& prog = chain.prog;
  PredId orphan = prog.AddPred("orphan", 0);
  const Atom goal{orphan, {}};
  EXPECT_FALSE(CacheQuery(prog, goal, 10).derivable);
  EXPECT_EQ(MinimalCacheSize(prog, goal, 10), std::nullopt);
}

TEST(CacheDatalogTest, UnboundedCacheMatchesStandardDatalog) {
  // With k at least the total number of derivable atoms, ⊢_k coincides
  // with standard derivability.
  ChainProgram chain(4);
  const Atom goal{chain.preds[4], {}};
  EXPECT_EQ(Query(chain.prog, goal), CacheQuery(chain.prog, goal, 10).derivable);
}

TEST(CacheDatalogTest, DropEnablesLongDerivationsInSmallCache) {
  // Diamond: top; left :- top; right :- top; bottom :- left, right.
  // Cache 3 suffices: {top, left}, then derive right (cache full ->
  // drop top), {left, right}, derive bottom.
  Program prog;
  PredId top = prog.AddPred("top", 0);
  PredId left = prog.AddPred("left", 0);
  PredId right = prog.AddPred("right", 0);
  PredId bottom = prog.AddPred("bottom", 0);
  prog.AddFact(Atom{top, {}});
  prog.AddRule(Rule{Atom{left, {}}, {Atom{top, {}}}, {}});
  prog.AddRule(Rule{Atom{right, {}}, {Atom{top, {}}}, {}});
  prog.AddRule(
      Rule{Atom{bottom, {}}, {Atom{left, {}}, Atom{right, {}}}, {}});
  const Atom goal{bottom, {}};
  EXPECT_TRUE(CacheQuery(prog, goal, 3).derivable);
  EXPECT_FALSE(CacheQuery(prog, goal, 2).derivable);
}

TEST(CacheDatalogTest, VariablesAndConstants) {
  Program prog;
  PredId e = prog.AddPred("e", 2);
  PredId r = prog.AddPred("r", 2);
  Sym a = prog.ConstSym("a");
  Sym b = prog.ConstSym("b");
  Sym c = prog.ConstSym("c");
  prog.AddFact(Atom{e, {C(a), C(b)}});
  prog.AddFact(Atom{e, {C(b), C(c)}});
  prog.AddRule(Rule{Atom{r, {V(0), V(1)}}, {Atom{e, {V(0), V(1)}}}, {}});
  prog.AddRule(Rule{Atom{r, {V(0), V(2)}},
                    {Atom{r, {V(0), V(1)}}, Atom{e, {V(1), V(2)}}},
                    {}});
  EXPECT_TRUE(CacheQuery(prog, Atom{r, {C(a), C(c)}}, 4).derivable);
  EXPECT_FALSE(CacheQuery(prog, Atom{r, {C(c), C(a)}}, 4).derivable);
}

// --- Lemma 4.2: cache -> linear --------------------------------------------

TEST(CacheToLinearTest, ProducesLinearProgram) {
  ChainProgram chain(3);
  LinearisedQuery lin = CacheToLinear(chain.prog, Atom{chain.preds[3], {}}, 2);
  EXPECT_TRUE(lin.prog.IsLinear());
}

TEST(CacheToLinearTest, AgreesWithCacheQueryOnChain) {
  ChainProgram chain(4);
  const Atom goal{chain.preds[4], {}};
  for (int k = 1; k <= 3; ++k) {
    LinearisedQuery lin = CacheToLinear(chain.prog, goal, k);
    EXPECT_EQ(Query(lin.prog, lin.goal),
              CacheQuery(chain.prog, goal, k).derivable)
        << "k=" << k;
  }
}

TEST(CacheToLinearTest, AgreesOnJoin) {
  Program prog;
  PredId a = prog.AddPred("a", 0);
  PredId b = prog.AddPred("b", 0);
  PredId g = prog.AddPred("g", 0);
  prog.AddFact(Atom{a, {}});
  prog.AddFact(Atom{b, {}});
  prog.AddRule(Rule{Atom{g, {}}, {Atom{a, {}}, Atom{b, {}}}, {}});
  const Atom goal{g, {}};
  for (int k = 2; k <= 4; ++k) {
    LinearisedQuery lin = CacheToLinear(prog, goal, k);
    EXPECT_EQ(Query(lin.prog, lin.goal),
              CacheQuery(prog, goal, k).derivable)
        << "k=" << k;
  }
}

TEST(CacheToLinearTest, AgreesWithVariablesAndArity) {
  Program prog;
  PredId e = prog.AddPred("e", 2);
  PredId r = prog.AddPred("r", 2);
  Sym a = prog.ConstSym("a");
  Sym b = prog.ConstSym("b");
  Sym c = prog.ConstSym("c");
  prog.AddFact(Atom{e, {C(a), C(b)}});
  prog.AddFact(Atom{e, {C(b), C(c)}});
  prog.AddRule(Rule{Atom{r, {V(0), V(1)}}, {Atom{e, {V(0), V(1)}}}, {}});
  prog.AddRule(Rule{Atom{r, {V(0), V(2)}},
                    {Atom{r, {V(0), V(1)}}, Atom{e, {V(1), V(2)}}},
                    {}});
  const Atom goal{r, {C(a), C(c)}};
  for (int k = 2; k <= 4; ++k) {
    LinearisedQuery lin = CacheToLinear(prog, goal, k);
    EXPECT_EQ(Query(lin.prog, lin.goal),
              CacheQuery(prog, goal, k).derivable)
        << "k=" << k;
  }
  // And an underivable goal stays underivable.
  LinearisedQuery lin = CacheToLinear(prog, Atom{r, {C(c), C(a)}}, 4);
  EXPECT_FALSE(Query(lin.prog, lin.goal));
}

TEST(CacheToLinearTest, SizeGrowsPolynomially) {
  ChainProgram chain(6);
  const Atom goal{chain.preds[6], {}};
  std::size_t prev = 0;
  for (int k = 1; k <= 4; ++k) {
    LinearisedQuery lin = CacheToLinear(chain.prog, goal, k);
    EXPECT_GT(lin.prog.size(), prev);
    // O(|Prog| * k^2) for unary-body rules plus k drop/goal rules.
    EXPECT_LE(lin.prog.size(),
              chain.prog.size() * static_cast<std::size_t>(k) * k + 3u * k + 1u);
    prev = lin.prog.size();
  }
}

}  // namespace
}  // namespace rapar::dl
