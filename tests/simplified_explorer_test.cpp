// End-to-end tests of the saturating explorer for the simplified
// semantics: parameterized litmus behaviours, Figure 3, CAS interaction,
// MG goals, policy equivalence on these instances.
#include "simplified/explorer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lang/parser.h"
#include "lang/unroll.h"

namespace rapar {
namespace {

struct Sys {
  std::vector<std::unique_ptr<Cfa>> owned;
  SimplSystem sys;
};

// Builds a parameterized system from program texts: first the env
// template, then the dis programs. All must declare the same vars/dom.
Sys MakeSys(const std::string& env_text,
            const std::vector<std::string>& dis_texts) {
  Sys out;
  auto parse = [&](const std::string& text) {
    Expected<Program> p = ParseProgram(text);
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    return std::move(p).value();
  };
  Program env = parse(env_text);
  out.sys.dom = env.dom();
  out.sys.num_vars = env.vars().size();
  out.owned.push_back(std::make_unique<Cfa>(Cfa::Build(env)));
  out.sys.env = out.owned[0].get();
  for (const auto& text : dis_texts) {
    Program d = parse(text);
    EXPECT_EQ(d.dom(), out.sys.dom);
    EXPECT_EQ(d.vars().size(), out.sys.num_vars);
    out.owned.push_back(std::make_unique<Cfa>(Cfa::Build(d)));
    out.sys.dis.push_back(out.owned.back().get());
  }
  return out;
}

SimplResult RunSimpl(const Sys& s, SimplExplorerOptions opts = {}) {
  SimplExplorer ex(s.sys);
  return ex.Check(opts);
}

// --- Parameterized message passing ------------------------------------------

TEST(SimplifiedLitmusTest, MessagePassingStillForbidden) {
  // env writers: y := 1; x := 1. dis reader: x == 1 then y == 0 must be
  // impossible even with unboundedly many writers.
  const char* env = R"(
    program writer
    vars x y
    regs one
    dom 2
    begin
      one := 1;
      y := one;
      x := one
    end
  )";
  const char* dis = R"(
    program reader
    vars x y
    regs a b
    dom 2
    begin
      a := x;
      assume (a == 1);
      b := y;
      assume (b == 0);
      assert false
    end
  )";
  SimplResult r = RunSimpl(MakeSys(env, {dis}));
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

TEST(SimplifiedLitmusTest, MessagePassingPositiveReachable) {
  const char* env = R"(
    program writer
    vars x y
    regs one
    dom 2
    begin
      one := 1;
      y := one;
      x := one
    end
  )";
  const char* dis = R"(
    program reader
    vars x y
    regs a b
    dom 2
    begin
      a := x;
      assume (a == 1);
      b := y;
      assume (b == 1);
      assert false
    end
  )";
  SimplResult r = RunSimpl(MakeSys(env, {dis}));
  EXPECT_TRUE(r.violation);
  EXPECT_FALSE(r.witness.empty());
}

// --- Figure 3: unbounded consumption from env producers ---------------------

// Producer: wait for the start flag, read the counter, increment, store.
const char* kProducer = R"(
  program producer
  vars x y
  regs r s
  dom 8
  begin
    r := y;
    assume (r == 1);
    s := x;
    s := s + 1;
    x := s
  end
)";

// Consumer for bound z: store y := 1, then read x expecting 1, 2, ..., z.
std::string ConsumerForZ(int z) {
  std::string body = "  one := 1;\n  y := one;\n";
  for (int i = 1; i <= z; ++i) {
    body += "  s := x;\n  assume (s == " + std::to_string(i) + ");\n";
  }
  body += "  assert false\n";
  return "program consumer\nvars x y\nregs s one\ndom 8\nbegin\n" + body +
         "end\n";
}

TEST(SimplifiedFigure3Test, ConsumerReadsIncreasingValues) {
  for (int z = 1; z <= 4; ++z) {
    SimplResult r = RunSimpl(MakeSys(kProducer, {ConsumerForZ(z)}));
    EXPECT_TRUE(r.violation) << "z=" << z;
  }
}

TEST(SimplifiedFigure3Test, ValueAboveProducerChainUnreachable) {
  // Producers read x (init 0 or producer messages), so values 1..7 are all
  // generable, but only in increasing chains; a consumer demanding value 2
  // before any 1 exists is still fine (chains grow independently), yet a
  // consumer demanding value 0 from a producer message can only read init.
  const char* consumer = R"(
    program consumer
    vars x y
    regs s one
    dom 8
    begin
      one := 1;
      y := one;
      s := x;
      assume (s == 2);
      s := x;
      assume (s == 1);
      assert false
    end
  )";
  // Reading 2 then 1 is fine in the simplified semantics: 1 is an env
  // message, and env messages ignore timestamp checks (a fresh clone's
  // timestamp can always be promoted above the reader's view).
  SimplResult r = RunSimpl(MakeSys(kProducer, {consumer}));
  EXPECT_TRUE(r.violation);
}

TEST(SimplifiedFigure3Test, GoalMessageQuery) {
  // MG formulation: is a message (x, 3) generable?
  Sys s = MakeSys(kProducer, {ConsumerForZ(1)});
  SimplExplorerOptions opts;
  opts.goal = {VarId(0), Value(3)};
  SimplResult r = RunSimpl(s, opts);
  EXPECT_TRUE(r.goal_reached);
  EXPECT_FALSE(r.witness.empty());
}

// --- Env-only systems ---------------------------------------------------------

TEST(SimplifiedEnvOnlyTest, EnvChainAcrossClones) {
  // Each env thread advances the chain by one; the parameterized system
  // reaches the top value even though each thread stores once.
  const char* env = R"(
    program chain
    vars x
    regs r s
    dom 5
    begin
      r := x;
      s := r + 1;
      x := s;
      r := x;
      assume (r == 4);
      assert false
    end
  )";
  SimplResult r = RunSimpl(MakeSys(env, {}));
  EXPECT_TRUE(r.violation);
}

TEST(SimplifiedEnvOnlyTest, UnproducedValueStaysUnreachable) {
  const char* env = R"(
    program writer
    vars x
    regs one r
    dom 4
    begin
      one := 1;
      x := one;
      r := x;
      assume (r == 3);
      assert false
    end
  )";
  SimplResult r = RunSimpl(MakeSys(env, {}));
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

// --- CAS by dis threads --------------------------------------------------------

TEST(SimplifiedCasTest, TwoDisCasOnInitOnlyOneSucceeds) {
  const char* env = R"(
    program noop
    vars x f1 f2
    regs r
    dom 2
    begin
      skip
    end
  )";
  auto contender = [](const char* flag) {
    return std::string(R"(
      program contender
      vars x f1 f2
      regs zero one
      dom 2
      begin
        zero := 0;
        one := 1;
        cas(x, zero, one);
        )") + flag + R"( := one
      end
    )";
  };
  const char* checker = R"(
    program checker
    vars x f1 f2
    regs a b
    dom 2
    begin
      a := f1;
      assume (a == 1);
      b := f2;
      assume (b == 1);
      assert false
    end
  )";
  SimplResult r = RunSimpl(MakeSys(
      env, {contender("f1"), contender("f2"), checker}));
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

TEST(SimplifiedCasTest, DisCasOnEnvMessage) {
  // env publishes 1; dis CAS(x, 1, 2) must succeed (clone adjacency), and
  // unboundedly many env messages do not block it.
  const char* env = R"(
    program pub
    vars x
    regs one
    dom 4
    begin
      one := 1;
      x := one
    end
  )";
  const char* dis = R"(
    program casser
    vars x
    regs one two r
    dom 4
    begin
      one := 1;
      two := 2;
      cas(x, one, two);
      r := x;
      assume (r == 2);
      assert false
    end
  )";
  SimplResult r = RunSimpl(MakeSys(env, {dis}));
  EXPECT_TRUE(r.violation);
}

TEST(SimplifiedCasTest, EnvCannotInvadeFrozenGap) {
  // dis CAS(x, 0, 1) freezes gap 0. An env store on x afterwards cannot
  // produce a message readable "between" the pair: a reader that saw the
  // CAS store can never read x == 0 again, and a reader that reads the env
  // message gets a view above the CAS pair or in a higher gap — never
  // between. Observable: after dis reads its own CAS result, reading 0 is
  // impossible even though env stores 0.
  const char* env = R"(
    program storer0
    vars x y
    regs zero
    dom 2
    begin
      zero := 0;
      x := zero
    end
  )";
  const char* dis = R"(
    program casser
    vars x y
    regs zero one r
    dom 2
    begin
      zero := 0;
      one := 1;
      cas(x, zero, one);
      r := x;
      assume (r == 0);
      assert false
    end
  )";
  // After the CAS the dis thread's view is at the CAS store; env messages
  // with value 0 exist but any clone the dis thread could read has a
  // timestamp above its view... which is allowed! Env clones can always be
  // promoted above. So reading 0 IS possible here (from an env message
  // stored after the CAS, in a higher gap). This distinguishes env
  // messages from the init message.
  SimplResult r = RunSimpl(MakeSys(env, {dis}));
  EXPECT_TRUE(r.violation);
}

TEST(SimplifiedCasTest, InitUnreadableAfterCas) {
  // Without env stores of 0, reading 0 after one's own CAS is impossible:
  // the only 0-message is init, below the CAS pair.
  const char* env = R"(
    program noop
    vars x
    regs r
    dom 2
    begin
      skip
    end
  )";
  const char* dis = R"(
    program casser
    vars x
    regs zero one r
    dom 2
    begin
      zero := 0;
      one := 1;
      cas(x, zero, one);
      r := x;
      assume (r == 0);
      assert false
    end
  )";
  SimplResult r = RunSimpl(MakeSys(env, {dis}));
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

// --- Policies -------------------------------------------------------------------

TEST(SimplifiedPolicyTest, MinimalAndAllAgreeOnVerdicts) {
  struct Case {
    const char* env;
    std::vector<std::string> dis;
    bool expect_violation;
  };
  std::vector<Case> cases = {
      {kProducer, {ConsumerForZ(2)}, true},
      {kProducer, {ConsumerForZ(3)}, true},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    Sys s = MakeSys(cases[i].env, cases[i].dis);
    for (ViewChoice policy : {ViewChoice::kMinimal, ViewChoice::kAll}) {
      SimplExplorerOptions opts;
      opts.policy = policy;
      SimplResult r = RunSimpl(s, opts);
      EXPECT_EQ(r.violation, cases[i].expect_violation)
          << "case " << i << " policy " << static_cast<int>(policy);
    }
  }
}

// --- Witness replay ---------------------------------------------------------------

TEST(SimplifiedWitnessTest, WitnessReplaysToViolation) {
  Sys s = MakeSys(kProducer, {ConsumerForZ(2)});
  SimplResult r = RunSimpl(s);
  ASSERT_TRUE(r.violation);
  ASSERT_FALSE(r.witness.empty());
  SimplConfig final_cfg;
  std::vector<StepEffect> effects =
      ReplayWitness(s.sys, r.witness, &final_cfg);
  EXPECT_EQ(effects.size(), r.witness.size());
  // The witness contains at least: y := 1 (dis store), two env stores of
  // increasing values, two dis loads.
  int env_writes = 0, dis_writes = 0, reads = 0;
  for (const StepEffect& e : effects) {
    if (e.wrote && e.wrote_is_env) ++env_writes;
    if (e.wrote && !e.wrote_is_env) ++dis_writes;
    if (e.read) ++reads;
  }
  EXPECT_GE(env_writes, 2);
  EXPECT_GE(dis_writes, 1);
  EXPECT_GE(reads, 4);
}

TEST(SimplifiedWitnessTest, ExplorerStatsPopulated) {
  Sys s = MakeSys(kProducer, {ConsumerForZ(1)});
  SimplExplorer ex(s.sys);
  SimplExplorerOptions opts;
  opts.stop_on_violation = false;
  SimplResult r = ex.Check(opts);
  EXPECT_TRUE(r.violation);
  EXPECT_GT(r.states, 1u);
  // de-abstraction queries populated.
  EXPECT_FALSE(ex.reachable_env_de().empty());
  EXPECT_FALSE(ex.reachable_dis_de().empty());
  EXPECT_FALSE(ex.generated_messages().empty());
}

}  // namespace
}  // namespace rapar
