// Unit tests for SimplConfig: abstract timestamps, insertion/renumbering,
// gap freezing, monotone sets, covering.
#include "simplified/simpl_config.h"

#include <gtest/gtest.h>

#include "simplified/abs_time.h"

namespace rapar {
namespace {

TEST(AbsTimeTest, EncodingAndOrder) {
  // 0 < 0+ < 1 < 1+ < 2 ...
  EXPECT_LT(DisTs(0), PlusTs(0));
  EXPECT_LT(PlusTs(0), DisTs(1));
  EXPECT_LT(DisTs(1), PlusTs(1));
  EXPECT_TRUE(IsDis(DisTs(3)));
  EXPECT_TRUE(IsPlus(PlusTs(3)));
  EXPECT_EQ(GapOf(DisTs(3)), 3);
  EXPECT_EQ(GapOf(PlusTs(3)), 3);
  EXPECT_EQ(AbsTsToString(DisTs(2)), "2");
  EXPECT_EQ(AbsTsToString(PlusTs(2)), "2+");
}

class SimplConfigTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kVars = 2;
  VarId x_{0};
  VarId y_{1};
  SimplConfig cfg_{kVars, /*env_regs=*/1, /*dis_regs=*/{1}};
};

TEST_F(SimplConfigTest, InitialState) {
  EXPECT_EQ(cfg_.NumGaps(x_), 1);  // just the init message
  EXPECT_EQ(cfg_.DisMsgsOf(x_).size(), 1u);
  EXPECT_EQ(cfg_.DisMsgsOf(x_)[0].val, kInitValue);
  EXPECT_EQ(cfg_.env_cfgs().size(), 1u);
  EXPECT_EQ(cfg_.dis_threads().size(), 1u);
  EXPECT_FALSE(cfg_.GapFrozen(x_, 0));
}

TEST_F(SimplConfigTest, PlainStoreInsertsAboveGapItems) {
  // Put an env message into gap 0 of x.
  EnvMsg em;
  em.var = x_;
  em.val = 1;
  em.view = View(kVars);
  em.view.Set(x_, PlusTs(0));
  ASSERT_TRUE(cfg_.AddEnvMsg(em));

  // Plain dis store into gap 0: env item stays at 0+, store becomes dis 1.
  View base(kVars);
  AbsTs ts = cfg_.InsertDisMsg(x_, 0, 2, base, /*cas_on_dis=*/false);
  EXPECT_EQ(ts, DisTs(1));
  EXPECT_EQ(cfg_.env_msgs()[0].ts(), PlusTs(0));
  EXPECT_EQ(cfg_.DisMsgsOf(x_)[1].val, 2);
  EXPECT_FALSE(cfg_.DisMsgsOf(x_)[1].glued);
  EXPECT_FALSE(cfg_.GapFrozen(x_, 0));
}

TEST_F(SimplConfigTest, CasOnDisMovesGapItemsUpAndFreezes) {
  EnvMsg em;
  em.var = x_;
  em.val = 1;
  em.view = View(kVars);
  em.view.Set(x_, PlusTs(0));
  ASSERT_TRUE(cfg_.AddEnvMsg(em));

  // CAS load init (t = 0), store value 3.
  View base(kVars);
  AbsTs ts = cfg_.InsertDisMsg(x_, 0, 3, base, /*cas_on_dis=*/true);
  EXPECT_EQ(ts, DisTs(1));
  // Adjacency: the env item moved above the CAS store (gap 1).
  EXPECT_EQ(cfg_.env_msgs()[0].ts(), PlusTs(1));
  // Gap 0 is frozen now.
  EXPECT_TRUE(cfg_.GapFrozen(x_, 0));
  EXPECT_FALSE(cfg_.GapFrozen(x_, 1));
  EXPECT_EQ(cfg_.NextFreeGap(x_, 0), 1);
}

TEST_F(SimplConfigTest, InsertionRenumbersThreadViews) {
  // dis thread saw gap-0 env item: view(x) = 0+.
  cfg_.dis_thread(0).view.Set(x_, PlusTs(0));
  View base(kVars);
  // Insertion into gap 0 above the items: thread view must shift only for
  // the CAS variant.
  SimplConfig plain = cfg_;
  plain.InsertDisMsg(x_, 0, 1, base, /*cas_on_dis=*/false);
  EXPECT_EQ(plain.dis_thread(0).view[x_], PlusTs(0));

  SimplConfig cas = cfg_;
  cas.InsertDisMsg(x_, 0, 1, base, /*cas_on_dis=*/true);
  EXPECT_EQ(cas.dis_thread(0).view[x_], PlusTs(1));
}

TEST_F(SimplConfigTest, InsertionLeavesOtherVariablesAlone) {
  cfg_.dis_thread(0).view.Set(y_, PlusTs(0));
  View base(kVars);
  cfg_.InsertDisMsg(x_, 0, 1, base, /*cas_on_dis=*/false);
  EXPECT_EQ(cfg_.dis_thread(0).view[y_], PlusTs(0));
}

TEST_F(SimplConfigTest, MessageViewInvariant) {
  View base(kVars);
  cfg_.InsertDisMsg(x_, 0, 1, base, false);
  cfg_.InsertDisMsg(x_, 0, 2, base, false);  // insert *below* message 1
  const auto& seq = cfg_.DisMsgsOf(x_);
  ASSERT_EQ(seq.size(), 3u);
  // Values: init, then the second insert (gap 0), then the first.
  EXPECT_EQ(seq[0].val, 0);
  EXPECT_EQ(seq[1].val, 2);
  EXPECT_EQ(seq[2].val, 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(seq[i].view[x_], DisTs(i));
  }
}

TEST_F(SimplConfigTest, AddEnvMsgDeduplicates) {
  EnvMsg em;
  em.var = x_;
  em.val = 1;
  em.view = View(kVars);
  em.view.Set(x_, PlusTs(0));
  EXPECT_TRUE(cfg_.AddEnvMsg(em));
  EXPECT_FALSE(cfg_.AddEnvMsg(em));
  EXPECT_EQ(cfg_.env_msgs().size(), 1u);
}

TEST_F(SimplConfigTest, AddEnvCfgDeduplicates) {
  LocalCfg c;
  c.node = NodeId(3);
  c.rv = {1};
  c.view = View(kVars);
  EXPECT_TRUE(cfg_.AddEnvCfg(c));
  EXPECT_FALSE(cfg_.AddEnvCfg(c));
}

TEST_F(SimplConfigTest, CoveringRequiresSameDisPartAndSupersets) {
  SimplConfig bigger = cfg_;
  EnvMsg em;
  em.var = x_;
  em.val = 1;
  em.view = View(kVars);
  em.view.Set(x_, PlusTs(0));
  bigger.AddEnvMsg(em);

  EXPECT_TRUE(bigger.Covers(cfg_));
  EXPECT_FALSE(cfg_.Covers(bigger));
  EXPECT_TRUE(cfg_.Covers(cfg_));

  SimplConfig other_dis = cfg_;
  View base(kVars);
  other_dis.InsertDisMsg(x_, 0, 1, base, false);
  EXPECT_FALSE(other_dis.Covers(cfg_));
  EXPECT_FALSE(cfg_.Covers(other_dis));
}

TEST_F(SimplConfigTest, HashEqualityConsistency) {
  SimplConfig copy = cfg_;
  EXPECT_EQ(cfg_.Hash(), copy.Hash());
  EXPECT_TRUE(cfg_ == copy);
  View base(kVars);
  copy.InsertDisMsg(x_, 0, 1, base, false);
  EXPECT_FALSE(cfg_ == copy);
}

}  // namespace
}  // namespace rapar
