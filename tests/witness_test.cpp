// Witness validity across the corpus: every UNSAFE verdict comes with a
// deterministically replayable abstract run that actually exhibits the
// violation / goal message, and the dependency-graph machinery consumes
// every witness.
#include <gtest/gtest.h>

#include "core/benchmarks.h"
#include "core/verifier.h"
#include "depgraph/dep_graph.h"
#include "simplified/explorer.h"

namespace rapar {
namespace {

class WitnessTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WitnessTest, ViolationWitnessesReplay) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  const BenchmarkCase& bench = suite[GetParam()];
  SimplExplorer ex(bench.system.simpl());
  SimplExplorerOptions opts;
  opts.time_budget_ms = 30'000;
  SimplResult r = ex.Check(opts);
  if (!r.violation) {
    GTEST_SKIP() << bench.name << " is safe";
  }
  ASSERT_FALSE(r.witness.empty()) << bench.name;

  // Replay must succeed (ApplyStep asserts on disabled steps) and the
  // final step must be the violating one.
  SimplConfig final_cfg;
  std::vector<StepEffect> effects =
      ReplayWitness(bench.system.simpl(), r.witness, &final_cfg);
  EXPECT_EQ(effects.size(), r.witness.size());
  EXPECT_TRUE(r.witness.back().violation) << bench.name;

  // The dependency graph builds and is well-formed.
  DepGraph g = DepGraph::Build(bench.system.simpl(), r.witness);
  EXPECT_GE(g.nodes().size(), bench.system.vars().size());
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    EXPECT_GE(g.CostOf(static_cast<std::uint32_t>(i)), 0) << bench.name;
  }
}

TEST_P(WitnessTest, GoalWitnessesContainTheGoalMessage) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  const BenchmarkCase& bench = suite[GetParam()];
  // Probe every (var, val) pair; whenever the explorer claims the goal,
  // the replayed witness's final configuration must contain the message.
  SafetyVerifier verifier(bench.system);
  for (std::uint32_t xi = 0; xi < bench.system.vars().size(); ++xi) {
    for (Value d = 0; d < bench.system.dom(); ++d) {
      const VarId x(xi);
      if (d == kInitValue) continue;  // init messages are trivially there
      SimplExplorer ex(bench.system.simpl());
      SimplExplorerOptions opts;
      opts.goal = {x, d};
      opts.time_budget_ms = 20'000;
      SimplResult r = ex.Check(opts);
      if (!r.goal_reached) continue;
      SimplConfig final_cfg;
      ReplayWitness(bench.system.simpl(), r.witness, &final_cfg);
      bool found = false;
      for (const EnvMsg& m : final_cfg.env_msgs()) {
        if (m.var == x && m.val == d) found = true;
      }
      const auto& seq = final_cfg.DisMsgsOf(x);
      for (std::size_t p = 1; p < seq.size(); ++p) {
        if (seq[p].val == d) found = true;
      }
      EXPECT_TRUE(found) << bench.name << " (" << xi << "," << d << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, WitnessTest,
                         ::testing::Range<std::size_t>(0, 11));

TEST(WitnessBoundTest, EnvThreadBoundIsSufficientAcrossUnsafeCases) {
  // For the unsafe corpus cases whose concrete exploration is tractable:
  // the §4.3 bound b from the witness yields a concrete instance with b
  // env threads that exhibits the bug.
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  for (const BenchmarkCase& bench : suite) {
    SafetyVerifier verifier(bench.system);
    Verdict v = verifier.Run(std::nullopt);
    if (!v.unsafe() || !v.env_thread_bound.has_value()) continue;
    const int b = static_cast<int>(*v.env_thread_bound);
    if (b > 4) continue;  // keep concrete exploration tractable
    VerifierOptions copts;
    copts.backend = Backend::kConcrete;
    copts.concrete.env_threads = std::max(b, 1);
    copts.time_budget_ms = 30'000;
    Verdict cv = verifier.Run(std::nullopt, copts);
    EXPECT_TRUE(cv.unsafe() || cv.result == Verdict::Result::kUnknown)
        << bench.name << " bound " << b;
  }
}

}  // namespace
}  // namespace rapar
