// Lower-bound constructions: QBF evaluation, the §5 TQBF → PureRA
// reduction (Theorem 5.1), and the Theorem 1.1 env(acyc)+CAS
// counter-machine construction.
#include <gtest/gtest.h>

#include "core/verifier.h"
#include "lang/classify.h"
#include "lowerbound/counter_machine.h"
#include "lowerbound/qbf.h"
#include "lowerbound/tqbf_reduction.h"
#include "ra/explorer.h"

namespace rapar {
namespace {

// --- QBF evaluation -----------------------------------------------------

TEST(QbfTest, SimpleTautologyAndContradiction) {
  // ∀u0. (u0 | !u0) — true.
  Qbf taut;
  taut.n = 0;
  taut.matrix = QOr({QLit(Qbf::U(0)), QLit(Qbf::U(0), true)});
  EXPECT_TRUE(EvalQbf(taut));

  // ∀u0. u0 — false.
  Qbf contra;
  contra.n = 0;
  contra.matrix = QLit(Qbf::U(0));
  EXPECT_FALSE(EvalQbf(contra));
}

TEST(QbfTest, ExistsCanDependOnOuterUniversal) {
  // ∀u0 ∃e1 ∀u1. (e1 <-> u0) written in NNF:
  // (e1 & u0) | (!e1 & !u0) — true: choose e1 := u0.
  Qbf qbf;
  qbf.n = 1;
  qbf.matrix =
      QOr({QAnd({QLit(Qbf::E(1)), QLit(Qbf::U(0))}),
           QAnd({QLit(Qbf::E(1), true), QLit(Qbf::U(0), true)})});
  EXPECT_TRUE(EvalQbf(qbf));
}

TEST(QbfTest, ExistsCannotDependOnInnerUniversal) {
  // ∀u0 ∃e1 ∀u1. (e1 <-> u1) — false: e1 is chosen before u1.
  Qbf qbf;
  qbf.n = 1;
  qbf.matrix =
      QOr({QAnd({QLit(Qbf::E(1)), QLit(Qbf::U(1))}),
           QAnd({QLit(Qbf::E(1), true), QLit(Qbf::U(1), true)})});
  EXPECT_FALSE(EvalQbf(qbf));
}

TEST(QbfTest, MatrixEvaluation) {
  std::vector<bool> assign = {true, false, true};
  EXPECT_TRUE(EvalMatrix(*QLit(0), assign));
  EXPECT_FALSE(EvalMatrix(*QLit(1), assign));
  EXPECT_TRUE(EvalMatrix(*QLit(1, true), assign));
  EXPECT_TRUE(EvalMatrix(*QAnd({QLit(0), QLit(2)}), assign));
  EXPECT_FALSE(EvalMatrix(*QAnd({QLit(0), QLit(1)}), assign));
  EXPECT_TRUE(EvalMatrix(*QOr({QLit(1), QLit(2)}), assign));
}

TEST(QbfTest, RandomQbfShape) {
  Rng rng(7);
  Qbf qbf = RandomQbf(rng, 2, 6);
  EXPECT_EQ(qbf.num_vars(), 5);
  EXPECT_NE(qbf.matrix, nullptr);
  EXPECT_FALSE(qbf.ToString().empty());
}

// --- TQBF → PureRA reduction ------------------------------------------------

TEST(TqbfReductionTest, GeneratedProgramIsPureRaAndInClass) {
  Rng rng(3);
  Qbf qbf = RandomQbf(rng, 1, 4);
  Program prog = TqbfToPureRa(qbf);
  Classification c = Classify(prog);
  EXPECT_TRUE(c.cas_free);
  EXPECT_TRUE(c.loop_free);
  EXPECT_TRUE(c.pure_ra);
}

bool VerifyQbfViaReduction(const Qbf& qbf) {
  Expected<ParamSystem> sys = TqbfSystem(qbf);
  EXPECT_TRUE(sys.ok()) << (sys.ok() ? "" : sys.error());
  SafetyVerifier verifier(sys.value());
  VerifierOptions opts;
  opts.time_budget_ms = 60'000;
  Verdict v = verifier.Run(std::nullopt, opts);
  EXPECT_NE(v.result, Verdict::Result::kUnknown) << qbf.ToString();
  return v.unsafe();
}

TEST(TqbfReductionTest, DepthZeroFormulas) {
  // ∀u0. (u0 | !u0) — true -> unsafe.
  Qbf taut;
  taut.n = 0;
  taut.matrix = QOr({QLit(Qbf::U(0)), QLit(Qbf::U(0), true)});
  EXPECT_TRUE(VerifyQbfViaReduction(taut));

  // ∀u0. u0 — false -> safe.
  Qbf contra;
  contra.n = 0;
  contra.matrix = QLit(Qbf::U(0));
  EXPECT_FALSE(VerifyQbfViaReduction(contra));
}

TEST(TqbfReductionTest, AlternationDepthOne) {
  // True: ∃e1 may copy u0.
  Qbf good;
  good.n = 1;
  good.matrix =
      QOr({QAnd({QLit(Qbf::E(1)), QLit(Qbf::U(0))}),
           QAnd({QLit(Qbf::E(1), true), QLit(Qbf::U(0), true)})});
  ASSERT_TRUE(EvalQbf(good));
  EXPECT_TRUE(VerifyQbfViaReduction(good));

  // False: ∃e1 cannot predict u1.
  Qbf bad;
  bad.n = 1;
  bad.matrix =
      QOr({QAnd({QLit(Qbf::E(1)), QLit(Qbf::U(1))}),
           QAnd({QLit(Qbf::E(1), true), QLit(Qbf::U(1), true)})});
  ASSERT_FALSE(EvalQbf(bad));
  EXPECT_FALSE(VerifyQbfViaReduction(bad));
}

class TqbfRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TqbfRandomTest, ReductionAgreesWithDirectEvaluation) {
  Rng rng(GetParam());
  const int n = static_cast<int>(GetParam() % 2);  // depth 0 or 1
  Qbf qbf = RandomQbf(rng, n, 4);
  EXPECT_EQ(VerifyQbfViaReduction(qbf), EvalQbf(qbf)) << qbf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Corpus, TqbfRandomTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(TqbfReductionTest, DisVariantAgreesWithEnvOnlyForm) {
  // The asserting role as the distinguished thread reaches the same
  // verdict as the env-only system.
  for (std::uint64_t seed : {3u, 7u, 42u}) {
    Rng rng(seed);
    const int n = static_cast<int>(seed % 2);
    Qbf qbf = RandomQbf(rng, n, 4);
    Expected<ParamSystem> sys = TqbfDisSystem(qbf);
    ASSERT_TRUE(sys.ok()) << sys.error();
    SafetyVerifier verifier(sys.value());
    VerifierOptions opts;
    opts.time_budget_ms = 60'000;
    Verdict v = verifier.Run(std::nullopt, opts);
    ASSERT_NE(v.result, Verdict::Result::kUnknown) << qbf.ToString();
    EXPECT_EQ(v.unsafe(), EvalQbf(qbf)) << qbf.ToString();
  }
}

TEST(TqbfReductionTest, LevelQueriesRealiseTheInduction) {
  // Ψ is true iff both level-0 witness messages are generable
  // (parameterized monotonicity merges the two MG executions), and the
  // top-level witness is generable iff some branch of the matrix check
  // completes for that value of u_n.
  for (std::uint64_t seed : {5u, 11u, 42u}) {
    Rng rng(seed);
    const int n = 1;
    Qbf qbf = RandomQbf(rng, n, 4);
    bool both = true;
    for (int j = 0; j < 2; ++j) {
      TqbfWitnessQuery q = TqbfLevelQuery(qbf, 0, j);
      ASSERT_TRUE(q.system.ok()) << q.system.error();
      SafetyVerifier verifier(q.system.value());
      VerifierOptions opts;
      opts.time_budget_ms = 60'000;
      Verdict v =
          verifier.Run(std::pair{q.goal_var, q.goal_value}, opts);
      ASSERT_NE(v.result, Verdict::Result::kUnknown) << qbf.ToString();
      both = both && v.unsafe();
    }
    EXPECT_EQ(both, EvalQbf(qbf)) << qbf.ToString();
  }
}

// --- Theorem 1.1 construction -------------------------------------------------

// inc, inc, dec, dec, jz -> halt.
CounterMachine PumpMachine() {
  CounterMachine m;
  m.num_states = 6;
  m.initial = 0;
  m.halt = 5;
  using Op = CounterMachine::Op;
  m.instrs = {
      {Op::kInc, 0, 0, 1, 0}, {Op::kInc, 0, 1, 2, 0},
      {Op::kDec, 0, 2, 3, 0}, {Op::kDec, 0, 3, 4, 0},
      {Op::kJz, 0, 4, 5, 4},
  };
  return m;
}

// Halt requires decrementing twice after a single increment: unreachable
// when steps execute exactly once.
CounterMachine OverDecMachine() {
  CounterMachine m;
  m.num_states = 4;
  m.initial = 0;
  m.halt = 3;
  using Op = CounterMachine::Op;
  m.instrs = {
      {Op::kInc, 0, 0, 1, 0},
      {Op::kDec, 0, 1, 2, 0},
      {Op::kDec, 0, 2, 3, 0},
  };
  return m;
}

TEST(CounterMachineTest, ReferenceSemantics) {
  EXPECT_TRUE(MachineHalts(PumpMachine(), 4, 32));
  EXPECT_FALSE(MachineHalts(OverDecMachine(), 4, 32));
}

TEST(CounterMachineTest, GeneratedProgramIsEnvAcycWithCas) {
  Program prog = CounterMachineToEnvCas(PumpMachine(), 4);
  Classification c = Classify(prog);
  EXPECT_FALSE(c.cas_free);  // env(acyc) *with* CAS — the Thm 1.1 class
  EXPECT_TRUE(c.loop_free);
}

RaResult RunMachineProgram(const CounterMachine& m, int bound, int n_env) {
  Program prog = CounterMachineToEnvCas(m, bound);
  Cfa cfa = Cfa::Build(prog);
  std::vector<const Cfa*> threads(static_cast<std::size_t>(n_env), &cfa);
  RaExplorer ex(threads, prog.dom(), prog.vars().size(),
                {0, static_cast<std::size_t>(n_env)});
  RaExplorerOptions opts;
  opts.max_states = 600'000;
  opts.time_budget_ms = 60'000;
  return ex.CheckSafety(opts);
}

TEST(CounterMachineTest, HaltingMachineReachesAssert) {
  // 5 machine steps need 5 simulator threads plus 1 observer.
  RaResult r = RunMachineProgram(PumpMachine(), 4, 6);
  EXPECT_TRUE(r.violation);
}

TEST(CounterMachineTest, CasHandoffExecutesStepsExactlyOnce) {
  // If a step could run twice (broken lock atomicity), the counter would
  // reach 2 and the double decrement would reach halt. CAS adjacency must
  // prevent it, whatever the thread count.
  RaResult r = RunMachineProgram(OverDecMachine(), 4, 4);
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

TEST(CounterMachineTest, TooFewThreadsCannotFinishTheSimulation) {
  // Fewer simulator threads than machine steps: halt unreachable.
  RaResult r = RunMachineProgram(PumpMachine(), 4, 3);
  EXPECT_FALSE(r.violation);
}

}  // namespace
}  // namespace rapar
