// Differential check: the analysis pre-pass must never change a verdict.
// Runs Verify() with the pre-pass on and off across the litmus/benchmark
// catalog and a corpus of random systems, and demands identical results
// whenever both runs are conclusive.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/benchmarks.h"
#include "core/verifier.h"
#include "lang/parser.h"
#include "lang/random_program.h"

namespace rapar {
namespace {

Program MustParse(const std::string& text) {
  Expected<Program> p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
  return std::move(p).value();
}

// Verdicts with the pre-pass on/off; both must agree when conclusive.
struct Pair {
  Verdict with;
  Verdict without;
};

Pair VerifyBothWays(const ParamSystem& system, std::size_t max_states) {
  SafetyVerifier verifier(system);
  VerifierOptions on;
  on.max_states = max_states;
  on.enable_prepass = true;
  VerifierOptions off = on;
  off.enable_prepass = false;
  return Pair{verifier.Run(std::nullopt, on), verifier.Run(std::nullopt, off)};
}

void ExpectAgreement(const Pair& p, const std::string& label) {
  if (p.with.result == Verdict::Result::kUnknown ||
      p.without.result == Verdict::Result::kUnknown) {
    return;  // a resource-capped run decides nothing
  }
  EXPECT_EQ(p.with.result, p.without.result)
      << label << ": prepass changed the verdict (with: "
      << p.with.ToString() << ", without: " << p.without.ToString() << ")";
}

TEST(PrepassDifferentialTest, BenchmarkCatalogVerdictsUnchanged) {
  for (BenchmarkCase& bench : StandardBenchmarks()) {
    Pair p = VerifyBothWays(bench.system, 300'000);
    ExpectAgreement(p, bench.name);
    if (bench.expected_unsafe.has_value() &&
        p.with.result != Verdict::Result::kUnknown) {
      EXPECT_EQ(p.with.unsafe(), *bench.expected_unsafe) << bench.name;
    }
    EXPECT_FALSE(p.without.prepass().Any()) << bench.name;
  }
}

TEST(PrepassDifferentialTest, PrunableLitmusKeepsVerdictAndReportsPruning) {
  // An env with a constantly-false branch guarding its assert plus an
  // unobserved debug store: every prepass transformation fires, and the
  // system must stay SAFE either way.
  Program env = MustParse(R"(
    program env
    vars flag debug
    regs one tmp r
    dom 3
    begin
      one := 1;
      tmp := 2;
      debug := one;
      flag := one;
      r := flag;
      choice { skip } or { assume (one == 2); assert false }
    end
  )");
  Expected<ParamSystem> sys = ParamSystem::Builder().Env(std::move(env)).Build();
  ASSERT_TRUE(sys.ok()) << (sys.ok() ? "" : sys.error());
  Pair p = VerifyBothWays(sys.value(), 300'000);
  ASSERT_EQ(p.with.result, Verdict::Result::kSafe);
  ASSERT_EQ(p.without.result, Verdict::Result::kSafe);
  EXPECT_GT(p.with.prepass().dead_edges_removed, 0u);
  EXPECT_GT(p.with.prepass().stores_sliced, 0u);
  EXPECT_GT(p.with.prepass().assigns_dropped, 0u);
  EXPECT_FALSE(p.without.prepass().Any());
  // Pruning shrinks (or at worst preserves) the explored state space.
  EXPECT_LE(p.with.states(), p.without.states());
}

TEST(PrepassDifferentialTest, ReachableAssertStaysUnsafe) {
  // The mirror image: the guard is constantly TRUE, so folding it must not
  // erase the (reachable) violation.
  Program env = MustParse(R"(
    program env
    vars flag
    regs one
    dom 3
    begin
      one := 1;
      flag := one;
      assume (one == 1);
      assert false
    end
  )");
  Expected<ParamSystem> sys = ParamSystem::Builder().Env(std::move(env)).Build();
  ASSERT_TRUE(sys.ok()) << (sys.ok() ? "" : sys.error());
  Pair p = VerifyBothWays(sys.value(), 300'000);
  EXPECT_EQ(p.with.result, Verdict::Result::kUnsafe);
  EXPECT_EQ(p.without.result, Verdict::Result::kUnsafe);
  EXPECT_GT(p.with.prepass().guards_folded, 0u);
}

TEST(PrepassDifferentialTest, RandomSystemsAgreeAcrossTwoHundredSeeds) {
  int conclusive = 0;
  int pruned = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    RandomProgramOptions env_opts;
    env_opts.num_vars = 2;
    env_opts.num_regs = 2;
    env_opts.dom = 3;
    env_opts.size = 5;
    env_opts.allow_cas = false;
    env_opts.allow_loops = false;
    RandomProgramOptions dis_opts = env_opts;
    dis_opts.size = 4;

    Program env = RandomProgram(rng, env_opts, "env");
    Program dis = RandomProgram(rng, dis_opts, "dis");
    Expected<ParamSystem> sys = ParamSystem::Builder()
                                    .Env(std::move(env))
                                    .Dis(std::move(dis))
                                    .Build();
    ASSERT_TRUE(sys.ok()) << "seed " << seed << ": "
                          << (sys.ok() ? "" : sys.error());
    Pair p = VerifyBothWays(sys.value(), 60'000);
    ExpectAgreement(p, "seed " + std::to_string(seed));
    conclusive += p.with.result != Verdict::Result::kUnknown &&
                  p.without.result != Verdict::Result::kUnknown;
    pruned += p.with.prepass().Any();
  }
  // The corpus must actually exercise the comparison and the pruning.
  EXPECT_GT(conclusive, 100);
  EXPECT_GT(pruned, 10);
}

}  // namespace
}  // namespace rapar
