// CFA compilation, analyses (acyc / nocas / PureRA), unrolling and the
// assert-to-goal-store rewrite.
#include "lang/cfa.h"

#include <gtest/gtest.h>

#include "lang/classify.h"
#include "lang/parser.h"
#include "lang/transform.h"
#include "lang/unroll.h"

namespace rapar {
namespace {

Program MustParse(const std::string& text) {
  Expected<Program> p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
  return std::move(p).value();
}

TEST(CfaTest, StraightLineShape) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      r := 1;
      x := r
    end
  )");
  Cfa cfa = Cfa::Build(p);
  EXPECT_TRUE(cfa.IsAcyclic());
  EXPECT_FALSE(cfa.HasCas());
  EXPECT_EQ(cfa.CountStoreInstructions(), 1);
  // entry, exit, one mid node.
  EXPECT_EQ(cfa.num_nodes(), 3u);
  EXPECT_EQ(cfa.edges().size(), 2u);
}

TEST(CfaTest, LoopIntroducesCycle) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      loop { r := x }
    end
  )");
  Cfa cfa = Cfa::Build(p);
  EXPECT_FALSE(cfa.IsAcyclic());
}

TEST(CfaTest, ChoiceForksFromOneNode) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      choice { r := 1 } or { r := 2 } or { r := 3 }
    end
  )");
  Cfa cfa = Cfa::Build(p);
  // All three branches leave the entry node.
  EXPECT_EQ(cfa.OutEdges(cfa.entry()).size(), 3u);
  EXPECT_TRUE(cfa.IsAcyclic());
}

TEST(CfaTest, CasCountsAsStoreInstruction) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r0 r1
    dom 4
    begin
      cas(x, r0, r1)
    end
  )");
  Cfa cfa = Cfa::Build(p);
  EXPECT_TRUE(cfa.HasCas());
  EXPECT_EQ(cfa.CountStoreInstructions(), 1);
}

TEST(CfaTest, TerminalNodesOfStraightLine) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      r := 1
    end
  )");
  Cfa cfa = Cfa::Build(p);
  auto terminals = cfa.TerminalNodes();
  ASSERT_EQ(terminals.size(), 1u);
  EXPECT_EQ(terminals[0], NodeId(1));  // the exit node
}

TEST(UnrollTest, UnrolledLoopIsAcyclicAndPermitsUpToKIterations) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 8
    begin
      loop { r := r + 1 }
    end
  )");
  Program u = UnrollProgram(p, 3);
  Cfa cfa = Cfa::Build(u);
  EXPECT_TRUE(cfa.IsAcyclic());
  EXPECT_TRUE(Classify(u).loop_free);
}

TEST(UnrollTest, ZeroUnrollRemovesLoops) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 8
    begin
      loop { x := r }
    end
  )");
  Program u = UnrollProgram(p, 0);
  Cfa cfa = Cfa::Build(u);
  EXPECT_EQ(cfa.CountStoreInstructions(), 0);
}

TEST(UnrollTest, NestedLoopsUnrollRecursively) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 8
    begin
      loop { loop { r := r + 1 } }
    end
  )");
  Program u = UnrollProgram(p, 2);
  EXPECT_TRUE(Classify(u).loop_free);
}

TEST(TransformTest, AssertRewriteProducesGoalStore) {
  Program p = MustParse(R"(
    program q
    vars x goal
    regs r
    dom 4
    begin
      r := x;
      if (r == 1) { assert false }
    end
  )");
  VarId goal = p.vars().Find("goal");
  GoalRewrite gr = RewriteAssertToGoalStore(p, goal, 3);
  EXPECT_TRUE(gr.had_assert);
  EXPECT_FALSE(ContainsAssert(gr.program.body()));
  // The rewritten program gained the __goal register.
  EXPECT_TRUE(gr.program.regs().Find("__goal").valid());
  // And it still parses/prints consistently.
  Expected<Program> round = ParseProgram(gr.program.ToString());
  EXPECT_TRUE(round.ok()) << (round.ok() ? "" : round.error());
}

TEST(TransformTest, NoAssertMeansNoRewrite) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      r := x
    end
  )");
  GoalRewrite gr = RewriteAssertToGoalStore(p, p.vars().Find("x"), 1);
  EXPECT_FALSE(gr.had_assert);
  EXPECT_FALSE(gr.program.regs().Find("__goal").valid());
}

TEST(TransformTest, RemapVarsRewritesAllAccesses) {
  Program p = MustParse(R"(
    program q
    vars a b
    regs r0 r1
    dom 4
    begin
      r0 := a;
      b := r0;
      cas(a, r0, r1)
    end
  )");
  // Swap a and b.
  std::vector<VarId> mapping = {VarId(1), VarId(0)};
  StmtPtr remapped = RemapVars(p.body(), mapping);
  const Stmt& seq = *remapped;
  ASSERT_EQ(seq.kind(), StmtKind::kSeq);
  EXPECT_EQ(seq.children()[0]->var(), VarId(1));  // load now from b-slot
}

TEST(ClassifyTest, PureRaAcceptsFigure6Shape) {
  // pick-style PureRA: store constant one, load-and-check.
  Program p = MustParse(R"(
    program pure
    vars t f s
    regs one tmp
    dom 2
    begin
      one := 1;
      choice { t := one } or { f := one };
      s := one;
      tmp := t;
      assume (tmp == 0)
    end
  )");
  EXPECT_TRUE(IsPureRA(p));
}

TEST(ClassifyTest, PureRaRejectsGeneralComputation) {
  Program p = MustParse(R"(
    program impure
    vars x
    regs r
    dom 4
    begin
      r := x;
      r := r + 1;
      x := r
    end
  )");
  EXPECT_FALSE(IsPureRA(p));
}

TEST(ClassifyTest, PureRaRejectsStoreOfLoadedValue) {
  Program p = MustParse(R"(
    program impure
    vars x y
    regs r
    dom 2
    begin
      r := x;
      y := r
    end
  )");
  EXPECT_FALSE(IsPureRA(p));
}

}  // namespace
}  // namespace rapar
