// Differential testing of the Datalog engine: the worklist (semi-naive)
// evaluator against a deliberately simple naive-iteration reference, on
// random programs. Also: cache semantics against standard semantics at
// large k, and the linearisation against the cache solver.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "datalog/cache.h"
#include "datalog/cache_to_linear.h"
#include "datalog/engine.h"

namespace rapar::dl {
namespace {

// --- naive reference evaluator --------------------------------------------

using GroundAtom = std::vector<Sym>;  // [pred, args...]

// Enumerates all instantiations of `rule` whose body is satisfied in
// `facts`, adding heads to `out` (one naive round).
void NaiveRound(const Program& prog, const Rule& rule,
                const std::set<GroundAtom>& facts,
                std::set<GroundAtom>& out) {
  std::size_t num_vars = 0;
  auto scan = [&](const Term& t) {
    if (t.kind == Term::Kind::kVar && t.val + 1 > num_vars) {
      num_vars = t.val + 1;
    }
  };
  for (const Term& t : rule.head.args) scan(t);
  for (const Atom& a : rule.body) {
    for (const Term& t : a.args) scan(t);
  }
  for (const Native& n : rule.natives) {
    for (const Term& t : n.inputs) scan(t);
    if (n.output.has_value() && *n.output + 1 > num_vars) {
      num_vars = *n.output + 1;
    }
  }

  std::vector<std::optional<Sym>> env(num_vars);
  std::function<void(std::size_t)> match = [&](std::size_t at) {
    if (at == rule.body.size()) {
      // Natives.
      std::vector<VarSym> bound;
      bool ok = true;
      for (const Native& n : rule.natives) {
        std::vector<Sym> in;
        for (const Term& t : n.inputs) {
          in.push_back(t.kind == Term::Kind::kConst ? t.val : *env[t.val]);
        }
        Sym o = 0;
        if (!n.fn(in, &o)) {
          ok = false;
          break;
        }
        if (n.output.has_value()) {
          if (env[*n.output].has_value()) {
            if (*env[*n.output] != o) {
              ok = false;
              break;
            }
          } else {
            env[*n.output] = o;
            bound.push_back(*n.output);
          }
        }
      }
      if (ok) {
        GroundAtom h{rule.head.pred};
        for (const Term& t : rule.head.args) {
          h.push_back(t.kind == Term::Kind::kConst ? t.val : *env[t.val]);
        }
        out.insert(std::move(h));
      }
      for (VarSym v : bound) env[v] = std::nullopt;
      return;
    }
    const Atom& pat = rule.body[at];
    for (const GroundAtom& f : facts) {
      if (f[0] != pat.pred || f.size() != pat.args.size() + 1) continue;
      std::vector<VarSym> bound;
      bool ok = true;
      for (std::size_t i = 0; i < pat.args.size(); ++i) {
        const Term& t = pat.args[i];
        if (t.kind == Term::Kind::kConst) {
          if (t.val != f[i + 1]) {
            ok = false;
            break;
          }
        } else if (env[t.val].has_value()) {
          if (*env[t.val] != f[i + 1]) {
            ok = false;
            break;
          }
        } else {
          env[t.val] = f[i + 1];
          bound.push_back(t.val);
        }
      }
      if (ok) match(at + 1);
      for (VarSym v : bound) env[v] = std::nullopt;
    }
  };
  match(0);
  (void)prog;
}

std::set<GroundAtom> NaiveEval(const Program& prog) {
  std::set<GroundAtom> facts;
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<GroundAtom> next;
    for (const Rule& r : prog.rules()) NaiveRound(prog, r, facts, next);
    for (const GroundAtom& f : next) {
      if (facts.insert(f).second) changed = true;
    }
  }
  return facts;
}

// --- random program generation -----------------------------------------------

Program RandomDatalog(Rng& rng, int preds, int consts, int rules) {
  Program prog;
  std::vector<PredId> pids;
  std::vector<std::size_t> arity;
  for (int p = 0; p < preds; ++p) {
    arity.push_back(rng.Below(3));
    pids.push_back(prog.AddPred("p" + std::to_string(p), arity.back()));
  }
  std::vector<Sym> syms;
  for (int c = 0; c < consts; ++c) {
    syms.push_back(prog.ConstSym("c" + std::to_string(c)));
  }
  auto random_const = [&] { return syms[rng.Below(syms.size())]; };

  // A few ground facts.
  for (int f = 0; f < 3; ++f) {
    const std::size_t p = rng.Below(pids.size());
    Atom a;
    a.pred = pids[p];
    for (std::size_t i = 0; i < arity[p]; ++i) a.args.push_back(C(random_const()));
    prog.AddFact(std::move(a));
  }
  // Random rules with 1-2 body atoms and safe heads.
  for (int r = 0; r < rules; ++r) {
    Rule rule;
    const int body_atoms = 1 + static_cast<int>(rng.Below(2));
    std::vector<VarSym> avail;  // variables bound by the body
    VarSym next_var = 0;
    for (int b = 0; b < body_atoms; ++b) {
      const std::size_t p = rng.Below(pids.size());
      Atom a;
      a.pred = pids[p];
      for (std::size_t i = 0; i < arity[p]; ++i) {
        if (!avail.empty() && rng.Chance(1, 3)) {
          a.args.push_back(V(avail[rng.Below(avail.size())]));
        } else if (rng.Chance(1, 3)) {
          a.args.push_back(C(random_const()));
        } else {
          a.args.push_back(V(next_var));
          avail.push_back(next_var);
          ++next_var;
        }
      }
      rule.body.push_back(std::move(a));
    }
    const std::size_t hp = rng.Below(pids.size());
    Atom head;
    head.pred = pids[hp];
    for (std::size_t i = 0; i < arity[hp]; ++i) {
      if (!avail.empty() && rng.Chance(2, 3)) {
        head.args.push_back(V(avail[rng.Below(avail.size())]));
      } else {
        head.args.push_back(C(random_const()));
      }
    }
    rule.head = std::move(head);
    prog.AddRule(std::move(rule));
  }
  return prog;
}

class DatalogDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatalogDifferentialTest, WorklistMatchesNaiveReference) {
  Rng rng(GetParam());
  Program prog = RandomDatalog(rng, /*preds=*/4, /*consts=*/3, /*rules=*/6);

  std::set<GroundAtom> reference = NaiveEval(prog);

  Database db = Eval(prog);
  std::set<GroundAtom> engine;
  for (PredId p = 0; p < prog.num_preds(); ++p) {
    for (const auto& tuple : db.Tuples(p)) {
      GroundAtom g{p};
      g.insert(g.end(), tuple.begin(), tuple.end());
      engine.insert(std::move(g));
    }
  }
  EXPECT_EQ(engine, reference) << prog.ToString();
}

TEST_P(DatalogDifferentialTest, CacheAtLargeKMatchesStandard) {
  Rng rng(GetParam() + 500);
  Program prog = RandomDatalog(rng, 3, 2, 4);
  std::set<GroundAtom> reference = NaiveEval(prog);
  const int k = static_cast<int>(reference.size()) + 2;
  // Every derivable ground atom must be cache-derivable at large k, and
  // nothing else.
  Database db = Eval(prog);
  for (PredId p = 0; p < prog.num_preds(); ++p) {
    if (prog.pred(p).arity != 0) continue;  // probe nullary atoms only
    Atom goal{p, {}};
    GroundAtom g{p};
    const bool standard = reference.count(g) > 0;
    CacheQueryOptions opts;
    opts.max_states = 300'000;
    CacheQueryResult r = CacheQuery(prog, goal, k, opts);
    if (r.aborted) continue;
    EXPECT_EQ(r.derivable, standard) << prog.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, DatalogDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 30));

}  // namespace
}  // namespace rapar::dl
