// Round-trip coverage for the common JSON layer (common/json.h): the
// writer/parser pair is the wire format of serve mode and of every
// --format=json surface, so emit -> parse -> re-emit must be
// byte-identical across the whole value space — uint64-range counters,
// control characters, non-ASCII text, astral-plane escapes, deep
// nesting. Also pins the failure modes: integer overflow and unpaired
// surrogates are parse errors, writer misuse is a hard error.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>

#include "common/json.h"

namespace rapar {
namespace {

// --- exact integer round-trips ----------------------------------------------

TEST(JsonNumbers, Uint64RangeRoundTrips) {
  const std::uint64_t values[] = {
      0,
      1,
      static_cast<std::uint64_t>(std::numeric_limits<long long>::max()),
      static_cast<std::uint64_t>(std::numeric_limits<long long>::max()) + 1,
      std::numeric_limits<std::uint64_t>::max(),
  };
  for (const std::uint64_t v : values) {
    JsonWriter w;
    w.UInt(v);
    auto parsed = ParseJson(w.str());
    ASSERT_TRUE(parsed.ok()) << v << ": " << parsed.error();
    EXPECT_TRUE(parsed.value().number_is_uint) << v;
    EXPECT_EQ(parsed.value().uinteger, v);
    // Tokens above INT64_MAX must not pretend to fit int64.
    const bool fits_int64 =
        v <= static_cast<std::uint64_t>(std::numeric_limits<long long>::max());
    EXPECT_EQ(parsed.value().number_is_int, fits_int64) << v;
    JsonWriter again;
    WriteJsonValue(parsed.value(), &again);
    EXPECT_EQ(again.str(), w.str());
  }
}

TEST(JsonNumbers, Int64MinRoundTrips) {
  const long long v = std::numeric_limits<long long>::min();
  JsonWriter w;
  w.Int(v);
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value().number_is_int);
  EXPECT_FALSE(parsed.value().number_is_uint);
  EXPECT_EQ(parsed.value().integer, v);
  JsonWriter again;
  WriteJsonValue(parsed.value(), &again);
  EXPECT_EQ(again.str(), w.str());
}

TEST(JsonNumbers, OutOfRangeIntegersAreParseErrors) {
  // One past UINT64_MAX and one below INT64_MIN: previously strtoll
  // saturated these silently (no ERANGE check); now they must fail.
  EXPECT_FALSE(ParseJson("18446744073709551616").ok());
  EXPECT_FALSE(ParseJson("-9223372036854775809").ok());
  // A plausible telemetry-counter overflow artifact, rejected not capped.
  auto r = ParseJson("{\"counter\": 99999999999999999999}");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("out of range"), std::string::npos) << r.error();
}

TEST(JsonNumbers, FractionalAndExponentStayDouble) {
  auto r = ParseJson("[0.5, 1e3, -2.25]");
  ASSERT_TRUE(r.ok()) << r.error();
  for (const JsonValue& v : r.value().items) {
    EXPECT_FALSE(v.number_is_int);
    EXPECT_FALSE(v.number_is_uint);
  }
  EXPECT_DOUBLE_EQ(r.value().items[1].number, 1000.0);
}

// --- strings: escapes, control chars, surrogates ----------------------------

TEST(JsonStrings, ControlCharsRoundTrip) {
  std::string s;
  for (int c = 0; c < 0x20; ++c) s.push_back(static_cast<char>(c));
  s += "\"\\/ plain";
  JsonWriter w;
  w.String(s);
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().string, s);
}

TEST(JsonStrings, NonAsciiUtf8PassesThrough) {
  const std::string s = "héllo wörld — ≤ ∀x. 日本語";
  JsonWriter w;
  w.String(s);
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().string, s);
}

TEST(JsonStrings, SurrogatePairDecodesToFourByteUtf8) {
  // U+1F600 GRINNING FACE as an escaped surrogate pair.
  auto r = ParseJson("\"\\uD83D\\uDE00\"");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().string, "\xF0\x9F\x98\x80");
  // Boundary pairs: U+10000 and U+10FFFF.
  auto lo = ParseJson("\"\\uD800\\uDC00\"");
  ASSERT_TRUE(lo.ok()) << lo.error();
  EXPECT_EQ(lo.value().string, "\xF0\x90\x80\x80");
  auto hi = ParseJson("\"\\uDBFF\\uDFFF\"");
  ASSERT_TRUE(hi.ok()) << hi.error();
  EXPECT_EQ(hi.value().string, "\xF4\x8F\xBF\xBF");
}

TEST(JsonStrings, UnpairedSurrogatesAreParseErrors) {
  // Previously these emitted a 3-byte encoding of the surrogate code
  // point itself — ill-formed UTF-8 that downstream consumers reject.
  const char* bad[] = {
      "\"\\uD83D\"",          // lone high surrogate at end of string
      "\"\\uD83D rest\"",     // high surrogate followed by plain text
      "\"\\uD83D\\n\"",       // high surrogate followed by another escape
      "\"\\uD83D\\u0041\"",   // high surrogate + non-surrogate escape
      "\"\\uDE00\"",          // lone low surrogate
      "\"x\\uDC00y\"",        // low surrogate mid-string
  };
  for (const char* text : bad) {
    auto r = ParseJson(text);
    EXPECT_FALSE(r.ok()) << text;
    EXPECT_NE(r.error().find("surrogate"), std::string::npos)
        << text << ": " << r.error();
  }
}

TEST(JsonStrings, BasicPlaneEscapeStillWorks) {
  auto r = ParseJson("\"\\u00e9\\u65e5\"");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().string, "é日");
}

// --- writer misuse is a hard error ------------------------------------------
//
// assert(false) in debug builds, std::logic_error under NDEBUG; both
// paths kill the process before an unbalanced document escapes, and both
// print the "JsonWriter misuse" marker. The throwing path is unit-tested
// with EXPECT_THROW in json_release_guard_test (compiled with NDEBUG).

using JsonWriterMisuseDeathTest = ::testing::Test;

TEST(JsonWriterMisuseDeathTest, EndObjectOnEmptyStack) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.EndObject();
      },
      "JsonWriter misuse");
}

TEST(JsonWriterMisuseDeathTest, EndArrayClosingAnObject) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        w.EndArray();
      },
      "JsonWriter misuse");
}

TEST(JsonWriterMisuseDeathTest, DoubleKey) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        w.Key("a");
        w.Key("b");
      },
      "JsonWriter misuse");
}

TEST(JsonWriterMisuseDeathTest, KeyOutsideObject) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginArray();
        w.Key("a");
      },
      "JsonWriter misuse");
}

TEST(JsonWriterMisuseDeathTest, ValueInObjectWithoutKey) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        w.Int(1);
      },
      "JsonWriter misuse");
}

// --- depth limit -------------------------------------------------------------

TEST(JsonDepth, NestingBoundary) {
  // The parser admits 65 levels (root at depth 0, children at +1, limit
  // depth > 64) and rejects 66. The writer has no depth limit — pin the
  // exact boundary so a refactor cannot silently move it.
  const auto nested = [](int n) {
    std::string s(static_cast<std::size_t>(n), '[');
    s.append(static_cast<std::size_t>(n), ']');
    return s;
  };
  EXPECT_TRUE(ParseJson(nested(65)).ok());
  auto deep = ParseJson(nested(66));
  EXPECT_FALSE(deep.ok());
  EXPECT_NE(deep.error().find("nesting too deep"), std::string::npos);
}

// --- randomized round-trip ---------------------------------------------------

// Grows a random JsonValue tree. Strings draw from a pool that covers
// escapes, control chars, non-ASCII and astral-plane characters; numbers
// cover the full uint64/int64 token space.
JsonValue RandomValue(std::mt19937_64& rng, int depth) {
  JsonValue v;
  std::uniform_int_distribution<int> kind_dist(0, depth >= 6 ? 3 : 5);
  switch (kind_dist(rng)) {
    case 0:
      v.kind = JsonValue::Kind::kNull;
      break;
    case 1:
      v.kind = JsonValue::Kind::kBool;
      v.boolean = (rng() & 1) != 0;
      break;
    case 2: {
      v.kind = JsonValue::Kind::kNumber;
      const std::uint64_t raw = rng();
      if ((rng() & 1) != 0) {
        v.number_is_uint = true;
        v.uinteger = raw;
        v.number = static_cast<double>(raw);
        if (raw <= static_cast<std::uint64_t>(
                       std::numeric_limits<long long>::max())) {
          v.number_is_int = true;
          v.integer = static_cast<long long>(raw);
        }
      } else {
        v.number_is_int = true;
        v.integer = static_cast<long long>(raw);
        v.number = static_cast<double>(v.integer);
        if (v.integer >= 0) {
          v.number_is_uint = true;
          v.uinteger = static_cast<std::uint64_t>(v.integer);
        }
      }
      break;
    }
    case 3: {
      v.kind = JsonValue::Kind::kString;
      static const char* pool[] = {"",     "plain", "\"quoted\"", "a\\b",
                                   "\n\t", "\x01",  "日本語",     "😀🎉",
                                   "é",    "x\ry"};
      std::uniform_int_distribution<int> len_dist(0, 4);
      std::uniform_int_distribution<std::size_t> pick(
          0, sizeof(pool) / sizeof(pool[0]) - 1);
      const int n = len_dist(rng);
      for (int i = 0; i < n; ++i) v.string += pool[pick(rng)];
      break;
    }
    case 4: {
      v.kind = JsonValue::Kind::kArray;
      std::uniform_int_distribution<int> len_dist(0, 4);
      const int n = len_dist(rng);
      for (int i = 0; i < n; ++i) {
        v.items.push_back(RandomValue(rng, depth + 1));
      }
      break;
    }
    default: {
      v.kind = JsonValue::Kind::kObject;
      std::uniform_int_distribution<int> len_dist(0, 4);
      const int n = len_dist(rng);
      for (int i = 0; i < n; ++i) {
        v.members.emplace_back("k" + std::to_string(i),
                               RandomValue(rng, depth + 1));
      }
      break;
    }
  }
  return v;
}

TEST(JsonRoundTripFuzz, EmitParseReemitIsByteIdentical) {
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 500; ++iter) {
    const JsonValue tree = RandomValue(rng, 0);
    const bool pretty = (iter & 1) != 0;
    JsonWriter w(pretty);
    WriteJsonValue(tree, &w);
    const std::string first = w.TakeString();
    auto parsed = ParseJson(first);
    ASSERT_TRUE(parsed.ok()) << "iter " << iter << ": " << parsed.error()
                             << "\n" << first;
    JsonWriter again(pretty);
    WriteJsonValue(parsed.value(), &again);
    EXPECT_EQ(again.str(), first) << "iter " << iter;
  }
}

}  // namespace
}  // namespace rapar
