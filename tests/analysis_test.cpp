// The analysis library: dataflow framework, constant propagation,
// reachability, liveness, footprints, prepass pruning and diagnostics.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/constprop.h"
#include "analysis/dataflow.h"
#include "analysis/diagnostics.h"
#include "analysis/footprint.h"
#include "analysis/liveness.h"
#include "analysis/prepass.h"
#include "analysis/reachability.h"
#include "lang/cfa.h"
#include "lang/parser.h"

namespace rapar {
namespace {

Program MustParse(const std::string& text) {
  Expected<Program> p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
  return std::move(p).value();
}

bool HasCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

// --- dataflow framework ------------------------------------------------------

TEST(DataflowTest, InEdgesMirrorOutEdges) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 2
    begin
      choice { r := x } or { x := r };
      r := 1
    end
  )");
  Cfa cfa = Cfa::Build(p);
  const std::vector<std::vector<EdgeId>> in = ComputeInEdges(cfa);
  std::size_t total = 0;
  for (const auto& v : in) total += v.size();
  EXPECT_EQ(total, cfa.edges().size());
  for (std::size_t n = 0; n < cfa.num_nodes(); ++n) {
    for (EdgeId e : in[n]) {
      EXPECT_EQ(cfa.Edge(e).to.index(), n);
    }
  }
}

// --- constant propagation ----------------------------------------------------

TEST(ConstPropTest, TracksConstantsAndGuardVerdicts) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r s
    dom 4
    begin
      r := 1;
      assume (r == 1);
      assume (r == 2);
      x := s
    end
  )");
  Cfa cfa = Cfa::Build(p);
  ConstPropResult cp = RunConstProp(cfa);
  // Registers start at 0; after r := 1, r is the constant 1.
  ASSERT_EQ(cfa.edges().size(), 4u);
  int always_true = 0, always_false = 0;
  for (GuardVerdict g : cp.guards) {
    always_true += g == GuardVerdict::kAlwaysTrue;
    always_false += g == GuardVerdict::kAlwaysFalse;
  }
  EXPECT_EQ(always_true, 1);   // assume (r == 1)
  EXPECT_EQ(always_false, 1);  // assume (r == 2)
  // The store after the false guard is unreachable.
  const CfaEdge& store = cfa.edges().back();
  EXPECT_EQ(store.instr.kind, Instr::Kind::kStore);
  EXPECT_FALSE(cp.node_reachable[store.from.index()]);
}

TEST(ConstPropTest, LoadsGoToTopAndGuardsRefine) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      r := x;
      assume (r == 3);
      assume (r == 3)
    end
  )");
  Cfa cfa = Cfa::Build(p);
  ConstPropResult cp = RunConstProp(cfa);
  // First guard is unknown (r is Top after the load); the second is
  // constantly true because the first pinned r to 3.
  std::vector<GuardVerdict> gs;
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    if (cfa.edges()[i].instr.kind == Instr::Kind::kAssume) {
      gs.push_back(cp.guards[i]);
    }
  }
  ASSERT_EQ(gs.size(), 2u);
  EXPECT_EQ(gs[0], GuardVerdict::kUnknown);
  EXPECT_EQ(gs[1], GuardVerdict::kAlwaysTrue);
}

TEST(ConstPropTest, JoinLosesDisagreeingConstants) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      choice { r := 1 } or { r := 2 };
      assume (r == 1)
    end
  )");
  Cfa cfa = Cfa::Build(p);
  ConstPropResult cp = RunConstProp(cfa);
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    if (cfa.edges()[i].instr.kind == Instr::Kind::kAssume) {
      EXPECT_EQ(cp.guards[i], GuardVerdict::kUnknown);
    }
  }
}

TEST(ConstPropTest, TerminatesOnLoops) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      loop { r := r + 1 };
      assume (r == 0)
    end
  )");
  Cfa cfa = Cfa::Build(p);
  ConstPropResult cp = RunConstProp(cfa);
  for (bool reachable : cp.node_reachable) EXPECT_TRUE(reachable);
}

// --- reachability ------------------------------------------------------------

TEST(ReachabilityTest, DeadEdgesBehindFalseGuard) {
  Program p = MustParse(R"(
    program q
    vars x
    regs one
    dom 2
    begin
      one := 1;
      choice { skip } or { assume (one == 0); assert false }
    end
  )");
  Cfa cfa = Cfa::Build(p);
  ReachabilityResult r = AnalyzeReachability(cfa);
  // The false guard itself and the assert edge behind it are dead.
  EXPECT_GE(r.num_dead_edges, 2u);
  ASSERT_EQ(r.dead_assert_edges.size(), 1u);
  EXPECT_EQ(cfa.Edge(r.dead_assert_edges[0]).instr.kind,
            Instr::Kind::kAssertFail);
}

TEST(ReachabilityTest, HandBuiltCfaWithUnreachableComponent) {
  // Entry --nop--> 1; nodes 2,3 form a disconnected component whose edge
  // must be reported dead.
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 2
    begin
      skip
    end
  )");
  std::vector<CfaEdge> edges;
  edges.push_back(CfaEdge{NodeId(0), NodeId(1), Instr(Instr::Kind::kNop)});
  Instr store(Instr::Kind::kStore);
  store.var = VarId(0);
  store.reg = RegId(0);
  edges.push_back(CfaEdge{NodeId(2), NodeId(3), store});
  Cfa cfa = Cfa::FromParts(p, 4, std::move(edges));
  ReachabilityResult r = AnalyzeReachability(cfa);
  EXPECT_TRUE(r.node_reachable[0]);
  EXPECT_TRUE(r.node_reachable[1]);
  EXPECT_FALSE(r.node_reachable[2]);
  EXPECT_FALSE(r.node_reachable[3]);
  EXPECT_FALSE(r.edge_dead[0]);
  EXPECT_TRUE(r.edge_dead[1]);
  EXPECT_EQ(r.num_dead_edges, 1u);
}

// --- liveness ----------------------------------------------------------------

TEST(LivenessTest, DeadAssignAndDeadLoadDetected) {
  Program p = MustParse(R"(
    program q
    vars x
    regs a b c
    dom 4
    begin
      a := 1;
      b := 2;
      c := x;
      x := a
    end
  )");
  Cfa cfa = Cfa::Build(p);
  LivenessResult live = AnalyzeLiveness(cfa);
  int dead_assigns = 0, dead_loads = 0, live_assigns = 0;
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    const Instr& instr = cfa.edges()[i].instr;
    if (instr.kind == Instr::Kind::kAssign) {
      (live.assign_dead[i] ? dead_assigns : live_assigns) += 1;
    }
    dead_loads += live.load_dead[i];
  }
  EXPECT_EQ(dead_assigns, 1);  // b := 2
  EXPECT_EQ(live_assigns, 1);  // a := 1 feeds the store
  EXPECT_EQ(dead_loads, 1);    // c := x
}

TEST(LivenessTest, SelfReferentialAssignKeepsSourceLive) {
  Program p = MustParse(R"(
    program q
    vars x
    regs a
    dom 4
    begin
      a := 1;
      a := a + 1;
      x := a
    end
  )");
  Cfa cfa = Cfa::Build(p);
  LivenessResult live = AnalyzeLiveness(cfa);
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    EXPECT_FALSE(live.assign_dead[i]) << "edge " << i;
  }
}

// --- footprints --------------------------------------------------------------

TEST(FootprintTest, PerThreadAndSystemWideSets) {
  Program writer = MustParse(R"(
    program w
    vars x y
    regs one
    dom 2
    begin
      one := 1;
      x := one
    end
  )");
  Program reader = MustParse(R"(
    program r
    vars x y
    regs a
    dom 2
    begin
      a := x;
      y := a
    end
  )");
  Cfa wc = Cfa::Build(writer);
  Cfa rc = Cfa::Build(reader);
  VarFootprint wf = ComputeFootprint(wc);
  EXPECT_TRUE(wf.stored[0]);
  EXPECT_FALSE(wf.loaded[0]);
  EXPECT_FALSE(wf.Observes(VarId(0)));
  EXPECT_TRUE(wf.Writes(VarId(0)));

  std::vector<bool> observed = ObservedVars({&wc, &rc}, 2);
  EXPECT_TRUE(observed[0]);   // reader loads x
  EXPECT_FALSE(observed[1]);  // y is stored but never read
}

TEST(FootprintTest, CasCountsAsReadAndWrite) {
  Program p = MustParse(R"(
    program q
    vars t
    regs zero one
    dom 2
    begin
      one := 1;
      cas(t, zero, one)
    end
  )");
  Cfa cfa = Cfa::Build(p);
  VarFootprint fp = ComputeFootprint(cfa);
  EXPECT_TRUE(fp.cased[0]);
  EXPECT_TRUE(fp.Observes(VarId(0)));
  EXPECT_TRUE(fp.Writes(VarId(0)));
  EXPECT_TRUE(ObservedVars({&cfa}, 1)[0]);
}

// --- prepass -----------------------------------------------------------------

TEST(PrepassTest, PrunesAllFourKinds) {
  Program p = MustParse(R"(
    program q
    vars flag debug
    regs one tmp r
    dom 3
    begin
      one := 1;
      tmp := 2;
      debug := one;
      flag := one;
      r := flag;
      assume (one == 1);
      choice { skip } or { assume (one == 2); assert false }
    end
  )");
  Cfa cfa = Cfa::Build(p);
  PrepassResult res = RunPrepass(cfa, {}, VarId::Invalid());
  EXPECT_GE(res.stats.dead_edges_removed, 2u);  // false guard + assert
  EXPECT_EQ(res.stats.guards_folded, 1u);       // assume (one == 1)
  EXPECT_EQ(res.stats.stores_sliced, 1u);       // debug := one
  EXPECT_EQ(res.stats.assigns_dropped, 1u);     // tmp := 2
  EXPECT_TRUE(res.stats.Any());
  // Node ids survive; only edges changed.
  EXPECT_EQ(res.env.num_nodes(), cfa.num_nodes());
  EXPECT_EQ(res.env.edges().size(),
            cfa.edges().size() - res.stats.dead_edges_removed);
  // The pruned CFA is stable: pruning again removes nothing.
  PrepassResult again = RunPrepass(res.env, {}, VarId::Invalid());
  EXPECT_FALSE(again.stats.Any());
}

TEST(PrepassTest, GoalVariableStoresAreProtected) {
  Program p = MustParse(R"(
    program q
    vars g
    regs one
    dom 2
    begin
      one := 1;
      g := one
    end
  )");
  Cfa cfa = Cfa::Build(p);
  // Without protection the store to g (never read) is sliced...
  PrepassResult unprotected = RunPrepass(cfa, {}, VarId::Invalid());
  EXPECT_EQ(unprotected.stats.stores_sliced, 1u);
  // ...with g as the MG goal it must stay.
  PrepassResult protected_run = RunPrepass(cfa, {}, VarId(0));
  EXPECT_EQ(protected_run.stats.stores_sliced, 0u);
  bool has_store = false;
  for (const CfaEdge& e : protected_run.env.edges()) {
    has_store |= e.instr.kind == Instr::Kind::kStore;
  }
  EXPECT_TRUE(has_store);
}

TEST(PrepassTest, ObservedAcrossThreadsBlocksSlicing) {
  Program writer = MustParse(R"(
    program w
    vars x
    regs one
    dom 2
    begin
      one := 1;
      x := one
    end
  )");
  Program reader = MustParse(R"(
    program r
    vars x
    regs a
    dom 2
    begin
      a := x;
      assume (a == 1)
    end
  )");
  Cfa wc = Cfa::Build(writer);
  Cfa rc = Cfa::Build(reader);
  PrepassResult res = RunPrepass(wc, {&rc}, VarId::Invalid());
  // The reader observes x, so the writer's store must survive.
  EXPECT_EQ(res.stats.stores_sliced, 0u);
}

// --- diagnostics -------------------------------------------------------------

TEST(DiagnosticsTest, EnvCasYieldsRa001WithLocation) {
  Program p = MustParse(R"(program t
vars ticket
regs zero one
dom 2
begin
  one := 1;
  cas(ticket, zero, one)
end)");
  std::vector<Diagnostic> diags = LintProgram(p, {});
  ASSERT_TRUE(HasCode(diags, "RA001"));
  for (const Diagnostic& d : diags) {
    if (d.code != "RA001") continue;
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_TRUE(d.loc.valid());
    EXPECT_EQ(d.loc.line, 7);
    EXPECT_NE(d.message.find("Theorem 1.1"), std::string::npos);
  }
  // As a dis thread the same program is unremarkable.
  LintOptions dis;
  dis.role = ThreadRole::kDis;
  EXPECT_FALSE(HasCode(LintProgram(p, dis), "RA001"));
}

TEST(DiagnosticsTest, LintCoversDeadCodeFamilies) {
  Program p = MustParse(R"(
    program q
    vars flag debug
    regs one tmp r
    dom 3
    begin
      one := 1;
      tmp := 2;
      debug := one;
      flag := one;
      r := flag;
      choice { skip } or { assume (one == 2); assert false }
    end
  )");
  std::vector<Diagnostic> diags = LintProgram(p, {});
  EXPECT_TRUE(HasCode(diags, "RA003"));  // debug := one never observed
  EXPECT_TRUE(HasCode(diags, "RA004"));  // tmp := 2 never read
  EXPECT_TRUE(HasCode(diags, "RA005"));  // r := flag never used
  EXPECT_TRUE(HasCode(diags, "RA007"));  // assume (one == 2)
  EXPECT_TRUE(HasCode(diags, "RA009"));  // assert false unreachable
  EXPECT_FALSE(HasCode(diags, "RA001"));
}

TEST(DiagnosticsTest, SystemObservedSetSuppressesDeadStore) {
  Program writer = MustParse(R"(
    program w
    vars x
    regs one
    dom 2
    begin
      one := 1;
      x := one
    end
  )");
  // Alone, the store to x is dead...
  EXPECT_TRUE(HasCode(LintProgram(writer, {}), "RA003"));
  // ...but not when the system-wide observed set says x is read.
  LintOptions system_view;
  system_view.observed_vars = {true};
  EXPECT_FALSE(HasCode(LintProgram(writer, system_view), "RA003"));
}

TEST(DiagnosticsTest, RenderMatchesCompilerConvention) {
  const std::string text = "program q\nvars x\nregs r\ndom 2\nbegin\n  r := x\nend\n";
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = "RA005";
  d.message = "loaded value is never used";
  d.loc = SrcLoc{6, 3};
  const std::string out = RenderDiagnostic(d, "demo.rap", text);
  EXPECT_NE(out.find("demo.rap:6:3: warning: RA005: "), std::string::npos);
  EXPECT_NE(out.find("6 |   r := x"), std::string::npos);
  EXPECT_NE(out.find("^"), std::string::npos);
}

TEST(DiagnosticsTest, SortOrdersByPositionThenCode) {
  std::vector<Diagnostic> diags;
  diags.push_back({Severity::kNote, "RA008", "later", SrcLoc{9, 1}});
  diags.push_back({Severity::kNote, "RA002", "no position", SrcLoc{}});
  diags.push_back({Severity::kWarning, "RA004", "earlier", SrcLoc{3, 5}});
  SortDiagnostics(diags);
  EXPECT_EQ(diags[0].code, "RA004");
  EXPECT_EQ(diags[1].code, "RA008");
  EXPECT_EQ(diags[2].code, "RA002");  // unknown positions sort last
}

}  // namespace
}  // namespace rapar
