// Witness minimisation: validity checking, greedy shrinking, and the
// ready-made properties.
#include "simplified/witness_min.h"

#include <gtest/gtest.h>

#include "core/benchmarks.h"
#include "lowerbound/qbf.h"
#include "lowerbound/tqbf_reduction.h"

namespace rapar {
namespace {

TEST(StepEnabledTest, AgreesWithEnumerationOnRandomWalks) {
  BenchmarkCase pc = ProducerConsumer(2);
  const SimplSystem& sys = pc.system.simpl();
  SimplConfig cfg = InitialConfig(sys);
  // Every enumerated step must be enabled; a corrupted step must not be.
  for (int round = 0; round < 10; ++round) {
    std::vector<SimplStep> steps;
    EnumerateSteps(sys, cfg, ViewChoice::kMinimal, steps);
    if (steps.empty()) break;
    for (const SimplStep& s : steps) {
      EXPECT_TRUE(StepEnabled(sys, cfg, s)) << s.ToString();
      SimplStep bad = s;
      bad.edge = 9999;
      EXPECT_FALSE(StepEnabled(sys, cfg, bad));
      if (s.read_kind != SimplStep::ReadKind::kNone) {
        SimplStep bad2 = s;
        bad2.read_pos = 9999;
        EXPECT_FALSE(StepEnabled(sys, cfg, bad2));
      }
    }
    ApplyStep(sys, cfg, steps[0]);
  }
}

TEST(TryReplayTest, AcceptsExplorerWitnessesAndRejectsCorruption) {
  BenchmarkCase pc = ProducerConsumer(2);
  SimplExplorer ex(pc.system.simpl());
  SimplResult r = ex.Check({});
  ASSERT_TRUE(r.violation);
  EXPECT_TRUE(TryReplay(pc.system.simpl(), r.witness, nullptr));

  std::vector<SimplStep> corrupted = r.witness;
  corrupted[0].edge = 9999;
  EXPECT_FALSE(TryReplay(pc.system.simpl(), corrupted, nullptr));
}

TEST(MinimizeWitnessTest, PreservesViolationAndNeverGrows) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  for (const BenchmarkCase& bench : suite) {
    SimplExplorer ex(bench.system.simpl());
    SimplExplorerOptions opts;
    opts.time_budget_ms = 20'000;
    SimplResult r = ex.Check(opts);
    if (!r.violation) continue;
    const std::size_t before = r.witness.size();
    std::vector<SimplStep> min = MinimizeWitness(
        bench.system.simpl(), r.witness, ViolationProperty());
    EXPECT_LE(min.size(), before) << bench.name;
    EXPECT_TRUE(TryReplay(bench.system.simpl(), min, nullptr))
        << bench.name;
    ASSERT_FALSE(min.empty()) << bench.name;
    EXPECT_TRUE(min.back().violation) << bench.name;
  }
}

TEST(MinimizeWitnessTest, GoalPropertyKeepsTheGoalMessage) {
  BenchmarkCase pc = ProducerConsumer(2);
  VarId x = pc.system.vars().Find("x");
  SimplExplorer ex(pc.system.simpl());
  SimplExplorerOptions opts;
  opts.goal = {x, 2};
  SimplResult r = ex.Check(opts);
  ASSERT_TRUE(r.goal_reached);
  std::vector<SimplStep> min =
      MinimizeWitness(pc.system.simpl(), r.witness, GoalProperty(x, 2));
  SimplConfig final_cfg;
  ASSERT_TRUE(TryReplay(pc.system.simpl(), min, &final_cfg));
  bool found = false;
  for (const EnvMsg& m : final_cfg.env_msgs()) {
    if (m.var == x && m.val == 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MinimizeWitnessTest, ShrinksTqbfSaturationNoise) {
  // TQBF witnesses are produced by whole-fixpoint saturation and carry
  // many irrelevant role executions; minimisation must strip a good part.
  Qbf taut;
  taut.n = 0;
  taut.matrix = QOr({QLit(Qbf::U(0)), QLit(Qbf::U(0), true)});
  Expected<ParamSystem> sys = TqbfSystem(taut);
  SimplExplorer ex(sys.value().simpl());
  SimplResult r = ex.Check({});
  ASSERT_TRUE(r.violation);
  std::vector<SimplStep> min = MinimizeWitness(
      sys.value().simpl(), r.witness, ViolationProperty());
  EXPECT_LT(min.size(), r.witness.size());
  EXPECT_TRUE(min.back().violation);
}

TEST(MinimizeWitnessTest, RefusesInvalidInput) {
  BenchmarkCase pc = ProducerConsumer(1);
  SimplExplorer ex(pc.system.simpl());
  SimplResult r = ex.Check({});
  ASSERT_TRUE(r.violation);
  std::vector<SimplStep> corrupted = r.witness;
  corrupted[0].edge = 9999;
  std::vector<SimplStep> out = MinimizeWitness(
      pc.system.simpl(), corrupted, ViolationProperty());
  EXPECT_EQ(out.size(), corrupted.size());  // returned unchanged
}

}  // namespace
}  // namespace rapar
