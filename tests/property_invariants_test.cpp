// Property-based invariant tests.
//
//  * View lattice laws (the join semilattice the semantics computes in).
//  * Timestamp-lifting laws (Lemma 3.1's machinery): strictly increasing
//    per-variable transformations commute with join and preserve the
//    order — the algebraic core of why canonical/dense timestamps are
//    sound in both explorers.
//  * Random-walk invariants of the simplified configurations: whatever
//    enabled steps are applied, the structural invariants hold.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "lang/random_program.h"
#include "ra/view.h"
#include "simplified/explorer.h"

namespace rapar {
namespace {

View RandomView(Rng& rng, std::size_t vars, Timestamp max_ts) {
  View v(vars);
  for (std::size_t i = 0; i < vars; ++i) {
    v.Slot(i) = static_cast<Timestamp>(rng.Below(max_ts + 1));
  }
  return v;
}

class ViewLatticeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewLatticeTest, JoinLaws) {
  Rng rng(GetParam());
  const std::size_t vars = 1 + rng.Below(6);
  View a = RandomView(rng, vars, 9);
  View b = RandomView(rng, vars, 9);
  View c = RandomView(rng, vars, 9);

  // Idempotence, commutativity, associativity.
  EXPECT_TRUE(a.Join(a) == a);
  EXPECT_TRUE(a.Join(b) == b.Join(a));
  EXPECT_TRUE(a.Join(b).Join(c) == a.Join(b.Join(c)));
  // Join is the least upper bound.
  EXPECT_TRUE(a.Leq(a.Join(b)));
  EXPECT_TRUE(b.Leq(a.Join(b)));
  View ub = a.Join(b).Join(c);
  EXPECT_TRUE(a.Join(b).Leq(ub));
}

TEST_P(ViewLatticeTest, LeqIsPartialOrder) {
  Rng rng(GetParam() + 1000);
  const std::size_t vars = 1 + rng.Below(6);
  View a = RandomView(rng, vars, 9);
  View b = RandomView(rng, vars, 9);
  EXPECT_TRUE(a.Leq(a));
  if (a.Leq(b) && b.Leq(a)) {
    EXPECT_TRUE(a == b);
  }
  // Monotone: joins dominate.
  EXPECT_TRUE(a.Leq(a.Join(b)));
}

TEST_P(ViewLatticeTest, LiftingCommutesWithJoin) {
  // A per-variable strictly increasing map (Lemma 3.1's M) applied to
  // views: M(a ⊔ b) == M(a) ⊔ M(b), and a ≤ b iff M(a) ≤ M(b).
  Rng rng(GetParam() + 2000);
  const std::size_t vars = 1 + rng.Below(4);
  // Random strictly increasing maps on 0..9 with mu(0)=0.
  std::vector<std::vector<Timestamp>> mu(vars);
  for (std::size_t x = 0; x < vars; ++x) {
    Timestamp cur = 0;
    mu[x].push_back(0);
    for (int t = 1; t <= 9; ++t) {
      cur += 1 + static_cast<Timestamp>(rng.Below(3));
      mu[x].push_back(cur);
    }
  }
  auto lift = [&](const View& v) {
    View out(vars);
    for (std::size_t x = 0; x < vars; ++x) {
      out.Slot(x) = mu[x][static_cast<std::size_t>(v.Slot(x))];
    }
    return out;
  };
  View a = RandomView(rng, vars, 9);
  View b = RandomView(rng, vars, 9);
  EXPECT_TRUE(lift(a.Join(b)) == lift(a).Join(lift(b)));
  EXPECT_EQ(a.Leq(b), lift(a).Leq(lift(b)));
  EXPECT_EQ(a == b, lift(a) == lift(b));
}

INSTANTIATE_TEST_SUITE_P(Random, ViewLatticeTest,
                         ::testing::Range<std::uint64_t>(1, 40));

// --- random-walk invariants over the simplified semantics --------------------

struct WalkSystem {
  std::vector<std::unique_ptr<Cfa>> owned;
  SimplSystem sys;
};

WalkSystem MakeWalkSystem(std::uint64_t seed) {
  Rng rng(seed);
  RandomProgramOptions env_opts;
  env_opts.num_vars = 2;
  env_opts.num_regs = 2;
  env_opts.dom = 3;
  env_opts.size = 5;
  RandomProgramOptions dis_opts = env_opts;
  dis_opts.allow_cas = true;
  WalkSystem w;
  Program env = RandomProgram(rng, env_opts, "env");
  Program dis = RandomProgram(rng, dis_opts, "dis");
  w.owned.push_back(std::make_unique<Cfa>(Cfa::Build(env)));
  w.owned.push_back(std::make_unique<Cfa>(Cfa::Build(dis)));
  w.sys.env = w.owned[0].get();
  w.sys.dis = {w.owned[1].get()};
  w.sys.dom = env_opts.dom;
  w.sys.num_vars = env_opts.num_vars;
  return w;
}

// Structural invariants every reachable abstract configuration satisfies.
void CheckInvariants(const SimplSystem& sys, const SimplConfig& cfg) {
  for (std::size_t xi = 0; xi < sys.num_vars; ++xi) {
    const VarId x(static_cast<std::uint32_t>(xi));
    const auto& seq = cfg.DisMsgsOf(x);
    ASSERT_GE(seq.size(), 1u);
    // Dis message i has its own timestamp 2i; init is first, never glued.
    EXPECT_EQ(seq[0].val, kInitValue);
    EXPECT_FALSE(seq[0].glued);
    for (std::size_t p = 0; p < seq.size(); ++p) {
      EXPECT_EQ(seq[p].view[x], DisTs(static_cast<int>(p)));
      EXPECT_LT(seq[p].val, sys.dom);
    }
  }
  for (const EnvMsg& m : cfg.env_msgs()) {
    // Env timestamps are of the ⁺ form and within the gap range.
    EXPECT_TRUE(IsPlus(m.ts()));
    EXPECT_LT(GapOf(m.ts()), cfg.NumGaps(m.var));
    // Frozen gaps hold no env messages.
    EXPECT_FALSE(cfg.GapFrozen(m.var, GapOf(m.ts())));
    EXPECT_LT(m.val, sys.dom);
  }
  // Views never exceed the top timestamp of their variable.
  auto check_view = [&](const View& vw) {
    for (std::size_t xi = 0; xi < sys.num_vars; ++xi) {
      const VarId x(static_cast<std::uint32_t>(xi));
      EXPECT_GE(vw[x], 0);
      EXPECT_LE(vw[x], PlusTs(cfg.NumGaps(x) - 1));
    }
  };
  for (const EnvMsg& m : cfg.env_msgs()) check_view(m.view);
  for (const LocalCfg& c : cfg.env_cfgs()) check_view(c.view);
  for (const LocalCfg& t : cfg.dis_threads()) check_view(t.view);
}

class RandomWalkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWalkTest, InvariantsHoldAlongRandomRuns) {
  const std::uint64_t seed = GetParam();
  WalkSystem w = MakeWalkSystem(seed);
  Rng rng(seed * 31 + 7);
  for (ViewChoice policy : {ViewChoice::kMinimal, ViewChoice::kAll}) {
    SimplConfig cfg = InitialConfig(w.sys);
    CheckInvariants(w.sys, cfg);
    std::vector<SimplStep> steps;
    for (int i = 0; i < 60; ++i) {
      steps.clear();
      EnumerateSteps(w.sys, cfg, policy, steps);
      if (steps.empty()) break;
      const SimplStep& step = steps[rng.Below(steps.size())];
      ApplyStep(w.sys, cfg, step);
      CheckInvariants(w.sys, cfg);
    }
  }
}

TEST_P(RandomWalkTest, HashEqualityConsistentAlongRuns) {
  const std::uint64_t seed = GetParam();
  WalkSystem w = MakeWalkSystem(seed);
  Rng rng(seed * 17 + 3);
  SimplConfig cfg = InitialConfig(w.sys);
  std::vector<SimplStep> steps;
  for (int i = 0; i < 40; ++i) {
    steps.clear();
    EnumerateSteps(w.sys, cfg, ViewChoice::kMinimal, steps);
    if (steps.empty()) break;
    SimplConfig copy = cfg;
    EXPECT_EQ(copy.Hash(), cfg.Hash());
    EXPECT_TRUE(copy == cfg);
    EXPECT_TRUE(copy.Covers(cfg) && cfg.Covers(copy));
    ApplyStep(w.sys, cfg, steps[rng.Below(steps.size())]);
  }
}

TEST_P(RandomWalkTest, MonotoneComponentsOnlyGrow) {
  const std::uint64_t seed = GetParam();
  WalkSystem w = MakeWalkSystem(seed);
  Rng rng(seed * 13 + 11);
  SimplConfig cfg = InitialConfig(w.sys);
  std::vector<SimplStep> steps;
  for (int i = 0; i < 50; ++i) {
    steps.clear();
    EnumerateSteps(w.sys, cfg, ViewChoice::kMinimal, steps);
    if (steps.empty()) break;
    const std::size_t msgs = cfg.env_msgs().size();
    const std::size_t cfgs = cfg.env_cfgs().size();
    ApplyStep(w.sys, cfg, steps[rng.Below(steps.size())]);
    EXPECT_GE(cfg.env_msgs().size(), msgs);
    EXPECT_GE(cfg.env_cfgs().size(), cfgs);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RandomWalkTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace rapar
