// Parser robustness: print/parse round-trips for random programs, and
// mutation fuzzing (the parser must reject or accept, never crash, and
// accepted mutants must re-print deterministically).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lang/parser.h"
#include "lang/random_program.h"

namespace rapar {
namespace {

class RoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripTest, RandomProgramsRoundTrip) {
  Rng rng(GetParam());
  RandomProgramOptions opts;
  opts.num_vars = 1 + static_cast<int>(rng.Below(3));
  opts.num_regs = 1 + static_cast<int>(rng.Below(3));
  opts.dom = 2 + static_cast<int>(rng.Below(5));
  opts.size = 3 + static_cast<int>(rng.Below(10));
  opts.allow_cas = rng.Chance(1, 2);
  opts.allow_loops = rng.Chance(1, 2);
  Program p = RandomProgram(rng, opts, "fuzz");

  const std::string text1 = p.ToString();
  Expected<Program> q = ParseProgram(text1);
  ASSERT_TRUE(q.ok()) << q.error() << "\n" << text1;
  const std::string text2 = q.value().ToString();
  EXPECT_EQ(text1, text2);

  // Symbol tables survive the round trip.
  EXPECT_EQ(p.vars().size(), q.value().vars().size());
  EXPECT_EQ(p.regs().size(), q.value().regs().size());
  EXPECT_EQ(p.dom(), q.value().dom());
}

INSTANTIATE_TEST_SUITE_P(Random, RoundTripTest,
                         ::testing::Range<std::uint64_t>(1, 60));

class MutationFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzzTest, MutatedSourcesNeverCrashTheParser) {
  Rng rng(GetParam());
  RandomProgramOptions opts;
  opts.num_vars = 2;
  opts.num_regs = 2;
  opts.dom = 4;
  opts.size = 6;
  opts.allow_cas = true;
  opts.allow_loops = true;
  std::string text = RandomProgram(rng, opts, "mut").ToString();

  static const char kNoise[] =
      "abcxyz0189 ;:=(){}<>!&|+-*\n\tassume assert cas loop choice";
  for (int round = 0; round < 30; ++round) {
    std::string mutated = text;
    const int edits = 1 + static_cast<int>(rng.Below(4));
    for (int e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.Below(mutated.size());
      switch (rng.Below(3)) {
        case 0:  // replace
          mutated[pos] = kNoise[rng.Below(sizeof(kNoise) - 1)];
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // insert
          mutated.insert(pos, 1, kNoise[rng.Below(sizeof(kNoise) - 1)]);
          break;
      }
    }
    Expected<Program> r = ParseProgram(mutated);
    if (r.ok()) {
      // Accepted mutants must be printable and re-parseable.
      Expected<Program> again = ParseProgram(r.value().ToString());
      EXPECT_TRUE(again.ok()) << r.value().ToString();
    } else {
      EXPECT_FALSE(r.error().empty());
    }
  }
}

TEST_P(MutationFuzzTest, TruncatedSourcesNeverCrashTheParser) {
  Rng rng(GetParam() + 777);
  RandomProgramOptions opts;
  opts.num_vars = 2;
  opts.num_regs = 2;
  opts.dom = 3;
  opts.size = 5;
  std::string text = RandomProgram(rng, opts, "trunc").ToString();
  for (std::size_t cut = 0; cut < text.size(); cut += 7) {
    Expected<Program> r = ParseProgram(text.substr(0, cut));
    if (!r.ok()) {
      EXPECT_FALSE(r.error().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, MutationFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace rapar
