// Release-build guard: the engine translation units linked into this
// binary are compiled with NDEBUG (see tests/CMakeLists.txt), so every
// assert() in them is a no-op. Malformed goals and unsafe rules used to
// be caught only by asserts — in a release build a non-ground goal read
// Term::val of a variable as a constant symbol and an unbound native
// input dereferenced an empty optional. These tests pin the explicit
// validation path: structured std::invalid_argument, never UB.
#include <gtest/gtest.h>

#include <stdexcept>

#include "datalog/engine.h"

namespace rapar::dl {
namespace {

Program Tc() {
  Program prog;
  PredId edge = prog.AddPred("edge", 2);
  PredId path = prog.AddPred("path", 2);
  Sym a = prog.ConstSym("a"), b = prog.ConstSym("b"), c = prog.ConstSym("c");
  prog.AddFact(Atom{edge, {C(a), C(b)}});
  prog.AddFact(Atom{edge, {C(b), C(c)}});
  prog.AddRule(Rule{Atom{path, {V(0), V(1)}}, {Atom{edge, {V(0), V(1)}}}, {}});
  prog.AddRule(Rule{Atom{path, {V(0), V(2)}},
                    {Atom{path, {V(0), V(1)}}, Atom{edge, {V(1), V(2)}}},
                    {}});
  return prog;
}

TEST(DatalogReleaseGuardTest, AssertsAreCompiledOut) {
#ifndef NDEBUG
  FAIL() << "this binary must be built with NDEBUG to exercise the "
            "release path";
#endif
}

TEST(DatalogReleaseGuardTest, NonGroundGoalThrowsCleanly) {
  Program prog = Tc();
  const PredId path = 1;
  EXPECT_THROW(Query(prog, Atom{path, {V(0), C(0)}}), std::invalid_argument);
}

TEST(DatalogReleaseGuardTest, ArityMismatchedGoalThrowsCleanly) {
  Program prog = Tc();
  const PredId path = 1;
  EXPECT_THROW(Query(prog, Atom{path, {C(0)}}), std::invalid_argument);
}

TEST(DatalogReleaseGuardTest, UnknownPredicateGoalThrowsCleanly) {
  Program prog = Tc();
  EXPECT_THROW(Query(prog, Atom{static_cast<PredId>(42), {C(0)}}),
               std::invalid_argument);
}

TEST(DatalogReleaseGuardTest, UnboundNativeInputThrowsCleanly) {
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 1);
  Sym a = prog.ConstSym("a");
  prog.AddFact(Atom{p, {C(a)}});
  Rule r;
  r.head = Atom{q, {V(0)}};
  r.body = {Atom{p, {V(0)}}};
  Native f;
  f.name = "f";
  f.inputs = {V(7)};  // never bound
  f.output = 8;
  f.fn = [](std::span<const Sym>, Sym* out) {
    *out = 0;
    return true;
  };
  r.natives.push_back(std::move(f));
  prog.AddRule(std::move(r));
  EXPECT_THROW(Eval(prog), std::invalid_argument);
}

TEST(DatalogReleaseGuardTest, ValidQueriesStillWork) {
  Program prog = Tc();
  const PredId path = 1;
  EXPECT_TRUE(Query(prog, Atom{path, {C(0), C(2)}}));   // a ->* c
  EXPECT_FALSE(Query(prog, Atom{path, {C(2), C(0)}}));  // c -/-> a
}

}  // namespace
}  // namespace rapar::dl
