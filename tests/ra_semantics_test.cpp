// Litmus tests for the standard RA semantics (Figure 2): the explorer must
// allow exactly the weak behaviours RA allows.
//
// Convention: all programs of one instance declare the same `vars` list in
// the same order, so VarIds align across threads.
#include "ra/explorer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lang/parser.h"

namespace rapar {
namespace {

struct Instance {
  std::vector<std::unique_ptr<Cfa>> cfas;
  std::vector<const Cfa*> ptrs;
  Value dom = 0;
  std::size_t num_vars = 0;
};

Instance MakeInstance(const std::vector<std::string>& programs) {
  Instance inst;
  for (const auto& text : programs) {
    Expected<Program> p = ParseProgram(text);
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    Program prog = std::move(p).value();
    if (inst.dom == 0) {
      inst.dom = prog.dom();
      inst.num_vars = prog.vars().size();
    } else {
      EXPECT_EQ(inst.dom, prog.dom());
      EXPECT_EQ(inst.num_vars, prog.vars().size());
    }
    inst.cfas.push_back(std::make_unique<Cfa>(Cfa::Build(prog)));
  }
  for (const auto& c : inst.cfas) inst.ptrs.push_back(c.get());
  return inst;
}

RaResult Check(const std::vector<std::string>& programs,
               int max_depth = 200) {
  Instance inst = MakeInstance(programs);
  RaExplorer explorer(inst.ptrs, inst.dom, inst.num_vars);
  RaExplorerOptions opts;
  opts.max_depth = max_depth;
  return explorer.CheckSafety(opts);
}

// --- Message passing (the Figure 1 guarantee) ------------------------------

constexpr const char* kMpWriter = R"(
  program writer
  vars x y
  regs r
  dom 2
  begin
    r := 1;
    y := r;
    x := r
  end
)";

TEST(RaLitmusTest, MessagePassingForbidden) {
  // Reader sees x == 1; RA then forbids reading the overwritten y == 0.
  const char* reader = R"(
    program reader
    vars x y
    regs a b
    dom 2
    begin
      a := x;
      assume (a == 1);
      b := y;
      assume (b == 0);
      assert false
    end
  )";
  RaResult r = Check({kMpWriter, reader});
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

TEST(RaLitmusTest, MessagePassingPositiveCaseReachable) {
  // Sanity: reading x == 1 then y == 1 is of course possible.
  const char* reader = R"(
    program reader
    vars x y
    regs a b
    dom 2
    begin
      a := x;
      assume (a == 1);
      b := y;
      assume (b == 1);
      assert false
    end
  )";
  RaResult r = Check({kMpWriter, reader});
  EXPECT_TRUE(r.violation);
  EXPECT_FALSE(r.witness.empty());
}

TEST(RaLitmusTest, ReadBeforeAnyWriteSeesInit) {
  const char* reader = R"(
    program reader
    vars x y
    regs a
    dom 2
    begin
      a := x;
      assume (a == 0);
      assert false
    end
  )";
  RaResult r = Check({kMpWriter, reader});
  EXPECT_TRUE(r.violation);
}

// --- Store buffering: allowed under RA (unlike SC) -------------------------

TEST(RaLitmusTest, StoreBufferingAllowed) {
  const char* left = R"(
    program left
    vars x y fa fb
    regs r one
    dom 2
    begin
      one := 1;
      x := one;
      r := y;
      assume (r == 0);
      fa := one
    end
  )";
  const char* right = R"(
    program right
    vars x y fa fb
    regs r one
    dom 2
    begin
      one := 1;
      y := one;
      r := x;
      assume (r == 0);
      fb := one
    end
  )";
  const char* checker = R"(
    program checker
    vars x y fa fb
    regs a b
    dom 2
    begin
      a := fa;
      assume (a == 1);
      b := fb;
      assume (b == 1);
      assert false
    end
  )";
  RaResult r = Check({left, right, checker});
  // Both threads reading 0 (the SB weak behaviour) is allowed under RA.
  EXPECT_TRUE(r.violation);
}

// --- Coherence (per-variable) ----------------------------------------------

TEST(RaLitmusTest, CoherenceForbidsReadingBackwards) {
  const char* writer = R"(
    program writer
    vars x
    regs r
    dom 4
    begin
      r := 1;
      x := r;
      r := 2;
      x := r
    end
  )";
  const char* reader = R"(
    program reader
    vars x
    regs a b
    dom 4
    begin
      a := x;
      assume (a == 2);
      b := x;
      assume (b == 1);
      assert false
    end
  )";
  RaResult r = Check({writer, reader});
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

TEST(RaLitmusTest, CoherenceAllowsRereadingSameMessage) {
  const char* writer = R"(
    program writer
    vars x
    regs r
    dom 4
    begin
      r := 1;
      x := r;
      r := 2;
      x := r
    end
  )";
  const char* reader = R"(
    program reader
    vars x
    regs a b
    dom 4
    begin
      a := x;
      assume (a == 1);
      b := x;
      assume (b == 1);
      assert false
    end
  )";
  RaResult r = Check({writer, reader});
  EXPECT_TRUE(r.violation);
}

// --- CAS atomicity ----------------------------------------------------------

TEST(RaLitmusTest, TwoCasOnSameValueCannotBothSucceed) {
  auto contender = [](const char* flag) {
    return std::string(R"(
      program contender
      vars x f1 f2
      regs zero one
      dom 2
      begin
        zero := 0;
        one := 1;
        cas(x, zero, one);
        )") + flag + R"( := one
      end
    )";
  };
  const char* checker = R"(
    program checker
    vars x f1 f2
    regs a b
    dom 2
    begin
      a := f1;
      assume (a == 1);
      b := f2;
      assume (b == 1);
      assert false
    end
  )";
  RaResult r =
      Check({contender("f1"), contender("f2"), checker});
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

TEST(RaLitmusTest, SingleCasSucceeds) {
  const char* t = R"(
    program t
    vars x
    regs zero one a
    dom 2
    begin
      zero := 0;
      one := 1;
      cas(x, zero, one);
      a := x;
      assume (a == 1);
      assert false
    end
  )";
  RaResult r = Check({t});
  EXPECT_TRUE(r.violation);
}

TEST(RaLitmusTest, CasChainCountsAtomically) {
  // Three threads each try cas(x, i, i+1); the final value can only be 3 if
  // the threads performed a chain 0->1->2->3, and any interleaving yields
  // exactly one success per value level.
  auto inc = [](int from) {
    return std::string("program inc\nvars x\nregs a b\ndom 4\nbegin\n  a := ") +
           std::to_string(from) + ";\n  b := " + std::to_string(from + 1) +
           ";\n  cas(x, a, b)\nend\n";
  };
  const char* checker = R"(
    program checker
    vars x
    regs r
    dom 4
    begin
      r := x;
      assume (r == 3);
      assert false
    end
  )";
  RaResult r = Check({inc(0), inc(1), inc(2), checker});
  EXPECT_TRUE(r.violation);
}

TEST(RaLitmusTest, CasFailureBranchNotModelled) {
  // Our cas is the paper's: it blocks unless the expected value can be
  // read. A cas on a never-written value cannot proceed, so the program
  // cannot reach its assert.
  const char* t = R"(
    program t
    vars x
    regs two three
    dom 4
    begin
      two := 2;
      three := 3;
      cas(x, two, three);
      assert false
    end
  )";
  RaResult r = Check({t});
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

// --- Store ordering / glue interaction --------------------------------------

TEST(RaLitmusTest, StoreCannotSplitCasPair) {
  // Thread A performs cas(x,0,1). Thread B stores 2 to x. If B's store
  // could take a timestamp between the CAS load (init) and its store, a
  // reader could observe x == 2 with a view strictly between; adjacency
  // forbids it. Observable consequence: after reading 1, a reader can
  // never read 2 unless B's store is mo-after the CAS store; and a reader
  // that saw 2 then 1 must be impossible (2 cannot be mo-between 0 and 1).
  const char* casser = R"(
    program casser
    vars x
    regs zero one
    dom 4
    begin
      zero := 0;
      one := 1;
      cas(x, zero, one)
    end
  )";
  const char* storer = R"(
    program storer
    vars x
    regs two
    dom 4
    begin
      two := 2;
      x := two
    end
  )";
  // Reader observing 2 then 1 would require mo order init < 2 < 1, i.e. 2
  // inside the CAS pair.
  const char* reader = R"(
    program reader
    vars x
    regs a b
    dom 4
    begin
      a := x;
      assume (a == 2);
      b := x;
      assume (b == 1);
      assert false
    end
  )";
  RaResult r = Check({casser, storer, reader});
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

// --- Figure 1 end-to-end -----------------------------------------------------

TEST(RaFigure1Test, ProducerConsumerSnippetReplays) {
  // Figure 1 with the roles as in the paper: the consumer stores y := 1,
  // the producer reads it, computes, and stores x; the consumer then loads
  // x and can see either the init message or the produced value.
  const char* producer = R"(
    program producer
    vars x y
    regs r
    dom 8
    begin
      r := y;           // λ1
      assume (r == 1);  // λ2
      r := r + 3;
      x := r            // λ3  (stores 4)
    end
  )";
  const char* consumer_sees_4 = R"(
    program consumer
    vars x y
    regs s one
    dom 8
    begin
      one := 1;
      y := one;         // τ1
      s := x;           // τ3
      assume (s == 4);
      assert false
    end
  )";
  EXPECT_TRUE(Check({producer, consumer_sees_4}).violation);

  const char* consumer_sees_0 = R"(
    program consumer
    vars x y
    regs s one
    dom 8
    begin
      one := 1;
      y := one;
      s := x;
      assume (s == 0);
      assert false
    end
  )";
  EXPECT_TRUE(Check({producer, consumer_sees_0}).violation);

  // But a value never produced is unreachable.
  const char* consumer_sees_5 = R"(
    program consumer
    vars x y
    regs s one
    dom 8
    begin
      one := 1;
      y := one;
      s := x;
      assume (s == 5);
      assert false
    end
  )";
  RaResult r = Check({producer, consumer_sees_5});
  EXPECT_FALSE(r.violation);
  EXPECT_TRUE(r.exhaustive);
}

// --- Explorer bookkeeping -----------------------------------------------------

TEST(RaExplorerTest, GeneratedMessagesAreRecorded) {
  const char* t = R"(
    program t
    vars x
    regs r
    dom 4
    begin
      r := 2;
      x := r
    end
  )";
  Instance inst = MakeInstance({t});
  RaExplorer explorer(inst.ptrs, inst.dom, inst.num_vars);
  explorer.CheckSafety();
  EXPECT_TRUE(explorer.generated_messages().count({0u, 2}) > 0);
  EXPECT_FALSE(explorer.generated_messages().count({0u, 3}) > 0);
}

TEST(RaExplorerTest, SymmetryReductionPreservesVerdict) {
  const char* env = R"(
    program env
    vars x
    regs r
    dom 4
    begin
      r := x;
      r := r + 1;
      x := r
    end
  )";
  const char* checker = R"(
    program checker
    vars x
    regs r
    dom 4
    begin
      r := x;
      assume (r == 3);
      assert false
    end
  )";
  Instance inst = MakeInstance({env, env, env, checker});
  for (bool sym : {false, true}) {
    RaExplorer explorer(inst.ptrs, inst.dom, inst.num_vars, {0, 3});
    RaExplorerOptions opts;
    opts.symmetry_reduction = sym;
    RaResult r = explorer.CheckSafety(opts);
    EXPECT_TRUE(r.violation) << "sym=" << sym;
  }
}

TEST(RaExplorerTest, DepthBoundReportsNonExhaustive) {
  const char* t = R"(
    program t
    vars x
    regs r
    dom 2
    begin
      loop { r := x }
    end
  )";
  Instance inst = MakeInstance({t});
  RaExplorer explorer(inst.ptrs, inst.dom, inst.num_vars);
  RaExplorerOptions opts;
  opts.max_depth = 2;
  RaResult r = explorer.CheckSafety(opts);
  EXPECT_FALSE(r.violation);
  EXPECT_FALSE(r.exhaustive);
}

}  // namespace
}  // namespace rapar
