// Unit tests for src/dlopt/: predicate dependency graph, rule checks,
// width analysis, query-driven optimization, and the RA02x diagnostics —
// all on small hand-built programs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "datalog/engine.h"
#include "dlopt/dl_diagnostics.h"
#include "dlopt/optimize.h"
#include "dlopt/pred_graph.h"
#include "dlopt/rule_checks.h"
#include "dlopt/width.h"

namespace rapar::dlopt {
namespace {

using dl::Atom;
using dl::C;
using dl::Native;
using dl::PredId;
using dl::Program;
using dl::Rule;
using dl::Sym;
using dl::V;

Native TaggedCheck(const std::string& tag, std::vector<dl::Term> inputs,
                   bool result = true) {
  Native n;
  n.name = tag;
  n.tag = tag;
  n.inputs = std::move(inputs);
  n.fn = [result](std::span<const Sym>, Sym*) { return result; };
  return n;
}

// edge facts a->b->c->d, path = transitive closure, plus a predicate
// `stray` no rule for the query depends on.
struct TcProgram {
  Program prog;
  PredId edge, path, stray;
  Sym a, b, c, d;

  TcProgram() {
    edge = prog.AddPred("edge", 2);
    path = prog.AddPred("path", 2);
    stray = prog.AddPred("stray", 1);
    a = prog.ConstSym("a");
    b = prog.ConstSym("b");
    c = prog.ConstSym("c");
    d = prog.ConstSym("d");
    prog.AddFact(Atom{edge, {C(a), C(b)}});
    prog.AddFact(Atom{edge, {C(b), C(c)}});
    prog.AddFact(Atom{edge, {C(c), C(d)}});
    prog.AddRule(
        Rule{Atom{path, {V(0), V(1)}}, {Atom{edge, {V(0), V(1)}}}, {}});
    prog.AddRule(Rule{Atom{path, {V(0), V(2)}},
                      {Atom{path, {V(0), V(1)}}, Atom{edge, {V(1), V(2)}}},
                      {}});
    prog.AddRule(
        Rule{Atom{stray, {V(0)}}, {Atom{edge, {V(0), V(1)}}}, {}});
  }
};

// --- PredGraph -----------------------------------------------------------

TEST(PredGraphTest, BuildAndSccs) {
  TcProgram tc;
  PredGraph g = PredGraph::Build(tc.prog);
  ASSERT_EQ(g.num_preds, 3u);
  EXPECT_FALSE(g.is_idb[tc.edge]);
  EXPECT_TRUE(g.is_idb[tc.path]);
  EXPECT_TRUE(g.has_fact[tc.edge]);
  EXPECT_FALSE(g.has_fact[tc.path]);
  // path -> {edge, path}: the self-dependency makes its SCC recursive.
  EXPECT_TRUE(g.scc_recursive[g.scc_of[tc.path]]);
  EXPECT_FALSE(g.scc_recursive[g.scc_of[tc.edge]]);
  // Topological numbering: dependencies point to higher component ids.
  EXPECT_LT(g.scc_of[tc.path], g.scc_of[tc.edge]);
}

TEST(PredGraphTest, ReachableAndProductive) {
  TcProgram tc;
  PredGraph g = PredGraph::Build(tc.prog);
  std::vector<bool> cone = g.ReachableFrom(tc.path);
  EXPECT_TRUE(cone[tc.path]);
  EXPECT_TRUE(cone[tc.edge]);
  EXPECT_FALSE(cone[tc.stray]);

  std::vector<bool> prod = g.Productive(tc.prog);
  EXPECT_TRUE(prod[tc.edge]);
  EXPECT_TRUE(prod[tc.path]);
  EXPECT_TRUE(prod[tc.stray]);
}

TEST(PredGraphTest, UnproductiveChainIsDetected) {
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 1);
  PredId empty = prog.AddPred("empty", 1);
  // p(X) :- q(X).  q(X) :- empty(X).  No facts at all.
  prog.AddRule(Rule{Atom{p, {V(0)}}, {Atom{q, {V(0)}}}, {}});
  prog.AddRule(Rule{Atom{q, {V(0)}}, {Atom{empty, {V(0)}}}, {}});
  PredGraph g = PredGraph::Build(prog);
  std::vector<bool> prod = g.Productive(prog);
  EXPECT_FALSE(prod[p]);
  EXPECT_FALSE(prod[q]);
  EXPECT_FALSE(prod[empty]);
}

TEST(PredGraphTest, DumpsMentionEveryUsedPredicate) {
  TcProgram tc;
  PredGraph g = PredGraph::Build(tc.prog);
  const std::string text = g.ToText(tc.prog);
  EXPECT_NE(text.find("path"), std::string::npos);
  EXPECT_NE(text.find("edge"), std::string::npos);
  const std::string dot = g.ToDot(tc.prog, g.ReachableFrom(tc.path));
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("path/2"), std::string::npos);
}

// --- rule checks ---------------------------------------------------------

TEST(RuleChecksTest, CanonicalKeyIdentifiesRenamedRules) {
  Program prog;
  PredId p = prog.AddPred("p", 2);
  PredId q = prog.AddPred("q", 2);
  Rule r1{Atom{p, {V(0), V(1)}}, {Atom{q, {V(0), V(1)}}}, {}};
  Rule r2{Atom{p, {V(5), V(9)}}, {Atom{q, {V(5), V(9)}}}, {}};
  Rule r3{Atom{p, {V(1), V(0)}}, {Atom{q, {V(0), V(1)}}}, {}};
  EXPECT_EQ(CanonicalRuleKey(r1), CanonicalRuleKey(r2));
  EXPECT_NE(CanonicalRuleKey(r1), CanonicalRuleKey(r3));
}

TEST(RuleChecksTest, UntaggedNativesNeverCollide) {
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 1);
  auto make = [&]() {
    Rule r{Atom{p, {V(0)}}, {Atom{q, {V(0)}}}, {}};
    Native n;
    n.name = "mystery";
    n.inputs = {V(0)};
    n.fn = [](std::span<const Sym>, Sym*) { return true; };
    r.natives.push_back(std::move(n));
    return r;
  };
  Rule r1 = make();
  Rule r2 = make();
  EXPECT_NE(CanonicalRuleKey(r1), CanonicalRuleKey(r2));
  EXPECT_FALSE(Subsumes(r1, r2));
}

TEST(RuleChecksTest, SubsumptionFindsMoreGeneralRule) {
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 2);
  Sym k = prog.ConstSym("k");
  // General: p(X) :- q(X, Y).  Specific: p(X) :- q(X, k), q(X, X).
  Rule general{Atom{p, {V(0)}}, {Atom{q, {V(0), V(1)}}}, {}};
  Rule specific{Atom{p, {V(0)}},
                {Atom{q, {V(0), C(k)}}, Atom{q, {V(0), V(0)}}},
                {}};
  EXPECT_TRUE(Subsumes(general, specific));
  EXPECT_FALSE(Subsumes(specific, general));
  // Reflexive on native-free rules.
  EXPECT_TRUE(Subsumes(general, general));
}

TEST(RuleChecksTest, SubsumptionRespectsNativeTags) {
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 1);
  Rule plain{Atom{p, {V(0)}}, {Atom{q, {V(0)}}}, {}};
  Rule guarded{Atom{p, {V(0)}}, {Atom{q, {V(0)}}}, {}};
  guarded.natives.push_back(TaggedCheck("even", {V(0)}));
  // The unguarded rule derives everything the guarded one does...
  EXPECT_TRUE(Subsumes(plain, guarded));
  // ...but not vice versa: the native restricts.
  EXPECT_FALSE(Subsumes(guarded, plain));
}

TEST(RuleChecksTest, RangeRestrictionViolations) {
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 1);
  // Bad: head variable V1 unbound.
  prog.AddRule(Rule{Atom{p, {V(1)}}, {Atom{q, {V(0)}}}, {}});
  // Bad: native input V2 unbound.
  {
    Rule r{Atom{p, {V(0)}}, {Atom{q, {V(0)}}}, {}};
    r.natives.push_back(TaggedCheck("chk", {V(2)}));
    prog.AddRule(std::move(r));
  }
  // Good: head variable bound by a native *output*, whose input chains
  // from the body.
  {
    Rule r{Atom{p, {V(3)}}, {Atom{q, {V(0)}}}, {}};
    Native n = TaggedCheck("mk", {V(0)});
    n.output = 3;
    n.fn = [](std::span<const Sym> in, Sym* o) {
      *o = in[0];
      return true;
    };
    r.natives.push_back(std::move(n));
    prog.AddRule(std::move(r));
  }
  std::vector<RangeRestrictionViolation> v = ValidateRangeRestriction(prog);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].rule_index, 0u);
  EXPECT_EQ(v[1].rule_index, 1u);
}

// --- width ---------------------------------------------------------------

TEST(WidthTest, ClassifiesLinearCacheAndWide) {
  Program prog;
  PredId e = prog.AddPred("e", 2);
  PredId lin = prog.AddPred("lin", 2);
  PredId cache = prog.AddPred("cache", 2);
  PredId wide = prog.AddPred("wide", 2);
  Sym a = prog.ConstSym("a");
  prog.AddFact(Atom{e, {C(a), C(a)}});
  prog.AddRule(Rule{Atom{lin, {V(0), V(1)}}, {Atom{e, {V(0), V(1)}}}, {}});
  prog.AddRule(Rule{Atom{cache, {V(0), V(2)}},
                    {Atom{lin, {V(0), V(1)}}, Atom{lin, {V(1), V(2)}}},
                    {}});
  prog.AddRule(Rule{Atom{wide, {V(0), V(3)}},
                    {Atom{cache, {V(0), V(1)}}, Atom{cache, {V(1), V(2)}},
                     Atom{cache, {V(2), V(3)}}},
                    {}});
  PredGraph g = PredGraph::Build(prog);
  WidthReport all = AnalyzeWidth(prog, g);
  EXPECT_EQ(all.program_cls, WidthClass::kWide);
  EXPECT_FALSE(all.program_recursive);

  // Restricted to the cone of `cache`, the wide rule is invisible.
  WidthReport cone = AnalyzeWidth(prog, g, cache);
  EXPECT_EQ(cone.program_cls, WidthClass::kCache);
  ASSERT_TRUE(cone.static_k_bound.has_value());
  EXPECT_GE(*cone.static_k_bound, 3u);

  const std::string text = all.ToString(prog, g);
  EXPECT_NE(text.find("wide"), std::string::npos);
}

TEST(WidthTest, RecursiveConeHasNoStaticBound) {
  TcProgram tc;
  PredGraph g = PredGraph::Build(tc.prog);
  WidthReport w = AnalyzeWidth(tc.prog, g, tc.path);
  EXPECT_TRUE(w.program_recursive);
  EXPECT_FALSE(w.static_k_bound.has_value());
  // Two body atoms, but only one on an IDB predicate: linear fragment.
  EXPECT_EQ(w.program_cls, WidthClass::kLinear);
}

// --- optimize ------------------------------------------------------------

TEST(OptimizeTest, DropsRulesOutsideTheQueryCone) {
  TcProgram tc;
  OptimizeResult r =
      OptimizeForQuery(tc.prog, Atom{tc.path, {C(tc.a), C(tc.d)}});
  // The stray rule is backward-unreachable from path.
  EXPECT_EQ(r.stats.unreachable_removed, 1u);
  EXPECT_EQ(r.cause[5], RemovalCause::kUnreachable);
  EXPECT_EQ(r.prog.size(), tc.prog.size() - 1);
  // The answer is preserved.
  EXPECT_TRUE(dl::Query(r.prog, Atom{tc.path, {C(tc.a), C(tc.d)}}));
  EXPECT_FALSE(dl::Query(r.prog, Atom{tc.path, {C(tc.d), C(tc.a)}}));
}

TEST(OptimizeTest, DropsUnproductiveRules) {
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId ghost = prog.AddPred("ghost", 1);
  Sym a = prog.ConstSym("a");
  prog.AddFact(Atom{p, {C(a)}});
  // p(X) :- ghost(X): ghost has no facts and no rules.
  prog.AddRule(Rule{Atom{p, {V(0)}}, {Atom{ghost, {V(0)}}}, {}});
  OptimizeResult r = OptimizeForQuery(prog, Atom{p, {C(a)}});
  EXPECT_EQ(r.stats.unproductive_removed, 1u);
  EXPECT_EQ(r.cause[1], RemovalCause::kUnproductive);
  EXPECT_TRUE(dl::Query(r.prog, Atom{p, {C(a)}}));
}

TEST(OptimizeTest, DemandSpecializationPrunesForeignConstants) {
  // Two "pc chains" like makeP's dtp predicates: the query only demands
  // location l2, so the rule deriving l9 feeds nothing.
  Program prog;
  PredId at = prog.AddPred("at", 2);
  PredId goal = prog.AddPred("goal", 0);
  Sym l1 = prog.ConstSym("l1");
  Sym l2 = prog.ConstSym("l2");
  Sym l9 = prog.ConstSym("l9");
  Sym v = prog.ConstSym("v");
  prog.AddFact(Atom{at, {C(l1), C(v)}});
  prog.AddRule(
      Rule{Atom{at, {C(l2), V(0)}}, {Atom{at, {C(l1), V(0)}}}, {}});
  prog.AddRule(
      Rule{Atom{at, {C(l9), V(0)}}, {Atom{at, {C(l1), V(0)}}}, {}});
  prog.AddRule(Rule{Atom{goal, {}}, {Atom{at, {C(l2), V(0)}}}, {}});
  OptimizeResult r = OptimizeForQuery(prog, Atom{goal, {}});
  EXPECT_EQ(r.stats.demand_removed, 1u);
  EXPECT_EQ(r.cause[2], RemovalCause::kUndemanded);
  EXPECT_TRUE(dl::Query(r.prog, Atom{goal, {}}));
}

TEST(OptimizeTest, DemandTopWhenPositionHasVariableUse) {
  // A body occurrence with a variable in the position makes the demand ⊤:
  // nothing may be pruned on that argument.
  Program prog;
  PredId at = prog.AddPred("at", 1);
  PredId goal = prog.AddPred("goal", 0);
  Sym l1 = prog.ConstSym("l1");
  Sym l2 = prog.ConstSym("l2");
  prog.AddFact(Atom{at, {C(l1)}});
  prog.AddRule(Rule{Atom{at, {C(l2)}}, {Atom{at, {C(l1)}}}, {}});
  prog.AddRule(Rule{Atom{goal, {}}, {Atom{at, {V(0)}}}, {}});
  OptimizeResult r = OptimizeForQuery(prog, Atom{goal, {}});
  EXPECT_EQ(r.stats.demand_removed, 0u);
  EXPECT_EQ(r.prog.size(), prog.size());
}

TEST(OptimizeTest, RemovesDuplicatesAndSubsumed) {
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 2);
  Sym a = prog.ConstSym("a");
  Sym k = prog.ConstSym("k");
  prog.AddFact(Atom{q, {C(a), C(k)}});
  prog.AddRule(Rule{Atom{p, {V(0)}}, {Atom{q, {V(0), V(1)}}}, {}});
  // Duplicate of the rule above, different variable numbering.
  prog.AddRule(Rule{Atom{p, {V(7)}}, {Atom{q, {V(7), V(3)}}}, {}});
  // Strictly more specific: subsumed by the general rule.
  prog.AddRule(Rule{Atom{p, {V(0)}}, {Atom{q, {V(0), C(k)}}}, {}});
  OptimizeResult r = OptimizeForQuery(prog, Atom{p, {C(a)}});
  EXPECT_EQ(r.stats.duplicates_removed, 1u);
  EXPECT_EQ(r.stats.subsumed_removed, 1u);
  EXPECT_TRUE(dl::Query(r.prog, Atom{p, {C(a)}}));
}

TEST(OptimizeTest, StatsToStringIsReadable) {
  TcProgram tc;
  OptimizeResult r =
      OptimizeForQuery(tc.prog, Atom{tc.path, {C(tc.a), C(tc.d)}});
  const std::string s = r.stats.ToString();
  EXPECT_NE(s.find("rules 6 -> 5"), std::string::npos) << s;
  DlOptStats sum = r.stats;
  sum += r.stats;
  EXPECT_EQ(sum.rules_before, 2 * r.stats.rules_before);
}

TEST(OptimizeTest, DisabledPassesLeaveTheProgramAlone) {
  TcProgram tc;
  DlOptOptions off;
  off.dead_rule_elimination = false;
  off.demand_specialization = false;
  off.duplicate_elimination = false;
  off.subsumption_elimination = false;
  off.copy_alias_elimination = false;
  OptimizeResult r =
      OptimizeForQuery(tc.prog, Atom{tc.path, {C(tc.a), C(tc.d)}}, off);
  EXPECT_EQ(r.prog.size(), tc.prog.size());
  EXPECT_FALSE(r.stats.Any());
  EXPECT_TRUE(std::all_of(r.cause.begin(), r.cause.end(),
                          [](RemovalCause c) {
                            return c == RemovalCause::kKept;
                          }));
}

TEST(OptimizeTest, CopyAliasChainCollapsesToItsSource) {
  // goal :- p; p(X,Y) :- q(X,Y); q(X,Y) :- r(X,Y); r facts. p and q are
  // identity copies with a single deriving rule each, so both alias away
  // and the goal rule reads r directly.
  Program prog;
  PredId goal = prog.AddPred("goal", 0);
  PredId p = prog.AddPred("p", 2);
  PredId q = prog.AddPred("q", 2);
  PredId r = prog.AddPred("r", 2);
  Sym a = prog.ConstSym("a");
  Sym b = prog.ConstSym("b");
  prog.AddFact(Atom{r, {C(a), C(b)}});
  prog.AddRule(Rule{Atom{goal, {}}, {Atom{p, {C(a), V(0)}}}, {}});
  prog.AddRule(Rule{Atom{p, {V(0), V(1)}}, {Atom{q, {V(0), V(1)}}}, {}});
  prog.AddRule(Rule{Atom{q, {V(0), V(1)}}, {Atom{r, {V(0), V(1)}}}, {}});
  OptimizeResult res = OptimizeForQuery(prog, Atom{goal, {}});
  EXPECT_EQ(res.stats.copy_aliased_removed, 2u);
  // Input order: r fact, goal rule, p :- q, q :- r.
  EXPECT_EQ(res.cause[2], RemovalCause::kCopyAliased);
  EXPECT_EQ(res.cause[3], RemovalCause::kCopyAliased);
  // The surviving goal rule was rewritten to consume r.
  bool goal_reads_r = false;
  for (const Rule& rule : res.prog.rules()) {
    if (rule.head.pred != goal) continue;
    ASSERT_EQ(rule.body.size(), 1u);
    goal_reads_r = rule.body[0].pred == r;
  }
  EXPECT_TRUE(goal_reads_r);
  EXPECT_TRUE(dl::Query(res.prog, Atom{goal, {}}));
}

TEST(OptimizeTest, CopyAliasRespectsExtraDerivationsAndTheGoal) {
  // p has a second deriving rule, so the identity copy is NOT p's only
  // derivation and must stay. The goal predicate itself never aliases.
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 1);
  PredId s = prog.AddPred("s", 1);
  Sym a = prog.ConstSym("a");
  prog.AddFact(Atom{q, {C(a)}});
  prog.AddFact(Atom{s, {C(a)}});
  prog.AddRule(Rule{Atom{p, {V(0)}}, {Atom{q, {V(0)}}}, {}});
  prog.AddRule(Rule{Atom{p, {V(0)}}, {Atom{s, {V(0)}}}, {}});
  OptimizeResult res = OptimizeForQuery(prog, Atom{p, {C(a)}});
  EXPECT_EQ(res.stats.copy_aliased_removed, 0u);
  // Single copy rule onto the goal predicate: kept (goal must survive).
  Program prog2;
  PredId g2 = prog2.AddPred("g", 1);
  PredId q2 = prog2.AddPred("q", 1);
  Sym a2 = prog2.ConstSym("a");
  prog2.AddFact(Atom{q2, {C(a2)}});
  prog2.AddRule(Rule{Atom{g2, {V(0)}}, {Atom{q2, {V(0)}}}, {}});
  OptimizeResult res2 = OptimizeForQuery(prog2, Atom{g2, {C(a2)}});
  EXPECT_EQ(res2.stats.copy_aliased_removed, 0u);
  EXPECT_TRUE(dl::Query(res2.prog, Atom{g2, {C(a2)}}));
}

// --- diagnostics ---------------------------------------------------------

TEST(DlDiagnosticsTest, EmitsExpectedCodes) {
  TcProgram tc;
  // Add a range-restriction violation and a duplicate on top.
  tc.prog.AddRule(
      Rule{Atom{tc.path, {V(0), V(9)}}, {Atom{tc.edge, {V(0), V(1)}}}, {}});
  tc.prog.AddRule(
      Rule{Atom{tc.stray, {V(4)}}, {Atom{tc.edge, {V(4), V(2)}}}, {}});
  DlAnalysis a =
      AnalyzeDlProgram(tc.prog, Atom{tc.path, {C(tc.a), C(tc.d)}});
  auto has = [&](const char* code) {
    return std::any_of(a.diagnostics.begin(), a.diagnostics.end(),
                       [&](const Diagnostic& d) { return d.code == code; });
  };
  EXPECT_TRUE(has("RA020"));  // stray rules: dead
  EXPECT_TRUE(has("RA025"));  // unbound head variable
  EXPECT_TRUE(has("RA026"));  // width report
  for (const Diagnostic& d : a.diagnostics) {
    EXPECT_FALSE(d.loc.valid()) << d.code;  // synthetic program
  }
}

// --- engine stats (satellite fix) ----------------------------------------

TEST(EngineStatsTest, QueryResetsStatsAtEntry) {
  TcProgram tc;
  dl::EvalStats stats;
  ASSERT_TRUE(dl::Query(tc.prog, Atom{tc.path, {C(tc.a), C(tc.d)}}, &stats));
  const std::size_t first = stats.tuples;
  ASSERT_GT(first, 0u);
  // Re-solving with the same struct must not accumulate.
  ASSERT_TRUE(dl::Query(tc.prog, Atom{tc.path, {C(tc.a), C(tc.d)}}, &stats));
  EXPECT_EQ(stats.tuples, first);
}

TEST(EngineStatsTest, EngineTracksLastAndTotal) {
  TcProgram tc;
  dl::Engine engine;
  EXPECT_TRUE(engine.Solve(tc.prog, Atom{tc.path, {C(tc.a), C(tc.d)}}));
  const std::size_t one = engine.last_stats().tuples;
  EXPECT_GT(one, 0u);
  EXPECT_FALSE(engine.Solve(tc.prog, Atom{tc.path, {C(tc.d), C(tc.a)}}));
  EXPECT_EQ(engine.solves(), 2u);
  EXPECT_EQ(engine.total_stats().tuples,
            one + engine.last_stats().tuples);
  EXPECT_FALSE(engine.last_stats().goal_found);
  EXPECT_TRUE(engine.total_stats().goal_found);
}

TEST(EngineStatsTest, BudgetAbortStillRecordsPartialStats) {
  TcProgram tc;
  dl::Engine engine;
  dl::EvalOptions opts;
  opts.max_tuples = 2;
  EXPECT_THROW(
      engine.Solve(tc.prog, Atom{tc.path, {C(tc.d), C(tc.a)}}, opts),
      std::runtime_error);
  EXPECT_GT(engine.total_stats().tuples, 0u);
  EXPECT_EQ(engine.solves(), 1u);
}

}  // namespace
}  // namespace rapar::dlopt
