// Golden tests for the stable machine-readable envelopes
// (core/result_json.h). The schema is a compatibility contract: fields
// may be added under kResultSchemaVersion, but every key, type and
// value range pinned here must survive until the version is bumped.
// The emitters here are the exact functions rapar_cli renders through,
// so the CLI output cannot drift from what these tests accept.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/diagnostics.h"
#include "common/json.h"
#include "core/benchmarks.h"
#include "core/result_json.h"
#include "core/verifier.h"
#include "tmai/certcheck.h"
#include "tmai/tmai.h"
#include "tmai/tmai_diagnostics.h"

namespace rapar {
namespace {

// Every key the verdict envelope guarantees, with its kind check.
void CheckVerdictEnvelope(const JsonValue& doc, const char* label) {
  const JsonValue* schema = doc.Find("schema_version");
  ASSERT_NE(schema, nullptr) << label;
  EXPECT_TRUE(schema->number_is_int) << label;
  EXPECT_EQ(schema->integer, kResultSchemaVersion) << label;

  ASSERT_NE(doc.Find("tool"), nullptr) << label;
  EXPECT_EQ(doc.Find("tool")->string, "rapar") << label;
  ASSERT_NE(doc.Find("command"), nullptr) << label;

  const JsonValue* verdict = doc.Find("verdict");
  ASSERT_NE(verdict, nullptr) << label;
  const std::set<std::string> verdicts = {"safe", "unsafe", "unknown"};
  EXPECT_TRUE(verdicts.count(verdict->string)) << label << ": "
                                               << verdict->string;

  const JsonValue* exit_code = doc.Find("exit_code");
  ASSERT_NE(exit_code, nullptr) << label;
  EXPECT_TRUE(exit_code->number_is_int) << label;
  EXPECT_GE(exit_code->integer, 0) << label;
  EXPECT_LE(exit_code->integer, 2) << label;

  // Nullable fields must be present even when null.
  const JsonValue* witness = doc.Find("witness");
  ASSERT_NE(witness, nullptr) << label;
  EXPECT_TRUE(witness->is_null() || witness->is_string()) << label;
  const JsonValue* bound = doc.Find("env_thread_bound");
  ASSERT_NE(bound, nullptr) << label;
  EXPECT_TRUE(bound->is_null() || bound->is_number()) << label;
  const JsonValue* stopped = doc.Find("stopped_phase");
  ASSERT_NE(stopped, nullptr) << label;
  EXPECT_TRUE(stopped->is_null() || stopped->is_string()) << label;

  // The backend that actually produced the verdict: one of the plain
  // backend names, or "portfolio:<winner>" when the race decided.
  const std::set<std::string> backends = {"simplified", "datalog",
                                          "concrete", "tmai", "portfolio"};
  const JsonValue* produced = doc.Find("backend");
  ASSERT_NE(produced, nullptr) << label;
  ASSERT_TRUE(produced->is_string()) << label;
  {
    std::string base = produced->string;
    const std::size_t colon = base.find(':');
    if (colon != std::string::npos) {
      EXPECT_EQ(base.substr(0, colon), "portfolio") << label;
      base = base.substr(colon + 1);
    }
    EXPECT_TRUE(backends.count(base)) << label << ": " << produced->string;
  }

  const JsonValue* options = doc.Find("options");
  ASSERT_NE(options, nullptr) << label;
  ASSERT_TRUE(options->is_object()) << label;
  ASSERT_NE(options->Find("backend"), nullptr) << label;
  EXPECT_TRUE(backends.count(options->Find("backend")->string)) << label;
  ASSERT_NE(options->Find("enable_prepass"), nullptr) << label;
  const JsonValue* datalog = options->Find("datalog");
  ASSERT_NE(datalog, nullptr) << label;
  ASSERT_TRUE(datalog->is_object()) << label;
  EXPECT_NE(datalog->Find("enable_dlopt"), nullptr) << label;
  EXPECT_NE(datalog->Find("threads"), nullptr) << label;
  EXPECT_NE(datalog->Find("batch_size"), nullptr) << label;
  const JsonValue* concrete = options->Find("concrete");
  ASSERT_NE(concrete, nullptr) << label;
  EXPECT_NE(concrete->Find("env_threads"), nullptr) << label;
  EXPECT_NE(options->Find("max_states"), nullptr) << label;
  EXPECT_NE(options->Find("max_depth"), nullptr) << label;
  EXPECT_NE(options->Find("time_budget_ms"), nullptr) << label;
  EXPECT_NE(options->Find("max_guesses"), nullptr) << label;

  const JsonValue* telemetry = doc.Find("telemetry");
  ASSERT_NE(telemetry, nullptr) << label;
  EXPECT_TRUE(telemetry->is_object()) << label;
}

TEST(JsonSchemaTest, VerdictEnvelopeUnsafeDatalog) {
  BenchmarkCase bench = ProducerConsumer(4);
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kDatalog;
  const Verdict v = verifier.Run(std::nullopt, opts);
  ASSERT_TRUE(v.unsafe());

  const std::string json =
      VerdictToJson(v, opts, "verify", bench.system.Signature());
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();
  CheckVerdictEnvelope(doc.value(), "unsafe/datalog");
  EXPECT_EQ(doc.value().Find("verdict")->string, "unsafe");
  EXPECT_EQ(doc.value().Find("exit_code")->integer, 1);
  // Certificate-free envelopes keep the exact pre-certificate key set.
  EXPECT_EQ(doc.value().Find("certificate"), nullptr);
  // Same contract for the activity-gated PR 10 sections: a default
  // single-shard, no-resume run keeps the exact pre-shard key set.
  EXPECT_EQ(doc.value().Find("shard"), nullptr);
  EXPECT_EQ(doc.value().Find("checkpoint"), nullptr);
  EXPECT_EQ(doc.value().Find("command")->string, "verify");
  EXPECT_EQ(doc.value().Find("system")->string, bench.system.Signature());
  EXPECT_EQ(doc.value().Find("options")->Find("backend")->string, "datalog");
  // The telemetry block carries the stable metric names.
  const JsonValue* t = doc.value().Find("telemetry");
  EXPECT_NE(t->Find("verify.guesses"), nullptr);
  EXPECT_NE(t->Find("datalog.tuples"), nullptr);
  EXPECT_NE(t->Find("engine.rule_firings"), nullptr);
  EXPECT_NE(t->Find("phase.total_ms"), nullptr);
}

TEST(JsonSchemaTest, VerdictEnvelopeSafeSimplified) {
  BenchmarkCase bench = ProducerConsumerSafe(4);
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  const Verdict v = verifier.Run(std::nullopt, opts);
  ASSERT_TRUE(v.safe());

  const std::string json =
      VerdictToJson(v, opts, "verify", bench.system.Signature());
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();
  CheckVerdictEnvelope(doc.value(), "safe/simplified");
  EXPECT_EQ(doc.value().Find("verdict")->string, "safe");
  EXPECT_EQ(doc.value().Find("exit_code")->integer, 0);
  EXPECT_TRUE(doc.value().Find("witness")->is_null());
  EXPECT_TRUE(doc.value().Find("stopped_phase")->is_null());
  // Safe, but not via TMAI: no certificate key, same as before PR 7.
  EXPECT_EQ(doc.value().Find("certificate"), nullptr);
  EXPECT_EQ(doc.value().Find("shard"), nullptr);
  EXPECT_EQ(doc.value().Find("checkpoint"), nullptr);
  const JsonValue* t = doc.value().Find("telemetry");
  EXPECT_NE(t->Find("verify.states"), nullptr);
}

// Sharded-run golden: when a run scans one residue class of the guess
// enumeration (and checkpoints its position), the envelope gains the
// "shard" and "checkpoint" sections — still under kResultSchemaVersion,
// with the shapes the --shards orchestrator merges on.
TEST(JsonSchemaTest, VerdictEnvelopeShardAndCheckpointSections) {
  BenchmarkCase bench = DekkerFences();
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kDatalog;
  opts.datalog.shard_index = 1;
  opts.datalog.shard_count = 2;
  opts.datalog.checkpoint_every = 1;
  opts.datalog.checkpoint_sink = [](const CursorCheckpoint&) {};
  const Verdict v = verifier.Run(std::nullopt, opts);

  const std::string json =
      VerdictToJson(v, opts, "verify", bench.system.Signature());
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();
  CheckVerdictEnvelope(doc.value(), "sharded/datalog");

  const JsonValue* shard = doc.value().Find("shard");
  ASSERT_NE(shard, nullptr);
  ASSERT_TRUE(shard->is_object());
  EXPECT_EQ(shard->Find("index")->uinteger, 1u);
  EXPECT_EQ(shard->Find("count")->uinteger, 2u);

  const JsonValue* checkpoint = doc.value().Find("checkpoint");
  ASSERT_NE(checkpoint, nullptr);
  ASSERT_TRUE(checkpoint->is_object());
  ASSERT_NE(checkpoint->Find("writes"), nullptr);
  EXPECT_GT(checkpoint->Find("writes")->uinteger, 0u);
  ASSERT_NE(checkpoint->Find("resume_offset"), nullptr);
}

TEST(JsonSchemaTest, VerdictEnvelopeDeadlineUnknown) {
  BenchmarkCase bench = PetersonRa();
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kDatalog;
  opts.time_budget_ms = 1;
  const Verdict v = verifier.Run(std::nullopt, opts);
  ASSERT_EQ(v.result, Verdict::Result::kUnknown);

  const std::string json =
      VerdictToJson(v, opts, "verify", bench.system.Signature());
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();
  CheckVerdictEnvelope(doc.value(), "unknown/deadline");
  EXPECT_EQ(doc.value().Find("verdict")->string, "unknown");
  EXPECT_EQ(doc.value().Find("exit_code")->integer, 2);
  ASSERT_TRUE(doc.value().Find("stopped_phase")->is_string());
  EXPECT_EQ(doc.value().Find("stopped_phase")->string, "solve");
}

TEST(JsonSchemaTest, VerdictEnvelopeEchoesProducingBackend) {
  BenchmarkCase bench = Rcu();
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kTmai;
  const Verdict v = verifier.Run(std::nullopt, opts);
  ASSERT_TRUE(v.safe());

  const std::string json =
      VerdictToJson(v, opts, "verify", bench.system.Signature());
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();
  CheckVerdictEnvelope(doc.value(), "safe/tmai");
  EXPECT_EQ(doc.value().Find("backend")->string, "tmai");
  EXPECT_EQ(doc.value().Find("options")->Find("backend")->string, "tmai");
  const JsonValue* t = doc.value().Find("telemetry");
  EXPECT_NE(t->Find("tmai.iterations"), nullptr);
  EXPECT_NE(t->Find("tmai.converged"), nullptr);
  // Rcu is proved by the small-set stage of kAuto: the certificate names
  // the small-set domain, omits the relational "must" block, and no
  // tmai.relational.* counters appear (the retry never ran).
  const JsonValue* cert = doc.value().Find("certificate");
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->Find("domain")->string, "smallset");
  EXPECT_EQ(cert->Find("must"), nullptr);
  EXPECT_EQ(t->Find("tmai.relational.rounds"), nullptr);
}

// The flagship precision case: a mutual-exclusion protocol only the
// relational domain proves. The envelope must carry a complete,
// re-parseable "certificate" object naming that domain.
TEST(JsonSchemaTest, VerdictEnvelopeCarriesRelationalCertificate) {
  BenchmarkCase bench = PetersonHandover();
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kTmai;  // domain defaults to kAuto
  const Verdict v = verifier.Run(std::nullopt, opts);
  ASSERT_TRUE(v.safe());
  ASSERT_NE(v.certificate, nullptr);

  const std::string json =
      VerdictToJson(v, opts, "verify", bench.system.Signature());
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();
  CheckVerdictEnvelope(doc.value(), "safe/tmai-relational");
  EXPECT_EQ(doc.value().Find("verdict")->string, "safe");

  const JsonValue* cert = doc.value().Find("certificate");
  ASSERT_NE(cert, nullptr);
  ASSERT_TRUE(cert->is_object());
  ASSERT_NE(cert->Find("schema_version"), nullptr);
  EXPECT_EQ(cert->Find("schema_version")->integer,
            tmai::kCertificateSchemaVersion);
  EXPECT_EQ(cert->Find("domain")->string, "relational");
  EXPECT_EQ(cert->Find("check_assert")->boolean, true);
  // Assert-goal certificates omit the MG goal keys.
  EXPECT_EQ(cert->Find("goal_var"), nullptr);
  EXPECT_EQ(cert->Find("goal_val"), nullptr);
  EXPECT_NE(cert->Find("value_set_limit"), nullptr);
  EXPECT_NE(cert->Find("num_vars"), nullptr);
  EXPECT_NE(cert->Find("dom"), nullptr);

  const JsonValue* threads = cert->Find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_TRUE(threads->is_array());
  ASSERT_FALSE(threads->items.empty());
  const JsonValue& th = threads->items[0];
  EXPECT_NE(th.Find("replicated"), nullptr);
  EXPECT_NE(th.Find("num_nodes"), nullptr);
  EXPECT_NE(th.Find("num_edges"), nullptr);
  const JsonValue* inv = th.Find("invariants");
  ASSERT_NE(inv, nullptr);
  ASSERT_TRUE(inv->is_array());

  const JsonValue* tables = cert->Find("tables");
  ASSERT_NE(tables, nullptr);
  EXPECT_NE(tables->Find("store_vals"), nullptr);
  EXPECT_NE(tables->Find("acq"), nullptr);
  EXPECT_NE(tables->Find("present"), nullptr);
  EXPECT_NE(tables->Find("edge_store"), nullptr);
  const JsonValue* must = cert->Find("must");
  ASSERT_NE(must, nullptr);
  EXPECT_NE(must->Find("obs"), nullptr);
  EXPECT_NE(must->Find("cons"), nullptr);

  // The serialized object parses back into an equal certificate.
  Expected<tmai::Certificate> parsed = tmai::ParseCertificateJson(*cert);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().domain, tmai::Domain::kRelational);
  EXPECT_EQ(parsed.value().threads.size(), v.certificate->threads.size());

  // The relational retry counters ride the telemetry block.
  const JsonValue* t = doc.value().Find("telemetry");
  EXPECT_NE(t->Find("tmai.relational.rounds"), nullptr);
  EXPECT_NE(t->Find("tmai.relational.pruned_reads"), nullptr);
}

TEST(JsonSchemaTest, VerdictEnvelopePortfolioNamesTheWinner) {
  BenchmarkCase bench = ProducerConsumer(1);
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kPortfolio;
  const Verdict v = verifier.Run(std::nullopt, opts);
  ASSERT_TRUE(v.unsafe());

  const std::string json =
      VerdictToJson(v, opts, "verify", bench.system.Signature());
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();
  CheckVerdictEnvelope(doc.value(), "unsafe/portfolio");
  const std::string backend = doc.value().Find("backend")->string;
  EXPECT_TRUE(backend == "portfolio:simplified" ||
              backend == "portfolio:datalog")
      << backend;
  EXPECT_EQ(doc.value().Find("options")->Find("backend")->string,
            "portfolio");
  const JsonValue* t = doc.value().Find("telemetry");
  EXPECT_NE(t->Find("portfolio.tmai_ms"), nullptr);
  EXPECT_NE(t->Find("portfolio.winner_simplified"), nullptr);
  EXPECT_NE(t->Find("portfolio.winner_datalog"), nullptr);
}

TEST(JsonSchemaTest, DiagnosticsEnvelope) {
  std::vector<std::pair<std::string, Diagnostic>> diags;
  Diagnostic warn;
  warn.severity = Severity::kWarning;
  warn.code = "RA003";
  warn.message = "dead store";
  warn.loc.line = 7;
  warn.loc.col = 3;
  diags.emplace_back("demo.rap", warn);
  Diagnostic note;
  note.severity = Severity::kNote;
  note.code = "RA026";
  note.message = "stratified program";
  diags.emplace_back("makeP", note);

  const std::string json = DiagnosticsToJson("lint", diags);
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();

  EXPECT_EQ(doc.value().Find("schema_version")->integer,
            kResultSchemaVersion);
  EXPECT_EQ(doc.value().Find("tool")->string, "rapar");
  EXPECT_EQ(doc.value().Find("command")->string, "lint");

  const JsonValue* list = doc.value().Find("diagnostics");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->items.size(), 2u);
  const JsonValue& first = list->items[0];
  EXPECT_EQ(first.Find("file")->string, "demo.rap");
  EXPECT_EQ(first.Find("line")->integer, 7);
  EXPECT_EQ(first.Find("col")->integer, 3);
  EXPECT_EQ(first.Find("code")->string, "RA003");
  EXPECT_EQ(first.Find("severity")->string, "warning");
  EXPECT_EQ(first.Find("message")->string, "dead store");
  EXPECT_EQ(list->items[1].Find("severity")->string, "note");

  const JsonValue* summary = doc.value().Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Find("errors")->integer, 0);
  EXPECT_EQ(summary->Find("warnings")->integer, 1);
  EXPECT_EQ(summary->Find("notes")->integer, 1);
}

// The relational precision notes (RA034/RA035) ride the same lint
// envelope as every other diagnostic: stable file/line/col/code/
// severity/message keys, severity "note".
TEST(JsonSchemaTest, DiagnosticsEnvelopeRelationalLints) {
  BenchmarkCase bench = PetersonHandover();
  const tmai::TmaiSystem tsys =
      tmai::TmaiSystem::FromSimpl(bench.system.simpl());
  const std::vector<std::vector<Diagnostic>> per_thread =
      tmai::TmaiLint(tsys);
  std::vector<std::pair<std::string, Diagnostic>> diags;
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    for (const Diagnostic& d : per_thread[t]) {
      diags.emplace_back("thread" + std::to_string(t), d);
    }
  }

  const std::string json = DiagnosticsToJson("lint", diags);
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();

  const JsonValue* list = doc.value().Find("diagnostics");
  ASSERT_NE(list, nullptr);
  bool saw_ra034 = false, saw_ra035 = false;
  for (const JsonValue& d : list->items) {
    ASSERT_NE(d.Find("file"), nullptr);
    ASSERT_NE(d.Find("line"), nullptr);
    ASSERT_NE(d.Find("col"), nullptr);
    ASSERT_NE(d.Find("code"), nullptr);
    ASSERT_NE(d.Find("severity"), nullptr);
    ASSERT_NE(d.Find("message"), nullptr);
    const std::string& code = d.Find("code")->string;
    if (code == "RA034") {
      saw_ra034 = true;
      EXPECT_EQ(d.Find("severity")->string, "note");
    }
    if (code == "RA035") {
      saw_ra035 = true;
      EXPECT_EQ(d.Find("severity")->string, "note");
    }
  }
  EXPECT_TRUE(saw_ra034) << json;
  EXPECT_TRUE(saw_ra035) << json;
  // Everything TMAI emits is a note, so the summary has no errors.
  EXPECT_EQ(doc.value().Find("summary")->Find("errors")->integer, 0);
}

TEST(JsonSchemaTest, DiagnosticsEnvelopeEmpty) {
  const std::string json = DiagnosticsToJson("dlanalyze", {});
  Expected<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.error();
  EXPECT_TRUE(doc.value().Find("diagnostics")->items.empty());
  EXPECT_EQ(doc.value().Find("summary")->Find("errors")->integer, 0);
}

TEST(JsonSchemaTest, VerdictNamesAndExitCodes) {
  EXPECT_STREQ(VerdictName(Verdict::Result::kSafe), "safe");
  EXPECT_STREQ(VerdictName(Verdict::Result::kUnsafe), "unsafe");
  EXPECT_STREQ(VerdictName(Verdict::Result::kUnknown), "unknown");
  Verdict v;
  v.result = Verdict::Result::kSafe;
  EXPECT_EQ(VerdictExitCode(v), 0);
  v.result = Verdict::Result::kUnsafe;
  EXPECT_EQ(VerdictExitCode(v), 1);
  v.result = Verdict::Result::kUnknown;
  EXPECT_EQ(VerdictExitCode(v), 2);
}

}  // namespace
}  // namespace rapar
