// Datalog engine tests: textbook programs, natives, linearity, early exit.
#include "datalog/engine.h"

#include <gtest/gtest.h>

namespace rapar::dl {
namespace {

// Builds the classic transitive-closure program over a small graph.
struct TcProgram {
  Program prog;
  PredId edge, path;
  Sym a, b, c, d;

  TcProgram() {
    edge = prog.AddPred("edge", 2);
    path = prog.AddPred("path", 2);
    a = prog.ConstSym("a");
    b = prog.ConstSym("b");
    c = prog.ConstSym("c");
    d = prog.ConstSym("d");
    prog.AddFact(Atom{edge, {C(a), C(b)}});
    prog.AddFact(Atom{edge, {C(b), C(c)}});
    prog.AddFact(Atom{edge, {C(c), C(d)}});
    // path(X, Y) :- edge(X, Y).
    prog.AddRule(Rule{Atom{path, {V(0), V(1)}},
                      {Atom{edge, {V(0), V(1)}}},
                      {}});
    // path(X, Z) :- path(X, Y), edge(Y, Z).   (linear: edge is EDB)
    prog.AddRule(Rule{Atom{path, {V(0), V(2)}},
                      {Atom{path, {V(0), V(1)}}, Atom{edge, {V(1), V(2)}}},
                      {}});
  }
};

TEST(DatalogEngineTest, TransitiveClosure) {
  TcProgram tc;
  EXPECT_TRUE(Query(tc.prog, Atom{tc.path, {C(tc.a), C(tc.d)}}));
  EXPECT_TRUE(Query(tc.prog, Atom{tc.path, {C(tc.b), C(tc.d)}}));
  EXPECT_FALSE(Query(tc.prog, Atom{tc.path, {C(tc.d), C(tc.a)}}));
  EXPECT_FALSE(Query(tc.prog, Atom{tc.path, {C(tc.a), C(tc.a)}}));
}

TEST(DatalogEngineTest, FullEvalComputesAllTuples) {
  TcProgram tc;
  EvalStats stats;
  Database db = Eval(tc.prog, &stats);
  EXPECT_EQ(db.Tuples(tc.edge).size(), 3u);
  EXPECT_EQ(db.Tuples(tc.path).size(), 6u);  // 3+2+1 pairs
  EXPECT_EQ(stats.tuples, 9u);
}

TEST(DatalogEngineTest, LinearityCheck) {
  TcProgram tc;
  EXPECT_TRUE(tc.prog.IsLinear());
  // Non-linear variant: path(X,Z) :- path(X,Y), path(Y,Z).
  tc.prog.AddRule(Rule{
      Atom{tc.path, {V(0), V(2)}},
      {Atom{tc.path, {V(0), V(1)}}, Atom{tc.path, {V(1), V(2)}}},
      {}});
  EXPECT_FALSE(tc.prog.IsLinear());
}

TEST(DatalogEngineTest, EarlyExitStopsDerivation) {
  TcProgram tc;
  EvalStats stats;
  EvalOptions opts;
  opts.early_exit = true;
  EXPECT_TRUE(
      Query(tc.prog, Atom{tc.path, {C(tc.a), C(tc.b)}}, &stats, opts));
  EXPECT_TRUE(stats.goal_found);
  EXPECT_LT(stats.tuples, 9u);
}

TEST(DatalogEngineTest, NativeCheckFiltersBindings) {
  Program prog;
  PredId num = prog.AddPred("num", 1);
  PredId even = prog.AddPred("even", 1);
  std::vector<Sym> syms;
  for (int i = 0; i < 6; ++i) syms.push_back(prog.IntSym(i));
  for (Sym s : syms) prog.AddFact(Atom{num, {C(s)}});
  // even(X) :- num(X), is_even[X].
  Rule r;
  r.head = Atom{even, {V(0)}};
  r.body = {Atom{num, {V(0)}}};
  Native check;
  check.name = "is_even";
  check.inputs = {V(0)};
  // Sym values for IntSym(i) were interned in order, so sym == i here.
  check.fn = [](std::span<const Sym> in, Sym*) { return in[0] % 2 == 0; };
  r.natives.push_back(std::move(check));
  prog.AddRule(std::move(r));

  Database db = Eval(prog);
  EXPECT_EQ(db.Tuples(even).size(), 3u);  // 0, 2, 4
}

TEST(DatalogEngineTest, NativeFunctionBindsOutput) {
  Program prog;
  PredId num = prog.AddPred("num", 1);
  PredId succ = prog.AddPred("succ", 2);
  for (int i = 0; i < 4; ++i) prog.IntSym(i);
  prog.AddFact(Atom{num, {C(0)}});
  // num(Y), succ(X, Y) :- num(X), plus1[X] -> Y  (two rules)
  for (PredId head : {num, succ}) {
    Rule r;
    r.head = head == num ? Atom{num, {V(1)}} : Atom{succ, {V(0), V(1)}};
    r.body = {Atom{num, {V(0)}}};
    Native plus1;
    plus1.name = "plus1";
    plus1.inputs = {V(0)};
    plus1.output = 1;
    plus1.fn = [](std::span<const Sym> in, Sym* out) {
      if (in[0] >= 3) return false;  // stay within interned range
      *out = in[0] + 1;
      return true;
    };
    r.natives.push_back(std::move(plus1));
    prog.AddRule(std::move(r));
  }
  Database db = Eval(prog);
  EXPECT_EQ(db.Tuples(num).size(), 4u);   // 0..3
  EXPECT_EQ(db.Tuples(succ).size(), 3u);  // (0,1) (1,2) (2,3)
}

TEST(DatalogEngineTest, TupleBudgetThrows) {
  TcProgram tc;
  EvalOptions opts;
  opts.max_tuples = 4;
  // BudgetExceeded derives from runtime_error (legacy catch sites).
  EXPECT_THROW(Eval(tc.prog, nullptr, opts), std::runtime_error);
  try {
    Eval(tc.prog, nullptr, opts);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.budget(), 4u);
  }
}

// --- input validation (release-build UB fixes) ----------------------------
// These used to be assert-only: in an NDEBUG build a non-ground goal read
// Term::val of a variable as a constant and an unbound native input
// dereferenced an empty optional. They are structured errors now.

TEST(DatalogEngineTest, NonGroundGoalIsRejected) {
  TcProgram tc;
  EXPECT_THROW(Query(tc.prog, Atom{tc.path, {V(0), C(tc.a)}}),
               std::invalid_argument);
}

TEST(DatalogEngineTest, ArityMismatchedGoalIsRejected) {
  TcProgram tc;
  EXPECT_THROW(Query(tc.prog, Atom{tc.path, {C(tc.a)}}),
               std::invalid_argument);
  EXPECT_THROW(Query(tc.prog, Atom{tc.path, {C(tc.a), C(tc.b), C(tc.c)}}),
               std::invalid_argument);
}

TEST(DatalogEngineTest, UnknownGoalPredicateIsRejected) {
  TcProgram tc;
  EXPECT_THROW(Query(tc.prog, Atom{static_cast<PredId>(99), {}}),
               std::invalid_argument);
}

TEST(DatalogEngineTest, UnboundNativeInputIsRejected) {
  // q(X) :- p(X), f[Y] -> Z: Y is bound by nothing when the native runs.
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 1);
  Sym a = prog.ConstSym("a");
  prog.AddFact(Atom{p, {C(a)}});
  Rule r;
  r.head = Atom{q, {V(0)}};
  r.body = {Atom{p, {V(0)}}};
  Native f;
  f.name = "f";
  f.inputs = {V(1)};  // unbound
  f.output = 2;
  f.fn = [](std::span<const Sym>, Sym* out) {
    *out = 0;
    return true;
  };
  r.natives.push_back(std::move(f));
  prog.AddRule(std::move(r));
  EXPECT_THROW(Eval(prog), std::invalid_argument);
  EXPECT_THROW(Query(prog, Atom{q, {C(a)}}), std::invalid_argument);
}

TEST(DatalogEngineTest, NativeInputBoundByEarlierOutputIsAccepted) {
  // q(Z) :- p(X), f[X] -> Y, g[Y] -> Z: chained outputs are fine.
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 1);
  Sym a = prog.ConstSym("a");
  prog.AddFact(Atom{p, {C(a)}});
  Rule r;
  r.head = Atom{q, {V(2)}};
  r.body = {Atom{p, {V(0)}}};
  auto id = [](std::span<const Sym> in, Sym* out) {
    *out = in[0];
    return true;
  };
  Native f;
  f.name = "f";
  f.inputs = {V(0)};
  f.output = 1;
  f.fn = id;
  Native g;
  g.name = "g";
  g.inputs = {V(1)};
  g.output = 2;
  g.fn = id;
  r.natives.push_back(std::move(f));
  r.natives.push_back(std::move(g));
  prog.AddRule(std::move(r));
  EXPECT_TRUE(Query(prog, Atom{q, {C(a)}}));
}

TEST(DatalogEngineTest, UnboundHeadVariableIsRejected) {
  Program prog;
  PredId p = prog.AddPred("p", 1);
  PredId q = prog.AddPred("q", 1);
  Sym a = prog.ConstSym("a");
  prog.AddFact(Atom{p, {C(a)}});
  // q(Y) :- p(X): Y is unbound.
  prog.AddRule(Rule{Atom{q, {V(1)}}, {Atom{p, {V(0)}}}, {}});
  EXPECT_THROW(Eval(prog), std::invalid_argument);
}

TEST(DatalogEngineTest, BodyAtomArityMismatchIsRejected) {
  Program prog;
  PredId p = prog.AddPred("p", 2);
  PredId q = prog.AddPred("q", 1);
  prog.AddRule(Rule{Atom{q, {V(0)}}, {Atom{p, {V(0)}}}, {}});  // p used /1
  EXPECT_THROW(Eval(prog), std::invalid_argument);
}

// --- argument-hash indexes and engine reuse -------------------------------

TEST(DatalogEngineTest, IndexReducesJoinAttempts) {
  TcProgram tc;
  EvalStats indexed, scanned;
  EvalOptions scan;
  scan.engine.use_index = false;
  scan.engine.reorder_joins = false;
  Eval(tc.prog, &scanned, scan);
  Eval(tc.prog, &indexed);
  EXPECT_EQ(indexed.tuples, scanned.tuples);
  EXPECT_LT(indexed.join_attempts, scanned.join_attempts);
  EXPECT_GT(indexed.index_probes, 0u);
  EXPECT_GT(indexed.index_builds, 0u);
  EXPECT_EQ(scanned.index_probes, 0u);
  EXPECT_EQ(scanned.index_builds, 0u);
}

TEST(DatalogEngineTest, EngineReusesFactSnapshotAcrossSolves) {
  TcProgram tc;
  Engine engine;
  EXPECT_FALSE(engine.Solve(tc.prog, Atom{tc.path, {C(tc.d), C(tc.a)}}));
  EXPECT_EQ(engine.fact_reuses(), 0u);
  const std::size_t first = engine.last_stats().tuples;
  EXPECT_FALSE(engine.Solve(tc.prog, Atom{tc.path, {C(tc.d), C(tc.a)}}));
  EXPECT_EQ(engine.fact_reuses(), 1u);
  EXPECT_EQ(engine.last_stats().tuples, first);  // same fixpoint either way

  // A different fact set invalidates the snapshot.
  TcProgram other;
  other.prog.AddFact(Atom{other.edge, {C(other.d), C(other.a)}});
  EXPECT_TRUE(
      engine.Solve(other.prog, Atom{other.path, {C(other.d), C(other.b)}}));
  EXPECT_EQ(engine.fact_reuses(), 1u);
}

TEST(DatalogEngineTest, EngineReusesAcrossDifferentDerivedPredicates) {
  // The Datalog backend's per-guess programs share their EDB but differ
  // in derived-only predicates; reuse must survive a predicate-count
  // change in both directions (grow, then shrink).
  TcProgram a;
  Engine engine;
  EXPECT_FALSE(engine.Solve(a.prog, Atom{a.path, {C(a.d), C(a.a)}}));
  EXPECT_EQ(engine.fact_reuses(), 0u);

  TcProgram b;
  PredId twohop = b.prog.AddPred("twohop", 2);
  b.prog.AddRule(Rule{
      Atom{twohop, {V(0), V(2)}},
      {Atom{b.edge, {V(0), V(1)}}, Atom{b.edge, {V(1), V(2)}}},
      {}});
  EXPECT_TRUE(engine.Solve(b.prog, Atom{twohop, {C(b.a), C(b.c)}}));
  EXPECT_EQ(engine.fact_reuses(), 1u);

  TcProgram c;
  EXPECT_TRUE(engine.Solve(c.prog, Atom{c.path, {C(c.a), C(c.d)}}));
  EXPECT_EQ(engine.fact_reuses(), 2u);
}

TEST(DatalogEngineTest, EngineReuseDisabledNeverRollsBack) {
  TcProgram tc;
  Engine engine;
  EvalOptions opts;
  opts.engine.reuse_facts = false;
  EXPECT_FALSE(engine.Solve(tc.prog, Atom{tc.path, {C(tc.d), C(tc.a)}}, opts));
  EXPECT_FALSE(engine.Solve(tc.prog, Atom{tc.path, {C(tc.d), C(tc.a)}}, opts));
  EXPECT_EQ(engine.fact_reuses(), 0u);
}

TEST(DatalogEngineTest, ProgramPrinting) {
  TcProgram tc;
  std::string text = tc.prog.ToString();
  EXPECT_NE(text.find("path(X0, X2) :- path(X0, X1), edge(X1, X2)."),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("edge(a, b)."), std::string::npos);
  EXPECT_NE(text.find(".decl path/2"), std::string::npos);
}

TEST(DatalogEngineTest, IdbPredsExcludesFactOnly) {
  TcProgram tc;
  std::vector<bool> idb = tc.prog.IdbPreds();
  EXPECT_FALSE(idb[tc.edge]);
  EXPECT_TRUE(idb[tc.path]);
}

}  // namespace
}  // namespace rapar::dl
