// Datalog engine tests: textbook programs, natives, linearity, early exit.
#include "datalog/engine.h"

#include <gtest/gtest.h>

namespace rapar::dl {
namespace {

// Builds the classic transitive-closure program over a small graph.
struct TcProgram {
  Program prog;
  PredId edge, path;
  Sym a, b, c, d;

  TcProgram() {
    edge = prog.AddPred("edge", 2);
    path = prog.AddPred("path", 2);
    a = prog.ConstSym("a");
    b = prog.ConstSym("b");
    c = prog.ConstSym("c");
    d = prog.ConstSym("d");
    prog.AddFact(Atom{edge, {C(a), C(b)}});
    prog.AddFact(Atom{edge, {C(b), C(c)}});
    prog.AddFact(Atom{edge, {C(c), C(d)}});
    // path(X, Y) :- edge(X, Y).
    prog.AddRule(Rule{Atom{path, {V(0), V(1)}},
                      {Atom{edge, {V(0), V(1)}}},
                      {}});
    // path(X, Z) :- path(X, Y), edge(Y, Z).   (linear: edge is EDB)
    prog.AddRule(Rule{Atom{path, {V(0), V(2)}},
                      {Atom{path, {V(0), V(1)}}, Atom{edge, {V(1), V(2)}}},
                      {}});
  }
};

TEST(DatalogEngineTest, TransitiveClosure) {
  TcProgram tc;
  EXPECT_TRUE(Query(tc.prog, Atom{tc.path, {C(tc.a), C(tc.d)}}));
  EXPECT_TRUE(Query(tc.prog, Atom{tc.path, {C(tc.b), C(tc.d)}}));
  EXPECT_FALSE(Query(tc.prog, Atom{tc.path, {C(tc.d), C(tc.a)}}));
  EXPECT_FALSE(Query(tc.prog, Atom{tc.path, {C(tc.a), C(tc.a)}}));
}

TEST(DatalogEngineTest, FullEvalComputesAllTuples) {
  TcProgram tc;
  EvalStats stats;
  Database db = Eval(tc.prog, &stats);
  EXPECT_EQ(db.Tuples(tc.edge).size(), 3u);
  EXPECT_EQ(db.Tuples(tc.path).size(), 6u);  // 3+2+1 pairs
  EXPECT_EQ(stats.tuples, 9u);
}

TEST(DatalogEngineTest, LinearityCheck) {
  TcProgram tc;
  EXPECT_TRUE(tc.prog.IsLinear());
  // Non-linear variant: path(X,Z) :- path(X,Y), path(Y,Z).
  tc.prog.AddRule(Rule{
      Atom{tc.path, {V(0), V(2)}},
      {Atom{tc.path, {V(0), V(1)}}, Atom{tc.path, {V(1), V(2)}}},
      {}});
  EXPECT_FALSE(tc.prog.IsLinear());
}

TEST(DatalogEngineTest, EarlyExitStopsDerivation) {
  TcProgram tc;
  EvalStats stats;
  EvalOptions opts;
  opts.early_exit = true;
  EXPECT_TRUE(
      Query(tc.prog, Atom{tc.path, {C(tc.a), C(tc.b)}}, &stats, opts));
  EXPECT_TRUE(stats.goal_found);
  EXPECT_LT(stats.tuples, 9u);
}

TEST(DatalogEngineTest, NativeCheckFiltersBindings) {
  Program prog;
  PredId num = prog.AddPred("num", 1);
  PredId even = prog.AddPred("even", 1);
  std::vector<Sym> syms;
  for (int i = 0; i < 6; ++i) syms.push_back(prog.IntSym(i));
  for (Sym s : syms) prog.AddFact(Atom{num, {C(s)}});
  // even(X) :- num(X), is_even[X].
  Rule r;
  r.head = Atom{even, {V(0)}};
  r.body = {Atom{num, {V(0)}}};
  Native check;
  check.name = "is_even";
  check.inputs = {V(0)};
  // Sym values for IntSym(i) were interned in order, so sym == i here.
  check.fn = [](std::span<const Sym> in, Sym*) { return in[0] % 2 == 0; };
  r.natives.push_back(std::move(check));
  prog.AddRule(std::move(r));

  Database db = Eval(prog);
  EXPECT_EQ(db.Tuples(even).size(), 3u);  // 0, 2, 4
}

TEST(DatalogEngineTest, NativeFunctionBindsOutput) {
  Program prog;
  PredId num = prog.AddPred("num", 1);
  PredId succ = prog.AddPred("succ", 2);
  for (int i = 0; i < 4; ++i) prog.IntSym(i);
  prog.AddFact(Atom{num, {C(0)}});
  // num(Y), succ(X, Y) :- num(X), plus1[X] -> Y  (two rules)
  for (PredId head : {num, succ}) {
    Rule r;
    r.head = head == num ? Atom{num, {V(1)}} : Atom{succ, {V(0), V(1)}};
    r.body = {Atom{num, {V(0)}}};
    Native plus1;
    plus1.name = "plus1";
    plus1.inputs = {V(0)};
    plus1.output = 1;
    plus1.fn = [](std::span<const Sym> in, Sym* out) {
      if (in[0] >= 3) return false;  // stay within interned range
      *out = in[0] + 1;
      return true;
    };
    r.natives.push_back(std::move(plus1));
    prog.AddRule(std::move(r));
  }
  Database db = Eval(prog);
  EXPECT_EQ(db.Tuples(num).size(), 4u);   // 0..3
  EXPECT_EQ(db.Tuples(succ).size(), 3u);  // (0,1) (1,2) (2,3)
}

TEST(DatalogEngineTest, TupleBudgetThrows) {
  TcProgram tc;
  EvalOptions opts;
  opts.max_tuples = 4;
  EXPECT_THROW(Eval(tc.prog, nullptr, opts), std::runtime_error);
}

TEST(DatalogEngineTest, ProgramPrinting) {
  TcProgram tc;
  std::string text = tc.prog.ToString();
  EXPECT_NE(text.find("path(X0, X2) :- path(X0, X1), edge(X1, X2)."),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("edge(a, b)."), std::string::npos);
  EXPECT_NE(text.find(".decl path/2"), std::string::npos);
}

TEST(DatalogEngineTest, IdbPredsExcludesFactOnly) {
  TcProgram tc;
  std::vector<bool> idb = tc.prog.IdbPreds();
  EXPECT_FALSE(idb[tc.edge]);
  EXPECT_TRUE(idb[tc.path]);
}

}  // namespace
}  // namespace rapar::dl
