// Public-API tests: ParamSystem builder, SafetyVerifier backends, and the
// benchmark suite verdicts (the RA litmus facts of §1's benchmark
// classification).
#include "core/verifier.h"

#include <gtest/gtest.h>

#include "core/benchmarks.h"
#include "lang/parser.h"

namespace rapar {
namespace {

Program MustParse(const std::string& text) {
  Expected<Program> p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
  return std::move(p).value();
}

TEST(ParamSystemTest, BuilderUnifiesVariableTables) {
  Program env = MustParse(R"(
    program env
    vars x y
    regs r
    dom 4
    begin
      r := x
    end
  )");
  Program dis = MustParse(R"(
    program dis
    vars y z
    regs s
    dom 4
    begin
      s := z
    end
  )");
  ParamSystem::Builder b;
  auto sys = b.Env(std::move(env)).Dis(std::move(dis)).Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  // Union {x, y, z} with env's variables first.
  EXPECT_EQ(sys.value().vars().size(), 3u);
  EXPECT_EQ(sys.value().vars().Name(VarId(0)), "x");
  EXPECT_EQ(sys.value().vars().Name(VarId(1)), "y");
  EXPECT_EQ(sys.value().vars().Name(VarId(2)), "z");
  // Every CFA sees the full universe.
  EXPECT_EQ(sys.value().env_cfa().program().vars().size(), 3u);
  EXPECT_EQ(sys.value().dis_cfa(0).program().vars().size(), 3u);
}

TEST(ParamSystemTest, RejectsCasInEnv) {
  Program env = MustParse(R"(
    program env
    vars x
    regs a b
    dom 2
    begin
      cas(x, a, b)
    end
  )");
  ParamSystem::Builder b;
  auto sys = b.Env(std::move(env)).Build();
  ASSERT_FALSE(sys.ok());
  EXPECT_NE(sys.error().find("undecidable"), std::string::npos);
}

TEST(ParamSystemTest, RejectsDomainMismatch) {
  ParamSystem::Builder b;
  b.Env(MustParse("program e\nvars x\nregs r\ndom 2\nbegin\nskip\nend"));
  b.Dis(MustParse("program d\nvars x\nregs r\ndom 3\nbegin\nskip\nend"));
  auto sys = b.Build();
  EXPECT_FALSE(sys.ok());
}

TEST(ParamSystemTest, DisLoopsRequireUnrollBound) {
  Program dis = MustParse(R"(
    program dis
    vars x
    regs r
    dom 2
    begin
      loop { r := x }
    end
  )");
  Program env =
      MustParse("program e\nvars x\nregs r\ndom 2\nbegin\nskip\nend");
  {
    ParamSystem::Builder b;
    auto sys = b.Env(env).Dis(dis).Build();
    EXPECT_FALSE(sys.ok());
  }
  {
    ParamSystem::Builder b;
    auto sys = b.Env(env).Dis(dis).UnrollDis(2).Build();
    ASSERT_TRUE(sys.ok()) << sys.error();
    EXPECT_TRUE(Classify(sys.value().dis_programs()[0]).loop_free);
  }
}

TEST(ParamSystemTest, SignatureAndBudgets) {
  BenchmarkCase pc = ProducerConsumer(2);
  // The producer happens to be loop-free too: env(nocas,acyc).
  EXPECT_NE(pc.system.Signature().find("env(nocas"), std::string::npos);
  EXPECT_NE(pc.system.Signature().find("dis1("), std::string::npos);
  // Consumer has exactly one store (y := one).
  EXPECT_EQ(pc.system.TimestampBudget(), 1);
  EXPECT_GT(pc.system.Q0(), 0);
}

// --- Verifier on the benchmark suite -----------------------------------------

class BenchmarkVerdictTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BenchmarkVerdictTest, SimplifiedBackendMatchesExpectation) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  const BenchmarkCase& bench = suite[GetParam()];
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.time_budget_ms = 60'000;
  Verdict v = verifier.Run(std::nullopt, opts);
  ASSERT_NE(v.result, Verdict::Result::kUnknown) << bench.name;
  if (bench.expected_unsafe.has_value()) {
    EXPECT_EQ(v.unsafe(), *bench.expected_unsafe)
        << bench.name << ": " << bench.description;
  }
  if (v.unsafe()) {
    EXPECT_FALSE(v.witness.empty()) << bench.name;
    EXPECT_TRUE(v.env_thread_bound.has_value()) << bench.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, BenchmarkVerdictTest,
                         ::testing::Range<std::size_t>(0, 11));

TEST(BenchmarkSuiteTest, DatalogBackendAgreesOnSmallCases) {
  // The Datalog backend enumerates dis guesses; restrict to the cases
  // where that stays small.
  std::vector<BenchmarkCase> cases;
  cases.push_back(ProducerConsumer(1));
  cases.push_back(Barrier());
  cases.push_back(Rcu());
  for (const BenchmarkCase& bench : cases) {
    SafetyVerifier verifier(bench.system);
    VerifierOptions simpl_opts;
    Verdict vs = verifier.Run(std::nullopt, simpl_opts);
    VerifierOptions dl_opts;
    dl_opts.backend = Backend::kDatalog;
    Verdict vd = verifier.Run(std::nullopt, dl_opts);
    ASSERT_NE(vs.result, Verdict::Result::kUnknown) << bench.name;
    ASSERT_NE(vd.result, Verdict::Result::kUnknown) << bench.name;
    EXPECT_EQ(vs.unsafe(), vd.unsafe()) << bench.name;
  }
}

TEST(BenchmarkSuiteTest, ConcreteBackendConfirmsBugsWithinBound) {
  // §4.3: for unsafe cases the env-thread bound from the witness is a
  // sufficient concrete instance size.
  BenchmarkCase pc = ProducerConsumer(2);
  SafetyVerifier verifier(pc.system);
  Verdict v = verifier.Run(std::nullopt);
  ASSERT_TRUE(v.unsafe());
  ASSERT_TRUE(v.env_thread_bound.has_value());

  VerifierOptions copts;
  copts.backend = Backend::kConcrete;
  copts.concrete.env_threads = static_cast<int>(*v.env_thread_bound);
  Verdict vc = verifier.Run(std::nullopt, copts);
  EXPECT_TRUE(vc.unsafe());
}

TEST(BenchmarkSuiteTest, VerdictToStringMentionsResult) {
  BenchmarkCase rcu = Rcu();
  SafetyVerifier verifier(rcu.system);
  Verdict v = verifier.Run(std::nullopt);
  EXPECT_NE(v.ToString().find("SAFE"), std::string::npos);
}

TEST(BenchmarkSuiteTest, MessageGenerationQueries) {
  BenchmarkCase pc = ProducerConsumer(2);
  SafetyVerifier verifier(pc.system);
  VarId x = pc.system.vars().Find("x");
  // Producers can generate (x, 1) and (x, 2) but never (x, 3).
  EXPECT_TRUE(verifier.Run(std::pair{x, Value{1}}).unsafe());
  EXPECT_TRUE(verifier.Run(std::pair{x, Value{2}}).unsafe());
  EXPECT_TRUE(verifier.Run(std::pair{x, Value{3}}).safe());
}

TEST(BenchmarkSuiteTest, ProducerConsumerSafeVariantIsSafe) {
  BenchmarkCase pc = ProducerConsumerSafe(2);
  SafetyVerifier verifier(pc.system);
  EXPECT_TRUE(verifier.Run(std::nullopt).safe());
  VerifierOptions opts;
  opts.backend = Backend::kDatalog;
  EXPECT_TRUE(verifier.Run(std::nullopt, opts).safe());
}

// The pre-Run entry points survive as thin wrappers; they must keep
// answering exactly what Run answers until they are removed.
TEST(BenchmarkSuiteTest, DeprecatedWrappersDelegateToRun) {
  BenchmarkCase pc = ProducerConsumer(1);
  SafetyVerifier verifier(pc.system);
  EXPECT_EQ(verifier.Verify().result, verifier.Run(std::nullopt).result);
  VarId x = pc.system.vars().Find("x");
  EXPECT_EQ(verifier.VerifyMessageGeneration(x, 1).result,
            verifier.Run(std::pair{x, Value{1}}).result);
}

}  // namespace
}  // namespace rapar
