// Differential soundness for the TMAI backend and bit-consistency for
// the portfolio driver.
//
//  * TmaiSoundnessTest — TMAI is an over-approximation, so a kSafe
//    answer must agree with the exact Datalog backend (Theorem 4.1) on
//    every input: a corpus of random parameterized systems (all message
//    -generation goals of each) plus the benchmark catalog. One unsound
//    answer fails the run.
//  * TmaiPortfolioTest — the portfolio races TMAI / simplified /
//    Datalog, but all three agree on definitive answers, so the
//    portfolio verdict must be bit-identical to the Datalog backend's
//    on every case, at Datalog worker counts 1 and 8 (runnable under
//    TSan: the race itself is the system under test).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/benchmarks.h"
#include "core/verifier.h"
#include "encoding/datalog_verifier.h"
#include "lang/random_program.h"
#include "tmai/certcheck.h"
#include "tmai/tmai.h"

namespace rapar {
namespace {

constexpr int kNumVars = 2;
constexpr Value kDom = 3;

struct RandomSystem {
  std::vector<std::unique_ptr<Cfa>> owned;
  SimplSystem sys;
};

RandomSystem MakeRandomSystem(std::uint64_t seed) {
  Rng rng(seed);
  RandomProgramOptions opts;
  opts.num_vars = kNumVars;
  opts.num_regs = 2;
  opts.dom = kDom;
  opts.size = 4;
  opts.allow_cas = false;
  opts.allow_loops = false;

  RandomSystem r;
  Program env = RandomProgram(rng, opts, "env");
  Program dis = RandomProgram(rng, opts, "dis");
  r.owned.push_back(std::make_unique<Cfa>(Cfa::Build(env)));
  r.owned.push_back(std::make_unique<Cfa>(Cfa::Build(dis)));
  r.sys.env = r.owned[0].get();
  r.sys.dis = {r.owned[1].get()};
  r.sys.dom = kDom;
  r.sys.num_vars = kNumVars;
  return r;
}

// 300 random systems, every non-zero message-generation goal of each:
// whenever TMAI proves the goal ungenerable, the exact backend must
// agree. The generator has no asserts, so MG goals are the only
// abstraction-visible property — and the one the Datalog encoding
// decides directly.
TEST(TmaiSoundnessTest, RandomMessageGenerationDifferential) {
  int tmai_safe = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    RandomSystem r = MakeRandomSystem(seed);
    tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(r.sys);
    for (int var = 0; var < kNumVars; ++var) {
      for (Value val = 1; val < kDom; ++val) {
        tmai::TmaiGoal goal;
        goal.check_assert = false;
        goal.var = VarId(static_cast<std::uint32_t>(var));
        goal.val = val;
        tmai::TmaiResult tr = tmai::RunTmai(tsys, goal, {});
        if (!tr.safe) continue;
        ++tmai_safe;
        DatalogVerifierOptions dopts;
        dopts.goal_message = {goal.var, goal.val};
        DatalogVerdict dv = DatalogVerify(r.sys, dopts);
        EXPECT_FALSE(dv.unsafe)
            << "UNSOUND: seed " << seed << " goal (v" << var << ", " << val
            << "): TMAI proved the message ungenerable, Datalog generated "
            << "it";
        EXPECT_TRUE(dv.exhaustive) << "seed " << seed;
      }
    }
  }
  // The differential has no teeth if the abstraction never proves
  // anything on the corpus.
  EXPECT_GT(tmai_safe, 0);
}

// The same 300-seed differential under the relational and auto domains:
// the relational must-domain prunes reads, so its kSafe answers need
// their own soundness check against the exact backend. Auto must also be
// at least as strong as small-set (it retries relationally on kUnknown).
TEST(TmaiSoundnessTest, RandomMgDifferentialRelationalDomains) {
  int relational_safe = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    RandomSystem r = MakeRandomSystem(seed);
    tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(r.sys);
    for (int var = 0; var < kNumVars; ++var) {
      for (Value val = 1; val < kDom; ++val) {
        tmai::TmaiGoal goal;
        goal.check_assert = false;
        goal.var = VarId(static_cast<std::uint32_t>(var));
        goal.val = val;
        tmai::TmaiOptions sopts;
        sopts.domain = tmai::Domain::kSmallSet;
        tmai::TmaiOptions ropts;
        ropts.domain = tmai::Domain::kRelational;
        tmai::TmaiOptions aopts;
        aopts.domain = tmai::Domain::kAuto;
        const tmai::TmaiResult sr = tmai::RunTmai(tsys, goal, sopts);
        const tmai::TmaiResult rr = tmai::RunTmai(tsys, goal, ropts);
        const tmai::TmaiResult ar = tmai::RunTmai(tsys, goal, aopts);
        EXPECT_GE(ar.safe, sr.safe)
            << "seed " << seed << ": auto lost a small-set proof";
        if (!rr.safe && !ar.safe) continue;
        ++relational_safe;
        DatalogVerifierOptions dopts;
        dopts.goal_message = {goal.var, goal.val};
        DatalogVerdict dv = DatalogVerify(r.sys, dopts);
        EXPECT_FALSE(dv.unsafe)
            << "UNSOUND: seed " << seed << " goal (v" << var << ", " << val
            << "): the relational domain proved the message ungenerable, "
            << "Datalog generated it";
        EXPECT_TRUE(dv.exhaustive) << "seed " << seed;
      }
    }
  }
  EXPECT_GT(relational_safe, 0);
}

// Every certificate the catalog produces — under either domain — must be
// accepted by the independent checker (conditions 1–4 of
// tmai/certcheck.h) against the very system it certifies.
TEST(TmaiSoundnessTest, CertcheckAcceptsEveryCatalogCertificate) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  suite.push_back(ProducerConsumerSafe(2));
  int certificates = 0;
  for (const BenchmarkCase& bench : suite) {
    const tmai::TmaiSystem tsys =
        tmai::TmaiSystem::FromSimpl(bench.system.simpl());
    for (tmai::Domain domain :
         {tmai::Domain::kSmallSet, tmai::Domain::kRelational,
          tmai::Domain::kAuto}) {
      tmai::TmaiOptions opts;
      opts.domain = domain;
      const tmai::TmaiResult r = tmai::RunTmai(tsys, {}, opts);
      if (!r.safe) continue;
      ASSERT_NE(r.certificate, nullptr)
          << bench.name << " under " << tmai::DomainName(domain)
          << ": safe without a certificate";
      const tmai::CertCheckResult res =
          tmai::CheckCertificate(tsys, *r.certificate);
      EXPECT_TRUE(res.valid)
          << bench.name << " under " << tmai::DomainName(domain) << ": "
          << res.error;
      ++certificates;
    }
  }
  // Small-set proves 4 catalog cases; relational and auto prove those
  // plus the three mutual-exclusion protocols.
  EXPECT_GE(certificates, 11);
}

// Catalog half of the soundness differential: on every case TMAI proves
// safe, the exact backend (run to exhaustion) must also answer safe.
TEST(TmaiSoundnessTest, CatalogDifferential) {
  std::vector<BenchmarkCase> suite;
  suite.push_back(ProducerConsumer(1));
  suite.push_back(Barrier());
  suite.push_back(Rcu());
  suite.push_back(ChaseLevDeque());
  suite.push_back(Seqlock());
  suite.push_back(ProducerConsumerSafe(2));
  for (const BenchmarkCase& bench : suite) {
    SafetyVerifier verifier(bench.system);
    VerifierOptions topts;
    topts.backend = Backend::kTmai;
    Verdict tv = verifier.Run(std::nullopt, topts);
    if (!tv.safe()) continue;
    VerifierOptions dopts;
    dopts.backend = Backend::kDatalog;
    Verdict dv = verifier.Run(std::nullopt, dopts);
    EXPECT_EQ(dv.result, Verdict::Result::kSafe)
        << "UNSOUND: TMAI proved " << bench.name
        << " safe, Datalog says " << dv.ToString();
  }
}

// Portfolio verdicts must be bit-identical to the Datalog backend's.
// Verified at Datalog worker counts 1 and 8 so the race is exercised
// both with a serial and a parallel loser/winner.
void ExpectPortfolioMatchesDatalog(const SafetyVerifier& verifier,
                                   std::optional<std::pair<VarId, Value>> goal,
                                   const char* label) {
  VerifierOptions dopts;
  dopts.backend = Backend::kDatalog;
  Verdict dv = verifier.Run(goal, dopts);
  for (unsigned threads : {1u, 8u}) {
    VerifierOptions popts;
    popts.backend = Backend::kPortfolio;
    popts.datalog.threads = threads;
    Verdict pv = verifier.Run(goal, popts);
    EXPECT_EQ(pv.result, dv.result)
        << label << " at datalog threads " << threads << ": portfolio "
        << pv.ToString() << " vs datalog " << dv.ToString();
    EXPECT_FALSE(pv.backend.empty()) << label;
  }
}

TEST(TmaiPortfolioTest, CatalogBitConsistency) {
  std::vector<BenchmarkCase> suite;
  suite.push_back(ProducerConsumer(1));
  suite.push_back(Barrier());
  suite.push_back(Rcu());
  suite.push_back(ChaseLevDeque());
  suite.push_back(Seqlock());
  suite.push_back(ProducerConsumerSafe(2));
  for (const BenchmarkCase& bench : suite) {
    SafetyVerifier verifier(bench.system);
    ExpectPortfolioMatchesDatalog(verifier, std::nullopt,
                                  bench.name.c_str());
  }
}

// The portfolio's stage-0 TMAI runs under the kAuto default, so a
// relational-only proof (Spinlock, Peterson handover, Dekker-CAS) must
// short-circuit the race entirely: the winner is TMAI and the verdict
// carries the invariant certificate.
TEST(TmaiPortfolioTest, RelationalAutoProofSkipsTheRace) {
  for (const BenchmarkCase& bench :
       {Spinlock(), PetersonHandover(), DekkerCas()}) {
    SafetyVerifier verifier(bench.system);
    VerifierOptions popts;
    popts.backend = Backend::kPortfolio;
    Verdict v = verifier.Run(std::nullopt, popts);
    EXPECT_TRUE(v.safe()) << bench.name;
    EXPECT_EQ(v.backend, "portfolio:tmai") << bench.name;
    EXPECT_NE(v.certificate, nullptr) << bench.name;
    EXPECT_GE(v.telemetry.counter(obs::metric::kTmaiRelationalRounds), 1u)
        << bench.name;
  }
}

TEST(TmaiPortfolioTest, RandomMgBitConsistency) {
  // ParamSystem owns its CFAs, so rebuild the random programs through the
  // builder (they are CAS- and loop-free by construction, hence in
  // class).
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    RandomProgramOptions opts;
    opts.num_vars = kNumVars;
    opts.num_regs = 2;
    opts.dom = kDom;
    opts.size = 4;
    opts.allow_cas = false;
    opts.allow_loops = false;
    Program env = RandomProgram(rng, opts, "env");
    Program dis = RandomProgram(rng, opts, "dis");
    Expected<ParamSystem> sys =
        ParamSystem::Builder().Env(std::move(env)).Dis(std::move(dis)).Build();
    ASSERT_TRUE(sys.ok()) << "seed " << seed << ": " << sys.error();
    SafetyVerifier verifier(sys.value());
    const VarId var(static_cast<std::uint32_t>(seed % kNumVars));
    const Value val = 1 + static_cast<Value>(seed % (kDom - 1));
    ExpectPortfolioMatchesDatalog(
        verifier, std::pair<VarId, Value>{var, val},
        ("seed " + std::to_string(seed)).c_str());
  }
}

}  // namespace
}  // namespace rapar
