// Differential testing of the indexed, reordered join core against the
// naive-scan configuration: on random programs (including forced
// self-joins, which exercise the delta-at-each-position path), evaluation
// with argument-hash indexes + cheapest-first ordering must derive exactly
// the same database and answer every ground query identically to the
// plain scan evaluator. Also: Engine fact-snapshot reuse across repeated
// solves must not change answers or per-solve tuple counts.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "datalog/engine.h"

namespace rapar::dl {
namespace {

using GroundAtom = std::vector<Sym>;  // [pred, args...]

EvalOptions WithTuning(bool use_index, bool reorder) {
  EvalOptions opts;
  opts.engine.use_index = use_index;
  opts.engine.reorder_joins = reorder;
  return opts;
}

std::set<GroundAtom> Materialize(const Program& prog, const Database& db) {
  std::set<GroundAtom> out;
  for (PredId p = 0; p < prog.num_preds(); ++p) {
    for (const auto& tuple : db.Tuples(p)) {
      GroundAtom g{p};
      g.insert(g.end(), tuple.begin(), tuple.end());
      out.insert(std::move(g));
    }
  }
  return out;
}

// Random programs with up to 3 body atoms; `force_self_join` makes every
// multi-atom rule repeat a predicate in its body.
Program RandomDatalog(Rng& rng, int preds, int consts, int rules,
                      bool force_self_join) {
  Program prog;
  std::vector<PredId> pids;
  std::vector<std::size_t> arity;
  for (int p = 0; p < preds; ++p) {
    arity.push_back(1 + rng.Below(2));  // arity 1-2: joinable positions
    pids.push_back(prog.AddPred("p" + std::to_string(p), arity.back()));
  }
  std::vector<Sym> syms;
  for (int c = 0; c < consts; ++c) {
    syms.push_back(prog.ConstSym("c" + std::to_string(c)));
  }
  auto random_const = [&] { return syms[rng.Below(syms.size())]; };

  for (int f = 0; f < 4; ++f) {
    const std::size_t p = rng.Below(pids.size());
    Atom a;
    a.pred = pids[p];
    for (std::size_t i = 0; i < arity[p]; ++i) {
      a.args.push_back(C(random_const()));
    }
    prog.AddFact(std::move(a));
  }
  for (int r = 0; r < rules; ++r) {
    Rule rule;
    const int body_atoms = 1 + static_cast<int>(rng.Below(3));
    std::vector<VarSym> avail;
    VarSym next_var = 0;
    std::size_t self_pred = rng.Below(pids.size());
    for (int b = 0; b < body_atoms; ++b) {
      const std::size_t p = (force_self_join && body_atoms > 1)
                                ? self_pred
                                : rng.Below(pids.size());
      Atom a;
      a.pred = pids[p];
      for (std::size_t i = 0; i < arity[p]; ++i) {
        if (!avail.empty() && rng.Chance(1, 3)) {
          a.args.push_back(V(avail[rng.Below(avail.size())]));
        } else if (rng.Chance(1, 4)) {
          a.args.push_back(C(random_const()));
        } else {
          a.args.push_back(V(next_var));
          avail.push_back(next_var);
          ++next_var;
        }
      }
      rule.body.push_back(std::move(a));
    }
    const std::size_t hp = rng.Below(pids.size());
    Atom head;
    head.pred = pids[hp];
    for (std::size_t i = 0; i < arity[hp]; ++i) {
      if (!avail.empty() && rng.Chance(3, 4)) {
        head.args.push_back(V(avail[rng.Below(avail.size())]));
      } else {
        head.args.push_back(C(random_const()));
      }
    }
    rule.head = std::move(head);
    prog.AddRule(std::move(rule));
  }
  return prog;
}

class IndexDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IndexDifferentialTest, IndexedMatchesScanDatabase) {
  Rng rng(GetParam());
  const bool self_join = GetParam() % 3 == 0;
  Program prog = RandomDatalog(rng, /*preds=*/4, /*consts=*/3, /*rules=*/7,
                               self_join);

  EvalStats scan_stats, index_stats, full_stats;
  Database scan_db = Eval(prog, &scan_stats, WithTuning(false, false));
  Database index_db = Eval(prog, &index_stats, WithTuning(true, false));
  Database full_db = Eval(prog, &full_stats, WithTuning(true, true));

  const std::set<GroundAtom> reference = Materialize(prog, scan_db);
  EXPECT_EQ(Materialize(prog, index_db), reference) << prog.ToString();
  EXPECT_EQ(Materialize(prog, full_db), reference) << prog.ToString();
  // Same fixpoint: identical derived-tuple counts everywhere. With the
  // body order unchanged an index probe visits a subset of the scanned
  // candidates but the same matches in the same sequence, so firings are
  // identical and join attempts can only shrink. (Reordering changes the
  // emission sequence, so only the fixpoint is compared for full tuning.)
  EXPECT_EQ(index_stats.tuples, scan_stats.tuples);
  EXPECT_EQ(full_stats.tuples, scan_stats.tuples);
  EXPECT_EQ(index_stats.rule_firings, scan_stats.rule_firings);
  EXPECT_LE(index_stats.join_attempts, scan_stats.join_attempts);

  // Every ground probe (derivable and not) answers identically.
  Rng probe_rng(GetParam() + 77);
  for (int probe = 0; probe < 8; ++probe) {
    const PredId p = static_cast<PredId>(probe_rng.Below(prog.num_preds()));
    Atom goal{p, {}};
    for (std::size_t i = 0; i < prog.pred(p).arity; ++i) {
      goal.args.push_back(
          C(static_cast<Sym>(probe_rng.Below(prog.num_consts()))));
    }
    EvalStats qs_scan, qs_index;
    const bool scan = Query(prog, goal, &qs_scan, WithTuning(false, false));
    const bool indexed = Query(prog, goal, &qs_index, WithTuning(true, true));
    EXPECT_EQ(indexed, scan) << prog.AtomToString(goal) << "\n"
                             << prog.ToString();
    EXPECT_EQ(qs_index.goal_found, qs_scan.goal_found);
  }
}

TEST_P(IndexDifferentialTest, EngineReuseMatchesFreshSolves) {
  Rng rng(GetParam() + 9000);
  Program prog = RandomDatalog(rng, 3, 3, 5, GetParam() % 2 == 0);
  Atom goal{0, {}};
  goal.args.assign(prog.pred(0).arity, C(0));

  Engine reusing;  // reuse_facts on (default)
  EvalOptions no_reuse;
  no_reuse.engine.reuse_facts = false;
  Engine fresh;
  for (int i = 0; i < 3; ++i) {
    const bool a = reusing.Solve(prog, goal);
    const bool b = fresh.Solve(prog, goal, no_reuse);
    EXPECT_EQ(a, b);
    EXPECT_EQ(reusing.last_stats().tuples, fresh.last_stats().tuples) << i;
    EXPECT_EQ(reusing.last_stats().rule_firings,
              fresh.last_stats().rule_firings)
        << i;
    EXPECT_EQ(reusing.last_stats().goal_found, fresh.last_stats().goal_found);
  }
  EXPECT_EQ(fresh.fact_reuses(), 0u);
}

EvalOptions WithStorage(StorageMode mode) {
  EvalOptions opts;  // use_index + reorder_joins on (defaults)
  opts.engine.storage = mode;
  return opts;
}

TEST_P(IndexDifferentialTest, StorageMatrixMatchesHashDatabase) {
  Rng rng(GetParam() + 40000);
  const bool self_join = GetParam() % 3 == 0;
  Program prog = RandomDatalog(rng, /*preds=*/4, /*consts=*/3, /*rules=*/7,
                               self_join);

  EvalStats hash_stats;
  Database hash_db = Eval(prog, &hash_stats, WithStorage(StorageMode::kHash));
  const std::set<GroundAtom> reference = Materialize(prog, hash_db);
  EXPECT_EQ(hash_stats.merge_scans, 0u);

  for (StorageMode mode : {StorageMode::kColumnar, StorageMode::kAuto}) {
    EvalStats s;
    Database db = Eval(prog, &s, WithStorage(mode));
    EXPECT_EQ(Materialize(prog, db), reference) << prog.ToString();
    // Sorted-run probes return candidates in the same ascending
    // tuple-index order as hash buckets, so the derivation sequence is
    // identical: tuples, firings, join attempts and hits match exactly.
    // Only the probe accounting splits between hash and merge scans.
    EXPECT_EQ(s.tuples, hash_stats.tuples);
    EXPECT_EQ(s.rule_firings, hash_stats.rule_firings);
    EXPECT_EQ(s.join_attempts, hash_stats.join_attempts);
    EXPECT_EQ(s.index_hits, hash_stats.index_hits);
    EXPECT_EQ(s.index_probes + s.merge_scans, hash_stats.index_probes);
    if (mode == StorageMode::kColumnar) {
      EXPECT_EQ(s.index_probes, 0u);
    }
  }

  // Every ground probe answers identically in every storage mode.
  Rng probe_rng(GetParam() + 277);
  for (int probe = 0; probe < 4; ++probe) {
    const PredId p = static_cast<PredId>(probe_rng.Below(prog.num_preds()));
    Atom goal{p, {}};
    for (std::size_t i = 0; i < prog.pred(p).arity; ++i) {
      goal.args.push_back(
          C(static_cast<Sym>(probe_rng.Below(prog.num_consts()))));
    }
    EvalStats qh, qc, qa;
    const bool hash = Query(prog, goal, &qh, WithStorage(StorageMode::kHash));
    const bool col = Query(prog, goal, &qc, WithStorage(StorageMode::kColumnar));
    const bool aut = Query(prog, goal, &qa, WithStorage(StorageMode::kAuto));
    EXPECT_EQ(col, hash) << prog.AtomToString(goal);
    EXPECT_EQ(aut, hash) << prog.AtomToString(goal);
    EXPECT_EQ(qc.goal_found, qh.goal_found);
    EXPECT_EQ(qa.goal_found, qh.goal_found);
  }
}

TEST_P(IndexDifferentialTest, DeltaSolveMatrixMatchesFreshSolves) {
  Rng rng(GetParam() + 50000);
  Program base = RandomDatalog(rng, 4, 3, 6, GetParam() % 2 == 0);
  Atom goal{0, {}};
  goal.args.assign(base.pred(0).arity, C(0));

  // A guess-like sequence: the base program plus per-step fact additions
  // (drawn from the existing symbol tables, so the delta fast path stays
  // structurally applicable) and, from step 2 on, a rule-set mutation
  // that dirties a whole stratum rather than just its facts.
  std::vector<Program> steps;
  for (int g = 0; g < 4; ++g) {
    Program p = base;
    Rng grng(GetParam() * 131 + static_cast<std::uint64_t>(g));
    for (int f = 0; f <= g; ++f) {
      const PredId fp = static_cast<PredId>(grng.Below(p.num_preds()));
      Atom a{fp, {}};
      for (std::size_t i = 0; i < p.pred(fp).arity; ++i) {
        a.args.push_back(C(static_cast<Sym>(grng.Below(p.num_consts()))));
      }
      p.AddFact(std::move(a));
    }
    if (g >= 2) {
      Rule r;
      const PredId hp = static_cast<PredId>(grng.Below(p.num_preds()));
      r.head.pred = hp;
      for (std::size_t i = 0; i < p.pred(hp).arity; ++i) {
        r.head.args.push_back(
            C(static_cast<Sym>(grng.Below(p.num_consts()))));
      }
      const PredId bp = static_cast<PredId>(grng.Below(p.num_preds()));
      Atom b{bp, {}};
      for (std::size_t i = 0; i < p.pred(bp).arity; ++i) {
        b.args.push_back(V(static_cast<VarSym>(i)));
      }
      r.body.push_back(std::move(b));
      p.AddRule(std::move(r));
    }
    steps.push_back(std::move(p));
  }

  for (StorageMode mode :
       {StorageMode::kHash, StorageMode::kColumnar, StorageMode::kAuto}) {
    EvalOptions delta = WithStorage(mode);
    delta.engine.delta_solve = true;
    EvalOptions fresh;
    fresh.engine.reuse_facts = false;
    Engine delta_engine;
    Engine fresh_engine;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const bool a = delta_engine.Solve(steps[i], goal, delta);
      const bool b = fresh_engine.Solve(steps[i], goal, fresh);
      EXPECT_EQ(a, b) << "mode=" << static_cast<int>(mode) << " step=" << i;
      EXPECT_EQ(delta_engine.last_stats().goal_found,
                fresh_engine.last_stats().goal_found)
          << "mode=" << static_cast<int>(mode) << " step=" << i;
      // The fixpoint is canonical, so the derived-tuple count (retained +
      // re-derived in delta mode) matches a cold solve exactly.
      EXPECT_EQ(delta_engine.last_stats().tuples,
                fresh_engine.last_stats().tuples)
          << "mode=" << static_cast<int>(mode) << " step=" << i;
    }
  }
}

// 320 seeds: IndexedMatchesScanDatabase alone is > 300 random programs.
INSTANTIATE_TEST_SUITE_P(Random, IndexDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 321));

// Explicit self-join shapes: the same predicate at two (or three) body
// positions, with the delta arriving at each position.
TEST(IndexSelfJoinTest, SamePredicateTwiceDerivesAllPairs) {
  Program prog;
  PredId n = prog.AddPred("n", 1);
  PredId pair = prog.AddPred("pair", 2);
  Sym a = prog.ConstSym("a"), b = prog.ConstSym("b"),
      c = prog.ConstSym("c");
  for (Sym s : {a, b, c}) prog.AddFact(Atom{n, {C(s)}});
  // pair(X, Y) :- n(X), n(Y).
  prog.AddRule(
      Rule{Atom{pair, {V(0), V(1)}}, {Atom{n, {V(0)}}, Atom{n, {V(1)}}}, {}});
  for (bool use_index : {false, true}) {
    Database db = Eval(prog, nullptr, WithTuning(use_index, use_index));
    EXPECT_EQ(db.Tuples(pair).size(), 9u);
  }
}

TEST(IndexSelfJoinTest, RecursiveSelfJoinReachesFixpoint) {
  // Transitive closure written as the non-linear self-join
  // path(X, Z) :- path(X, Y), path(Y, Z): every new path tuple is a delta
  // for both body positions.
  Program prog;
  PredId path = prog.AddPred("path", 2);
  std::vector<Sym> v;
  for (int i = 0; i < 5; ++i) v.push_back(prog.ConstSym("v" + std::to_string(i)));
  for (int i = 0; i + 1 < 5; ++i) {
    prog.AddFact(Atom{path, {C(v[i]), C(v[i + 1])}});
  }
  prog.AddRule(Rule{Atom{path, {V(0), V(2)}},
                    {Atom{path, {V(0), V(1)}}, Atom{path, {V(1), V(2)}}},
                    {}});
  EvalStats scan_stats, index_stats;
  Database scan = Eval(prog, &scan_stats, WithTuning(false, false));
  Database indexed = Eval(prog, &index_stats, WithTuning(true, true));
  EXPECT_EQ(scan.Tuples(path).size(), 10u);  // 4+3+2+1 pairs
  EXPECT_EQ(indexed.Tuples(path).size(), 10u);
  EXPECT_EQ(index_stats.tuples, scan_stats.tuples);
  EXPECT_LT(index_stats.join_attempts, scan_stats.join_attempts);
  EXPECT_GT(index_stats.index_probes, 0u);
  EXPECT_GT(index_stats.index_builds, 0u);
}

}  // namespace
}  // namespace rapar::dl
