// Release-build guard for JsonWriter's misuse contract: compiled with
// NDEBUG (asserts off) against its own copy of common/json.cpp, misuse
// must surface as std::logic_error — the writer may never emit an
// unbalanced document just because asserts were stripped. The aborting
// debug path is covered by the death tests in json_roundtrip_fuzz_test.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/json.h"

namespace rapar {
namespace {

TEST(JsonWriterReleaseGuard, EndObjectOnEmptyStackThrows) {
  JsonWriter w;
  EXPECT_THROW(w.EndObject(), std::logic_error);
}

TEST(JsonWriterReleaseGuard, EndArrayOnEmptyStackThrows) {
  JsonWriter w;
  EXPECT_THROW(w.EndArray(), std::logic_error);
}

TEST(JsonWriterReleaseGuard, MismatchedEndThrows) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_THROW(w.EndArray(), std::logic_error);
  JsonWriter w2;
  w2.BeginArray();
  EXPECT_THROW(w2.EndObject(), std::logic_error);
}

TEST(JsonWriterReleaseGuard, DoubleKeyThrows) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  EXPECT_THROW(w.Key("b"), std::logic_error);
}

TEST(JsonWriterReleaseGuard, KeyOutsideObjectThrows) {
  JsonWriter top;
  EXPECT_THROW(top.Key("a"), std::logic_error);
  JsonWriter arr;
  arr.BeginArray();
  EXPECT_THROW(arr.Key("a"), std::logic_error);
}

TEST(JsonWriterReleaseGuard, ValueInObjectWithoutKeyThrows) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_THROW(w.Int(1), std::logic_error);
}

TEST(JsonWriterReleaseGuard, EndObjectAfterDanglingKeyThrows) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  EXPECT_THROW(w.EndObject(), std::logic_error);
}

TEST(JsonWriterReleaseGuard, WellFormedDocumentStillWorks) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").BeginArray();
  w.String("x").Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[\"x\",null]}");
}

}  // namespace
}  // namespace rapar
