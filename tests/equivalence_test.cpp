// Differential tests for Theorem 3.4 (soundness & completeness of the
// simplified semantics): for a corpus of random parameterized systems we
// compare the concrete RA explorer (instances with n env threads) against
// the saturating simplified-semantics explorer.
//
//  * Soundness of the abstraction: every local state (node, rv) and every
//    generated message (var, val) reachable concretely with ANY number of
//    env threads must be reachable in the simplified semantics.
//  * Completeness: everything the simplified semantics reaches must be
//    realised by some concrete instance. The required number of env
//    threads is bounded but can be large (§4.3), so we search n up to a
//    cap and require that the corpus as a whole converges almost always.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "lang/random_program.h"
#include "ra/explorer.h"
#include "simplified/explorer.h"

namespace rapar {
namespace {

using DeState = std::pair<std::uint32_t, std::vector<Value>>;  // node, rv
using MsgDe = std::pair<std::uint32_t, Value>;                 // var, val

struct ConcreteSets {
  std::set<DeState> env_states;
  std::set<std::tuple<std::size_t, std::uint32_t, std::vector<Value>>>
      dis_states;
  std::set<MsgDe> messages;
  bool exhaustive = true;
};

ConcreteSets RunConcrete(const Cfa& env, const std::vector<const Cfa*>& dis,
                         Value dom, std::size_t num_vars, int n_env,
                         int max_depth) {
  std::vector<const Cfa*> threads;
  for (int i = 0; i < n_env; ++i) threads.push_back(&env);
  for (const Cfa* d : dis) threads.push_back(d);
  RaExplorer ex(threads, dom, num_vars,
                {0, static_cast<std::size_t>(n_env)});
  RaExplorerOptions opts;
  opts.max_depth = max_depth;
  opts.max_states = 120'000;
  opts.time_budget_ms = 10'000;
  opts.stop_on_violation = false;
  RaResult res = ex.CheckSafety(opts);

  ConcreteSets out;
  out.exhaustive = res.exhaustive;
  for (const auto& [ti, node, rv] : ex.reachable_controls()) {
    if (ti < static_cast<std::size_t>(n_env)) {
      out.env_states.emplace(node, rv);
    } else {
      out.dis_states.emplace(ti - n_env, node, rv);
    }
  }
  for (const auto& m : ex.generated_messages()) out.messages.insert(m);
  return out;
}

struct AbstractSets {
  std::set<DeState> env_states;
  std::set<std::tuple<std::size_t, std::uint32_t, std::vector<Value>>>
      dis_states;
  std::set<MsgDe> messages;
  bool exhaustive = true;
};

AbstractSets RunAbstract(const SimplSystem& sys, ViewChoice policy) {
  SimplExplorer ex(sys);
  SimplExplorerOptions opts;
  opts.policy = policy;
  opts.stop_on_violation = false;
  opts.max_states = 30'000;
  opts.time_budget_ms = 10'000;
  SimplResult res = ex.Check(opts);
  AbstractSets out;
  out.exhaustive = res.exhaustive;
  out.env_states = ex.reachable_env_de();
  out.dis_states = ex.reachable_dis_de();
  for (const auto& [var, val, is_env] : ex.generated_messages()) {
    out.messages.emplace(var, val);
  }
  return out;
}

template <typename Set>
bool IsSubset(const Set& a, const Set& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

struct Corpus {
  std::vector<std::unique_ptr<Cfa>> owned;
  SimplSystem sys;
};

Corpus MakeCorpusSystem(std::uint64_t seed, bool dis_cas, bool env_loops) {
  Rng rng(seed);
  RandomProgramOptions env_opts;
  env_opts.num_vars = 2;
  env_opts.num_regs = 2;
  env_opts.dom = 3;
  env_opts.size = 4;
  env_opts.allow_cas = false;
  env_opts.allow_loops = env_loops;

  RandomProgramOptions dis_opts = env_opts;
  dis_opts.size = 4;
  dis_opts.allow_cas = dis_cas;
  dis_opts.allow_loops = false;

  Corpus c;
  Program env = RandomProgram(rng, env_opts, "env");
  Program dis = RandomProgram(rng, dis_opts, "dis");
  c.owned.push_back(std::make_unique<Cfa>(Cfa::Build(env)));
  c.owned.push_back(std::make_unique<Cfa>(Cfa::Build(dis)));
  c.sys.env = c.owned[0].get();
  c.sys.dis = {c.owned[1].get()};
  c.sys.dom = env_opts.dom;
  c.sys.num_vars = env_opts.num_vars;
  return c;
}

class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceTest, ConcreteBehavioursAppearInSimplified) {
  const std::uint64_t seed = GetParam();
  Corpus c = MakeCorpusSystem(seed, /*dis_cas=*/(seed % 3 == 0),
                              /*env_loops=*/false);
  AbstractSets abs = RunAbstract(c.sys, ViewChoice::kAll);
  if (!abs.exhaustive) GTEST_SKIP() << "abstract space too large";

  for (int n = 1; n <= 3; ++n) {
    ConcreteSets con = RunConcrete(*c.sys.env, c.sys.dis, c.sys.dom,
                                   c.sys.num_vars, n, /*max_depth=*/60);
    EXPECT_TRUE(IsSubset(con.env_states, abs.env_states))
        << "seed " << seed << " n=" << n << " env states leak";
    EXPECT_TRUE(IsSubset(con.dis_states, abs.dis_states))
        << "seed " << seed << " n=" << n << " dis states leak";
    EXPECT_TRUE(IsSubset(con.messages, abs.messages))
        << "seed " << seed << " n=" << n << " messages leak";
  }
}

TEST_P(EquivalenceTest, SimplifiedBehavioursRealisedConcretely) {
  const std::uint64_t seed = GetParam();
  Corpus c = MakeCorpusSystem(seed, /*dis_cas=*/(seed % 3 == 0),
                              /*env_loops=*/false);
  AbstractSets abs = RunAbstract(c.sys, ViewChoice::kAll);
  if (!abs.exhaustive) GTEST_SKIP() << "abstract space too large";

  // Search for an instance realising everything the abstraction claims.
  ConcreteSets con;
  bool converged = false;
  for (int n = 1; n <= 4 && !converged; ++n) {
    con = RunConcrete(*c.sys.env, c.sys.dis, c.sys.dom, c.sys.num_vars, n,
                      /*max_depth=*/80);
    if (!con.exhaustive) {
      GTEST_SKIP() << "concrete space too large at n=" << n;
    }
    converged = con.exhaustive && IsSubset(abs.env_states, con.env_states) &&
                IsSubset(abs.dis_states, con.dis_states) &&
                IsSubset(abs.messages, con.messages);
  }
  EXPECT_TRUE(converged) << "seed " << seed
                         << ": abstraction not realised with <= 5 env "
                            "threads (completeness violation or the "
                            "instance genuinely needs more threads)";
}

TEST_P(EquivalenceTest, PolicyMinimalAgreesWithAll) {
  const std::uint64_t seed = GetParam();
  Corpus c = MakeCorpusSystem(seed, /*dis_cas=*/(seed % 3 == 0),
                              /*env_loops=*/false);
  AbstractSets all = RunAbstract(c.sys, ViewChoice::kAll);
  if (!all.exhaustive) GTEST_SKIP() << "abstract space too large";
  AbstractSets min = RunAbstract(c.sys, ViewChoice::kMinimal);
  ASSERT_TRUE(min.exhaustive);
  EXPECT_EQ(all.env_states, min.env_states) << "seed " << seed;
  EXPECT_EQ(all.dis_states, min.dis_states) << "seed " << seed;
  EXPECT_EQ(all.messages, min.messages) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Corpus, EquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 25));

// Loops in env threads: soundness direction only (concrete exploration is
// depth-bounded; completeness convergence is not guaranteed at small n).
class LoopyEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LoopyEquivalenceTest, ConcreteBehavioursAppearInSimplified) {
  const std::uint64_t seed = GetParam();
  Corpus c = MakeCorpusSystem(seed, /*dis_cas=*/false, /*env_loops=*/true);
  AbstractSets abs = RunAbstract(c.sys, ViewChoice::kAll);
  if (!abs.exhaustive) GTEST_SKIP() << "abstract space too large";
  for (int n = 1; n <= 2; ++n) {
    ConcreteSets con = RunConcrete(*c.sys.env, c.sys.dis, c.sys.dom,
                                   c.sys.num_vars, n, /*max_depth=*/25);
    EXPECT_TRUE(IsSubset(con.env_states, abs.env_states))
        << "seed " << seed << " n=" << n;
    EXPECT_TRUE(IsSubset(con.messages, abs.messages))
        << "seed " << seed << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(LoopyCorpus, LoopyEquivalenceTest,
                         ::testing::Range<std::uint64_t>(100, 112));

}  // namespace
}  // namespace rapar
