// Observability must be verdict-neutral and deadlines must degrade
// gracefully:
//
//   1. Tracing on vs off produces bit-identical verdicts, witnesses and
//      aggregate statistics — at one worker thread and at eight. The
//      recorder only appends to a buffer; nothing the verifier computes
//      may depend on it.
//   2. A wall-clock deadline (VerifierOptions::time_budget_ms) aborts
//      each backend cooperatively: the verdict degrades to kUnknown and
//      Verdict::stopped_phase names the phase that was cut short
//      ("solve" for the Datalog guess loop, "explore" for the
//      explorers). Deadline runs are exempt from the thread-count
//      determinism rule (the abort point is timing-dependent); the
//      verdict kind and stopped_phase still must not depend on tracing.
#include <gtest/gtest.h>

#include "core/benchmarks.h"
#include "core/verifier.h"
#include "obs/trace.h"

namespace rapar {
namespace {

void ExpectIdentical(const Verdict& a, const Verdict& b, const char* label) {
  EXPECT_EQ(a.result, b.result) << label;
  EXPECT_EQ(a.witness, b.witness) << label;
  EXPECT_EQ(a.env_thread_bound, b.env_thread_bound) << label;
  EXPECT_EQ(a.stopped_phase, b.stopped_phase) << label;
  EXPECT_EQ(a.guesses(), b.guesses()) << label;
  EXPECT_EQ(a.tuples(), b.tuples()) << label;
  EXPECT_EQ(a.rule_firings(), b.rule_firings()) << label;
  EXPECT_EQ(a.join_attempts(), b.join_attempts()) << label;
  EXPECT_EQ(a.states(), b.states()) << label;
}

TEST(ObsDifferentialTest, TraceOnOffIdenticalDatalog) {
  for (unsigned threads : {1u, 8u}) {
    for (bool safe_case : {false, true}) {
      BenchmarkCase bench =
          safe_case ? ProducerConsumerSafe(6) : ProducerConsumer(6);
      SafetyVerifier verifier(bench.system);
      VerifierOptions opts;
      opts.backend = Backend::kDatalog;
      opts.datalog.threads = threads;

      const Verdict off = verifier.Run(std::nullopt, opts);
      obs::TraceRecorder rec;
      opts.obs.trace = &rec;
      const Verdict on = verifier.Run(std::nullopt, opts);

      const std::string label =
          bench.name + " threads=" + std::to_string(threads);
      ExpectIdentical(off, on, label.c_str());
      EXPECT_GT(rec.size(), 0u) << label;
    }
  }
}

TEST(ObsDifferentialTest, TraceOnOffIdenticalSimplified) {
  for (bool safe_case : {false, true}) {
    BenchmarkCase bench =
        safe_case ? ProducerConsumerSafe(6) : ProducerConsumer(6);
    SafetyVerifier verifier(bench.system);
    VerifierOptions opts;
    opts.backend = Backend::kSimplifiedExplorer;

    const Verdict off = verifier.Run(std::nullopt, opts);
    obs::TraceRecorder rec;
    opts.obs.trace = &rec;
    const Verdict on = verifier.Run(std::nullopt, opts);

    ExpectIdentical(off, on, bench.name.c_str());
    EXPECT_GT(rec.size(), 0u);
  }
}

// The Datalog guess loop checks the deadline before every solve:
// peterson-ra enumerates 29 guesses and needs a few milliseconds to
// scan them all, so a 1 ms budget reliably cuts the enumeration short
// (several guesses in). The verdict must degrade to kUnknown with
// stopped_phase = "solve" — never a wrong "safe" — and the partial
// guess count must stay below the full scan.
TEST(ObsDifferentialTest, DeadlineAbortsDatalogSerial) {
  BenchmarkCase bench = PetersonRa();
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kDatalog;
  opts.datalog.threads = 1;
  VerifierOptions full = opts;
  const Verdict complete = verifier.Run(std::nullopt, full);
  opts.time_budget_ms = 1;
  const Verdict v = verifier.Run(std::nullopt, opts);
  EXPECT_EQ(v.result, Verdict::Result::kUnknown);
  EXPECT_EQ(v.stopped_phase, "solve");
  EXPECT_TRUE(v.witness.empty());
  EXPECT_LT(v.guesses(), complete.guesses());
  EXPECT_NE(v.ToString().find("[deadline hit in solve]"), std::string::npos);
}

TEST(ObsDifferentialTest, DeadlineAbortsDatalogParallel) {
  BenchmarkCase bench = PetersonRa();
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kDatalog;
  opts.datalog.threads = 4;
  opts.time_budget_ms = 1;
  const Verdict v = verifier.Run(std::nullopt, opts);
  EXPECT_EQ(v.result, Verdict::Result::kUnknown);
  EXPECT_EQ(v.stopped_phase, "solve");
  EXPECT_TRUE(v.witness.empty());
}

// The saturation explorer checks its budget every few expansion steps;
// the safe producer/consumer instance takes several milliseconds to
// saturate, so a 1 ms budget reliably interrupts the search
// mid-exploration.
TEST(ObsDifferentialTest, DeadlineAbortsSimplifiedExplorer) {
  BenchmarkCase bench = ProducerConsumerSafe(12);
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kSimplifiedExplorer;
  opts.time_budget_ms = 1;
  const Verdict v = verifier.Run(std::nullopt, opts);
  EXPECT_EQ(v.result, Verdict::Result::kUnknown);
  EXPECT_EQ(v.stopped_phase, "explore");
}

TEST(ObsDifferentialTest, DeadlineAbortsConcreteExplorer) {
  BenchmarkCase bench = ProducerConsumerSafe(12);
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kConcrete;
  opts.concrete.env_threads = 2;
  opts.time_budget_ms = 1;
  const Verdict v = verifier.Run(std::nullopt, opts);
  EXPECT_EQ(v.result, Verdict::Result::kUnknown);
  EXPECT_EQ(v.stopped_phase, "explore");
}

// Without a budget the same instances complete: the deadline plumbing
// must not interfere with unbudgeted runs.
TEST(ObsDifferentialTest, NoBudgetMeansNoDeadline) {
  BenchmarkCase bench = ProducerConsumerSafe(6);
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kDatalog;
  opts.time_budget_ms = 0;
  const Verdict v = verifier.Run(std::nullopt, opts);
  EXPECT_EQ(v.result, Verdict::Result::kSafe);
  EXPECT_TRUE(v.stopped_phase.empty());
}

}  // namespace
}  // namespace rapar
