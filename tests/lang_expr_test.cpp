// Unit tests for expressions: evaluation, modular arithmetic, printing.
#include "lang/expr.h"

#include <gtest/gtest.h>

#include <vector>

namespace rapar {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  RegTable regs_;
  RegId r0_ = regs_.Add("r0");
  RegId r1_ = regs_.Add("r1");

  Value Eval(const ExprPtr& e, std::vector<Value> rv, Value dom = 8) {
    return e->Eval(rv, dom);
  }
};

TEST_F(ExprTest, ConstIsReducedModuloDomain) {
  EXPECT_EQ(Eval(EConst(5), {0, 0}), 5);
  EXPECT_EQ(Eval(EConst(9), {0, 0}), 1);  // 9 mod 8
  EXPECT_EQ(Eval(EConst(8), {0, 0}), 0);
}

TEST_F(ExprTest, RegReadsValuation) {
  EXPECT_EQ(Eval(EReg(r0_), {3, 7}), 3);
  EXPECT_EQ(Eval(EReg(r1_), {3, 7}), 7);
}

TEST_F(ExprTest, ArithmeticIsModular) {
  EXPECT_EQ(Eval(EAdd(EConst(5), EConst(6)), {}), 3);   // 11 mod 8
  EXPECT_EQ(Eval(ESub(EConst(2), EConst(5)), {}), 5);   // -3 mod 8
  EXPECT_EQ(Eval(EMul(EConst(3), EConst(5)), {}), 7);   // 15 mod 8
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_EQ(Eval(EEq(EConst(3), EConst(3)), {}), 1);
  EXPECT_EQ(Eval(EEq(EConst(3), EConst(4)), {}), 0);
  EXPECT_EQ(Eval(ENe(EConst(3), EConst(4)), {}), 1);
  EXPECT_EQ(Eval(ELt(EConst(3), EConst(4)), {}), 1);
  EXPECT_EQ(Eval(ELt(EConst(4), EConst(4)), {}), 0);
  EXPECT_EQ(Eval(ELe(EConst(4), EConst(4)), {}), 1);
}

TEST_F(ExprTest, BooleanConnectives) {
  EXPECT_EQ(Eval(EAnd(EConst(1), EConst(2)), {}), 1);  // non-zero is true
  EXPECT_EQ(Eval(EAnd(EConst(1), EConst(0)), {}), 0);
  EXPECT_EQ(Eval(EOr(EConst(0), EConst(3)), {}), 1);
  EXPECT_EQ(Eval(EOr(EConst(0), EConst(0)), {}), 0);
  EXPECT_EQ(Eval(ENot(EConst(0)), {}), 1);
  EXPECT_EQ(Eval(ENot(EConst(5)), {}), 0);
}

TEST_F(ExprTest, NestedExpression) {
  // (r0 + 1 == r1) && !(r0 == 0)
  ExprPtr e = EAnd(EEq(EAdd(EReg(r0_), EConst(1)), EReg(r1_)),
                   ENot(ERegEq(r0_, 0)));
  EXPECT_EQ(Eval(e, {2, 3}), 1);
  EXPECT_EQ(Eval(e, {0, 1}), 0);  // r0 == 0 fails second conjunct
  EXPECT_EQ(Eval(e, {2, 4}), 0);
}

TEST_F(ExprTest, CollectRegs) {
  ExprPtr e = EAnd(ERegEq(r0_, 1), ELt(EReg(r1_), EReg(r0_)));
  std::vector<RegId> regs;
  e->CollectRegs(regs);
  int c0 = 0, c1 = 0;
  for (RegId r : regs) {
    if (r == r0_) ++c0;
    if (r == r1_) ++c1;
  }
  EXPECT_EQ(c0, 2);
  EXPECT_EQ(c1, 1);
}

TEST_F(ExprTest, ToStringRendersNames) {
  ExprPtr e = EEq(EAdd(EReg(r0_), EConst(1)), EReg(r1_));
  EXPECT_EQ(e->ToString(regs_), "((r0 + 1) == r1)");
}

TEST_F(ExprTest, StructuralEquality) {
  EXPECT_TRUE(ERegEq(r0_, 1)->Equals(*ERegEq(r0_, 1)));
  EXPECT_FALSE(ERegEq(r0_, 1)->Equals(*ERegEq(r0_, 2)));
  EXPECT_FALSE(ERegEq(r0_, 1)->Equals(*ERegEq(r1_, 1)));
  EXPECT_FALSE(ERegEq(r0_, 1)->Equals(*ENot(ERegEq(r0_, 1))));
}

}  // namespace
}  // namespace rapar
