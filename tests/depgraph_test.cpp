// Dependency graph construction (Definition 1), cost analysis (§4.3,
// Figure 5), and compactness bounds (§4.2, Figure 4).
#include "depgraph/dep_graph.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lang/parser.h"
#include "ra/explorer.h"

namespace rapar {
namespace {

struct Sys {
  std::vector<std::unique_ptr<Cfa>> owned;
  SimplSystem sys;
  VarTable vars;
};

Sys MakeSys(const std::string& env_text,
            const std::vector<std::string>& dis_texts) {
  Sys out;
  auto parse = [&](const std::string& text) {
    Expected<Program> p = ParseProgram(text);
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    return std::move(p).value();
  };
  Program env = parse(env_text);
  out.sys.dom = env.dom();
  out.sys.num_vars = env.vars().size();
  out.vars = env.vars();
  out.owned.push_back(std::make_unique<Cfa>(Cfa::Build(env)));
  out.sys.env = out.owned[0].get();
  for (const auto& text : dis_texts) {
    Program d = parse(text);
    out.owned.push_back(std::make_unique<Cfa>(Cfa::Build(d)));
    out.sys.dis.push_back(out.owned.back().get());
  }
  return out;
}

// Figure 1/3/5 producer-consumer: producers nondeterministically publish a
// value in 1..z after seeing the start flag; the consumer demands the
// sequence 1, 2, ..., z. The paper's cost analysis yields cost z for the
// goal message.
std::string ProducerForZ(int z, int dom) {
  std::string body = "  r := y;\n  assume (r == 1);\n  choice {\n";
  for (int i = 1; i <= z; ++i) {
    body += "    s := " + std::to_string(i) + ";\n    x := s\n";
    body += (i < z) ? "  } or {\n" : "  };\n";
  }
  if (z == 1) {
    // single branch needs a second arm; publish 1 either way
    body =
        "  r := y;\n  assume (r == 1);\n  s := 1;\n  x := s;\n";
  }
  return "program producer\nvars x y goal\nregs r s\ndom " +
         std::to_string(dom) + "\nbegin\n" + body + "  skip\nend\n";
}

std::string ConsumerForZ(int z, int dom) {
  std::string body = "  one := 1;\n  y := one;\n";
  for (int i = 1; i <= z; ++i) {
    body += "  s := x;\n  assume (s == " + std::to_string(i) + ");\n";
  }
  body += "  two := 2;\n  goal := two\n";  // msg# = (goal, 2)
  return "program consumer\nvars x y goal\nregs s one two\ndom " +
         std::to_string(dom) + "\nbegin\n" + body + "end\n";
}

std::vector<SimplStep> GoalWitness(const Sys& s, VarId goal_var,
                                   Value goal_val) {
  SimplExplorer ex(s.sys);
  SimplExplorerOptions opts;
  opts.goal = {goal_var, goal_val};
  SimplResult r = ex.Check(opts);
  EXPECT_TRUE(r.goal_reached);
  return r.witness;
}

TEST(DepGraphTest, Figure5CostEqualsLoopBound) {
  for (int z = 1; z <= 4; ++z) {
    const int dom = z + 2;
    Sys s = MakeSys(ProducerForZ(z, dom), {ConsumerForZ(z, dom)});
    VarId goal = s.vars.Find("goal");
    std::vector<SimplStep> witness = GoalWitness(s, goal, 2);
    DepGraph g = DepGraph::Build(s.sys, witness);
    // cost(msg#) == z: the consumer needs z distinct producer messages.
    EXPECT_EQ(g.CostOfMessage(goal, 2), z) << "z=" << z;
  }
}

TEST(DepGraphTest, CostBoundIsRealisedConcretely) {
  // §4.3: cost-many env threads suffice to exhibit the behaviour, and for
  // this family they are also necessary (each producer stores once).
  const int z = 2, dom = 4;
  Sys s = MakeSys(ProducerForZ(z, dom), {ConsumerForZ(z, dom)});
  VarId goal = s.vars.Find("goal");
  std::vector<SimplStep> witness = GoalWitness(s, goal, 2);
  DepGraph g = DepGraph::Build(s.sys, witness);
  const long long cost = g.CostOfMessage(goal, 2);
  ASSERT_EQ(cost, z);

  auto concrete_reaches = [&](int n_env) {
    std::vector<const Cfa*> threads;
    for (int i = 0; i < n_env; ++i) threads.push_back(s.sys.env);
    for (const Cfa* d : s.sys.dis) threads.push_back(d);
    RaExplorer ex(threads, s.sys.dom, s.sys.num_vars,
                  {0, static_cast<std::size_t>(n_env)});
    RaExplorerOptions opts;
    opts.stop_on_violation = false;
    ex.CheckSafety(opts);
    return ex.generated_messages().count({goal.value(), 2}) > 0;
  };
  EXPECT_TRUE(concrete_reaches(static_cast<int>(cost)));
  EXPECT_FALSE(concrete_reaches(static_cast<int>(cost) - 1));
}

TEST(DepGraphTest, InitMessagesHaveCostZero) {
  Sys s = MakeSys(ProducerForZ(1, 3), {ConsumerForZ(1, 3)});
  VarId goal = s.vars.Find("goal");
  std::vector<SimplStep> witness = GoalWitness(s, goal, 2);
  DepGraph g = DepGraph::Build(s.sys, witness);
  for (std::size_t i = 0; i < s.sys.num_vars; ++i) {
    EXPECT_EQ(g.nodes()[i].origin, DepNode::Origin::kInit);
    EXPECT_EQ(g.CostOf(static_cast<std::uint32_t>(i)), 0);
  }
}

TEST(DepGraphTest, GraphIsAcyclicByConstruction) {
  Sys s = MakeSys(ProducerForZ(3, 5), {ConsumerForZ(3, 5)});
  VarId goal = s.vars.Find("goal");
  std::vector<SimplStep> witness = GoalWitness(s, goal, 2);
  DepGraph g = DepGraph::Build(s.sys, witness);
  // depend edges always point to earlier nodes; Height() asserts that.
  EXPECT_GE(g.Height(), 1);
  EXPECT_GE(g.MaxFanIn(), 1);
}

TEST(DepGraphTest, WitnessGraphsAreCompactOnThisFamily) {
  // Lemma 4.5 consequence: BFS (shortest) witnesses for this family stay
  // within the Q0 compactness bounds.
  for (int z = 1; z <= 3; ++z) {
    const int dom = z + 2;
    Sys s = MakeSys(ProducerForZ(z, dom), {ConsumerForZ(z, dom)});
    VarId goal = s.vars.Find("goal");
    std::vector<SimplStep> witness = GoalWitness(s, goal, 2);
    DepGraph g = DepGraph::Build(s.sys, witness);
    EXPECT_TRUE(g.IsCompact(ComputeQ0(s.sys))) << "z=" << z;
  }
}

TEST(DepGraphTest, EnvChainCostCountsClones) {
  // Chained producers: each env thread reads the predecessor's message.
  // cost(x = k) = 2^k - 1 with rc = 1 per level... here each env message
  // depends on one env message, so cost(k) = 1 + cost(k-1) = k.
  const char* env = R"(
    program chain
    vars x
    regs r s
    dom 5
    begin
      r := x;
      s := r + 1;
      x := s
    end
  )";
  Sys s = MakeSys(env, {});
  SimplExplorer ex(s.sys);
  SimplExplorerOptions opts;
  opts.goal = {VarId(0), Value(4)};
  SimplResult r = ex.Check(opts);
  ASSERT_TRUE(r.goal_reached);
  DepGraph g = DepGraph::Build(s.sys, r.witness);
  EXPECT_EQ(g.CostOfMessage(VarId(0), 4), 4);
  EXPECT_EQ(g.Height(), 4);
}

TEST(DepGraphTest, Figure4TwoGenthreadChoices) {
  // §4.2/Figure 4: the same message can be first-generated by different
  // threads; genthread (and so the graph) depends on the run. Environment
  // program: publish x := 1, or read x == 1 and publish y := 2.
  const char* env = R"(
    program snippet
    vars x y
    regs r one two
    dom 3
    begin
      one := 1;
      two := 2;
      choice {
        x := one
      } or {
        r := x;
        assume (r == 1);
        y := two
      }
    end
  )";
  Sys s = MakeSys(env, {});
  SimplExplorer ex(s.sys);
  SimplExplorerOptions opts;
  opts.goal = {VarId(1), Value(2)};
  SimplResult r = ex.Check(opts);
  ASSERT_TRUE(r.goal_reached);
  DepGraph g = DepGraph::Build(s.sys, r.witness);
  // (y,2) depends on (x,1), which depends on nothing but init.
  const long long cost = g.CostOfMessage(VarId(1), 2);
  EXPECT_EQ(cost, 2);  // one publisher + one forwarder
  // Render both textual and dot outputs.
  EXPECT_FALSE(g.ToString(s.vars).empty());
  std::string dot = g.ToDot(s.vars);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("orange"), std::string::npos);
}

TEST(DepGraphTest, SourcesAndSinks) {
  Sys s = MakeSys(ProducerForZ(2, 4), {ConsumerForZ(2, 4)});
  VarId goal = s.vars.Find("goal");
  std::vector<SimplStep> witness = GoalWitness(s, goal, 2);
  DepGraph g = DepGraph::Build(s.sys, witness);
  // Init messages are sources.
  auto sources = g.Sources();
  EXPECT_GE(sources.size(), s.sys.num_vars);
  // The goal message is a sink.
  auto sinks = g.Sinks();
  bool goal_is_sink = false;
  for (auto id : sinks) {
    if (g.nodes()[id].var == goal && g.nodes()[id].val == 2) {
      goal_is_sink = true;
    }
  }
  EXPECT_TRUE(goal_is_sink);
}

TEST(ComputeQ0Test, Formula) {
  Sys s = MakeSys(ProducerForZ(2, 4), {ConsumerForZ(2, 4)});
  std::size_t dis_edges = s.sys.dis[0]->edges().size();
  EXPECT_EQ(ComputeQ0(s.sys),
            4 * 3 + static_cast<int>(dis_edges));  // dom * vars + |dis|
}

}  // namespace
}  // namespace rapar
