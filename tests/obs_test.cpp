// Unit tests for the observability layer: the shared JSON
// writer/parser (common/json.h), the Telemetry registry and the
// TraceRecorder/ScopedSpan machinery (src/obs/), plus an end-to-end
// check that a traced verify produces a well-formed Chrome trace with
// the documented span names and per-guess nesting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/benchmarks.h"
#include "core/verifier.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace rapar {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonWriterTest, ObjectsArraysAndScalars) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a\"b\\c\n");
  w.Key("i").Int(-42);
  w.Key("u").UInt(18446744073709551615ull);
  w.Key("b").Bool(true);
  w.Key("n").Null();
  w.Key("a").BeginArray().Int(1).Int(2).EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"i\":-42,"
            "\"u\":18446744073709551615,\"b\":true,\"n\":null,"
            "\"a\":[1,2]}");
}

TEST(JsonWriterTest, DoublesTrimTrailingNoise) {
  JsonWriter w;
  w.BeginArray().Double(0.5).Double(3.0).Double(0.1).EndArray();
  Expected<JsonValue> v = ParseJson(w.str());
  ASSERT_TRUE(v.ok()) << v.error();
  ASSERT_EQ(v.value().items.size(), 3u);
  EXPECT_DOUBLE_EQ(v.value().items[0].number, 0.5);
  EXPECT_DOUBLE_EQ(v.value().items[1].number, 3.0);
  EXPECT_DOUBLE_EQ(v.value().items[2].number, 0.1);
  // The 0.1 rendering must not be printf noise.
  EXPECT_EQ(w.str().find("0.10000000000000001"), std::string::npos);
}

TEST(JsonWriterTest, PrettyOutputParses) {
  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.Key("outer").BeginObject().Key("inner").Int(1).EndObject();
  w.Key("list").BeginArray().String("x").EndArray();
  w.EndObject();
  EXPECT_NE(w.str().find('\n'), std::string::npos);
  EXPECT_TRUE(ParseJson(w.str()).ok());
}

TEST(ParseJsonTest, RoundTripAndLookup) {
  Expected<JsonValue> v =
      ParseJson("{\"a\": [1, 2.5, \"s\", null, false], \"b\": {\"c\": 7}}");
  ASSERT_TRUE(v.ok()) << v.error();
  const JsonValue* a = v.value().Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 5u);
  EXPECT_TRUE(a->items[0].number_is_int);
  EXPECT_EQ(a->items[0].integer, 1);
  EXPECT_FALSE(a->items[1].number_is_int);
  EXPECT_EQ(a->items[2].string, "s");
  EXPECT_TRUE(a->items[3].is_null());
  EXPECT_FALSE(a->items[4].boolean);
  const JsonValue* b = v.value().Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("c"), nullptr);
  EXPECT_EQ(b->Find("c")->integer, 7);
  EXPECT_EQ(v.value().Find("missing"), nullptr);
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{'a': 1}").ok());
}

TEST(ParseJsonTest, UnescapesStrings) {
  Expected<JsonValue> v = ParseJson("\"a\\\"b\\\\c\\n\\t\\u0041\"");
  ASSERT_TRUE(v.ok()) << v.error();
  EXPECT_EQ(v.value().string, "a\"b\\c\n\tA");
}

// ----------------------------------------------------------- Telemetry

TEST(TelemetryTest, CountersAndGauges) {
  obs::Telemetry t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.counter("verify.states"), 0u);
  EXPECT_FALSE(t.Has("verify.states"));

  t.SetCounter("verify.states", 10);
  t.AddCounter("verify.states", 5);
  t.AddCounter("verify.guesses", 3);
  t.SetGauge("phase.total_ms", 1.25);
  EXPECT_EQ(t.counter("verify.states"), 15u);
  EXPECT_EQ(t.counter("verify.guesses"), 3u);
  EXPECT_DOUBLE_EQ(t.gauge("phase.total_ms"), 1.25);
  EXPECT_TRUE(t.Has("phase.total_ms"));
  EXPECT_FALSE(t.empty());
}

TEST(TelemetryTest, InsertionOrderIsPreserved) {
  obs::Telemetry t;
  t.SetCounter("z.last", 1);
  t.SetCounter("a.first", 2);
  t.SetGauge("m.mid", 3.0);
  t.SetCounter("z.last", 4);  // update must not reorder
  ASSERT_EQ(t.entries().size(), 3u);
  EXPECT_EQ(t.entries()[0].name, "z.last");
  EXPECT_EQ(t.entries()[1].name, "a.first");
  EXPECT_EQ(t.entries()[2].name, "m.mid");
  EXPECT_EQ(t.entries()[0].counter, 4u);
}

TEST(TelemetryTest, MergeAdds) {
  obs::Telemetry a, b;
  a.SetCounter("c", 10);
  a.SetGauge("g", 1.0);
  b.SetCounter("c", 5);
  b.SetCounter("only_b", 7);
  b.SetGauge("g", 0.5);
  a.Merge(b);
  EXPECT_EQ(a.counter("c"), 15u);
  EXPECT_EQ(a.counter("only_b"), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 1.5);
}

TEST(TelemetryTest, JsonAndTextRenderings) {
  obs::Telemetry t;
  t.SetCounter("verify.states", 42);
  t.SetGauge("phase.total_ms", 2.5);
  JsonWriter w;
  t.WriteJson(w);
  Expected<JsonValue> v = ParseJson(w.str());
  ASSERT_TRUE(v.ok()) << v.error();
  ASSERT_NE(v.value().Find("verify.states"), nullptr);
  EXPECT_EQ(v.value().Find("verify.states")->integer, 42);
  EXPECT_DOUBLE_EQ(v.value().Find("phase.total_ms")->number, 2.5);

  const std::string s = t.ToString();
  EXPECT_NE(s.find("verify.states=42"), std::string::npos);
  EXPECT_NE(s.find("phase.total_ms=2.500"), std::string::npos);
}

// ---------------------------------------------------------------- Trace

TEST(TraceRecorderTest, RecordsAndExports) {
  obs::TraceRecorder rec;
  {
    obs::ScopedSpan outer(&rec, "outer");
    EXPECT_TRUE(outer.active());
    obs::ScopedSpan inner(&rec, "inner");
  }
  obs::TraceInstant(&rec, "marker", "{\"k\": 1}");
  EXPECT_EQ(rec.size(), 3u);

  Expected<JsonValue> doc = ParseJson(rec.ToChromeTraceJson());
  ASSERT_TRUE(doc.ok()) << doc.error();
  const JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items.size(), 3u);
  // Inner closes first, so it is recorded before outer.
  EXPECT_EQ(events->items[0].Find("name")->string, "inner");
  EXPECT_EQ(events->items[0].Find("ph")->string, "X");
  EXPECT_EQ(events->items[1].Find("name")->string, "outer");
  EXPECT_EQ(events->items[2].Find("name")->string, "marker");
  EXPECT_EQ(events->items[2].Find("ph")->string, "i");
  ASSERT_NE(events->items[2].Find("args"), nullptr);
  EXPECT_EQ(events->items[2].Find("args")->Find("k")->integer, 1);
  // The inner span is contained in the outer one.
  const std::uint64_t inner_ts =
      static_cast<std::uint64_t>(events->items[0].Find("ts")->integer);
  const std::uint64_t inner_end =
      inner_ts +
      static_cast<std::uint64_t>(events->items[0].Find("dur")->integer);
  const std::uint64_t outer_ts =
      static_cast<std::uint64_t>(events->items[1].Find("ts")->integer);
  const std::uint64_t outer_end =
      outer_ts +
      static_cast<std::uint64_t>(events->items[1].Find("dur")->integer);
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
}

TEST(TraceRecorderTest, NullRecorderIsANoOp) {
  obs::ScopedSpan span(nullptr, "ignored");
  EXPECT_FALSE(span.active());
  span.set_args("{\"x\": 1}");  // must not crash
  obs::TraceInstant(nullptr, "ignored");
}

TEST(TraceRecorderTest, ThreadIdIsStable) {
  const std::uint32_t a = obs::TraceRecorder::CurrentThreadId();
  const std::uint32_t b = obs::TraceRecorder::CurrentThreadId();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 1u);
}

// A traced datalog verify emits the documented span names, and the
// per-guess spans nest inside the solve phase (same containment
// Perfetto uses to draw the flame graph).
TEST(TraceRecorderTest, VerifySpansNestUnderSolve) {
  BenchmarkCase bench = ProducerConsumer(4);
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kDatalog;
  obs::TraceRecorder rec;
  opts.obs.trace = &rec;
  const Verdict v = verifier.Run(std::nullopt, opts);
  EXPECT_TRUE(v.unsafe());

  Expected<JsonValue> doc = ParseJson(rec.ToChromeTraceJson());
  ASSERT_TRUE(doc.ok()) << doc.error();
  const JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<std::string> names;
  for (const JsonValue& e : events->items) {
    names.push_back(e.Find("name")->string);
  }
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("verify:datalog"));
  EXPECT_TRUE(has("solve"));
  EXPECT_TRUE(has("guess"));
  EXPECT_TRUE(has("makep"));
  EXPECT_TRUE(has("eval"));

  // Every guess span lies inside the solve span's window.
  std::uint64_t solve_ts = 0, solve_end = 0;
  for (const JsonValue& e : events->items) {
    if (e.Find("name")->string == "solve") {
      solve_ts = static_cast<std::uint64_t>(e.Find("ts")->integer);
      solve_end =
          solve_ts + static_cast<std::uint64_t>(e.Find("dur")->integer);
    }
  }
  for (const JsonValue& e : events->items) {
    if (e.Find("name")->string != "guess") continue;
    const std::uint64_t ts =
        static_cast<std::uint64_t>(e.Find("ts")->integer);
    const std::uint64_t end =
        ts + static_cast<std::uint64_t>(e.Find("dur")->integer);
    EXPECT_GE(ts, solve_ts);
    EXPECT_LE(end, solve_end);
  }
}

// The Verdict telemetry carries the per-phase gauges and the legacy
// accessors reconstruct their values from the registry.
TEST(TelemetryTest, VerdictPhaseGaugesAndAccessors) {
  BenchmarkCase bench = ProducerConsumer(4);
  SafetyVerifier verifier(bench.system);
  VerifierOptions opts;
  opts.backend = Backend::kDatalog;
  const Verdict v = verifier.Run(std::nullopt, opts);
  namespace metric = obs::metric;
  EXPECT_TRUE(v.telemetry.Has(metric::kPhaseTotalMs));
  EXPECT_TRUE(v.telemetry.Has(metric::kPhaseSolveMs));
  EXPECT_GE(v.telemetry.gauge(metric::kPhaseTotalMs),
            v.telemetry.gauge(metric::kPhaseSolveMs));
  EXPECT_EQ(v.guesses(), v.telemetry.counter(metric::kGuesses));
  EXPECT_EQ(v.tuples(), v.telemetry.counter(metric::kTuples));
  EXPECT_EQ(v.rule_firings(), v.telemetry.counter(metric::kRuleFirings));
  EXPECT_EQ(v.dlopt().rules_before,
            v.telemetry.counter(metric::kDlOptRulesBefore));
}

}  // namespace
}  // namespace rapar
