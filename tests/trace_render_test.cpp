// Trace rendering: the Figure-3-style output is deterministic, mentions
// the messages with their abstract views, and the snapshot mode prints
// memory states.
#include "core/trace_render.h"

#include <gtest/gtest.h>

#include "core/benchmarks.h"
#include "core/verifier.h"

namespace rapar {
namespace {

TEST(TraceRenderTest, ProducerConsumerWitnessMentionsKeyEvents) {
  BenchmarkCase pc = ProducerConsumer(2);
  SimplExplorer ex(pc.system.simpl());
  SimplResult r = ex.Check({});
  ASSERT_TRUE(r.violation);

  TraceRenderOptions opts;
  std::string text = RenderTrace(pc.system.simpl(), r.witness, opts);
  EXPECT_NE(text.find("writes dis msg (y,1)"), std::string::npos) << text;
  EXPECT_NE(text.find("writes env msg (x,1)"), std::string::npos) << text;
  EXPECT_NE(text.find("writes env msg (x,2)"), std::string::npos) << text;
  EXPECT_NE(text.find("assertion violation"), std::string::npos) << text;
  // Abstract ⁺-timestamps appear in the views.
  EXPECT_NE(text.find("x->0+"), std::string::npos) << text;
}

TEST(TraceRenderTest, ElidingSilentStepsShortensOutput) {
  BenchmarkCase pc = ProducerConsumer(2);
  SimplExplorer ex(pc.system.simpl());
  SimplResult r = ex.Check({});
  ASSERT_TRUE(r.violation);

  TraceRenderOptions full;
  TraceRenderOptions elided;
  elided.elide_silent = true;
  const std::string a = RenderTrace(pc.system.simpl(), r.witness, full);
  const std::string b = RenderTrace(pc.system.simpl(), r.witness, elided);
  EXPECT_GE(a.size(), b.size());
  EXPECT_NE(b.find("assertion violation"), std::string::npos);
}

TEST(TraceRenderTest, SnapshotsShowMemory) {
  BenchmarkCase pc = ProducerConsumer(1);
  SimplExplorer ex(pc.system.simpl());
  SimplResult r = ex.Check({});
  ASSERT_TRUE(r.violation);

  TraceRenderOptions opts;
  opts.memory_snapshots = true;
  std::string text = RenderTrace(pc.system.simpl(), r.witness, opts);
  // Snapshot lines list init messages "[0:0]" and env messages "(0+:1)".
  EXPECT_NE(text.find("[0:0]"), std::string::npos) << text;
  EXPECT_NE(text.find("(0+:1)"), std::string::npos) << text;
}

TEST(TraceRenderTest, RenderingIsDeterministic) {
  BenchmarkCase pc = ProducerConsumer(2);
  SimplExplorer ex(pc.system.simpl());
  SimplResult r = ex.Check({});
  ASSERT_TRUE(r.violation);
  const std::string a = RenderTrace(pc.system.simpl(), r.witness, {});
  const std::string b = RenderTrace(pc.system.simpl(), r.witness, {});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rapar
