// Differential check: the parallel guess-level verification driver must
// be invisible in the verdict. Runs the Datalog backend at thread counts
// 1 / 2 / 8 across the benchmark catalog and a corpus of random systems,
// demanding bit-identical unsafe / exhaustive / witness_guess / guesses
// and identical aggregated engine statistics — the executable counterpart
// of the determinism rule in encoding/datalog_verifier.h. index_builds
// and fact_reuses are the two documented exceptions (they depend on which
// guesses a worker happens to see) and are excluded.
//
// Also pins the streaming enumerator to the legacy vector API: a
// DisGuessCursor must yield exactly the EnumerateDisGuesses sequence.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/benchmarks.h"
#include "encoding/datalog_verifier.h"
#include "encoding/dis_guess.h"
#include "lang/random_program.h"

namespace rapar {
namespace {

DatalogVerdict VerifyAt(const SimplSystem& sys, unsigned threads,
                        std::size_t max_guesses, std::size_t max_tuples,
                        std::size_t batch_size = 32,
                        std::optional<std::pair<VarId, Value>> goal = {}) {
  DatalogVerifierOptions opts;
  opts.goal_message = goal;
  opts.guess.max_guesses = max_guesses;
  opts.max_tuples_per_query = max_tuples;
  opts.threads = threads;
  opts.batch_size = batch_size;
  return DatalogVerify(sys, opts);
}

// Everything that must not depend on the thread count.
void ExpectIdentical(const DatalogVerdict& base, const DatalogVerdict& v,
                     const std::string& label) {
  EXPECT_EQ(base.unsafe, v.unsafe) << label;
  EXPECT_EQ(base.exhaustive, v.exhaustive) << label;
  EXPECT_EQ(base.witness_guess, v.witness_guess) << label;
  EXPECT_EQ(base.guesses, v.guesses) << label;
  EXPECT_EQ(base.queries_evaluated, v.queries_evaluated) << label;
  EXPECT_EQ(base.budget_aborted_guess, v.budget_aborted_guess) << label;
  EXPECT_EQ(base.total_rules, v.total_rules) << label;
  EXPECT_EQ(base.total_rules_after, v.total_rules_after) << label;
  EXPECT_EQ(base.total_tuples, v.total_tuples) << label;
  EXPECT_EQ(base.rule_firings, v.rule_firings) << label;
  EXPECT_EQ(base.join_attempts, v.join_attempts) << label;
  EXPECT_EQ(base.index_probes, v.index_probes) << label;
  EXPECT_EQ(base.index_hits, v.index_hits) << label;
  EXPECT_EQ(base.width_report, v.width_report) << label;
  EXPECT_EQ(base.parallel.early_exit_index, v.parallel.early_exit_index)
      << label;
  // index_builds and fact_reuses intentionally not compared.
}

TEST(ParallelDifferentialTest, BenchmarkCatalogIdenticalAcrossThreadCounts) {
  for (BenchmarkCase& bench : StandardBenchmarks()) {
    const DatalogVerdict base =
        VerifyAt(bench.system.simpl(), 1, 2'000, 500'000);
    for (unsigned threads : {2u, 8u}) {
      const DatalogVerdict v =
          VerifyAt(bench.system.simpl(), threads, 2'000, 500'000);
      ExpectIdentical(base, v,
                      bench.name + " @" + std::to_string(threads));
      EXPECT_EQ(v.parallel.threads, threads) << bench.name;
    }
  }
}

TEST(ParallelDifferentialTest, SmallBatchesStressTheEarlyExitOrdering) {
  // batch_size 1 maximizes the interleaving of chunk dispatch and the
  // first-unsafe-wins cutoff; the witness must still be the
  // lowest-enumeration-index one.
  BenchmarkCase bench = ProducerConsumer(2);
  const DatalogVerdict base =
      VerifyAt(bench.system.simpl(), 1, 2'000, 500'000, /*batch_size=*/1);
  ASSERT_TRUE(base.unsafe);
  for (unsigned threads : {2u, 3u, 8u}) {
    const DatalogVerdict v = VerifyAt(bench.system.simpl(), threads, 2'000,
                                      500'000, /*batch_size=*/1);
    ExpectIdentical(base, v, "pc-unsafe @" + std::to_string(threads));
  }
}

TEST(ParallelDifferentialTest, BudgetAbortStopsAtTheSameGuessEverywhere) {
  // A tiny tuple budget forces an abort (on the first query — the makeP
  // shape is uniform across guesses, so the first one blows first); every
  // thread count must report the same aborted index, and the scan must
  // stop there instead of evaluating the remaining guesses (peterson-ra
  // has 29).
  BenchmarkCase bench = PetersonRa();
  const DatalogVerdict base =
      VerifyAt(bench.system.simpl(), 1, 2'000, /*max_tuples=*/3);
  ASSERT_NE(base.budget_aborted_guess, kNoGuessIndex);
  EXPECT_FALSE(base.exhaustive);
  EXPECT_FALSE(base.unsafe);
  EXPECT_EQ(base.guesses, base.budget_aborted_guess + 1);
  const DatalogVerdict full =
      VerifyAt(bench.system.simpl(), 1, 2'000, /*max_tuples=*/500'000);
  EXPECT_LT(base.guesses, full.guesses) << "abort did not stop the scan";
  for (unsigned threads : {2u, 8u}) {
    const DatalogVerdict v =
        VerifyAt(bench.system.simpl(), threads, 2'000, /*max_tuples=*/3);
    ExpectIdentical(base, v, "budget @" + std::to_string(threads));
  }
}

TEST(ParallelDifferentialTest, RandomSystemsIdenticalAcrossTwoHundredSeeds) {
  int unsafe_seen = 0;
  int exhaustive_seen = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    RandomProgramOptions env_opts;
    env_opts.num_vars = 2;
    env_opts.num_regs = 2;
    env_opts.dom = 3;
    env_opts.size = 5;
    env_opts.allow_cas = false;
    env_opts.allow_loops = false;
    RandomProgramOptions dis_opts = env_opts;
    dis_opts.size = 4;

    Program env = RandomProgram(rng, env_opts, "env");
    Program dis = RandomProgram(rng, dis_opts, "dis");
    Expected<ParamSystem> sys = ParamSystem::Builder()
                                    .Env(std::move(env))
                                    .Dis(std::move(dis))
                                    .Build();
    ASSERT_TRUE(sys.ok()) << "seed " << seed << ": "
                          << (sys.ok() ? "" : sys.error());
    // Even seeds ask the MG question "can (v0, d) be generated?" with d
    // cycling over the domain — (v0, 0) is derivable for most systems, so
    // this half of the corpus exercises the first-unsafe-wins early exit;
    // odd seeds run the assert-false query (mostly safe full scans).
    std::optional<std::pair<VarId, Value>> goal;
    if (seed % 2 == 0) {
      const VarId v0 = sys.value().vars().Find("v0");
      ASSERT_TRUE(v0.valid()) << "seed " << seed;
      goal = {v0, static_cast<Value>((seed / 2) % 3)};
    }
    const DatalogVerdict base = VerifyAt(sys.value().simpl(), 1, 500,
                                         200'000, /*batch_size=*/8, goal);
    for (unsigned threads : {2u, 8u}) {
      const DatalogVerdict v = VerifyAt(sys.value().simpl(), threads, 500,
                                        200'000, /*batch_size=*/8, goal);
      ExpectIdentical(base, v,
                      "seed " + std::to_string(seed) + " @" +
                          std::to_string(threads));
    }
    unsafe_seen += base.unsafe;
    exhaustive_seen += base.exhaustive;
  }
  // The corpus must exercise both early exits and full scans.
  EXPECT_GT(unsafe_seen, 20);
  EXPECT_GT(exhaustive_seen, 100);
}

TEST(ParallelDifferentialTest, CursorYieldsTheVectorSequence) {
  for (BenchmarkCase& bench : StandardBenchmarks()) {
    const SimplSystem& sys = bench.system.simpl();
    GuessEnumOptions opts;
    opts.max_guesses = 2'000;
    bool complete = true;
    const std::vector<DisGuess> all =
        EnumerateDisGuesses(sys, opts, &complete);

    DisGuessCursor cursor(sys, opts, /*buffer_capacity=*/64);
    std::vector<DisGuess> streamed;
    std::vector<DisGuess> chunk;
    // Ragged chunk sizes so chunk boundaries move around.
    std::size_t want = 1;
    for (;;) {
      chunk.clear();
      const std::size_t n = cursor.NextChunk(want, &chunk);
      if (n == 0) break;
      ASSERT_LE(n, want) << bench.name;
      for (DisGuess& g : chunk) streamed.push_back(std::move(g));
      want = want % 7 + 1;
    }
    ASSERT_TRUE(cursor.exhausted()) << bench.name;
    EXPECT_EQ(cursor.complete(), complete) << bench.name;
    EXPECT_EQ(cursor.produced(), all.size()) << bench.name;
    ASSERT_EQ(streamed.size(), all.size()) << bench.name;
    for (std::size_t i = 0; i < all.size(); ++i) {
      ASSERT_EQ(streamed[i].ToString(sys), all[i].ToString(sys))
          << bench.name << " guess " << i;
    }
  }
}

TEST(ParallelDifferentialTest, CursorCancelStopsProduction) {
  // peterson-ra has 29 guesses; with a buffer of 4 and 2 consumed the
  // producer is still blocked mid-enumeration when Cancel() lands, so
  // complete() is deterministically false.
  BenchmarkCase bench = PetersonRa();
  const SimplSystem& sys = bench.system.simpl();
  GuessEnumOptions opts;
  DisGuessCursor cursor(sys, opts, /*buffer_capacity=*/4);
  std::vector<DisGuess> chunk;
  ASSERT_GT(cursor.NextChunk(2, &chunk), 0u);
  cursor.Cancel();
  chunk.clear();
  EXPECT_EQ(cursor.NextChunk(16, &chunk), 0u);
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_FALSE(cursor.complete());
  EXPECT_LT(cursor.produced(), 29u);
}

}  // namespace
}  // namespace rapar
