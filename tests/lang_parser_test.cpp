// Parser tests: grammar coverage, error reporting, print/parse round-trip.
#include "lang/parser.h"

#include <gtest/gtest.h>

#include "lang/classify.h"

namespace rapar {
namespace {

Program MustParse(const std::string& text) {
  Expected<Program> p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
  return std::move(p).value();
}

TEST(ParserTest, MinimalProgram) {
  Program p = MustParse(R"(
    program tiny
    vars x
    regs r
    dom 2
    begin
      skip
    end
  )");
  EXPECT_EQ(p.name(), "tiny");
  EXPECT_EQ(p.vars().size(), 1u);
  EXPECT_EQ(p.regs().size(), 1u);
  EXPECT_EQ(p.dom(), 2);
  EXPECT_EQ(p.body()->kind(), StmtKind::kSkip);
}

TEST(ParserTest, ProducerConsumerFromFigure1) {
  // The producer of Figure 1 (z is concretised to dom-1).
  Program p = MustParse(R"(
    program producer
    vars x y
    regs r
    dom 8
    begin
      r := y;           // λ1: load
      assume (r == 1);  // λ2
      r := r + 3;
      x := r            // λ3: store
    end
  )");
  Classification c = Classify(p);
  EXPECT_TRUE(c.cas_free);
  EXPECT_TRUE(c.loop_free);
}

TEST(ParserTest, LoadVsAssignDisambiguation) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r s
    dom 4
    begin
      r := x;     // load: rhs is a variable
      s := r + 1  // assign: rhs is an expression
    end
  )");
  const Stmt& seq = *p.body();
  ASSERT_EQ(seq.kind(), StmtKind::kSeq);
  EXPECT_EQ(seq.children()[0]->kind(), StmtKind::kLoad);
  EXPECT_EQ(seq.children()[1]->kind(), StmtKind::kAssign);
}

TEST(ParserTest, StoreRequiresRegisterSource) {
  auto r = ParseProgram(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      x := 1
    end
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, CasChoiceLoop) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r0 r1
    dom 4
    begin
      r0 := 0;
      r1 := 1;
      loop {
        choice {
          cas(x, r0, r1)
        } or {
          skip
        }
      }
    end
  )");
  Classification c = Classify(p);
  EXPECT_FALSE(c.cas_free);
  EXPECT_FALSE(c.loop_free);
}

TEST(ParserTest, IfElseDesugarsToChoice) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      if (r == 1) { skip } else { assert false }
    end
  )");
  EXPECT_EQ(p.body()->kind(), StmtKind::kChoice);
}

TEST(ParserTest, WhileDesugarsToStarAssume) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      while (r < 3) { r := r + 1 }
    end
  )");
  ASSERT_EQ(p.body()->kind(), StmtKind::kSeq);
  EXPECT_EQ(p.body()->children()[0]->kind(), StmtKind::kStar);
  EXPECT_EQ(p.body()->children()[1]->kind(), StmtKind::kAssume);
}

TEST(ParserTest, GreaterThanIsFlippedLessThan) {
  Program p = MustParse(R"(
    program q
    vars x
    regs r s
    dom 4
    begin
      assume (r > s)
    end
  )");
  const Expr& e = *p.body()->expr();
  EXPECT_EQ(e.op(), ExprOp::kLt);
  EXPECT_EQ(e.children()[0]->reg(), p.regs().Find("s"));
  EXPECT_EQ(e.children()[1]->reg(), p.regs().Find("r"));
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto r = ParseProgram(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      r := undeclared_name
    end
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("line 7"), std::string::npos) << r.error();
}

TEST(ParserTest, RejectsVarInExpression) {
  auto r = ParseProgram(R"(
    program q
    vars x
    regs r
    dom 4
    begin
      assume (x == 1)
    end
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("load it into a register"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicateDeclaration) {
  auto r = ParseProgram(R"(
    program q
    vars x
    regs x
    dom 4
    begin
      skip
    end
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, RejectsDomainBelowTwo) {
  auto r = ParseProgram(R"(
    program q
    vars x
    regs r
    dom 1
    begin
      skip
    end
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, PrintParseRoundTrip) {
  const char* kText = R"(
    program rt
    vars x y
    regs r s
    dom 5
    begin
      r := 1;
      y := r;
      loop {
        s := x;
        choice {
          assume (s == 2);
          x := s
        } or {
          skip
        }
      };
      assert false
    end
  )";
  Program p1 = MustParse(kText);
  Program p2 = MustParse(p1.ToString());
  // Round-trip is stable: printing again yields the same text.
  EXPECT_EQ(p1.ToString(), p2.ToString());
}

}  // namespace
}  // namespace rapar
