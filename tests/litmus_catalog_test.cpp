// The classical weak-memory litmus catalog under RA, checked against both
// semantics. The expected verdicts are the RA folklore (Lahav et al.,
// "Taming release-acquire consistency"): RA is exactly the model where
//   MP, WRC (causality chains) are forbidden,
//   SB, LB*, IRIW, RWC, 2+2W are allowed,
//   per-location coherence (CoRR / CoWR / CoRW) always holds.
// (*Com has no relaxed accesses and our semantics has no promises, so LB
// weak outcomes are unobservable — noted below.)
//
// Each litmus is run (a) concretely with the exact thread set and (b) as
// a parameterized system (observers as env threads where it makes sense),
// and both semantics must agree with the catalog.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lang/parser.h"
#include "ra/explorer.h"
#include "simplified/explorer.h"

namespace rapar {
namespace {

struct Threads {
  std::vector<std::unique_ptr<Cfa>> owned;
  std::vector<const Cfa*> ptrs;
  Value dom = 0;
  std::size_t num_vars = 0;
};

Threads Parse(const std::vector<std::string>& programs) {
  Threads t;
  for (const auto& text : programs) {
    Expected<Program> p = ParseProgram(text);
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    Program prog = std::move(p).value();
    t.dom = prog.dom();
    t.num_vars = prog.vars().size();
    t.owned.push_back(std::make_unique<Cfa>(Cfa::Build(prog)));
  }
  for (const auto& c : t.owned) t.ptrs.push_back(c.get());
  return t;
}

// Concrete verdict: is the annotated outcome (assert false) observable?
bool Concrete(const std::vector<std::string>& programs) {
  Threads t = Parse(programs);
  RaExplorer ex(t.ptrs, t.dom, t.num_vars);
  RaExplorerOptions opts;
  opts.max_states = 600'000;
  opts.time_budget_ms = 30'000;
  RaResult r = ex.CheckSafety(opts);
  EXPECT_TRUE(r.violation || r.exhaustive) << "inconclusive";
  return r.violation;
}

// Parameterized verdict: first program is the env template, the rest dis.
bool Parameterized(const std::vector<std::string>& programs) {
  Threads t = Parse(programs);
  SimplSystem sys;
  sys.env = t.ptrs[0];
  sys.dis.assign(t.ptrs.begin() + 1, t.ptrs.end());
  sys.dom = t.dom;
  sys.num_vars = t.num_vars;
  SimplExplorer ex(sys);
  SimplExplorerOptions opts;
  opts.time_budget_ms = 30'000;
  SimplResult r = ex.Check(opts);
  EXPECT_TRUE(r.violation || r.exhaustive) << "inconclusive";
  return r.violation;
}

// Common variable header for 4-variable tests.
#define HDR4 "vars x y a b\n"

// --- IRIW: independent reads of independent writes -------------------------

// Writers store x / y; two readers observe them in opposite orders. The
// weak outcome is allowed under RA (no multi-copy atomicity without SC).
TEST(LitmusCatalogTest, IriwAllowed) {
  const char* wx = R"(
    program wx
    vars x y f1 f2
    regs one
    dom 2
    begin
      one := 1;
      x := one
    end)";
  const char* wy = R"(
    program wy
    vars x y f1 f2
    regs one
    dom 2
    begin
      one := 1;
      y := one
    end)";
  const char* r1 = R"(
    program r1
    vars x y f1 f2
    regs p q one
    dom 2
    begin
      p := x;
      assume (p == 1);
      q := y;
      assume (q == 0);
      one := 1;
      f1 := one
    end)";
  const char* r2 = R"(
    program r2
    vars x y f1 f2
    regs p q one
    dom 2
    begin
      p := y;
      assume (p == 1);
      q := x;
      assume (q == 0);
      one := 1;
      f2 := one
    end)";
  const char* check = R"(
    program check
    vars x y f1 f2
    regs p q
    dom 2
    begin
      p := f1;
      assume (p == 1);
      q := f2;
      assume (q == 1);
      assert false
    end)";
  EXPECT_TRUE(Concrete({wx, wy, r1, r2, check}));
}

// --- WRC: write-to-read causality — forbidden ------------------------------

// T1 writes x; T2 reads x==1 then writes y; T3 reads y==1 then must see
// x==1 (release/acquire chains are transitive).
TEST(LitmusCatalogTest, WrcForbidden) {
  const char* t1 = R"(
    program t1
    vars x y
    regs one
    dom 2
    begin
      one := 1;
      x := one
    end)";
  const char* t2 = R"(
    program t2
    vars x y
    regs r one
    dom 2
    begin
      r := x;
      assume (r == 1);
      one := 1;
      y := one
    end)";
  const char* t3 = R"(
    program t3
    vars x y
    regs r s
    dom 2
    begin
      r := y;
      assume (r == 1);
      s := x;
      assume (s == 0);
      assert false
    end)";
  EXPECT_FALSE(Concrete({t1, t2, t3}));
  // Parameterized: unboundedly many forwarders (t2-shaped env threads)
  // still cannot break the causality chain.
  EXPECT_FALSE(Parameterized({t2, t1, t3}));
}

// --- RWC: read-to-write causality — allowed under RA ------------------------

// T1: x:=1. T2: reads x==1, then reads y==0. T3: y:=1 then reads x==0.
TEST(LitmusCatalogTest, RwcAllowed) {
  const char* t1 = R"(
    program t1
    vars x y f1 f2
    regs one
    dom 2
    begin
      one := 1;
      x := one
    end)";
  const char* t2 = R"(
    program t2
    vars x y f1 f2
    regs r s one
    dom 2
    begin
      r := x;
      assume (r == 1);
      s := y;
      assume (s == 0);
      one := 1;
      f1 := one
    end)";
  const char* t3 = R"(
    program t3
    vars x y f1 f2
    regs r one
    dom 2
    begin
      one := 1;
      y := one;
      r := x;
      assume (r == 0);
      f2 := one
    end)";
  const char* check = R"(
    program check
    vars x y f1 f2
    regs p q
    dom 2
    begin
      p := f1;
      assume (p == 1);
      q := f2;
      assume (q == 1);
      assert false
    end)";
  EXPECT_TRUE(Concrete({t1, t2, t3, check}));
}

// --- 2+2W: the RA vs SRA separator — allowed under RA ------------------------

// T1: x:=1; y:=2. T2: y:=1; x:=2. Weak outcome: both later reads see the
// *first* writes as mo-final, i.e. a reader sees x==1 after T2 finished
// and y==1 after T1 finished. Under RA each store only needs a timestamp
// above its own view, so the cross mo-orders can both put the value-1
// store last. (SRA forbids this.)
TEST(LitmusCatalogTest, TwoPlusTwoWAllowed) {
  const char* t1 = R"(
    program t1
    vars x y f1 f2
    regs one two
    dom 3
    begin
      one := 1;
      two := 2;
      x := one;
      y := two;
      f1 := one
    end)";
  const char* t2 = R"(
    program t2
    vars x y f1 f2
    regs one two
    dom 3
    begin
      one := 1;
      two := 2;
      y := one;
      x := two;
      f2 := one
    end)";
  // After both threads finish, a reader that keeps reading x can settle
  // on 1 (x:=1 mo-after x:=2) and likewise y on 1.
  const char* check = R"(
    program check
    vars x y f1 f2
    regs p q r s
    dom 3
    begin
      p := f1;
      assume (p == 1);
      q := f2;
      assume (q == 1);
      r := x;
      assume (r == 1);
      s := y;
      assume (s == 1);
      assert false
    end)";
  EXPECT_TRUE(Concrete({t1, t2, check}));
}

// --- Coherence shapes ---------------------------------------------------------

TEST(LitmusCatalogTest, CoWRForbidden) {
  // A thread that wrote x:=1 cannot subsequently read the init value.
  const char* t = R"(
    program t
    vars x
    regs one r
    dom 2
    begin
      one := 1;
      x := one;
      r := x;
      assume (r == 0);
      assert false
    end)";
  EXPECT_FALSE(Concrete({t}));
  EXPECT_FALSE(Parameterized({t}));
}

TEST(LitmusCatalogTest, CoRWForbidden) {
  // Reading another thread's x==1 and then storing x:=2 places the store
  // mo-after; the writer of 1 re-reading x can see 1 or 2 but a third
  // party can never see mo-order 2 then 1.
  const char* w = R"(
    program w
    vars x
    regs one
    dom 3
    begin
      one := 1;
      x := one
    end)";
  const char* u = R"(
    program u
    vars x
    regs r two
    dom 3
    begin
      r := x;
      assume (r == 1);
      two := 2;
      x := two
    end)";
  const char* reader = R"(
    program reader
    vars x
    regs p q
    dom 3
    begin
      p := x;
      assume (p == 2);
      q := x;
      assume (q == 1);
      assert false
    end)";
  EXPECT_FALSE(Concrete({w, u, reader}));
}

TEST(LitmusCatalogTest, MpChainLengthThreeForbidden) {
  // Longer causality chain: x -> y -> z; seeing z==1 forbids x==0.
  const char* t1 = R"(
    program t1
    vars x y z
    regs one
    dom 2
    begin
      one := 1;
      x := one;
      y := one
    end)";
  const char* t2 = R"(
    program t2
    vars x y z
    regs r one
    dom 2
    begin
      r := y;
      assume (r == 1);
      one := 1;
      z := one
    end)";
  const char* t3 = R"(
    program t3
    vars x y z
    regs r s
    dom 2
    begin
      r := z;
      assume (r == 1);
      s := x;
      assume (s == 0);
      assert false
    end)";
  EXPECT_FALSE(Concrete({t1, t2, t3}));
  EXPECT_FALSE(Parameterized({t2, t1, t3}));
}

// --- Parameterized variants ----------------------------------------------------

TEST(LitmusCatalogTest, ParameterizedIriwReadersAllowed) {
  // The readers become env threads: with unboundedly many observers the
  // IRIW weak outcome remains observable (and nothing stronger leaks in).
  const char* env_reader = R"(
    program reader
    vars x y f1 f2
    regs p q one
    dom 2
    begin
      one := 1;
      choice {
        p := x;
        assume (p == 1);
        q := y;
        assume (q == 0);
        f1 := one
      } or {
        p := y;
        assume (p == 1);
        q := x;
        assume (q == 0);
        f2 := one
      }
    end)";
  const char* wx = R"(
    program wx
    vars x y f1 f2
    regs one
    dom 2
    begin
      one := 1;
      x := one
    end)";
  const char* wy = R"(
    program wy
    vars x y f1 f2
    regs one
    dom 2
    begin
      one := 1;
      y := one
    end)";
  const char* check = R"(
    program check
    vars x y f1 f2
    regs p q
    dom 2
    begin
      p := f1;
      assume (p == 1);
      q := f2;
      assume (q == 1);
      assert false
    end)";
  EXPECT_TRUE(Parameterized({env_reader, wx, wy, check}));
}

TEST(LitmusCatalogTest, ParameterizedSbAllowed) {
  const char* env = R"(
    program env
    vars x y f1 f2
    regs r one
    dom 2
    begin
      one := 1;
      choice {
        x := one;
        r := y;
        assume (r == 0);
        f1 := one
      } or {
        y := one;
        r := x;
        assume (r == 0);
        f2 := one
      }
    end)";
  const char* check = R"(
    program check
    vars x y f1 f2
    regs p q
    dom 2
    begin
      p := f1;
      assume (p == 1);
      q := f2;
      assume (q == 1);
      assert false
    end)";
  EXPECT_TRUE(Parameterized({env, check}));
}

}  // namespace
}  // namespace rapar
