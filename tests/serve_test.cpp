// End-to-end tests for the verification service (core/serve.h): request
// decoding, the content-addressed verdict cache (fingerprint
// sensitivity, LRU eviction, single-flight coalescing), the catalog
// replay differential — every standard benchmark served twice must be
// 100% cache hits on the second pass with envelopes identical to the
// first modulo telemetry, and both must agree with a one-shot
// SafetyVerifier run — and ordered concurrent Run().
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "core/benchmarks.h"
#include "core/result_json.h"
#include "core/serve.h"
#include "core/verifier.h"

namespace rapar {
namespace {

// The MP pair (examples/programs/mp_writer.rap / mp_reader_stale.rap):
// safe, and provable by the TMAI backend — the certificate-replay case.
constexpr char kMpWriter[] =
    "program writer\n"
    "vars x y\n"
    "regs one\n"
    "dom 2\n"
    "begin\n"
    "  one := 1;\n"
    "  y := one;\n"
    "  x := one\n"
    "end\n";

constexpr char kMpReader[] =
    "program reader\n"
    "vars x y\n"
    "regs a b\n"
    "dom 2\n"
    "begin\n"
    "  a := x;\n"
    "  assume (a == 1);\n"
    "  b := y;\n"
    "  assume (b == 0);\n"
    "  assert false\n"
    "end\n";

struct RequestSpec {
  std::string command = "verify";
  std::string env;
  std::vector<std::string> dis;
  std::string var;
  long long val = -1;
  // Raw JSON for the "options" member; empty = omit.
  std::string options_json;
  long long id = -1;
};

serve::ServeOptions Opts(unsigned threads, std::size_t cache_entries = 1024) {
  serve::ServeOptions o;
  o.threads = threads;
  o.cache_entries = cache_entries;
  return o;
}

std::string RequestLine(const RequestSpec& spec) {
  JsonWriter w;
  w.BeginObject();
  if (spec.id >= 0) w.Key("id").Int(spec.id);
  w.Key("command").String(spec.command);
  w.Key("env").String(spec.env);
  if (!spec.dis.empty()) {
    w.Key("dis").BeginArray();
    for (const std::string& d : spec.dis) w.String(d);
    w.EndArray();
  }
  if (!spec.var.empty()) {
    w.Key("var").String(spec.var);
    w.Key("val").Int(spec.val);
  }
  if (!spec.options_json.empty()) {
    w.Key("options").Raw(spec.options_json);
  }
  w.EndObject();
  return w.TakeString();
}

std::string MakeLine(const std::string& command, const std::string& env,
                     std::vector<std::string> dis = {},
                     const std::string& var = {}, long long val = -1,
                     const std::string& options_json = {}) {
  RequestSpec spec;
  spec.command = command;
  spec.env = env;
  spec.dis = std::move(dis);
  spec.var = var;
  spec.val = val;
  spec.options_json = options_json;
  return RequestLine(spec);
}

JsonValue Parse(const std::string& line) {
  auto doc = ParseJson(line);
  EXPECT_TRUE(doc.ok()) << doc.error() << "\n" << line;
  return doc.ok() ? std::move(doc).value() : JsonValue{};
}

std::string Str(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.Find(key);
  return v != nullptr && v->is_string() ? v->string : std::string();
}

std::uint64_t Counter(const JsonValue& doc, const char* name) {
  const JsonValue* t = doc.Find("telemetry");
  if (t == nullptr) return ~std::uint64_t{0};
  const JsonValue* c = t->Find(name);
  return c != nullptr ? c->uinteger : ~std::uint64_t{0};
}

// Re-emits `doc` minus the members that legitimately differ between a
// miss and the hit that replays it (telemetry counters/timings and the
// cache marker itself).
std::string StripVolatile(const JsonValue& doc) {
  JsonValue copy = doc;
  std::vector<std::pair<std::string, JsonValue>> kept;
  for (auto& [key, value] : copy.members) {
    if (key == "telemetry" || key == "cache") continue;
    kept.emplace_back(key, std::move(value));
  }
  copy.members = std::move(kept);
  JsonWriter w;
  WriteJsonValue(copy, &w);
  return w.TakeString();
}

std::string Reemit(const JsonValue* v) {
  if (v == nullptr) return "<absent>";
  JsonWriter w;
  WriteJsonValue(*v, &w);
  return w.TakeString();
}

TEST(ServeTest, MissThenHit) {
  serve::ServeSession session(Opts(1));
  RequestSpec spec;
  spec.env = kMpWriter;
  spec.dis = {kMpReader};
  const std::string line = RequestLine(spec);

  const JsonValue first = Parse(session.HandleLine(line));
  EXPECT_EQ(Str(first, "command"), "verify");
  EXPECT_EQ(Str(first, "verdict"), "safe");
  EXPECT_EQ(Str(first, "cache"), "miss");
  EXPECT_EQ(Counter(first, "cache.hit"), 0u);
  EXPECT_EQ(Counter(first, "cache.misses"), 1u);
  EXPECT_EQ(Str(first, "fingerprint").size(), 32u);

  const JsonValue second = Parse(session.HandleLine(line));
  EXPECT_EQ(Str(second, "cache"), "hit");
  EXPECT_EQ(Counter(second, "cache.hit"), 1u);
  EXPECT_EQ(Counter(second, "cache.hits"), 1u);
  EXPECT_EQ(Str(second, "fingerprint"), Str(first, "fingerprint"));
  EXPECT_EQ(StripVolatile(second), StripVolatile(first));

  const serve::CacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ServeTest, MgRequest) {
  serve::ServeSession session(Opts(1));
  RequestSpec spec;
  spec.command = "mg";
  spec.env = kMpWriter;
  spec.var = "x";
  spec.val = 1;
  const JsonValue doc = Parse(session.HandleLine(RequestLine(spec)));
  EXPECT_EQ(Str(doc, "command"), "mg");
  EXPECT_EQ(Str(doc, "verdict"), "unsafe");
  // Same request again: mg verdicts memoize like verify verdicts.
  const JsonValue again = Parse(session.HandleLine(RequestLine(spec)));
  EXPECT_EQ(Str(again, "cache"), "hit");
  EXPECT_EQ(StripVolatile(again), StripVolatile(doc));
}

TEST(ServeTest, ErrorEnvelopes) {
  serve::ServeSession session(Opts(1));
  const struct {
    std::string line;
    const char* expect;
  } cases[] = {
      {"this is not json", "invalid request JSON"},
      {"{\"command\":\"launch\"}", "unknown command"},
      {"{\"command\":\"verify\"}", "missing env program"},
      {"{\"id\":7,\"command\":\"verify\",\"env\":\"nonsense !\"}", "env:"},
      {MakeLine("mg", kMpWriter, {}, "zz", 1), "unknown variable"},
      {MakeLine("verify", kMpWriter, {}, "", -1,
                "{\"backend\":\"quantum\"}"),
       "unknown backend"},
      {MakeLine("verify", kMpWriter, {}, "", -1,
                "{\"threads\":\"many\"}"),
       "must be an integer"},
      // 2^33: survives int64 parsing but not the narrowing to int — must
      // be a decode error, never a silently wrapped knob.
      {MakeLine("verify", kMpWriter, {}, "", -1,
                "{\"env_threads\":8589934592}"),
       "out of range"},
      {MakeLine("verify", kMpWriter, {}, "", -1,
                "{\"tmai_max_iterations\":-8589934592}"),
       "out of range"},
  };
  for (const auto& c : cases) {
    const JsonValue doc = Parse(session.HandleLine(c.line));
    EXPECT_EQ(Str(doc, "command"), "error") << c.line;
    const JsonValue* exit_code = doc.Find("exit_code");
    ASSERT_NE(exit_code, nullptr) << c.line;
    EXPECT_EQ(exit_code->integer, 3) << c.line;
    EXPECT_NE(Str(doc, "error").find(c.expect), std::string::npos)
        << c.line << " -> " << Str(doc, "error");
  }
  // The id echo survives decoding failures that happen after "id".
  const JsonValue with_id =
      Parse(session.HandleLine("{\"id\":7,\"command\":\"launch\"}"));
  ASSERT_NE(with_id.Find("id"), nullptr);
  EXPECT_EQ(with_id.Find("id")->integer, 7);
  // Errors never touch the cache.
  EXPECT_EQ(session.cache_stats().misses, 0u);
}

TEST(ServeTest, FingerprintSensitivity) {
  serve::ServeSession session(Opts(1));
  RequestSpec spec;
  spec.env = kMpWriter;
  spec.dis = {kMpReader};
  spec.options_json = "{\"backend\":\"datalog\"}";
  const JsonValue datalog = Parse(session.HandleLine(RequestLine(spec)));

  // A different backend is a different verification: new fingerprint,
  // cache miss.
  spec.options_json = "{\"backend\":\"simplified\"}";
  const JsonValue simplified = Parse(session.HandleLine(RequestLine(spec)));
  EXPECT_NE(Str(simplified, "fingerprint"), Str(datalog, "fingerprint"));
  EXPECT_EQ(Str(simplified, "cache"), "miss");

  // datalog.threads is a scheduling knob, not an input: by the
  // determinism rule the verdict cannot depend on it, so it must not
  // fragment the cache.
  spec.options_json = "{\"backend\":\"datalog\",\"threads\":4}";
  const JsonValue threaded = Parse(session.HandleLine(RequestLine(spec)));
  EXPECT_EQ(Str(threaded, "fingerprint"), Str(datalog, "fingerprint"));
  EXPECT_EQ(Str(threaded, "cache"), "hit");
  EXPECT_EQ(StripVolatile(threaded), StripVolatile(datalog));

  // engine_storage and delta_solve are verdict-invariant evaluation
  // strategies like threads: same fingerprint, replayed from the cache.
  spec.options_json =
      "{\"backend\":\"datalog\",\"engine_storage\":\"columnar\","
      "\"delta_solve\":true}";
  const JsonValue columnar = Parse(session.HandleLine(RequestLine(spec)));
  EXPECT_EQ(Str(columnar, "fingerprint"), Str(datalog, "fingerprint"));
  EXPECT_EQ(Str(columnar, "cache"), "hit");
  EXPECT_EQ(StripVolatile(columnar), StripVolatile(datalog));

  // An unknown storage name is a request error, not a silent default.
  spec.options_json =
      "{\"backend\":\"datalog\",\"engine_storage\":\"rowwise\"}";
  const JsonValue bad = Parse(session.HandleLine(RequestLine(spec)));
  EXPECT_EQ(Str(bad, "command"), "error");
}

TEST(ServeTest, EvictionWithSingleEntryCache) {
  serve::ServeSession session(Opts(1, /*cache_entries=*/1));
  const std::string a = MakeLine("verify", kMpWriter, {kMpReader});
  const std::string b = MakeLine("mg", kMpWriter, {}, "x", 1);
  EXPECT_EQ(Str(Parse(session.HandleLine(a)), "cache"), "miss");
  EXPECT_EQ(Str(Parse(session.HandleLine(b)), "cache"), "miss");  // evicts a
  EXPECT_EQ(Str(Parse(session.HandleLine(a)), "cache"), "miss");  // evicts b
  const serve::CacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServeTest, CacheDisabled) {
  serve::ServeSession session(Opts(1, /*cache_entries=*/0));
  const std::string line = MakeLine("verify", kMpWriter);
  EXPECT_EQ(Str(Parse(session.HandleLine(line)), "cache"), "miss");
  EXPECT_EQ(Str(Parse(session.HandleLine(line)), "cache"), "miss");
  const serve::CacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ServeTest, NonDefinitiveVerdictsAreNotMemoized) {
  serve::ServeSession session(Opts(1));
  // One state is not enough to exhaust the safe MP pair: the verdict
  // degrades to unknown, which is wall-clock state, not a program fact.
  RequestSpec spec;
  spec.env = kMpWriter;
  spec.dis = {kMpReader};
  spec.options_json = "{\"max_states\":1}";
  const std::string line = RequestLine(spec);
  const JsonValue first = Parse(session.HandleLine(line));
  ASSERT_EQ(Str(first, "verdict"), "unknown");
  EXPECT_EQ(Str(first, "cache"), "miss");
  const JsonValue second = Parse(session.HandleLine(line));
  EXPECT_EQ(Str(second, "cache"), "miss");
  EXPECT_EQ(session.cache_stats().entries, 0u);
}

TEST(ServeTest, CertificateReplaysByteIdentical) {
  serve::ServeSession session(Opts(1));
  RequestSpec spec;
  spec.env = kMpWriter;
  spec.dis = {kMpReader};
  spec.options_json = "{\"backend\":\"tmai\"}";
  const std::string line = RequestLine(spec);
  const JsonValue first = Parse(session.HandleLine(line));
  ASSERT_EQ(Str(first, "verdict"), "safe");
  ASSERT_NE(first.Find("certificate"), nullptr)
      << "TMAI safe verdicts carry a certificate";
  // The hit path re-validates the memoized certificate against the
  // freshly parsed system before replaying it.
  const JsonValue second = Parse(session.HandleLine(line));
  EXPECT_EQ(Str(second, "cache"), "hit");
  EXPECT_EQ(Reemit(second.Find("certificate")),
            Reemit(first.Find("certificate")));
}

// The tentpole differential: the whole standard benchmark catalog served
// twice. Every first-pass verdict must match a one-shot SafetyVerifier
// run bit-for-bit on verdict/witness/bound/certificate; every
// second-pass response must be a cache hit whose envelope is identical
// to the first modulo telemetry.
TEST(ServeTest, CatalogReplayDifferential) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  serve::ServeSession session(Opts(1));

  std::vector<std::string> lines;
  std::vector<std::string> first_pass;
  for (const BenchmarkCase& bench : suite) {
    RequestSpec spec;
    spec.env = bench.system.env_program().ToString();
    for (const Program& dis : bench.system.dis_programs()) {
      spec.dis.push_back(dis.ToString());
    }
    spec.options_json = "{\"time_budget_ms\":60000}";
    lines.push_back(RequestLine(spec));
  }

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const std::string response = session.HandleLine(lines[i]);
    const JsonValue doc = Parse(response);
    EXPECT_EQ(Str(doc, "cache"), "miss") << suite[i].name;
    ASSERT_NE(Str(doc, "verdict"), "unknown") << suite[i].name;

    // One-shot oracle: same options, fresh verifier.
    VerifierOptions opts;
    opts.time_budget_ms = 60'000;
    SafetyVerifier verifier(suite[i].system);
    const Verdict oracle = verifier.Run(std::nullopt, opts);
    EXPECT_EQ(Str(doc, "verdict"), VerdictName(oracle.result))
        << suite[i].name;
    const JsonValue* witness = doc.Find("witness");
    ASSERT_NE(witness, nullptr) << suite[i].name;
    if (oracle.witness.empty()) {
      EXPECT_TRUE(witness->is_null()) << suite[i].name;
    } else {
      EXPECT_EQ(witness->string, oracle.witness) << suite[i].name;
    }
    const JsonValue* bound = doc.Find("env_thread_bound");
    ASSERT_NE(bound, nullptr) << suite[i].name;
    if (oracle.env_thread_bound.has_value()) {
      EXPECT_EQ(bound->integer, *oracle.env_thread_bound) << suite[i].name;
    } else {
      EXPECT_TRUE(bound->is_null()) << suite[i].name;
    }
    EXPECT_EQ(doc.Find("certificate") != nullptr,
              oracle.certificate != nullptr)
        << suite[i].name;
    first_pass.push_back(response);
  }

  // Second pass: 100% hits, byte-identical envelopes modulo telemetry.
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const JsonValue replay = Parse(session.HandleLine(lines[i]));
    EXPECT_EQ(Str(replay, "cache"), "hit") << suite[i].name;
    EXPECT_EQ(StripVolatile(replay), StripVolatile(Parse(first_pass[i])))
        << suite[i].name;
  }
  const serve::CacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits, suite.size());
  EXPECT_EQ(stats.misses, suite.size());
}

// istream buffer that blocks in underflow until more input is pushed —
// models a synchronous client that waits for response N before sending
// line N+1 (a plain stringstream reports EOF instead of "not yet").
class BlockingInputBuf : public std::streambuf {
 public:
  void Push(const std::string& s) {
    std::lock_guard<std::mutex> lock(m_);
    data_ += s;
    cv_.notify_all();
  }
  void Close() {
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    cv_.notify_all();
  }

 protected:
  int_type underflow() override {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return pos_ < data_.size() || closed_; });
    if (pos_ >= data_.size()) return traits_type::eof();
    buf_ = data_[pos_++];
    setg(&buf_, &buf_, &buf_ + 1);
    return traits_type::to_int_type(buf_);
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::string data_;
  std::size_t pos_ = 0;
  bool closed_ = false;
  char buf_ = 0;
};

// ostream buffer that records complete lines and wakes waiters, so the
// test can observe a response the moment the daemon writes it.
class LineCaptureBuf : public std::streambuf {
 public:
  bool WaitForLines(std::size_t n, std::chrono::seconds timeout) {
    std::unique_lock<std::mutex> lock(m_);
    return cv_.wait_for(lock, timeout, [&] { return lines_.size() >= n; });
  }
  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(m_);
    return lines_;
  }

 protected:
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return ch;
    std::lock_guard<std::mutex> lock(m_);
    const char c = traits_type::to_char_type(ch);
    if (c == '\n') {
      lines_.push_back(std::move(current_));
      current_.clear();
      cv_.notify_all();
    } else {
      current_ += c;
    }
    return ch;
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::string current_;
  std::vector<std::string> lines_;
};

// Regression: a synchronous request/response client must receive
// response N without sending request N+1 or closing the stream. The
// pooled path used to drain completed slots only after reading the next
// input line, deadlocking exactly this pattern.
TEST(ServeTest, PooledRunAnswersWithoutFurtherInput) {
  BlockingInputBuf in_buf;
  LineCaptureBuf out_buf;
  std::istream in(&in_buf);
  std::ostream out(&out_buf);
  serve::ServeSession session(Opts(4));
  std::thread runner([&] { session.Run(in, out); });

  in_buf.Push(MakeLine("verify", kMpWriter, {kMpReader}) + "\n");
  ASSERT_TRUE(out_buf.WaitForLines(1, std::chrono::seconds(120)))
      << "daemon did not answer until more input arrived";
  in_buf.Push(MakeLine("mg", kMpWriter, {}, "x", 1) + "\n");
  ASSERT_TRUE(out_buf.WaitForLines(2, std::chrono::seconds(120)));
  in_buf.Close();
  runner.join();

  const std::vector<std::string> lines = out_buf.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(Str(Parse(lines[0]), "verdict"), "safe");
  EXPECT_EQ(Str(Parse(lines[1]), "verdict"), "unsafe");
}

// Concurrent Run(): responses come back in request order, and identical
// concurrent requests coalesce through the single-flight cache — with 4
// copies of each of 3 programs in flight at once, exactly 3 run the
// pipeline and 9 hit.
TEST(ServeTest, ConcurrentRunOrdersResponsesAndCoalesces) {
  const std::string programs[] = {
      MakeLine("verify", kMpWriter, {kMpReader}),
      MakeLine("mg", kMpWriter, {}, "x", 1),
      MakeLine("mg", kMpWriter, {}, "y", 1),
  };
  std::ostringstream input;
  int id = 0;
  for (int round = 0; round < 4; ++round) {
    for (const std::string& p : programs) {
      // Same id for every copy of a program: ids are part of the
      // response, not the fingerprint, so twins still coalesce.
      std::string line = p;
      line.insert(1, "\"id\":" + std::to_string(id % 3) + ",");
      input << line << "\n";
      ++id;
    }
  }

  serve::ServeSession session(Opts(4));
  std::istringstream in(input.str());
  std::ostringstream out;
  session.Run(in, out);

  std::istringstream result(out.str());
  std::string line;
  int count = 0;
  while (std::getline(result, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in serve output";
    const JsonValue doc = Parse(line);
    ASSERT_NE(doc.Find("id"), nullptr);
    EXPECT_EQ(doc.Find("id")->integer, count % 3) << "response order";
    EXPECT_NE(Str(doc, "verdict"), "") << line;
    ++count;
  }
  EXPECT_EQ(count, 12);
  const serve::CacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 9u);
}

}  // namespace
}  // namespace rapar
