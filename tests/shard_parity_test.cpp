// Differential checks for multi-process guess-space sharding and
// checkpoint/resume (core/shard.h, DESIGN.md §14). The contract under
// test: stride sharding partitions the guess enumeration, so merging
// per-shard envelopes under first-terminating-event-wins must reproduce
// the single-process verdict, witness and guess accounting bit for bit —
// at every shard count × thread count combination — and a scan killed at
// a checkpoint must resume to the same verdict without rescanning the
// guesses it already solved.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/benchmarks.h"
#include "core/result_json.h"
#include "core/shard.h"
#include "core/verifier.h"
#include "encoding/datalog_verifier.h"
#include "encoding/dis_guess.h"
#include "lang/random_program.h"

namespace rapar {
namespace {

using Goal = std::optional<std::pair<VarId, Value>>;

VerifierOptions ShardOpts(unsigned threads, std::size_t shard_index,
                          std::size_t shard_count,
                          std::size_t max_guesses = 2'000) {
  VerifierOptions o;
  o.backend = Backend::kDatalog;
  o.datalog.threads = threads;
  o.datalog.batch_size = 8;
  o.datalog.shard_index = shard_index;
  o.datalog.shard_count = shard_count;
  o.max_guesses = max_guesses;
  return o;
}

std::string RenderEnvelope(const ParamSystem& sys, const Goal& goal,
                           const VerifierOptions& o) {
  SafetyVerifier verifier(sys);
  const Verdict v = verifier.Run(goal, o);
  return VerdictToJson(v, o, goal.has_value() ? "mg" : "verify",
                       sys.Signature());
}

const JsonValue* Field(const JsonValue& doc, const char* key) {
  static const JsonValue null_value;
  const JsonValue* v = doc.Find(key);
  EXPECT_NE(v, nullptr) << key;
  return v != nullptr ? v : &null_value;
}

// The single-process-comparable slice of an envelope: verdict, exit
// code, witness, guess accounting, width report, stopped phase. (The
// remaining telemetry sums *work performed*, which legitimately exceeds
// the single-process prefix — shards do not cancel each other.)
void ExpectMergedMatchesSingle(const std::string& single_env,
                               const std::vector<std::string>& shard_envs,
                               const std::string& label) {
  const Expected<MergedShardEnvelope> merged =
      MergeShardEnvelopes(shard_envs, /*pretty=*/true);
  ASSERT_TRUE(merged.ok()) << label << ": " << merged.error();

  Expected<JsonValue> s = ParseJson(single_env);
  Expected<JsonValue> m = ParseJson(merged.value().envelope_json);
  ASSERT_TRUE(s.ok()) << label << ": " << s.error();
  ASSERT_TRUE(m.ok()) << label << ": " << m.error();

  EXPECT_EQ(Field(s.value(), "verdict")->string,
            Field(m.value(), "verdict")->string)
      << label;
  EXPECT_EQ(Field(m.value(), "verdict")->string, merged.value().verdict)
      << label;
  EXPECT_EQ(Field(s.value(), "exit_code")->integer,
            Field(m.value(), "exit_code")->integer)
      << label;
  EXPECT_EQ(Field(s.value(), "exit_code")->integer,
            merged.value().exit_code)
      << label;

  const JsonValue* sw = Field(s.value(), "witness");
  const JsonValue* mw = Field(m.value(), "witness");
  EXPECT_EQ(sw->is_null(), mw->is_null()) << label;
  if (!sw->is_null() && !mw->is_null()) {
    EXPECT_EQ(sw->string, mw->string) << label;
  }

  const JsonValue* st = Field(s.value(), "telemetry");
  const JsonValue* mt = Field(m.value(), "telemetry");
  const JsonValue* sg = st->Find("verify.guesses");
  const JsonValue* mg = mt->Find("verify.guesses");
  ASSERT_NE(sg, nullptr) << label;
  ASSERT_NE(mg, nullptr) << label;
  EXPECT_EQ(sg->uinteger, mg->uinteger) << label;

  // width_report renders from the first solve of the run; guess 0 lives
  // in shard 0's residue class, so the merged report (= shard 0's) must
  // equal the single-process one.
  const JsonValue* swr = s.value().Find("width_report");
  const JsonValue* mwr = m.value().Find("width_report");
  ASSERT_EQ(swr == nullptr, mwr == nullptr) << label;
  if (swr != nullptr) {
    EXPECT_EQ(swr->string, mwr->string) << label;
  }

  // The merged envelope advertises the orchestrator shard section.
  const JsonValue* shard = Field(m.value(), "shard");
  ASSERT_TRUE(shard->is_object()) << label;
  EXPECT_EQ(Field(*shard, "count")->uinteger, shard_envs.size()) << label;
  const JsonValue* per = Field(*shard, "per_shard");
  ASSERT_TRUE(per->is_array()) << label;
  EXPECT_EQ(per->items.size(), shard_envs.size()) << label;
  // The single-process envelope must NOT have one (activity gating).
  EXPECT_EQ(s.value().Find("shard"), nullptr) << label;
}

void CheckSystem(const ParamSystem& sys, const Goal& goal,
                 const std::vector<std::size_t>& shard_counts,
                 const std::vector<unsigned>& thread_counts,
                 const std::string& label, std::size_t max_guesses = 2'000) {
  const std::string single =
      RenderEnvelope(sys, goal, ShardOpts(/*threads=*/1, 0, 1, max_guesses));
  for (const std::size_t shards : shard_counts) {
    for (const unsigned threads : thread_counts) {
      std::vector<std::string> envs;
      for (std::size_t i = 0; i < shards; ++i) {
        envs.push_back(RenderEnvelope(
            sys, goal, ShardOpts(threads, i, shards, max_guesses)));
      }
      ExpectMergedMatchesSingle(
          single, envs,
          label + " shards=" + std::to_string(shards) + " threads=" +
              std::to_string(threads));
    }
  }
}

TEST(ShardParityTest, CatalogMergedIdenticalAcrossShardAndThreadCounts) {
  for (BenchmarkCase& bench : StandardBenchmarks()) {
    CheckSystem(bench.system, std::nullopt, {2, 4}, {1u, 2u}, bench.name);
  }
}

TEST(ShardParityTest, RandomSystemsMergedIdenticalAcrossTwoHundredSeeds) {
  // Same corpus recipe as parallel_differential_test: even seeds ask an
  // MG question (mostly early-exit unsafe), odd seeds the assert-false
  // query (mostly safe full scans), so both merge rules — winner-takes
  // and sum-of-exhaustive-shards — are exercised hundreds of times.
  int unsafe_seen = 0;
  int safe_seen = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    RandomProgramOptions env_opts;
    env_opts.num_vars = 2;
    env_opts.num_regs = 2;
    env_opts.dom = 3;
    env_opts.size = 5;
    env_opts.allow_cas = false;
    env_opts.allow_loops = false;
    RandomProgramOptions dis_opts = env_opts;
    dis_opts.size = 4;

    Program env = RandomProgram(rng, env_opts, "env");
    Program dis = RandomProgram(rng, dis_opts, "dis");
    Expected<ParamSystem> sys = ParamSystem::Builder()
                                    .Env(std::move(env))
                                    .Dis(std::move(dis))
                                    .Build();
    ASSERT_TRUE(sys.ok()) << "seed " << seed << ": "
                          << (sys.ok() ? "" : sys.error());
    Goal goal;
    if (seed % 2 == 0) {
      const VarId v0 = sys.value().vars().Find("v0");
      ASSERT_TRUE(v0.valid()) << "seed " << seed;
      goal = {v0, static_cast<Value>((seed / 2) % 3)};
    }
    // Shard-count sweep at one thread; the thread axis is covered on the
    // catalog above and at shards=2 here to bound the corpus runtime.
    const std::string label = "seed " + std::to_string(seed);
    CheckSystem(sys.value(), goal, {2, 4}, {1u}, label, /*max_guesses=*/500);
    CheckSystem(sys.value(), goal, {2}, {2u}, label, /*max_guesses=*/500);

    const std::string single =
        RenderEnvelope(sys.value(), goal, ShardOpts(1, 0, 1, 500));
    Expected<JsonValue> doc = ParseJson(single);
    ASSERT_TRUE(doc.ok());
    const std::string verdict = doc.value().Find("verdict")->string;
    unsafe_seen += verdict == "unsafe";
    safe_seen += verdict == "safe";
  }
  // The corpus must exercise both merge rules: winner-takes (unsafe early
  // exits) and sum-of-exhaustive-shards (safe full scans).
  EXPECT_GT(unsafe_seen, 20);
  EXPECT_GT(safe_seen, 50);
}

TEST(ShardParityTest, ShardsPartitionTheEnumeration) {
  // The residue classes of the stride filter are a partition: the union
  // of per-shard index streams is exactly the full stream, disjointly.
  BenchmarkCase bench = PetersonRa();
  const SimplSystem& sys = bench.system.simpl();
  GuessEnumOptions opts;

  const auto stream = [&sys](const GuessEnumOptions& o) {
    DisGuessCursor cursor(sys, o, /*buffer_capacity=*/64);
    std::vector<IndexedGuess> all;
    std::vector<IndexedGuess> chunk;
    while (cursor.NextChunk(16, &chunk) != 0) {
      for (IndexedGuess& g : chunk) all.push_back(std::move(g));
      chunk.clear();
    }
    return all;
  };

  const std::vector<IndexedGuess> full = stream(opts);
  ASSERT_GT(full.size(), 20u);
  for (const std::size_t shards : {2u, 3u, 4u}) {
    std::vector<bool> seen(full.size(), false);
    for (std::size_t i = 0; i < shards; ++i) {
      GuessEnumOptions so = opts;
      so.shard_index = i;
      so.shard_count = shards;
      for (const IndexedGuess& g : stream(so)) {
        ASSERT_LT(g.index, full.size());
        ASSERT_EQ(g.index % shards, i);
        ASSERT_FALSE(seen[g.index]) << "duplicate index " << g.index;
        seen[g.index] = true;
        EXPECT_EQ(g.guess.ToString(sys), full[g.index].guess.ToString(sys));
      }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_TRUE(seen[i]) << "index " << i << " missing at " << shards;
    }
  }
}

TEST(ShardParityTest, ResumeCursorYieldsExactlyTheRemainingSequence) {
  BenchmarkCase bench = PetersonRa();
  const SimplSystem& sys = bench.system.simpl();
  GuessEnumOptions opts;
  DisGuessCursor full_cursor(sys, opts, /*buffer_capacity=*/64);
  std::vector<IndexedGuess> full;
  std::vector<IndexedGuess> chunk;
  while (full_cursor.NextChunk(16, &chunk) != 0) {
    for (IndexedGuess& g : chunk) full.push_back(std::move(g));
    chunk.clear();
  }

  for (const std::size_t start : {std::size_t{5}, std::size_t{17}}) {
    GuessEnumOptions ro = opts;
    ro.start_index = start;
    DisGuessCursor cursor(sys, ro, /*buffer_capacity=*/64);
    std::vector<IndexedGuess> tail;
    chunk.clear();
    while (cursor.NextChunk(16, &chunk) != 0) {
      for (IndexedGuess& g : chunk) tail.push_back(std::move(g));
      chunk.clear();
    }
    ASSERT_EQ(tail.size(), full.size() - start) << start;
    for (std::size_t i = 0; i < tail.size(); ++i) {
      EXPECT_EQ(tail[i].index, full[start + i].index) << start;
      EXPECT_EQ(tail[i].guess.ToString(sys),
                full[start + i].guess.ToString(sys))
          << start;
    }
  }
}

TEST(ShardParityTest, CheckpointJsonRoundTrip) {
  CursorCheckpoint cp;
  cp.shard_index = 2;
  cp.shard_count = 4;
  cp.next_index = 37;
  cp.scanned = 9;
  cp.exhausted = false;
  const std::string json = cp.ToJson();
  const Expected<CursorCheckpoint> back = CursorCheckpoint::FromJson(json);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().shard_index, cp.shard_index);
  EXPECT_EQ(back.value().shard_count, cp.shard_count);
  EXPECT_EQ(back.value().next_index, cp.next_index);
  EXPECT_EQ(back.value().scanned, cp.scanned);
  EXPECT_EQ(back.value().exhausted, cp.exhausted);
  // Re-serialization is bit-stable.
  EXPECT_EQ(back.value().ToJson(), json);
}

TEST(ShardParityTest, CorruptedCheckpointsRejected) {
  EXPECT_FALSE(CursorCheckpoint::FromJson("not json").ok());
  EXPECT_FALSE(CursorCheckpoint::FromJson("{}").ok());
  EXPECT_FALSE(CursorCheckpoint::FromJson("[1,2,3]").ok());
  // Version mismatch is an error, never a zeroed checkpoint.
  EXPECT_FALSE(
      CursorCheckpoint::FromJson(
          R"({"schema_version":99,"kind":"rapar-cursor-checkpoint",)"
          R"("shard_index":0,"shard_count":1,"next_index":0,)"
          R"("scanned":0,"exhausted":false})")
          .ok());
  // Wrong document kind.
  EXPECT_FALSE(
      CursorCheckpoint::FromJson(
          R"({"schema_version":1,"kind":"something-else",)"
          R"("shard_index":0,"shard_count":1,"next_index":0,)"
          R"("scanned":0,"exhausted":false})")
          .ok());
  // shard_index out of range.
  EXPECT_FALSE(
      CursorCheckpoint::FromJson(
          R"({"schema_version":1,"kind":"rapar-cursor-checkpoint",)"
          R"("shard_index":3,"shard_count":2,"next_index":0,)"
          R"("scanned":0,"exhausted":false})")
          .ok());
}

TEST(ShardParityTest, CheckpointFileRoundTripAndRejection) {
  const std::string path = testing::TempDir() + "/rapar_cp_test.json";
  CursorCheckpoint cp;
  cp.shard_index = 1;
  cp.shard_count = 2;
  cp.next_index = 11;
  cp.scanned = 5;
  const Expected<bool> saved = SaveCheckpointFile(path, cp);
  ASSERT_TRUE(saved.ok()) << saved.error();
  const Expected<CursorCheckpoint> loaded = LoadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().next_index, 11u);
  EXPECT_EQ(loaded.value().scanned, 5u);

  EXPECT_FALSE(LoadCheckpointFile(path + ".does-not-exist").ok());
}

TEST(ShardParityTest, ScanLimitCheckpointResumesToSameVerdictWithoutRescan) {
  // dekker-cas: safe-exhaustive over 384 guesses. Truncate the scan after
  // 10 solves (the deterministic stand-in for a kill), capture the
  // checkpoint, resume from it, and demand (a) the same verdict and
  // guess count as the uninterrupted run and (b) an exact work split —
  // queries evaluated before + after == uninterrupted total, i.e. no
  // guess was solved twice.
  BenchmarkCase bench = DekkerCas();
  DatalogVerifierOptions base;
  base.guess.max_guesses = 2'000;
  base.threads = 1;

  const DatalogVerdict full = DatalogVerify(bench.system.simpl(), base);
  ASSERT_FALSE(full.unsafe);
  ASSERT_TRUE(full.exhaustive);
  ASSERT_EQ(full.guesses, 384u);

  DatalogVerifierOptions first = base;
  first.scan_limit = 10;
  std::optional<CursorCheckpoint> cp;
  std::size_t writes = 0;
  first.checkpoint_sink = [&](const CursorCheckpoint& c) {
    cp = c;
    ++writes;
  };
  const DatalogVerdict v1 = DatalogVerify(bench.system.simpl(), first);
  EXPECT_TRUE(v1.scan_limit_hit);
  EXPECT_FALSE(v1.exhaustive);
  EXPECT_EQ(v1.guesses, 10u);
  EXPECT_EQ(v1.checkpoint_writes, writes);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->next_index, 10u);
  EXPECT_EQ(cp->scanned, 10u);
  EXPECT_FALSE(cp->exhausted);

  DatalogVerifierOptions second = base;
  second.guess.start_index = cp->next_index;
  second.resume_scanned_base = cp->scanned;
  const DatalogVerdict v2 = DatalogVerify(bench.system.simpl(), second);
  EXPECT_EQ(v2.unsafe, full.unsafe);
  EXPECT_EQ(v2.exhaustive, full.exhaustive);
  EXPECT_EQ(v2.guesses, full.guesses);
  EXPECT_EQ(v2.resume_offset, 10u);
  EXPECT_EQ(v1.queries_evaluated + v2.queries_evaluated,
            full.queries_evaluated)
      << "resume rescanned already-solved guesses";
}

TEST(ShardParityTest, ParallelScanLimitResumesToSameVerdict) {
  // Same kill-and-resume contract under the parallel dispatcher: the
  // checkpoint frontier is conservative (contiguous completed batches),
  // so the resumed run may redo a ragged tail but must land on the same
  // verdict and guess count.
  BenchmarkCase bench = DekkerCas();
  DatalogVerifierOptions base;
  base.guess.max_guesses = 2'000;
  base.threads = 1;
  const DatalogVerdict full = DatalogVerify(bench.system.simpl(), base);

  DatalogVerifierOptions first = base;
  first.threads = 2;
  first.batch_size = 4;
  first.scan_limit = 12;
  std::optional<CursorCheckpoint> cp;
  first.checkpoint_sink = [&](const CursorCheckpoint& c) { cp = c; };
  const DatalogVerdict v1 = DatalogVerify(bench.system.simpl(), first);
  EXPECT_TRUE(v1.scan_limit_hit);
  ASSERT_TRUE(cp.has_value());
  EXPECT_FALSE(cp->exhausted);
  EXPECT_LE(cp->next_index, 12u);
  EXPECT_EQ(cp->next_index, cp->scanned);  // single shard: frontier == count

  DatalogVerifierOptions second = base;
  second.threads = 2;
  second.batch_size = 4;
  second.guess.start_index = cp->next_index;
  second.resume_scanned_base = cp->scanned;
  const DatalogVerdict v2 = DatalogVerify(bench.system.simpl(), second);
  EXPECT_EQ(v2.unsafe, full.unsafe);
  EXPECT_EQ(v2.exhaustive, full.exhaustive);
  EXPECT_EQ(v2.guesses, full.guesses);
}

TEST(ShardParityTest, MergeRejectsMalformedInputs) {
  EXPECT_FALSE(MergeShardEnvelopes({}, false).ok());
  EXPECT_FALSE(MergeShardEnvelopes({"not json"}, false).ok());

  // A default (unsharded) envelope has no "shard" section and must be
  // rejected as not-a-shard-envelope, not silently merged.
  BenchmarkCase bench = ProducerConsumer(1);
  const std::string plain =
      RenderEnvelope(bench.system, std::nullopt, ShardOpts(1, 0, 1));
  const Expected<MergedShardEnvelope> r1 = MergeShardEnvelopes({plain}, false);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.error().find("shard"), std::string::npos) << r1.error();

  // Duplicate shard indices (two copies of shard 0 of 2).
  const std::string shard0 =
      RenderEnvelope(bench.system, std::nullopt, ShardOpts(1, 0, 2));
  EXPECT_FALSE(MergeShardEnvelopes({shard0, shard0}, false).ok());

  // Wrong envelope count for the advertised shard count.
  EXPECT_FALSE(MergeShardEnvelopes({shard0}, false).ok());
}

TEST(ShardParityTest, RunShardProcessesCapturesOutputAndExitCodes) {
  const Expected<std::vector<ShardProcessResult>> r = RunShardProcesses(
      {{"/bin/sh", "-c", "echo hello"}, {"/bin/sh", "-c", "exit 7"}});
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].exit_code, 0);
  EXPECT_EQ(r.value()[0].stdout_text, "hello\n");
  EXPECT_EQ(r.value()[1].exit_code, 7);
  // An unexecutable child surfaces as exit 127 (the exec-failure
  // convention), not a runner error.
  const Expected<std::vector<ShardProcessResult>> bad =
      RunShardProcesses({{"/no/such/binary"}});
  ASSERT_TRUE(bad.ok()) << bad.error();
  EXPECT_EQ(bad.value()[0].exit_code, 127);
}

}  // namespace
}  // namespace rapar
