// Source positions (1-based line/column) attached by the parser to
// statements and carried through CFA construction, so analysis diagnostics
// and parse errors render against the same coordinates.
#ifndef RAPAR_LANG_SOURCE_LOC_H_
#define RAPAR_LANG_SOURCE_LOC_H_

namespace rapar {

struct SrcLoc {
  int line = 0;  // 1-based; 0 = unknown (programs built via the C++ DSL)
  int col = 0;   // 1-based

  bool valid() const { return line > 0; }

  friend bool operator==(const SrcLoc& a, const SrcLoc& b) {
    return a.line == b.line && a.col == b.col;
  }
  friend bool operator<(const SrcLoc& a, const SrcLoc& b) {
    return a.line != b.line ? a.line < b.line : a.col < b.col;
  }
};

}  // namespace rapar

#endif  // RAPAR_LANG_SOURCE_LOC_H_
