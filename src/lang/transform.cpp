#include "lang/transform.h"

#include <cassert>

namespace rapar {

StmtPtr RemapVars(const StmtPtr& stmt, const std::vector<VarId>& mapping) {
  assert(stmt != nullptr);
  auto remap = [&](VarId v) {
    assert(v.index() < mapping.size());
    return mapping[v.index()];
  };
  // Rebuilt nodes keep their source positions so diagnostics on unified
  // system programs still point into the original text.
  switch (stmt->kind()) {
    case StmtKind::kLoad:
      return WithLoc(SLoad(stmt->reg(), remap(stmt->var())), stmt->loc());
    case StmtKind::kStore:
      return WithLoc(SStore(remap(stmt->var()), stmt->reg()), stmt->loc());
    case StmtKind::kCas:
      return WithLoc(SCas(remap(stmt->var()), stmt->reg(), stmt->reg2()),
                     stmt->loc());
    case StmtKind::kSeq:
      return WithLoc(SSeq(RemapVars(stmt->children()[0], mapping),
                          RemapVars(stmt->children()[1], mapping)),
                     stmt->loc());
    case StmtKind::kChoice:
      return WithLoc(SChoice(RemapVars(stmt->children()[0], mapping),
                             RemapVars(stmt->children()[1], mapping)),
                     stmt->loc());
    case StmtKind::kStar:
      return WithLoc(SStar(RemapVars(stmt->children()[0], mapping)),
                     stmt->loc());
    default:
      return stmt;
  }
}

namespace {

StmtPtr ReplaceAsserts(const StmtPtr& stmt, VarId goal_var, RegId goal_reg,
                       Value goal_value, bool& found) {
  switch (stmt->kind()) {
    case StmtKind::kAssertFail:
      found = true;
      return SSeq(SAssign(goal_reg, EConst(goal_value)),
                  SStore(goal_var, goal_reg));
    case StmtKind::kSeq:
      return SSeq(ReplaceAsserts(stmt->children()[0], goal_var, goal_reg,
                                 goal_value, found),
                  ReplaceAsserts(stmt->children()[1], goal_var, goal_reg,
                                 goal_value, found));
    case StmtKind::kChoice:
      return SChoice(ReplaceAsserts(stmt->children()[0], goal_var, goal_reg,
                                    goal_value, found),
                     ReplaceAsserts(stmt->children()[1], goal_var, goal_reg,
                                    goal_value, found));
    case StmtKind::kStar:
      return SStar(ReplaceAsserts(stmt->children()[0], goal_var, goal_reg,
                                  goal_value, found));
    default:
      return stmt;
  }
}

}  // namespace

bool ContainsAssert(const StmtPtr& stmt) {
  bool found = false;
  VisitStmts(stmt, [&](const Stmt& s) {
    if (s.kind() == StmtKind::kAssertFail) found = true;
  });
  return found;
}

GoalRewrite RewriteAssertToGoalStore(const Program& program, VarId goal_var,
                                     Value goal_value) {
  assert(goal_var.index() < program.vars().size());
  assert(goal_value >= 0 && goal_value < program.dom());
  GoalRewrite result;
  if (!ContainsAssert(program.body())) {
    result.program = program;
    result.had_assert = false;
    return result;
  }
  RegTable regs = program.regs();
  RegId goal_reg = regs.Add("__goal");
  bool found = false;
  StmtPtr body = ReplaceAsserts(program.body(), goal_var, goal_reg,
                                goal_value, found);
  result.program = Program(program.name(), program.vars(), std::move(regs),
                           program.dom(), std::move(body));
  result.had_assert = found;
  return result;
}

}  // namespace rapar
