#include "lang/cfa.h"

#include <cassert>

#include "common/strings.h"

namespace rapar {

std::string Instr::ToString(const VarTable& vars, const RegTable& regs) const {
  switch (kind) {
    case Kind::kNop:
      return "nop";
    case Kind::kAssume:
      return StrCat("assume ", expr->ToString(regs));
    case Kind::kAssign:
      return StrCat(regs.Name(reg), " := ", expr->ToString(regs));
    case Kind::kLoad:
      return StrCat(regs.Name(reg), " := ", vars.Name(var));
    case Kind::kStore:
      return StrCat(vars.Name(var), " := ", regs.Name(reg));
    case Kind::kCas:
      return StrCat("cas(", vars.Name(var), ", ", regs.Name(reg), ", ",
                    regs.Name(reg2), ")");
    case Kind::kAssertFail:
      return "assert false";
  }
  return "?";
}

Cfa Cfa::Build(const Program& program) {
  Cfa cfa(program);
  NodeId entry = cfa.NewNode();
  NodeId exit = cfa.NewNode();
  cfa.Compile(cfa.program_.body(), entry, exit);
  return cfa;
}

Cfa Cfa::FromParts(Program program, std::size_t num_nodes,
                   std::vector<CfaEdge> edges) {
  Cfa cfa(std::move(program));
  cfa.num_nodes_ = num_nodes;
  cfa.out_edges_.resize(num_nodes);
  for (CfaEdge& e : edges) {
    assert(e.from.index() < num_nodes && e.to.index() < num_nodes);
    EdgeId id(static_cast<std::uint32_t>(cfa.edges_.size()));
    cfa.out_edges_[e.from.index()].push_back(id);
    cfa.edges_.push_back(std::move(e));
  }
  return cfa;
}

NodeId Cfa::NewNode() {
  NodeId id(static_cast<std::uint32_t>(num_nodes_++));
  out_edges_.emplace_back();
  return id;
}

void Cfa::AddEdge(NodeId from, NodeId to, Instr instr) {
  EdgeId id(static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(CfaEdge{from, to, std::move(instr)});
  out_edges_[from.index()].push_back(id);
}

void Cfa::Compile(const StmtPtr& stmt, NodeId from, NodeId to) {
  assert(stmt != nullptr);
  const SrcLoc loc = stmt->loc();
  auto instr_at = [loc](Instr::Kind kind) {
    Instr instr(kind);
    instr.loc = loc;
    return instr;
  };
  switch (stmt->kind()) {
    case StmtKind::kSkip:
      AddEdge(from, to, instr_at(Instr::Kind::kNop));
      return;
    case StmtKind::kAssume: {
      Instr instr = instr_at(Instr::Kind::kAssume);
      instr.expr = stmt->expr();
      AddEdge(from, to, std::move(instr));
      return;
    }
    case StmtKind::kAssertFail:
      AddEdge(from, to, instr_at(Instr::Kind::kAssertFail));
      return;
    case StmtKind::kAssign: {
      Instr instr = instr_at(Instr::Kind::kAssign);
      instr.expr = stmt->expr();
      instr.reg = stmt->reg();
      AddEdge(from, to, std::move(instr));
      return;
    }
    case StmtKind::kSeq: {
      NodeId mid = NewNode();
      Compile(stmt->children()[0], from, mid);
      Compile(stmt->children()[1], mid, to);
      return;
    }
    case StmtKind::kChoice:
      Compile(stmt->children()[0], from, to);
      Compile(stmt->children()[1], from, to);
      return;
    case StmtKind::kStar: {
      // Fresh head node so the loop does not capture unrelated edges at
      // `from`.
      NodeId head = NewNode();
      AddEdge(from, head, instr_at(Instr::Kind::kNop));
      Compile(stmt->children()[0], head, head);
      AddEdge(head, to, instr_at(Instr::Kind::kNop));
      return;
    }
    case StmtKind::kLoad: {
      Instr instr = instr_at(Instr::Kind::kLoad);
      instr.var = stmt->var();
      instr.reg = stmt->reg();
      AddEdge(from, to, std::move(instr));
      return;
    }
    case StmtKind::kStore: {
      Instr instr = instr_at(Instr::Kind::kStore);
      instr.var = stmt->var();
      instr.reg = stmt->reg();
      AddEdge(from, to, std::move(instr));
      return;
    }
    case StmtKind::kCas: {
      Instr instr = instr_at(Instr::Kind::kCas);
      instr.var = stmt->var();
      instr.reg = stmt->reg();
      instr.reg2 = stmt->reg2();
      AddEdge(from, to, std::move(instr));
      return;
    }
  }
  assert(false && "unreachable");
}

bool Cfa::IsAcyclic() const {
  // Iterative three-colour DFS over nodes.
  enum : char { kWhite, kGrey, kBlack };
  std::vector<char> colour(num_nodes_, kWhite);
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (std::size_t start = 0; start < num_nodes_; ++start) {
    if (colour[start] != kWhite) continue;
    stack.emplace_back(NodeId(static_cast<std::uint32_t>(start)), 0);
    colour[start] = kGrey;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& out = out_edges_[node.index()];
      if (next == out.size()) {
        colour[node.index()] = kBlack;
        stack.pop_back();
        continue;
      }
      NodeId succ = edges_[out[next].index()].to;
      ++next;
      if (colour[succ.index()] == kGrey) return false;
      if (colour[succ.index()] == kWhite) {
        colour[succ.index()] = kGrey;
        stack.emplace_back(succ, 0);
      }
    }
  }
  return true;
}

bool Cfa::HasCas() const {
  for (const auto& e : edges_) {
    if (e.instr.kind == Instr::Kind::kCas) return true;
  }
  return false;
}

int Cfa::CountStoreInstructions() const {
  int count = 0;
  for (const auto& e : edges_) {
    if (e.instr.IsStoreLike()) ++count;
  }
  return count;
}

std::vector<NodeId> Cfa::TerminalNodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    if (out_edges_[i].empty()) out.push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::string Cfa::ToString() const {
  std::string out =
      StrCat("cfa ", program_.name(), " (", num_nodes_, " nodes, ",
             edges_.size(), " edges)\n");
  for (const auto& e : edges_) {
    out += StrCat("  n", e.from.value(), " -> n", e.to.value(), " : ",
                  e.instr.ToString(program_.vars(), program_.regs()), "\n");
  }
  return out;
}

}  // namespace rapar
