#include "lang/classify.h"

#include <vector>

#include "common/strings.h"
#include "lang/cfa.h"

namespace rapar {

std::string Classification::ToString() const {
  std::vector<std::string> tags;
  if (cas_free) tags.push_back("nocas");
  if (loop_free) tags.push_back("acyc");
  if (pure_ra) tags.push_back("pure-ra");
  return tags.empty() ? "(unrestricted)" : Join(tags, ",");
}

Classification Classify(const Program& program) {
  Classification c;
  c.cas_free = true;
  c.loop_free = true;
  VisitStmts(program.body(), [&](const Stmt& s) {
    if (s.kind() == StmtKind::kCas) c.cas_free = false;
    if (s.kind() == StmtKind::kStar) c.loop_free = false;
  });
  c.pure_ra = IsPureRA(program);
  return c;
}

bool IsPureRA(const Program& program) {
  const Cfa cfa = Cfa::Build(program);
  const std::size_t nregs = program.regs().size();
  std::vector<bool> is_load_target(nregs, false);
  std::vector<bool> is_store_source(nregs, false);
  std::vector<bool> assigned_non_one(nregs, false);
  std::vector<bool> assigned(nregs, false);

  for (const auto& e : cfa.edges()) {
    switch (e.instr.kind) {
      case Instr::Kind::kAssign: {
        if (e.instr.expr->op() != ExprOp::kConst) return false;
        assigned[e.instr.reg.index()] = true;
        if (e.instr.expr->constant() != 1) {
          assigned_non_one[e.instr.reg.index()] = true;
        }
        break;
      }
      case Instr::Kind::kLoad:
        is_load_target[e.instr.reg.index()] = true;
        break;
      case Instr::Kind::kStore:
        is_store_source[e.instr.reg.index()] = true;
        break;
      case Instr::Kind::kCas:
        return false;  // PureRA is in particular CAS-free
      default:
        break;
    }
  }

  for (std::size_t r = 0; r < nregs; ++r) {
    if (is_store_source[r]) {
      // Store sources must hold exactly the constant one.
      if (is_load_target[r] || assigned_non_one[r] || !assigned[r]) {
        return false;
      }
    }
  }

  // Every load must be followed only by equality guards on its target.
  for (const auto& e : cfa.edges()) {
    if (e.instr.kind != Instr::Kind::kLoad) continue;
    const RegId scratch = e.instr.reg;
    if (is_store_source[scratch.index()]) return false;
    for (EdgeId out_id : cfa.OutEdges(e.to)) {
      const Instr& next = cfa.Edge(out_id).instr;
      if (next.kind != Instr::Kind::kAssume) return false;
      const Expr& guard = *next.expr;
      const bool shape_ok =
          guard.op() == ExprOp::kEq && guard.children().size() == 2 &&
          guard.children()[0]->op() == ExprOp::kReg &&
          guard.children()[0]->reg() == scratch &&
          guard.children()[1]->op() == ExprOp::kConst;
      if (!shape_ok) return false;
    }
  }

  // Scratch registers must not feed general expressions: any expression in
  // an assume has already been shape-checked above only for loads; remaining
  // assumes may not read load targets.
  for (const auto& e : cfa.edges()) {
    if (e.instr.kind != Instr::Kind::kAssume) continue;
    std::vector<RegId> read;
    e.instr.expr->CollectRegs(read);
    for (RegId r : read) {
      if (!is_load_target[r.index()]) return false;  // only scratch checks
    }
  }
  return true;
}

}  // namespace rapar
