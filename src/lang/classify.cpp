#include "lang/classify.h"

#include <vector>

#include "common/strings.h"
#include "lang/cfa.h"

namespace rapar {

namespace {

// "at 9:7" when the location is known, "" otherwise.
std::string LocSuffix(SrcLoc loc) {
  return loc.valid() ? StrCat(" at ", loc.line, ":", loc.col) : std::string();
}

// Renders `instr` followed by its position, for explanation strings.
std::string InstrDetail(const Instr& instr, const Program& program) {
  return instr.ToString(program.vars(), program.regs()) +
         LocSuffix(instr.loc);
}

}  // namespace

std::string Classification::ToString() const {
  std::vector<std::string> tags;
  if (cas_free) tags.push_back("nocas");
  if (loop_free) tags.push_back("acyc");
  if (pure_ra) tags.push_back("pure-ra");
  return tags.empty() ? "(unrestricted)" : Join(tags, ",");
}

std::string Classification::TableClass(ThreadRole role) const {
  if (role == ThreadRole::kEnv) {
    // Table 1 keys env threads on CAS-freedom: env(nocas) is the decidable
    // side of Theorem 1.1, env with cas the undecidable one.
    std::string tags = cas_free ? "nocas" : "cas";
    if (loop_free) tags += ",acyc";
    return StrCat("env(", tags, ")");
  }
  return StrCat("dis(", loop_free ? "acyc" : "cyc", ")");
}

Classification Classify(const Program& program) {
  Classification c;
  c.cas_free = true;
  c.loop_free = true;
  VisitStmts(program.body(), [&](const Stmt& s) {
    if (s.kind() == StmtKind::kCas && c.cas_free) {
      c.cas_free = false;
      c.cas_loc = s.loc();
      c.cas_detail = StrCat("cas(", program.vars().Name(s.var()), ", ",
                            program.regs().Name(s.reg()), ", ",
                            program.regs().Name(s.reg2()), ")",
                            LocSuffix(s.loc()));
    }
    if (s.kind() == StmtKind::kStar && c.loop_free) {
      c.loop_free = false;
      c.loop_loc = s.loc();
      c.loop_detail = StrCat("loop", LocSuffix(s.loc()));
    }
  });
  c.pure_ra = IsPureRA(program, &c.pure_ra_detail);
  return c;
}

std::string SystemClassInfo::ToString() const {
  return StrCat(name, ": ", complexity);
}

SystemClassInfo ClassifySystem(const Classification& env,
                               const std::vector<Classification>& dis) {
  SystemClassInfo info;
  const bool have_dis = !dis.empty();
  bool dis_acyc = true;
  for (const Classification& d : dis) dis_acyc &= d.loop_free;

  if (!env.cas_free) {
    // Theorem 1.1: CAS in the env threads is the undecidability frontier —
    // even acyclic env programs then simulate counter machines.
    info.name = StrCat(have_dis ? "dis + " : "", env.TableClass(ThreadRole::kEnv));
    info.decidable = false;
    info.complexity = "undecidable (Theorem 1.1)";
    info.detail =
        "the env threads are not CAS-free: env(cas) systems simulate "
        "Minsky counter machines even when every env program is acyclic";
    return info;
  }
  if (!dis_acyc) {
    info.name = StrCat("dis(cyc) + ", env.TableClass(ThreadRole::kEnv));
    info.decidable = true;
    info.complexity =
        "outside the decision procedure until dis loops are unrolled "
        "(bounded regime, §4)";
    info.detail =
        "env threads are CAS-free but a dis program has loops; apply "
        "UnrollDis(k) to enter dis(acyc) + env(nocas)";
    return info;
  }
  info.name = have_dis
                  ? StrCat("dis(acyc) + ", env.TableClass(ThreadRole::kEnv))
                  : env.TableClass(ThreadRole::kEnv);
  info.decidable = true;
  info.complexity = "PSPACE-complete (Theorems 1.2, 5.1)";
  info.detail =
      "env threads are CAS-free and every dis program is acyclic; "
      "PSPACE-hardness holds already for PureRA programs (Theorem 5.1)";
  return info;
}

bool IsPureRA(const Program& program, std::string* reason) {
  const Cfa cfa = Cfa::Build(program);
  const std::size_t nregs = program.regs().size();
  std::vector<bool> is_load_target(nregs, false);
  std::vector<bool> is_store_source(nregs, false);
  std::vector<bool> assigned_non_one(nregs, false);
  std::vector<bool> assigned(nregs, false);
  auto fail = [&](std::string why) {
    if (reason != nullptr) *reason = std::move(why);
    return false;
  };

  for (const auto& e : cfa.edges()) {
    switch (e.instr.kind) {
      case Instr::Kind::kAssign: {
        if (e.instr.expr->op() != ExprOp::kConst) {
          return fail(StrCat("register assignment of a non-constant: ",
                             InstrDetail(e.instr, program)));
        }
        assigned[e.instr.reg.index()] = true;
        if (e.instr.expr->constant() != 1) {
          assigned_non_one[e.instr.reg.index()] = true;
        }
        break;
      }
      case Instr::Kind::kLoad:
        is_load_target[e.instr.reg.index()] = true;
        break;
      case Instr::Kind::kStore:
        is_store_source[e.instr.reg.index()] = true;
        break;
      case Instr::Kind::kCas:
        // PureRA is in particular CAS-free.
        return fail(StrCat("cas instruction: ", InstrDetail(e.instr, program)));
      default:
        break;
    }
  }

  for (const auto& e : cfa.edges()) {
    if (e.instr.kind != Instr::Kind::kStore) continue;
    const std::size_t r = e.instr.reg.index();
    // Store sources must hold exactly the constant one.
    if (is_load_target[r] || assigned_non_one[r] || !assigned[r]) {
      return fail(StrCat("store source register '",
                         program.regs().Name(e.instr.reg),
                         "' does not hold the constant one: ",
                         InstrDetail(e.instr, program)));
    }
  }

  // Every load must be followed only by equality guards on its target.
  for (const auto& e : cfa.edges()) {
    if (e.instr.kind != Instr::Kind::kLoad) continue;
    const RegId scratch = e.instr.reg;
    if (is_store_source[scratch.index()]) {
      return fail(StrCat("load target '", program.regs().Name(scratch),
                         "' is also a store source: ",
                         InstrDetail(e.instr, program)));
    }
    for (EdgeId out_id : cfa.OutEdges(e.to)) {
      const Instr& next = cfa.Edge(out_id).instr;
      if (next.kind != Instr::Kind::kAssume) {
        return fail(StrCat("load is not followed by a check-value guard: ",
                           InstrDetail(e.instr, program), " then ",
                           InstrDetail(next, program)));
      }
      const Expr& guard = *next.expr;
      const bool shape_ok =
          guard.op() == ExprOp::kEq && guard.children().size() == 2 &&
          guard.children()[0]->op() == ExprOp::kReg &&
          guard.children()[0]->reg() == scratch &&
          guard.children()[1]->op() == ExprOp::kConst;
      if (!shape_ok) {
        return fail(StrCat("guard after a load is not 'scratch == const': ",
                           InstrDetail(next, program)));
      }
    }
  }

  // Scratch registers must not feed general expressions: any expression in
  // an assume has already been shape-checked above only for loads; remaining
  // assumes may not read non-scratch registers.
  for (const auto& e : cfa.edges()) {
    if (e.instr.kind != Instr::Kind::kAssume) continue;
    std::vector<RegId> read;
    e.instr.expr->CollectRegs(read);
    for (RegId r : read) {
      if (!is_load_target[r.index()]) {
        return fail(StrCat("assume reads the general register '",
                           program.regs().Name(r),
                           "': ", InstrDetail(e.instr, program)));
      }
    }
  }
  if (reason != nullptr) reason->clear();
  return true;
}

}  // namespace rapar
