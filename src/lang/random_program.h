// Deterministic random Com program generation for property-based testing
// and workload generation.
#ifndef RAPAR_LANG_RANDOM_PROGRAM_H_
#define RAPAR_LANG_RANDOM_PROGRAM_H_

#include <string>

#include "common/rng.h"
#include "lang/program.h"

namespace rapar {

struct RandomProgramOptions {
  int num_vars = 2;
  int num_regs = 2;
  Value dom = 3;
  // Approximate number of leaf statements.
  int size = 8;
  // Maximum nesting depth of seq/choice/star.
  int max_depth = 4;
  bool allow_cas = false;
  bool allow_loops = false;
  // Probability (percent) that a generated assume guard is an equality on
  // a register (the rest are inequalities) — equalities produce blocking
  // behaviour more often.
  int eq_assume_percent = 70;
};

// Generates a program over variables v0..v{n-1} and registers r0..r{m-1}.
// Deterministic in (rng state, options).
Program RandomProgram(Rng& rng, const RandomProgramOptions& options,
                      const std::string& name = "rand");

}  // namespace rapar

#endif  // RAPAR_LANG_RANDOM_PROGRAM_H_
