// Program transformations shared by the verifiers.
#ifndef RAPAR_LANG_TRANSFORM_H_
#define RAPAR_LANG_TRANSFORM_H_

#include <vector>

#include "lang/program.h"

namespace rapar {

// Rewrites shared-variable ids throughout `stmt`: the variable with old id
// i becomes `mapping[i]`. Used when merging per-program variable tables
// into one system-wide table.
StmtPtr RemapVars(const StmtPtr& stmt, const std::vector<VarId>& mapping);

// The Message-Generation reduction of §4.1: replaces every `assert false`
// by `goal_var := goal_value` through a dedicated register. `goal_var` must
// already be present in the program's variable table; `goal_value` must be
// in the domain. Returns the rewritten program (a fresh register named
// `__goal` is appended if any assert is present).
struct GoalRewrite {
  Program program;
  bool had_assert = false;
};
GoalRewrite RewriteAssertToGoalStore(const Program& program, VarId goal_var,
                                     Value goal_value);

// True if the statement tree contains an `assert false`.
bool ContainsAssert(const StmtPtr& stmt);

}  // namespace rapar

#endif  // RAPAR_LANG_TRANSFORM_H_
