// Classification of programs into the paper's system classes (Table 1).
#ifndef RAPAR_LANG_CLASSIFY_H_
#define RAPAR_LANG_CLASSIFY_H_

#include <string>

#include "lang/program.h"

namespace rapar {

// Syntactic classification of a single thread program.
struct Classification {
  // `nocas`: the program contains no cas(...) instruction.
  bool cas_free = false;
  // `acyc`: the program contains no iteration `c*` (hence its CFA is
  // acyclic).
  bool loop_free = false;
  // PureRA (§5): no general register computation — registers follow the
  // conventions checked by IsPureRA below.
  bool pure_ra = false;

  std::string ToString() const;
};

Classification Classify(const Program& program);

// PureRA check. The paper's PureRA forbids registers and allows only
// (a) stores of the constant one and (b) load-and-check-value steps. Com
// has no register-free primitives, so we admit exactly this shape:
//   * every register assignment assigns a constant;
//   * every store source register is only ever assigned the constant 1 and
//     is never a load target;
//   * every load targets a scratch register that is used only in an
//     immediately following `assume (scratch == const)` guard.
// Programs produced by lowerbound/tqbf_reduction satisfy this by
// construction.
bool IsPureRA(const Program& program);

}  // namespace rapar

#endif  // RAPAR_LANG_CLASSIFY_H_
