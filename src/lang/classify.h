// Classification of programs into the paper's system classes (Table 1).
#ifndef RAPAR_LANG_CLASSIFY_H_
#define RAPAR_LANG_CLASSIFY_H_

#include <string>
#include <vector>

#include "lang/program.h"
#include "lang/source_loc.h"

namespace rapar {

// The role a program plays in a parameterized system: the env template
// (unboundedly many copies) or one distinguished thread.
enum class ThreadRole { kEnv, kDis };

// Syntactic classification of a single thread program. The *_detail
// strings explain a failed restriction (first violating instruction, with
// source position when available); they are empty when the restriction
// holds.
struct Classification {
  // `nocas`: the program contains no cas(...) instruction.
  bool cas_free = false;
  // `acyc`: the program contains no iteration `c*` (hence its CFA is
  // acyclic).
  bool loop_free = false;
  // PureRA (§5): no general register computation — registers follow the
  // conventions checked by IsPureRA below.
  bool pure_ra = false;

  std::string cas_detail;      // first cas(...), e.g. "cas(x, r0, r1) at 9:7"
  std::string loop_detail;     // first loop construct
  std::string pure_ra_detail;  // first PureRA-violating instruction

  // Source location of the first cas / loop (invalid when absent or when
  // the program was built without positions).
  SrcLoc cas_loc;
  SrcLoc loop_loc;

  // Tag list, e.g. "nocas,acyc,pure-ra" or "(unrestricted)".
  std::string ToString() const;

  // The paper's Table 1 name of the class this program occupies in the
  // given role. The env naming is keyed on CAS-freedom (the decidability
  // frontier of Theorem 1.1), the dis naming on acyclicity:
  //   env: "env(nocas)", "env(nocas,acyc)", "env(cas)", "env(cas,acyc)"
  //   dis: "dis(acyc)",  "dis(cyc)"
  std::string TableClass(ThreadRole role) const;
};

Classification Classify(const Program& program);

// Whole-system class: Table 1 row/column for env ‖ dis_1 ‖ … ‖ dis_n.
struct SystemClassInfo {
  std::string name;        // e.g. "dis(acyc) + env(nocas)"
  bool decidable = true;
  std::string complexity;  // e.g. "PSPACE-complete (Theorems 1.2, 5.1)"
  std::string detail;      // why — names the governing restriction

  // "dis(acyc) + env(nocas): PSPACE-complete (Theorems 1.2, 5.1)".
  std::string ToString() const;
};

SystemClassInfo ClassifySystem(const Classification& env,
                               const std::vector<Classification>& dis);

// PureRA check. The paper's PureRA forbids registers and allows only
// (a) stores of the constant one and (b) load-and-check-value steps. Com
// has no register-free primitives, so we admit exactly this shape:
//   * every register assignment assigns a constant;
//   * every store source register is only ever assigned the constant 1 and
//     is never a load target;
//   * every load targets a scratch register that is used only in an
//     immediately following `assume (scratch == const)` guard.
// Programs produced by lowerbound/tqbf_reduction satisfy this by
// construction. When the check fails and `reason` is non-null, it receives
// a description of the first violating instruction (with source position
// when available).
bool IsPureRA(const Program& program, std::string* reason = nullptr);

}  // namespace rapar

#endif  // RAPAR_LANG_CLASSIFY_H_
