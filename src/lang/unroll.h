// Bounded loop unrolling.
//
// Distinguished threads must be loop-free (`acyc`). Programs with loops are
// brought into the class by unrolling every `c*` up to a bound k — the
// under-approximate "bounded model checking" regime the paper points out
// this class captures (§4). Unrolling k times replaces c* by k sequential
// optional copies of c, i.e. it permits 0..k iterations.
#ifndef RAPAR_LANG_UNROLL_H_
#define RAPAR_LANG_UNROLL_H_

#include "lang/program.h"

namespace rapar {

// Returns `stmt` with every Star replaced by `k` optional unrolled copies
// of its (recursively unrolled) body. k == 0 turns loops into skip.
StmtPtr UnrollStars(const StmtPtr& stmt, int k);

// Program-level convenience wrapper.
Program UnrollProgram(const Program& program, int k);

}  // namespace rapar

#endif  // RAPAR_LANG_UNROLL_H_
