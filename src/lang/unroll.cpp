#include "lang/unroll.h"

#include <cassert>
#include <vector>

namespace rapar {

StmtPtr UnrollStars(const StmtPtr& stmt, int k) {
  assert(stmt != nullptr && k >= 0);
  switch (stmt->kind()) {
    case StmtKind::kSeq:
      return SSeq(UnrollStars(stmt->children()[0], k),
                  UnrollStars(stmt->children()[1], k));
    case StmtKind::kChoice:
      return SChoice(UnrollStars(stmt->children()[0], k),
                     UnrollStars(stmt->children()[1], k));
    case StmtKind::kStar: {
      StmtPtr body = UnrollStars(stmt->children()[0], k);
      // k optional copies: each copy may run or be skipped, allowing any
      // iteration count in [0, k].
      std::vector<StmtPtr> copies;
      copies.reserve(static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i) copies.push_back(SChoice(body, SSkip()));
      return SSeqN(std::move(copies));
    }
    default:
      return stmt;  // leaf statements are shared, not copied
  }
}

Program UnrollProgram(const Program& program, int k) {
  return program.WithBody(UnrollStars(program.body(), k));
}

}  // namespace rapar
