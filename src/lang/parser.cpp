#include "lang/parser.h"

#include <cctype>
#include <stdexcept>
#include <vector>

#include "common/strings.h"

namespace rapar {

namespace {

struct Token {
  enum class Kind { kIdent, kNumber, kSymbol, kEnd };
  Kind kind;
  std::string text;
  int line;
  int col;
};

// Thrown internally; converted to Expected::Error at the API boundary,
// where the carried position selects the caret snippet line.
struct ParseError : std::runtime_error {
  ParseError(const std::string& msg, int line, int col)
      : std::runtime_error(msg), line(line), col(col) {}
  int line;
  int col;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Tokenize(); }
  const std::vector<Token>& tokens() const { return tokens_; }

 private:
  void Tokenize() {
    std::size_t i = 0;
    int line = 1, col = 1;
    auto advance = [&](std::size_t n) {
      for (std::size_t k = 0; k < n; ++k) {
        if (text_[i + k] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      i += n;
    };
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance(1);
        continue;
      }
      if (c == '#' || (c == '/' && i + 1 < text_.size() && text_[i + 1] == '/')) {
        while (i < text_.size() && text_[i] != '\n') advance(1);
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        tokens_.push_back(
            {Token::Kind::kIdent, text_.substr(i, j - i), line, col});
        advance(j - i);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[j]))) {
          ++j;
        }
        tokens_.push_back(
            {Token::Kind::kNumber, text_.substr(i, j - i), line, col});
        advance(j - i);
        continue;
      }
      // Multi-char symbols first.
      static const char* kTwoChar[] = {":=", "==", "!=", "<=", ">=",
                                       "&&", "||"};
      bool matched = false;
      for (const char* sym : kTwoChar) {
        if (text_.compare(i, 2, sym) == 0) {
          tokens_.push_back({Token::Kind::kSymbol, sym, line, col});
          advance(2);
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string kOneChar = ";,(){}<>!+-*";
      if (kOneChar.find(c) != std::string::npos) {
        tokens_.push_back({Token::Kind::kSymbol, std::string(1, c), line, col});
        advance(1);
        continue;
      }
      throw ParseError(StrCat("unexpected character '", c, "' at line ", line,
                              ", column ", col),
                       line, col);
    }
    tokens_.push_back({Token::Kind::kEnd, "<eof>", line, col});
  }

  const std::string& text_;
  std::vector<Token> tokens_;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  Program Parse() {
    ExpectIdent("program");
    std::string name = TakeIdentText();
    ExpectIdent("vars");
    while (Peek().kind == Token::Kind::kIdent && Peek().text != "regs") {
      Declare(vars_, TakeIdentText());
    }
    ExpectIdent("regs");
    while (Peek().kind == Token::Kind::kIdent && Peek().text != "dom") {
      Declare(regs_, TakeIdentText());
    }
    ExpectIdent("dom");
    Value dom = TakeNumber();
    if (dom < 2) Fail("domain size must be at least 2");
    ExpectIdent("begin");
    StmtPtr body = ParseStmtSeq();
    ExpectIdent("end");
    if (Peek().kind != Token::Kind::kEnd) Fail("trailing input after 'end'");
    return Program(std::move(name), std::move(vars_), std::move(regs_), dom,
                   std::move(body));
  }

 private:
  // --- token helpers ---------------------------------------------------
  const Token& Peek(int ahead = 0) const {
    std::size_t i = pos_ + ahead;
    const auto& toks = lexer_.tokens();
    return i < toks.size() ? toks[i] : toks.back();
  }
  const Token& Take() { return lexer_.tokens()[pos_++]; }

  [[noreturn]] void Fail(const std::string& msg) const {
    FailAt(Peek(), msg);
  }

  [[noreturn]] static void FailAt(const Token& t, const std::string& msg) {
    throw ParseError(StrCat(msg, " (at line ", t.line, ", column ", t.col,
                            ", near '", t.text, "')"),
                     t.line, t.col);
  }

  bool AtIdent(const std::string& word) const {
    return Peek().kind == Token::Kind::kIdent && Peek().text == word;
  }
  bool AtSymbol(const std::string& sym) const {
    return Peek().kind == Token::Kind::kSymbol && Peek().text == sym;
  }
  void ExpectIdent(const std::string& word) {
    if (!AtIdent(word)) Fail(StrCat("expected '", word, "'"));
    Take();
  }
  void ExpectSymbol(const std::string& sym) {
    if (!AtSymbol(sym)) Fail(StrCat("expected '", sym, "'"));
    Take();
  }
  std::string TakeIdentText() {
    if (Peek().kind != Token::Kind::kIdent) Fail("expected identifier");
    return Take().text;
  }
  Value TakeNumber() {
    if (Peek().kind != Token::Kind::kNumber) Fail("expected number");
    return static_cast<Value>(std::stol(Take().text));
  }

  template <typename Table>
  void Declare(Table& table, const std::string& name) {
    if (vars_.Find(name).valid() || regs_.Find(name).valid()) {
      Fail(StrCat("duplicate declaration of '", name, "'"));
    }
    table.Add(name);
  }

  // Takes an identifier token and resolves it, reporting errors at the
  // identifier's own position.
  VarId TakeVar() {
    const Token t = TakeIdentToken();
    VarId v = vars_.Find(t.text);
    if (!v.valid()) {
      FailAt(t, StrCat("'", t.text, "' is not a declared variable"));
    }
    return v;
  }
  RegId TakeReg() {
    const Token t = TakeIdentToken();
    RegId r = regs_.Find(t.text);
    if (!r.valid()) {
      FailAt(t, StrCat("'", t.text, "' is not a declared register"));
    }
    return r;
  }
  Token TakeIdentToken() {
    if (Peek().kind != Token::Kind::kIdent) Fail("expected identifier");
    return Take();
  }

  // --- statements --------------------------------------------------------
  StmtPtr ParseStmtSeq() {
    std::vector<StmtPtr> stmts;
    stmts.push_back(ParseStmt());
    while (AtSymbol(";")) {
      Take();
      // Allow a trailing ';' before a closer.
      if (AtSymbol("}") || AtIdent("end")) break;
      stmts.push_back(ParseStmt());
    }
    return SSeqN(std::move(stmts));
  }

  StmtPtr ParseBlock() {
    ExpectSymbol("{");
    StmtPtr body = ParseStmtSeq();
    ExpectSymbol("}");
    return body;
  }

  // Parses one statement and stamps it with the position of its first
  // token (compound statements carry the position of the construct; their
  // children carry their own).
  StmtPtr ParseStmt() {
    const SrcLoc loc{Peek().line, Peek().col};
    return WithLoc(ParseStmtAt(), loc);
  }

  StmtPtr ParseStmtAt() {
    if (AtIdent("skip")) {
      Take();
      return SSkip();
    }
    if (AtIdent("assume")) {
      Take();
      ExpectSymbol("(");
      ExprPtr e = ParseExpr();
      ExpectSymbol(")");
      return SAssume(std::move(e));
    }
    if (AtIdent("assert")) {
      Take();
      ExpectIdent("false");
      return SAssertFail();
    }
    if (AtIdent("cas")) {
      Take();
      ExpectSymbol("(");
      VarId x = TakeVar();
      ExpectSymbol(",");
      RegId r1 = TakeReg();
      ExpectSymbol(",");
      RegId r2 = TakeReg();
      ExpectSymbol(")");
      return SCas(x, r1, r2);
    }
    if (AtIdent("choice")) {
      Take();
      std::vector<StmtPtr> branches;
      branches.push_back(ParseBlock());
      ExpectIdent("or");
      branches.push_back(ParseBlock());
      while (AtIdent("or")) {
        Take();
        branches.push_back(ParseBlock());
      }
      return SChoiceN(std::move(branches));
    }
    if (AtIdent("loop")) {
      Take();
      return SStar(ParseBlock());
    }
    if (AtIdent("if")) {
      Take();
      ExpectSymbol("(");
      ExprPtr e = ParseExpr();
      ExpectSymbol(")");
      StmtPtr then_branch = ParseBlock();
      StmtPtr else_branch = SSkip();
      if (AtIdent("else")) {
        Take();
        else_branch = ParseBlock();
      }
      return SIfElse(std::move(e), std::move(then_branch),
                     std::move(else_branch));
    }
    if (AtIdent("while")) {
      Take();
      ExpectSymbol("(");
      ExprPtr e = ParseExpr();
      ExpectSymbol(")");
      StmtPtr body = ParseBlock();
      return SWhile(std::move(e), std::move(body));
    }
    // Assignment / load / store.
    if (Peek().kind == Token::Kind::kIdent) {
      std::string lhs = TakeIdentText();
      ExpectSymbol(":=");
      VarId lvar = vars_.Find(lhs);
      RegId lreg = regs_.Find(lhs);
      if (lvar.valid()) {
        // store: VAR := REG
        RegId src = TakeReg();
        return SStore(lvar, src);
      }
      if (!lreg.valid()) Fail(StrCat("'", lhs, "' is not declared"));
      // load if rhs is a bare variable identifier
      if (Peek().kind == Token::Kind::kIdent &&
          vars_.Find(Peek().text).valid()) {
        VarId src = TakeVar();
        return SLoad(lreg, src);
      }
      ExprPtr e = ParseExpr();
      return SAssign(lreg, std::move(e));
    }
    Fail("expected a statement");
  }

  // --- expressions (precedence climbing) ----------------------------------
  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (AtSymbol("||")) {
      Take();
      lhs = EOr(std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseCmp();
    while (AtSymbol("&&")) {
      Take();
      lhs = EAnd(std::move(lhs), ParseCmp());
    }
    return lhs;
  }

  ExprPtr ParseCmp() {
    ExprPtr lhs = ParseAddSub();
    if (AtSymbol("==") || AtSymbol("!=") || AtSymbol("<") || AtSymbol("<=") ||
        AtSymbol(">") || AtSymbol(">=")) {
      std::string op = Take().text;
      ExprPtr rhs = ParseAddSub();
      if (op == "==") return EEq(std::move(lhs), std::move(rhs));
      if (op == "!=") return ENe(std::move(lhs), std::move(rhs));
      if (op == "<") return ELt(std::move(lhs), std::move(rhs));
      if (op == "<=") return ELe(std::move(lhs), std::move(rhs));
      if (op == ">") return ELt(std::move(rhs), std::move(lhs));
      return ELe(std::move(rhs), std::move(lhs));  // ">="
    }
    return lhs;
  }

  ExprPtr ParseAddSub() {
    ExprPtr lhs = ParseMul();
    while (AtSymbol("+") || AtSymbol("-")) {
      std::string op = Take().text;
      ExprPtr rhs = ParseMul();
      lhs = op == "+" ? EAdd(std::move(lhs), std::move(rhs))
                      : ESub(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParseMul() {
    ExprPtr lhs = ParseUnary();
    while (AtSymbol("*")) {
      Take();
      lhs = EMul(std::move(lhs), ParseUnary());
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (AtSymbol("!")) {
      Take();
      return ENot(ParseUnary());
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    if (Peek().kind == Token::Kind::kNumber) return EConst(TakeNumber());
    if (AtSymbol("(")) {
      Take();
      ExprPtr e = ParseExpr();
      ExpectSymbol(")");
      return e;
    }
    if (Peek().kind == Token::Kind::kIdent) {
      const Token t = TakeIdentToken();
      if (vars_.Find(t.text).valid()) {
        FailAt(t, StrCat("shared variable '", t.text,
                         "' cannot appear in an expression; load it into a "
                         "register first"));
      }
      RegId r = regs_.Find(t.text);
      if (!r.valid()) {
        FailAt(t, StrCat("'", t.text, "' is not a declared register"));
      }
      return EReg(r);
    }
    Fail("expected an expression");
  }

  Lexer lexer_;
  std::size_t pos_ = 0;
  VarTable vars_;
  RegTable regs_;
};

}  // namespace

Expected<Program> ParseProgram(const std::string& text) {
  try {
    Parser parser(text);
    return parser.Parse();
  } catch (const ParseError& e) {
    std::string msg = e.what();
    const std::string snippet = SourceCaret(text, e.line, e.col);
    if (!snippet.empty()) msg += "\n" + snippet;
    return Expected<Program>::Error(msg);
  }
}

}  // namespace rapar
