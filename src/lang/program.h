// A Com program together with its symbol tables and data domain.
#ifndef RAPAR_LANG_PROGRAM_H_
#define RAPAR_LANG_PROGRAM_H_

#include <memory>
#include <string>

#include "lang/ast.h"
#include "lang/symbols.h"
#include "lang/value.h"

namespace rapar {

// A single thread's program. Shared-variable ids are meaningful only
// relative to the enclosing system's variable table; by convention all
// programs of one system are built against the same VarTable (see
// core/param_system.h). Registers are thread-local.
class Program {
 public:
  Program() : dom_(2), body_(SSkip()) {}
  Program(std::string name, VarTable vars, RegTable regs, Value dom,
          StmtPtr body)
      : name_(std::move(name)),
        vars_(std::move(vars)),
        regs_(std::move(regs)),
        dom_(dom),
        body_(std::move(body)) {}

  const std::string& name() const { return name_; }
  const VarTable& vars() const { return vars_; }
  const RegTable& regs() const { return regs_; }
  // Domain size |Dom|; values range over [0, dom).
  Value dom() const { return dom_; }
  const StmtPtr& body() const { return body_; }

  // Returns a copy of this program with a different body (symbol tables and
  // domain preserved).
  Program WithBody(StmtPtr body) const {
    return Program(name_, vars_, regs_, dom_, std::move(body));
  }

  // Renders the program in the textual format accepted by ParseProgram.
  std::string ToString() const;

 private:
  std::string name_;
  VarTable vars_;
  RegTable regs_;
  Value dom_;
  StmtPtr body_;
};

}  // namespace rapar

#endif  // RAPAR_LANG_PROGRAM_H_
