#include "lang/expr.h"

#include <cassert>

#include "common/strings.h"

namespace rapar {

namespace {

Value Mod(long long v, Value dom) {
  assert(dom > 0);
  long long m = v % dom;
  if (m < 0) m += dom;
  return static_cast<Value>(m);
}

ExprPtr MakeBinary(ExprOp op, ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(a));
  ch.push_back(std::move(b));
  return std::make_shared<Expr>(op, 0, RegId::Invalid(), std::move(ch));
}

}  // namespace

Value Expr::Eval(std::span<const Value> rv, Value dom) const {
  switch (op_) {
    case ExprOp::kConst:
      return Mod(constant_, dom);
    case ExprOp::kReg:
      assert(reg_.index() < rv.size());
      return rv[reg_.index()];
    case ExprOp::kAdd:
      return Mod(static_cast<long long>(children_[0]->Eval(rv, dom)) +
                     children_[1]->Eval(rv, dom),
                 dom);
    case ExprOp::kSub:
      return Mod(static_cast<long long>(children_[0]->Eval(rv, dom)) -
                     children_[1]->Eval(rv, dom),
                 dom);
    case ExprOp::kMul:
      return Mod(static_cast<long long>(children_[0]->Eval(rv, dom)) *
                     children_[1]->Eval(rv, dom),
                 dom);
    case ExprOp::kEq:
      return children_[0]->Eval(rv, dom) == children_[1]->Eval(rv, dom) ? 1
                                                                        : 0;
    case ExprOp::kNe:
      return children_[0]->Eval(rv, dom) != children_[1]->Eval(rv, dom) ? 1
                                                                        : 0;
    case ExprOp::kLt:
      return children_[0]->Eval(rv, dom) < children_[1]->Eval(rv, dom) ? 1 : 0;
    case ExprOp::kLe:
      return children_[0]->Eval(rv, dom) <= children_[1]->Eval(rv, dom) ? 1
                                                                        : 0;
    case ExprOp::kAnd:
      return (children_[0]->Eval(rv, dom) != 0 &&
              children_[1]->Eval(rv, dom) != 0)
                 ? 1
                 : 0;
    case ExprOp::kOr:
      return (children_[0]->Eval(rv, dom) != 0 ||
              children_[1]->Eval(rv, dom) != 0)
                 ? 1
                 : 0;
    case ExprOp::kNot:
      return children_[0]->Eval(rv, dom) == 0 ? 1 : 0;
  }
  assert(false && "unreachable");
  return 0;
}

void Expr::CollectRegs(std::vector<RegId>& out) const {
  if (op_ == ExprOp::kReg) out.push_back(reg_);
  for (const auto& c : children_) c->CollectRegs(out);
}

std::string Expr::ToString(const RegTable& regs) const {
  auto bin = [&](const char* sym) {
    return StrCat("(", children_[0]->ToString(regs), " ", sym, " ",
                  children_[1]->ToString(regs), ")");
  };
  switch (op_) {
    case ExprOp::kConst:
      return StrCat(constant_);
    case ExprOp::kReg:
      return regs.Name(reg_);
    case ExprOp::kAdd:
      return bin("+");
    case ExprOp::kSub:
      return bin("-");
    case ExprOp::kMul:
      return bin("*");
    case ExprOp::kEq:
      return bin("==");
    case ExprOp::kNe:
      return bin("!=");
    case ExprOp::kLt:
      return bin("<");
    case ExprOp::kLe:
      return bin("<=");
    case ExprOp::kAnd:
      return bin("&&");
    case ExprOp::kOr:
      return bin("||");
    case ExprOp::kNot:
      return StrCat("!", children_[0]->ToString(regs));
  }
  return "?";
}

bool Expr::Equals(const Expr& other) const {
  if (op_ != other.op_) return false;
  if (op_ == ExprOp::kConst) return constant_ == other.constant_;
  if (op_ == ExprOp::kReg) return reg_ == other.reg_;
  if (children_.size() != other.children_.size()) return false;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

ExprPtr EConst(Value v) {
  return std::make_shared<Expr>(ExprOp::kConst, v, RegId::Invalid(),
                                std::vector<ExprPtr>{});
}

ExprPtr EReg(RegId r) {
  return std::make_shared<Expr>(ExprOp::kReg, 0, r, std::vector<ExprPtr>{});
}

ExprPtr EAdd(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprOp::kAdd, std::move(a), std::move(b));
}
ExprPtr ESub(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprOp::kSub, std::move(a), std::move(b));
}
ExprPtr EMul(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprOp::kMul, std::move(a), std::move(b));
}
ExprPtr EEq(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprOp::kEq, std::move(a), std::move(b));
}
ExprPtr ENe(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprOp::kNe, std::move(a), std::move(b));
}
ExprPtr ELt(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprOp::kLt, std::move(a), std::move(b));
}
ExprPtr ELe(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprOp::kLe, std::move(a), std::move(b));
}
ExprPtr EAnd(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprOp::kAnd, std::move(a), std::move(b));
}
ExprPtr EOr(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprOp::kOr, std::move(a), std::move(b));
}

ExprPtr ENot(ExprPtr a) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(a));
  return std::make_shared<Expr>(ExprOp::kNot, 0, RegId::Invalid(),
                                std::move(ch));
}

ExprPtr ERegEq(RegId r, Value v) { return EEq(EReg(r), EConst(v)); }

}  // namespace rapar
