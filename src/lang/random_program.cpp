#include "lang/random_program.h"

#include <cassert>
#include <vector>

#include "common/strings.h"

namespace rapar {

namespace {

class Generator {
 public:
  Generator(Rng& rng, const RandomProgramOptions& opts)
      : rng_(rng), opts_(opts) {
    for (int i = 0; i < opts.num_vars; ++i) vars_.Add(StrCat("v", i));
    for (int i = 0; i < opts.num_regs; ++i) regs_.Add(StrCat("r", i));
  }

  Program Build(const std::string& name) {
    StmtPtr body = GenSeq(opts_.size, opts_.max_depth);
    return Program(name, vars_, regs_, opts_.dom, body);
  }

 private:
  VarId RandVar() {
    return VarId(static_cast<std::uint32_t>(rng_.Below(vars_.size())));
  }
  RegId RandReg() {
    return RegId(static_cast<std::uint32_t>(rng_.Below(regs_.size())));
  }
  Value RandVal() { return static_cast<Value>(rng_.Below(opts_.dom)); }

  StmtPtr GenLeaf() {
    // Weighted instruction mix; memory operations dominate so that the
    // generated programs actually communicate.
    int w = rng_.IntIn(0, 99);
    if (w < 30) return SLoad(RandReg(), RandVar());
    if (w < 55) return SStore(RandVar(), RandReg());
    if (w < 75) {
      // Register computation: constant or increment.
      RegId r = RandReg();
      if (rng_.Chance(1, 2)) return SAssign(r, EConst(RandVal()));
      return SAssign(r, EAdd(EReg(RandReg()), EConst(1)));
    }
    if (w < 90) {
      RegId r = RandReg();
      if (rng_.IntIn(0, 99) < opts_.eq_assume_percent) {
        return SAssume(ERegEq(r, RandVal()));
      }
      return SAssume(ENe(EReg(r), EConst(RandVal())));
    }
    if (opts_.allow_cas && w < 96) {
      return SCas(RandVar(), RandReg(), RandReg());
    }
    return SSkip();
  }

  StmtPtr GenStmt(int budget, int depth) {
    if (budget <= 1 || depth <= 0) return GenLeaf();
    int w = rng_.IntIn(0, 99);
    if (w < 55) {  // sequence
      int left = rng_.IntIn(1, budget - 1);
      return SSeq(GenStmt(left, depth - 1),
                  GenStmt(budget - left, depth - 1));
    }
    if (w < 80) {  // choice
      int left = rng_.IntIn(1, budget - 1);
      return SChoice(GenStmt(left, depth - 1),
                     GenStmt(budget - left, depth - 1));
    }
    if (opts_.allow_loops && w < 90) {
      return SStar(GenStmt(budget - 1, depth - 1));
    }
    return GenLeaf();
  }

  StmtPtr GenSeq(int budget, int depth) {
    std::vector<StmtPtr> stmts;
    while (budget > 0) {
      int chunk = rng_.IntIn(1, budget);
      stmts.push_back(GenStmt(chunk, depth));
      budget -= chunk;
    }
    return SSeqN(std::move(stmts));
  }

  Rng& rng_;
  const RandomProgramOptions& opts_;
  VarTable vars_;
  RegTable regs_;
};

}  // namespace

Program RandomProgram(Rng& rng, const RandomProgramOptions& options,
                      const std::string& name) {
  assert(options.num_vars > 0 && options.num_regs > 0 && options.dom >= 2);
  Generator gen(rng, options);
  return gen.Build(name);
}

}  // namespace rapar
