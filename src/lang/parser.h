// Textual front-end for Com programs.
//
// Grammar (comments start with '//' or '#' and run to end of line):
//
//   program  := "program" IDENT
//               "vars" IDENT*
//               "regs" IDENT*
//               "dom"  NUMBER
//               "begin" stmtseq "end"
//   stmtseq  := stmt (";" stmt)* [";"]
//   stmt     := "skip"
//             | "assume" "(" expr ")"
//             | "assert" "false"
//             | "cas" "(" VAR "," REG "," REG ")"
//             | "choice" block "or" block ("or" block)*
//             | "loop" block                      // c*
//             | "if" "(" expr ")" block ["else" block]
//             | "while" "(" expr ")" block
//             | REG ":=" expr                    // register assignment
//             | REG ":=" VAR                     // load
//             | VAR ":=" REG                     // store
//   block    := "{" stmtseq "}"
//   expr     := prec-climbing over || , && , (== != < <= > >=) , (+ -) , * ,
//               unary ! ; primaries: NUMBER, REG, "(" expr ")"
//
// Identifiers must be declared in the vars/regs lists; an identifier may
// not be both a var and a reg. `a > b` parses as `b < a`, `a >= b` as
// `b <= a`.
#ifndef RAPAR_LANG_PARSER_H_
#define RAPAR_LANG_PARSER_H_

#include <string>

#include "common/expected.h"
#include "lang/program.h"

namespace rapar {

// Parses a complete program. On error, the message contains the 1-based
// line and column of the offending token plus the offending source line
// with a caret (the same rendering analysis diagnostics use). Parsed
// statements carry their source positions (Stmt::loc).
Expected<Program> ParseProgram(const std::string& text);

}  // namespace rapar

#endif  // RAPAR_LANG_PARSER_H_
