// Data domain values.
//
// The paper works with a finite data domain Dom. We represent values as
// non-negative ints in [0, dom_size); programs declare dom_size and all
// arithmetic is reduced modulo it. Booleans are encoded as 0 / 1.
#ifndef RAPAR_LANG_VALUE_H_
#define RAPAR_LANG_VALUE_H_

#include <cstdint>

namespace rapar {

using Value = std::int32_t;

// The value every register and shared variable holds initially (d_init).
inline constexpr Value kInitValue = 0;

}  // namespace rapar

#endif  // RAPAR_LANG_VALUE_H_
