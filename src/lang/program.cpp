#include "lang/program.h"

#include "common/strings.h"

namespace rapar {

std::string Program::ToString() const {
  std::string out = StrCat("program ", name_.empty() ? "p" : name_, "\n");
  out += "vars";
  for (const auto& v : vars_.names()) out += StrCat(" ", v);
  out += "\nregs";
  for (const auto& r : regs_.names()) out += StrCat(" ", r);
  out += StrCat("\ndom ", dom_, "\nbegin\n");
  out += body_->ToString(vars_, regs_, 1);
  out += "\nend\n";
  return out;
}

}  // namespace rapar
