// Symbol tables for shared variables and registers.
#ifndef RAPAR_LANG_SYMBOLS_H_
#define RAPAR_LANG_SYMBOLS_H_

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace rapar {

// A dense table of named symbols of one kind (variables or registers).
// Symbols are identified by insertion order.
template <typename IdT>
class SymbolTable {
 public:
  // Adds `name` if not present; returns its id.
  IdT Add(const std::string& name) {
    auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    IdT id(static_cast<std::uint32_t>(names_.size()));
    names_.push_back(name);
    by_name_.emplace(name, id);
    return id;
  }

  // Returns the id of `name`, or an invalid id if absent.
  IdT Find(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? IdT::Invalid() : it->second;
  }

  const std::string& Name(IdT id) const {
    assert(id.valid() && id.index() < names_.size());
    return names_[id.index()];
  }

  std::size_t size() const { return names_.size(); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, IdT> by_name_;
};

using VarTable = SymbolTable<VarId>;
using RegTable = SymbolTable<RegId>;

}  // namespace rapar

#endif  // RAPAR_LANG_SYMBOLS_H_
