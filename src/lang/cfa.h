// Control-flow automata (CFA) for Com programs.
//
// Both semantics execute programs in CFA form: nodes are control locations
// (the "program counter" representation of Com mentioned in §2), edges carry
// one instruction each. Compilation is purely structural; `c*` becomes a
// loop through a fresh head node, `⊕` a fork.
#ifndef RAPAR_LANG_CFA_H_
#define RAPAR_LANG_CFA_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "lang/program.h"

namespace rapar {

// One instruction labelling a CFA edge.
struct Instr {
  enum class Kind {
    kNop,         // structural edge (from skip / sequencing)
    kAssume,      // guard: expr must evaluate to non-zero
    kAssign,      // reg := expr
    kLoad,        // reg := var
    kStore,       // var := reg
    kCas,         // cas(var, reg, reg2)
    kAssertFail,  // reaching (i.e. traversing) this edge is a violation
  };

  Instr() = default;
  explicit Instr(Kind k) : kind(k) {}

  Kind kind = Kind::kNop;
  ExprPtr expr;                  // kAssume / kAssign
  VarId var = VarId::Invalid();  // kLoad / kStore / kCas
  RegId reg = RegId::Invalid();  // kAssign/kLoad target; kStore source;
                                 // kCas expected-value register
  RegId reg2 = RegId::Invalid();  // kCas desired-value register
  SrcLoc loc;                     // source position of the originating Stmt

  // True if the instruction interacts with shared memory.
  bool IsMemoryAccess() const {
    return kind == Kind::kLoad || kind == Kind::kStore || kind == Kind::kCas;
  }
  // True if executing the instruction adds a message to memory.
  bool IsStoreLike() const {
    return kind == Kind::kStore || kind == Kind::kCas;
  }

  std::string ToString(const VarTable& vars, const RegTable& regs) const;
};

struct CfaEdge {
  NodeId from;
  NodeId to;
  Instr instr;
};

// A compiled program. Node 0 is always the entry node.
class Cfa {
 public:
  // Compiles `program` into a CFA. Never fails: every Com statement has a
  // direct translation.
  static Cfa Build(const Program& program);

  // Builds a CFA from an explicit node count and edge list (used by
  // analysis/prepass.h to construct pruned variants of a compiled CFA).
  // Node ids must be < num_nodes; node 0 remains the entry.
  static Cfa FromParts(Program program, std::size_t num_nodes,
                       std::vector<CfaEdge> edges);

  const Program& program() const { return program_; }
  NodeId entry() const { return NodeId(0); }
  std::size_t num_nodes() const { return num_nodes_; }
  const std::vector<CfaEdge>& edges() const { return edges_; }

  // Edge ids leaving `node`.
  const std::vector<EdgeId>& OutEdges(NodeId node) const {
    return out_edges_[node.index()];
  }
  const CfaEdge& Edge(EdgeId e) const { return edges_[e.index()]; }

  // --- analyses ---------------------------------------------------------

  // True if no cycle is reachable from the entry (the `acyc` restriction).
  bool IsAcyclic() const;
  // True if the program contains a CAS edge (negation of `nocas`).
  bool HasCas() const;
  // Number of store edges + CAS edges. For acyclic programs this bounds the
  // number of store events any single execution performs (each edge is
  // traversed at most once on a path), which drives the timestamp budget T
  // of §4.1.
  int CountStoreInstructions() const;
  // Nodes with no outgoing edges (program termination points).
  std::vector<NodeId> TerminalNodes() const;

  // Multi-line dump for debugging and goldens.
  std::string ToString() const;

 private:
  explicit Cfa(Program program) : program_(std::move(program)) {}

  NodeId NewNode();
  void AddEdge(NodeId from, NodeId to, Instr instr);
  // Compiles `stmt` between the given nodes.
  void Compile(const StmtPtr& stmt, NodeId from, NodeId to);

  Program program_;
  std::size_t num_nodes_ = 0;
  std::vector<CfaEdge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
};

}  // namespace rapar

#endif  // RAPAR_LANG_CFA_H_
