// Expressions over thread-local registers.
//
// The paper leaves the expression language open, requiring only an
// interpretation [[e]] : Dom^n -> Dom. We provide constants, register
// reads, modular arithmetic, comparisons and boolean connectives — enough
// to express every benchmark and the reductions, while keeping evaluation
// total over the finite domain.
#ifndef RAPAR_LANG_EXPR_H_
#define RAPAR_LANG_EXPR_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "lang/symbols.h"
#include "lang/value.h"

namespace rapar {

enum class ExprOp {
  kConst,  // literal value
  kReg,    // register read
  kAdd,    // (a + b) mod dom
  kSub,    // (a - b) mod dom
  kMul,    // (a * b) mod dom
  kEq,     // a == b ? 1 : 0
  kNe,     // a != b ? 1 : 0
  kLt,     // a <  b ? 1 : 0
  kLe,     // a <= b ? 1 : 0
  kAnd,    // (a != 0 && b != 0) ? 1 : 0
  kOr,     // (a != 0 || b != 0) ? 1 : 0
  kNot,    // a == 0 ? 1 : 0
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// Immutable expression tree node. Construct via the factory functions
// below; sharing subtrees is fine (the tree is never mutated).
class Expr {
 public:
  Expr(ExprOp op, Value constant, RegId reg, std::vector<ExprPtr> children)
      : op_(op),
        constant_(constant),
        reg_(reg),
        children_(std::move(children)) {}

  ExprOp op() const { return op_; }
  Value constant() const { return constant_; }
  RegId reg() const { return reg_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  // Evaluates under register valuation `rv` (indexed by RegId) with the
  // given domain size; arithmetic results are reduced into [0, dom).
  Value Eval(std::span<const Value> rv, Value dom) const;

  // Collects the registers read by this expression into `out` (may contain
  // duplicates).
  void CollectRegs(std::vector<RegId>& out) const;

  // Renders the expression using names from `regs`.
  std::string ToString(const RegTable& regs) const;

  // Structural equality.
  bool Equals(const Expr& other) const;

 private:
  ExprOp op_;
  Value constant_;  // meaningful for kConst
  RegId reg_;       // meaningful for kReg
  std::vector<ExprPtr> children_;
};

// --- Factories -------------------------------------------------------------

ExprPtr EConst(Value v);
ExprPtr EReg(RegId r);
ExprPtr EAdd(ExprPtr a, ExprPtr b);
ExprPtr ESub(ExprPtr a, ExprPtr b);
ExprPtr EMul(ExprPtr a, ExprPtr b);
ExprPtr EEq(ExprPtr a, ExprPtr b);
ExprPtr ENe(ExprPtr a, ExprPtr b);
ExprPtr ELt(ExprPtr a, ExprPtr b);
ExprPtr ELe(ExprPtr a, ExprPtr b);
ExprPtr EAnd(ExprPtr a, ExprPtr b);
ExprPtr EOr(ExprPtr a, ExprPtr b);
ExprPtr ENot(ExprPtr a);

// Convenience: reg == const.
ExprPtr ERegEq(RegId r, Value v);

}  // namespace rapar

#endif  // RAPAR_LANG_EXPR_H_
