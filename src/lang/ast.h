// Abstract syntax for the Com while-language (paper §1):
//
//   c ::= skip | assume e(r̄) | assert false | r := e(r̄)
//       | c ; c | c ⊕ c | c* | r := x | x := r | cas(x, r1, r2)
//
// `if` / `while` are provided as derived forms by the parser / builder.
#ifndef RAPAR_LANG_AST_H_
#define RAPAR_LANG_AST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "lang/expr.h"
#include "lang/source_loc.h"
#include "lang/symbols.h"

namespace rapar {

enum class StmtKind {
  kSkip,        // skip
  kAssume,      // assume e
  kAssertFail,  // assert false
  kAssign,      // r := e
  kSeq,         // c1 ; c2
  kChoice,      // c1 ⊕ c2
  kStar,        // c*
  kLoad,        // r := x
  kStore,       // x := r
  kCas,         // cas(x, r1, r2)
};

class Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

// Immutable statement tree node. Construct via the S* factories.
class Stmt {
 public:
  Stmt(StmtKind kind, ExprPtr expr, VarId var, RegId reg, RegId reg2,
       std::vector<StmtPtr> children, SrcLoc loc = {})
      : kind_(kind),
        expr_(std::move(expr)),
        var_(var),
        reg_(reg),
        reg2_(reg2),
        children_(std::move(children)),
        loc_(loc) {}

  StmtKind kind() const { return kind_; }
  // kAssume/kAssign: the expression.
  const ExprPtr& expr() const { return expr_; }
  // kLoad/kStore/kCas: the shared variable.
  VarId var() const { return var_; }
  // kAssign/kLoad: target register. kStore: source register.
  // kCas: expected-value register (r1).
  RegId reg() const { return reg_; }
  // kCas: new-value register (r2).
  RegId reg2() const { return reg2_; }
  // kSeq/kChoice: two children; kStar: one child.
  const std::vector<StmtPtr>& children() const { return children_; }
  // Source position of the statement's first token; invalid for programs
  // assembled via the S* factories.
  SrcLoc loc() const { return loc_; }

  // Renders the statement as parseable program text (see parser.h for the
  // grammar). `indent` is the current indentation depth.
  std::string ToString(const VarTable& vars, const RegTable& regs,
                       int indent = 0) const;

 private:
  StmtKind kind_;
  ExprPtr expr_;
  VarId var_;
  RegId reg_;
  RegId reg2_;
  std::vector<StmtPtr> children_;
  SrcLoc loc_;
};

// --- Factories -------------------------------------------------------------

StmtPtr SSkip();
StmtPtr SAssume(ExprPtr e);
StmtPtr SAssertFail();
StmtPtr SAssign(RegId r, ExprPtr e);
StmtPtr SSeq(StmtPtr a, StmtPtr b);
// Sequences a whole list (right-associated); empty list yields skip.
StmtPtr SSeqN(std::vector<StmtPtr> stmts);
StmtPtr SChoice(StmtPtr a, StmtPtr b);
// n-ary choice (right-associated); must be non-empty.
StmtPtr SChoiceN(std::vector<StmtPtr> stmts);
StmtPtr SStar(StmtPtr body);
StmtPtr SLoad(RegId r, VarId x);
StmtPtr SStore(VarId x, RegId r);
StmtPtr SCas(VarId x, RegId expected, RegId desired);

// Derived forms.
// if (e) { a } else { b }  ==  (assume e; a) ⊕ (assume !e; b)
StmtPtr SIfElse(ExprPtr e, StmtPtr then_branch, StmtPtr else_branch);
// while (e) { body }  ==  (assume e; body)* ; assume !e
StmtPtr SWhile(ExprPtr e, StmtPtr body);

// Returns a copy of `s` with the source location set (children unchanged).
StmtPtr WithLoc(const StmtPtr& s, SrcLoc loc);

// --- Traversal helpers -------------------------------------------------------

// Calls `fn` on every node of the tree (pre-order).
void VisitStmts(const StmtPtr& root, const std::function<void(const Stmt&)>& fn);

}  // namespace rapar

#endif  // RAPAR_LANG_AST_H_
