#include "lang/ast.h"

#include <cassert>

#include "common/strings.h"

namespace rapar {

namespace {

StmtPtr Make(StmtKind kind, ExprPtr expr = nullptr,
             VarId var = VarId::Invalid(), RegId reg = RegId::Invalid(),
             RegId reg2 = RegId::Invalid(), std::vector<StmtPtr> ch = {}) {
  return std::make_shared<Stmt>(kind, std::move(expr), var, reg, reg2,
                                std::move(ch));
}

std::string Indent(int depth) { return std::string(2 * depth, ' '); }

}  // namespace

std::string Stmt::ToString(const VarTable& vars, const RegTable& regs,
                           int indent) const {
  const std::string pad = Indent(indent);
  switch (kind_) {
    case StmtKind::kSkip:
      return pad + "skip";
    case StmtKind::kAssume:
      return StrCat(pad, "assume (", expr_->ToString(regs), ")");
    case StmtKind::kAssertFail:
      return pad + "assert false";
    case StmtKind::kAssign:
      return StrCat(pad, regs.Name(reg_), " := ", expr_->ToString(regs));
    case StmtKind::kSeq:
      return StrCat(children_[0]->ToString(vars, regs, indent), ";\n",
                    children_[1]->ToString(vars, regs, indent));
    case StmtKind::kChoice:
      return StrCat(pad, "choice {\n",
                    children_[0]->ToString(vars, regs, indent + 1), "\n", pad,
                    "} or {\n", children_[1]->ToString(vars, regs, indent + 1),
                    "\n", pad, "}");
    case StmtKind::kStar:
      return StrCat(pad, "loop {\n",
                    children_[0]->ToString(vars, regs, indent + 1), "\n", pad,
                    "}");
    case StmtKind::kLoad:
      return StrCat(pad, regs.Name(reg_), " := ", vars.Name(var_));
    case StmtKind::kStore:
      return StrCat(pad, vars.Name(var_), " := ", regs.Name(reg_));
    case StmtKind::kCas:
      return StrCat(pad, "cas(", vars.Name(var_), ", ", regs.Name(reg_), ", ",
                    regs.Name(reg2_), ")");
  }
  return pad + "?";
}

StmtPtr SSkip() { return Make(StmtKind::kSkip); }

StmtPtr SAssume(ExprPtr e) {
  assert(e != nullptr);
  return Make(StmtKind::kAssume, std::move(e));
}

StmtPtr SAssertFail() { return Make(StmtKind::kAssertFail); }

StmtPtr SAssign(RegId r, ExprPtr e) {
  assert(r.valid() && e != nullptr);
  return Make(StmtKind::kAssign, std::move(e), VarId::Invalid(), r);
}

StmtPtr SSeq(StmtPtr a, StmtPtr b) {
  assert(a != nullptr && b != nullptr);
  std::vector<StmtPtr> ch{std::move(a), std::move(b)};
  return Make(StmtKind::kSeq, nullptr, VarId::Invalid(), RegId::Invalid(),
              RegId::Invalid(), std::move(ch));
}

StmtPtr SSeqN(std::vector<StmtPtr> stmts) {
  if (stmts.empty()) return SSkip();
  StmtPtr acc = stmts.back();
  for (std::size_t i = stmts.size() - 1; i-- > 0;) {
    acc = SSeq(stmts[i], std::move(acc));
  }
  return acc;
}

StmtPtr SChoice(StmtPtr a, StmtPtr b) {
  assert(a != nullptr && b != nullptr);
  std::vector<StmtPtr> ch{std::move(a), std::move(b)};
  return Make(StmtKind::kChoice, nullptr, VarId::Invalid(), RegId::Invalid(),
              RegId::Invalid(), std::move(ch));
}

StmtPtr SChoiceN(std::vector<StmtPtr> stmts) {
  assert(!stmts.empty());
  StmtPtr acc = stmts.back();
  for (std::size_t i = stmts.size() - 1; i-- > 0;) {
    acc = SChoice(stmts[i], std::move(acc));
  }
  return acc;
}

StmtPtr SStar(StmtPtr body) {
  assert(body != nullptr);
  std::vector<StmtPtr> ch{std::move(body)};
  return Make(StmtKind::kStar, nullptr, VarId::Invalid(), RegId::Invalid(),
              RegId::Invalid(), std::move(ch));
}

StmtPtr SLoad(RegId r, VarId x) {
  assert(r.valid() && x.valid());
  return Make(StmtKind::kLoad, nullptr, x, r);
}

StmtPtr SStore(VarId x, RegId r) {
  assert(r.valid() && x.valid());
  return Make(StmtKind::kStore, nullptr, x, r);
}

StmtPtr SCas(VarId x, RegId expected, RegId desired) {
  assert(x.valid() && expected.valid() && desired.valid());
  return Make(StmtKind::kCas, nullptr, x, expected, desired);
}

StmtPtr SIfElse(ExprPtr e, StmtPtr then_branch, StmtPtr else_branch) {
  return SChoice(SSeq(SAssume(e), std::move(then_branch)),
                 SSeq(SAssume(ENot(e)), std::move(else_branch)));
}

StmtPtr SWhile(ExprPtr e, StmtPtr body) {
  return SSeq(SStar(SSeq(SAssume(e), std::move(body))), SAssume(ENot(e)));
}

StmtPtr WithLoc(const StmtPtr& s, SrcLoc loc) {
  assert(s != nullptr);
  if (s->loc() == loc) return s;
  return std::make_shared<Stmt>(s->kind(), s->expr(), s->var(), s->reg(),
                                s->reg2(), s->children(), loc);
}

void VisitStmts(const StmtPtr& root,
                const std::function<void(const Stmt&)>& fn) {
  if (root == nullptr) return;
  fn(*root);
  for (const auto& c : root->children()) VisitStmts(c, fn);
}

}  // namespace rapar
