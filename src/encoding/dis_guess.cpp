#include "encoding/dis_guess.h"

#include <cassert>
#include <functional>
#include <initializer_list>
#include <utility>

#include "common/json.h"
#include "common/strings.h"

namespace rapar {

namespace {

// Phase A: enumerate a thread's control paths with concrete register
// effects. Loads branch over all domain values; assumes prune.
void EnumPaths(const Cfa& cfa, Value dom, std::size_t cap,
               std::vector<ThreadGuess>& out, bool* complete) {
  struct Frame {
    NodeId node;
    std::vector<Value> rv;
    ThreadGuess acc;
  };
  std::vector<Frame> stack;
  Frame init;
  init.node = cfa.entry();
  init.rv.assign(cfa.program().regs().size(), kInitValue);
  stack.push_back(std::move(init));

  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (cfa.OutEdges(f.node).empty()) {
      out.push_back(std::move(f.acc));
      if (out.size() >= cap) {
        *complete = false;
        return;
      }
      continue;
    }
    for (EdgeId eid : cfa.OutEdges(f.node)) {
      const CfaEdge& edge = cfa.Edge(eid);
      const Instr& instr = edge.instr;
      GuessStep step;
      step.edge = eid.value();
      switch (instr.kind) {
        case Instr::Kind::kNop: {
          Frame next = f;
          next.node = edge.to;
          step.rv_after = next.rv;
          next.acc.steps.push_back(std::move(step));
          stack.push_back(std::move(next));
          break;
        }
        case Instr::Kind::kAssume: {
          if (instr.expr->Eval(f.rv, dom) == 0) break;
          Frame next = f;
          next.node = edge.to;
          step.rv_after = next.rv;
          next.acc.steps.push_back(std::move(step));
          stack.push_back(std::move(next));
          break;
        }
        case Instr::Kind::kAssertFail: {
          Frame next = f;
          next.node = edge.to;
          next.acc.hits_assert = true;
          step.rv_after = next.rv;
          next.acc.steps.push_back(std::move(step));
          stack.push_back(std::move(next));
          break;
        }
        case Instr::Kind::kAssign: {
          Frame next = f;
          next.rv[instr.reg.index()] = instr.expr->Eval(next.rv, dom);
          next.node = edge.to;
          step.rv_after = next.rv;
          next.acc.steps.push_back(std::move(step));
          stack.push_back(std::move(next));
          break;
        }
        case Instr::Kind::kLoad: {
          for (Value v = 0; v < dom; ++v) {
            Frame next = f;
            next.rv[instr.reg.index()] = v;
            next.node = edge.to;
            GuessStep s = step;
            s.read_value = v;
            s.rv_after = next.rv;
            next.acc.steps.push_back(std::move(s));
            stack.push_back(std::move(next));
          }
          break;
        }
        case Instr::Kind::kStore: {
          Frame next = f;
          next.node = edge.to;
          step.store_pos = 0;  // position assigned in phase B
          step.rv_after = next.rv;
          next.acc.steps.push_back(std::move(step));
          stack.push_back(std::move(next));
          break;
        }
        case Instr::Kind::kCas: {
          // The CAS reads exactly rv[r1] and stores rv[r2].
          Frame next = f;
          next.node = edge.to;
          GuessStep s = step;
          s.read_value = f.rv[instr.reg.index()];
          s.store_pos = 0;
          s.rv_after = next.rv;
          next.acc.steps.push_back(std::move(s));
          stack.push_back(std::move(next));
          break;
        }
      }
    }
  }
}

// Receives guesses in enumeration order together with their global
// enumeration index; returns false to abort the remaining enumeration
// (cursor cancelled). The vector wrapper always returns true.
using GuessSink = std::function<bool(std::size_t, DisGuess&&)>;

// The shared enumeration core behind EnumerateDisGuesses and
// DisGuessCursor. Produces guesses into a sink instead of a vector so the
// cursor's bounded buffer can apply backpressure; the enumeration order
// and the max_guesses cap semantics are those of the original
// materializing enumerator.
class GuessBuilder {
 public:
  GuessBuilder(const SimplSystem& sys, const GuessEnumOptions& options,
               GuessSink sink, bool* complete)
      : sys_(sys),
        options_(options),
        sink_(std::move(sink)),
        complete_(complete) {}

  void Run() {
    const std::size_t n = sys_.dis.size();
    if (n == 0) {
      DisGuess g;
      g.mem.resize(sys_.num_vars);
      Emit(std::move(g));
      return;
    }
    per_thread_paths_.resize(n);
    for (std::size_t t = 0; t < n; ++t) {
      EnumPaths(*sys_.dis[t], sys_.dom, options_.max_guesses,
                per_thread_paths_[t], complete_);
      if (per_thread_paths_[t].empty()) return;  // no executable path
    }
    chosen_.assign(n, 0);
    PickPaths(0);
  }

 private:
  const Cfa& DisCfa(std::size_t t) const { return *sys_.dis[t]; }

  // Enumeration must stop: the cap was hit or the sink cancelled. The
  // cap is on the global index so every shard of the same system cuts
  // the identical prefix of the enumeration order.
  bool Stopped() {
    if (stopped_) return true;
    if (global_index_ >= options_.max_guesses) {
      *complete_ = false;
      stopped_ = true;
      return true;
    }
    return false;
  }

  void Emit(DisGuess&& guess) {
    const std::size_t idx = global_index_++;
    // Shard/resume filters suppress emission only: the global index keeps
    // counting so every worker agrees on which guess is which.
    if (options_.shard_count > 1 &&
        idx % options_.shard_count != options_.shard_index) {
      return;
    }
    if (idx < options_.start_index) return;
    if (!sink_(idx, std::move(guess))) {
      stopped_ = true;
      return;
    }
    ++produced_;
  }

  // Phase A product: choose one path per thread.
  void PickPaths(std::size_t t) {
    if (Stopped()) return;
    if (t == chosen_.size()) {
      MergeStores();
      return;
    }
    for (std::size_t i = 0; i < per_thread_paths_[t].size(); ++i) {
      chosen_[t] = i;
      PickPaths(t + 1);
      if (Stopped()) return;
    }
  }

  // Phase B: interleave the store events of the chosen paths per variable.
  void MergeStores() {
    // Collect store events per variable: (thread, step index).
    std::vector<std::vector<std::pair<int, int>>> events(sys_.num_vars);
    for (std::size_t t = 0; t < chosen_.size(); ++t) {
      const ThreadGuess& path = per_thread_paths_[t][chosen_[t]];
      for (std::size_t s = 0; s < path.steps.size(); ++s) {
        if (path.steps[s].store_pos < 0) continue;
        const Instr& instr =
            DisCfa(t).Edge(EdgeId(path.steps[s].edge)).instr;
        events[instr.var.index()].push_back(
            {static_cast<int>(t), static_cast<int>(s)});
      }
    }
    // Enumerate per-variable interleavings (indices per thread).
    std::vector<std::vector<std::vector<std::pair<int, int>>>> merges(
        sys_.num_vars);
    for (std::size_t x = 0; x < sys_.num_vars; ++x) {
      // Per-thread subsequences on x.
      std::vector<std::vector<std::pair<int, int>>> seqs;
      for (std::size_t t = 0; t < chosen_.size(); ++t) {
        std::vector<std::pair<int, int>> seq;
        for (const auto& ev : events[x]) {
          if (ev.first == static_cast<int>(t)) seq.push_back(ev);
        }
        if (!seq.empty()) seqs.push_back(std::move(seq));
      }
      std::vector<std::pair<int, int>> acc;
      EnumMerges(seqs, std::vector<std::size_t>(seqs.size(), 0), acc,
                 merges[x]);
    }
    // Product over variables.
    std::vector<std::size_t> pick(sys_.num_vars, 0);
    ProductMerges(merges, 0, pick);
  }

  static void EnumMerges(
      const std::vector<std::vector<std::pair<int, int>>>& seqs,
      std::vector<std::size_t> idx, std::vector<std::pair<int, int>>& acc,
      std::vector<std::vector<std::pair<int, int>>>& out) {
    bool done = true;
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      if (idx[i] < seqs[i].size()) {
        done = false;
        acc.push_back(seqs[i][idx[i]]);
        ++idx[i];
        EnumMerges(seqs, idx, acc, out);
        --idx[i];
        acc.pop_back();
      }
    }
    if (done) out.push_back(acc);
  }

  void ProductMerges(
      const std::vector<std::vector<std::vector<std::pair<int, int>>>>&
          merges,
      std::size_t x, std::vector<std::size_t>& pick) {
    if (Stopped()) return;
    if (x == merges.size()) {
      BuildMemAndResolveReads(merges, pick);
      return;
    }
    for (std::size_t i = 0; i < merges[x].size(); ++i) {
      pick[x] = i;
      ProductMerges(merges, x + 1, pick);
      if (Stopped()) return;
    }
  }

  // Phase C: fix store positions, then resolve read sources.
  void BuildMemAndResolveReads(
      const std::vector<std::vector<std::vector<std::pair<int, int>>>>&
          merges,
      const std::vector<std::size_t>& pick) {
    DisGuess guess;
    guess.threads.resize(chosen_.size());
    for (std::size_t t = 0; t < chosen_.size(); ++t) {
      guess.threads[t] = per_thread_paths_[t][chosen_[t]];
    }
    guess.mem.assign(sys_.num_vars, {});
    for (std::size_t x = 0; x < sys_.num_vars; ++x) {
      const auto& order = merges[x][pick[x]];
      for (std::size_t p = 0; p < order.size(); ++p) {
        auto [t, s] = order[p];
        GuessStep& step = guess.threads[t].steps[s];
        step.store_pos = static_cast<int>(p) + 1;
        const Instr& instr = DisCfa(t).Edge(EdgeId(step.edge)).instr;
        MemCell cell;
        // Store value: for stores rv[reg]; for CAS rv[reg2]. rv is
        // unchanged by both, so rv_after works.
        cell.val = instr.kind == Instr::Kind::kCas
                       ? step.rv_after[instr.reg2.index()]
                       : step.rv_after[instr.reg.index()];
        cell.thread = t;
        cell.step_idx = s;
        guess.mem[x].push_back(cell);
      }
    }
    ResolveReads(guess, 0, 0);
  }

  // Recursively resolves read sources for thread t from step s on.
  void ResolveReads(DisGuess& guess, std::size_t t, std::size_t s) {
    if (Stopped()) return;
    if (t == guess.threads.size()) {
      Finalise(guess);
      return;
    }
    if (s == guess.threads[t].steps.size()) {
      ResolveReads(guess, t + 1, 0);
      return;
    }
    GuessStep& step = guess.threads[t].steps[s];
    const Instr& instr = DisCfa(t).Edge(EdgeId(step.edge)).instr;
    if (instr.kind == Instr::Kind::kLoad) {
      const std::size_t x = instr.var.index();
      // Source: init message (value 0) or any matching dis store, or env.
      if (step.read_value == kInitValue) {
        step.read_from_env = false;
        step.read_dis_pos = 0;
        ResolveReads(guess, t, s + 1);
      }
      for (int p = 1; p <= guess.StoresOn(x); ++p) {
        if (guess.mem[x][p - 1].val != step.read_value) continue;
        step.read_from_env = false;
        step.read_dis_pos = p;
        ResolveReads(guess, t, s + 1);
        if (Stopped()) return;
      }
      step.read_from_env = true;
      step.read_dis_pos = -1;
      ResolveReads(guess, t, s + 1);
      step.read_from_env = false;  // restore
      return;
    }
    if (instr.kind == Instr::Kind::kCas) {
      const std::size_t x = instr.var.index();
      const int p = step.store_pos;
      // CAS on a dis message: adjacency forces the load at position p-1.
      const Value below =
          p - 1 == 0 ? kInitValue : guess.mem[x][p - 2].val;
      if (below == step.read_value) {
        step.read_from_env = false;
        step.read_dis_pos = p - 1;
        guess.mem[x][p - 1].glued = true;
        ResolveReads(guess, t, s + 1);
        guess.mem[x][p - 1].glued = false;
        if (Stopped()) return;
      }
      // CAS on an env message: the clone sits directly below; no glue.
      step.read_from_env = true;
      step.read_dis_pos = -1;
      ResolveReads(guess, t, s + 1);
      step.read_from_env = false;
      return;
    }
    ResolveReads(guess, t, s + 1);
  }

  void Finalise(DisGuess& guess) {
    if (Stopped()) return;
    Emit(DisGuess(guess));  // copy: the recursion keeps mutating `guess`
  }

  const SimplSystem& sys_;
  const GuessEnumOptions& options_;
  GuessSink sink_;
  bool* complete_;
  std::size_t global_index_ = 0;  // next guess's global enumeration index
  std::size_t produced_ = 0;      // guesses this shard actually emitted
  bool stopped_ = false;
  std::vector<std::vector<ThreadGuess>> per_thread_paths_;
  std::vector<std::size_t> chosen_;
};

}  // namespace

std::vector<DisGuess> EnumerateDisGuesses(const SimplSystem& sys,
                                          const GuessEnumOptions& options,
                                          bool* complete) {
  *complete = true;
  std::vector<DisGuess> out;
  GuessBuilder builder(
      sys, options,
      [&out](std::size_t, DisGuess&& g) {
        out.push_back(std::move(g));
        return true;
      },
      complete);
  builder.Run();
  return out;
}

// --- CursorCheckpoint -------------------------------------------------------

std::string CursorCheckpoint::ToJson(bool pretty) const {
  JsonWriter w(pretty);
  w.BeginObject();
  w.Key("schema_version").Int(kSchemaVersion);
  w.Key("kind").String("rapar-cursor-checkpoint");
  w.Key("shard_index").UInt(shard_index);
  w.Key("shard_count").UInt(shard_count);
  w.Key("next_index").UInt(next_index);
  w.Key("scanned").UInt(scanned);
  w.Key("exhausted").Bool(exhausted);
  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

Expected<CursorCheckpoint> CursorCheckpoint::FromJson(std::string_view text) {
  using E = Expected<CursorCheckpoint>;
  Expected<JsonValue> doc = ParseJson(text);
  if (!doc.ok()) return E::Error("checkpoint: " + doc.error());
  const JsonValue& v = doc.value();
  if (!v.is_object()) return E::Error("checkpoint: not a JSON object");
  const JsonValue* kind = v.Find("kind");
  if (kind == nullptr || !kind->is_string() ||
      kind->string != "rapar-cursor-checkpoint") {
    return E::Error("checkpoint: missing kind \"rapar-cursor-checkpoint\"");
  }
  const JsonValue* ver = v.Find("schema_version");
  if (ver == nullptr || !ver->is_number() || !ver->number_is_int) {
    return E::Error("checkpoint: missing integer schema_version");
  }
  if (ver->integer != kSchemaVersion) {
    return E::Error(StrCat("checkpoint: schema_version ", ver->integer,
                           " unsupported (expected ", kSchemaVersion, ")"));
  }
  CursorCheckpoint cp;
  auto read_uint = [&v](const char* key, std::size_t* out) -> const char* {
    const JsonValue* field = v.Find(key);
    if (field == nullptr || !field->is_number()) return "missing";
    if (field->number_is_uint) {
      *out = static_cast<std::size_t>(field->uinteger);
    } else if (field->number_is_int && field->integer >= 0) {
      *out = static_cast<std::size_t>(field->integer);
    } else {
      return "negative or non-integer";
    }
    return nullptr;
  };
  for (const auto& [key, out] :
       std::initializer_list<std::pair<const char*, std::size_t*>>{
           {"shard_index", &cp.shard_index},
           {"shard_count", &cp.shard_count},
           {"next_index", &cp.next_index},
           {"scanned", &cp.scanned}}) {
    if (const char* err = read_uint(key, out)) {
      return E::Error(StrCat("checkpoint: field '", key, "' ", err));
    }
  }
  const JsonValue* ex = v.Find("exhausted");
  if (ex == nullptr || !ex->is_bool()) {
    return E::Error("checkpoint: field 'exhausted' missing or not a boolean");
  }
  cp.exhausted = ex->boolean;
  if (cp.shard_count == 0 || cp.shard_index >= cp.shard_count) {
    return E::Error(StrCat("checkpoint: shard_index ", cp.shard_index,
                           " out of range for shard_count ", cp.shard_count));
  }
  return E{std::move(cp)};
}

// --- DisGuessCursor ---------------------------------------------------------

DisGuessCursor::DisGuessCursor(const SimplSystem& sys,
                               const GuessEnumOptions& options,
                               std::size_t buffer_capacity)
    : capacity_(buffer_capacity == 0 ? 1 : buffer_capacity) {
  producer_ = std::jthread([this, &sys, opts = options] {
    bool complete = true;
    GuessBuilder builder(
        sys, opts,
        [this](std::size_t idx, DisGuess&& g) {
          return Push(idx, std::move(g));
        },
        &complete);
    builder.Run();
    {
      std::lock_guard<std::mutex> lock(m_);
      done_ = true;
      complete_ = complete && !cancelled_;
    }
    can_consume_.notify_all();
  });
}

DisGuessCursor::~DisGuessCursor() {
  Cancel();
  // producer_ (jthread) joins on destruction.
}

bool DisGuessCursor::Push(std::size_t index, DisGuess&& guess) {
  std::unique_lock<std::mutex> lock(m_);
  can_produce_.wait(lock, [this] {
    return buffer_.size() < capacity_ || cancelled_;
  });
  if (cancelled_) return false;
  buffer_.push_back(IndexedGuess{index, std::move(guess)});
  ++produced_;
  lock.unlock();
  can_consume_.notify_one();
  return true;
}

std::size_t DisGuessCursor::NextChunk(std::size_t max_chunk,
                                      std::vector<DisGuess>* out) {
  std::unique_lock<std::mutex> lock(m_);
  can_consume_.wait(lock,
                    [this] { return !buffer_.empty() || done_ || cancelled_; });
  if (cancelled_) return 0;
  std::size_t n = 0;
  while (n < max_chunk && !buffer_.empty()) {
    out->push_back(std::move(buffer_.front().guess));
    buffer_.pop_front();
    ++n;
  }
  lock.unlock();
  can_produce_.notify_all();
  return n;
}

std::size_t DisGuessCursor::NextChunk(std::size_t max_chunk,
                                      std::vector<IndexedGuess>* out) {
  std::unique_lock<std::mutex> lock(m_);
  can_consume_.wait(lock,
                    [this] { return !buffer_.empty() || done_ || cancelled_; });
  if (cancelled_) return 0;
  std::size_t n = 0;
  while (n < max_chunk && !buffer_.empty()) {
    out->push_back(std::move(buffer_.front()));
    buffer_.pop_front();
    ++n;
  }
  lock.unlock();
  can_produce_.notify_all();
  return n;
}

void DisGuessCursor::Cancel() {
  {
    std::lock_guard<std::mutex> lock(m_);
    cancelled_ = true;
    buffer_.clear();
  }
  can_produce_.notify_all();
  can_consume_.notify_all();
}

std::size_t DisGuessCursor::produced() const {
  std::lock_guard<std::mutex> lock(m_);
  return produced_;
}

bool DisGuessCursor::exhausted() const {
  std::lock_guard<std::mutex> lock(m_);
  return cancelled_ || (done_ && buffer_.empty());
}

bool DisGuessCursor::complete() const {
  std::lock_guard<std::mutex> lock(m_);
  return done_ && complete_;
}

std::string DisGuess::ToString(const SimplSystem& sys) const {
  std::string out = "guess:\n";
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const Cfa& cfa = *sys.dis[t];
    out += StrCat("  dis", t, threads[t].hits_assert ? " (asserts)" : "",
                  ":\n");
    for (const GuessStep& s : threads[t].steps) {
      const Instr& instr = cfa.Edge(EdgeId(s.edge)).instr;
      out += StrCat("    ", instr.ToString(cfa.program().vars(),
                                           cfa.program().regs()));
      if (s.read_value >= 0) {
        out += StrCat(" [reads ", s.read_value,
                      s.read_from_env
                          ? " from env"
                          : StrCat(" from dis@", s.read_dis_pos), "]");
      }
      if (s.store_pos > 0) out += StrCat(" [stores at ", s.store_pos, "]");
      out += "\n";
    }
  }
  for (std::size_t x = 0; x < mem.size(); ++x) {
    out += StrCat("  mem[", x, "]:");
    for (const MemCell& c : mem[x]) {
      out += StrCat(" ", c.val, c.glued ? "g" : "");
    }
    out += "\n";
  }
  return out;
}

}  // namespace rapar
