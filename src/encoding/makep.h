// makeP (§4.1): emits one Cache Datalog query instance per dis-run guess.
//
// Predicates (following the paper):
//   emp(x, d, t_1..t_k)   — an available env message on x with value d and
//                           view (t_1..t_k); views are inlined as one
//                           abstract-timestamp argument per variable.
//   etp(lc, r_1..r_m, t_1..t_k)
//                         — a reachable env-thread configuration.
//   dmp(x, d, t_1..t_k)   — an available dis message (init messages are
//                           facts; guessed stores are derived from the
//                           thread predicates, which validates the guess).
//   dtp_i_j(t_1..t_k)     — dis thread i has executed the first j steps of
//                           its guessed path; registers are concrete along
//                           the guess, so only the view is threaded.
//   violation()/goal()/unsafe() — query atoms.
//
// Abstract timestamps are interned first, so Sym value == encoded
// timestamp (2t for dis t, 2t+1 for t⁺); natives compare/join them
// directly. Rules have at most two IDB body atoms (a thread predicate and
// a message predicate), i.e. the program is Cache Datalog as required by
// Lemma 4.2's pipeline; dmp/emp-free rules are linear outright.
#ifndef RAPAR_ENCODING_MAKEP_H_
#define RAPAR_ENCODING_MAKEP_H_

#include <memory>
#include <optional>
#include <utility>

#include "datalog/ast.h"
#include "encoding/dis_guess.h"

namespace rapar {

struct MakePResult {
  std::unique_ptr<dl::Program> prog;
  // The query atom g: unsafe().
  dl::Atom goal;
};

struct MakePOptions {
  // MG goal message (var, val); when unset only assert-false violations
  // constitute unsafety.
  std::optional<std::pair<VarId, Value>> goal_message;
};

// Builds the query instance for one guess. The caller owns the program.
MakePResult MakeP(const SimplSystem& sys, const DisGuess& guess,
                  const MakePOptions& options);

}  // namespace rapar

#endif  // RAPAR_ENCODING_MAKEP_H_
