#include "encoding/makep.h"

#include <cassert>

#include "analysis/reachability.h"
#include "common/strings.h"

namespace rapar {

namespace {

using dl::Atom;
using dl::C;
using dl::Native;
using dl::PredId;
using dl::Rule;
using dl::Sym;
using dl::Term;
using dl::V;

// Builds the program for one guess. Convention for constants: abstract
// timestamps are interned first so that Sym value == encoded timestamp;
// domain values follow at offset val_off_; then node and variable tags.
class Builder {
 public:
  Builder(const SimplSystem& sys, const DisGuess& guess,
          const MakePOptions& options)
      : sys_(sys), guess_(guess), options_(options) {
    prog_ = std::make_unique<dl::Program>();
    k_ = sys.num_vars;
    m_ = sys.env->program().regs().size();

    // Maximum abstract timestamp: 2*T_x + 1 over all variables.
    int max_ts = 1;
    for (std::size_t x = 0; x < k_; ++x) {
      max_ts = std::max(max_ts, 2 * guess.StoresOn(x) + 1);
    }
    for (int t = 0; t <= max_ts; ++t) {
      Sym s = prog_->ConstSym(StrCat("$ts", AbsTsToString(t)));
      assert(s == static_cast<Sym>(t));
      (void)s;
    }
    val_off_ = static_cast<Sym>(max_ts + 1);
    for (Value v = 0; v < sys.dom; ++v) {
      Sym s = prog_->ConstSym(StrCat("$val", v));
      assert(s == val_off_ + static_cast<Sym>(v));
      (void)s;
    }
    node_off_ = val_off_ + static_cast<Sym>(sys.dom);
    for (std::size_t n = 0; n < sys.env->num_nodes(); ++n) {
      prog_->ConstSym(StrCat("$n", n));
    }
    var_off_ = node_off_ + static_cast<Sym>(sys.env->num_nodes());
    for (std::size_t x = 0; x < k_; ++x) {
      prog_->ConstSym(
          StrCat("$var_", sys.env->program().vars().Name(
                              VarId(static_cast<std::uint32_t>(x)))));
    }

    emp_ = prog_->AddPred("emp", 2 + k_);
    dmp_ = prog_->AddPred("dmp", 2 + k_);
    etp_ = prog_->AddPred("etp", 1 + m_ + k_);
    unsafe_ = prog_->AddPred("unsafe", 0);
  }

  MakePResult Build() {
    AddFacts();
    AddEnvRules();
    AddDisChains();
    AddGoalRules();
    MakePResult result;
    result.goal = Atom{unsafe_, {}};
    result.prog = std::move(prog_);
    return result;
  }

 private:
  Sym TsSym(int ts) const { return static_cast<Sym>(ts); }
  Sym ValSym(Value v) const { return val_off_ + static_cast<Sym>(v); }
  Sym NodeSym(NodeId n) const {
    return node_off_ + static_cast<Sym>(n.value());
  }
  Sym NodeSym(std::uint32_t n) const { return node_off_ + n; }
  Sym VarSymOf(VarId x) const { return var_off_ + x.value(); }

  // --- natives -----------------------------------------------------------

  static Native LeqCheck(Term a, Term b) {
    Native n;
    n.name = "leq";
    n.tag = "leq";
    n.inputs = {a, b};
    n.fn = [](std::span<const Sym> in, Sym*) { return in[0] <= in[1]; };
    return n;
  }

  static Native MaxFn(Term a, Term b, dl::VarSym out) {
    Native n;
    n.name = "max";
    n.tag = "max";
    n.inputs = {a, b};
    n.output = out;
    n.fn = [](std::span<const Sym> in, Sym* o) {
      *o = std::max(in[0], in[1]);
      return true;
    };
    return n;
  }

  Native ExprCheck(const ExprPtr& expr) const {
    Native n;
    n.name = "assume";
    n.tag = StrCat("assume:", expr->ToString(sys_.env->program().regs()));
    for (std::size_t r = 0; r < m_; ++r) {
      n.inputs.push_back(V(static_cast<dl::VarSym>(r)));
    }
    const Sym off = val_off_;
    const Value dom = sys_.dom;
    n.fn = [expr, off, dom](std::span<const Sym> in, Sym*) {
      std::vector<Value> rv;
      rv.reserve(in.size());
      for (Sym s : in) rv.push_back(static_cast<Value>(s - off));
      return expr->Eval(rv, dom) != 0;
    };
    return n;
  }

  Native ExprFn(const ExprPtr& expr, dl::VarSym out) const {
    Native n;
    n.name = "eval";
    n.tag = StrCat("eval:", expr->ToString(sys_.env->program().regs()));
    for (std::size_t r = 0; r < m_; ++r) {
      n.inputs.push_back(V(static_cast<dl::VarSym>(r)));
    }
    n.output = out;
    const Sym off = val_off_;
    const Value dom = sys_.dom;
    n.fn = [expr, off, dom](std::span<const Sym> in, Sym* o) {
      std::vector<Value> rv;
      rv.reserve(in.size());
      for (Sym s : in) rv.push_back(static_cast<Value>(s - off));
      *o = off + static_cast<Sym>(expr->Eval(rv, dom));
      return true;
    };
    return n;
  }

  // --- env rule plumbing ----------------------------------------------------
  //
  // Variable layout for env rules: 0..m-1 registers, m..m+k-1 view, then
  // scratch variables from m+k upward.

  Term RvVar(std::size_t r) const { return V(static_cast<dl::VarSym>(r)); }
  Term ViewVar(std::size_t x) const {
    return V(static_cast<dl::VarSym>(m_ + x));
  }

  Atom EtpAtom(NodeId node, const std::vector<Term>& rv,
               const std::vector<Term>& view) const {
    Atom a;
    a.pred = etp_;
    a.args.push_back(C(NodeSym(node)));
    a.args.insert(a.args.end(), rv.begin(), rv.end());
    a.args.insert(a.args.end(), view.begin(), view.end());
    return a;
  }

  std::vector<Term> IdentityRv() const {
    std::vector<Term> rv;
    for (std::size_t r = 0; r < m_; ++r) rv.push_back(RvVar(r));
    return rv;
  }
  std::vector<Term> IdentityView() const {
    std::vector<Term> vw;
    for (std::size_t x = 0; x < k_; ++x) vw.push_back(ViewVar(x));
    return vw;
  }

  void AddFacts() {
    // Initial dis (init) messages: value d_init, zero view.
    for (std::size_t x = 0; x < k_; ++x) {
      Atom a;
      a.pred = dmp_;
      a.args.push_back(C(var_off_ + static_cast<Sym>(x)));
      a.args.push_back(C(ValSym(kInitValue)));
      for (std::size_t y = 0; y < k_; ++y) a.args.push_back(C(TsSym(0)));
      prog_->AddFact(std::move(a));
    }
    // Initial env-thread configuration.
    {
      Atom a;
      a.pred = etp_;
      a.args.push_back(C(NodeSym(std::uint32_t{0})));
      for (std::size_t r = 0; r < m_; ++r) {
        a.args.push_back(C(ValSym(kInitValue)));
      }
      for (std::size_t x = 0; x < k_; ++x) a.args.push_back(C(TsSym(0)));
      prog_->AddFact(std::move(a));
    }
  }

  void AddEnvRules() {
    const Cfa& cfa = *sys_.env;
    // Dead env edges (unreachable source or constantly-false guard) would
    // generate rules that can never fire; skip them so the emitted program
    // stays small even when the caller did not run the verifier pre-pass.
    const ReachabilityResult reach = AnalyzeReachability(cfa);
    for (std::size_t ei = 0; ei < cfa.edges().size(); ++ei) {
      if (reach.edge_dead[ei]) continue;
      const CfaEdge& edge = cfa.edges()[ei];
      const Instr& instr = edge.instr;
      switch (instr.kind) {
        case Instr::Kind::kNop: {
          Rule r;
          r.head = EtpAtom(edge.to, IdentityRv(), IdentityView());
          r.body = {EtpAtom(edge.from, IdentityRv(), IdentityView())};
          prog_->AddRule(std::move(r));
          break;
        }
        case Instr::Kind::kAssume: {
          Rule r;
          r.head = EtpAtom(edge.to, IdentityRv(), IdentityView());
          r.body = {EtpAtom(edge.from, IdentityRv(), IdentityView())};
          r.natives.push_back(ExprCheck(instr.expr));
          prog_->AddRule(std::move(r));
          break;
        }
        case Instr::Kind::kAssertFail: {
          Rule r;
          r.head = Atom{unsafe_, {}};
          r.body = {EtpAtom(edge.from, IdentityRv(), IdentityView())};
          prog_->AddRule(std::move(r));
          Rule adv;
          adv.head = EtpAtom(edge.to, IdentityRv(), IdentityView());
          adv.body = {EtpAtom(edge.from, IdentityRv(), IdentityView())};
          prog_->AddRule(std::move(adv));
          break;
        }
        case Instr::Kind::kAssign: {
          const dl::VarSym out = static_cast<dl::VarSym>(m_ + k_);
          std::vector<Term> rv = IdentityRv();
          rv[instr.reg.index()] = V(out);
          Rule r;
          r.head = EtpAtom(edge.to, rv, IdentityView());
          r.body = {EtpAtom(edge.from, IdentityRv(), IdentityView())};
          r.natives.push_back(ExprFn(instr.expr, out));
          prog_->AddRule(std::move(r));
          break;
        }
        case Instr::Kind::kLoad:
          AddEnvLoadRules(edge);
          break;
        case Instr::Kind::kStore:
          AddEnvStoreRules(edge);
          break;
        case Instr::Kind::kCas:
          assert(false && "env threads are CAS-free (env(nocas))");
          break;
      }
    }
  }

  void AddEnvLoadRules(const CfaEdge& edge) {
    const Instr& instr = edge.instr;
    const std::size_t x = instr.var.index();
    // Scratch variables: message value D, message view U_0..U_{k-1},
    // joined view W_0..W_{k-1}.
    const dl::VarSym d0 = static_cast<dl::VarSym>(m_ + k_);
    const dl::VarSym u0 = d0 + 1;
    const dl::VarSym w0 = u0 + static_cast<dl::VarSym>(k_);
    auto msg_atom = [&](PredId pred) {
      Atom a;
      a.pred = pred;
      a.args.push_back(C(var_off_ + static_cast<Sym>(x)));
      a.args.push_back(V(d0));
      for (std::size_t y = 0; y < k_; ++y) {
        a.args.push_back(V(u0 + static_cast<dl::VarSym>(y)));
      }
      return a;
    };
    std::vector<Term> rv = IdentityRv();
    rv[instr.reg.index()] = V(d0);

    // (a) From a dis message: timestamp check + full join.
    {
      Rule r;
      std::vector<Term> w;
      for (std::size_t y = 0; y < k_; ++y) {
        w.push_back(V(w0 + static_cast<dl::VarSym>(y)));
        r.natives.push_back(MaxFn(ViewVar(y),
                                  V(u0 + static_cast<dl::VarSym>(y)),
                                  w0 + static_cast<dl::VarSym>(y)));
      }
      r.head = EtpAtom(edge.to, rv, w);
      r.body = {EtpAtom(edge.from, IdentityRv(), IdentityView()),
                msg_atom(dmp_)};
      // view(x) <= msg.ts(x)
      r.natives.push_back(
          LeqCheck(ViewVar(x), V(u0 + static_cast<dl::VarSym>(x))));
      prog_->AddRule(std::move(r));
    }
    // (b) From an env message, clone promoted into unfrozen gap h.
    for (int h = 0; h <= guess_.StoresOn(x); ++h) {
      if (guess_.GapFrozen(x, h)) continue;
      Rule r;
      std::vector<Term> w;
      for (std::size_t y = 0; y < k_; ++y) {
        if (y == x) {
          w.push_back(C(TsSym(PlusTs(h))));
        } else {
          w.push_back(V(w0 + static_cast<dl::VarSym>(y)));
          r.natives.push_back(MaxFn(ViewVar(y),
                                    V(u0 + static_cast<dl::VarSym>(y)),
                                    w0 + static_cast<dl::VarSym>(y)));
        }
      }
      r.head = EtpAtom(edge.to, rv, w);
      r.body = {EtpAtom(edge.from, IdentityRv(), IdentityView()),
                msg_atom(emp_)};
      r.natives.push_back(LeqCheck(ViewVar(x), C(TsSym(PlusTs(h)))));
      r.natives.push_back(
          LeqCheck(V(u0 + static_cast<dl::VarSym>(x)), C(TsSym(PlusTs(h)))));
      prog_->AddRule(std::move(r));
    }
  }

  void AddEnvStoreRules(const CfaEdge& edge) {
    const Instr& instr = edge.instr;
    const std::size_t x = instr.var.index();
    for (int h = 0; h <= guess_.StoresOn(x); ++h) {
      if (guess_.GapFrozen(x, h)) continue;
      std::vector<Term> w = IdentityView();
      w[x] = C(TsSym(PlusTs(h)));
      // emp(x, rv[reg], view[x -> h+]) :- etp(from, ...), view(x) <= h+.
      Rule msg;
      msg.head = Atom{emp_, {}};
      msg.head.args.push_back(C(var_off_ + static_cast<Sym>(x)));
      msg.head.args.push_back(RvVar(instr.reg.index()));
      msg.head.args.insert(msg.head.args.end(), w.begin(), w.end());
      msg.body = {EtpAtom(edge.from, IdentityRv(), IdentityView())};
      msg.natives.push_back(LeqCheck(ViewVar(x), C(TsSym(PlusTs(h)))));
      prog_->AddRule(std::move(msg));

      Rule adv;
      adv.head = EtpAtom(edge.to, IdentityRv(), w);
      adv.body = {EtpAtom(edge.from, IdentityRv(), IdentityView())};
      adv.natives.push_back(LeqCheck(ViewVar(x), C(TsSym(PlusTs(h)))));
      prog_->AddRule(std::move(adv));
    }
  }

  // --- dis chains --------------------------------------------------------
  //
  // Variable layout for dis rules: 0..k-1 current view T, then scratch.

  void AddDisChains() {
    for (std::size_t t = 0; t < guess_.threads.size(); ++t) {
      const ThreadGuess& path = guess_.threads[t];
      const Cfa& cfa = *sys_.dis[t];
      // dtp_t_j predicates, arity k.
      std::vector<PredId> dtp(path.steps.size() + 1);
      for (std::size_t j = 0; j <= path.steps.size(); ++j) {
        dtp[j] = prog_->AddPred(StrCat("dtp", t, "_", j), k_);
      }
      // Initial fact: zero view.
      {
        Atom a;
        a.pred = dtp[0];
        for (std::size_t y = 0; y < k_; ++y) a.args.push_back(C(TsSym(0)));
        prog_->AddFact(std::move(a));
      }
      for (std::size_t j = 0; j < path.steps.size(); ++j) {
        AddDisStepRules(cfa, path.steps[j], dtp[j], dtp[j + 1]);
      }
    }
  }

  Atom DtpAtom(PredId pred, const std::vector<Term>& view) const {
    Atom a;
    a.pred = pred;
    a.args = view;
    return a;
  }

  std::vector<Term> DisView() const {
    std::vector<Term> vw;
    for (std::size_t y = 0; y < k_; ++y) {
      vw.push_back(V(static_cast<dl::VarSym>(y)));
    }
    return vw;
  }

  void AddDisStepRules(const Cfa& cfa, const GuessStep& step, PredId from,
                       PredId to) {
    const Instr& instr = cfa.Edge(EdgeId(step.edge)).instr;
    switch (instr.kind) {
      case Instr::Kind::kNop:
      case Instr::Kind::kAssume:  // pre-validated on the concrete path
      case Instr::Kind::kAssign: {
        Rule r;
        r.head = DtpAtom(to, DisView());
        r.body = {DtpAtom(from, DisView())};
        prog_->AddRule(std::move(r));
        break;
      }
      case Instr::Kind::kAssertFail: {
        Rule v;
        v.head = Atom{unsafe_, {}};
        v.body = {DtpAtom(from, DisView())};
        prog_->AddRule(std::move(v));
        Rule adv;
        adv.head = DtpAtom(to, DisView());
        adv.body = {DtpAtom(from, DisView())};
        prog_->AddRule(std::move(adv));
        break;
      }
      case Instr::Kind::kLoad:
        AddDisLoadRules(instr, step, from, to);
        break;
      case Instr::Kind::kStore:
        AddDisWriteRules(instr, step, from, to, /*is_cas=*/false);
        break;
      case Instr::Kind::kCas:
        AddDisWriteRules(instr, step, from, to, /*is_cas=*/true);
        break;
    }
  }

  void AddDisLoadRules(const Instr& instr, const GuessStep& step,
                       PredId from, PredId to) {
    const std::size_t x = instr.var.index();
    const dl::VarSym u0 = static_cast<dl::VarSym>(k_);
    const dl::VarSym w0 = u0 + static_cast<dl::VarSym>(k_);
    auto msg_atom = [&](PredId pred, std::optional<int> pin_pos) {
      Atom a;
      a.pred = pred;
      a.args.push_back(C(var_off_ + static_cast<Sym>(x)));
      a.args.push_back(C(ValSym(step.read_value)));
      for (std::size_t y = 0; y < k_; ++y) {
        if (y == x && pin_pos.has_value()) {
          a.args.push_back(C(TsSym(DisTs(*pin_pos))));
        } else {
          a.args.push_back(V(u0 + static_cast<dl::VarSym>(y)));
        }
      }
      return a;
    };

    if (!step.read_from_env) {
      // Pinned dis message at position p.
      const int p = step.read_dis_pos;
      Rule r;
      std::vector<Term> w;
      for (std::size_t y = 0; y < k_; ++y) {
        if (y == x) {
          const dl::VarSym wy = w0 + static_cast<dl::VarSym>(y);
          w.push_back(V(wy));
          r.natives.push_back(MaxFn(V(static_cast<dl::VarSym>(y)),
                                    C(TsSym(DisTs(p))), wy));
        } else {
          const dl::VarSym wy = w0 + static_cast<dl::VarSym>(y);
          w.push_back(V(wy));
          r.natives.push_back(MaxFn(V(static_cast<dl::VarSym>(y)),
                                    V(u0 + static_cast<dl::VarSym>(y)), wy));
        }
      }
      r.head = DtpAtom(to, w);
      r.body = {DtpAtom(from, DisView()), msg_atom(dmp_, p)};
      r.natives.push_back(
          LeqCheck(V(static_cast<dl::VarSym>(x)), C(TsSym(DisTs(p)))));
      prog_->AddRule(std::move(r));
      return;
    }
    // From an env message: one rule per unfrozen promotion gap.
    for (int h = 0; h <= guess_.StoresOn(x); ++h) {
      if (guess_.GapFrozen(x, h)) continue;
      Rule r;
      std::vector<Term> w;
      for (std::size_t y = 0; y < k_; ++y) {
        if (y == x) {
          w.push_back(C(TsSym(PlusTs(h))));
        } else {
          const dl::VarSym wy = w0 + static_cast<dl::VarSym>(y);
          w.push_back(V(wy));
          r.natives.push_back(MaxFn(V(static_cast<dl::VarSym>(y)),
                                    V(u0 + static_cast<dl::VarSym>(y)), wy));
        }
      }
      r.head = DtpAtom(to, w);
      r.body = {DtpAtom(from, DisView()), msg_atom(emp_, std::nullopt)};
      r.natives.push_back(
          LeqCheck(V(static_cast<dl::VarSym>(x)), C(TsSym(PlusTs(h)))));
      r.natives.push_back(
          LeqCheck(V(u0 + static_cast<dl::VarSym>(x)), C(TsSym(PlusTs(h)))));
      prog_->AddRule(std::move(r));
    }
  }

  // Store or CAS at guessed position p.
  void AddDisWriteRules(const Instr& instr, const GuessStep& step,
                        PredId from, PredId to, bool is_cas) {
    const std::size_t x = instr.var.index();
    const int p = step.store_pos;
    assert(p >= 1);
    const Value stored = is_cas ? step.rv_after[instr.reg2.index()]
                                : step.rv_after[instr.reg.index()];
    const dl::VarSym u0 = static_cast<dl::VarSym>(k_);
    const dl::VarSym w0 = u0 + static_cast<dl::VarSym>(k_);

    // Assembles the common body + joined view; for plain stores there is
    // no read, so the "join" is the thread view itself.
    auto build = [&](bool as_msg) {
      Rule r;
      std::vector<Term> w;
      for (std::size_t y = 0; y < k_; ++y) {
        if (y == x) {
          w.push_back(C(TsSym(DisTs(p))));
          continue;
        }
        if (!is_cas) {
          w.push_back(V(static_cast<dl::VarSym>(y)));
        } else {
          const dl::VarSym wy = w0 + static_cast<dl::VarSym>(y);
          w.push_back(V(wy));
          r.natives.push_back(MaxFn(V(static_cast<dl::VarSym>(y)),
                                    V(u0 + static_cast<dl::VarSym>(y)), wy));
        }
      }
      r.body = {DtpAtom(from, DisView())};
      if (is_cas) {
        Atom msg;
        msg.pred = step.read_from_env ? emp_ : dmp_;
        msg.args.push_back(C(var_off_ + static_cast<Sym>(x)));
        msg.args.push_back(C(ValSym(step.read_value)));
        for (std::size_t y = 0; y < k_; ++y) {
          if (y == x && !step.read_from_env) {
            msg.args.push_back(C(TsSym(DisTs(p - 1))));
          } else {
            msg.args.push_back(V(u0 + static_cast<dl::VarSym>(y)));
          }
        }
        r.body.push_back(std::move(msg));
        if (step.read_from_env) {
          // Clone sits at the top of gap p-1, directly below the store.
          r.natives.push_back(LeqCheck(V(u0 + static_cast<dl::VarSym>(x)),
                                       C(TsSym(PlusTs(p - 1)))));
          r.natives.push_back(LeqCheck(V(static_cast<dl::VarSym>(x)),
                                       C(TsSym(PlusTs(p - 1)))));
        } else {
          r.natives.push_back(LeqCheck(V(static_cast<dl::VarSym>(x)),
                                       C(TsSym(DisTs(p - 1)))));
        }
      } else {
        // Plain store into gap p-1.
        r.natives.push_back(LeqCheck(V(static_cast<dl::VarSym>(x)),
                                     C(TsSym(PlusTs(p - 1)))));
      }
      if (as_msg) {
        Atom head;
        head.pred = dmp_;
        head.args.push_back(C(var_off_ + static_cast<Sym>(x)));
        head.args.push_back(C(ValSym(stored)));
        head.args.insert(head.args.end(), w.begin(), w.end());
        r.head = std::move(head);
      } else {
        r.head = DtpAtom(to, w);
      }
      return r;
    };
    prog_->AddRule(build(/*as_msg=*/true));
    prog_->AddRule(build(/*as_msg=*/false));
  }

  void AddGoalRules() {
    if (!options_.goal_message.has_value()) return;
    const auto [gx, gv] = *options_.goal_message;
    for (PredId pred : {emp_, dmp_}) {
      Rule r;
      r.head = Atom{unsafe_, {}};
      Atom msg;
      msg.pred = pred;
      msg.args.push_back(C(VarSymOf(gx)));
      msg.args.push_back(C(ValSym(gv)));
      for (std::size_t y = 0; y < k_; ++y) {
        msg.args.push_back(V(static_cast<dl::VarSym>(y)));
      }
      r.body = {std::move(msg)};
      prog_->AddRule(std::move(r));
    }
  }

  const SimplSystem& sys_;
  const DisGuess& guess_;
  const MakePOptions& options_;
  std::unique_ptr<dl::Program> prog_;
  std::size_t k_ = 0;  // |Var|
  std::size_t m_ = 0;  // env registers
  Sym val_off_ = 0;
  Sym node_off_ = 0;
  Sym var_off_ = 0;
  PredId emp_ = 0, dmp_ = 0, etp_ = 0, unsafe_ = 0;
};

}  // namespace

MakePResult MakeP(const SimplSystem& sys, const DisGuess& guess,
                  const MakePOptions& options) {
  Builder builder(sys, guess, options);
  return builder.Build();
}

}  // namespace rapar
