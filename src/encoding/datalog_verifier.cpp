#include "encoding/datalog_verifier.h"

#include "datalog/engine.h"
#include "dlopt/pred_graph.h"
#include "dlopt/width.h"

namespace rapar {

DatalogVerdict DatalogVerify(const SimplSystem& sys,
                             const DatalogVerifierOptions& options) {
  DatalogVerdict verdict;
  bool complete = true;
  std::vector<DisGuess> guesses =
      EnumerateDisGuesses(sys, options.guess, &complete);
  verdict.exhaustive = complete;
  verdict.guesses = guesses.size();

  MakePOptions mp;
  mp.goal_message = options.goal_message;

  dl::Engine engine;
  dl::EvalOptions eval_opts;
  eval_opts.max_tuples = options.max_tuples_per_query;

  for (const DisGuess& guess : guesses) {
    MakePResult q = MakeP(sys, guess, mp);
    verdict.total_rules += q.prog->size();

    const dl::Program* prog = q.prog.get();
    dlopt::OptimizeResult opt;
    if (options.enable_dlopt) {
      opt = dlopt::OptimizeForQuery(*q.prog, q.goal);
      verdict.dlopt += opt.stats;
      prog = &opt.prog;
    }
    verdict.total_rules_after += prog->size();
    if (verdict.width_report.empty()) {
      const dlopt::PredGraph graph = dlopt::PredGraph::Build(*prog);
      verdict.width_report =
          dlopt::AnalyzeWidth(*prog, graph, q.goal.pred)
              .ToString(*prog, graph);
    }

    bool derived = false;
    try {
      derived = engine.Solve(*prog, q.goal, eval_opts);
    } catch (const std::runtime_error&) {
      verdict.exhaustive = false;  // budget blown: result inconclusive
    }
    ++verdict.queries_evaluated;
    verdict.total_tuples = engine.total_stats().tuples;
    verdict.rule_firings = engine.total_stats().rule_firings;
    verdict.join_attempts = engine.total_stats().join_attempts;
    if (derived) {
      verdict.unsafe = true;
      verdict.witness_guess = guess.ToString(sys);
      return verdict;
    }
  }
  return verdict;
}

}  // namespace rapar
