#include "encoding/datalog_verifier.h"

#include "datalog/engine.h"

namespace rapar {

DatalogVerdict DatalogVerify(const SimplSystem& sys,
                             const DatalogVerifierOptions& options) {
  DatalogVerdict verdict;
  bool complete = true;
  std::vector<DisGuess> guesses =
      EnumerateDisGuesses(sys, options.guess, &complete);
  verdict.exhaustive = complete;
  verdict.guesses = guesses.size();

  MakePOptions mp;
  mp.goal_message = options.goal_message;

  for (const DisGuess& guess : guesses) {
    MakePResult q = MakeP(sys, guess, mp);
    verdict.total_rules += q.prog->size();
    dl::EvalStats stats;
    dl::EvalOptions eval_opts;
    eval_opts.max_tuples = options.max_tuples_per_query;
    bool derived = false;
    try {
      derived = dl::Query(*q.prog, q.goal, &stats, eval_opts);
    } catch (const std::runtime_error&) {
      verdict.exhaustive = false;  // budget blown: result inconclusive
    }
    ++verdict.queries_evaluated;
    verdict.total_tuples += stats.tuples;
    if (derived) {
      verdict.unsafe = true;
      verdict.witness_guess = guess.ToString(sys);
      return verdict;
    }
  }
  return verdict;
}

}  // namespace rapar
