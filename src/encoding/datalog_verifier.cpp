#include "encoding/datalog_verifier.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <semaphore>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/sharded_counter.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "datalog/engine.h"
#include "dlopt/pred_graph.h"
#include "dlopt/width.h"

namespace rapar {

namespace {

// Cooperative wall-clock deadline (time_budget_ms). Checked once per
// solve, so the clock read is negligible next to the work it bounds.
class Deadline {
 public:
  explicit Deadline(long long ms) {
    if (ms > 0) {
      limited_ = true;
      at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }
  }
  bool Expired() const {
    return limited_ && std::chrono::steady_clock::now() > at_;
  }

 private:
  bool limited_ = false;
  std::chrono::steady_clock::time_point at_;
};

// Everything one guess contributes to the verdict. Produced by exactly one
// worker, read only after the pool has quiesced; schedule-independent
// except for stats.index_builds (see the header's determinism rule).
struct GuessOutcome {
  bool evaluated = false;
  bool derived = false;
  bool budget_aborted = false;
  std::size_t rules_emitted = 0;
  std::size_t rules_after = 0;
  dlopt::DlOptStats dlopt;
  dl::EvalStats stats;
  std::string witness;       // filled when derived
  std::string width_report;  // filled for guess 0 only

  bool terminating() const { return derived || budget_aborted; }
};

// Per-worker solver: owns the dl::Engine so arena reuse and EDB snapshot
// rollback keep working across the guesses this worker happens to solve.
// A caller may lend a warm engine instead (DatalogVerifierOptions::
// warm_engine, serve daemon), in which case arena reuse extends across
// verifier invocations and the cumulative fact_reuses counter is
// rebased so the verdict still reports this request's reuses only.
class GuessSolver {
 public:
  GuessSolver(const SimplSystem& sys, const DatalogVerifierOptions& options)
      : sys_(sys),
        options_(options),
        engine_(options.warm_engine != nullptr ? *options.warm_engine
                                               : own_engine_),
        fact_reuse_base_(engine_.fact_reuses()) {
    mp_.goal_message = options.goal_message;
    eval_.max_tuples = options.max_tuples_per_query;
    eval_.engine = options.engine;
    dlopt_.trace = options.trace;
  }

  GuessOutcome Solve(const DisGuess& guess, std::size_t index,
                     bool want_width_report) {
    obs::ScopedSpan span(options_.trace, "guess");
    GuessOutcome out;
    out.evaluated = true;
    MakePResult q = [&] {
      obs::ScopedSpan s(options_.trace, "makep");
      return MakeP(sys_, guess, mp_);
    }();
    out.rules_emitted = q.prog->size();

    const dl::Program* prog = q.prog.get();
    dlopt::OptimizeResult opt;
    dl::JoinHints hints;
    std::optional<dlopt::PredGraph> graph;
    eval_.hints = nullptr;
    if (options_.enable_dlopt) {
      obs::ScopedSpan s(options_.trace, "dlopt");
      opt = dlopt::OptimizeForQuery(*q.prog, q.goal, dlopt_);
      out.dlopt = opt.stats;
      prog = &opt.prog;
      // The width/SCC classification doubles as the engine's join-order
      // growth hint (EDB < non-recursive IDB < recursive IDB).
      graph.emplace(dlopt::PredGraph::Build(*prog));
      hints = dlopt::MakeJoinHints(*graph);
      eval_.hints = &hints;
    }
    out.rules_after = prog->size();
    if (want_width_report) {
      // Reuse the join-hint graph instead of building a second one for
      // the report (they describe the same optimized program).
      if (!graph.has_value()) graph.emplace(dlopt::PredGraph::Build(*prog));
      out.width_report = dlopt::AnalyzeWidth(*prog, *graph, q.goal.pred)
                             .ToString(*prog, *graph);
    }

    {
      obs::ScopedSpan s(options_.trace, "eval");
      try {
        out.derived = engine_.Solve(*prog, q.goal, eval_);
      } catch (const dl::BudgetExceeded&) {
        out.budget_aborted = true;  // partial stats of the solve still count
      }
    }
    out.stats = engine_.last_stats();
    if (out.derived) out.witness = guess.ToString(sys_);
    if (span.active()) {
      span.set_args(StrCat("{\"index\":", index,
                           ",\"rules\":", out.rules_emitted,
                           ",\"rules_after\":", out.rules_after,
                           ",\"tuples\":", out.stats.tuples,
                           ",\"derived\":", out.derived ? "true" : "false",
                           "}"));
    }
    return out;
  }

  std::size_t fact_reuses() const {
    return engine_.fact_reuses() - fact_reuse_base_;
  }

 private:
  const SimplSystem& sys_;
  const DatalogVerifierOptions& options_;
  MakePOptions mp_;
  dl::EvalOptions eval_;
  dlopt::DlOptOptions dlopt_;
  dl::Engine own_engine_;
  dl::Engine& engine_;
  const std::size_t fact_reuse_base_;
};

// Folds one evaluated guess into the verdict aggregates (enumeration
// order; only the scanned prefix is ever passed here).
void Accumulate(DatalogVerdict& v, const GuessOutcome& o) {
  ++v.queries_evaluated;
  v.total_rules += o.rules_emitted;
  v.total_rules_after += o.rules_after;
  v.dlopt += o.dlopt;
  v.total_tuples += o.stats.tuples;
  v.rule_firings += o.stats.rule_firings;
  v.join_attempts += o.stats.join_attempts;
  v.index_probes += o.stats.index_probes;
  v.index_hits += o.stats.index_hits;
  v.index_builds += o.stats.index_builds;
  v.merge_scans += o.stats.merge_scans;
  v.delta_retracts += o.stats.delta_retracts;
  v.delta_asserts += o.stats.delta_asserts;
  v.delta_reseeded_strata += o.stats.delta_reseeded_strata;
  if (v.width_report.empty() && !o.width_report.empty()) {
    v.width_report = o.width_report;
  }
}

// Seals the verdict for a terminating event at *global* guess index
// `idx`. `scanned` is the guess count to report (resume base + solves up
// to and including the terminating one); with single-shard, no-resume
// options it equals idx + 1.
void FinishEarly(DatalogVerdict& v, std::size_t idx, std::size_t scanned,
                 const GuessOutcome& o) {
  v.guesses = scanned;
  v.parallel.early_exit_index = idx;
  v.terminating_index = idx;
  if (o.derived) {
    v.unsafe = true;
    v.witness_guess = o.witness;
    // Definitive regardless of the unscanned remainder.
    v.exhaustive = true;
  } else {
    v.exhaustive = false;
    v.budget_aborted_guess = idx;
  }
}

void FetchMin(std::atomic<std::size_t>& a, std::size_t v) {
  std::size_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Emits a scan-position checkpoint through the configured sink (no-op
// without one) and counts the write. `next_index` is the first global
// index a resumed run must look at; `scanned` the cumulative solve count
// to seed resume_scanned_base with.
void EmitCheckpoint(const DatalogVerifierOptions& options,
                    DatalogVerdict& verdict, std::size_t next_index,
                    std::size_t scanned, bool exhausted) {
  if (!options.checkpoint_sink) return;
  CursorCheckpoint cp;
  cp.shard_index = options.guess.shard_index;
  cp.shard_count = options.guess.shard_count;
  cp.next_index = next_index;
  cp.scanned = scanned;
  cp.exhausted = exhausted;
  options.checkpoint_sink(cp);
  ++verdict.checkpoint_writes;
}

// Stamps the shard identity / resume offset this run scans under.
void StampShard(DatalogVerdict& v, const DatalogVerifierOptions& options) {
  v.shard_index = options.guess.shard_index;
  v.shard_count = options.guess.shard_count;
  v.resume_offset = options.guess.start_index;
}

// --- serial driver ----------------------------------------------------------

// threads == 1: the legacy in-order loop on the calling thread, one
// engine, streaming enumeration. The parallel driver's results are defined
// to match this path bit for bit (modulo index_builds/fact_reuses).
DatalogVerdict SerialVerify(const SimplSystem& sys,
                            const DatalogVerifierOptions& options) {
  DatalogVerdict verdict;
  verdict.parallel.threads = 1;
  StampShard(verdict, options);
  DisGuessCursor cursor(sys, options.guess);
  GuessSolver solver(sys, options);
  const Deadline deadline(options.time_budget_ms);
  const std::size_t batch =
      options.batch_size == 0 ? 1 : options.batch_size;

  // Scan position. `scanned` is the verdict's guess accounting (resume
  // base + solves here); `next_unscanned` the first global index a
  // resumed run must revisit. With default options scanned == global
  // index, preserving the legacy counts exactly.
  std::size_t scanned = options.resume_scanned_base;
  std::size_t solves_this_run = 0;
  std::size_t since_checkpoint = 0;
  std::size_t next_unscanned = options.guess.start_index;

  std::vector<IndexedGuess> chunk;
  for (;;) {
    chunk.clear();
    const std::size_t n = cursor.NextChunk(batch, &chunk);
    if (n == 0) break;
    ++verdict.parallel.batches;
    for (IndexedGuess& ig : chunk) {
      const std::size_t idx = ig.index;
      if (deadline.Expired()) {
        cursor.Cancel();
        verdict.deadline_hit = true;
        verdict.exhaustive = false;
        verdict.guesses = scanned;
        verdict.fact_reuses = solver.fact_reuses();
        obs::TraceInstant(options.trace, "deadline",
                          StrCat("{\"guess\":", idx, "}"));
        EmitCheckpoint(options, verdict, next_unscanned, scanned, false);
        return verdict;
      }
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        // External cancel: truncated like a deadline, but deadline_hit
        // stays false — no budget expired.
        cursor.Cancel();
        verdict.exhaustive = false;
        verdict.guesses = scanned;
        verdict.fact_reuses = solver.fact_reuses();
        obs::TraceInstant(options.trace, "cancelled",
                          StrCat("{\"guess\":", idx, "}"));
        EmitCheckpoint(options, verdict, next_unscanned, scanned, false);
        return verdict;
      }
      GuessOutcome o = solver.Solve(
          ig.guess, idx, /*want_width_report=*/solves_this_run == 0);
      ++verdict.parallel.solves;
      ++scanned;
      ++solves_this_run;
      ++since_checkpoint;
      next_unscanned = idx + 1;
      Accumulate(verdict, o);
      if (o.terminating()) {
        cursor.Cancel();
        obs::TraceInstant(options.trace,
                          o.derived ? "early_exit" : "budget_abort",
                          StrCat("{\"guess\":", idx, "}"));
        FinishEarly(verdict, idx, scanned, o);
        verdict.fact_reuses = solver.fact_reuses();
        if (o.budget_aborted) {
          // Restartable: a rerun with a larger budget resumes *at* the
          // aborted guess, so its (discarded) solve is not in `scanned`.
          EmitCheckpoint(options, verdict, idx, scanned - 1, false);
        }
        return verdict;
      }
      if (options.scan_limit != 0 && solves_this_run >= options.scan_limit) {
        cursor.Cancel();
        verdict.scan_limit_hit = true;
        verdict.exhaustive = false;
        verdict.guesses = scanned;
        verdict.fact_reuses = solver.fact_reuses();
        obs::TraceInstant(options.trace, "scan_limit",
                          StrCat("{\"guess\":", idx, "}"));
        EmitCheckpoint(options, verdict, next_unscanned, scanned, false);
        return verdict;
      }
      if (options.checkpoint_every != 0 &&
          since_checkpoint >= options.checkpoint_every) {
        since_checkpoint = 0;
        EmitCheckpoint(options, verdict, next_unscanned, scanned, false);
      }
    }
  }
  verdict.guesses = options.resume_scanned_base + cursor.produced();
  verdict.exhaustive = cursor.complete();
  verdict.fact_reuses = solver.fact_reuses();
  // complete() means nothing is left to resume; a hit enumeration cap
  // leaves a resumable position (rerun with a larger max_guesses).
  EmitCheckpoint(options, verdict, next_unscanned, verdict.guesses,
                 cursor.complete());
  return verdict;
}

// --- parallel driver --------------------------------------------------------

struct Batch {
  // Global enumeration index of each guess in the chunk (one entry per
  // outcome slot; non-contiguous under sharding).
  std::vector<std::size_t> indices;
  std::vector<GuessOutcome> outcomes;  // one slot per guess in the chunk
  std::string error;                   // first worker exception, if any
  // Guesses of this chunk solved so far — the dispatcher's checkpoint
  // frontier advances over the longest prefix of fully-solved batches.
  std::atomic<std::size_t> done{0};
};

DatalogVerdict ParallelVerify(const SimplSystem& sys,
                              const DatalogVerifierOptions& options,
                              unsigned threads) {
  DatalogVerdict verdict;
  ThreadPool pool(threads);
  const unsigned workers = pool.size();
  verdict.parallel.threads = workers;
  StampShard(verdict, options);

  std::vector<std::unique_ptr<GuessSolver>> solvers;
  solvers.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    solvers.push_back(std::make_unique<GuessSolver>(sys, options));
  }

  const std::size_t batch_size =
      options.batch_size == 0 ? 1 : options.batch_size;
  // Buffer a few chunks per worker so the producer stays ahead without
  // materializing the guess space.
  DisGuessCursor cursor(sys, options.guess, batch_size * workers * 4);

  // First terminating event wins: the token is the fast "something
  // happened" flag, stop_idx the exact ordered cut-off. A worker may skip
  // a guess only when its index is strictly above stop_idx, so the final
  // minimum's prefix is always fully evaluated.
  CancellationToken cancel;
  std::atomic<std::size_t> stop_idx{kNoGuessIndex};
  const Deadline deadline(options.time_budget_ms);
  std::atomic<bool> deadline_fired{false};
  std::atomic<bool> ext_cancelled{false};
  ShardedCounter solves;
  ShardedCounter skipped;

  // Batch slots live in a deque (stable addresses) created by the
  // dispatcher before Submit and read after Wait; each is written by
  // exactly one task in between.
  std::deque<Batch> batches;
  std::mutex batches_m;
  // Backpressure: bound the chunks owned by queued/running tasks.
  std::counting_semaphore<> slots(static_cast<std::ptrdiff_t>(workers) * 4);

  // Contiguous-completed frontier over the dispatch order: the longest
  // prefix of fully-solved batches. Everything at or below it is done, so
  // it is a safe (conservative) resume point. Only the dispatcher appends
  // to `batches`; workers touch the atomic `done` counters only.
  const auto frontier = [&](std::size_t* next, std::size_t* count) {
    *next = options.guess.start_index;
    *count = 0;
    for (const Batch& b : batches) {
      if (b.done.load(std::memory_order_acquire) != b.indices.size()) break;
      if (b.indices.empty()) continue;
      *next = b.indices.back() + 1;
      *count += b.indices.size();
    }
  };

  // Index of the first solve of this run — the one that renders the
  // width report (set before the first Submit, read-only afterwards).
  std::size_t first_index = kNoGuessIndex;
  // scan_limit bounds *dispatch*: the first scan_limit guesses of the
  // enumeration order are handed out, nothing beyond — deterministic at
  // any thread count.
  std::size_t dispatched = 0;
  bool scan_limited = false;
  std::size_t cp_frontier_count = 0;  // frontier solves already checkpointed

  std::vector<IndexedGuess> chunk;
  while (!cancel.cancelled()) {
    if (deadline.Expired()) {
      deadline_fired.store(true, std::memory_order_relaxed);
      cancel.Cancel();
      break;
    }
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      ext_cancelled.store(true, std::memory_order_relaxed);
      cancel.Cancel();
      break;
    }
    std::size_t want = batch_size;
    if (options.scan_limit != 0) {
      if (dispatched >= options.scan_limit) {
        scan_limited = true;
        break;
      }
      want = std::min(want, options.scan_limit - dispatched);
    }
    chunk.clear();
    const std::size_t n = cursor.NextChunk(want, &chunk);
    if (n == 0) break;
    slots.acquire();
    Batch* slot;
    {
      std::lock_guard<std::mutex> lock(batches_m);
      batches.emplace_back();
      slot = &batches.back();
    }
    slot->indices.reserve(n);
    for (const IndexedGuess& ig : chunk) slot->indices.push_back(ig.index);
    slot->outcomes.resize(n);
    if (first_index == kNoGuessIndex) first_index = slot->indices.front();
    dispatched += n;
    pool.Submit([&, slot, guesses = std::move(chunk)] {
      const int w = ThreadPool::CurrentWorkerIndex();
      GuessSolver& solver = *solvers[static_cast<std::size_t>(w)];
      try {
        for (std::size_t i = 0; i < guesses.size(); ++i) {
          const std::size_t idx = slot->indices[i];
          if (idx > stop_idx.load(std::memory_order_relaxed)) {
            skipped.Add(guesses.size() - i);
            break;
          }
          if (deadline.Expired()) {
            deadline_fired.store(true, std::memory_order_relaxed);
            cancel.Cancel();
            skipped.Add(guesses.size() - i);
            break;
          }
          if (options.cancel != nullptr && options.cancel->cancelled()) {
            ext_cancelled.store(true, std::memory_order_relaxed);
            cancel.Cancel();
            skipped.Add(guesses.size() - i);
            break;
          }
          GuessOutcome o = solver.Solve(
              guesses[i].guess, idx, /*want_width_report=*/idx == first_index);
          solves.Add(1);
          const bool terminating = o.terminating();
          const bool derived = o.derived;
          slot->outcomes[i] = std::move(o);
          slot->done.fetch_add(1, std::memory_order_release);
          if (terminating) {
            FetchMin(stop_idx, idx);
            cancel.Cancel();
            obs::TraceInstant(options.trace,
                              derived ? "early_exit" : "budget_abort",
                              StrCat("{\"guess\":", idx, "}"));
            // Indices above idx in this batch can no longer matter.
            skipped.Add(guesses.size() - i - 1);
            break;
          }
        }
      } catch (const std::exception& e) {
        slot->error = e.what();
        cancel.Cancel();
      }
      slots.release();
    });
    chunk = {};  // moved-from; restore a valid empty vector
    if (options.checkpoint_every != 0 && options.checkpoint_sink &&
        stop_idx.load(std::memory_order_relaxed) == kNoGuessIndex) {
      std::size_t f_next = 0;
      std::size_t f_count = 0;
      frontier(&f_next, &f_count);
      if (f_count - cp_frontier_count >= options.checkpoint_every) {
        cp_frontier_count = f_count;
        EmitCheckpoint(options, verdict, f_next,
                       options.resume_scanned_base + f_count, false);
      }
    }
  }
  // Terminating events only occur in dispatched chunks, and chunks are
  // dispatched in enumeration order — once the token fires, every index
  // at or below the eventual minimum has already been handed out, so the
  // rest of the enumeration is dead weight.
  cursor.Cancel();
  pool.Wait();

  for (const Batch& b : batches) {
    if (!b.error.empty()) {
      throw std::runtime_error("datalog verifier worker failed: " + b.error);
    }
  }

  // The deterministic stop: the lowest-index terminating outcome. This can
  // only be lower than the racy stop_idx snapshot workers saw, never
  // higher, and its whole prefix is evaluated (skips happen strictly above
  // some stop_idx value >= the final minimum).
  std::size_t stop = kNoGuessIndex;
  const GuessOutcome* event = nullptr;
  for (const Batch& b : batches) {
    for (std::size_t i = 0; i < b.outcomes.size(); ++i) {
      const GuessOutcome& o = b.outcomes[i];
      if (o.evaluated && o.terminating() && b.indices[i] < stop) {
        stop = b.indices[i];
        event = &o;
      }
    }
  }

  verdict.parallel.batches = batches.size();
  verdict.parallel.steals = pool.steals();
  verdict.parallel.solves = solves.Total();
  verdict.parallel.skipped = skipped.Total();

  std::size_t evaluated = 0;
  for (const Batch& b : batches) {
    for (std::size_t i = 0; i < b.outcomes.size(); ++i) {
      const GuessOutcome& o = b.outcomes[i];
      if (b.indices[i] > stop) {
        verdict.parallel.discarded += o.evaluated ? 1 : 0;
        continue;
      }
      // A deadline abort can leave unevaluated gaps below `stop`; in
      // deadline-free runs every index at or below it was solved.
      if (!o.evaluated) continue;
      ++evaluated;
      Accumulate(verdict, o);
    }
  }
  for (const auto& solver : solvers) {
    verdict.fact_reuses += solver->fact_reuses();
  }

  const std::size_t base = options.resume_scanned_base;
  if (event != nullptr) {
    // Deadline-free runs evaluate exactly the emitted indices <= stop, so
    // base + evaluated matches the serial driver's scanned count.
    FinishEarly(verdict, stop, base + evaluated, *event);
    if (!event->derived) {
      // Budget abort: restartable at the aborted guess (its discarded
      // solve is excluded from the resume base, it will be redone).
      EmitCheckpoint(options, verdict, stop, base + evaluated - 1, false);
    }
  } else if (deadline_fired.load(std::memory_order_relaxed)) {
    verdict.deadline_hit = true;
    verdict.exhaustive = false;
    // Not a clean prefix (workers stop where the deadline caught them);
    // report the number of solves that made it into the aggregates.
    verdict.guesses = base + evaluated;
    obs::TraceInstant(options.trace, "deadline",
                      StrCat("{\"solves\":", evaluated, "}"));
    // Resume conservatively from the contiguous-completed frontier;
    // solves in the ragged tail beyond it will be redone.
    std::size_t f_next = 0;
    std::size_t f_count = 0;
    frontier(&f_next, &f_count);
    EmitCheckpoint(options, verdict, f_next, base + f_count, false);
  } else if (ext_cancelled.load(std::memory_order_relaxed)) {
    // External cancel: truncated, inconclusive, no deadline blame.
    verdict.exhaustive = false;
    verdict.guesses = base + evaluated;
    obs::TraceInstant(options.trace, "cancelled",
                      StrCat("{\"solves\":", evaluated, "}"));
    std::size_t f_next = 0;
    std::size_t f_count = 0;
    frontier(&f_next, &f_count);
    EmitCheckpoint(options, verdict, f_next, base + f_count, false);
  } else if (scan_limited) {
    // Every dispatched guess was solved (no event, no deadline), so the
    // frontier covers the full dispatched prefix.
    verdict.scan_limit_hit = true;
    verdict.exhaustive = false;
    verdict.guesses = base + evaluated;
    obs::TraceInstant(options.trace, "scan_limit",
                      StrCat("{\"solves\":", evaluated, "}"));
    std::size_t f_next = 0;
    std::size_t f_count = 0;
    frontier(&f_next, &f_count);
    EmitCheckpoint(options, verdict, f_next, base + f_count, false);
  } else {
    verdict.guesses = base + cursor.produced();
    verdict.exhaustive = cursor.complete();
    std::size_t f_next = 0;
    std::size_t f_count = 0;
    frontier(&f_next, &f_count);
    EmitCheckpoint(options, verdict, f_next, verdict.guesses,
                   cursor.complete());
  }
  return verdict;
}

}  // namespace

DatalogVerdict DatalogVerify(const SimplSystem& sys,
                             const DatalogVerifierOptions& options) {
  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads == 1) return SerialVerify(sys, options);
  // The parallel driver owns one engine per worker; a lent warm engine
  // would be shared (and raced) across workers, so it only applies to
  // the serial path.
  DatalogVerifierOptions par = options;
  par.warm_engine = nullptr;
  return ParallelVerify(sys, par, threads);
}

}  // namespace rapar
