#include "encoding/datalog_verifier.h"

#include "datalog/engine.h"
#include "dlopt/pred_graph.h"
#include "dlopt/width.h"

namespace rapar {

DatalogVerdict DatalogVerify(const SimplSystem& sys,
                             const DatalogVerifierOptions& options) {
  DatalogVerdict verdict;
  bool complete = true;
  std::vector<DisGuess> guesses =
      EnumerateDisGuesses(sys, options.guess, &complete);
  verdict.exhaustive = complete;
  verdict.guesses = guesses.size();

  MakePOptions mp;
  mp.goal_message = options.goal_message;

  dl::Engine engine;
  dl::EvalOptions eval_opts;
  eval_opts.max_tuples = options.max_tuples_per_query;
  eval_opts.engine = options.engine;

  auto finish_stats = [&] {
    verdict.total_tuples = engine.total_stats().tuples;
    verdict.rule_firings = engine.total_stats().rule_firings;
    verdict.join_attempts = engine.total_stats().join_attempts;
    verdict.index_probes = engine.total_stats().index_probes;
    verdict.index_hits = engine.total_stats().index_hits;
    verdict.index_builds = engine.total_stats().index_builds;
    verdict.fact_reuses = engine.fact_reuses();
  };

  for (const DisGuess& guess : guesses) {
    MakePResult q = MakeP(sys, guess, mp);
    verdict.total_rules += q.prog->size();

    const dl::Program* prog = q.prog.get();
    dlopt::OptimizeResult opt;
    dl::JoinHints hints;
    eval_opts.hints = nullptr;
    if (options.enable_dlopt) {
      opt = dlopt::OptimizeForQuery(*q.prog, q.goal);
      verdict.dlopt += opt.stats;
      prog = &opt.prog;
      // The width/SCC classification doubles as the engine's join-order
      // growth hint (EDB < non-recursive IDB < recursive IDB).
      const dlopt::PredGraph graph = dlopt::PredGraph::Build(*prog);
      hints = dlopt::MakeJoinHints(graph);
      eval_opts.hints = &hints;
    }
    verdict.total_rules_after += prog->size();
    if (verdict.width_report.empty()) {
      const dlopt::PredGraph graph = dlopt::PredGraph::Build(*prog);
      verdict.width_report =
          dlopt::AnalyzeWidth(*prog, graph, q.goal.pred)
              .ToString(*prog, graph);
    }

    bool derived = false;
    try {
      derived = engine.Solve(*prog, q.goal, eval_opts);
    } catch (const dl::BudgetExceeded&) {
      verdict.exhaustive = false;  // budget blown: result inconclusive
    }
    ++verdict.queries_evaluated;
    finish_stats();
    if (derived) {
      verdict.unsafe = true;
      verdict.witness_guess = guess.ToString(sys);
      return verdict;
    }
  }
  return verdict;
}

}  // namespace rapar
