// Guessed dis-thread run skeletons for the makeP encoding (§4.1).
//
// makeP is a *non-deterministic* polynomial-time procedure: each execution
// guesses the dis part of a run and emits one Datalog query instance. A
// guess pins, for every dis thread, its control path and all data it
// computes (register valuations / read values), and, per shared variable,
// the final modification order of dis stores including CAS glue — i.e.
// everything except the message views, which the Datalog derivation
// computes. This keeps the emitted program sound: with the dis part fixed,
// monotone evaluation cannot recombine incompatible dis branches.
//
// The enumerator below realises the nondeterminism by exhaustive
// enumeration with pruning; it is exponential in the dis programs (as the
// NP guess must be) and intended for the small instances the Datalog
// backend is exercised on. Two front ends share one enumeration core:
//
//   * EnumerateDisGuesses — materializes every guess into a vector
//     (legacy API, fine for tests and small systems);
//   * DisGuessCursor — streams guesses in enumeration order through a
//     bounded buffer, so consumers (the parallel verification driver)
//     pull chunks on demand instead of holding up to max_guesses = 200'000
//     skeletons in memory, and can cancel enumeration the moment a verdict
//     is decided.
//
// Sharding & resume: the enumeration order is deterministic, so every
// guess has a stable *global index*. GuessEnumOptions can restrict a
// cursor to one residue class of that order (shard i of N sees exactly
// the indices ≡ i mod N) and/or skip a prefix (start_index, for resuming
// an aborted scan). Both filters only suppress *emission* — the global
// index keeps counting, so all shards agree on which guess is which and
// the max_guesses cap cuts the same global prefix everywhere. A
// CursorCheckpoint serializes a scan position (shard identity + first
// unscanned global index) as versioned JSON.
#ifndef RAPAR_ENCODING_DIS_GUESS_H_
#define RAPAR_ENCODING_DIS_GUESS_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/expected.h"
#include "simplified/transitions.h"

namespace rapar {

// One annotated step of a guessed dis-thread path.
struct GuessStep {
  std::uint32_t edge = 0;  // CFA edge id of this thread
  // Loads and CAS loads: the value read, and the source.
  Value read_value = -1;   // -1: no read
  bool read_from_env = false;
  // If reading a dis message: its final position in the variable's
  // guessed sequence (0 = init message).
  int read_dis_pos = -1;
  // Stores and CAS stores: final position (>= 1) in the variable's
  // guessed modification order.
  int store_pos = -1;
  // The register valuation *after* this step (concrete along the path).
  std::vector<Value> rv_after;
};

struct ThreadGuess {
  std::vector<GuessStep> steps;
  // True if the path traverses an `assert false` edge.
  bool hits_assert = false;
};

// One guessed dis store cell in a variable's final modification order.
struct MemCell {
  Value val = 0;
  int thread = -1;     // dis thread index that performs the store
  int step_idx = -1;   // index into that thread's step list
  bool glued = false;  // CAS store: the gap below is frozen
};

struct DisGuess {
  std::vector<ThreadGuess> threads;
  // mem[x][p-1] describes the dis store at position p (init at position 0
  // is implicit: value d_init, never glued).
  std::vector<std::vector<MemCell>> mem;

  // Number of dis stores on x.
  int StoresOn(std::size_t x) const { return static_cast<int>(mem[x].size()); }
  // A gap h on x is frozen iff the store at position h+1 is glued.
  bool GapFrozen(std::size_t x, int gap) const {
    return gap + 1 <= StoresOn(x) &&
           mem[x][static_cast<std::size_t>(gap)].glued;
  }

  std::string ToString(const SimplSystem& sys) const;
};

struct GuessEnumOptions {
  // Hard cap on the *global* enumeration index: enumeration stops once
  // max_guesses guesses exist in the global order, regardless of how many
  // this shard emitted. With shard_count = 1 and start_index = 0 this is
  // exactly the legacy "number of guesses produced" cap.
  std::size_t max_guesses = 200'000;
  // Stride sharding: emit only guesses whose global index ≡ shard_index
  // (mod shard_count). The default (0 of 1) emits everything.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  // Resume: additionally suppress guesses with global index < start_index
  // (they were scanned by a previous run).
  std::size_t start_index = 0;
};

// A serializable scan position: enough to reconstruct the remaining
// enumeration of one shard. `next_index` is the first global index not
// yet scanned by this shard's run (every index of the shard's residue
// class below it is done); `scanned` carries the shard's cumulative
// solve count across prior runs so a resumed verdict's guess accounting
// matches an uninterrupted run; `exhausted` means the enumeration
// finished and there is nothing to resume.
struct CursorCheckpoint {
  static constexpr int kSchemaVersion = 1;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t next_index = 0;
  std::size_t scanned = 0;
  bool exhausted = false;

  // Versioned JSON via common/json. FromJson validates shape, schema
  // version and field ranges (shard_index < shard_count, a corrupted or
  // version-mismatched document is an error, never a zeroed checkpoint).
  std::string ToJson(bool pretty = false) const;
  static Expected<CursorCheckpoint> FromJson(std::string_view text);
};

// Enumerates all valid dis-run guesses of `sys` (up to the cap). Register
// effects, assumes and CAS value-matching are checked during enumeration;
// view feasibility is left to the Datalog derivation. Sets *complete to
// false if the cap was hit. Thin wrapper over the streaming enumeration
// core; yields exactly the DisGuessCursor sequence.
std::vector<DisGuess> EnumerateDisGuesses(const SimplSystem& sys,
                                          const GuessEnumOptions& options,
                                          bool* complete);

// One streamed guess together with its global enumeration index (stable
// across shard/resume filters — see GuessEnumOptions).
struct IndexedGuess {
  std::size_t index = 0;
  DisGuess guess;
};

// Resumable streaming enumeration: produces the same guesses in the same
// order as EnumerateDisGuesses, but on demand. A producer thread runs the
// enumeration into a bounded buffer (backpressure keeps memory constant in
// the guess count); NextChunk pops guesses in order. Cancel() aborts the
// remaining enumeration — the consumer's early exit (verdict decided)
// propagates back into the exponential search instead of letting it run
// to the cap.
//
// `sys` must outlive the cursor. One consumer at a time (the parallel
// driver pulls chunks from its dispatcher thread only).
class DisGuessCursor {
 public:
  DisGuessCursor(const SimplSystem& sys, const GuessEnumOptions& options,
                 std::size_t buffer_capacity = 1024);
  ~DisGuessCursor();

  DisGuessCursor(const DisGuessCursor&) = delete;
  DisGuessCursor& operator=(const DisGuessCursor&) = delete;

  // Appends up to `max_chunk` guesses to *out (preserving existing
  // elements) and returns how many were appended. Blocks while the
  // producer is still working; 0 means the enumeration is exhausted or
  // was cancelled.
  std::size_t NextChunk(std::size_t max_chunk, std::vector<DisGuess>* out);

  // Same, but with each guess's global enumeration index attached — the
  // form the sharded drivers consume.
  std::size_t NextChunk(std::size_t max_chunk, std::vector<IndexedGuess>* out);

  // Stops the producer; subsequent NextChunk calls return 0 (guesses
  // already buffered are discarded). Idempotent, safe from any thread.
  void Cancel();

  // Guesses handed to the buffer so far; equals the total enumeration
  // count once exhausted() holds.
  std::size_t produced() const;

  // NextChunk has returned 0: no further guesses will arrive.
  bool exhausted() const;

  // The enumeration ran to completion without hitting max_guesses. Only
  // meaningful once exhausted() holds; false when Cancel() arrived while
  // the enumeration was still running (a Cancel after completion — e.g.
  // the parallel driver's unconditional cleanup — leaves it true).
  bool complete() const;

 private:
  // Producer side; false = cancelled.
  bool Push(std::size_t index, DisGuess&& guess);

  const std::size_t capacity_;
  mutable std::mutex m_;
  std::condition_variable can_produce_;
  std::condition_variable can_consume_;
  std::deque<IndexedGuess> buffer_;
  std::size_t produced_ = 0;
  bool done_ = false;       // producer finished (exhausted or cancelled)
  bool cancelled_ = false;
  bool complete_ = false;   // cap not hit; valid once done_
  std::jthread producer_;   // last member: joins before state dies
};

}  // namespace rapar

#endif  // RAPAR_ENCODING_DIS_GUESS_H_
