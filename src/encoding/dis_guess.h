// Guessed dis-thread run skeletons for the makeP encoding (§4.1).
//
// makeP is a *non-deterministic* polynomial-time procedure: each execution
// guesses the dis part of a run and emits one Datalog query instance. A
// guess pins, for every dis thread, its control path and all data it
// computes (register valuations / read values), and, per shared variable,
// the final modification order of dis stores including CAS glue — i.e.
// everything except the message views, which the Datalog derivation
// computes. This keeps the emitted program sound: with the dis part fixed,
// monotone evaluation cannot recombine incompatible dis branches.
//
// The enumerator below realises the nondeterminism by exhaustive
// enumeration with pruning; it is exponential in the dis programs (as the
// NP guess must be) and intended for the small instances the Datalog
// backend is exercised on.
#ifndef RAPAR_ENCODING_DIS_GUESS_H_
#define RAPAR_ENCODING_DIS_GUESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simplified/transitions.h"

namespace rapar {

// One annotated step of a guessed dis-thread path.
struct GuessStep {
  std::uint32_t edge = 0;  // CFA edge id of this thread
  // Loads and CAS loads: the value read, and the source.
  Value read_value = -1;   // -1: no read
  bool read_from_env = false;
  // If reading a dis message: its final position in the variable's
  // guessed sequence (0 = init message).
  int read_dis_pos = -1;
  // Stores and CAS stores: final position (>= 1) in the variable's
  // guessed modification order.
  int store_pos = -1;
  // The register valuation *after* this step (concrete along the path).
  std::vector<Value> rv_after;
};

struct ThreadGuess {
  std::vector<GuessStep> steps;
  // True if the path traverses an `assert false` edge.
  bool hits_assert = false;
};

// One guessed dis store cell in a variable's final modification order.
struct MemCell {
  Value val = 0;
  int thread = -1;     // dis thread index that performs the store
  int step_idx = -1;   // index into that thread's step list
  bool glued = false;  // CAS store: the gap below is frozen
};

struct DisGuess {
  std::vector<ThreadGuess> threads;
  // mem[x][p-1] describes the dis store at position p (init at position 0
  // is implicit: value d_init, never glued).
  std::vector<std::vector<MemCell>> mem;

  // Number of dis stores on x.
  int StoresOn(std::size_t x) const { return static_cast<int>(mem[x].size()); }
  // A gap h on x is frozen iff the store at position h+1 is glued.
  bool GapFrozen(std::size_t x, int gap) const {
    return gap + 1 <= StoresOn(x) &&
           mem[x][static_cast<std::size_t>(gap)].glued;
  }

  std::string ToString(const SimplSystem& sys) const;
};

struct GuessEnumOptions {
  // Hard cap on the number of guesses produced.
  std::size_t max_guesses = 200'000;
};

// Enumerates all valid dis-run guesses of `sys` (up to the cap). Register
// effects, assumes and CAS value-matching are checked during enumeration;
// view feasibility is left to the Datalog derivation. Sets *complete to
// false if the cap was hit.
std::vector<DisGuess> EnumerateDisGuesses(const SimplSystem& sys,
                                          const GuessEnumOptions& options,
                                          bool* complete);

}  // namespace rapar

#endif  // RAPAR_ENCODING_DIS_GUESS_H_
