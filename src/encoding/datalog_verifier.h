// The Datalog-backed safety verifier (Theorem 4.1): enumerates makeP's
// nondeterministic guesses and evaluates each emitted query instance.
// Unsafe iff some execution of makeP yields (Prog, g) with Prog ⊢ g.
//
// The guesses are mutually independent, so the driver fans them out:
// guesses stream from a DisGuessCursor in chunks, a work-stealing
// ThreadPool solves the chunks with one dl::Engine per worker (arena and
// EDB-snapshot reuse stay intact within a worker), and the first
// terminating event — a derived goal or a blown tuple budget — cancels
// the remaining work.
//
// Determinism rule: the verdict, witness guess, guesses-scanned count and
// the aggregate statistics are *independent of the thread count*. The
// driver reports the lowest-enumeration-index terminating guess, and a
// worker may skip a guess only when its index is provably above the
// current minimum, so every guess below the reported stop index is
// evaluated exactly once regardless of scheduling. Statistics aggregate
// the per-guess results of exactly the prefix [0, stop index] in
// enumeration order; racing solves beyond it are discarded (counted in
// ParallelStats::discarded). The per-guess numbers themselves are
// schedule-independent because a solve's stats do not depend on which
// engine runs it (PR 3 made EDB-snapshot reuse stats-neutral) — with the
// one exception of index_builds and fact_reuses, which depend on the
// subsequence of guesses a worker happens to see and are therefore the
// only verdict fields that may vary with the thread count.
//
// Cross-guess delta solving (EngineOptions::delta_solve) relaxes that
// stats clause, not the verdict clause: how much work a delta solve saves
// depends on the previous guess the worker's engine happened to solve, so
// the join/probe/firing aggregates (and the delta_* savings counters)
// become schedule-dependent alongside index_builds/fact_reuses. The
// verdict, witness, guesses, budget_aborted_guess, exhaustive and
// total_tuples stay bit-identical to the non-delta engine at every thread
// count: a delta attempt is recorded only when it is definitively
// negative within budget (a conclusion the canonical fixpoint makes
// engine-state independent), and every terminating attempt is discarded
// and re-run as a fresh full solve with reference semantics (DESIGN.md
// §13).
#ifndef RAPAR_ENCODING_DATALOG_VERIFIER_H_
#define RAPAR_ENCODING_DATALOG_VERIFIER_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "common/cancellation.h"
#include "datalog/engine.h"
#include "dlopt/optimize.h"
#include "encoding/makep.h"
#include "obs/trace.h"

namespace rapar {

// "No guess index": sentinel for the optional index fields below.
inline constexpr std::size_t kNoGuessIndex = static_cast<std::size_t>(-1);

struct DatalogVerifierOptions {
  // MG goal message; when unset only assert-false violations count.
  std::optional<std::pair<VarId, Value>> goal_message;
  GuessEnumOptions guess;
  // Tuple budget per query evaluation (0 = unlimited).
  std::size_t max_tuples_per_query = 2'000'000;
  // Evaluation-core tuning (argument-hash indexes, cheapest-first join
  // ordering, EDB snapshot reuse across guesses); see dl::EngineOptions.
  dl::EngineOptions engine;
  // Run the query-driven program optimizer (src/dlopt/) on every emitted
  // (Prog, g) before evaluation. Verdict-preserving by construction
  // (tests/dlopt_differential_test.cpp checks it); off only for debugging
  // or differential testing.
  bool enable_dlopt = true;
  // Worker threads for the per-guess solves. 1 (default) runs the legacy
  // serial loop on the calling thread; 0 resolves to
  // std::thread::hardware_concurrency(); N > 1 uses a work-stealing pool
  // of N workers. The verdict, witness and aggregate statistics are
  // identical for every value (see the determinism rule above).
  unsigned threads = 1;
  // Guesses per work unit pulled from the streaming enumerator. Small
  // enough to load-balance, large enough to amortize dispatch; also the
  // serial loop's chunk size.
  std::size_t batch_size = 32;
  // Wall-clock budget in milliseconds; 0 = unlimited. Enforced
  // cooperatively at guess granularity: the deadline is checked before
  // every solve (and by the parallel dispatcher between chunks), so a
  // single long solve can overshoot it. On expiry the scan stops,
  // exhaustive becomes false and DatalogVerdict::deadline_hit is set.
  // Deadline-truncated runs are wall-clock dependent and therefore exempt
  // from the determinism rule above.
  long long time_budget_ms = 0;
  // Optional span sink (obs/trace.h): per-guess "guess" spans with nested
  // makep/dlopt/eval phases, plus instant markers for early exit, budget
  // abort and deadline expiry. Null = no tracing, near-zero cost.
  obs::TraceRecorder* trace = nullptr;
  // Borrowed external cancellation (advisory), polled wherever the
  // deadline is. On cancel the scan stops, exhaustive becomes false but
  // deadline_hit stays false — the caller asked, no budget expired.
  // Cancel-truncated runs are exempt from the determinism rule like
  // deadline-truncated ones.
  const CancellationToken* cancel = nullptr;
  // ---- Sharding / checkpoint / resume (DESIGN.md §14) ----
  // The shard identity and resume offset travel in `guess`
  // (GuessEnumOptions::shard_index/shard_count/start_index). The fields
  // below layer verdict accounting and checkpoint emission on top.
  //
  // Guess accounting carried over from previous runs of this shard: the
  // verdict's `guesses` is resume_scanned_base + solves-this-run, so a
  // resumed scan reports the same totals as an uninterrupted one.
  std::size_t resume_scanned_base = 0;
  // Emit a CursorCheckpoint through checkpoint_sink every
  // `checkpoint_every` solves (0 = no periodic checkpoints). A final
  // checkpoint is also emitted whenever the scan stops without a
  // definitive verdict (deadline, cancel, budget abort, scan limit,
  // enumeration cap) and — with exhausted = true — on a completed scan.
  std::size_t checkpoint_every = 0;
  std::function<void(const CursorCheckpoint&)> checkpoint_sink;
  // Stop after solving this many guesses in this invocation (0 =
  // unlimited). Deterministic at every thread count — the parallel
  // dispatcher bounds *dispatch* to the first scan_limit guesses of the
  // enumeration order — which makes kill-and-resume testable without
  // real kills: a truncated run plus a resumed run must reproduce the
  // uninterrupted verdict. Sets DatalogVerdict::scan_limit_hit when it
  // truncates the scan.
  std::size_t scan_limit = 0;
  // Borrowed warm engine for the serial path (threads == 1): the solver
  // reuses its arena and interned-fact table across *calls* instead of
  // constructing a fresh engine per verify. Used by the serve daemon,
  // which keeps one engine per pool worker alive across requests.
  // Ignored when threads != 1 (the parallel driver owns one engine per
  // worker already). Cumulative engine counters (index_builds,
  // fact_reuses) are reported as deltas relative to the engine's state at
  // solver construction, so verdict stats stay per-request.
  dl::Engine* warm_engine = nullptr;
};

// How the parallel driver ran. threads == 1 means the serial loop (the
// batches/chunk fields still describe the streaming enumeration).
struct ParallelStats {
  unsigned threads = 1;
  std::size_t batches = 0;  // guess chunks dispatched
  std::size_t steals = 0;   // ThreadPool deque steals
  std::size_t solves = 0;   // Solve calls issued (incl. discarded ones)
  // Solves that raced past the deterministic stop prefix; their stats are
  // excluded from the verdict aggregates.
  std::size_t discarded = 0;
  // Guesses skipped outright after the early exit fired.
  std::size_t skipped = 0;
  // Index of the terminating guess (witness or budget abort);
  // kNoGuessIndex when every guess was scanned.
  std::size_t early_exit_index = kNoGuessIndex;

  bool Any() const { return threads > 1; }
};

struct DatalogVerdict {
  bool unsafe = false;
  // All guesses were enumerated and evaluated: a negative answer is
  // definitive. Forced true on an unsafe verdict (which is definitive
  // regardless of how much of the guess space was scanned) and false
  // after a budget abort or a hit enumeration cap.
  bool exhaustive = true;
  // Guesses scanned (resume_scanned_base + solves this run). With the
  // default single-shard, no-resume options this is the legacy count: on
  // early termination (witness found or budget aborted at index i) it is
  // i + 1 — the enumeration stops as soon as the verdict is decided —
  // otherwise the full enumeration count. Sharded runs count only their
  // residue class; summing a full shard family's exhaustive counts gives
  // the single-process total.
  std::size_t guesses = 0;
  std::size_t queries_evaluated = 0;
  // Aggregate Datalog statistics over the scanned prefix (per-solve,
  // summed in enumeration order; thread-count independent).
  std::size_t total_tuples = 0;
  std::size_t total_rules = 0;        // emitted by makeP, pre-dlopt
  std::size_t total_rules_after = 0;  // evaluated after dlopt pruning
  std::size_t rule_firings = 0;
  std::size_t join_attempts = 0;
  // Argument-hash index counters (zero when EngineOptions::use_index is
  // off) and the number of solves seeded from a previous guess's EDB
  // snapshot instead of re-inserting every fact. index_builds and
  // fact_reuses depend on the per-worker guess subsequence, so they are
  // the only fields that may vary with DatalogVerifierOptions::threads.
  std::size_t index_probes = 0;
  std::size_t index_hits = 0;
  std::size_t index_builds = 0;
  std::size_t fact_reuses = 0;
  // Sorted-index merge-scan probes (zero unless EngineOptions::storage
  // selects columnar relations): the columnar counterpart of index_probes.
  std::size_t merge_scans = 0;
  // Cross-guess delta-solving savings counters (zero unless
  // EngineOptions::delta_solve): tuples retracted from changed strata,
  // fact/native seeds re-asserted into them, and dirty SCCs re-derived.
  // Schedule-dependent like index_builds (see the determinism rule).
  std::size_t delta_retracts = 0;
  std::size_t delta_asserts = 0;
  std::size_t delta_reseeded_strata = 0;
  // Budget-abort semantics: when a query blows max_tuples_per_query the
  // scan *stops* at that guess — its index is recorded here, exhaustive
  // becomes false, and the remaining guesses are not evaluated (a witness
  // hiding beyond the aborted guess is only found by rerunning with a
  // larger budget). kNoGuessIndex when no abort occurred. Before PR 4 the
  // loop kept evaluating the remaining guesses after an abort; stopping
  // makes the inconclusive case cheap and the abort point reportable.
  std::size_t budget_aborted_guess = kNoGuessIndex;
  // The wall-clock budget (time_budget_ms) expired before the scan
  // finished; exhaustive is false and `guesses` counts only the evaluated
  // prefix. Never set when a witness was found first (an unsafe verdict
  // is definitive and wins).
  bool deadline_hit = false;
  // The scan stopped because DatalogVerifierOptions::scan_limit solves
  // were spent this invocation; exhaustive is false and a checkpoint (if
  // a sink is set) records where to resume.
  bool scan_limit_hit = false;
  // Checkpoints emitted through checkpoint_sink during this run.
  std::size_t checkpoint_writes = 0;
  // Echo of the shard identity / resume offset this run scanned under
  // (GuessEnumOptions), for telemetry and envelope reporting.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t resume_offset = 0;
  // Global enumeration index of the terminating event (witness or budget
  // abort), kNoGuessIndex when none. Per-shard runs report it so the
  // orchestrator's merge — the shard with the *minimum* terminating
  // index wins — reproduces the single-process first-terminating-event
  // rule bit for bit.
  std::size_t terminating_index = kNoGuessIndex;
  // Aggregate optimizer statistics over the scanned prefix (zero when
  // dlopt is disabled; rules_before/after mirror total_rules{,_after}).
  dlopt::DlOptStats dlopt;
  // Static width/solver classification of the first guess's optimized
  // program (the makeP shape is uniform across guesses), empty when no
  // guess was evaluated.
  std::string width_report;
  // The witnessing guess (pretty-printed) when unsafe.
  std::string witness_guess;
  // Parallel-driver telemetry (threads, batches, steals, early exit).
  ParallelStats parallel;
};

DatalogVerdict DatalogVerify(const SimplSystem& sys,
                             const DatalogVerifierOptions& options = {});

}  // namespace rapar

#endif  // RAPAR_ENCODING_DATALOG_VERIFIER_H_
