// The Datalog-backed safety verifier (Theorem 4.1): enumerates makeP's
// nondeterministic guesses and evaluates each emitted query instance.
// Unsafe iff some execution of makeP yields (Prog, g) with Prog ⊢ g.
#ifndef RAPAR_ENCODING_DATALOG_VERIFIER_H_
#define RAPAR_ENCODING_DATALOG_VERIFIER_H_

#include <optional>
#include <string>

#include "datalog/engine.h"
#include "dlopt/optimize.h"
#include "encoding/makep.h"

namespace rapar {

struct DatalogVerifierOptions {
  // MG goal message; when unset only assert-false violations count.
  std::optional<std::pair<VarId, Value>> goal_message;
  GuessEnumOptions guess;
  // Tuple budget per query evaluation (0 = unlimited).
  std::size_t max_tuples_per_query = 2'000'000;
  // Evaluation-core tuning (argument-hash indexes, cheapest-first join
  // ordering, EDB snapshot reuse across guesses); see dl::EngineOptions.
  dl::EngineOptions engine;
  // Run the query-driven program optimizer (src/dlopt/) on every emitted
  // (Prog, g) before evaluation. Verdict-preserving by construction
  // (tests/dlopt_differential_test.cpp checks it); off only for debugging
  // or differential testing.
  bool enable_dlopt = true;
};

struct DatalogVerdict {
  bool unsafe = false;
  // All guesses were enumerated and evaluated: a negative answer is
  // definitive.
  bool exhaustive = true;
  std::size_t guesses = 0;
  std::size_t queries_evaluated = 0;
  // Aggregate Datalog statistics (per-solve, summed by dl::Engine).
  std::size_t total_tuples = 0;
  std::size_t total_rules = 0;        // emitted by makeP, pre-dlopt
  std::size_t total_rules_after = 0;  // evaluated after dlopt pruning
  std::size_t rule_firings = 0;
  std::size_t join_attempts = 0;
  // Argument-hash index counters (zero when EngineOptions::use_index is
  // off) and the number of solves seeded from the previous guess's EDB
  // snapshot instead of re-inserting every fact.
  std::size_t index_probes = 0;
  std::size_t index_hits = 0;
  std::size_t index_builds = 0;
  std::size_t fact_reuses = 0;
  // Aggregate optimizer statistics over all evaluated guesses (zero when
  // dlopt is disabled; rules_before/after mirror total_rules{,_after}).
  dlopt::DlOptStats dlopt;
  // Static width/solver classification of the first guess's optimized
  // program (the makeP shape is uniform across guesses), empty when no
  // guess was evaluated.
  std::string width_report;
  // The witnessing guess (pretty-printed) when unsafe.
  std::string witness_guess;
};

DatalogVerdict DatalogVerify(const SimplSystem& sys,
                             const DatalogVerifierOptions& options = {});

}  // namespace rapar

#endif  // RAPAR_ENCODING_DATALOG_VERIFIER_H_
