// The Datalog-backed safety verifier (Theorem 4.1): enumerates makeP's
// nondeterministic guesses and evaluates each emitted query instance.
// Unsafe iff some execution of makeP yields (Prog, g) with Prog ⊢ g.
#ifndef RAPAR_ENCODING_DATALOG_VERIFIER_H_
#define RAPAR_ENCODING_DATALOG_VERIFIER_H_

#include <optional>
#include <string>

#include "encoding/makep.h"

namespace rapar {

struct DatalogVerifierOptions {
  // MG goal message; when unset only assert-false violations count.
  std::optional<std::pair<VarId, Value>> goal_message;
  GuessEnumOptions guess;
  // Tuple budget per query evaluation (0 = unlimited).
  std::size_t max_tuples_per_query = 2'000'000;
};

struct DatalogVerdict {
  bool unsafe = false;
  // All guesses were enumerated and evaluated: a negative answer is
  // definitive.
  bool exhaustive = true;
  std::size_t guesses = 0;
  std::size_t queries_evaluated = 0;
  // Aggregate Datalog statistics.
  std::size_t total_tuples = 0;
  std::size_t total_rules = 0;
  // The witnessing guess (pretty-printed) when unsafe.
  std::string witness_guess;
};

DatalogVerdict DatalogVerify(const SimplSystem& sys,
                             const DatalogVerifierOptions& options = {});

}  // namespace rapar

#endif  // RAPAR_ENCODING_DATALOG_VERIFIER_H_
