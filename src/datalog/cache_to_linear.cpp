#include "datalog/cache_to_linear.h"

#include <cassert>
#include <functional>

#include "common/strings.h"

namespace rapar::dl {

namespace {

// Enumerates all ways to pick `need` distinct slot indices out of k.
void Combinations(int k, int need, std::vector<int>& picked,
                  const std::function<void(const std::vector<int>&)>& fn) {
  if (static_cast<int>(picked.size()) == need) {
    fn(picked);
    return;
  }
  for (int i = 0; i < k; ++i) {
    bool used = false;
    for (int p : picked) {
      if (p == i) used = true;
    }
    if (used) continue;
    picked.push_back(i);
    Combinations(k, need, picked, fn);
    picked.pop_back();
  }
}

}  // namespace

LinearisedQuery CacheToLinear(const Program& prog, const Atom& goal, int k) {
  assert(k >= 1);
  LinearisedQuery out;
  Program& lin = out.prog;

  // Copy the constant table in order so Sym values coincide.
  for (Sym s = 0; s < prog.num_consts(); ++s) {
    Sym copied = lin.ConstSym(prog.const_name(s));
    assert(copied == s);
    (void)copied;
  }
  const Sym none = lin.ConstSym("$none");
  const Sym pad = lin.ConstSym("$pad");

  // Predicate tags as constants.
  std::vector<Sym> pred_tag(prog.num_preds());
  std::size_t max_arity = 0;
  for (PredId p = 0; p < prog.num_preds(); ++p) {
    pred_tag[p] = lin.ConstSym("$pred_" + prog.pred(p).name);
    max_arity = std::max(max_arity, prog.pred(p).arity);
  }
  const int slot_width = static_cast<int>(max_arity) + 1;  // tag + args

  const PredId cache_pred =
      lin.AddPred(StrCat("cache", k), static_cast<std::size_t>(k) * slot_width);
  const PredId found_pred = lin.AddPred("found", 0);
  out.goal = Atom{found_pred, {}};

  // Helper: term vector for a full cache atom given per-slot term makers.
  auto make_cache_atom =
      [&](const std::function<Term(int slot, int pos)>& slot_term) {
        Atom a;
        a.pred = cache_pred;
        a.args.reserve(static_cast<std::size_t>(k) * slot_width);
        for (int s = 0; s < k; ++s) {
          for (int pos = 0; pos < slot_width; ++pos) {
            a.args.push_back(slot_term(s, pos));
          }
        }
        return a;
      };

  // Initial fact: the empty cache.
  lin.AddFact(make_cache_atom([&](int, int pos) {
    return C(pos == 0 ? none : pad);
  }));

  // Drop rules: blank out slot d; other slots pass through via variables.
  for (int d = 0; d < k; ++d) {
    // Variables 0..k*slot_width-1: one per (slot, pos) of the body atom.
    auto var_of = [&](int s, int pos) {
      return V(static_cast<VarSym>(s * slot_width + pos));
    };
    Rule r;
    r.body.push_back(make_cache_atom(
        [&](int s, int pos) { return var_of(s, pos); }));
    r.head = make_cache_atom([&](int s, int pos) -> Term {
      if (s == d) return C(pos == 0 ? none : pad);
      return var_of(s, pos);
    });
    lin.AddRule(std::move(r));
  }

  // Goal detection: found :- cacheK(..., slot_i = goal, ...).
  for (int gslot = 0; gslot < k; ++gslot) {
    auto var_of = [&](int s, int pos) {
      return V(static_cast<VarSym>(s * slot_width + pos));
    };
    Rule r;
    r.head = Atom{found_pred, {}};
    r.body.push_back(make_cache_atom([&](int s, int pos) -> Term {
      if (s != gslot) return var_of(s, pos);
      if (pos == 0) return C(pred_tag[goal.pred]);
      const std::size_t ai = static_cast<std::size_t>(pos - 1);
      if (ai < goal.args.size()) {
        assert(goal.args[ai].kind == Term::Kind::kConst);
        return C(goal.args[ai].val);
      }
      return C(pad);
    }));
    lin.AddRule(std::move(r));
  }

  // Add rules: for each original rule, each assignment of its body atoms
  // to distinct slots, and each head slot (required empty).
  for (const Rule& orig : prog.rules()) {
    const int m = static_cast<int>(orig.body.size());
    assert(m <= 3 && "CacheToLinear supports rule bodies of <= 3 atoms");
    if (m > k) continue;  // body cannot fit in the cache

    // Original rule variables occupy 0..orig_vars-1; pass-through slot
    // variables start above.
    std::size_t orig_vars = 0;
    auto scan = [&](const Term& t) {
      if (t.kind == Term::Kind::kVar && t.val + 1 > orig_vars) {
        orig_vars = t.val + 1;
      }
    };
    for (const Term& t : orig.head.args) scan(t);
    for (const Atom& a : orig.body) {
      for (const Term& t : a.args) scan(t);
    }
    for (const Native& n : orig.natives) {
      for (const Term& t : n.inputs) scan(t);
      if (n.output.has_value() && *n.output + 1 > orig_vars) {
        orig_vars = *n.output + 1;
      }
    }
    auto passthrough_var = [&](int s, int pos) {
      return V(static_cast<VarSym>(orig_vars + s * slot_width + pos));
    };

    // Renders an original atom into slot terms.
    auto atom_slot_term = [&](const Atom& a, int pos) -> Term {
      if (pos == 0) return C(pred_tag[a.pred]);
      const std::size_t ai = static_cast<std::size_t>(pos - 1);
      if (ai < a.args.size()) return a.args[ai];
      return C(pad);
    };

    std::vector<int> picked;
    Combinations(k, m, picked, [&](const std::vector<int>& body_slots) {
      for (int hslot = 0; hslot < k; ++hslot) {
        // The head goes into an empty slot; it may coincide with no body
        // slot (body atoms must stay cached while firing).
        bool clash = false;
        for (int bs : body_slots) {
          if (bs == hslot) clash = true;
        }
        if (clash) continue;
        Rule r;
        r.natives = orig.natives;
        r.body.push_back(make_cache_atom([&](int s, int pos) -> Term {
          for (int bi = 0; bi < m; ++bi) {
            if (body_slots[bi] == s) {
              return atom_slot_term(orig.body[bi], pos);
            }
          }
          if (s == hslot) return C(pos == 0 ? none : pad);
          return passthrough_var(s, pos);
        }));
        r.head = make_cache_atom([&](int s, int pos) -> Term {
          for (int bi = 0; bi < m; ++bi) {
            if (body_slots[bi] == s) {
              return atom_slot_term(orig.body[bi], pos);
            }
          }
          if (s == hslot) return atom_slot_term(orig.head, pos);
          return passthrough_var(s, pos);
        });
        lin.AddRule(std::move(r));
      }
    });
  }
  return out;
}

}  // namespace rapar::dl
