#include "datalog/ast.h"

#include "common/strings.h"

namespace rapar::dl {

std::vector<bool> Program::IdbPreds() const {
  std::vector<bool> idb(preds_.size(), false);
  for (const Rule& r : rules_) {
    if (!r.IsFact()) idb[r.head.pred] = true;
  }
  return idb;
}

bool Program::IsLinear() const {
  // IDB status: a predicate derived by any non-fact rule. Facts contribute
  // EDB tuples even to predicates that also have rules; for linearity we
  // use the conventional definition: a predicate is IDB if it occurs in
  // any rule head with a non-empty body.
  std::vector<bool> idb = IdbPreds();
  for (const Rule& r : rules_) {
    int idb_atoms = 0;
    for (const Atom& a : r.body) {
      if (idb[a.pred]) ++idb_atoms;
    }
    if (idb_atoms > 1) return false;
  }
  return true;
}

std::string Program::AtomToString(const Atom& atom) const {
  std::string out = preds_[atom.pred].name + "(";
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    const Term& t = atom.args[i];
    if (t.kind == Term::Kind::kConst) {
      out += consts_.Get(t.val);
    } else {
      out += StrCat("X", t.val);
    }
  }
  return out + ")";
}

std::string Program::RuleToString(const Rule& rule) const {
  std::string out = AtomToString(rule.head);
  if (rule.IsFact()) return out + ".";
  out += " :- ";
  bool first = true;
  for (const Atom& a : rule.body) {
    if (!first) out += ", ";
    out += AtomToString(a);
    first = false;
  }
  for (const Native& n : rule.natives) {
    if (!first) out += ", ";
    out += n.name + "[";
    for (std::size_t i = 0; i < n.inputs.size(); ++i) {
      if (i > 0) out += ",";
      const Term& t = n.inputs[i];
      out += t.kind == Term::Kind::kConst ? consts_.Get(t.val)
                                          : StrCat("X", t.val);
    }
    out += "]";
    if (n.output.has_value()) out += StrCat("->X", *n.output);
    first = false;
  }
  return out + ".";
}

std::string Program::ToString() const {
  std::string out;
  for (std::size_t p = 0; p < preds_.size(); ++p) {
    out += StrCat(".decl ", preds_[p].name, "/", preds_[p].arity, "\n");
  }
  for (const Rule& r : rules_) out += RuleToString(r) + "\n";
  return out;
}

}  // namespace rapar::dl
