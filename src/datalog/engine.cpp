#include "datalog/engine.h"

#include <cassert>
#include <deque>
#include <stdexcept>
#include <optional>

namespace rapar::dl {

namespace {

// Rule-local variable binding environment.
class Bindings {
 public:
  void Reset(std::size_t num_vars) {
    vals_.assign(num_vars, std::nullopt);
    trail_.clear();
  }
  bool Bound(VarSym v) const { return vals_[v].has_value(); }
  Sym Get(VarSym v) const { return *vals_[v]; }
  void Bind(VarSym v, Sym s) {
    vals_[v] = s;
    trail_.push_back(v);
  }
  std::size_t Mark() const { return trail_.size(); }
  void Undo(std::size_t mark) {
    while (trail_.size() > mark) {
      vals_[trail_.back()] = std::nullopt;
      trail_.pop_back();
    }
  }

 private:
  std::vector<std::optional<Sym>> vals_;
  std::vector<VarSym> trail_;
};

std::size_t MaxVar(const Rule& rule) {
  std::size_t mx = 0;
  auto scan_term = [&](const Term& t) {
    if (t.kind == Term::Kind::kVar && t.val + 1 > mx) mx = t.val + 1;
  };
  for (const Term& t : rule.head.args) scan_term(t);
  for (const Atom& a : rule.body) {
    for (const Term& t : a.args) scan_term(t);
  }
  for (const Native& n : rule.natives) {
    for (const Term& t : n.inputs) scan_term(t);
    if (n.output.has_value() && *n.output + 1 > mx) mx = *n.output + 1;
  }
  return mx;
}

// Unifies `tuple` against `pattern` (the atom's args) under `env`.
bool Match(const std::vector<Term>& pattern, const std::vector<Sym>& tuple,
           Bindings& env) {
  assert(pattern.size() == tuple.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const Term& t = pattern[i];
    if (t.kind == Term::Kind::kConst) {
      if (t.val != tuple[i]) return false;
    } else if (env.Bound(t.val)) {
      if (env.Get(t.val) != tuple[i]) return false;
    } else {
      env.Bind(t.val, tuple[i]);
    }
  }
  return true;
}

class Evaluator {
 public:
  Evaluator(const Program& prog, const Atom* goal, EvalStats* stats,
            const EvalOptions& options)
      : prog_(prog),
        goal_(goal),
        stats_(stats),
        options_(options),
        db_(prog.num_preds()) {
    // Index: predicate -> (rule index, body position).
    rule_index_.resize(prog.num_preds());
    for (std::size_t ri = 0; ri < prog.rules().size(); ++ri) {
      const Rule& r = prog.rules()[ri];
      for (std::size_t bi = 0; bi < r.body.size(); ++bi) {
        rule_index_[r.body[bi].pred].push_back({ri, bi});
      }
    }
  }

  // Returns true if the goal was derived (always false without a goal).
  bool Run() {
    // Seed with facts and with rules whose body is empty but have natives
    // (treated as facts after native evaluation).
    for (const Rule& r : prog_.rules()) {
      if (!r.body.empty()) continue;
      Bindings env;
      env.Reset(MaxVar(r));
      if (EvalNativesAndEmit(r, env, 0)) return true;
    }
    // Worklist: process newly derived tuples.
    while (!work_.empty()) {
      auto [pred, idx] = work_.front();
      work_.pop_front();
      const std::vector<Sym> tuple = db_.Tuples(pred)[idx];
      for (auto [ri, bi] : rule_index_[pred]) {
        const Rule& r = prog_.rules()[ri];
        Bindings env;
        env.Reset(MaxVar(r));
        if (!Match(r.body[bi].args, tuple, env)) continue;
        if (JoinRest(r, env, 0, bi)) return true;
      }
    }
    return false;
  }

  Database TakeDb() { return std::move(db_); }

 private:
  // Joins body atoms other than the delta position `skip`, starting from
  // body index `at`; then evaluates natives and emits the head.
  bool JoinRest(const Rule& r, Bindings& env, std::size_t at,
                std::size_t skip) {
    if (at == r.body.size()) return EvalNativesAndEmit(r, env, 0);
    if (at == skip) return JoinRest(r, env, at + 1, skip);
    const Atom& atom = r.body[at];
    // Index-based scan over a size snapshot: the recursion below can Emit
    // into atom.pred, reallocating its tuple storage. Tuples inserted
    // mid-scan are joined later via their own worklist delta.
    const std::size_t n = db_.Tuples(atom.pred).size();
    for (std::size_t ti = 0; ti < n; ++ti) {
      if (stats_ != nullptr) ++stats_->join_attempts;
      const std::size_t mark = env.Mark();
      if (Match(atom.args, db_.Tuples(atom.pred)[ti], env)) {
        if (JoinRest(r, env, at + 1, skip)) return true;
      }
      env.Undo(mark);
    }
    return false;
  }

  bool EvalNativesAndEmit(const Rule& r, Bindings& env, std::size_t at) {
    if (at == r.natives.size()) return Emit(r, env);
    const Native& n = r.natives[at];
    std::vector<Sym> inputs;
    inputs.reserve(n.inputs.size());
    for (const Term& t : n.inputs) {
      if (t.kind == Term::Kind::kConst) {
        inputs.push_back(t.val);
      } else {
        assert(env.Bound(t.val) && "native input must be bound");
        inputs.push_back(env.Get(t.val));
      }
    }
    Sym out = 0;
    if (!n.fn(inputs, &out)) return false;
    const std::size_t mark = env.Mark();
    if (n.output.has_value()) {
      if (env.Bound(*n.output)) {
        if (env.Get(*n.output) != out) return false;
      } else {
        env.Bind(*n.output, out);
      }
    }
    bool found = EvalNativesAndEmit(r, env, at + 1);
    if (!found) env.Undo(mark);
    return found;
  }

  bool Emit(const Rule& r, Bindings& env) {
    std::vector<Sym> tuple;
    tuple.reserve(r.head.args.size());
    for (const Term& t : r.head.args) {
      if (t.kind == Term::Kind::kConst) {
        tuple.push_back(t.val);
      } else {
        assert(env.Bound(t.val) && "unsafe rule: unbound head variable");
        tuple.push_back(env.Get(t.val));
      }
    }
    if (stats_ != nullptr) ++stats_->rule_firings;
    if (!db_.Insert(r.head.pred, tuple)) return false;
    if (stats_ != nullptr) ++stats_->tuples;
    const std::size_t idx = db_.Tuples(r.head.pred).size() - 1;
    work_.push_back({r.head.pred, idx});
    if (goal_ != nullptr && options_.early_exit && r.head.pred == goal_->pred) {
      bool is_goal = true;
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        assert(goal_->args[i].kind == Term::Kind::kConst);
        if (goal_->args[i].val != tuple[i]) {
          is_goal = false;
          break;
        }
      }
      if (is_goal) {
        if (stats_ != nullptr) stats_->goal_found = true;
        return true;
      }
    }
    if (options_.max_tuples != 0 && db_.TotalTuples() > options_.max_tuples) {
      throw std::runtime_error("datalog evaluation exceeded tuple budget");
    }
    return false;
  }

  const Program& prog_;
  const Atom* goal_;
  EvalStats* stats_;
  const EvalOptions& options_;
  Database db_;
  std::deque<std::pair<PredId, std::size_t>> work_;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> rule_index_;
};

}  // namespace

bool Query(const Program& prog, const Atom& goal, EvalStats* stats,
           const EvalOptions& options) {
  if (stats != nullptr) *stats = EvalStats{};
  Evaluator ev(prog, &goal, stats, options);
  if (ev.Run()) return true;
  // Fixpoint reached without early exit; check membership.
  Database db = ev.TakeDb();
  std::vector<Sym> tuple;
  for (const Term& t : goal.args) {
    assert(t.kind == Term::Kind::kConst);
    tuple.push_back(t.val);
  }
  bool found = db.Contains(goal.pred, tuple);
  if (stats != nullptr && found) stats->goal_found = true;
  return found;
}

Database Eval(const Program& prog, EvalStats* stats,
              const EvalOptions& options) {
  if (stats != nullptr) *stats = EvalStats{};
  EvalOptions opts = options;
  opts.early_exit = false;
  Evaluator ev(prog, nullptr, stats, opts);
  ev.Run();
  return ev.TakeDb();
}

bool Engine::Solve(const Program& prog, const Atom& goal,
                   const EvalOptions& options) {
  last_ = EvalStats{};
  ++solves_;
  try {
    const bool derived = Query(prog, goal, &last_, options);
    total_ += last_;
    return derived;
  } catch (...) {
    // Budget blown mid-evaluation: keep what the aborted solve did.
    total_ += last_;
    throw;
  }
}

}  // namespace rapar::dl
