#include "datalog/engine.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>

namespace rapar::dl {

namespace {

// Rule-local variable binding environment.
class Bindings {
 public:
  void Reset(std::size_t num_vars) {
    vals_.assign(num_vars, std::nullopt);
    trail_.clear();
  }
  bool Bound(VarSym v) const { return vals_[v].has_value(); }
  Sym Get(VarSym v) const { return *vals_[v]; }
  void Bind(VarSym v, Sym s) {
    vals_[v] = s;
    trail_.push_back(v);
  }
  std::size_t Mark() const { return trail_.size(); }
  void Undo(std::size_t mark) {
    while (trail_.size() > mark) {
      vals_[trail_.back()] = std::nullopt;
      trail_.pop_back();
    }
  }

 private:
  std::vector<std::optional<Sym>> vals_;
  std::vector<VarSym> trail_;
};

std::size_t MaxVar(const Rule& rule) {
  std::size_t mx = 0;
  auto scan_term = [&](const Term& t) {
    if (t.kind == Term::Kind::kVar && t.val + 1 > mx) mx = t.val + 1;
  };
  for (const Term& t : rule.head.args) scan_term(t);
  for (const Atom& a : rule.body) {
    for (const Term& t : a.args) scan_term(t);
  }
  for (const Native& n : rule.natives) {
    for (const Term& t : n.inputs) scan_term(t);
    if (n.output.has_value() && *n.output + 1 > mx) mx = *n.output + 1;
  }
  return mx;
}

// Unifies `tuple` against `pattern` (the atom's args) under `env`.
bool Match(const std::vector<Term>& pattern, const std::vector<Sym>& tuple,
           Bindings& env) {
  assert(pattern.size() == tuple.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const Term& t = pattern[i];
    if (t.kind == Term::Kind::kConst) {
      if (t.val != tuple[i]) return false;
    } else if (env.Bound(t.val)) {
      if (env.Get(t.val) != tuple[i]) return false;
    } else {
      env.Bind(t.val, tuple[i]);
    }
  }
  return true;
}

// --- input validation -------------------------------------------------------
//
// These conditions were previously assert-only, i.e. undefined behavior in
// NDEBUG builds (reading Term::val of a variable as a constant, or
// dereferencing an empty optional for an unbound native input). They are
// now checked once per evaluation and reported as std::invalid_argument.

void ValidateGoal(const Program& prog, const Atom& goal) {
  if (goal.pred >= prog.num_preds()) {
    throw std::invalid_argument("datalog goal: unknown predicate id " +
                                std::to_string(goal.pred));
  }
  const PredInfo& info = prog.pred(goal.pred);
  if (goal.args.size() != info.arity) {
    throw std::invalid_argument(
        "datalog goal: arity mismatch for '" + info.name + "': got " +
        std::to_string(goal.args.size()) + " args, declared " +
        std::to_string(info.arity));
  }
  for (const Term& t : goal.args) {
    if (t.kind != Term::Kind::kConst) {
      throw std::invalid_argument("datalog goal: atom on '" + info.name +
                                  "' is not ground (has a variable)");
    }
  }
}

// Range restriction / rule safety, the engine-side mirror of
// dlopt::ValidateRangeRestriction: every native input must be bound by the
// body or an earlier native's output (natives run after the body join, in
// order), and every head variable by the body or some native output. Also
// checks every atom against its predicate's declared arity, which the join
// relies on (Match unifies positionally).
void ValidateProgram(const Program& prog) {
  std::vector<char> bound;
  for (std::size_t ri = 0; ri < prog.rules().size(); ++ri) {
    const Rule& r = prog.rules()[ri];
    auto fail = [&](const std::string& why) {
      throw std::invalid_argument("datalog rule #" + std::to_string(ri) +
                                  " is unsafe (" + why + "): " +
                                  prog.RuleToString(r));
    };
    auto check_arity = [&](const Atom& a) {
      if (a.pred >= prog.num_preds()) fail("unknown predicate id");
      if (a.args.size() != prog.pred(a.pred).arity) {
        fail("arity mismatch on '" + prog.pred(a.pred).name + "'");
      }
    };
    check_arity(r.head);
    bound.assign(MaxVar(r), 0);
    for (const Atom& a : r.body) {
      check_arity(a);
      for (const Term& t : a.args) {
        if (t.kind == Term::Kind::kVar) bound[t.val] = 1;
      }
    }
    for (const Native& n : r.natives) {
      for (const Term& t : n.inputs) {
        if (t.kind == Term::Kind::kVar && !bound[t.val]) {
          fail("input of native '" + n.name +
               "' is not bound by the body or an earlier native");
        }
      }
      if (n.output.has_value()) bound[*n.output] = 1;
    }
    for (const Term& t : r.head.args) {
      if (t.kind == Term::Kind::kVar && !bound[t.val]) {
        fail("head variable is not bound by the body or a native output");
      }
    }
  }
}

}  // namespace

// --- reusable evaluator state -----------------------------------------------

// A lazy hash index over one predicate's extension for one bound-position
// signature (bit i set = argument i is a lookup key). `consumed` counts
// how many tuples of the extension have been folded in; probes catch the
// index up incrementally before reading, so emission stays O(1) and only
// signatures a join actually demands are ever built.
struct ArgIndex {
  std::size_t consumed = 0;
  std::unordered_map<std::vector<Sym>, std::vector<std::uint32_t>,
                     rapar::VectorHash<Sym>>
      buckets;
};

// State that persists across Engine::Solve calls: the database, worklist,
// binding frames, join-order scratch and argument-hash indexes keep their
// allocations, and the seeded-EDB snapshot lets a solve whose fact set
// matches the previous one skip re-seeding entirely.
struct EvaluatorArena {
  Database db{0};
  std::deque<std::pair<PredId, std::uint32_t>> work;
  // pred -> (rule index, body position) of every body occurrence.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      rule_index;
  std::vector<std::uint32_t> max_var;  // per rule
  // pred -> signature mask -> index.
  std::vector<std::unordered_map<std::uint64_t, ArgIndex>> indexes;
  Bindings env;
  std::vector<std::vector<std::uint32_t>> scratch;  // per join depth
  std::vector<Sym> keybuf;
  std::vector<std::uint32_t> order_buf;
  std::vector<char> picked;
  std::vector<char> planned_bound;
  std::vector<std::uint8_t> own_growth;  // fallback hints (0 = EDB, 2 = IDB)

  // Seeded-EDB snapshot of the previous solve. `facts_valid` holds only
  // when `db`'s first `base_counts[p]` tuples of every predicate are
  // exactly the facts described by `fact_flat` (flattened, exact — no
  // fingerprint collisions).
  bool facts_valid = false;
  std::vector<Sym> fact_flat;
  std::vector<std::size_t> base_counts;
  // (pred, tuple index) of each seeded fact in emission order: reuse
  // replays the exact worklist of a fresh seeding, so derivation order —
  // and with it early-exit statistics — is identical either way.
  std::vector<std::pair<PredId, std::uint32_t>> fact_order;
  std::size_t fact_firings = 0;
  std::size_t fact_tuples = 0;
};

namespace {

// Flattens the program's facts (pred, args...) for exact EDB-reuse
// comparison across solves. Deliberately excludes the predicate count:
// the Datalog backend's per-guess programs share their EDB but differ in
// derived-only predicates (guess-specific dis-chain lengths), and the
// rollback adapts the database's predicate count separately.
void FlattenFacts(const Program& prog, std::vector<Sym>* out) {
  out->clear();
  for (const Rule& r : prog.rules()) {
    if (!r.IsFact()) continue;
    out->push_back(r.head.pred);
    out->push_back(static_cast<Sym>(r.head.args.size()));
    for (const Term& t : r.head.args) out->push_back(t.val);
  }
}

class Evaluator {
 public:
  Evaluator(const Program& prog, const Atom* goal, EvalStats* stats,
            const EvalOptions& options, EvaluatorArena& a, bool allow_reuse,
            bool* reused_out)
      : prog_(prog),
        goal_(goal),
        stats_(stats),
        options_(options),
        a_(a),
        allow_reuse_(allow_reuse && options.engine.reuse_facts),
        reused_out_(reused_out) {}

  // Returns true if the goal was derived (always false without a goal or
  // with early_exit off; Query's fallback membership check covers those).
  bool Run() {
    SetUpRules();
    if (goal_ != nullptr) {
      goal_tuple_.clear();
      for (const Term& t : goal_->args) goal_tuple_.push_back(t.val);
    }
    bool reused = false;
    if (SeedFacts(&reused)) return true;
    if (reused_out_ != nullptr) *reused_out_ = reused;
    // Body-less rules with natives seed like facts, after native eval.
    for (const Rule& r : prog_.rules()) {
      if (!r.body.empty() || r.IsFact()) continue;
      a_.env.Reset(MaxVar(r));
      if (EvalNativesAndEmit(r, 0)) return true;
    }
    // Worklist: join each newly derived tuple as the delta of every body
    // occurrence of its predicate.
    while (!a_.work.empty()) {
      const auto [pred, idx] = a_.work.front();
      a_.work.pop_front();
      const std::vector<Sym> tuple = a_.db.Tuples(pred)[idx];
      for (const auto& [ri, bi] : a_.rule_index[pred]) {
        const Rule& r = prog_.rules()[ri];
        a_.env.Reset(a_.max_var[ri]);
        if (!Match(r.body[bi].args, tuple, a_.env)) continue;
        PlanOrder(r, ri, bi);
        if (JoinOrdered(r, 0)) return true;
      }
    }
    return false;
  }

 private:
  void SetUpRules() {
    const std::size_t np = prog_.num_preds();
    a_.rule_index.resize(np);
    for (auto& v : a_.rule_index) v.clear();
    a_.max_var.clear();
    std::size_t max_body = 1;
    for (std::size_t ri = 0; ri < prog_.rules().size(); ++ri) {
      const Rule& r = prog_.rules()[ri];
      a_.max_var.push_back(static_cast<std::uint32_t>(MaxVar(r)));
      if (r.body.size() > max_body) max_body = r.body.size();
      for (std::size_t bi = 0; bi < r.body.size(); ++bi) {
        a_.rule_index[r.body[bi].pred].push_back(
            {static_cast<std::uint32_t>(ri), static_cast<std::uint32_t>(bi)});
      }
    }
    if (a_.scratch.size() < max_body) a_.scratch.resize(max_body);
    a_.indexes.resize(np);
    a_.work.clear();
    if (options_.hints == nullptr && options_.engine.reorder_joins) {
      a_.own_growth.assign(np, 0);
      for (const Rule& r : prog_.rules()) {
        if (!r.IsFact()) a_.own_growth[r.head.pred] = 2;
      }
    }
  }

  // Seeds the EDB: either rolls the database back to the previous solve's
  // fact snapshot (same fact set) or re-inserts every fact. Returns true
  // when a fact is the goal and evaluation can stop immediately.
  bool SeedFacts(bool* reused) {
    FlattenFacts(prog_, &flat_);
    const std::size_t np = prog_.num_preds();
    bool can_reuse = allow_reuse_ && a_.facts_valid && flat_ == a_.fact_flat;
    if (can_reuse) {
      // Roll back to the fact snapshot and adapt the predicate count.
      // Matching fact sequences guarantee every fact predicate exists in
      // both programs, so extensions dropped by a shrink are empty.
      a_.db.TruncateTo(a_.base_counts);
      a_.db.SetNumPreds(np);
      a_.base_counts.resize(np, 0);
      if (goal_ != nullptr && options_.early_exit &&
          a_.db.Contains(goal_->pred, goal_tuple_)) {
        // A goal that is itself a fact would early-exit partway through a
        // fresh seeding; take the fresh path so statistics stay identical
        // whether or not the snapshot is reused (the solve is trivially
        // cheap either way).
        can_reuse = false;
      }
    }
    if (can_reuse) {
      *reused = true;
      total_tuples_ = 0;
      for (std::size_t p = 0; p < a_.base_counts.size(); ++p) {
        total_tuples_ += a_.base_counts[p];
        // Indexes that consumed derived tuples are stale; EDB-only
        // indexes (consumed within the fact snapshot) survive rollback.
        for (auto& [mask, ix] : a_.indexes[p]) {
          if (ix.consumed > a_.base_counts[p]) {
            ix.buckets.clear();
            ix.consumed = 0;
          }
        }
      }
      // Replay the fresh seeding's exact worklist order.
      a_.work.insert(a_.work.end(), a_.fact_order.begin(),
                     a_.fact_order.end());
      if (stats_ != nullptr) {
        stats_->rule_firings += a_.fact_firings;
        stats_->tuples += a_.fact_tuples;
      }
      if (options_.max_tuples != 0 && total_tuples_ > options_.max_tuples) {
        throw BudgetExceeded(options_.max_tuples);
      }
      return false;
    }
    // Fresh seeding: the snapshot is invalid until completed.
    *reused = false;
    a_.facts_valid = false;
    a_.db.Reset(prog_.num_preds());
    for (auto& per_pred : a_.indexes) {
      for (auto& [mask, ix] : per_pred) {
        ix.buckets.clear();
        ix.consumed = 0;
      }
    }
    total_tuples_ = 0;
    seeding_firings_ = 0;
    seeding_tuples_ = 0;
    seeding_ = true;
    for (const Rule& r : prog_.rules()) {
      if (!r.IsFact()) continue;
      a_.env.Reset(0);
      if (EvalNativesAndEmit(r, 0)) {
        seeding_ = false;
        return true;  // a fact was the goal; snapshot stays invalid
      }
    }
    seeding_ = false;
    a_.fact_flat = std::move(flat_);
    a_.base_counts.assign(prog_.num_preds(), 0);
    for (std::size_t p = 0; p < prog_.num_preds(); ++p) {
      a_.base_counts[p] = a_.db.Tuples(static_cast<PredId>(p)).size();
    }
    a_.fact_order.assign(a_.work.begin(), a_.work.end());
    a_.fact_firings = seeding_firings_;
    a_.fact_tuples = seeding_tuples_;
    a_.facts_valid = true;
    return false;
  }

  std::uint8_t GrowthOf(PredId p) const {
    if (options_.hints != nullptr && p < options_.hints->growth.size()) {
      return options_.hints->growth[p];
    }
    return p < a_.own_growth.size() ? a_.own_growth[p] : 2;
  }

  // Chooses the join order for the body atoms other than the delta
  // position `skip`: cheapest-first by (has a bound argument, live
  // extension cardinality, growth class). With reordering disabled the
  // original body order is kept (the legacy scan behavior).
  void PlanOrder(const Rule& r, std::size_t ri, std::size_t skip) {
    a_.order_buf.clear();
    const std::size_t b = r.body.size();
    if (b <= 1) return;
    if (!options_.engine.reorder_joins) {
      for (std::size_t i = 0; i < b; ++i) {
        if (i != skip) a_.order_buf.push_back(static_cast<std::uint32_t>(i));
      }
      return;
    }
    a_.picked.assign(b, 0);
    a_.picked[skip] = 1;
    a_.planned_bound.assign(a_.max_var[ri], 0);
    for (const Term& t : r.body[skip].args) {
      if (t.kind == Term::Kind::kVar) a_.planned_bound[t.val] = 1;
    }
    for (std::size_t step = 1; step < b; ++step) {
      std::size_t best = b;
      bool best_bound = false;
      std::size_t best_n = 0;
      std::uint8_t best_growth = 0;
      for (std::size_t i = 0; i < b; ++i) {
        if (a_.picked[i]) continue;
        const Atom& atom = r.body[i];
        const std::size_t n = a_.db.Tuples(atom.pred).size();
        bool has_bound = false;
        for (const Term& t : atom.args) {
          if (t.kind == Term::Kind::kConst ||
              (t.kind == Term::Kind::kVar && a_.planned_bound[t.val])) {
            has_bound = true;
            break;
          }
        }
        const std::uint8_t growth = GrowthOf(atom.pred);
        const bool better =
            best == b ||
            std::make_tuple(!has_bound, n, growth) <
                std::make_tuple(!best_bound, best_n, best_growth);
        if (better) {
          best = i;
          best_bound = has_bound;
          best_n = n;
          best_growth = growth;
        }
      }
      a_.picked[best] = 1;
      a_.order_buf.push_back(static_cast<std::uint32_t>(best));
      for (const Term& t : r.body[best].args) {
        if (t.kind == Term::Kind::kVar) a_.planned_bound[t.val] = 1;
      }
    }
  }

  // Joins the body atoms in the planned order, starting at order index
  // `oi`; then evaluates natives and emits the head.
  bool JoinOrdered(const Rule& r, std::size_t oi) {
    if (oi == a_.order_buf.size()) return EvalNativesAndEmit(r, 0);
    const Atom& atom = r.body[a_.order_buf[oi]];
    const auto& ext = a_.db.Tuples(atom.pred);
    // Size snapshot: the recursion below can Emit into atom.pred,
    // growing its extension. Tuples inserted mid-join are joined later
    // via their own worklist delta.
    const std::size_t n = ext.size();
    if (options_.engine.use_index && atom.args.size() <= 64) {
      std::uint64_t mask = 0;
      a_.keybuf.clear();
      for (std::size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.kind == Term::Kind::kConst) {
          mask |= std::uint64_t{1} << i;
          a_.keybuf.push_back(t.val);
        } else if (a_.env.Bound(t.val)) {
          mask |= std::uint64_t{1} << i;
          a_.keybuf.push_back(a_.env.Get(t.val));
        }
      }
      if (mask != 0) return ProbeIndexed(r, oi, atom, mask, n);
    }
    for (std::size_t ti = 0; ti < n; ++ti) {
      if (stats_ != nullptr) ++stats_->join_attempts;
      const std::size_t mark = a_.env.Mark();
      if (Match(atom.args, a_.db.Tuples(atom.pred)[ti], a_.env)) {
        if (JoinOrdered(r, oi + 1)) return true;
      }
      a_.env.Undo(mark);
    }
    return false;
  }

  // Indexed probe: candidates come from the (pred, mask) bucket keyed by
  // the bound argument values in `keybuf` instead of a full scan.
  bool ProbeIndexed(const Rule& r, std::size_t oi, const Atom& atom,
                    std::uint64_t mask, std::size_t n) {
    auto [it, fresh] = a_.indexes[atom.pred].try_emplace(mask);
    ArgIndex& ix = it->second;
    if (fresh && stats_ != nullptr) ++stats_->index_builds;
    // Catch the index up over tuples emitted since the last probe.
    const auto& ext = a_.db.Tuples(atom.pred);
    if (ix.consumed < n) {
      for (std::size_t ti = ix.consumed; ti < n; ++ti) {
        catchup_key_.clear();
        const std::vector<Sym>& tup = ext[ti];
        for (std::size_t i = 0; i < tup.size(); ++i) {
          if (mask & (std::uint64_t{1} << i)) catchup_key_.push_back(tup[i]);
        }
        ix.buckets[catchup_key_].push_back(static_cast<std::uint32_t>(ti));
      }
      ix.consumed = n;
    }
    if (stats_ != nullptr) ++stats_->index_probes;
    const auto bucket = ix.buckets.find(a_.keybuf);
    if (bucket == ix.buckets.end()) return false;
    // Copy the candidate list: recursion below may rehash the bucket map
    // (deeper probes catch up the same index) or grow this bucket.
    std::vector<std::uint32_t>& cands = a_.scratch[oi];
    cands.clear();
    for (const std::uint32_t ti : bucket->second) {
      if (ti < n) cands.push_back(ti);
    }
    if (stats_ != nullptr) stats_->index_hits += cands.size();
    for (const std::uint32_t ti : cands) {
      if (stats_ != nullptr) ++stats_->join_attempts;
      const std::size_t mark = a_.env.Mark();
      if (Match(atom.args, a_.db.Tuples(atom.pred)[ti], a_.env)) {
        if (JoinOrdered(r, oi + 1)) return true;
      }
      a_.env.Undo(mark);
    }
    return false;
  }

  bool EvalNativesAndEmit(const Rule& r, std::size_t at) {
    if (at == r.natives.size()) return Emit(r);
    const Native& n = r.natives[at];
    std::vector<Sym> inputs;
    inputs.reserve(n.inputs.size());
    for (const Term& t : n.inputs) {
      if (t.kind == Term::Kind::kConst) {
        inputs.push_back(t.val);
      } else {
        // Guaranteed bound by ValidateProgram.
        assert(a_.env.Bound(t.val) && "native input must be bound");
        inputs.push_back(a_.env.Get(t.val));
      }
    }
    Sym out = 0;
    if (!n.fn(inputs, &out)) return false;
    const std::size_t mark = a_.env.Mark();
    if (n.output.has_value()) {
      if (a_.env.Bound(*n.output)) {
        if (a_.env.Get(*n.output) != out) return false;
      } else {
        a_.env.Bind(*n.output, out);
      }
    }
    const bool found = EvalNativesAndEmit(r, at + 1);
    if (!found) a_.env.Undo(mark);
    return found;
  }

  bool Emit(const Rule& r) {
    std::vector<Sym> tuple;
    tuple.reserve(r.head.args.size());
    for (const Term& t : r.head.args) {
      if (t.kind == Term::Kind::kConst) {
        tuple.push_back(t.val);
      } else {
        // Guaranteed bound by ValidateProgram.
        assert(a_.env.Bound(t.val) && "unsafe rule: unbound head variable");
        tuple.push_back(a_.env.Get(t.val));
      }
    }
    if (stats_ != nullptr) ++stats_->rule_firings;
    if (seeding_) ++seeding_firings_;
    if (!a_.db.Insert(r.head.pred, tuple)) return false;
    if (stats_ != nullptr) ++stats_->tuples;
    if (seeding_) ++seeding_tuples_;
    ++total_tuples_;
    const std::size_t idx = a_.db.Tuples(r.head.pred).size() - 1;
    a_.work.push_back({r.head.pred, static_cast<std::uint32_t>(idx)});
    if (goal_ != nullptr && options_.early_exit &&
        r.head.pred == goal_->pred && tuple == goal_tuple_) {
      if (stats_ != nullptr) stats_->goal_found = true;
      return true;
    }
    if (options_.max_tuples != 0 && total_tuples_ > options_.max_tuples) {
      throw BudgetExceeded(options_.max_tuples);
    }
    return false;
  }

  const Program& prog_;
  const Atom* goal_;
  EvalStats* stats_;
  const EvalOptions& options_;
  EvaluatorArena& a_;
  const bool allow_reuse_;
  bool* reused_out_;
  std::vector<Sym> goal_tuple_;
  std::vector<Sym> flat_;
  std::vector<Sym> catchup_key_;
  std::size_t total_tuples_ = 0;
  bool seeding_ = false;
  std::size_t seeding_firings_ = 0;
  std::size_t seeding_tuples_ = 0;
};

// Shared driver behind Query/Eval/Engine::Solve. `goal` may be null (full
// fixpoint). When `reused` is non-null it reports whether the EDB snapshot
// was rolled back instead of re-seeded.
bool RunEvaluation(const Program& prog, const Atom* goal, EvalStats* stats,
                   const EvalOptions& options, EvaluatorArena& arena,
                   bool allow_reuse, bool* reused) {
  ValidateProgram(prog);
  if (goal != nullptr) ValidateGoal(prog, *goal);
  Evaluator ev(prog, goal, stats, options, arena, allow_reuse, reused);
  if (ev.Run()) return true;
  if (goal == nullptr) return false;
  // Fixpoint reached without early exit; check membership.
  std::vector<Sym> tuple;
  tuple.reserve(goal->args.size());
  for (const Term& t : goal->args) tuple.push_back(t.val);
  const bool found = arena.db.Contains(goal->pred, tuple);
  if (stats != nullptr && found) stats->goal_found = true;
  return found;
}

}  // namespace

bool Query(const Program& prog, const Atom& goal, EvalStats* stats,
           const EvalOptions& options) {
  if (stats != nullptr) *stats = EvalStats{};
  EvaluatorArena arena;
  return RunEvaluation(prog, &goal, stats, options, arena,
                       /*allow_reuse=*/false, nullptr);
}

Database Eval(const Program& prog, EvalStats* stats,
              const EvalOptions& options) {
  if (stats != nullptr) *stats = EvalStats{};
  EvalOptions opts = options;
  opts.early_exit = false;
  EvaluatorArena arena;
  RunEvaluation(prog, nullptr, stats, opts, arena, /*allow_reuse=*/false,
                nullptr);
  return std::move(arena.db);
}

Engine::Engine() : arena_(std::make_unique<EvaluatorArena>()) {}
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

bool Engine::Solve(const Program& prog, const Atom& goal,
                   const EvalOptions& options) {
  last_ = EvalStats{};
  ++solves_;
  bool reused = false;
  try {
    const bool derived = RunEvaluation(prog, &goal, &last_, options, *arena_,
                                       /*allow_reuse=*/true, &reused);
    if (reused) ++fact_reuses_;
    total_ += last_;
    return derived;
  } catch (...) {
    // Budget blown mid-evaluation: keep what the aborted solve did.
    if (reused) ++fact_reuses_;
    total_ += last_;
    throw;
  }
}

}  // namespace rapar::dl
