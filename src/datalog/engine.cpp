#include "datalog/engine.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace rapar::dl {

// --- database ---------------------------------------------------------------

std::size_t Database::HashTuple(const std::vector<Sym>& tuple) {
  std::size_t h = 0x12345678;
  for (const Sym s : tuple) HashCombine(h, s);
  return h;
}

std::size_t Database::HashCells(const Ext& e, std::size_t ti) {
  std::size_t h = 0x12345678;
  for (std::size_t c = 0; c < e.arity; ++c) {
    HashCombine(h, e.columnar ? e.cols[c][ti] : e.pool[ti * e.arity + c]);
  }
  return h;
}

bool Database::CellsEqual(const Ext& e, std::size_t ti,
                          const std::vector<Sym>& tuple) {
  if (e.columnar) {
    for (std::size_t c = 0; c < e.arity; ++c) {
      if (e.cols[c][ti] != tuple[c]) return false;
    }
    return true;
  }
  const Sym* row = e.pool.data() + ti * e.arity;
  for (std::size_t c = 0; c < e.arity; ++c) {
    if (row[c] != tuple[c]) return false;
  }
  return true;
}

void Database::RebuildSlots(Ext& e) {
  std::size_t cap = e.slots.size() < 16 ? 16 : e.slots.size();
  while (cap * 7 < (e.n + 1) * 8) cap <<= 1;
  e.slots.assign(cap, kEmptySlot);
  const std::size_t mask = cap - 1;
  for (std::size_t ti = 0; ti < e.n; ++ti) {
    std::size_t i = HashCells(e, ti) & mask;
    while (e.slots[i] != kEmptySlot) i = (i + 1) & mask;
    e.slots[i] = static_cast<std::uint32_t>(ti);
  }
}

bool Database::Insert(PredId pred, const std::vector<Sym>& tuple) {
  Ext& e = exts_[pred];
  if (e.n == 0) {
    // First tuple since (re)configuration: adopt this arity and make the
    // containers match the configured layout.
    if (e.arity != tuple.size()) {
      e.arity = static_cast<std::uint32_t>(tuple.size());
      e.pool.clear();
      e.cols.clear();
    }
    if (e.columnar) {
      if (e.cols.size() != e.arity) e.cols.assign(e.arity, {});
    } else if (!e.cols.empty()) {
      e.cols.clear();
    }
  }
  assert(e.arity == tuple.size() && "tuple arity mismatch");
  // Grow at ~7/8 load (also covers the empty table).
  if ((e.n + 1) * 8 > e.slots.size() * 7) RebuildSlots(e);
  const std::size_t mask = e.slots.size() - 1;
  std::size_t i = HashTuple(tuple) & mask;
  while (e.slots[i] != kEmptySlot) {
    if (CellsEqual(e, e.slots[i], tuple)) return false;
    i = (i + 1) & mask;
  }
  e.slots[i] = static_cast<std::uint32_t>(e.n);
  if (e.columnar) {
    for (std::size_t c = 0; c < e.arity; ++c) e.cols[c].push_back(tuple[c]);
  } else {
    e.pool.insert(e.pool.end(), tuple.begin(), tuple.end());
  }
  ++e.n;
  return true;
}

bool Database::Contains(PredId pred, const std::vector<Sym>& tuple) const {
  const Ext& e = exts_[pred];
  if (e.n == 0 || e.slots.empty()) return false;
  if (e.arity != tuple.size()) return false;
  const std::size_t mask = e.slots.size() - 1;
  std::size_t i = HashTuple(tuple) & mask;
  while (e.slots[i] != kEmptySlot) {
    if (CellsEqual(e, e.slots[i], tuple)) return true;
    i = (i + 1) & mask;
  }
  return false;
}

void Database::Row(PredId pred, std::size_t ti, std::vector<Sym>* out) const {
  const Ext& e = exts_[pred];
  out->clear();
  if (e.columnar) {
    for (std::size_t c = 0; c < e.arity; ++c) out->push_back(e.cols[c][ti]);
  } else {
    const Sym* row = e.pool.data() + ti * e.arity;
    out->insert(out->end(), row, row + e.arity);
  }
}

std::vector<std::vector<Sym>> Database::Tuples(PredId pred) const {
  const Ext& e = exts_[pred];
  std::vector<std::vector<Sym>> out(e.n);
  for (std::size_t ti = 0; ti < e.n; ++ti) Row(pred, ti, &out[ti]);
  return out;
}

void Database::Reset(std::size_t num_preds) {
  exts_.resize(num_preds);
  for (Ext& e : exts_) {
    e.n = 0;
    e.pool.clear();
    for (auto& col : e.cols) col.clear();
    std::fill(e.slots.begin(), e.slots.end(), kEmptySlot);
  }
}

void Database::TruncateTo(const std::vector<std::size_t>& keep) {
  for (std::size_t p = 0; p < exts_.size(); ++p) {
    Ext& e = exts_[p];
    const std::size_t k = p < keep.size() ? keep[p] : 0;
    if (e.n <= k) continue;
    e.n = k;
    if (e.columnar) {
      for (auto& col : e.cols) col.resize(k);
    } else {
      e.pool.resize(k * e.arity);
    }
    RebuildSlots(e);
  }
}

void Database::ClearPred(PredId pred) {
  Ext& e = exts_[pred];
  e.n = 0;
  e.pool.clear();
  for (auto& col : e.cols) col.clear();
  std::fill(e.slots.begin(), e.slots.end(), kEmptySlot);
}

void Database::SetColumnar(PredId pred, bool columnar) {
  Ext& e = exts_[pred];
  if (e.n != 0 || e.columnar == columnar) return;
  e.columnar = columnar;
  e.pool.clear();
  e.cols.clear();
  if (columnar && e.arity != Ext::kNoArity) e.cols.assign(e.arity, {});
}

namespace {

// Rule-local variable binding environment.
class Bindings {
 public:
  void Reset(std::size_t num_vars) {
    vals_.assign(num_vars, std::nullopt);
    trail_.clear();
  }
  bool Bound(VarSym v) const { return vals_[v].has_value(); }
  Sym Get(VarSym v) const { return *vals_[v]; }
  void Bind(VarSym v, Sym s) {
    vals_[v] = s;
    trail_.push_back(v);
  }
  std::size_t Mark() const { return trail_.size(); }
  void Undo(std::size_t mark) {
    while (trail_.size() > mark) {
      vals_[trail_.back()] = std::nullopt;
      trail_.pop_back();
    }
  }

 private:
  std::vector<std::optional<Sym>> vals_;
  std::vector<VarSym> trail_;
};

std::size_t MaxVar(const Rule& rule) {
  std::size_t mx = 0;
  auto scan_term = [&](const Term& t) {
    if (t.kind == Term::Kind::kVar && t.val + 1 > mx) mx = t.val + 1;
  };
  for (const Term& t : rule.head.args) scan_term(t);
  for (const Atom& a : rule.body) {
    for (const Term& t : a.args) scan_term(t);
  }
  for (const Native& n : rule.natives) {
    for (const Term& t : n.inputs) scan_term(t);
    if (n.output.has_value() && *n.output + 1 > mx) mx = *n.output + 1;
  }
  return mx;
}

// Unifies a stored tuple (std::vector<Sym> or RowRef — anything indexable
// by argument position) against `pattern` (the atom's args) under `env`.
// ValidateProgram's arity checks guarantee the sizes line up.
template <typename Row>
bool Match(const std::vector<Term>& pattern, const Row& tuple, Bindings& env) {
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const Term& t = pattern[i];
    if (t.kind == Term::Kind::kConst) {
      if (t.val != tuple[i]) return false;
    } else if (env.Bound(t.val)) {
      if (env.Get(t.val) != tuple[i]) return false;
    } else {
      env.Bind(t.val, tuple[i]);
    }
  }
  return true;
}

// --- input validation -------------------------------------------------------
//
// These conditions were previously assert-only, i.e. undefined behavior in
// NDEBUG builds (reading Term::val of a variable as a constant, or
// dereferencing an empty optional for an unbound native input). They are
// now checked once per evaluation and reported as std::invalid_argument.

void ValidateGoal(const Program& prog, const Atom& goal) {
  if (goal.pred >= prog.num_preds()) {
    throw std::invalid_argument("datalog goal: unknown predicate id " +
                                std::to_string(goal.pred));
  }
  const PredInfo& info = prog.pred(goal.pred);
  if (goal.args.size() != info.arity) {
    throw std::invalid_argument(
        "datalog goal: arity mismatch for '" + info.name + "': got " +
        std::to_string(goal.args.size()) + " args, declared " +
        std::to_string(info.arity));
  }
  for (const Term& t : goal.args) {
    if (t.kind != Term::Kind::kConst) {
      throw std::invalid_argument("datalog goal: atom on '" + info.name +
                                  "' is not ground (has a variable)");
    }
  }
}

// Range restriction / rule safety, the engine-side mirror of
// dlopt::ValidateRangeRestriction: every native input must be bound by the
// body or an earlier native's output (natives run after the body join, in
// order), and every head variable by the body or some native output. Also
// checks every atom against its predicate's declared arity, which the join
// relies on (Match unifies positionally).
void ValidateProgram(const Program& prog) {
  std::vector<char> bound;
  for (std::size_t ri = 0; ri < prog.rules().size(); ++ri) {
    const Rule& r = prog.rules()[ri];
    auto fail = [&](const std::string& why) {
      throw std::invalid_argument("datalog rule #" + std::to_string(ri) +
                                  " is unsafe (" + why + "): " +
                                  prog.RuleToString(r));
    };
    auto check_arity = [&](const Atom& a) {
      if (a.pred >= prog.num_preds()) fail("unknown predicate id");
      if (a.args.size() != prog.pred(a.pred).arity) {
        fail("arity mismatch on '" + prog.pred(a.pred).name + "'");
      }
    };
    check_arity(r.head);
    bound.assign(MaxVar(r), 0);
    for (const Atom& a : r.body) {
      check_arity(a);
      for (const Term& t : a.args) {
        if (t.kind == Term::Kind::kVar) bound[t.val] = 1;
      }
    }
    for (const Native& n : r.natives) {
      for (const Term& t : n.inputs) {
        if (t.kind == Term::Kind::kVar && !bound[t.val]) {
          fail("input of native '" + n.name +
               "' is not bound by the body or an earlier native");
        }
      }
      if (n.output.has_value()) bound[*n.output] = 1;
    }
    for (const Term& t : r.head.args) {
      if (t.kind == Term::Kind::kVar && !bound[t.val]) {
        fail("head variable is not bound by the body or a native output");
      }
    }
  }
}

}  // namespace

// --- reusable evaluator state -----------------------------------------------

// A lazy index over one predicate's extension for one bound-position
// signature (bit i set = argument i is a lookup key). `consumed` counts
// how many tuples of the extension have been folded in; probes catch the
// index up incrementally before reading, so emission stays O(1) and only
// signatures a join actually demands are ever built.
//
// Two representations share the struct. Hash mode groups tuple ids into
// per-key buckets. Sorted mode (columnar storage) keeps tuple ids ordered
// by (key columns, tuple id) as LSM-style sorted runs: each catch-up sorts
// the new suffix into a run, trailing runs merge whenever the previous run
// is no more than twice the new one (amortized O(n log n) total), and a
// probe binary-searches each run (a merge scan). Runs cover disjoint
// ascending tuple-id intervals, so concatenating the per-run matches
// yields candidates in ascending tuple id within a key — exactly the order
// hash buckets produce — which keeps derivation order and join statistics
// independent of the representation.
struct ArgIndex {
  bool sorted = false;
  std::size_t consumed = 0;
  // Hash mode.
  std::unordered_map<std::vector<Sym>, std::vector<std::uint32_t>,
                     rapar::VectorHash<Sym>>
      buckets;
  // Sorted mode.
  std::vector<std::uint32_t> tids;
  std::vector<std::size_t> run_ends;  // exclusive end offset of each run

  // Drops the indexed content but keeps the representation choice.
  void Clear() {
    consumed = 0;
    buckets.clear();
    tids.clear();
    run_ends.clear();
  }
};

// State that persists across Engine::Solve calls: the database, worklist,
// binding frames, join-order scratch and join indexes keep their
// allocations; the seeded-EDB snapshot lets a solve whose fact set matches
// the previous one skip re-seeding; and the delta snapshot (program shape
// of the last fixpoint solve) lets EngineOptions::delta_solve keep whole
// unchanged strata across guesses.
struct EvaluatorArena {
  Database db{0};
  std::deque<std::pair<PredId, std::uint32_t>> work;
  // pred -> (rule index, body position) of every body occurrence.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      rule_index;
  std::vector<std::uint32_t> max_var;  // per rule
  // pred -> signature mask -> index.
  std::vector<std::unordered_map<std::uint64_t, ArgIndex>> indexes;
  Bindings env;
  std::vector<std::vector<std::uint32_t>> scratch;  // per join depth
  std::vector<Sym> keybuf;
  std::vector<std::uint32_t> order_buf;
  std::vector<char> picked;
  std::vector<char> planned_bound;
  std::vector<std::uint8_t> own_growth;  // fallback hints (0 = EDB, 2 = IDB)
  std::vector<Sym> popbuf;               // worklist-pop tuple buffer
  std::vector<Sym> emit_buf;             // head-tuple buffer

  // Seeded-EDB snapshot of the previous solve. `facts_valid` holds only
  // when `db`'s first `base_counts[p]` tuples of every predicate are
  // exactly the facts described by `fact_flat` (flattened, exact — no
  // fingerprint collisions).
  bool facts_valid = false;
  std::vector<Sym> fact_flat;
  std::vector<std::size_t> base_counts;
  // (pred, tuple index) of each seeded fact in emission order: reuse
  // replays the exact worklist of a fresh seeding, so derivation order —
  // and with it early-exit statistics — is identical either way.
  std::vector<std::pair<PredId, std::uint32_t>> fact_order;
  std::size_t fact_firings = 0;
  std::size_t fact_tuples = 0;

  // Delta snapshot (EngineOptions::delta_solve): the program shape whose
  // least model `db` currently holds. `delta_valid` is set only after a
  // solve that reached the full fixpoint without a budget abort, so every
  // retained extension is exactly its stratum's least-model value.
  bool delta_valid = false;
  std::vector<std::string> delta_consts;  // interned constant names, in order
  std::vector<std::pair<std::string, std::size_t>> delta_preds;  // name, arity
  // Per head predicate, the sorted serializations of its rules (a multiset
  // fingerprint; rule order within a stratum does not affect its value).
  std::vector<std::vector<std::string>> delta_rules;
  std::uint64_t delta_epoch = 0;  // uniquifies untagged natives
  // Scratch reused across delta attempts.
  std::vector<std::vector<std::string>> delta_rules_new;
  std::vector<char> dirty;  // per pred, this attempt
};

namespace {

// Flattens the program's facts (pred, args...) for exact EDB-reuse
// comparison across solves. Deliberately excludes the predicate count:
// the Datalog backend's per-guess programs share their EDB but differ in
// derived-only predicates (guess-specific dis-chain lengths), and the
// rollback adapts the database's predicate count separately.
void FlattenFacts(const Program& prog, std::vector<Sym>* out) {
  out->clear();
  for (const Rule& r : prog.rules()) {
    if (!r.IsFact()) continue;
    out->push_back(r.head.pred);
    out->push_back(static_cast<Sym>(r.head.args.size()));
    for (const Term& t : r.head.args) out->push_back(t.val);
  }
}

// --- delta snapshot helpers -------------------------------------------------

void AppendTerm(const Term& t, std::string* s) {
  s->push_back(t.kind == Term::Kind::kConst ? 'c' : 'v');
  *s += std::to_string(t.val);
  s->push_back(',');
}

void AppendAtom(const Atom& a, std::string* s) {
  *s += std::to_string(a.pred);
  s->push_back('(');
  for (const Term& t : a.args) AppendTerm(t, s);
  s->push_back(')');
}

// Serializes every rule into a representation-equality string, grouped by
// head predicate and sorted within each group (a multiset fingerprint).
// Two rules serialize equal iff they derive the same instances: terms by
// (kind, symbol) — the caller has already established that the constant
// tables of the compared programs are identical, so symbol equality is
// value equality — and natives by their semantic-identity tag (see
// Native::tag). An untagged native has no cross-program identity, so it
// serializes with a globally unique marker and never compares equal.
void SerializeRules(const Program& prog, std::uint64_t* epoch,
                    std::vector<std::vector<std::string>>* out) {
  out->assign(prog.num_preds(), {});
  std::string s;
  for (const Rule& r : prog.rules()) {
    s.clear();
    AppendAtom(r.head, &s);
    for (const Atom& a : r.body) {
      s.push_back('|');
      AppendAtom(a, &s);
    }
    for (const Native& n : r.natives) {
      s.push_back('~');
      if (n.tag.empty()) {
        s.push_back('!');
        s += std::to_string(++*epoch);
      } else {
        s += n.tag;
      }
      s.push_back(':');
      for (const Term& t : n.inputs) AppendTerm(t, &s);
      if (n.output.has_value()) {
        s.push_back('>');
        s += std::to_string(*n.output);
      }
    }
    (*out)[r.head.pred].push_back(s);
  }
  for (auto& group : *out) std::sort(group.begin(), group.end());
}

// Records `prog` (which `arena.db` now holds the least model of) as the
// delta snapshot for the next solve.
void RecordDeltaState(const Program& prog, EvaluatorArena& a) {
  a.delta_consts.clear();
  for (std::size_t i = 0; i < prog.num_consts(); ++i) {
    a.delta_consts.push_back(prog.const_name(static_cast<Sym>(i)));
  }
  a.delta_preds.clear();
  for (std::size_t p = 0; p < prog.num_preds(); ++p) {
    a.delta_preds.emplace_back(prog.pred(static_cast<PredId>(p)).name,
                               prog.pred(static_cast<PredId>(p)).arity);
  }
  SerializeRules(prog, &a.delta_epoch, &a.delta_rules);
  a.delta_valid = true;
}

// Iterative Tarjan over the predicate dependency graph (edge head -> body
// predicate). SCC ids are assigned in completion order, i.e. every SCC's
// dependencies get smaller ids than the SCC itself.
void TarjanSccs(const std::vector<std::vector<std::uint32_t>>& adj,
                std::vector<std::uint32_t>* scc_id, std::size_t* num_sccs) {
  const std::size_t n = adj.size();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited), low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  // (node, next adjacency offset) DFS frames.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> frames;
  scc_id->assign(n, 0);
  std::uint32_t next_index = 0, next_scc = 0;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      auto& [v, child] = frames.back();
      if (child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      while (child < adj[v].size()) {
        const std::uint32_t w = adj[v][child++];
        if (index[w] == kUnvisited) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w] && index[w] < low[v]) low[v] = index[w];
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        std::uint32_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          (*scc_id)[w] = next_scc;
        } while (w != v);
        ++next_scc;
      }
      const std::uint32_t done = v;
      frames.pop_back();
      if (!frames.empty()) {
        const std::uint32_t parent = frames.back().first;
        if (low[done] < low[parent]) low[parent] = low[done];
      }
    }
  }
  *num_sccs = next_scc;
}

// Outcome of a cross-guess delta attempt. Only a definitively negative
// attempt is recorded as the solve's result: the fixpoint is canonical, so
// "worklist drained, goal absent, budget respected" transfers verbatim to
// what a full solve would have concluded. Every terminating attempt (goal
// derived, goal found retained, or budget blown) is discarded and re-run
// as a fresh full solve so the recorded outcome and statistics match the
// non-delta engine exactly (see DESIGN.md §13).
enum class DeltaOutcome { kNegative, kTerminating, kNotApplicable };

class Evaluator {
 public:
  Evaluator(const Program& prog, const Atom* goal, EvalStats* stats,
            const EvalOptions& options, EvaluatorArena& a, bool allow_reuse,
            bool* reused_out)
      : prog_(prog),
        goal_(goal),
        stats_(stats),
        options_(options),
        a_(a),
        allow_reuse_(allow_reuse && options.engine.reuse_facts),
        reused_out_(reused_out) {}

  // Returns true if the goal was derived (always false without a goal or
  // with early_exit off; Query's fallback membership check covers those).
  bool Run() {
    SetUpRules(nullptr);
    SetGoalTuple();
    bool reused = false;
    if (SeedFacts(&reused)) return true;
    if (reused_out_ != nullptr) *reused_out_ = reused;
    // Body-less rules with natives seed like facts, after native eval.
    for (const Rule& r : prog_.rules()) {
      if (!r.body.empty() || r.IsFact()) continue;
      a_.env.Reset(MaxVar(r));
      if (EvalNativesAndEmit(r, 0)) return true;
    }
    return DrainWorklist();
  }

  // Attempts a cross-guess delta solve against the arena's retained
  // fixpoint. On kNegative the database holds the new program's least
  // model, the recorded stats are final, and the delta snapshot has been
  // advanced; otherwise the caller falls back to a fresh full solve.
  DeltaOutcome RunDelta() {
    if (!a_.delta_valid) return DeltaOutcome::kNotApplicable;
    // Symbols are interned per program; retained tuples only mean the
    // same thing under an identical constant table.
    if (prog_.num_consts() != a_.delta_consts.size()) {
      return DeltaOutcome::kNotApplicable;
    }
    for (std::size_t i = 0; i < a_.delta_consts.size(); ++i) {
      if (prog_.const_name(static_cast<Sym>(i)) != a_.delta_consts[i]) {
        return DeltaOutcome::kNotApplicable;
      }
    }
    const std::size_t np = prog_.num_preds();
    const std::size_t old_np = a_.delta_preds.size();
    for (std::size_t p = 0; p < std::min(np, old_np); ++p) {
      const PredInfo& info = prog_.pred(static_cast<PredId>(p));
      if (info.name != a_.delta_preds[p].first ||
          info.arity != a_.delta_preds[p].second) {
        return DeltaOutcome::kNotApplicable;
      }
    }
    SerializeRules(prog_, &a_.delta_epoch, &a_.delta_rules_new);

    // Per-predicate "own rules changed" bits, then dirtiness closed over
    // the SCC condensation: a stratum's least-model value changes only if
    // its own rules changed or something it depends on did.
    a_.dirty.assign(np, 0);
    for (std::size_t p = 0; p < np; ++p) {
      a_.dirty[p] = p >= old_np || a_.delta_rules_new[p] != a_.delta_rules[p];
    }
    std::vector<std::vector<std::uint32_t>> adj(np);
    for (const Rule& r : prog_.rules()) {
      for (const Atom& atom : r.body) adj[r.head.pred].push_back(atom.pred);
    }
    std::vector<std::uint32_t> scc_id;
    std::size_t num_sccs = 0;
    TarjanSccs(adj, &scc_id, &num_sccs);
    std::vector<char> scc_dirty(num_sccs, 0);
    for (std::size_t p = 0; p < np; ++p) {
      if (a_.dirty[p]) scc_dirty[scc_id[p]] = 1;
    }
    // Cross-SCC edges always point at smaller ids (Tarjan completion
    // order), so one ascending pass propagates dirtiness transitively.
    std::vector<std::vector<std::uint32_t>> scc_deps(num_sccs);
    for (std::size_t p = 0; p < np; ++p) {
      for (const std::uint32_t q : adj[p]) {
        if (scc_id[q] != scc_id[p]) scc_deps[scc_id[p]].push_back(scc_id[q]);
      }
    }
    std::size_t dirty_sccs = 0;
    for (std::size_t s = 0; s < num_sccs; ++s) {
      if (!scc_dirty[s]) {
        for (const std::uint32_t d : scc_deps[s]) {
          if (scc_dirty[d]) {
            scc_dirty[s] = 1;
            break;
          }
        }
      }
      if (scc_dirty[s]) ++dirty_sccs;
    }
    for (std::size_t p = 0; p < np; ++p) a_.dirty[p] = scc_dirty[scc_id[p]];

    // From here on the database is mutated: the snapshots no longer
    // describe it until a fixpoint is re-established.
    a_.delta_valid = false;
    a_.facts_valid = false;
    SetGoalTuple();

    try {
      // Retract: vanished predicates wholesale, dirty extensions and the
      // content of their indexes (the index *entries* survive, like the
      // EDB rollback, so index_builds keeps engine-lifetime semantics).
      std::size_t retracts = 0;
      for (std::size_t p = np; p < a_.db.num_preds(); ++p) {
        retracts += a_.db.Size(static_cast<PredId>(p));
      }
      for (std::size_t p = 0; p < std::min(np, a_.db.num_preds()); ++p) {
        if (!a_.dirty[p]) continue;
        retracts += a_.db.Size(static_cast<PredId>(p));
        a_.db.ClearPred(static_cast<PredId>(p));
        for (auto& [mask, ix] : a_.indexes[p]) ix.Clear();
      }
      a_.db.SetNumPreds(np);
      SetUpRules(&a_.dirty);  // rule_index over dirty-headed rules only
      for (std::size_t p = 0; p < np; ++p) {
        a_.db.SetColumnar(static_cast<PredId>(p),
                          SortedPred(static_cast<PredId>(p)));
      }
      std::size_t kept = 0;
      for (std::size_t p = 0; p < np; ++p) {
        kept += a_.db.Size(static_cast<PredId>(p));
      }
      total_tuples_ = kept;
      if (stats_ != nullptr) {
        stats_->tuples += kept;  // the solve's count ends at the fixpoint size
        stats_->delta_retracts += retracts;
        stats_->delta_reseeded_strata += dirty_sccs;
      }
      if (options_.max_tuples != 0 && total_tuples_ > options_.max_tuples) {
        throw BudgetExceeded(options_.max_tuples);
      }

      // Re-assert the dirty strata's seeds in fresh-seeding order: fact
      // rules first, then body-less native rules.
      seeding_ = true;
      seeding_firings_ = 0;
      seeding_tuples_ = 0;
      for (const Rule& r : prog_.rules()) {
        if (!r.IsFact() || !a_.dirty[r.head.pred]) continue;
        a_.env.Reset(0);
        if (EvalNativesAndEmit(r, 0)) {
          seeding_ = false;
          if (stats_ != nullptr) stats_->delta_asserts += seeding_tuples_;
          return DeltaOutcome::kTerminating;
        }
      }
      for (const Rule& r : prog_.rules()) {
        if (!r.body.empty() || r.IsFact() || !a_.dirty[r.head.pred]) continue;
        a_.env.Reset(MaxVar(r));
        if (EvalNativesAndEmit(r, 0)) {
          seeding_ = false;
          if (stats_ != nullptr) stats_->delta_asserts += seeding_tuples_;
          return DeltaOutcome::kTerminating;
        }
      }
      seeding_ = false;
      if (stats_ != nullptr) stats_->delta_asserts += seeding_tuples_;

      // Feed every retained tuple that a dirty rule consumes through the
      // worklist; dirty-strata tuples enqueue themselves as they emit.
      for (std::size_t p = 0; p < np; ++p) {
        if (a_.dirty[p] || a_.rule_index[p].empty()) continue;
        const std::size_t sz = a_.db.Size(static_cast<PredId>(p));
        for (std::size_t ti = 0; ti < sz; ++ti) {
          a_.work.push_back(
              {static_cast<PredId>(p), static_cast<std::uint32_t>(ti)});
        }
      }
      if (DrainWorklist()) return DeltaOutcome::kTerminating;
    } catch (const BudgetExceeded&) {
      seeding_ = false;
      return DeltaOutcome::kTerminating;
    }
    // Fixpoint reached within budget. A retained goal still terminates
    // (the fresh fallback re-derives it with reference statistics); only
    // a definitively negative outcome is recorded from the delta path.
    if (goal_ != nullptr && a_.db.Contains(goal_->pred, goal_tuple_)) {
      return DeltaOutcome::kTerminating;
    }
    // Advance the delta snapshot in place (the serializations were already
    // computed for the dirtiness comparison).
    a_.delta_consts.clear();
    for (std::size_t i = 0; i < prog_.num_consts(); ++i) {
      a_.delta_consts.push_back(prog_.const_name(static_cast<Sym>(i)));
    }
    a_.delta_preds.clear();
    for (std::size_t p = 0; p < np; ++p) {
      a_.delta_preds.emplace_back(prog_.pred(static_cast<PredId>(p)).name,
                                  prog_.pred(static_cast<PredId>(p)).arity);
    }
    a_.delta_rules.swap(a_.delta_rules_new);
    a_.delta_valid = true;
    return DeltaOutcome::kNegative;
  }

 private:
  void SetGoalTuple() {
    goal_tuple_.clear();
    if (goal_ != nullptr) {
      for (const Term& t : goal_->args) goal_tuple_.push_back(t.val);
    }
  }

  // Prepares per-rule metadata and the body-occurrence index. With a
  // `dirty` filter only rules whose head predicate is dirty are indexed:
  // clean rules cannot derive anything new (their stratum is already at
  // its fixpoint), so the delta worklist never needs to fire them.
  void SetUpRules(const std::vector<char>* dirty) {
    const std::size_t np = prog_.num_preds();
    a_.rule_index.resize(np);
    for (auto& v : a_.rule_index) v.clear();
    a_.max_var.clear();
    std::size_t max_body = 1;
    for (std::size_t ri = 0; ri < prog_.rules().size(); ++ri) {
      const Rule& r = prog_.rules()[ri];
      a_.max_var.push_back(static_cast<std::uint32_t>(MaxVar(r)));
      if (r.body.size() > max_body) max_body = r.body.size();
      if (dirty != nullptr && !(*dirty)[r.head.pred]) continue;
      for (std::size_t bi = 0; bi < r.body.size(); ++bi) {
        a_.rule_index[r.body[bi].pred].push_back(
            {static_cast<std::uint32_t>(ri), static_cast<std::uint32_t>(bi)});
      }
    }
    if (a_.scratch.size() < max_body) a_.scratch.resize(max_body);
    a_.indexes.resize(np);
    a_.work.clear();
    if (options_.hints == nullptr &&
        (options_.engine.reorder_joins ||
         options_.engine.storage != StorageMode::kHash)) {
      a_.own_growth.assign(np, 0);
      for (const Rule& r : prog_.rules()) {
        if (!r.IsFact()) a_.own_growth[r.head.pred] = 2;
      }
    }
  }

  // Joins each newly derived tuple as the delta of every indexed body
  // occurrence of its predicate. Returns true when the goal was emitted.
  bool DrainWorklist() {
    while (!a_.work.empty()) {
      const auto [pred, idx] = a_.work.front();
      a_.work.pop_front();
      a_.db.Row(pred, idx, &a_.popbuf);
      for (const auto& [ri, bi] : a_.rule_index[pred]) {
        const Rule& r = prog_.rules()[ri];
        a_.env.Reset(a_.max_var[ri]);
        if (!Match(r.body[bi].args, a_.popbuf, a_.env)) continue;
        PlanOrder(r, ri, bi);
        if (JoinOrdered(r, 0)) return true;
      }
    }
    return false;
  }

  // Seeds the EDB: either rolls the database back to the previous solve's
  // fact snapshot (same fact set) or re-inserts every fact. Returns true
  // when a fact is the goal and evaluation can stop immediately.
  bool SeedFacts(bool* reused) {
    FlattenFacts(prog_, &flat_);
    const std::size_t np = prog_.num_preds();
    bool can_reuse = allow_reuse_ && a_.facts_valid && flat_ == a_.fact_flat;
    if (can_reuse) {
      // Roll back to the fact snapshot and adapt the predicate count.
      // Matching fact sequences guarantee every fact predicate exists in
      // both programs, so extensions dropped by a shrink are empty.
      a_.db.TruncateTo(a_.base_counts);
      a_.db.SetNumPreds(np);
      a_.base_counts.resize(np, 0);
      if (goal_ != nullptr && options_.early_exit &&
          a_.db.Contains(goal_->pred, goal_tuple_)) {
        // A goal that is itself a fact would early-exit partway through a
        // fresh seeding; take the fresh path so statistics stay identical
        // whether or not the snapshot is reused (the solve is trivially
        // cheap either way).
        can_reuse = false;
      }
    }
    if (can_reuse) {
      *reused = true;
      total_tuples_ = 0;
      for (std::size_t p = 0; p < a_.base_counts.size(); ++p) {
        total_tuples_ += a_.base_counts[p];
        // Indexes that consumed derived tuples are stale; EDB-only
        // indexes (consumed within the fact snapshot) survive rollback.
        for (auto& [mask, ix] : a_.indexes[p]) {
          if (ix.consumed > a_.base_counts[p]) ix.Clear();
        }
        // Storage policy may have changed between solves; only empty
        // extensions (derived-only predicates after rollback) switch.
        a_.db.SetColumnar(static_cast<PredId>(p),
                          SortedPred(static_cast<PredId>(p)));
      }
      // Replay the fresh seeding's exact worklist order.
      a_.work.insert(a_.work.end(), a_.fact_order.begin(),
                     a_.fact_order.end());
      if (stats_ != nullptr) {
        stats_->rule_firings += a_.fact_firings;
        stats_->tuples += a_.fact_tuples;
      }
      if (options_.max_tuples != 0 && total_tuples_ > options_.max_tuples) {
        throw BudgetExceeded(options_.max_tuples);
      }
      return false;
    }
    // Fresh seeding: the snapshot is invalid until completed.
    *reused = false;
    a_.facts_valid = false;
    a_.db.Reset(np);
    for (std::size_t p = 0; p < np; ++p) {
      a_.db.SetColumnar(static_cast<PredId>(p),
                        SortedPred(static_cast<PredId>(p)));
    }
    for (auto& per_pred : a_.indexes) {
      for (auto& [mask, ix] : per_pred) ix.Clear();
    }
    total_tuples_ = 0;
    seeding_firings_ = 0;
    seeding_tuples_ = 0;
    seeding_ = true;
    for (const Rule& r : prog_.rules()) {
      if (!r.IsFact()) continue;
      a_.env.Reset(0);
      if (EvalNativesAndEmit(r, 0)) {
        seeding_ = false;
        return true;  // a fact was the goal; snapshot stays invalid
      }
    }
    seeding_ = false;
    a_.fact_flat = std::move(flat_);
    a_.base_counts.assign(np, 0);
    for (std::size_t p = 0; p < np; ++p) {
      a_.base_counts[p] = a_.db.Size(static_cast<PredId>(p));
    }
    a_.fact_order.assign(a_.work.begin(), a_.work.end());
    a_.fact_firings = seeding_firings_;
    a_.fact_tuples = seeding_tuples_;
    a_.facts_valid = true;
    return false;
  }

  std::uint8_t GrowthOf(PredId p) const {
    if (options_.hints != nullptr && p < options_.hints->growth.size()) {
      return options_.hints->growth[p];
    }
    return p < a_.own_growth.size() ? a_.own_growth[p] : 2;
  }

  // Storage-mode policy: does this predicate use the columnar layout and
  // sorted merge-scan indexes? (kAuto: EDB relations sort once and stay
  // sorted; recursive IDB relations are the high-fanout core where cache-
  // friendly columns pay; the in-between rank keeps hash buckets.)
  bool SortedPred(PredId p) const {
    switch (options_.engine.storage) {
      case StorageMode::kHash:
        return false;
      case StorageMode::kColumnar:
        return true;
      case StorageMode::kAuto:
        return GrowthOf(p) != 1;
    }
    return false;
  }

  // Chooses the join order for the body atoms other than the delta
  // position `skip`: cheapest-first by (has a bound argument, live
  // extension cardinality, growth class). With reordering disabled the
  // original body order is kept (the legacy scan behavior).
  void PlanOrder(const Rule& r, std::size_t ri, std::size_t skip) {
    a_.order_buf.clear();
    const std::size_t b = r.body.size();
    if (b <= 1) return;
    if (!options_.engine.reorder_joins) {
      for (std::size_t i = 0; i < b; ++i) {
        if (i != skip) a_.order_buf.push_back(static_cast<std::uint32_t>(i));
      }
      return;
    }
    a_.picked.assign(b, 0);
    a_.picked[skip] = 1;
    a_.planned_bound.assign(a_.max_var[ri], 0);
    for (const Term& t : r.body[skip].args) {
      if (t.kind == Term::Kind::kVar) a_.planned_bound[t.val] = 1;
    }
    for (std::size_t step = 1; step < b; ++step) {
      std::size_t best = b;
      bool best_bound = false;
      std::size_t best_n = 0;
      std::uint8_t best_growth = 0;
      for (std::size_t i = 0; i < b; ++i) {
        if (a_.picked[i]) continue;
        const Atom& atom = r.body[i];
        const std::size_t n = a_.db.Size(atom.pred);
        bool has_bound = false;
        for (const Term& t : atom.args) {
          if (t.kind == Term::Kind::kConst ||
              (t.kind == Term::Kind::kVar && a_.planned_bound[t.val])) {
            has_bound = true;
            break;
          }
        }
        const std::uint8_t growth = GrowthOf(atom.pred);
        const bool better =
            best == b ||
            std::make_tuple(!has_bound, n, growth) <
                std::make_tuple(!best_bound, best_n, best_growth);
        if (better) {
          best = i;
          best_bound = has_bound;
          best_n = n;
          best_growth = growth;
        }
      }
      a_.picked[best] = 1;
      a_.order_buf.push_back(static_cast<std::uint32_t>(best));
      for (const Term& t : r.body[best].args) {
        if (t.kind == Term::Kind::kVar) a_.planned_bound[t.val] = 1;
      }
    }
  }

  // Joins the body atoms in the planned order, starting at order index
  // `oi`; then evaluates natives and emits the head.
  bool JoinOrdered(const Rule& r, std::size_t oi) {
    if (oi == a_.order_buf.size()) return EvalNativesAndEmit(r, 0);
    const Atom& atom = r.body[a_.order_buf[oi]];
    // Size snapshot: the recursion below can Emit into atom.pred, growing
    // its extension. Tuples inserted mid-join are joined later via their
    // own worklist delta.
    const std::size_t n = a_.db.Size(atom.pred);
    if (options_.engine.use_index && atom.args.size() <= 64) {
      std::uint64_t mask = 0;
      a_.keybuf.clear();
      for (std::size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.kind == Term::Kind::kConst) {
          mask |= std::uint64_t{1} << i;
          a_.keybuf.push_back(t.val);
        } else if (a_.env.Bound(t.val)) {
          mask |= std::uint64_t{1} << i;
          a_.keybuf.push_back(a_.env.Get(t.val));
        }
      }
      if (mask != 0) return ProbeIndexed(r, oi, atom, mask, n);
    }
    for (std::size_t ti = 0; ti < n; ++ti) {
      if (stats_ != nullptr) ++stats_->join_attempts;
      const std::size_t mark = a_.env.Mark();
      if (Match(atom.args, a_.db.At(atom.pred, ti), a_.env)) {
        if (JoinOrdered(r, oi + 1)) return true;
      }
      a_.env.Undo(mark);
    }
    return false;
  }

  // Lexicographic comparison of tuple `ti`'s masked cells against the
  // probe key in `keybuf` (-1/0/1).
  int CmpKey(PredId pred, std::uint64_t mask, std::uint32_t ti) const {
    const RowRef row = a_.db.At(pred, ti);
    std::size_t i = 0, k = 0;
    for (std::uint64_t m = mask; m != 0; m >>= 1, ++i) {
      if (!(m & 1)) continue;
      const Sym c = row[i];
      if (c != a_.keybuf[k]) return c < a_.keybuf[k] ? -1 : 1;
      ++k;
    }
    return 0;
  }

  // Lexicographic comparison of two tuples' masked cells (-1/0/1).
  int CmpTids(PredId pred, std::uint64_t mask, std::uint32_t ta,
              std::uint32_t tb) const {
    const RowRef ra = a_.db.At(pred, ta);
    const RowRef rb = a_.db.At(pred, tb);
    std::size_t i = 0;
    for (std::uint64_t m = mask; m != 0; m >>= 1, ++i) {
      if (!(m & 1)) continue;
      const Sym ca = ra[i], cb = rb[i];
      if (ca != cb) return ca < cb ? -1 : 1;
    }
    return 0;
  }

  // Indexed probe: candidates come from the (pred, mask) index keyed by
  // the bound argument values in `keybuf` instead of a full scan. The
  // index representation follows the predicate's storage mode.
  bool ProbeIndexed(const Rule& r, std::size_t oi, const Atom& atom,
                    std::uint64_t mask, std::size_t n) {
    const bool want_sorted = SortedPred(atom.pred);
    auto [it, fresh] = a_.indexes[atom.pred].try_emplace(mask);
    ArgIndex& ix = it->second;
    if (fresh) {
      ix.sorted = want_sorted;
      if (stats_ != nullptr) ++stats_->index_builds;
    } else if (ix.sorted != want_sorted) {
      // Storage policy changed between solves on a reused arena: rebuild
      // this signature in the new representation.
      ix.Clear();
      ix.sorted = want_sorted;
      if (stats_ != nullptr) ++stats_->index_builds;
    }
    std::vector<std::uint32_t>& cands = a_.scratch[oi];
    cands.clear();
    if (ix.sorted) {
      CatchUpSorted(atom.pred, mask, n, ix);
      if (stats_ != nullptr) ++stats_->merge_scans;
      // Merge scan: binary-search each sorted run for the key's range.
      // Runs cover disjoint ascending tuple-id intervals, so this visits
      // candidates in ascending tuple id — the hash-bucket order.
      std::size_t base = 0;
      for (const std::size_t end : ix.run_ends) {
        const auto run_begin = ix.tids.begin() + base;
        const auto run_end = ix.tids.begin() + end;
        const auto lo = std::partition_point(
            run_begin, run_end,
            [&](std::uint32_t t) { return CmpKey(atom.pred, mask, t) < 0; });
        const auto hi = std::partition_point(
            lo, run_end,
            [&](std::uint32_t t) { return CmpKey(atom.pred, mask, t) == 0; });
        for (auto p = lo; p != hi; ++p) {
          if (*p < n) cands.push_back(*p);
        }
        base = end;
      }
    } else {
      // Catch the index up over tuples emitted since the last probe.
      if (ix.consumed < n) {
        for (std::size_t ti = ix.consumed; ti < n; ++ti) {
          catchup_key_.clear();
          const RowRef tup = a_.db.At(atom.pred, ti);
          std::size_t i = 0;
          for (std::uint64_t m = mask; m != 0; m >>= 1, ++i) {
            if (m & 1) catchup_key_.push_back(tup[i]);
          }
          ix.buckets[catchup_key_].push_back(static_cast<std::uint32_t>(ti));
        }
        ix.consumed = n;
      }
      if (stats_ != nullptr) ++stats_->index_probes;
      const auto bucket = ix.buckets.find(a_.keybuf);
      if (bucket == ix.buckets.end()) return false;
      // Copy the candidate list: recursion below may rehash the bucket
      // map (deeper probes catch up the same index) or grow this bucket.
      for (const std::uint32_t ti : bucket->second) {
        if (ti < n) cands.push_back(ti);
      }
    }
    if (stats_ != nullptr) stats_->index_hits += cands.size();
    for (const std::uint32_t ti : cands) {
      if (stats_ != nullptr) ++stats_->join_attempts;
      const std::size_t mark = a_.env.Mark();
      if (Match(atom.args, a_.db.At(atom.pred, ti), a_.env)) {
        if (JoinOrdered(r, oi + 1)) return true;
      }
      a_.env.Undo(mark);
    }
    return false;
  }

  // Folds tuples [consumed, n) into the sorted index as a new run, then
  // merges trailing runs while the previous run is at most twice the new
  // one (LSM-style merge collapse: run sizes stay geometrically
  // decreasing, so maintenance is O(n log n) amortized and probes touch
  // O(log n) runs).
  void CatchUpSorted(PredId pred, std::uint64_t mask, std::size_t n,
                     ArgIndex& ix) {
    if (ix.consumed >= n) return;
    const std::size_t start = ix.tids.size();
    for (std::size_t ti = ix.consumed; ti < n; ++ti) {
      ix.tids.push_back(static_cast<std::uint32_t>(ti));
    }
    const auto cmp = [&](std::uint32_t ta, std::uint32_t tb) {
      const int c = CmpTids(pred, mask, ta, tb);
      return c != 0 ? c < 0 : ta < tb;
    };
    std::sort(ix.tids.begin() + start, ix.tids.end(), cmp);
    ix.run_ends.push_back(ix.tids.size());
    ix.consumed = n;
    while (ix.run_ends.size() >= 2) {
      const std::size_t m = ix.run_ends.size();
      const std::size_t prev_base = m >= 3 ? ix.run_ends[m - 3] : 0;
      const std::size_t prev = ix.run_ends[m - 2] - prev_base;
      const std::size_t last = ix.run_ends[m - 1] - ix.run_ends[m - 2];
      if (prev > 2 * last) break;
      std::inplace_merge(ix.tids.begin() + prev_base,
                         ix.tids.begin() + ix.run_ends[m - 2], ix.tids.end(),
                         cmp);
      ix.run_ends[m - 2] = ix.run_ends[m - 1];
      ix.run_ends.pop_back();
    }
  }

  bool EvalNativesAndEmit(const Rule& r, std::size_t at) {
    if (at == r.natives.size()) return Emit(r);
    const Native& n = r.natives[at];
    std::vector<Sym> inputs;
    inputs.reserve(n.inputs.size());
    for (const Term& t : n.inputs) {
      if (t.kind == Term::Kind::kConst) {
        inputs.push_back(t.val);
      } else {
        // Guaranteed bound by ValidateProgram.
        assert(a_.env.Bound(t.val) && "native input must be bound");
        inputs.push_back(a_.env.Get(t.val));
      }
    }
    Sym out = 0;
    if (!n.fn(inputs, &out)) return false;
    const std::size_t mark = a_.env.Mark();
    if (n.output.has_value()) {
      if (a_.env.Bound(*n.output)) {
        if (a_.env.Get(*n.output) != out) return false;
      } else {
        a_.env.Bind(*n.output, out);
      }
    }
    const bool found = EvalNativesAndEmit(r, at + 1);
    if (!found) a_.env.Undo(mark);
    return found;
  }

  bool Emit(const Rule& r) {
    std::vector<Sym>& tuple = a_.emit_buf;
    tuple.clear();
    for (const Term& t : r.head.args) {
      if (t.kind == Term::Kind::kConst) {
        tuple.push_back(t.val);
      } else {
        // Guaranteed bound by ValidateProgram.
        assert(a_.env.Bound(t.val) && "unsafe rule: unbound head variable");
        tuple.push_back(a_.env.Get(t.val));
      }
    }
    if (stats_ != nullptr) ++stats_->rule_firings;
    if (seeding_) ++seeding_firings_;
    if (!a_.db.Insert(r.head.pred, tuple)) return false;
    if (stats_ != nullptr) ++stats_->tuples;
    if (seeding_) ++seeding_tuples_;
    ++total_tuples_;
    const std::size_t idx = a_.db.Size(r.head.pred) - 1;
    a_.work.push_back({r.head.pred, static_cast<std::uint32_t>(idx)});
    if (goal_ != nullptr && options_.early_exit &&
        r.head.pred == goal_->pred && tuple == goal_tuple_) {
      if (stats_ != nullptr) stats_->goal_found = true;
      return true;
    }
    if (options_.max_tuples != 0 && total_tuples_ > options_.max_tuples) {
      throw BudgetExceeded(options_.max_tuples);
    }
    return false;
  }

  const Program& prog_;
  const Atom* goal_;
  EvalStats* stats_;
  const EvalOptions& options_;
  EvaluatorArena& a_;
  const bool allow_reuse_;
  bool* reused_out_;
  std::vector<Sym> goal_tuple_;
  std::vector<Sym> flat_;
  std::vector<Sym> catchup_key_;
  std::size_t total_tuples_ = 0;
  bool seeding_ = false;
  std::size_t seeding_firings_ = 0;
  std::size_t seeding_tuples_ = 0;
};

// Shared driver behind Query/Eval/Engine::Solve. `goal` may be null (full
// fixpoint). When `reused` is non-null it reports whether the EDB snapshot
// was rolled back instead of re-seeded.
bool RunEvaluation(const Program& prog, const Atom* goal, EvalStats* stats,
                   const EvalOptions& options, EvaluatorArena& arena,
                   bool allow_reuse, bool* reused) {
  ValidateProgram(prog);
  if (goal != nullptr) ValidateGoal(prog, *goal);
  Evaluator ev(prog, goal, stats, options, arena, allow_reuse, reused);
  if (ev.Run()) return true;
  if (goal == nullptr) return false;
  // Fixpoint reached without early exit; check membership.
  std::vector<Sym> tuple;
  tuple.reserve(goal->args.size());
  for (const Term& t : goal->args) tuple.push_back(t.val);
  const bool found = arena.db.Contains(goal->pred, tuple);
  if (stats != nullptr && found) stats->goal_found = true;
  return found;
}

// Engine::Solve driver under EngineOptions::delta_solve: try the delta
// path; any non-negative outcome falls back to a fresh full solve with
// reference semantics (discarding the attempt's counters except the
// delta_* savings metrics), so the recorded verdict and statistics of a
// terminating solve are exactly the non-delta engine's.
bool RunDeltaSolve(const Program& prog, const Atom* goal, EvalStats* stats,
                   const EvalOptions& options, EvaluatorArena& arena) {
  ValidateProgram(prog);
  if (goal != nullptr) ValidateGoal(prog, *goal);
  {
    Evaluator ev(prog, goal, stats, options, arena, /*allow_reuse=*/false,
                 nullptr);
    switch (ev.RunDelta()) {
      case DeltaOutcome::kNegative:
        return false;
      case DeltaOutcome::kTerminating:
        if (stats != nullptr) {
          EvalStats kept;
          kept.delta_retracts = stats->delta_retracts;
          kept.delta_asserts = stats->delta_asserts;
          kept.delta_reseeded_strata = stats->delta_reseeded_strata;
          *stats = kept;
        }
        break;
      case DeltaOutcome::kNotApplicable:
        break;
    }
  }
  arena.delta_valid = false;
  const bool derived = RunEvaluation(prog, goal, stats, options, arena,
                                     /*allow_reuse=*/false, nullptr);
  // Only a database at the full fixpoint can seed the next delta.
  if (!derived || !options.early_exit) RecordDeltaState(prog, arena);
  return derived;
}

}  // namespace

bool Query(const Program& prog, const Atom& goal, EvalStats* stats,
           const EvalOptions& options) {
  if (stats != nullptr) *stats = EvalStats{};
  EvaluatorArena arena;
  return RunEvaluation(prog, &goal, stats, options, arena,
                       /*allow_reuse=*/false, nullptr);
}

Database Eval(const Program& prog, EvalStats* stats,
              const EvalOptions& options) {
  if (stats != nullptr) *stats = EvalStats{};
  EvalOptions opts = options;
  opts.early_exit = false;
  EvaluatorArena arena;
  RunEvaluation(prog, nullptr, stats, opts, arena, /*allow_reuse=*/false,
                nullptr);
  return std::move(arena.db);
}

Engine::Engine() : arena_(std::make_unique<EvaluatorArena>()) {}
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

bool Engine::Solve(const Program& prog, const Atom& goal,
                   const EvalOptions& options) {
  last_ = EvalStats{};
  ++solves_;
  bool reused = false;
  try {
    bool derived;
    if (options.engine.delta_solve) {
      derived = RunDeltaSolve(prog, &goal, &last_, options, *arena_);
    } else {
      // A plain solve may stop early or roll back: the database no longer
      // holds a recorded program's least model.
      arena_->delta_valid = false;
      derived = RunEvaluation(prog, &goal, &last_, options, *arena_,
                              /*allow_reuse=*/true, &reused);
    }
    if (reused) ++fact_reuses_;
    total_ += last_;
    return derived;
  } catch (...) {
    // Budget blown mid-evaluation: keep what the aborted solve did.
    arena_->delta_valid = false;
    if (reused) ++fact_reuses_;
    total_ += last_;
    throw;
  }
}

}  // namespace rapar::dl
