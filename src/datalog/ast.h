// Datalog abstract syntax: terms, atoms, rules, programs.
//
// The paper's upper bound (§4) encodes safety verification into query
// evaluation for (linear / Cache) Datalog. This module is a complete,
// self-contained Datalog implementation: no external solver is required.
//
// Extensions over textbook Datalog:
//   * native constraints/functions ("builtins") evaluated during rule
//     application — used by the makeP encoding for view joins and
//     timestamp comparisons without materialising huge EDB relations;
//   * programs carry symbol tables so dumps are readable .dl text.
#ifndef RAPAR_DATALOG_AST_H_
#define RAPAR_DATALOG_AST_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/interner.h"

namespace rapar::dl {

// Interned constant symbol.
using Sym = std::uint32_t;
// Predicate identifier.
using PredId = std::uint32_t;
// Rule-local variable (dense, 0-based within each rule).
using VarSym = std::uint32_t;

struct Term {
  enum class Kind { kConst, kVar };
  Kind kind = Kind::kConst;
  std::uint32_t val = 0;

  bool operator==(const Term& o) const {
    return kind == o.kind && val == o.val;
  }
};

// Term factories.
inline Term C(Sym s) { return Term{Term::Kind::kConst, s}; }
inline Term V(VarSym v) { return Term{Term::Kind::kVar, v}; }

struct Atom {
  PredId pred = 0;
  std::vector<Term> args;

  bool operator==(const Atom& o) const {
    return pred == o.pred && args == o.args;
  }
};

// A native constraint / function evaluated during rule application, after
// its input terms are ground. If `output` is set, the native computes a
// binding for that variable; otherwise it is a boolean check.
struct Native {
  std::string name;
  // Semantic identity token: two natives with equal `tag`, `inputs` and
  // `output` compute the same function. Emitters must make the tag capture
  // everything `fn` closes over (e.g. "assume:r0==1", not just "assume");
  // an empty tag means "unknown function" and compares equal to nothing,
  // which keeps rule dedup/subsumption (src/dlopt/) conservative.
  std::string tag;
  std::vector<Term> inputs;
  std::optional<VarSym> output;
  // Returns false to reject the binding. If `output` is set, writes the
  // computed symbol to *out.
  std::function<bool(std::span<const Sym>, Sym* out)> fn;
};

struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Native> natives;

  bool IsFact() const { return body.empty() && natives.empty(); }
};

struct PredInfo {
  std::string name;
  std::size_t arity = 0;
};

// A Datalog program: predicates, interned constants, rules (facts are
// body-less rules).
class Program {
 public:
  PredId AddPred(const std::string& name, std::size_t arity) {
    preds_.push_back(PredInfo{name, arity});
    return static_cast<PredId>(preds_.size() - 1);
  }
  // Interns a named constant.
  Sym ConstSym(const std::string& name) { return consts_.Intern(name); }
  // Interns an integer constant.
  Sym IntSym(long long v) { return consts_.Intern(std::to_string(v)); }

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  void AddFact(Atom atom) { rules_.push_back(Rule{std::move(atom), {}, {}}); }
  // Replaces the rule list wholesale; predicate and constant tables are
  // untouched. Used by the dlopt transforms, which rewrite rules over the
  // original symbol numbering.
  void SetRules(std::vector<Rule> rules) { rules_ = std::move(rules); }

  std::size_t num_preds() const { return preds_.size(); }
  const PredInfo& pred(PredId p) const { return preds_[p]; }
  const std::vector<Rule>& rules() const { return rules_; }
  std::size_t num_consts() const { return consts_.size(); }
  const std::string& const_name(Sym s) const { return consts_.Get(s); }

  // True if every rule has at most one IDB (derived-predicate) atom in its
  // body: the linear Datalog fragment whose query evaluation is PSPACE
  // (Gottlob & Papadimitriou; §4).
  bool IsLinear() const;
  // Predicates appearing in some rule head.
  std::vector<bool> IdbPreds() const;

  // Number of distinct rules + facts; |Prog| in the complexity statements.
  std::size_t size() const { return rules_.size(); }

  std::string AtomToString(const Atom& atom) const;
  std::string RuleToString(const Rule& rule) const;
  std::string ToString() const;

 private:
  std::vector<PredInfo> preds_;
  Interner<std::string> consts_;
  std::vector<Rule> rules_;
};

}  // namespace rapar::dl

#endif  // RAPAR_DATALOG_AST_H_
