// Bottom-up (semi-naive) Datalog evaluation with argument-hash indexes.
#ifndef RAPAR_DATALOG_ENGINE_H_
#define RAPAR_DATALOG_ENGINE_H_

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "datalog/ast.h"

namespace rapar::dl {

// Predicate extensions computed by evaluation.
class Database {
 public:
  explicit Database(std::size_t num_preds) : exts_(num_preds) {}

  // Returns true if the tuple was new.
  bool Insert(PredId pred, std::vector<Sym> tuple) {
    auto& ext = exts_[pred];
    auto [it, fresh] = ext.index.insert(tuple);
    if (fresh) ext.tuples.push_back(*it);
    return fresh;
  }
  bool Contains(PredId pred, const std::vector<Sym>& tuple) const {
    return exts_[pred].index.count(tuple) > 0;
  }
  const std::vector<std::vector<Sym>>& Tuples(PredId pred) const {
    return exts_[pred].tuples;
  }
  std::size_t TotalTuples() const {
    std::size_t n = 0;
    for (const auto& e : exts_) n += e.tuples.size();
    return n;
  }

  std::size_t num_preds() const { return exts_.size(); }

  // Empties every extension, keeping allocated bucket/vector capacity so a
  // reusing caller (Engine) avoids re-allocation churn across solves.
  void Reset(std::size_t num_preds) {
    exts_.resize(num_preds);
    for (auto& e : exts_) {
      e.index.clear();
      e.tuples.clear();
    }
  }

  // Grows or shrinks the predicate count, preserving existing extensions.
  // The EDB-reuse rollback uses this when consecutive programs share
  // their facts but differ in derived-only predicates (the Datalog
  // backend's per-guess dis-chain predicates). Extensions being dropped
  // must already be empty — the caller truncates to the fact snapshot
  // first, and a predicate absent from the new program cannot have facts.
  void SetNumPreds(std::size_t num_preds) { exts_.resize(num_preds); }

  // Removes, per predicate, every tuple inserted after the first
  // `keep[pred]` ones (insertion order). Engine uses this to roll a
  // database back to its seeded-EDB snapshot between solves.
  void TruncateTo(const std::vector<std::size_t>& keep) {
    for (std::size_t p = 0; p < exts_.size(); ++p) {
      auto& e = exts_[p];
      const std::size_t k = p < keep.size() ? keep[p] : 0;
      for (std::size_t i = k; i < e.tuples.size(); ++i) {
        e.index.erase(e.tuples[i]);
      }
      if (e.tuples.size() > k) e.tuples.resize(k);
    }
  }

 private:
  struct Ext {
    std::unordered_set<std::vector<Sym>, rapar::VectorHash<Sym>> index;
    std::vector<std::vector<Sym>> tuples;  // insertion order
  };
  std::vector<Ext> exts_;
};

struct EvalStats {
  std::size_t tuples = 0;        // derived tuples (including facts)
  std::size_t rule_firings = 0;  // successful rule instantiations
  std::size_t join_attempts = 0; // candidate tuples unified against a body atom
  // Argument-hash index counters (all zero when indexing is disabled).
  std::size_t index_probes = 0;  // indexed lookups answered from a bucket
  std::size_t index_hits = 0;    // candidate tuples those lookups yielded
  std::size_t index_builds = 0;  // distinct (predicate, signature) indexes
  bool goal_found = false;

  EvalStats& operator+=(const EvalStats& o) {
    tuples += o.tuples;
    rule_firings += o.rule_firings;
    join_attempts += o.join_attempts;
    index_probes += o.index_probes;
    index_hits += o.index_hits;
    index_builds += o.index_builds;
    goal_found = goal_found || o.goal_found;
    return *this;
  }
};

// Thrown when evaluation derives more than EvalOptions::max_tuples tuples.
// Derives from std::runtime_error so legacy catch sites keep working, but
// lets callers (Engine::Solve, the Datalog verifier) tell a budget abort
// apart from a genuine failure.
class BudgetExceeded : public std::runtime_error {
 public:
  explicit BudgetExceeded(std::size_t budget)
      : std::runtime_error("datalog evaluation exceeded tuple budget (" +
                           std::to_string(budget) + ")"),
        budget_(budget) {}
  std::size_t budget() const { return budget_; }

 private:
  std::size_t budget_ = 0;
};

// Per-predicate growth classification used by the join planner. 0 = EDB
// (extension is static once facts are seeded), 1 = derived but in a
// non-recursive SCC (stabilises once its stratum saturates), 2 = derived
// and recursive. dlopt::MakeJoinHints builds one from the width/SCC
// analysis; without hints the engine derives a conservative 0/2 split
// from Program::IdbPreds.
struct JoinHints {
  std::vector<std::uint8_t> growth;
};

// Evaluation-core tuning knobs, separate from the per-call limits in
// EvalOptions so callers (VerifierOptions::engine) can ablate them.
struct EngineOptions {
  // Build lazy per-(predicate, bound-position signature) hash indexes and
  // probe them in joins instead of scanning the full extension.
  bool use_index = true;
  // Order the remaining body atoms cheapest-first (live extension
  // cardinality, boundness, growth class) per delta instantiation.
  bool reorder_joins = true;
  // Engine only: when consecutive Solve calls share the same fact set,
  // roll the database back to the seeded-EDB snapshot instead of
  // rebuilding it from scratch.
  bool reuse_facts = true;
};

struct EvalOptions {
  // Stop as soon as the goal atom is derived (early exit).
  bool early_exit = true;
  // Abort evaluation (BudgetExceeded) after this many derived tuples
  // (0 = unlimited).
  std::size_t max_tuples = 0;
  // Evaluation-core tuning (indexes, join order, EDB reuse).
  EngineOptions engine;
  // Optional growth classification for the join planner; must outlive the
  // call. When null the engine computes its own conservative hints.
  const JoinHints* hints = nullptr;
};

// Evaluates `prog` to fixpoint (or until `goal` is derived). Returns
// whether Prog ⊢ goal. `*stats` is reset at entry: the counters describe
// this evaluation only, never an accumulation across calls (callers that
// want totals sum explicitly, or use Engine below).
//
// Validates its inputs instead of asserting: a goal that is non-ground,
// arity-mismatched, or on an unknown predicate, and a program with an
// unsafe rule (head variable or native input not bound by the body /
// earlier native outputs) raise std::invalid_argument — also in NDEBUG
// builds, where the former assert-only checks compiled to nothing.
bool Query(const Program& prog, const Atom& goal, EvalStats* stats = nullptr,
           const EvalOptions& options = {});

// Full fixpoint evaluation; returns the database of all derived tuples.
// Resets `*stats` at entry like Query; validates rule safety like Query.
Database Eval(const Program& prog, EvalStats* stats = nullptr,
              const EvalOptions& options = {});

struct EvaluatorArena;

// A reusable solver handle for callers that evaluate many query instances
// (the Datalog verifier runs one per makeP guess). Per-solve statistics
// are reset on every Solve — previously a reused stats struct silently
// accumulated across solves — while `total_stats` keeps the running sums.
//
// The engine owns an evaluator arena: the database, worklist, binding
// frames and argument-hash indexes persist across Solve calls, so
// repeated solves reuse their allocations, and when the fact set of the
// next program fingerprints equal to the previous one the seeded EDB
// tuples (and their still-clean indexes) are rolled back and re-used
// instead of re-inserted (EngineOptions::reuse_facts).
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;

  // Decides prog ⊢ goal (ground). Throws BudgetExceeded when
  // EvalOptions::max_tuples is hit; the partial stats of the aborted
  // solve are still recorded. Throws std::invalid_argument on an invalid
  // goal or unsafe rule (see Query).
  bool Solve(const Program& prog, const Atom& goal,
             const EvalOptions& options = {});

  // Statistics of the most recent Solve only.
  const EvalStats& last_stats() const { return last_; }
  // Running sums over all Solve calls on this engine.
  const EvalStats& total_stats() const { return total_; }
  std::size_t solves() const { return solves_; }
  // Solves whose EDB seeding was satisfied from the previous solve's
  // fact snapshot (reuse_facts).
  std::size_t fact_reuses() const { return fact_reuses_; }

 private:
  EvalStats last_;
  EvalStats total_;
  std::size_t solves_ = 0;
  std::size_t fact_reuses_ = 0;
  std::unique_ptr<EvaluatorArena> arena_;
};

}  // namespace rapar::dl

#endif  // RAPAR_DATALOG_ENGINE_H_
