// Bottom-up (semi-naive) Datalog evaluation with argument-hash indexes,
// opt-in columnar storage with sorted merge-scan indexes, and cross-guess
// delta solving.
#ifndef RAPAR_DATALOG_ENGINE_H_
#define RAPAR_DATALOG_ENGINE_H_

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/hash.h"
#include "datalog/ast.h"

namespace rapar::dl {

// A borrowed view of one stored tuple. Valid only until the next Insert
// on the same predicate (the backing pool may reallocate); joins read it
// immediately and never hold it across an emission.
class RowRef {
 public:
  RowRef(const Sym* row, const std::vector<std::vector<Sym>>* cols,
         std::size_t ti)
      : row_(row), cols_(cols), ti_(ti) {}
  Sym operator[](std::size_t i) const {
    return row_ != nullptr ? row_[i] : (*cols_)[i][ti_];
  }

 private:
  const Sym* row_;                            // row-major layout
  const std::vector<std::vector<Sym>>* cols_; // columnar layout
  std::size_t ti_;
};

// Predicate extensions computed by evaluation.
//
// Storage is flat per predicate — either one row-major pool (stride =
// arity) or per-argument column vectors (EngineOptions::storage; the
// vlog-style layout for the high-fanout predicates) — with an
// open-addressing tuple-id table for duplicate detection. Both layouts
// keep insertion order, which the semi-naive worklist and the index
// candidate ordering rely on.
class Database {
 public:
  explicit Database(std::size_t num_preds) : exts_(num_preds) {}

  // Returns true if the tuple was new (and appended at index Size()-1).
  bool Insert(PredId pred, const std::vector<Sym>& tuple);
  bool Contains(PredId pred, const std::vector<Sym>& tuple) const;

  std::size_t Size(PredId pred) const { return exts_[pred].n; }
  // Borrowed view of tuple `ti` (see RowRef lifetime note).
  RowRef At(PredId pred, std::size_t ti) const {
    const Ext& e = exts_[pred];
    if (e.columnar) return RowRef(nullptr, &e.cols, ti);
    return RowRef(e.pool.data() + ti * e.arity, nullptr, 0);
  }
  // Copies tuple `ti` into *out (cleared first).
  void Row(PredId pred, std::size_t ti, std::vector<Sym>* out) const;
  // Materializes the whole extension in insertion order. For tests and
  // Eval consumers; evaluation uses Size/At/Row.
  std::vector<std::vector<Sym>> Tuples(PredId pred) const;

  std::size_t TotalTuples() const {
    std::size_t n = 0;
    for (const auto& e : exts_) n += e.n;
    return n;
  }

  std::size_t num_preds() const { return exts_.size(); }

  // Empties every extension, keeping allocated pool/slot capacity so a
  // reusing caller (Engine) avoids re-allocation churn across solves.
  void Reset(std::size_t num_preds);

  // Grows or shrinks the predicate count, preserving existing extensions.
  // The EDB-reuse rollback and the delta solver use this when consecutive
  // programs share facts but differ in derived-only predicates (the
  // Datalog backend's per-guess dis-chain predicates). Extensions being
  // dropped must already be empty.
  void SetNumPreds(std::size_t num_preds) { exts_.resize(num_preds); }

  // Removes, per predicate, every tuple inserted after the first
  // `keep[pred]` ones (insertion order). Engine uses this to roll a
  // database back to its seeded-EDB snapshot between solves.
  void TruncateTo(const std::vector<std::size_t>& keep);

  // Drops every tuple of one predicate (delta retraction), keeping
  // capacity and the configured layout.
  void ClearPred(PredId pred);

  // Switches the predicate's storage layout. Only effective while the
  // extension is empty; an extension that already holds tuples keeps its
  // layout (content is representation-independent, so this is safe).
  void SetColumnar(PredId pred, bool columnar);
  bool columnar(PredId pred) const { return exts_[pred].columnar; }

 private:
  struct Ext {
    static constexpr std::uint32_t kNoArity = 0xffffffffu;
    std::uint32_t arity = kNoArity;  // set on first insert
    bool columnar = false;
    std::size_t n = 0;                    // stored tuples
    std::vector<Sym> pool;                // row-major: n * arity cells
    std::vector<std::vector<Sym>> cols;   // columnar: arity columns
    // Open-addressing duplicate table over tuple ids (power-of-two size,
    // linear probing); rebuilt on truncation.
    std::vector<std::uint32_t> slots;
  };
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  static std::size_t HashCells(const Ext& e, std::size_t ti);
  static std::size_t HashTuple(const std::vector<Sym>& tuple);
  static bool CellsEqual(const Ext& e, std::size_t ti,
                         const std::vector<Sym>& tuple);
  static void RebuildSlots(Ext& e);

  std::vector<Ext> exts_;
};

struct EvalStats {
  std::size_t tuples = 0;        // derived tuples (including facts; in a
                                 // delta solve also the retained ones, so
                                 // the count equals the fixpoint size)
  std::size_t rule_firings = 0;  // successful rule instantiations
  std::size_t join_attempts = 0; // candidate tuples unified against a body atom
  // Join-index counters (all zero when indexing is disabled).
  std::size_t index_probes = 0;  // hash-index lookups answered from a bucket
  std::size_t index_hits = 0;    // candidate tuples indexed lookups yielded
                                 // (hash buckets and merge scans alike)
  std::size_t index_builds = 0;  // distinct (predicate, signature) indexes
  std::size_t merge_scans = 0;   // sorted-index probes answered by merge
                                 // scan (columnar storage); the columnar
                                 // counterpart of index_probes
  // Cross-guess delta counters (all zero unless EngineOptions::delta_solve).
  std::size_t delta_retracts = 0;        // tuples dropped from dirty strata
  std::size_t delta_asserts = 0;         // fact/native seeds re-asserted
  std::size_t delta_reseeded_strata = 0; // dirty SCCs re-derived
  bool goal_found = false;

  EvalStats& operator+=(const EvalStats& o) {
    tuples += o.tuples;
    rule_firings += o.rule_firings;
    join_attempts += o.join_attempts;
    index_probes += o.index_probes;
    index_hits += o.index_hits;
    index_builds += o.index_builds;
    merge_scans += o.merge_scans;
    delta_retracts += o.delta_retracts;
    delta_asserts += o.delta_asserts;
    delta_reseeded_strata += o.delta_reseeded_strata;
    goal_found = goal_found || o.goal_found;
    return *this;
  }
};

// Thrown when evaluation derives more than EvalOptions::max_tuples tuples.
// Derives from std::runtime_error so legacy catch sites keep working, but
// lets callers (Engine::Solve, the Datalog verifier) tell a budget abort
// apart from a genuine failure.
class BudgetExceeded : public std::runtime_error {
 public:
  explicit BudgetExceeded(std::size_t budget)
      : std::runtime_error("datalog evaluation exceeded tuple budget (" +
                           std::to_string(budget) + ")"),
        budget_(budget) {}
  std::size_t budget() const { return budget_; }

 private:
  std::size_t budget_ = 0;
};

// Per-predicate growth classification used by the join planner and the
// storage selector. 0 = EDB (extension is static once facts are seeded),
// 1 = derived but in a non-recursive SCC (stabilises once its stratum
// saturates), 2 = derived and recursive. dlopt::MakeJoinHints builds one
// from the width/SCC analysis; without hints the engine derives a
// conservative 0/2 split from the rule heads.
struct JoinHints {
  std::vector<std::uint8_t> growth;
};

// Relation storage / join-index representation.
//   kHash     — row-major pools with lazy argument-hash bucket indexes
//               (the PR 3 engine; the default).
//   kColumnar — column-wise pools with sorted tuple-id indexes probed by
//               merge scan (binary search over LSM-style sorted runs).
//   kAuto     — per predicate by growth class: columnar for EDB (rank 0,
//               sorted once, never merged again) and recursive IDB (rank
//               2, the high-fanout emp/etp/dmp core), hash for rank 1.
// The candidate order a join sees is identical in every mode (ascending
// tuple id within a key), so derivation order, join_attempts, tuples and
// rule_firings do not depend on the storage mode; only the
// index_probes/merge_scans split does.
enum class StorageMode : std::uint8_t { kHash, kColumnar, kAuto };

// Evaluation-core tuning knobs, separate from the per-call limits in
// EvalOptions so callers (VerifierOptions::engine) can ablate them.
struct EngineOptions {
  // Build lazy per-(predicate, bound-position signature) join indexes and
  // probe them instead of scanning the full extension.
  bool use_index = true;
  // Order the remaining body atoms cheapest-first (live extension
  // cardinality, boundness, growth class) per delta instantiation.
  bool reorder_joins = true;
  // Engine only: when consecutive Solve calls share the same fact set,
  // roll the database back to the seeded-EDB snapshot instead of
  // rebuilding it from scratch. Subsumed by (and disabled under)
  // delta_solve, which retracts/re-derives at stratum granularity.
  bool reuse_facts = true;
  // Relation layout + join-index kind (see StorageMode).
  StorageMode storage = StorageMode::kHash;
  // Engine only: cross-guess delta solving. The engine retains the
  // previous solve's program shape (constants, predicates, rules grouped
  // per SCC); when the next program matches on a stratum and everything
  // that stratum depends on, the stratum's extension and indexes are kept
  // as-is, and only the changed strata are retracted and re-derived
  // semi-naively from the diff. A solve whose delta derivation
  // terminates (goal derived or budget blown) is transparently re-run as
  // a fresh full solve, so the recorded outcome and statistics of every
  // terminating solve — and the verdict of every solve — are identical
  // to what a non-delta engine reports (see DESIGN.md §13 for the
  // lattice argument).
  bool delta_solve = false;
};

struct EvalOptions {
  // Stop as soon as the goal atom is derived (early exit).
  bool early_exit = true;
  // Abort evaluation (BudgetExceeded) after this many derived tuples
  // (0 = unlimited).
  std::size_t max_tuples = 0;
  // Evaluation-core tuning (indexes, join order, storage, EDB reuse).
  EngineOptions engine;
  // Optional growth classification for the join planner and storage
  // selector; must outlive the call. When null the engine computes its
  // own conservative hints.
  const JoinHints* hints = nullptr;
};

// Evaluates `prog` to fixpoint (or until `goal` is derived). Returns
// whether Prog ⊢ goal. `*stats` is reset at entry: the counters describe
// this evaluation only, never an accumulation across calls (callers that
// want totals sum explicitly, or use Engine below).
//
// Validates its inputs instead of asserting: a goal that is non-ground,
// arity-mismatched, or on an unknown predicate, and a program with an
// unsafe rule (head variable or native input not bound by the body /
// earlier native outputs) raise std::invalid_argument — also in NDEBUG
// builds, where the former assert-only checks compiled to nothing.
bool Query(const Program& prog, const Atom& goal, EvalStats* stats = nullptr,
           const EvalOptions& options = {});

// Full fixpoint evaluation; returns the database of all derived tuples.
// Resets `*stats` at entry like Query; validates rule safety like Query.
Database Eval(const Program& prog, EvalStats* stats = nullptr,
              const EvalOptions& options = {});

struct EvaluatorArena;

// A reusable solver handle for callers that evaluate many query instances
// (the Datalog verifier runs one per makeP guess). Per-solve statistics
// are reset on every Solve — previously a reused stats struct silently
// accumulated across solves — while `total_stats` keeps the running sums.
//
// The engine owns an evaluator arena: the database, worklist, binding
// frames and join indexes persist across Solve calls, so repeated solves
// reuse their allocations. Across guesses it reuses *results* two ways:
// when the fact set of the next program fingerprints equal to the
// previous one the seeded EDB tuples (and their still-clean indexes) are
// rolled back and re-used instead of re-inserted
// (EngineOptions::reuse_facts); with EngineOptions::delta_solve the
// reuse extends to whole derived strata whose rules (and dependencies)
// are unchanged.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;

  // Decides prog ⊢ goal (ground). Throws BudgetExceeded when
  // EvalOptions::max_tuples is hit; the partial stats of the aborted
  // solve are still recorded. Throws std::invalid_argument on an invalid
  // goal or unsafe rule (see Query).
  bool Solve(const Program& prog, const Atom& goal,
             const EvalOptions& options = {});

  // Statistics of the most recent Solve only.
  const EvalStats& last_stats() const { return last_; }
  // Running sums over all Solve calls on this engine.
  const EvalStats& total_stats() const { return total_; }
  std::size_t solves() const { return solves_; }
  // Solves whose EDB seeding was satisfied from the previous solve's
  // fact snapshot (reuse_facts).
  std::size_t fact_reuses() const { return fact_reuses_; }

 private:
  EvalStats last_;
  EvalStats total_;
  std::size_t solves_ = 0;
  std::size_t fact_reuses_ = 0;
  std::unique_ptr<EvaluatorArena> arena_;
};

}  // namespace rapar::dl

#endif  // RAPAR_DATALOG_ENGINE_H_
