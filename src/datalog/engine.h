// Bottom-up (semi-naive) Datalog evaluation.
#ifndef RAPAR_DATALOG_ENGINE_H_
#define RAPAR_DATALOG_ENGINE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "datalog/ast.h"

namespace rapar::dl {

// Predicate extensions computed by evaluation.
class Database {
 public:
  explicit Database(std::size_t num_preds) : exts_(num_preds) {}

  // Returns true if the tuple was new.
  bool Insert(PredId pred, std::vector<Sym> tuple) {
    auto& ext = exts_[pred];
    auto [it, fresh] = ext.index.insert(tuple);
    if (fresh) ext.tuples.push_back(*it);
    return fresh;
  }
  bool Contains(PredId pred, const std::vector<Sym>& tuple) const {
    return exts_[pred].index.count(tuple) > 0;
  }
  const std::vector<std::vector<Sym>>& Tuples(PredId pred) const {
    return exts_[pred].tuples;
  }
  std::size_t TotalTuples() const {
    std::size_t n = 0;
    for (const auto& e : exts_) n += e.tuples.size();
    return n;
  }

 private:
  struct Ext {
    std::unordered_set<std::vector<Sym>, rapar::VectorHash<Sym>> index;
    std::vector<std::vector<Sym>> tuples;  // insertion order
  };
  std::vector<Ext> exts_;
};

struct EvalStats {
  std::size_t tuples = 0;        // derived tuples (including facts)
  std::size_t rule_firings = 0;  // successful rule instantiations
  std::size_t join_attempts = 0;
  bool goal_found = false;

  EvalStats& operator+=(const EvalStats& o) {
    tuples += o.tuples;
    rule_firings += o.rule_firings;
    join_attempts += o.join_attempts;
    goal_found = goal_found || o.goal_found;
    return *this;
  }
};

struct EvalOptions {
  // Stop as soon as the goal atom is derived (early exit).
  bool early_exit = true;
  // Abort evaluation after this many derived tuples (0 = unlimited).
  std::size_t max_tuples = 0;
};

// Evaluates `prog` to fixpoint (or until `goal` is derived). `goal` must
// be ground. Returns whether Prog ⊢ goal. `*stats` is reset at entry: the
// counters describe this evaluation only, never an accumulation across
// calls (callers that want totals sum explicitly, or use Engine below).
bool Query(const Program& prog, const Atom& goal, EvalStats* stats = nullptr,
           const EvalOptions& options = {});

// Full fixpoint evaluation; returns the database of all derived tuples.
// Resets `*stats` at entry like Query.
Database Eval(const Program& prog, EvalStats* stats = nullptr,
              const EvalOptions& options = {});

// A reusable solver handle for callers that evaluate many query instances
// (the Datalog verifier runs one per makeP guess). Per-solve statistics
// are reset on every Solve — previously a reused stats struct silently
// accumulated across solves — while `total_stats` keeps the running sums.
class Engine {
 public:
  // Decides prog ⊢ goal (ground). Propagates the tuple-budget exception
  // of EvalOptions::max_tuples; the partial stats of the aborted solve
  // are still recorded.
  bool Solve(const Program& prog, const Atom& goal,
             const EvalOptions& options = {});

  // Statistics of the most recent Solve only.
  const EvalStats& last_stats() const { return last_; }
  // Running sums over all Solve calls on this engine.
  const EvalStats& total_stats() const { return total_; }
  std::size_t solves() const { return solves_; }

 private:
  EvalStats last_;
  EvalStats total_;
  std::size_t solves_ = 0;
};

}  // namespace rapar::dl

#endif  // RAPAR_DATALOG_ENGINE_H_
