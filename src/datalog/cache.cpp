#include "datalog/cache.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

#include "common/hash.h"
#include "common/interner.h"

namespace rapar::dl {

namespace {

// Ground atoms are interned as flat vectors [pred, arg0, arg1, ...].
using GroundAtom = std::vector<Sym>;
using AtomId = std::uint32_t;

class CacheSearch {
 public:
  CacheSearch(const Program& prog, const Atom& goal, int k,
              const CacheQueryOptions& options)
      : prog_(prog), k_(k), options_(options) {
    GroundAtom g;
    g.push_back(goal.pred);
    for (const Term& t : goal.args) {
      assert(t.kind == Term::Kind::kConst);
      g.push_back(t.val);
    }
    goal_id_ = atoms_.Intern(std::move(g));
  }

  CacheQueryResult Run() {
    CacheQueryResult result;
    if (k_ <= 0) return result;

    std::unordered_set<std::vector<AtomId>, rapar::VectorHash<AtomId>> seen;
    std::deque<std::vector<AtomId>> frontier;
    std::vector<AtomId> empty;
    seen.insert(empty);
    frontier.push_back(std::move(empty));

    while (!frontier.empty()) {
      std::vector<AtomId> cache = std::move(frontier.front());
      frontier.pop_front();

      // Enumerate Add successors: rule instantiations with body ⊆ cache.
      std::vector<AtomId> heads;
      for (const Rule& r : prog_.rules()) {
        EnumerateInstantiations(r, cache, heads);
      }
      for (AtomId h : heads) {
        // An atom counts as inferred when the Add completes, i.e. when it
        // fits into the cache (matching the cacheK encoding of
        // CacheToLinear, whose `found` rules read the goal from a slot).
        if (std::binary_search(cache.begin(), cache.end(), h)) continue;
        if (static_cast<int>(cache.size()) >= k_) continue;
        if (h == goal_id_) {
          result.derivable = true;
          result.states = seen.size();
          return result;
        }
        std::vector<AtomId> next = cache;
        next.insert(std::lower_bound(next.begin(), next.end(), h), h);
        if (seen.insert(next).second) frontier.push_back(std::move(next));
      }
      // Drop successors.
      for (std::size_t i = 0; i < cache.size(); ++i) {
        std::vector<AtomId> next = cache;
        next.erase(next.begin() + i);
        if (seen.insert(next).second) frontier.push_back(std::move(next));
      }
      if (seen.size() > options_.max_states) {
        result.aborted = true;
        break;
      }
    }
    result.states = seen.size();
    return result;
  }

 private:
  // Collects the head atom ids of all instantiations of `r` whose body is
  // contained in `cache`.
  void EnumerateInstantiations(const Rule& r,
                               const std::vector<AtomId>& cache,
                               std::vector<AtomId>& out) {
    std::size_t num_vars = 0;
    auto scan = [&](const Term& t) {
      if (t.kind == Term::Kind::kVar && t.val + 1 > num_vars) {
        num_vars = t.val + 1;
      }
    };
    for (const Term& t : r.head.args) scan(t);
    for (const Atom& a : r.body) {
      for (const Term& t : a.args) scan(t);
    }
    for (const Native& n : r.natives) {
      for (const Term& t : n.inputs) scan(t);
      if (n.output.has_value() && *n.output + 1 > num_vars) {
        num_vars = *n.output + 1;
      }
    }
    std::vector<std::optional<Sym>> env(num_vars);
    MatchBody(r, cache, 0, env, out);
  }

  void MatchBody(const Rule& r, const std::vector<AtomId>& cache,
                 std::size_t at, std::vector<std::optional<Sym>>& env,
                 std::vector<AtomId>& out) {
    if (at == r.body.size()) {
      // Natives, then head.
      std::vector<std::pair<VarSym, bool>> bound;
      bool ok = true;
      for (const Native& n : r.natives) {
        std::vector<Sym> inputs;
        for (const Term& t : n.inputs) {
          if (t.kind == Term::Kind::kConst) {
            inputs.push_back(t.val);
          } else {
            assert(env[t.val].has_value());
            inputs.push_back(*env[t.val]);
          }
        }
        Sym o = 0;
        if (!n.fn(inputs, &o)) {
          ok = false;
          break;
        }
        if (n.output.has_value()) {
          if (env[*n.output].has_value()) {
            if (*env[*n.output] != o) {
              ok = false;
              break;
            }
          } else {
            env[*n.output] = o;
            bound.emplace_back(*n.output, true);
          }
        }
      }
      if (ok) {
        GroundAtom h;
        h.push_back(r.head.pred);
        for (const Term& t : r.head.args) {
          if (t.kind == Term::Kind::kConst) {
            h.push_back(t.val);
          } else {
            assert(env[t.val].has_value());
            h.push_back(*env[t.val]);
          }
        }
        out.push_back(atoms_.Intern(std::move(h)));
      }
      for (auto& [v, _] : bound) env[v] = std::nullopt;
      return;
    }
    const Atom& pattern = r.body[at];
    for (AtomId aid : cache) {
      const GroundAtom& ga = atoms_.Get(aid);
      if (ga[0] != pattern.pred) continue;
      if (ga.size() != pattern.args.size() + 1) continue;
      std::vector<VarSym> bound;
      bool ok = true;
      for (std::size_t i = 0; i < pattern.args.size(); ++i) {
        const Term& t = pattern.args[i];
        const Sym s = ga[i + 1];
        if (t.kind == Term::Kind::kConst) {
          if (t.val != s) {
            ok = false;
            break;
          }
        } else if (env[t.val].has_value()) {
          if (*env[t.val] != s) {
            ok = false;
            break;
          }
        } else {
          env[t.val] = s;
          bound.push_back(t.val);
        }
      }
      if (ok) MatchBody(r, cache, at + 1, env, out);
      for (VarSym v : bound) env[v] = std::nullopt;
    }
  }

  const Program& prog_;
  const int k_;
  const CacheQueryOptions& options_;
  Interner<GroundAtom, rapar::VectorHash<Sym>> atoms_;
  AtomId goal_id_ = 0;
};

}  // namespace

CacheQueryResult CacheQuery(const Program& prog, const Atom& goal, int k,
                            const CacheQueryOptions& options) {
  CacheSearch search(prog, goal, k, options);
  return search.Run();
}

std::optional<int> MinimalCacheSize(const Program& prog, const Atom& goal,
                                    int limit,
                                    const CacheQueryOptions& options) {
  for (int k = 1; k <= limit; ++k) {
    CacheQueryResult r = CacheQuery(prog, goal, k, options);
    if (r.derivable) return k;
    if (r.aborted) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace rapar::dl
