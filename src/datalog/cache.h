// Cache Datalog (§4): Datalog evaluation where inferred ground atoms live
// in a bounded Cache; atoms may be dropped nondeterministically and a rule
// fires only when its whole body is currently cached. Prog ⊢_k g asks
// whether g can be inferred with |Cache| <= k throughout.
//
// This module provides the ⊢_k decision procedure (explicit search over
// cache states) and the minimal-cache-size probe used to validate
// Lemma 4.4's O(Q0²) bound experimentally.
#ifndef RAPAR_DATALOG_CACHE_H_
#define RAPAR_DATALOG_CACHE_H_

#include <cstdint>
#include <optional>

#include "datalog/ast.h"

namespace rapar::dl {

struct CacheQueryResult {
  bool derivable = false;
  // Distinct cache states visited.
  std::size_t states = 0;
  // Search aborted on the state budget (result may be a false negative).
  bool aborted = false;
};

struct CacheQueryOptions {
  std::size_t max_states = 5'000'000;
};

// Decides Prog ⊢_k goal. `goal` must be ground.
CacheQueryResult CacheQuery(const Program& prog, const Atom& goal, int k,
                            const CacheQueryOptions& options = {});

// Smallest k <= limit with Prog ⊢_k goal, or nullopt if none (including
// the case that the goal is not derivable at all).
std::optional<int> MinimalCacheSize(const Program& prog, const Atom& goal,
                                    int limit,
                                    const CacheQueryOptions& options = {});

}  // namespace rapar::dl

#endif  // RAPAR_DATALOG_CACHE_H_
