// Lemma 4.2: every Cache Datalog query (Prog, g) with cache bound k can be
// turned into a *linear* Datalog query (Prog', g').
//
// Construction: the cache is materialised as one k-slot predicate
//   cacheK(slot_1, ..., slot_k)
// where each slot is a flattened atom [pred-tag, arg_1..arg_A] (A = the
// maximum arity of Prog's predicates; unused positions padded, empty slots
// tagged none). Each Add step of Cache Datalog becomes a family of linear
// rules (one per choice of body/head slot positions), each Drop step a
// blanking rule, and g' is a nullary `found` derived when some slot holds
// g. Every rule has exactly one IDB body atom (cacheK), so Prog' is
// linear; the construction is polynomial in |Prog| and k (O(|Prog|·k^m)
// rules for maximum body size m; the paper's bound is quadratic via a
// sharper encoding, which does not affect the PSPACE argument).
//
// Note: Prog' shares Prog's constant symbol numbering (the constant table
// is copied in order), so natives that capture Sym values remain valid.
#ifndef RAPAR_DATALOG_CACHE_TO_LINEAR_H_
#define RAPAR_DATALOG_CACHE_TO_LINEAR_H_

#include "datalog/ast.h"

namespace rapar::dl {

struct LinearisedQuery {
  Program prog;
  Atom goal;  // nullary `found`
};

// Requires: every rule body of `prog` has at most 3 atoms, `goal` ground.
LinearisedQuery CacheToLinear(const Program& prog, const Atom& goal, int k);

}  // namespace rapar::dl

#endif  // RAPAR_DATALOG_CACHE_TO_LINEAR_H_
