// Dependency graphs of simplified-semantics computations (Definition 1,
// §4.2) and the cost analysis of §4.3.
//
// The graph is built by deterministically replaying a recorded witness run
// (simplified/step.h): vertices are the messages of the final memory
// (first instances, per `genthread`), and (msg1 -> msg2) is an edge when
// msg1 ∈ depend(msg2), i.e. the thread that generated msg2 read msg1
// beforehand. Read counts rc(msg, msg') annotate the edges and drive the
// env-thread-count bound of §4.3.
#ifndef RAPAR_DEPGRAPH_DEP_GRAPH_H_
#define RAPAR_DEPGRAPH_DEP_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simplified/explorer.h"

namespace rapar {

// One vertex: a message of the final abstract memory.
struct DepNode {
  enum class Origin { kInit, kEnv, kDis };
  Origin origin = Origin::kInit;
  VarId var;
  Value val = 0;
  // Step index (into the witness) that first generated the message;
  // -1 for init messages.
  int birth_step = -1;
  // depend(msg): node ids read by genthread(msg) before the generation,
  // with read counts rc.
  std::map<std::uint32_t, int> depend;
};

class DepGraph {
 public:
  // Replays `witness` on `sys` and constructs the dependency graph of the
  // resulting computation. If `final_actor_reads` is non-null it receives
  // the read multiset (node id -> rc) of the actor performing the *last*
  // witness step — for violation witnesses this is depend(violation),
  // which drives the §4.3 env-thread bound for assert-based queries.
  static DepGraph Build(const SimplSystem& sys,
                        const std::vector<SimplStep>& witness,
                        std::map<std::uint32_t, int>* final_actor_reads =
                            nullptr);

  // §4.3 cost of a read multiset: Σ rc·cost(dep) (+1 for the reading env
  // clone itself if `actor_is_env`).
  long long CostOfReads(const std::map<std::uint32_t, int>& reads,
                        bool actor_is_env) const;

  const std::vector<DepNode>& nodes() const { return nodes_; }

  // Longest path length (in edges) from a source to any vertex.
  int Height() const;
  // Maximum |depend(v)| over all vertices.
  int MaxFanIn() const;
  // The compactness bounds of §4.2: every fan-in and the height are at
  // most q0.
  bool IsCompact(int q0) const;

  // §4.3 cost: number of env threads sufficient to generate the message.
  // cost(init) = 0; cost(env msg) = 1 + Σ rc·cost(dep);
  // cost(dis msg) = Σ rc·cost(dep).
  long long CostOf(std::uint32_t node) const;
  // Cost of generating a message (var, val): minimum over matching nodes;
  // -1 if no such message exists in the run.
  long long CostOfMessage(VarId var, Value val) const;

  // Vertices with no incoming / outgoing edges.
  std::vector<std::uint32_t> Sources() const;
  std::vector<std::uint32_t> Sinks() const;

  std::string ToString(const VarTable& vars) const;
  // Graphviz dot output (Figure 4 style: orange/violet per genthread kind).
  std::string ToDot(const VarTable& vars) const;

 private:
  std::vector<DepNode> nodes_;
  mutable std::vector<long long> cost_memo_;
};

// Q0 = |Dom|·|Var| + |dis| (§4.2), with |dis| the combined instruction
// count of the dis threads.
int ComputeQ0(const SimplSystem& sys);

}  // namespace rapar

#endif  // RAPAR_DEPGRAPH_DEP_GRAPH_H_
