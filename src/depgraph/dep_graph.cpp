#include "depgraph/dep_graph.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "common/strings.h"

namespace rapar {

namespace {

// Read histories are persistent lists shared between env-configuration
// provenances (each AddEnvCfg branches from its parent configuration).
struct HistNode {
  std::shared_ptr<const HistNode> parent;
  std::uint32_t read_node;  // dep-graph node id that was read
};

using HistPtr = std::shared_ptr<const HistNode>;

HistPtr Extend(HistPtr parent, std::uint32_t node) {
  auto h = std::make_shared<HistNode>();
  h->parent = std::move(parent);
  h->read_node = node;
  return h;
}

std::map<std::uint32_t, int> Collect(const HistPtr& hist) {
  std::map<std::uint32_t, int> out;
  for (const HistNode* h = hist.get(); h != nullptr; h = h->parent.get()) {
    out[h->read_node]++;
  }
  return out;
}

}  // namespace

int ComputeQ0(const SimplSystem& sys) {
  std::size_t dis_size = 0;
  for (const Cfa* d : sys.dis) dis_size += d->edges().size();
  return static_cast<int>(sys.dom * static_cast<Value>(sys.num_vars) +
                          static_cast<Value>(dis_size));
}

DepGraph DepGraph::Build(const SimplSystem& sys,
                         const std::vector<SimplStep>& witness,
                         std::map<std::uint32_t, int>* final_actor_reads) {
  DepGraph g;
  SimplConfig cfg = InitialConfig(sys);

  // Init message nodes, one per variable.
  for (std::size_t xi = 0; xi < sys.num_vars; ++xi) {
    DepNode n;
    n.origin = DepNode::Origin::kInit;
    n.var = VarId(static_cast<std::uint32_t>(xi));
    n.val = kInitValue;
    g.nodes_.push_back(std::move(n));
  }

  // Shadow structures aligned with cfg's containers.
  // dis_ids[x][p] = node id of the dis message at position p on x.
  std::vector<std::vector<std::uint32_t>> dis_ids(sys.num_vars);
  for (std::size_t xi = 0; xi < sys.num_vars; ++xi) {
    dis_ids[xi].push_back(static_cast<std::uint32_t>(xi));  // init
  }
  // env_ids[i] = node id of env_msgs()[i] (first instance).
  std::vector<std::uint32_t> env_ids;
  // env_hist[i] = read history of the provenance of env_cfgs()[i].
  std::vector<HistPtr> env_hist = {nullptr};  // the initial configuration
  // dis_hist[t] = read history of dis thread t.
  std::vector<HistPtr> dis_hist(sys.dis.size(), nullptr);

  for (std::size_t si = 0; si < witness.size(); ++si) {
    const SimplStep& step = witness[si];
    const bool is_env = step.actor == SimplStep::Actor::kEnv;

    // Resolve the read message to a node id in the PRE-state.
    bool has_read = false;
    std::uint32_t read_id = 0;
    if (step.read_kind == SimplStep::ReadKind::kDisMsg) {
      has_read = true;
      const Cfa& cfa = is_env ? *sys.env : *sys.dis[step.actor_index];
      const VarId x = cfa.Edge(EdgeId(step.edge)).instr.var;
      read_id = dis_ids[x.index()][step.read_pos];
    } else if (step.read_kind == SimplStep::ReadKind::kEnvMsg) {
      has_read = true;
      read_id = env_ids[step.read_pos];
    }

    const HistPtr pre_hist =
        is_env ? env_hist[step.actor_index] : dis_hist[step.actor_index];
    HistPtr post_hist =
        has_read ? Extend(pre_hist, read_id) : pre_hist;

    StepEffect eff = ApplyStep(sys, cfg, step);

    // Writes: create a node (first instance only) whose depend set is the
    // generating actor's read history *before* the store.
    if (eff.wrote) {
      // depend(msg): everything the generating actor read before the
      // store, including a CAS's own load.
      const HistPtr& gen_hist = post_hist;
      if (eff.wrote_is_env) {
        // Locate the message in the post-state sorted vector.
        EnvMsg key;
        key.var = eff.wrote_var;
        key.val = eff.wrote_val;
        key.view = eff.wrote_view;
        const auto& msgs = cfg.env_msgs();
        auto it = std::lower_bound(msgs.begin(), msgs.end(), key);
        assert(it != msgs.end() && *it == key);
        const std::size_t pos =
            static_cast<std::size_t>(it - msgs.begin());
        if (eff.wrote_fresh) {
          DepNode n;
          n.origin = DepNode::Origin::kEnv;
          n.var = eff.wrote_var;
          n.val = eff.wrote_val;
          n.birth_step = static_cast<int>(si);
          // The store's own read happened before the write.
          n.depend = Collect(gen_hist);
          g.nodes_.push_back(std::move(n));
          env_ids.insert(env_ids.begin() + pos,
                         static_cast<std::uint32_t>(g.nodes_.size() - 1));
        }
        // Re-insertion of an existing env message: genthread stays the
        // first adder (Definition of genthread in §4.2).
      } else {
        // dis insertion position: gap+1, or read_pos+1 for CAS-on-dis.
        int pos;
        if (step.read_kind == SimplStep::ReadKind::kDisMsg && step.gap < 0) {
          pos = step.read_pos + 1;
        } else {
          pos = step.gap + 1;
        }
        DepNode n;
        n.origin = DepNode::Origin::kDis;
        n.var = eff.wrote_var;
        n.val = eff.wrote_val;
        n.birth_step = static_cast<int>(si);
        n.depend = Collect(gen_hist);
        g.nodes_.push_back(std::move(n));
        auto& ids = dis_ids[eff.wrote_var.index()];
        ids.insert(ids.begin() + pos,
                   static_cast<std::uint32_t>(g.nodes_.size() - 1));
      }
    }

    if (final_actor_reads != nullptr && si + 1 == witness.size()) {
      *final_actor_reads = Collect(post_hist);
    }

    // Update provenance shadows.
    if (is_env) {
      const auto& cfgs = cfg.env_cfgs();
      auto it = std::lower_bound(cfgs.begin(), cfgs.end(), eff.actor_after);
      assert(it != cfgs.end() && *it == eff.actor_after);
      const std::size_t pos = static_cast<std::size_t>(it - cfgs.begin());
      if (eff.actor_fresh) {
        env_hist.insert(env_hist.begin() + pos, post_hist);
      }
      // If the configuration already existed, its first provenance stands.
    } else {
      dis_hist[step.actor_index] = post_hist;
    }
  }
  return g;
}

int DepGraph::Height() const {
  // Nodes were appended in generation order, so depend edges point to
  // lower indices: one left-to-right pass computes longest paths.
  std::vector<int> h(nodes_.size(), 0);
  int best = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& [dep, rc] : nodes_[i].depend) {
      assert(dep < i);
      h[i] = std::max(h[i], h[dep] + 1);
    }
    best = std::max(best, h[i]);
  }
  return best;
}

int DepGraph::MaxFanIn() const {
  int best = 0;
  for (const DepNode& n : nodes_) {
    best = std::max(best, static_cast<int>(n.depend.size()));
  }
  return best;
}

bool DepGraph::IsCompact(int q0) const {
  return Height() <= q0 && MaxFanIn() <= q0;
}

long long DepGraph::CostOf(std::uint32_t node) const {
  if (cost_memo_.size() != nodes_.size()) {
    cost_memo_.assign(nodes_.size(), -1);
  }
  if (cost_memo_[node] >= 0) return cost_memo_[node];
  const DepNode& n = nodes_[node];
  long long cost = n.origin == DepNode::Origin::kEnv ? 1 : 0;
  for (const auto& [dep, rc] : n.depend) {
    cost += static_cast<long long>(rc) * CostOf(dep);
  }
  cost_memo_[node] = cost;
  return cost;
}

long long DepGraph::CostOfReads(const std::map<std::uint32_t, int>& reads,
                                bool actor_is_env) const {
  long long cost = actor_is_env ? 1 : 0;
  for (const auto& [dep, rc] : reads) {
    cost += static_cast<long long>(rc) * CostOf(dep);
  }
  return cost;
}

long long DepGraph::CostOfMessage(VarId var, Value val) const {
  long long best = -1;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].var == var && nodes_[i].val == val &&
        nodes_[i].origin != DepNode::Origin::kInit) {
      long long c = CostOf(static_cast<std::uint32_t>(i));
      if (best < 0 || c < best) best = c;
    }
  }
  return best;
}

std::vector<std::uint32_t> DepGraph::Sources() const {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].depend.empty()) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::vector<std::uint32_t> DepGraph::Sinks() const {
  std::vector<bool> has_out(nodes_.size(), false);
  for (const DepNode& n : nodes_) {
    for (const auto& [dep, rc] : n.depend) has_out[dep] = true;
  }
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!has_out[i]) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

namespace {
const char* OriginName(DepNode::Origin o) {
  switch (o) {
    case DepNode::Origin::kInit:
      return "init";
    case DepNode::Origin::kEnv:
      return "env";
    case DepNode::Origin::kDis:
      return "dis";
  }
  return "?";
}
}  // namespace

std::string DepGraph::ToString(const VarTable& vars) const {
  std::string out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const DepNode& n = nodes_[i];
    out += StrCat("#", i, " [", OriginName(n.origin), "] (",
                  vars.Name(n.var), ", ", n.val, ") cost=",
                  CostOf(static_cast<std::uint32_t>(i)), " depends:");
    for (const auto& [dep, rc] : n.depend) {
      out += StrCat(" #", dep, "(rc=", rc, ")");
    }
    out += "\n";
  }
  return out;
}

std::string DepGraph::ToDot(const VarTable& vars) const {
  std::string out = "digraph dep {\n  rankdir=BT;\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const DepNode& n = nodes_[i];
    const char* colour = n.origin == DepNode::Origin::kInit    ? "gray"
                         : n.origin == DepNode::Origin::kEnv   ? "orange"
                                                               : "violet";
    out += StrCat("  n", i, " [label=\"(", vars.Name(n.var), ",", n.val,
                  ")\\ncost=", CostOf(static_cast<std::uint32_t>(i)),
                  "\", color=", colour, "];\n");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& [dep, rc] : nodes_[i].depend) {
      out += StrCat("  n", dep, " -> n", i, " [label=\"rc=", rc, "\"];\n");
    }
  }
  out += "}\n";
  return out;
}

}  // namespace rapar
