#include "analysis/liveness.h"

#include "analysis/dataflow.h"

namespace rapar {

namespace {

void GenExpr(const Expr& e, std::vector<bool>& live) {
  std::vector<RegId> read;
  e.CollectRegs(read);
  for (RegId r : read) live[r.index()] = true;
}

}  // namespace

LivenessResult AnalyzeLiveness(const Cfa& cfa) {
  const std::size_t nregs = cfa.program().regs().size();
  const std::vector<bool> bottom(nregs, false);

  auto transfer = [&](const CfaEdge& edge,
                      const std::vector<bool>& at_target) -> std::vector<bool> {
    std::vector<bool> out = at_target;
    switch (edge.instr.kind) {
      case Instr::Kind::kAssign:
        out[edge.instr.reg.index()] = false;  // kill before gen: r := e may
        GenExpr(*edge.instr.expr, out);       // read r itself
        break;
      case Instr::Kind::kLoad:
        out[edge.instr.reg.index()] = false;
        break;
      case Instr::Kind::kAssume:
        GenExpr(*edge.instr.expr, out);
        break;
      case Instr::Kind::kStore:
        out[edge.instr.reg.index()] = true;
        break;
      case Instr::Kind::kCas:
        out[edge.instr.reg.index()] = true;
        out[edge.instr.reg2.index()] = true;
        break;
      default:
        break;  // nop / assert-fail
    }
    return out;
  };
  auto join = [](std::vector<bool>& into, const std::vector<bool>& from) {
    bool changed = false;
    for (std::size_t r = 0; r < into.size(); ++r) {
      if (from[r] && !into[r]) {
        into[r] = true;
        changed = true;
      }
    }
    return changed;
  };

  LivenessResult result;
  result.live_at_node = SolveBackward(cfa, bottom, transfer, join);
  result.assign_dead.assign(cfa.edges().size(), false);
  result.load_dead.assign(cfa.edges().size(), false);
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    const CfaEdge& edge = cfa.edges()[i];
    if (edge.instr.kind != Instr::Kind::kAssign &&
        edge.instr.kind != Instr::Kind::kLoad) {
      continue;
    }
    const bool dead =
        !result.live_at_node[edge.to.index()][edge.instr.reg.index()];
    if (!dead) continue;
    (edge.instr.kind == Instr::Kind::kAssign ? result.assign_dead
                                             : result.load_dead)[i] = true;
  }
  return result;
}

}  // namespace rapar
