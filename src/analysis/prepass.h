// Verifier pre-pass: verdict-preserving CFA pruning.
//
// Four transformations, each sound for safety under both the RA and the
// simplified semantics (they can change the set of reachable
// configurations' *sizes*, never a verdict):
//
//   1. dead-edge removal — edges whose source is unreachable or whose
//      assume guard is constantly false are never traversed;
//   2. guard folding — a constantly-true assume acts as a nop;
//   3. store slicing — a store to a variable that no thread ever loads or
//      CASes (and that is not the verification goal) adds a message no one
//      can acquire; under RA it influences only that variable's timeline,
//      so replacing it by a nop preserves every other observation
//      (Theorem 3.4's simplification is per-variable in the same way);
//   4. dead-assignment dropping — an assignment to a register that
//      liveness proves is never read afterwards.
//
// Dead *loads* are intentionally kept: a load merges the acquired
// message's view into the thread view, so removing one could shrink the
// reachable state space unsoundly.
#ifndef RAPAR_ANALYSIS_PREPASS_H_
#define RAPAR_ANALYSIS_PREPASS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lang/cfa.h"

namespace rapar {

struct PrepassStats {
  std::size_t dead_edges_removed = 0;
  std::size_t guards_folded = 0;
  std::size_t stores_sliced = 0;
  std::size_t assigns_dropped = 0;

  bool Any() const {
    return dead_edges_removed + guards_folded + stores_sliced +
               assigns_dropped >
           0;
  }
  PrepassStats& operator+=(const PrepassStats& o);
  // "removed 2 dead edges, folded 1 guard, sliced 1 store, dropped 0 dead
  // assignments".
  std::string ToString() const;
};

// Returns a pruned copy of `cfa`: dead edges removed, constantly-true
// guards folded to nops, stores to variables outside `keep_stores` sliced
// to nops, dead register assignments dropped to nops. Node ids (and hence
// the entry) are preserved, so control locations keep their meaning.
Cfa PruneCfa(const Cfa& cfa, const std::vector<bool>& keep_stores,
             PrepassStats* stats);

// System-level pre-pass over env ‖ dis_1 ‖ … ‖ dis_n. Computes the
// observed-variable set across all threads (env counts as its own
// unbounded audience), protects `protect_var` (the verification goal —
// pass VarId::Invalid() when there is none), and prunes every CFA.
struct PrepassResult {
  Cfa env;
  std::vector<Cfa> dis;
  PrepassStats stats;
};

PrepassResult RunPrepass(const Cfa& env, const std::vector<const Cfa*>& dis,
                         VarId protect_var);

}  // namespace rapar

#endif  // RAPAR_ANALYSIS_PREPASS_H_
