#include "analysis/reachability.h"

namespace rapar {

ReachabilityResult AnalyzeReachability(const Cfa& cfa) {
  // Constant propagation already computes feasibility-aware reachability:
  // a constantly-false assume transfers to bottom, so nodes behind it stay
  // unreachable unless another path reaches them.
  ConstPropResult cp = RunConstProp(cfa);

  ReachabilityResult result;
  result.node_reachable = std::move(cp.node_reachable);
  result.guards = std::move(cp.guards);
  result.edge_dead.assign(cfa.edges().size(), false);
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    const CfaEdge& edge = cfa.edges()[i];
    const bool dead = !result.node_reachable[edge.from.index()] ||
                      result.guards[i] == GuardVerdict::kAlwaysFalse;
    if (!dead) continue;
    result.edge_dead[i] = true;
    ++result.num_dead_edges;
    if (edge.instr.kind == Instr::Kind::kAssertFail) {
      result.dead_assert_edges.push_back(EdgeId(static_cast<std::uint32_t>(i)));
    }
  }
  return result;
}

}  // namespace rapar
