// Register constant propagation over a CFA.
//
// Forward may-analysis on the flat lattice Bot < Const(v) < Top per
// register. Registers start at kInitValue (both semantics initialise
// registers to 0), loads go to Top (the loaded value is unconstrained),
// and `assume (r == c)` refines r to c on the guarded edge. A node whose
// state is Bot is unreachable — either structurally or because every path
// to it crosses a constantly-false guard.
#ifndef RAPAR_ANALYSIS_CONSTPROP_H_
#define RAPAR_ANALYSIS_CONSTPROP_H_

#include <optional>
#include <vector>

#include "lang/cfa.h"

namespace rapar {

// One abstract register value.
class ConstVal {
 public:
  static ConstVal Top() { return ConstVal(kTop, 0); }
  static ConstVal Of(Value v) { return ConstVal(kConst, v); }

  bool is_top() const { return state_ == kTop; }
  bool is_const() const { return state_ == kConst; }
  Value value() const { return value_; }

  // Lattice join; returns true if *this changed.
  bool JoinWith(const ConstVal& o) {
    if (is_top() || (is_const() && o.is_const() && value_ == o.value_)) {
      return false;
    }
    if (o.is_top() || (is_const() && value_ != o.value_)) {
      state_ = kTop;
      return true;
    }
    return false;
  }

  bool operator==(const ConstVal& o) const {
    return state_ == o.state_ && (state_ != kConst || value_ == o.value_);
  }

 private:
  enum State : char { kConst, kTop };
  ConstVal(State s, Value v) : state_(s), value_(v) {}
  State state_;
  Value value_;
};

// Verdict for each assume edge.
enum class GuardVerdict {
  kUnknown,      // guard reads a non-constant register (or not an assume)
  kAlwaysTrue,   // guard evaluates to non-zero in every reaching state
  kAlwaysFalse,  // guard evaluates to zero in every reaching state
};

struct ConstPropResult {
  // Per node: whether it is reachable from the entry, and (if so) the
  // abstract register values on entry to the node.
  std::vector<bool> node_reachable;
  std::vector<std::vector<ConstVal>> at_node;
  // Per edge (indexed by EdgeId): guard verdict; kUnknown for non-assume
  // edges and for edges leaving unreachable nodes.
  std::vector<GuardVerdict> guards;
};

ConstPropResult RunConstProp(const Cfa& cfa);

// Evaluates `e` under abstract register values; nullopt when any register
// the expression reads is not a known constant.
std::optional<Value> EvalConst(const Expr& e, const std::vector<ConstVal>& regs,
                               Value dom);

}  // namespace rapar

#endif  // RAPAR_ANALYSIS_CONSTPROP_H_
