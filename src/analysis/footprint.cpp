#include "analysis/footprint.h"

namespace rapar {

VarFootprint ComputeFootprint(const Cfa& cfa) {
  const std::size_t num_vars = cfa.program().vars().size();
  VarFootprint fp;
  fp.loaded.assign(num_vars, false);
  fp.stored.assign(num_vars, false);
  fp.cased.assign(num_vars, false);
  for (const CfaEdge& edge : cfa.edges()) {
    switch (edge.instr.kind) {
      case Instr::Kind::kLoad:
        fp.loaded[edge.instr.var.index()] = true;
        break;
      case Instr::Kind::kStore:
        fp.stored[edge.instr.var.index()] = true;
        break;
      case Instr::Kind::kCas:
        fp.cased[edge.instr.var.index()] = true;
        break;
      default:
        break;
    }
  }
  return fp;
}

std::vector<bool> ObservedVars(const std::vector<const Cfa*>& cfas,
                               std::size_t num_vars) {
  std::vector<bool> observed(num_vars, false);
  for (const Cfa* cfa : cfas) {
    for (const CfaEdge& edge : cfa->edges()) {
      if (edge.instr.kind == Instr::Kind::kLoad ||
          edge.instr.kind == Instr::Kind::kCas) {
        observed[edge.instr.var.index()] = true;
      }
    }
  }
  return observed;
}

}  // namespace rapar
