// Reachability & dead-edge analysis.
//
// An edge is *dead* when no execution can ever traverse it: its source
// node is unreachable from the entry, or it is an assume whose guard is
// constantly false (register constant propagation proves it). Removing
// dead edges preserves every verdict of every backend — they contribute
// no steps, no messages and no assertion violations (Theorem 3.4
// soundness is untouched because the simplified semantics only ever
// traverses CFA edges).
#ifndef RAPAR_ANALYSIS_REACHABILITY_H_
#define RAPAR_ANALYSIS_REACHABILITY_H_

#include <vector>

#include "analysis/constprop.h"
#include "lang/cfa.h"

namespace rapar {

struct ReachabilityResult {
  // Per node: reachable from entry through feasible edges.
  std::vector<bool> node_reachable;
  // Per edge (indexed by EdgeId): can never be traversed.
  std::vector<bool> edge_dead;
  // The guard verdicts that justified the dead assume edges (shared with
  // diagnostics so constantly-true guards can be reported/folded too).
  std::vector<GuardVerdict> guards;
  // kAssertFail edges among the dead ones — assertions that can
  // structurally never fire.
  std::vector<EdgeId> dead_assert_edges;
  std::size_t num_dead_edges = 0;
};

ReachabilityResult AnalyzeReachability(const Cfa& cfa);

}  // namespace rapar

#endif  // RAPAR_ANALYSIS_REACHABILITY_H_
