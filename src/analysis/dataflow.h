// A small reusable dataflow framework over Cfa.
//
// All passes in this library (constprop, liveness, reachability) are
// instances of the classic worklist iteration: per-node abstract states,
// edge transfer functions, and a join that reports whether anything
// changed. The framework is deliberately template-only — domains are
// plain structs, transfer functions are lambdas — so new passes cost only
// their lattice.
#ifndef RAPAR_ANALYSIS_DATAFLOW_H_
#define RAPAR_ANALYSIS_DATAFLOW_H_

#include <vector>

#include "lang/cfa.h"

namespace rapar {

// In-edge lists, the mirror of Cfa::OutEdges (the Cfa only stores forward
// adjacency; backward passes need predecessors).
std::vector<std::vector<EdgeId>> ComputeInEdges(const Cfa& cfa);

// Forward fixpoint: states are attached to nodes, edges transfer.
//
//   transfer(edge, in_state)       -> State   (state after the edge)
//   join(into_state, from_state)   -> bool    (true if into changed)
//
// `entry_state` seeds the entry node; every other node starts at `bottom`.
// Runs to fixpoint (the caller's lattice must have finite height).
template <typename State, typename Transfer, typename Join>
std::vector<State> SolveForward(const Cfa& cfa, State entry_state,
                                State bottom, Transfer&& transfer,
                                Join&& join) {
  std::vector<State> at_node(cfa.num_nodes(), bottom);
  at_node[cfa.entry().index()] = std::move(entry_state);
  std::vector<bool> queued(cfa.num_nodes(), false);
  std::vector<NodeId> worklist{cfa.entry()};
  queued[cfa.entry().index()] = true;
  while (!worklist.empty()) {
    NodeId node = worklist.back();
    worklist.pop_back();
    queued[node.index()] = false;
    for (EdgeId e : cfa.OutEdges(node)) {
      const CfaEdge& edge = cfa.Edge(e);
      State out = transfer(edge, at_node[node.index()]);
      if (join(at_node[edge.to.index()], out) && !queued[edge.to.index()]) {
        queued[edge.to.index()] = true;
        worklist.push_back(edge.to);
      }
    }
  }
  return at_node;
}

// Backward fixpoint: states are attached to nodes, edges transfer from
// their target's state to a contribution at their source.
//
//   transfer(edge, state_at_target) -> State
//   join(into_state, from_state)    -> bool
//
// Every node starts at `bottom` (which is also the state of terminal
// nodes unless transfer says otherwise).
template <typename State, typename Transfer, typename Join>
std::vector<State> SolveBackward(const Cfa& cfa, State bottom,
                                 Transfer&& transfer, Join&& join) {
  const std::vector<std::vector<EdgeId>> in_edges = ComputeInEdges(cfa);
  std::vector<State> at_node(cfa.num_nodes(), bottom);
  std::vector<bool> queued(cfa.num_nodes(), true);
  std::vector<NodeId> worklist;
  worklist.reserve(cfa.num_nodes());
  for (std::size_t n = cfa.num_nodes(); n-- > 0;) {
    worklist.push_back(NodeId(static_cast<std::uint32_t>(n)));
  }
  while (!worklist.empty()) {
    NodeId node = worklist.back();
    worklist.pop_back();
    queued[node.index()] = false;
    for (EdgeId e : in_edges[node.index()]) {
      const CfaEdge& edge = cfa.Edge(e);
      State out = transfer(edge, at_node[node.index()]);
      if (join(at_node[edge.from.index()], out) &&
          !queued[edge.from.index()]) {
        queued[edge.from.index()] = true;
        worklist.push_back(edge.from);
      }
    }
  }
  return at_node;
}

}  // namespace rapar

#endif  // RAPAR_ANALYSIS_DATAFLOW_H_
