#include "analysis/dataflow.h"

namespace rapar {

std::vector<std::vector<EdgeId>> ComputeInEdges(const Cfa& cfa) {
  std::vector<std::vector<EdgeId>> in_edges(cfa.num_nodes());
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    in_edges[cfa.edges()[i].to.index()].push_back(
        EdgeId(static_cast<std::uint32_t>(i)));
  }
  return in_edges;
}

}  // namespace rapar
