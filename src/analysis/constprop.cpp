#include "analysis/constprop.h"

#include "analysis/dataflow.h"
#include "lang/value.h"

namespace rapar {

namespace {

// Node state: unreachable (bottom) or a vector of abstract registers.
struct State {
  bool reached = false;
  std::vector<ConstVal> regs;
};

// If `guard` has the shape `r == c` (or `c == r`), returns (r, c).
std::optional<std::pair<RegId, Value>> EqRefinement(const Expr& guard) {
  if (guard.op() != ExprOp::kEq || guard.children().size() != 2) {
    return std::nullopt;
  }
  const Expr& a = *guard.children()[0];
  const Expr& b = *guard.children()[1];
  if (a.op() == ExprOp::kReg && b.op() == ExprOp::kConst) {
    return std::make_pair(a.reg(), b.constant());
  }
  if (a.op() == ExprOp::kConst && b.op() == ExprOp::kReg) {
    return std::make_pair(b.reg(), a.constant());
  }
  return std::nullopt;
}

}  // namespace

std::optional<Value> EvalConst(const Expr& e, const std::vector<ConstVal>& regs,
                               Value dom) {
  std::vector<RegId> read;
  e.CollectRegs(read);
  for (RegId r : read) {
    if (!regs[r.index()].is_const()) return std::nullopt;
  }
  std::vector<Value> rv(regs.size(), 0);
  for (RegId r : read) rv[r.index()] = regs[r.index()].value();
  return e.Eval(rv, dom);
}

ConstPropResult RunConstProp(const Cfa& cfa) {
  const Value dom = cfa.program().dom();
  const std::size_t nregs = cfa.program().regs().size();

  State entry;
  entry.reached = true;
  // Both semantics initialise every register to kInitValue.
  entry.regs.assign(nregs, ConstVal::Of(kInitValue));
  State bottom;  // reached=false

  auto transfer = [&](const CfaEdge& edge, const State& in) -> State {
    if (!in.reached) return in;
    State out = in;
    switch (edge.instr.kind) {
      case Instr::Kind::kAssume: {
        std::optional<Value> v = EvalConst(*edge.instr.expr, in.regs, dom);
        if (v.has_value() && *v == 0) return State{};  // infeasible edge
        // assume (r == c) pins r to c on the guarded branch.
        if (auto eq = EqRefinement(*edge.instr.expr); eq.has_value()) {
          out.regs[eq->first.index()] = ConstVal::Of(eq->second);
        }
        return out;
      }
      case Instr::Kind::kAssign: {
        std::optional<Value> v = EvalConst(*edge.instr.expr, in.regs, dom);
        out.regs[edge.instr.reg.index()] =
            v.has_value() ? ConstVal::Of(*v) : ConstVal::Top();
        return out;
      }
      case Instr::Kind::kLoad:
        out.regs[edge.instr.reg.index()] = ConstVal::Top();
        return out;
      default:
        return out;  // nop / store / cas / assert-fail touch no register
    }
  };
  auto join = [](State& into, const State& from) -> bool {
    if (!from.reached) return false;
    if (!into.reached) {
      into = from;
      return true;
    }
    bool changed = false;
    for (std::size_t r = 0; r < into.regs.size(); ++r) {
      changed |= into.regs[r].JoinWith(from.regs[r]);
    }
    return changed;
  };

  std::vector<State> solved =
      SolveForward(cfa, std::move(entry), bottom, transfer, join);

  ConstPropResult result;
  result.node_reachable.resize(cfa.num_nodes());
  result.at_node.resize(cfa.num_nodes());
  for (std::size_t n = 0; n < cfa.num_nodes(); ++n) {
    result.node_reachable[n] = solved[n].reached;
    result.at_node[n] = std::move(solved[n].regs);
  }
  result.guards.assign(cfa.edges().size(), GuardVerdict::kUnknown);
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    const CfaEdge& edge = cfa.edges()[i];
    if (edge.instr.kind != Instr::Kind::kAssume) continue;
    if (!result.node_reachable[edge.from.index()]) continue;
    std::optional<Value> v =
        EvalConst(*edge.instr.expr, result.at_node[edge.from.index()], dom);
    if (!v.has_value()) continue;
    result.guards[i] =
        *v == 0 ? GuardVerdict::kAlwaysFalse : GuardVerdict::kAlwaysTrue;
  }
  return result;
}

}  // namespace rapar
