// Backward register liveness and dead-store detection.
//
// A register is live at a node if some path from the node reads it before
// (or without) overwriting it. An assignment or load whose target is not
// live at the edge's target node is dead: its value is never read.
// Dead *assignments* can be dropped outright. Dead *loads* must be kept —
// under RA a load still merges the message's view into the thread's view
// and advances the per-variable timestamp, so removing one can change
// reachable configurations; they are diagnostics-only.
#ifndef RAPAR_ANALYSIS_LIVENESS_H_
#define RAPAR_ANALYSIS_LIVENESS_H_

#include <vector>

#include "lang/cfa.h"

namespace rapar {

struct LivenessResult {
  // Per node: which registers are live on entry to the node.
  std::vector<std::vector<bool>> live_at_node;
  // Per edge (indexed by EdgeId): a kAssign whose target register is not
  // live after the edge.
  std::vector<bool> assign_dead;
  // Per edge: a kLoad whose target register is not live after the edge.
  std::vector<bool> load_dead;
};

LivenessResult AnalyzeLiveness(const Cfa& cfa);

}  // namespace rapar

#endif  // RAPAR_ANALYSIS_LIVENESS_H_
