// Variable footprint analysis: which shared variables each thread reads
// and writes.
//
// The interesting derived fact is the *observed* set of a system — the
// variables some thread loads or CASes. A store to a variable outside the
// observed set can never influence any thread: under RA its message joins
// only that variable's timeline, no load ever acquires it, and a CAS would
// have counted as an observation. Such stores are sliceable (prepass.h)
// unless the variable is the verification goal itself.
#ifndef RAPAR_ANALYSIS_FOOTPRINT_H_
#define RAPAR_ANALYSIS_FOOTPRINT_H_

#include <vector>

#include "lang/cfa.h"

namespace rapar {

struct VarFootprint {
  // Indexed by VarId over the CFA's (system-wide) variable table.
  std::vector<bool> loaded;  // appears as a load source
  std::vector<bool> stored;  // appears as a store target
  std::vector<bool> cased;   // appears in a cas (read *and* written)

  bool Observes(VarId v) const {
    return loaded[v.index()] || cased[v.index()];
  }
  bool Writes(VarId v) const { return stored[v.index()] || cased[v.index()]; }
};

VarFootprint ComputeFootprint(const Cfa& cfa);

// Variables loaded or CAS'd by at least one of the given CFAs. All CFAs
// must share one variable table of size `num_vars` (the system-wide table
// produced by unification).
std::vector<bool> ObservedVars(const std::vector<const Cfa*>& cfas,
                               std::size_t num_vars);

}  // namespace rapar

#endif  // RAPAR_ANALYSIS_FOOTPRINT_H_
