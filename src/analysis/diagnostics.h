// Diagnostics engine: lint a Com program against the paper's decidability
// landscape and the dataflow passes of this library.
//
// Codes (stable, referenced by DESIGN.md and tests):
//   RA001  warning  env thread uses cas — system is env(cas), safety
//                   verification undecidable (Theorem 1.1)
//   RA002  note     program is not PureRA (§5) — names the first violating
//                   instruction
//   RA003  warning  dead store: the variable is never loaded or CAS'd by
//                   any thread, the message can never be observed
//   RA004  warning  dead register assignment: the assigned value is never
//                   read
//   RA005  note     loaded value is never used (the load is kept — it
//                   still merges views under RA)
//   RA006  warning  unreachable code
//   RA007  warning  assume is constantly false — guarded branch
//                   unreachable
//   RA008  note     assume is constantly true — guard foldable
//   RA009  note     assert false is unreachable, the assertion can never
//                   fail
//   RA010  warning  dis thread has a loop — outside the dis(acyc) regime
//                   of Theorems 1.2/5.1
//
// RA030–RA035 are whole-system notes backed by the thread-modular
// abstract-interpretation fixpoint; they are produced by
// tmai/tmai_diagnostics.h and merged into the same diagnostic stream:
//   RA030  note     guard provably never satisfiable at the TMAI fixpoint
//   RA031  note     store value provably constant
//   RA032  note     error location proven unreachable — assert is dead
//   RA033  note     thread has an empty interference set (sequential)
//   RA034  note     read values excluded only by the relational
//                   must-domain (tmai/relational.h)
//   RA035  note     assert proven dead only by the relational domain
//                   (mutual-exclusion invariant)
#ifndef RAPAR_ANALYSIS_DIAGNOSTICS_H_
#define RAPAR_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "lang/classify.h"
#include "lang/program.h"
#include "lang/source_loc.h"

namespace rapar {

enum class Severity { kNote, kWarning, kError };

const char* SeverityName(Severity s);

struct Diagnostic {
  Severity severity = Severity::kNote;
  std::string code;     // "RA001" ...
  std::string message;  // one line, no trailing period
  SrcLoc loc;           // invalid for synthetic (builder-made) programs
};

// Stable presentation order: source position (unknown last), then code.
void SortDiagnostics(std::vector<Diagnostic>& diags);

// Renders one diagnostic in the conventional compiler format
//   file:line:col: severity: CODE: message
// followed by a source caret (see common/strings.h) when `source_text` is
// non-empty and the location is known.
std::string RenderDiagnostic(const Diagnostic& d, const std::string& file,
                             const std::string& source_text);

struct LintOptions {
  // The role the program plays in its system; RA001 applies only to env
  // (Theorem 1.1), RA010 only to dis.
  ThreadRole role = ThreadRole::kEnv;
  // Variables loaded or CAS'd anywhere in the enclosing system (indexed by
  // VarId over the shared table). When empty, the program's own footprint
  // is used — the single-template view, where the program is also its own
  // (unboundedly replicated) audience.
  std::vector<bool> observed_vars;
};

std::vector<Diagnostic> LintProgram(const Program& program,
                                    const LintOptions& options = {});

}  // namespace rapar

#endif  // RAPAR_ANALYSIS_DIAGNOSTICS_H_
