#include "analysis/diagnostics.h"

#include <algorithm>
#include <set>
#include <utility>

#include "analysis/footprint.h"
#include "analysis/liveness.h"
#include "analysis/reachability.h"
#include "common/strings.h"
#include "lang/cfa.h"

namespace rapar {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void SortDiagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.valid() != b.loc.valid()) return a.loc.valid();
                     if (a.loc.valid() && !(a.loc == b.loc)) {
                       return a.loc < b.loc;
                     }
                     return a.code < b.code;
                   });
}

std::string RenderDiagnostic(const Diagnostic& d, const std::string& file,
                             const std::string& source_text) {
  std::string out;
  if (d.loc.valid()) {
    out = StrCat(file, ":", d.loc.line, ":", d.loc.col, ": ");
  } else if (!file.empty()) {
    out = StrCat(file, ": ");
  }
  out += StrCat(SeverityName(d.severity), ": ", d.code, ": ", d.message);
  if (d.loc.valid() && !source_text.empty()) {
    const std::string caret = SourceCaret(source_text, d.loc.line, d.loc.col);
    if (!caret.empty()) out += StrCat("\n", caret);
  }
  return out;
}

std::vector<Diagnostic> LintProgram(const Program& program,
                                    const LintOptions& options) {
  const Cfa cfa = Cfa::Build(program);
  const Classification cls = Classify(program);
  const ReachabilityResult reach = AnalyzeReachability(cfa);
  const LivenessResult live = AnalyzeLiveness(cfa);

  std::vector<Diagnostic> diags;
  auto emit = [&](Severity sev, const char* code, std::string message,
                  SrcLoc loc) {
    diags.push_back(Diagnostic{sev, code, std::move(message), loc});
  };

  // --- decidability landscape (Table 1) --------------------------------
  if (options.role == ThreadRole::kEnv && !cls.cas_free) {
    emit(Severity::kWarning, "RA001",
         StrCat("env thread uses cas (", cls.cas_detail,
                ") — the system is env(cas), where parameterized safety "
                "verification is undecidable (Theorem 1.1)"),
         cls.cas_loc);
  }
  if (options.role == ThreadRole::kDis && !cls.loop_free) {
    emit(Severity::kWarning, "RA010",
         StrCat("dis thread has a loop (", cls.loop_detail,
                ") — outside the dis(acyc) regime of Theorems 1.2/5.1; "
                "unroll it to a bounded depth to decide safety"),
         cls.loop_loc);
  }
  if (!cls.pure_ra) {
    emit(Severity::kNote, "RA002",
         StrCat("not PureRA (§5): ", cls.pure_ra_detail), SrcLoc{});
  }

  // --- reachability ------------------------------------------------------
  // One diagnostic per distinct source position; a single statement can
  // compile to several edges (e.g. a loop head's two nops).
  std::set<std::pair<int, int>> seen;
  auto emit_once = [&](Severity sev, const char* code, std::string message,
                       SrcLoc loc) {
    if (loc.valid() && !seen.insert({loc.line, loc.col}).second) return;
    if (!loc.valid() && !seen.insert({-1, -1}).second) return;
    emit(sev, code, std::move(message), loc);
  };
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    const CfaEdge& edge = cfa.edges()[i];
    if (!reach.node_reachable[edge.from.index()]) {
      if (edge.instr.kind == Instr::Kind::kAssertFail) {
        emit_once(Severity::kNote, "RA009",
                  "assert false is unreachable — the assertion can never "
                  "fail",
                  edge.instr.loc);
      } else {
        emit_once(Severity::kWarning, "RA006", "unreachable code",
                  edge.instr.loc);
      }
      continue;
    }
    if (reach.guards[i] == GuardVerdict::kAlwaysFalse) {
      emit(Severity::kWarning, "RA007",
           StrCat("assume is constantly false (",
                  edge.instr.expr->ToString(program.regs()),
                  ") — the guarded branch is unreachable"),
           edge.instr.loc);
    } else if (reach.guards[i] == GuardVerdict::kAlwaysTrue) {
      emit(Severity::kNote, "RA008",
           StrCat("assume is constantly true (",
                  edge.instr.expr->ToString(program.regs()),
                  ") — the guard can be folded away"),
           edge.instr.loc);
    }
  }

  // --- liveness ----------------------------------------------------------
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    const CfaEdge& edge = cfa.edges()[i];
    if (reach.edge_dead[i]) continue;  // already covered above
    if (live.assign_dead[i]) {
      emit(Severity::kWarning, "RA004",
           StrCat("dead store to register: '",
                  edge.instr.ToString(program.vars(), program.regs()),
                  "' is never read"),
           edge.instr.loc);
    } else if (live.load_dead[i]) {
      emit(Severity::kNote, "RA005",
           StrCat("loaded value is never used: '",
                  edge.instr.ToString(program.vars(), program.regs()),
                  "' (the load is kept — it still merges views under RA)"),
           edge.instr.loc);
    }
  }

  // --- footprint / store slicing ----------------------------------------
  const std::vector<bool>& observed =
      options.observed_vars.empty()
          ? ObservedVars({&cfa}, program.vars().size())
          : options.observed_vars;
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    const CfaEdge& edge = cfa.edges()[i];
    if (reach.edge_dead[i]) continue;
    if (edge.instr.kind != Instr::Kind::kStore) continue;
    if (observed[edge.instr.var.index()]) continue;
    emit(Severity::kWarning, "RA003",
         StrCat("dead store: no thread ever loads or CASes '",
                program.vars().Name(edge.instr.var),
                "' — the message can never be observed"),
         edge.instr.loc);
  }

  SortDiagnostics(diags);
  return diags;
}

}  // namespace rapar
