#include "analysis/prepass.h"

#include <utility>

#include "analysis/footprint.h"
#include "analysis/liveness.h"
#include "analysis/reachability.h"
#include "common/strings.h"

namespace rapar {

PrepassStats& PrepassStats::operator+=(const PrepassStats& o) {
  dead_edges_removed += o.dead_edges_removed;
  guards_folded += o.guards_folded;
  stores_sliced += o.stores_sliced;
  assigns_dropped += o.assigns_dropped;
  return *this;
}

std::string PrepassStats::ToString() const {
  return StrCat("removed ", dead_edges_removed, " dead edge",
                dead_edges_removed == 1 ? "" : "s", ", folded ",
                guards_folded, " guard", guards_folded == 1 ? "" : "s",
                ", sliced ", stores_sliced, " store",
                stores_sliced == 1 ? "" : "s", ", dropped ", assigns_dropped,
                " dead assignment", assigns_dropped == 1 ? "" : "s");
}

Cfa PruneCfa(const Cfa& cfa, const std::vector<bool>& keep_stores,
             PrepassStats* stats) {
  const ReachabilityResult reach = AnalyzeReachability(cfa);
  const LivenessResult live = AnalyzeLiveness(cfa);

  PrepassStats local;
  std::vector<CfaEdge> edges;
  edges.reserve(cfa.edges().size());
  for (std::size_t i = 0; i < cfa.edges().size(); ++i) {
    const CfaEdge& edge = cfa.edges()[i];
    if (reach.edge_dead[i]) {
      ++local.dead_edges_removed;
      continue;
    }
    CfaEdge copy = edge;
    auto to_nop = [&copy, &edge] {
      Instr nop;
      nop.loc = edge.instr.loc;
      copy.instr = std::move(nop);
    };
    switch (edge.instr.kind) {
      case Instr::Kind::kAssume:
        if (reach.guards[i] == GuardVerdict::kAlwaysTrue) {
          to_nop();
          ++local.guards_folded;
        }
        break;
      case Instr::Kind::kStore:
        if (!keep_stores[edge.instr.var.index()]) {
          to_nop();
          ++local.stores_sliced;
        }
        break;
      case Instr::Kind::kAssign:
        if (live.assign_dead[i]) {
          to_nop();
          ++local.assigns_dropped;
        }
        break;
      default:
        break;
    }
    edges.push_back(std::move(copy));
  }
  if (stats != nullptr) *stats += local;
  return Cfa::FromParts(cfa.program(), cfa.num_nodes(), std::move(edges));
}

PrepassResult RunPrepass(const Cfa& env, const std::vector<const Cfa*>& dis,
                         VarId protect_var) {
  std::vector<const Cfa*> all;
  all.reserve(dis.size() + 1);
  all.push_back(&env);
  all.insert(all.end(), dis.begin(), dis.end());
  std::vector<bool> keep =
      ObservedVars(all, env.program().vars().size());
  if (protect_var.valid()) keep[protect_var.index()] = true;

  PrepassStats stats;
  Cfa env_pruned = PruneCfa(env, keep, &stats);
  std::vector<Cfa> dis_pruned;
  dis_pruned.reserve(dis.size());
  for (const Cfa* d : dis) dis_pruned.push_back(PruneCfa(*d, keep, &stats));
  return PrepassResult{std::move(env_pruned), std::move(dis_pruned), stats};
}

}  // namespace rapar
