// Cooperative cancellation for the parallel drivers: one writer flips the
// flag, any number of workers poll it on their fast paths. Deliberately
// minimal — no callbacks, no linked sources — because the verifier's
// cancellation topology is a single "first terminating event wins" fan-in
// (see encoding/datalog_verifier.cpp).
#ifndef RAPAR_COMMON_CANCELLATION_H_
#define RAPAR_COMMON_CANCELLATION_H_

#include <atomic>

namespace rapar {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // Idempotent; safe from any thread.
  void Cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  // Cheap enough to poll per work item. Cancellation is advisory: a poll
  // may lag the Cancel by one item, so callers needing an exact cut-off
  // combine the token with their own ordered bookkeeping (the Datalog
  // driver keeps a monotone stop index next to it).
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace rapar

#endif  // RAPAR_COMMON_CANCELLATION_H_
