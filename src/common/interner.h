// Generic value interner: maps values of T to dense indices and back.
//
// Views, register valuations and Datalog tuples are interned so that
// configurations compare and hash as small integers.
#ifndef RAPAR_COMMON_INTERNER_H_
#define RAPAR_COMMON_INTERNER_H_

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rapar {

// Interns values of `T`. `Hash` and `Eq` default to std:: functors. The
// interner owns one canonical copy of each distinct value; `Get` returns a
// stable reference (values are stored in a deque-like chunked vector so
// references remain valid across inserts).
template <typename T, typename Hash = std::hash<T>,
          typename Eq = std::equal_to<T>>
class Interner {
 public:
  using Index = std::uint32_t;

  // Interns `value`, returning its dense index. Idempotent.
  Index Intern(const T& value) {
    auto it = index_.find(value);
    if (it != index_.end()) return it->second;
    const Index idx = static_cast<Index>(values_.size());
    values_.push_back(value);
    index_.emplace(values_.back(), idx);
    return idx;
  }

  Index Intern(T&& value) {
    auto it = index_.find(value);
    if (it != index_.end()) return it->second;
    const Index idx = static_cast<Index>(values_.size());
    values_.push_back(std::move(value));
    index_.emplace(values_.back(), idx);
    return idx;
  }

  // Returns the canonical value for `idx`. `idx` must have been returned by
  // Intern on this interner.
  const T& Get(Index idx) const {
    assert(idx < values_.size());
    return values_[idx];
  }

  // Number of distinct interned values.
  std::size_t size() const { return values_.size(); }

  // Returns the index of `value` if already interned, or UINT32_MAX.
  Index Find(const T& value) const {
    auto it = index_.find(value);
    return it == index_.end() ? UINT32_MAX : it->second;
  }

 private:
  // NOTE: values_ uses std::deque semantics via std::vector + stable lookup
  // through index_ keys referencing values_ elements. Since vector
  // reallocation would invalidate the unordered_map keys if they were
  // references, we store keys by value in the map instead.
  std::vector<T> values_;
  std::unordered_map<T, Index, Hash, Eq> index_;
};

}  // namespace rapar

#endif  // RAPAR_COMMON_INTERNER_H_
