// Fixed-size work-stealing thread pool (C++20 std::jthread, no external
// dependencies). Tasks are submitted round-robin onto per-worker deques;
// a worker pops its own deque LIFO (cache-warm) and steals FIFO from the
// others when it runs dry. Built for the Datalog verifier's fan-out —
// coarse, independent batches of per-guess solves — so the queues are
// mutex-guarded rather than lock-free: task granularity is milliseconds,
// queue operations are nanoseconds.
#ifndef RAPAR_COMMON_THREAD_POOL_H_
#define RAPAR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rapar {

class ThreadPool {
 public:
  // `threads` = 0 resolves to std::thread::hardware_concurrency() (minimum
  // 1). The pool starts its workers immediately and keeps them until
  // destruction.
  explicit ThreadPool(unsigned threads = 0);
  // Runs every task still queued, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(deques_.size()); }

  // Enqueues a task. Never blocks; callers that need backpressure bound
  // their in-flight count themselves (the Datalog driver uses a counting
  // semaphore sized to a small multiple of the pool).
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. Establishes
  // happens-before with the completed tasks, so their results may be read
  // without further synchronization.
  void Wait();

  // Tasks a worker took from another worker's deque.
  std::size_t steals() const;

  // Index of the calling pool worker in [0, size()), or -1 when called
  // from a thread that is not a worker of any pool. Lets per-worker state
  // (one dl::Engine per worker) be indexed without locks: a worker runs
  // one task at a time, so its slot is never shared.
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(unsigned me);
  // Pops the next task for worker `me` (own deque back, else steal a
  // front); null when everything is empty. Caller holds m_.
  std::function<void()> Take(unsigned me);

  mutable std::mutex m_;
  std::condition_variable work_cv_;  // workers sleep here
  std::condition_variable idle_cv_;  // Wait() sleeps here
  std::vector<std::deque<std::function<void()>>> deques_;
  std::size_t pending_ = 0;  // submitted but not yet finished
  std::size_t steals_ = 0;
  unsigned next_deque_ = 0;  // round-robin submission target
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace rapar

#endif  // RAPAR_COMMON_THREAD_POOL_H_
