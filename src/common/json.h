// One JSON writer (and a small validating parser) for every
// machine-readable surface of the tool: `rapar_cli verify/lint/dlanalyze
// --format=json`, the Chrome trace-event export (src/obs/trace.h) and the
// bench_backends BENCH_*.json artifacts all render through JsonWriter
// instead of hand-rolled printf emitters, so escaping and number
// formatting are identical everywhere. The parser exists for the
// consumers we own — golden-schema tests and CI gates that must reject
// malformed output — not as a general-purpose JSON library.
#ifndef RAPAR_COMMON_JSON_H_
#define RAPAR_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/expected.h"

namespace rapar {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included).
std::string JsonEscape(std::string_view s);

// Streaming JSON writer with bracket/comma bookkeeping. Values are
// written in call order; Key must precede every value inside an object.
// With pretty=true, objects and arrays break onto indented lines.
//
// Misuse (End* without a matching Begin*, Key outside an object or twice
// in a row, a value inside an object without a preceding Key) is a hard
// error: assert in debug builds, std::logic_error in release. The writer
// backs every machine-readable surface of the tool, so an unbalanced
// document must never escape silently.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty = false) : pretty_(pretty) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(long long value);
  JsonWriter& UInt(std::uint64_t value);
  // Doubles render with up to 17 significant digits, trimmed — enough to
  // round-trip, without printf noise like 0.10000000000000001.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices pre-rendered JSON verbatim (the caller vouches for validity).
  JsonWriter& Raw(std::string_view json);

  // The document so far. Valid once every bracket is closed.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();
  void Newline();
  [[noreturn]] void Misuse(const char* what) const;

  std::string out_;
  bool pretty_ = false;
  // One frame per open object/array: whether a value was already written
  // (comma needed) and whether the pending value follows a Key.
  struct Frame {
    bool object = false;
    bool has_value = false;
  };
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

// Parsed JSON document (used by tests, tools that validate our own
// output, and the serve-mode request decoder). Numbers are kept as
// double plus exact integer views: `integer` when the token fits int64,
// `uinteger` when a non-negative token fits uint64 (telemetry counters
// are emitted as full uint64, so [INT64_MAX+1, UINT64_MAX] is a real
// range). Integer tokens outside both ranges are a parse error, never a
// silently saturated value.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  bool number_is_int = false;
  long long integer = 0;
  bool number_is_uint = false;
  std::uint64_t uinteger = 0;
  std::string string;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_null() const { return kind == Kind::kNull; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage rejected). Errors carry a byte offset.
Expected<JsonValue> ParseJson(std::string_view text);

// Re-emits a parsed value through `w`. Integer-token numbers round-trip
// exactly (uint64-range counters included); everything our own writers
// produce re-emits byte-identically, which is what makes replayed cache
// envelopes and the round-trip fuzz oracle work.
void WriteJsonValue(const JsonValue& value, JsonWriter* w);

}  // namespace rapar

#endif  // RAPAR_COMMON_JSON_H_
