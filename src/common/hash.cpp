#include "common/hash.h"

namespace rapar {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace rapar
