#include "common/strings.h"

#include <cctype>

namespace rapar {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string SourceCaret(const std::string& text, int line, int col) {
  if (line < 1 || col < 1) return "";
  std::size_t start = 0;
  for (int l = 1; l < line; ++l) {
    start = text.find('\n', start);
    if (start == std::string::npos) return "";
    ++start;
  }
  std::size_t end = text.find('\n', start);
  if (end == std::string::npos) end = text.size();
  std::string src = text.substr(start, end - start);
  // Tabs would misalign the caret; render them as single spaces.
  for (char& c : src) {
    if (c == '\t') c = ' ';
  }
  const std::string num = StrCat(line);
  const std::string gutter(num.size(), ' ');
  std::string caret(static_cast<std::size_t>(col - 1), ' ');
  caret += '^';
  return StrCat("  ", num, " | ", src, "\n  ", gutter, " | ", caret);
}

}  // namespace rapar
