#include "common/strings.h"

#include <cctype>

namespace rapar {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace rapar
