// Deterministic pseudo-random generator for property tests and workload
// generation. Not std::mt19937 so that sequences are stable across standard
// library versions.
#ifndef RAPAR_COMMON_RNG_H_
#define RAPAR_COMMON_RNG_H_

#include <cstdint>

#include "common/hash.h"

namespace rapar {

// SplitMix64-based RNG. Deterministic for a given seed on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  std::uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return SplitMix64(state_);
  }

  // Uniform value in [0, bound). `bound` must be positive.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  // Uniform int in [lo, hi] inclusive.
  int IntIn(int lo, int hi) {
    return lo + static_cast<int>(Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Bernoulli with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) {
    return Below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace rapar

#endif  // RAPAR_COMMON_RNG_H_
