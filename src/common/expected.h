// Minimal expected-or-error-string result type (GCC 12 lacks
// std::expected). Errors are human-readable messages with positions.
#ifndef RAPAR_COMMON_EXPECTED_H_
#define RAPAR_COMMON_EXPECTED_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rapar {

// Holds either a value of T or an error message.
template <typename T>
class Expected {
 public:
  // Implicit from value.
  Expected(T value) : value_(std::move(value)) {}

  // Named constructor for errors, to keep call sites explicit.
  static Expected Error(std::string message) {
    Expected e;
    e.error_ = std::move(message);
    return e;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  // Value access; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  // Error message; requires !ok().
  const std::string& error() const {
    assert(!ok());
    return error_;
  }

 private:
  Expected() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace rapar

#endif  // RAPAR_COMMON_EXPECTED_H_
