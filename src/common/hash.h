// Hash-combining utilities used by the explorers' seen-state sets.
#ifndef RAPAR_COMMON_HASH_H_
#define RAPAR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace rapar {

// Mixes `v` into the running hash `seed` (boost::hash_combine style, with a
// 64-bit mixing constant).
inline void HashCombine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

// Hashes any range of hashable elements.
template <typename Range>
std::size_t HashRange(const Range& range) {
  std::size_t seed = 0x12345678;
  for (const auto& elem : range) {
    HashCombine(seed, std::hash<std::decay_t<decltype(elem)>>{}(elem));
  }
  return seed;
}

// SplitMix64: fast, high-quality 64-bit mixer. Used both for hashing and as
// the core of the deterministic RNG.
std::uint64_t SplitMix64(std::uint64_t x);

// Hash functor for std::vector of hashable T.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v);
  }
};

// Hash functor for std::pair.
template <typename A, typename B>
struct PairHash {
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = std::hash<A>{}(p.first);
    HashCombine(seed, std::hash<B>{}(p.second));
    return seed;
  }
};

}  // namespace rapar

#endif  // RAPAR_COMMON_HASH_H_
