// Strongly-typed dense identifiers.
//
// The code base indexes many small universes (shared variables, registers,
// CFA nodes, threads, interned views, ...). Raw integers invite mix-ups, so
// every universe gets its own id type. Ids are dense (0..n-1) and therefore
// usable directly as vector indices.
#ifndef RAPAR_COMMON_IDS_H_
#define RAPAR_COMMON_IDS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace rapar {

// A dense, strongly-typed identifier. `Tag` is a phantom type that
// distinguishes universes at compile time.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  // An id that refers to nothing; distinct from every valid id.
  static constexpr value_type kInvalidValue = UINT32_MAX;

  constexpr Id() : value_(kInvalidValue) {}
  constexpr explicit Id(value_type value) : value_(value) {}

  static constexpr Id Invalid() { return Id(); }

  constexpr value_type value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  // Vector-index convenience.
  constexpr std::size_t index() const { return value_; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "#invalid";
    return os << '#' << id.value_;
  }

 private:
  value_type value_;
};

struct VarTag {};     // shared memory variables
struct RegTag {};     // thread-local registers
struct NodeTag {};    // CFA control locations
struct EdgeTag {};    // CFA edges
struct ThreadTag {};  // thread identifiers in a fixed instance

using VarId = Id<VarTag>;
using RegId = Id<RegTag>;
using NodeId = Id<NodeTag>;
using EdgeId = Id<EdgeTag>;
using ThreadId = Id<ThreadTag>;

}  // namespace rapar

namespace std {
template <typename Tag>
struct hash<rapar::Id<Tag>> {
  size_t operator()(rapar::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std

#endif  // RAPAR_COMMON_IDS_H_
