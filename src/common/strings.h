// Small string-building helpers (GCC 12 lacks <format>).
#ifndef RAPAR_COMMON_STRINGS_H_
#define RAPAR_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace rapar {

// Streams all arguments into one string: StrCat("x=", 3, "!") == "x=3!".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Splits `s` on whitespace into tokens.
std::vector<std::string> SplitWhitespace(const std::string& s);

// Renders the 1-based `line` of `text` with a caret under 1-based `col`:
//
//    7 |       r := undeclared_name
//      |            ^
//
// Returns "" when `line` is out of range (e.g. positions from synthetic
// programs). Shared by parser errors and analysis diagnostics so both
// render source context identically.
std::string SourceCaret(const std::string& text, int line, int col);

}  // namespace rapar

#endif  // RAPAR_COMMON_STRINGS_H_
