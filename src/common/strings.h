// Small string-building helpers (GCC 12 lacks <format>).
#ifndef RAPAR_COMMON_STRINGS_H_
#define RAPAR_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace rapar {

// Streams all arguments into one string: StrCat("x=", 3, "!") == "x=3!".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Splits `s` on whitespace into tokens.
std::vector<std::string> SplitWhitespace(const std::string& s);

}  // namespace rapar

#endif  // RAPAR_COMMON_STRINGS_H_
