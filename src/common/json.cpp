#include "common/json.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace rapar {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::Newline() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::Misuse(const char* what) const {
  assert(false && "JsonWriter misuse");
  throw std::logic_error(std::string("JsonWriter misuse: ") + what);
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().object) {
      Misuse("value inside an object requires a preceding Key");
    }
    if (stack_.back().has_value) out_ += ',';
    if (pretty_) Newline();
    stack_.back().has_value = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame{true, false});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  if (after_key_) Misuse("EndObject after a Key with no value");
  if (stack_.empty() || !stack_.back().object) {
    Misuse("EndObject without a matching BeginObject");
  }
  const bool had = stack_.back().has_value;
  stack_.pop_back();
  if (had && pretty_) Newline();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame{false, false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  if (after_key_) Misuse("EndArray after a Key with no value");
  if (stack_.empty() || stack_.back().object) {
    Misuse("EndArray without a matching BeginArray");
  }
  const bool had = stack_.back().has_value;
  stack_.pop_back();
  if (had && pretty_) Newline();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (after_key_) Misuse("Key immediately after Key");
  if (stack_.empty() || !stack_.back().object) {
    Misuse("Key outside of an object");
  }
  if (stack_.back().has_value) out_ += ',';
  if (pretty_) Newline();
  stack_.back().has_value = true;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += pretty_ ? "\": " : "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(long long value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser. Depth-limited so adversarially nested input
// cannot blow the stack (our own emitters never get close).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expected<JsonValue> Parse() {
    JsonValue v;
    std::string err;
    if (!ParseValue(&v, &err, 0)) return Expected<JsonValue>::Error(err);
    SkipWs();
    if (pos_ != text_.size()) {
      return Expected<JsonValue>::Error(
          "trailing garbage at offset " + std::to_string(pos_));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(std::string* err, const std::string& what) {
    *err = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool ParseValue(JsonValue* out, std::string* err, int depth) {
    if (depth > kMaxDepth) return Fail(err, "nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail(err, "unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, err, depth);
      case '[':
        return ParseArray(out, err, depth);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string, err);
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
          return true;
        }
        return Fail(err, "invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
          return true;
        }
        return Fail(err, "invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->kind = JsonValue::Kind::kNull;
          return true;
        }
        return Fail(err, "invalid literal");
      default:
        return ParseNumber(out, err);
    }
  }

  bool ParseObject(JsonValue* out, std::string* err, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail(err, "expected object key");
      }
      std::string key;
      if (!ParseString(&key, err)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail(err, "expected ':'");
      }
      ++pos_;
      JsonValue v;
      if (!ParseValue(&v, err, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail(err, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail(err, "expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, std::string* err, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!ParseValue(&v, err, depth + 1)) return false;
      out->items.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail(err, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail(err, "expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out, std::string* err) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            if (!ParseHex4(&code, err)) return false;
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return Fail(err, "unpaired low surrogate");
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: a \uDC00..\uDFFF low half must follow, and
              // the pair decodes to one supplementary-plane code point.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Fail(err, "unpaired high surrogate");
              }
              pos_ += 2;
              unsigned low = 0;
              if (!ParseHex4(&low, err)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail(err, "unpaired high surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            // UTF-8 encode (1-4 bytes).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else if (code < 0x10000) {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xF0 | (code >> 18));
              *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail(err, "bad escape");
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Fail(err, "unterminated string");
  }

  bool ParseHex4(unsigned* code, std::string* err) {
    if (pos_ + 4 > text_.size()) return Fail(err, "bad \\u escape");
    *code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      *code <<= 4;
      if (h >= '0' && h <= '9') {
        *code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        *code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        *code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Fail(err, "bad \\u escape");
      }
    }
    return true;
  }

  bool ParseNumber(JsonValue* out, std::string* err) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail(err, "expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail(err, "bad number");
    if (tok.find_first_of(".eE") == std::string::npos) {
      // Exact integer token. Telemetry counters are emitted as full
      // uint64, so non-negative tokens parse through strtoull; either
      // direction overflowing its type is a parse error rather than a
      // silently clamped value.
      errno = 0;
      if (tok[0] == '-') {
        const long long ll = std::strtoll(tok.c_str(), nullptr, 10);
        if (errno == ERANGE) return Fail(err, "integer out of range");
        out->number_is_int = true;
        out->integer = ll;
      } else {
        const unsigned long long ull = std::strtoull(tok.c_str(), nullptr, 10);
        if (errno == ERANGE) return Fail(err, "integer out of range");
        out->number_is_uint = true;
        out->uinteger = ull;
        if (ull <= static_cast<unsigned long long>(
                       std::numeric_limits<long long>::max())) {
          out->number_is_int = true;
          out->integer = static_cast<long long>(ull);
        }
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void WriteJsonValue(const JsonValue& value, JsonWriter* w) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      w->Null();
      break;
    case JsonValue::Kind::kBool:
      w->Bool(value.boolean);
      break;
    case JsonValue::Kind::kNumber:
      if (value.number_is_uint) {
        w->UInt(value.uinteger);
      } else if (value.number_is_int) {
        w->Int(value.integer);
      } else {
        w->Double(value.number);
      }
      break;
    case JsonValue::Kind::kString:
      w->String(value.string);
      break;
    case JsonValue::Kind::kArray:
      w->BeginArray();
      for (const JsonValue& item : value.items) WriteJsonValue(item, w);
      w->EndArray();
      break;
    case JsonValue::Kind::kObject:
      w->BeginObject();
      for (const auto& [key, member] : value.members) {
        w->Key(key);
        WriteJsonValue(member, w);
      }
      w->EndObject();
      break;
  }
}

}  // namespace rapar
