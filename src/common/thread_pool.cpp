#include "common/thread_pool.h"

#include <utility>

namespace rapar {

namespace {
// -1 off-pool; set once per worker thread before its loop starts.
thread_local int tl_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  deques_.resize(threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // jthread joins on destruction; workers drain their queues first.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(m_);
    deques_[next_deque_].push_back(std::move(task));
    next_deque_ = (next_deque_ + 1) % static_cast<unsigned>(deques_.size());
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(m_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t ThreadPool::steals() const {
  std::lock_guard<std::mutex> lock(m_);
  return steals_;
}

int ThreadPool::CurrentWorkerIndex() { return tl_worker_index; }

std::function<void()> ThreadPool::Take(unsigned me) {
  if (!deques_[me].empty()) {
    std::function<void()> task = std::move(deques_[me].back());
    deques_[me].pop_back();
    return task;
  }
  for (std::size_t off = 1; off < deques_.size(); ++off) {
    auto& victim = deques_[(me + off) % deques_.size()];
    if (!victim.empty()) {
      std::function<void()> task = std::move(victim.front());
      victim.pop_front();
      ++steals_;
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(unsigned me) {
  tl_worker_index = static_cast<int>(me);
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    if (std::function<void()> task = Take(me)) {
      lock.unlock();
      task();
      task = nullptr;  // release captures before reporting completion
      lock.lock();
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stopping_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace rapar
