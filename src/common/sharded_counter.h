// Sharded statistics counter: increments land on a per-thread shard
// (cache-line padded) so concurrent workers never contend on one atomic;
// Total() folds the shards. Monotone-add only — exactly the shape of the
// parallel driver's telemetry (solve counts, skip counts), which tolerates
// the relaxed, point-in-time nature of Total().
#ifndef RAPAR_COMMON_SHARDED_COUNTER_H_
#define RAPAR_COMMON_SHARDED_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <thread>

namespace rapar {

class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 16;

  void Add(std::size_t delta) noexcept {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  // Sum over all shards. Exact once concurrent writers have quiesced
  // (e.g. after ThreadPool::Wait); a lower bound while they are running.
  std::size_t Total() const noexcept {
    std::size_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::size_t> value{0};
  };

  static std::size_t ShardIndex() noexcept {
    // Thread-id hash, computed once per thread.
    static thread_local const std::size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
    return shard;
  }

  Shard shards_[kShards];
};

}  // namespace rapar

#endif  // RAPAR_COMMON_SHARDED_COUNTER_H_
