// rapar_obs: the unified telemetry surface of the pipeline.
//
// A Telemetry object is an ordered registry of named metrics — uint64
// counters and double gauges — that replaces the flat, ever-growing
// counter fields previously bolted onto Verdict one PR at a time. Every
// stat the backends produce (search sizes, engine counters, prepass and
// dlopt pruning, parallel-driver telemetry, per-phase wall-clock) lives
// here under a stable dotted name; `rapar_cli verify --metrics` and
// `--format=json` render it, and the deprecated Verdict accessors
// (core/verifier.h) reconstruct the legacy structs from it.
//
// Names are part of the machine-readable schema: once shipped in a
// release they may be added to but not renamed. The canonical list is
// the `metric::` constants below, documented in DESIGN.md §9.
#ifndef RAPAR_OBS_TELEMETRY_H_
#define RAPAR_OBS_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rapar {
class JsonWriter;
}

namespace rapar::obs {

// Stable metric names. Grouped by producer:
//   verify.*   — backend-independent search statistics
//   engine.*   — Datalog evaluation core (dl::EvalStats)
//   datalog.*  — Theorem 4.1 driver (guess enumeration, makeP, budgets)
//   prepass.*  — CFA pre-pass pruning (PrepassStats)
//   dlopt.*    — query-driven program optimizer (dlopt::DlOptStats)
//   parallel.* — work-stealing guess driver (ParallelStats)
//   tmai.*     — thread-modular abstract interpretation (tmai/tmai.h)
//   portfolio.*— backend race driver (per-backend outcome + latency)
//   phase.*    — per-phase wall-clock gauges, milliseconds
namespace metric {
inline constexpr char kStates[] = "verify.states";
inline constexpr char kGuesses[] = "verify.guesses";

inline constexpr char kTuples[] = "datalog.tuples";
inline constexpr char kQueries[] = "datalog.queries";
inline constexpr char kRulesEmitted[] = "datalog.rules_emitted";
inline constexpr char kRulesEvaluated[] = "datalog.rules_evaluated";
// Present only when a per-query tuple budget aborted the scan.
inline constexpr char kBudgetAbortedGuess[] = "datalog.budget_aborted_guess";

inline constexpr char kRuleFirings[] = "engine.rule_firings";
inline constexpr char kJoinAttempts[] = "engine.join_attempts";
inline constexpr char kIndexProbes[] = "engine.index_probes";
inline constexpr char kIndexHits[] = "engine.index_hits";
inline constexpr char kIndexBuilds[] = "engine.index_builds";
inline constexpr char kFactReuses[] = "engine.fact_reuses";
// Present only when columnar storage answered probes by merge scan.
inline constexpr char kMergeScans[] = "engine.merge_scans";
// Present only when cross-guess delta solving retained/retracted strata.
inline constexpr char kDeltaRetracts[] = "engine.delta_retracts";
inline constexpr char kDeltaAsserts[] = "engine.delta_asserts";
inline constexpr char kDeltaReseededStrata[] = "engine.delta_reseeded_strata";

inline constexpr char kPrepassDeadEdges[] = "prepass.dead_edges_removed";
inline constexpr char kPrepassGuardsFolded[] = "prepass.guards_folded";
inline constexpr char kPrepassStoresSliced[] = "prepass.stores_sliced";
inline constexpr char kPrepassAssignsDropped[] = "prepass.assigns_dropped";

inline constexpr char kDlOptRulesBefore[] = "dlopt.rules_before";
inline constexpr char kDlOptRulesAfter[] = "dlopt.rules_after";
inline constexpr char kDlOptUnproductive[] = "dlopt.unproductive_removed";
inline constexpr char kDlOptUnreachable[] = "dlopt.unreachable_removed";
inline constexpr char kDlOptDemand[] = "dlopt.demand_removed";
inline constexpr char kDlOptDuplicates[] = "dlopt.duplicates_removed";
inline constexpr char kDlOptSubsumed[] = "dlopt.subsumed_removed";
inline constexpr char kDlOptCopyAliased[] = "dlopt.copy_aliased_removed";
inline constexpr char kDlOptPredsBefore[] = "dlopt.preds_before";
inline constexpr char kDlOptPredsAfter[] = "dlopt.preds_after";

inline constexpr char kParThreads[] = "parallel.threads";
inline constexpr char kParBatches[] = "parallel.batches";
inline constexpr char kParSteals[] = "parallel.steals";
inline constexpr char kParSolves[] = "parallel.solves";
inline constexpr char kParDiscarded[] = "parallel.discarded";
inline constexpr char kParSkipped[] = "parallel.skipped";
// Present only when a terminating event cut the enumeration short.
inline constexpr char kParEarlyExitIndex[] = "parallel.early_exit_index";

inline constexpr char kTmaiIterations[] = "tmai.iterations";
inline constexpr char kTmaiConverged[] = "tmai.converged";
inline constexpr char kTmaiMaxDisjuncts[] = "tmai.max_disjuncts";
inline constexpr char kTmaiThreads[] = "tmai.threads";
// Relational-domain metrics (tmai/relational.h); present only when the
// relational engine actually ran (requested directly, or as the kAuto
// retry after a small-set kUnknown).
inline constexpr char kTmaiRelationalRounds[] = "tmai.relational.rounds";
inline constexpr char kTmaiRelationalPrunedReads[] =
    "tmai.relational.pruned_reads";
// 1 when the verdict carries an invariant certificate (tmai/certcheck.h);
// absent otherwise, so certificate-free envelopes are unchanged.
inline constexpr char kTmaiCertificate[] = "tmai.certificate";

// Certificate checker (rapar_cli certcheck / tmai/certcheck.h).
inline constexpr char kCertcheckValid[] = "certcheck.valid";
inline constexpr char kCertcheckNodes[] = "certcheck.nodes_checked";
inline constexpr char kCertcheckEdges[] = "certcheck.edges_checked";

// Portfolio race driver: which backend answered first, and each raced
// backend's outcome (0 = lost/cancelled, 1 = produced the verdict) and
// wall-clock latency in milliseconds.
inline constexpr char kPortfolioWinnerTmai[] = "portfolio.winner_tmai";
inline constexpr char kPortfolioWinnerSimplified[] =
    "portfolio.winner_simplified";
inline constexpr char kPortfolioWinnerDatalog[] = "portfolio.winner_datalog";
inline constexpr char kPortfolioTmaiMs[] = "portfolio.tmai_ms";
inline constexpr char kPortfolioSimplifiedMs[] = "portfolio.simplified_ms";
inline constexpr char kPortfolioDatalogMs[] = "portfolio.datalog_ms";
inline constexpr char kPortfolioCancelled[] = "portfolio.cancelled";

// Guess-space sharding & checkpoint/resume (DESIGN.md §14). Present only
// when a run actually shards (shard.count > 1), resumes (nonzero
// checkpoint.resume_offset) or writes checkpoints, so default envelopes
// are unchanged. shard.terminating_index is the *global* enumeration
// index of the shard's terminating event — the orchestrator's
// min-over-shards merge key.
inline constexpr char kShardIndex[] = "shard.index";
inline constexpr char kShardCount[] = "shard.count";
inline constexpr char kShardTerminatingIndex[] = "shard.terminating_index";
inline constexpr char kCheckpointWrites[] = "checkpoint.writes";
inline constexpr char kCheckpointResumeOffset[] = "checkpoint.resume_offset";

// Verification service (core/serve.h). cache.* counters describe the
// content-addressed verdict cache: the session-cumulative totals are
// stamped on every response, plus a per-response cache.hit flag (1 when
// the envelope was replayed from the cache, 0 when the pipeline ran).
// cache.bytes is the current resident size estimate, not a cumulative
// count.
inline constexpr char kCacheHits[] = "cache.hits";
inline constexpr char kCacheMisses[] = "cache.misses";
inline constexpr char kCacheEvictions[] = "cache.evictions";
inline constexpr char kCacheBytes[] = "cache.bytes";
inline constexpr char kCacheHit[] = "cache.hit";
inline constexpr char kServeRequests[] = "serve.requests";
inline constexpr char kServeErrors[] = "serve.errors";

// Phase wall-clock gauges (milliseconds). phase.parse_ms is stamped by
// the CLI (parsing happens before the library is entered).
inline constexpr char kPhaseParseMs[] = "phase.parse_ms";
inline constexpr char kPhasePrepassMs[] = "phase.prepass_ms";
inline constexpr char kPhaseSolveMs[] = "phase.solve_ms";
inline constexpr char kPhaseWitnessMs[] = "phase.witness_ms";
inline constexpr char kPhaseTotalMs[] = "phase.total_ms";
}  // namespace metric

// Ordered name → value registry. Insertion order is preserved so text
// and JSON renderings are stable; lookups are O(1) via a side index.
// Cheap to fill once per verify — this is a results container, not a
// hot-path accumulator (the backends keep their local structs for that
// and export here at the end).
class Telemetry {
 public:
  struct Entry {
    std::string name;
    bool is_gauge = false;
    std::uint64_t counter = 0;
    double gauge = 0.0;
  };

  // Counters (monotone event counts; merged by addition).
  void SetCounter(std::string_view name, std::uint64_t value);
  void AddCounter(std::string_view name, std::uint64_t value);
  // 0 when absent.
  std::uint64_t counter(std::string_view name) const;

  // Gauges (point-in-time doubles, e.g. phase durations in ms; merged by
  // addition as well — summing durations is the useful aggregate).
  void SetGauge(std::string_view name, double value);
  double gauge(std::string_view name) const;

  bool Has(std::string_view name) const;
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  // Folds `other` into this registry (counters and gauges add).
  void Merge(const Telemetry& other);

  // Flat JSON object {"name": value, ...} in insertion order.
  void WriteJson(JsonWriter& w) const;
  // "name=value name=value" (counters as integers, gauges with 3
  // decimals), for logs and --metrics.
  std::string ToString() const;

 private:
  Entry& Upsert(std::string_view name, bool is_gauge);
  const Entry* Lookup(std::string_view name) const;

  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace rapar::obs

#endif  // RAPAR_OBS_TELEMETRY_H_
