#include "obs/trace.h"

#include <atomic>
#include <fstream>

#include "common/json.h"

namespace rapar::obs {

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceRecorder::NowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t TraceRecorder::CurrentThreadId() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceRecorder::RecordComplete(const char* name, std::uint64_t ts_us,
                                   std::uint64_t dur_us,
                                   std::string args_json) {
  const std::uint32_t tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      TraceEvent{name, 'X', ts_us, dur_us, tid, std::move(args_json)});
}

void TraceRecorder::RecordInstant(const char* name, std::string args_json) {
  const std::uint32_t tid = CurrentThreadId();
  const std::uint64_t ts = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{name, 'i', ts, 0, tid, std::move(args_json)});
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::TakeEvents() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent& e : events_) {
      w.BeginObject();
      w.Key("name").String(e.name);
      w.Key("cat").String("rapar");
      w.Key("ph").String(std::string(1, e.phase));
      w.Key("ts").UInt(e.ts_us);
      if (e.phase == 'X') w.Key("dur").UInt(e.dur_us);
      if (e.phase == 'i') w.Key("s").String("t");  // thread-scoped instant
      w.Key("pid").Int(1);
      w.Key("tid").UInt(e.tid);
      if (!e.args_json.empty()) w.Key("args").Raw(e.args_json);
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

bool TraceRecorder::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToChromeTraceJson() << '\n';
  return out.good();
}

}  // namespace rapar::obs
