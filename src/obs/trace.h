// rapar_obs: low-overhead scoped-span tracing for the verification
// pipeline, exported as Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing).
//
// Design constraints, in order:
//   1. Zero cost when off. Tracing is off when no TraceRecorder is
//      installed (the pointer in VerifierOptions::obs is null). ScopedSpan
//      then reduces to a pointer test — no clock read, no allocation, no
//      lock — so the instrumented hot paths (per-guess solves, dlopt
//      passes) cost nothing in the common case. The bench_backends obs
//      ablation row keeps this honest (≤ 5% is the acceptance bar; the
//      observed cost is noise-level).
//   2. Trustworthy when on. Spans are steady-clock timed and tagged with
//      a small per-thread id, so the per-guess spans of the work-stealing
//      pool land on their worker's track and nest correctly under the
//      driver's phase spans in Perfetto.
//   3. Verdict-neutral. Recording only appends to a buffer; nothing the
//      verifier computes depends on it (tests/obs_differential_test.cpp
//      asserts bit-identical verdicts with tracing on vs off).
//
// The recorder is not a general profiler: events are kept in memory and
// written once at the end (WriteFile / ToChromeTraceJson). A verify run
// emits O(phases + guesses) events — tiny next to the solves themselves.
#ifndef RAPAR_OBS_TRACE_H_
#define RAPAR_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rapar::obs {

// One recorded trace event (Chrome trace-event model).
struct TraceEvent {
  const char* name;       // static string: span names are literals
  char phase;             // 'X' complete, 'i' instant
  std::uint64_t ts_us;    // start, µs since the recorder's epoch
  std::uint64_t dur_us;   // duration ('X' only)
  std::uint32_t tid;      // small per-thread id (1 = first thread seen)
  std::string args_json;  // pre-rendered JSON object, or empty
};

// Thread-safe append-only event sink. One recorder per traced run; the
// epoch is captured at construction so timestamps start near zero.
class TraceRecorder {
 public:
  TraceRecorder();

  // Microseconds since the recorder's epoch (steady clock).
  std::uint64_t NowUs() const;

  // Appends a complete ('X') event. `args_json` must be a rendered JSON
  // object ("{...}") or empty.
  void RecordComplete(const char* name, std::uint64_t ts_us,
                      std::uint64_t dur_us, std::string args_json = {});
  // Appends an instant ('i') event at the current time.
  void RecordInstant(const char* name, std::string args_json = {});

  std::size_t size() const;
  std::vector<TraceEvent> TakeEvents();

  // {"displayTimeUnit": "ms", "traceEvents": [...]} — the format
  // Perfetto and chrome://tracing load directly.
  std::string ToChromeTraceJson() const;
  // Writes ToChromeTraceJson() to `path`; false on I/O failure.
  bool WriteFile(const std::string& path) const;

  // The small per-thread id used for tagging (assigned on first use,
  // process-wide; stable for the lifetime of the thread).
  static std::uint32_t CurrentThreadId();

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// RAII span: times the enclosing scope and records a complete event on
// destruction. With a null recorder every member is a no-op — callers
// instrument unconditionally and pay only a branch.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const char* name)
      : recorder_(recorder), name_(name) {
    if (recorder_ != nullptr) start_us_ = recorder_->NowUs();
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->RecordComplete(name_, start_us_,
                                recorder_->NowUs() - start_us_,
                                std::move(args_json_));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // True when a recorder is installed — guard for arg-string building so
  // the StrCat cost is also skipped when tracing is off.
  bool active() const { return recorder_ != nullptr; }
  // Attaches a rendered JSON object ("{...}") shown in the trace viewer.
  void set_args(std::string args_json) { args_json_ = std::move(args_json); }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  std::uint64_t start_us_ = 0;
  std::string args_json_;
};

// Null-safe instant-event helper for one-shot markers (early exit,
// budget abort, deadline).
inline void TraceInstant(TraceRecorder* recorder, const char* name,
                         std::string args_json = {}) {
  if (recorder != nullptr) {
    recorder->RecordInstant(name, std::move(args_json));
  }
}

}  // namespace rapar::obs

#endif  // RAPAR_OBS_TRACE_H_
