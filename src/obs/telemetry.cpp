#include "obs/telemetry.h"

#include <cstdio>

#include "common/json.h"

namespace rapar::obs {

Telemetry::Entry& Telemetry::Upsert(std::string_view name, bool is_gauge) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return entries_[it->second];
  entries_.push_back(Entry{std::string(name), is_gauge, 0, 0.0});
  index_.emplace(entries_.back().name, entries_.size() - 1);
  return entries_.back();
}

const Telemetry::Entry* Telemetry::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : &entries_[it->second];
}

void Telemetry::SetCounter(std::string_view name, std::uint64_t value) {
  Entry& e = Upsert(name, /*is_gauge=*/false);
  e.is_gauge = false;
  e.counter = value;
}

void Telemetry::AddCounter(std::string_view name, std::uint64_t value) {
  Entry& e = Upsert(name, /*is_gauge=*/false);
  e.counter += value;
}

std::uint64_t Telemetry::counter(std::string_view name) const {
  const Entry* e = Lookup(name);
  return e == nullptr ? 0 : e->counter;
}

void Telemetry::SetGauge(std::string_view name, double value) {
  Entry& e = Upsert(name, /*is_gauge=*/true);
  e.is_gauge = true;
  e.gauge = value;
}

double Telemetry::gauge(std::string_view name) const {
  const Entry* e = Lookup(name);
  return e == nullptr ? 0.0 : e->gauge;
}

bool Telemetry::Has(std::string_view name) const {
  return Lookup(name) != nullptr;
}

void Telemetry::Merge(const Telemetry& other) {
  for (const Entry& e : other.entries_) {
    if (e.is_gauge) {
      Entry& mine = Upsert(e.name, /*is_gauge=*/true);
      mine.is_gauge = true;
      mine.gauge += e.gauge;
    } else {
      AddCounter(e.name, e.counter);
    }
  }
}

void Telemetry::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  for (const Entry& e : entries_) {
    w.Key(e.name);
    if (e.is_gauge) {
      w.Double(e.gauge);
    } else {
      w.UInt(e.counter);
    }
  }
  w.EndObject();
}

std::string Telemetry::ToString() const {
  std::string out;
  for (const Entry& e : entries_) {
    if (!out.empty()) out += ' ';
    out += e.name;
    out += '=';
    if (e.is_gauge) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.3f", e.gauge);
      out += buf;
    } else {
      out += std::to_string(e.counter);
    }
  }
  return out;
}

}  // namespace rapar::obs
