#include "ra/view.h"

#include "common/strings.h"

namespace rapar {

std::string View::ToString(const VarTable& vars) const {
  std::string out = "{";
  for (std::size_t i = 0; i < ts_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrCat(vars.Name(VarId(static_cast<std::uint32_t>(i))), "->",
                  ts_[i]);
  }
  return out + "}";
}

}  // namespace rapar
