#include "ra/config.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace rapar {

bool RaThreadState::operator<(const RaThreadState& other) const {
  if (node != other.node) return node < other.node;
  if (rv != other.rv) return rv < other.rv;
  return view < other.view;
}

RaConfig::RaConfig(std::size_t num_vars,
                   const std::vector<std::size_t>& reg_counts) {
  memory_.resize(num_vars);
  for (auto& seq : memory_) {
    RaMsg init;
    init.val = kInitValue;
    init.view = View(num_vars);
    seq.push_back(std::move(init));
  }
  threads_.reserve(reg_counts.size());
  for (std::size_t regs : reg_counts) {
    RaThreadState t;
    t.node = NodeId(0);
    t.rv.assign(regs, kInitValue);
    t.view = View(num_vars);
    threads_.push_back(std::move(t));
  }
}

bool RaConfig::CanInsertAt(VarId x, Timestamp pos) const {
  const auto& seq = memory_[x.index()];
  assert(pos >= 1);
  if (pos > static_cast<Timestamp>(seq.size())) return false;
  // Inserting at `pos` places the new message before the message currently
  // at `pos` (if any); forbidden if that message is glued to its
  // predecessor (CAS pair atomicity).
  if (pos < static_cast<Timestamp>(seq.size()) &&
      seq[pos].glued_to_prev) {
    return false;
  }
  return true;
}

bool RaConfig::InsertMessage(VarId x, Timestamp pos, Value val,
                             const View& base_view, bool glued) {
  if (!CanInsertAt(x, pos)) return false;
  const std::size_t xi = x.index();
  // Renumber every view component for x that is >= pos.
  for (auto& seq : memory_) {
    for (RaMsg& m : seq) {
      if (m.view.Slot(xi) >= pos) m.view.Slot(xi)++;
    }
  }
  for (RaThreadState& t : threads_) {
    if (t.view.Slot(xi) >= pos) t.view.Slot(xi)++;
  }
  RaMsg msg;
  msg.val = val;
  msg.view = base_view;  // callers pass the pre-renumbering view of the
                         // storing thread; renumber it the same way
  if (msg.view.Slot(xi) >= pos) msg.view.Slot(xi)++;
  msg.view.Set(x, pos);
  msg.glued_to_prev = glued;
  auto& seq = memory_[xi];
  seq.insert(seq.begin() + pos, std::move(msg));
  return true;
}

void RaConfig::SortThreadBlock(std::size_t lo, std::size_t hi) {
  assert(lo <= hi && hi <= threads_.size());
  std::sort(threads_.begin() + lo, threads_.begin() + hi);
}

std::size_t RaConfig::Hash() const {
  std::size_t seed = 0xabcdef01;
  for (const auto& seq : memory_) {
    HashCombine(seed, seq.size());
    for (const RaMsg& m : seq) {
      HashCombine(seed, static_cast<std::size_t>(m.val));
      HashCombine(seed, m.view.Hash());
      HashCombine(seed, m.glued_to_prev ? 1u : 0u);
    }
  }
  for (const RaThreadState& t : threads_) {
    HashCombine(seed, t.node.value());
    HashCombine(seed, HashRange(t.rv));
    HashCombine(seed, t.view.Hash());
  }
  return seed;
}

std::string RaConfig::ToString(const VarTable& vars) const {
  std::string out = "memory:\n";
  for (std::size_t xi = 0; xi < memory_.size(); ++xi) {
    out += StrCat("  ", vars.Name(VarId(static_cast<std::uint32_t>(xi))),
                  ": ");
    for (std::size_t p = 0; p < memory_[xi].size(); ++p) {
      const RaMsg& m = memory_[xi][p];
      out += StrCat("[", p, m.glued_to_prev ? "g" : "", ": ", m.val, " ",
                    m.view.ToString(vars), "] ");
    }
    out += "\n";
  }
  out += "threads:\n";
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const RaThreadState& t = threads_[i];
    out += StrCat("  t", i, ": n", t.node.value(), " rv=[");
    for (std::size_t r = 0; r < t.rv.size(); ++r) {
      if (r > 0) out += ",";
      out += StrCat(t.rv[r]);
    }
    out += StrCat("] vw=", t.view.ToString(vars), "\n");
  }
  return out;
}

}  // namespace rapar
