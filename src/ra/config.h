// Configurations of the standard RA semantics (§2, Figure 2).
//
// A configuration is a memory state (a pool of messages, organised here as
// one modification-order sequence per variable) plus a local configuration
// per thread. Message timestamps are kept dense per variable (see
// ra/view.h); a message's own timestamp is its index in its variable's
// sequence, so it is not stored separately.
#ifndef RAPAR_RA_CONFIG_H_
#define RAPAR_RA_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "lang/program.h"
#include "ra/view.h"

namespace rapar {

// One message (x, d, vw) in memory. The x-component of `view` equals the
// message's position in its variable's sequence (class invariant).
// `glued_to_prev` records CAS adjacency: no later store may be inserted
// between this message and its immediate predecessor.
struct RaMsg {
  Value val = 0;
  View view;
  bool glued_to_prev = false;

  bool operator==(const RaMsg& other) const {
    return val == other.val && glued_to_prev == other.glued_to_prev &&
           view == other.view;
  }
};

// Thread-local configuration: control location, register valuation, view.
struct RaThreadState {
  NodeId node;
  std::vector<Value> rv;
  View view;

  bool operator==(const RaThreadState& other) const {
    return node == other.node && rv == other.rv && view == other.view;
  }
  bool operator<(const RaThreadState& other) const;
};

// A full configuration of an instance with a fixed number of threads.
class RaConfig {
 public:
  RaConfig() = default;
  // Initial configuration: one init message (value d_init = 0, zero view)
  // per variable; all threads at their entry with zeroed registers/views.
  RaConfig(std::size_t num_vars, const std::vector<std::size_t>& reg_counts);

  std::size_t num_vars() const { return memory_.size(); }
  const std::vector<RaMsg>& MsgsOf(VarId x) const {
    return memory_[x.index()];
  }
  const std::vector<RaThreadState>& threads() const { return threads_; }
  RaThreadState& thread(std::size_t i) { return threads_[i]; }
  const RaThreadState& thread(std::size_t i) const { return threads_[i]; }

  // Inserts a new message for `x` at position `pos` (1 <= pos <=
  // MsgsOf(x).size()), shifting later messages up and renumbering every
  // view in the configuration (threads and messages) accordingly. The
  // message view is `base_view` with x set to pos; glued marks CAS
  // adjacency. Returns false (and leaves the config unchanged) if the
  // position is blocked by a glued successor.
  bool InsertMessage(VarId x, Timestamp pos, Value val, const View& base_view,
                     bool glued);

  // True iff a store may take position `pos` on `x` (not blocked by glue).
  bool CanInsertAt(VarId x, Timestamp pos) const;

  // Number of messages on x (including init).
  Timestamp NumMsgs(VarId x) const {
    return static_cast<Timestamp>(memory_[x.index()].size());
  }

  // Sorts the thread-state block [lo, hi) — used for symmetry reduction
  // over identical env threads.
  void SortThreadBlock(std::size_t lo, std::size_t hi);

  bool operator==(const RaConfig& other) const {
    return memory_ == other.memory_ && threads_ == other.threads_;
  }

  std::size_t Hash() const;

  std::string ToString(const VarTable& vars) const;

 private:
  // memory_[x] is the modification-order sequence of messages on x;
  // index 0 is the initial message.
  std::vector<std::vector<RaMsg>> memory_;
  std::vector<RaThreadState> threads_;
};

struct RaConfigHash {
  std::size_t operator()(const RaConfig& c) const { return c.Hash(); }
};

}  // namespace rapar

#endif  // RAPAR_RA_CONFIG_H_
