// Bounded explicit-state exploration of the standard RA semantics.
//
// Explores every interleaving of a *fixed instance* (a concrete number of
// threads). Used as ground truth for the simplified semantics (Theorem 3.4
// differential tests) and to exercise the constructions for the
// undecidable / non-primitive-recursive cells of Table 1 under bounds.
#ifndef RAPAR_RA_EXPLORER_H_
#define RAPAR_RA_EXPLORER_H_

#include <cstdint>
#include <optional>
#include <set>
#include <tuple>
#include <string>
#include <utility>
#include <vector>

#include "lang/cfa.h"
#include "ra/config.h"

namespace rapar {

struct RaExplorerOptions {
  // Maximum transitions along any single run (BFS depth bound). Loop-free
  // instances terminate regardless; loops need this bound.
  int max_depth = 10'000;
  // Abort (reporting non-exhaustive) after this many distinct states.
  std::size_t max_states = 2'000'000;
  // Wall-clock budget in milliseconds; 0 = unlimited. On expiry the
  // result is marked non-exhaustive.
  long long time_budget_ms = 0;
  // Stop at the first assertion violation.
  bool stop_on_violation = true;
  // Sort identical-program thread blocks for symmetry reduction.
  bool symmetry_reduction = true;
};

// One step of a witness run.
struct RaTraceStep {
  std::size_t thread;
  std::string instr;  // rendered instruction
};

struct RaResult {
  // True if an `assert false` edge was traversed in some reachable run.
  bool violation = false;
  // True if the state space was fully explored within the bounds (so a
  // negative answer is definitive).
  bool exhaustive = true;
  // exhaustive=false because the wall-clock budget expired (as opposed to
  // the state/depth caps).
  bool budget_hit = false;
  std::size_t states = 0;
  int depth_reached = 0;
  // Witness run to the violation, if one was found.
  std::vector<RaTraceStep> witness;
};

// Explores instances built from per-thread CFAs over a shared variable
// universe. All CFAs must use the same VarTable size and domain.
class RaExplorer {
 public:
  // `threads[i]` is thread i's program. `symmetric_block` optionally marks
  // the index range [lo, hi) of identical env threads for symmetry
  // reduction.
  RaExplorer(std::vector<const Cfa*> threads, Value dom,
             std::size_t num_vars,
             std::pair<std::size_t, std::size_t> symmetric_block = {0, 0});

  // Runs BFS; returns the safety verdict.
  RaResult CheckSafety(const RaExplorerOptions& options = {});

  // Reachable local states modulo views: (thread, node, register
  // valuation), collected during the last CheckSafety call. This is the
  // =de projection used by the Theorem 3.4 differential tests.
  const std::set<std::tuple<std::size_t, std::uint32_t, std::vector<Value>>>&
  reachable_controls() const {
    return reachable_controls_;
  }

  // (var, value) pairs of messages generated in some reachable
  // configuration during the last CheckSafety call (excluding init).
  const std::set<std::pair<std::uint32_t, Value>>& generated_messages()
      const {
    return generated_messages_;
  }

 private:
  // Appends all successors of `cfg` to `out`; updates bookkeeping. Returns
  // the index of a violating successor step, if any.
  struct Successor {
    RaConfig config;
    std::size_t thread;
    std::string instr;
    bool violation = false;
  };
  void Successors(const RaConfig& cfg, std::vector<Successor>& out) const;

  std::vector<const Cfa*> threads_;
  Value dom_;
  std::size_t num_vars_;
  std::pair<std::size_t, std::size_t> symmetric_block_;

  std::set<std::tuple<std::size_t, std::uint32_t, std::vector<Value>>>
      reachable_controls_;
  std::set<std::pair<std::uint32_t, Value>> generated_messages_;
};

}  // namespace rapar

#endif  // RAPAR_RA_EXPLORER_H_
