#include "ra/explorer.h"

#include <cassert>
#include <chrono>
#include <deque>
#include <unordered_map>

namespace rapar {

RaExplorer::RaExplorer(std::vector<const Cfa*> threads, Value dom,
                       std::size_t num_vars,
                       std::pair<std::size_t, std::size_t> symmetric_block)
    : threads_(std::move(threads)),
      dom_(dom),
      num_vars_(num_vars),
      symmetric_block_(symmetric_block) {
  assert(dom_ >= 2);
  for (const Cfa* cfa : threads_) {
    assert(cfa != nullptr);
    assert(cfa->program().vars().size() == num_vars_);
  }
}

void RaExplorer::Successors(const RaConfig& cfg,
                            std::vector<Successor>& out) const {
  for (std::size_t ti = 0; ti < threads_.size(); ++ti) {
    const Cfa& cfa = *threads_[ti];
    const RaThreadState& ts = cfg.thread(ti);
    for (EdgeId eid : cfa.OutEdges(ts.node)) {
      const CfaEdge& edge = cfa.Edge(eid);
      const Instr& instr = edge.instr;
      auto instr_str = [&] {
        return instr.ToString(cfa.program().vars(), cfa.program().regs());
      };
      switch (instr.kind) {
        case Instr::Kind::kNop: {
          Successor s{cfg, ti, instr_str()};
          s.config.thread(ti).node = edge.to;
          out.push_back(std::move(s));
          break;
        }
        case Instr::Kind::kAssume: {
          if (instr.expr->Eval(ts.rv, dom_) != 0) {
            Successor s{cfg, ti, instr_str()};
            s.config.thread(ti).node = edge.to;
            out.push_back(std::move(s));
          }
          break;
        }
        case Instr::Kind::kAssertFail: {
          Successor s{cfg, ti, instr_str()};
          s.config.thread(ti).node = edge.to;
          s.violation = true;
          out.push_back(std::move(s));
          break;
        }
        case Instr::Kind::kAssign: {
          Successor s{cfg, ti, instr_str()};
          RaThreadState& t = s.config.thread(ti);
          t.rv[instr.reg.index()] = instr.expr->Eval(t.rv, dom_);
          t.node = edge.to;
          out.push_back(std::move(s));
          break;
        }
        case Instr::Kind::kLoad: {
          const VarId x = instr.var;
          const auto& seq = cfg.MsgsOf(x);
          // LD: any message whose x-timestamp is at least the thread's.
          for (Timestamp p = ts.view[x];
               p < static_cast<Timestamp>(seq.size()); ++p) {
            Successor s{cfg, ti, instr_str()};
            RaThreadState& t = s.config.thread(ti);
            t.rv[instr.reg.index()] = seq[p].val;
            t.view = t.view.Join(seq[p].view);
            t.node = edge.to;
            out.push_back(std::move(s));
          }
          break;
        }
        case Instr::Kind::kStore: {
          const VarId x = instr.var;
          const Value d = ts.rv[instr.reg.index()];
          // ST: fresh timestamp strictly above the thread's view; every
          // insertion position in (view(x), end] is a distinct choice.
          for (Timestamp pos = ts.view[x] + 1; pos <= cfg.NumMsgs(x); ++pos) {
            if (!cfg.CanInsertAt(x, pos)) continue;
            Successor s{cfg, ti, instr_str()};
            bool ok = s.config.InsertMessage(x, pos, d, ts.view,
                                             /*glued=*/false);
            assert(ok);
            (void)ok;
            RaThreadState& t = s.config.thread(ti);
            t.view = s.config.MsgsOf(x)[pos].view;
            t.node = edge.to;
            out.push_back(std::move(s));
          }
          break;
        }
        case Instr::Kind::kCas: {
          const VarId x = instr.var;
          const Value expected = ts.rv[instr.reg.index()];
          const Value desired = ts.rv[instr.reg2.index()];
          const auto& seq = cfg.MsgsOf(x);
          // CAS: load a matching message at p, store at p+1, glued.
          for (Timestamp p = ts.view[x];
               p < static_cast<Timestamp>(seq.size()); ++p) {
            if (seq[p].val != expected) continue;
            const Timestamp pos = p + 1;
            if (!cfg.CanInsertAt(x, pos)) continue;
            Successor s{cfg, ti, instr_str()};
            const View joined = ts.view.Join(seq[p].view);
            bool ok = s.config.InsertMessage(x, pos, desired, joined,
                                             /*glued=*/true);
            assert(ok);
            (void)ok;
            RaThreadState& t = s.config.thread(ti);
            t.view = s.config.MsgsOf(x)[pos].view;
            t.node = edge.to;
            out.push_back(std::move(s));
          }
          break;
        }
      }
    }
  }
}

RaResult RaExplorer::CheckSafety(const RaExplorerOptions& options) {
  reachable_controls_.clear();
  generated_messages_.clear();
  RaResult result;

  std::vector<std::size_t> reg_counts;
  reg_counts.reserve(threads_.size());
  for (const Cfa* cfa : threads_) {
    reg_counts.push_back(cfa->program().regs().size());
  }
  RaConfig init(num_vars_, reg_counts);

  // Seen states -> (parent index, step) for witness reconstruction.
  struct NodeInfo {
    std::int64_t parent;
    RaTraceStep step;
    int depth;
  };
  std::unordered_map<RaConfig, std::size_t, RaConfigHash> seen;
  std::vector<NodeInfo> info;
  std::vector<const RaConfig*> by_index;
  std::deque<std::size_t> frontier;

  auto note_config = [&](const RaConfig& cfg) {
    for (std::size_t ti = 0; ti < threads_.size(); ++ti) {
      reachable_controls_.emplace(ti, cfg.thread(ti).node.value(),
                                  cfg.thread(ti).rv);
    }
    for (std::size_t xi = 0; xi < num_vars_; ++xi) {
      const auto& seq = cfg.MsgsOf(VarId(static_cast<std::uint32_t>(xi)));
      for (std::size_t p = 1; p < seq.size(); ++p) {
        generated_messages_.emplace(static_cast<std::uint32_t>(xi),
                                    seq[p].val);
      }
    }
  };

  auto [it, inserted] = seen.emplace(init, 0);
  info.push_back(NodeInfo{-1, {}, 0});
  by_index.push_back(&it->first);
  frontier.push_back(0);
  note_config(init);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options.time_budget_ms);
  std::size_t ticks = 0;

  std::vector<Successor> succs;
  while (!frontier.empty()) {
    if (options.time_budget_ms > 0 && (++ticks & 63) == 0 &&
        std::chrono::steady_clock::now() > deadline) {
      result.exhaustive = false;
      result.budget_hit = true;
      result.states = seen.size();
      return result;
    }
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    const int depth = info[cur].depth;
    if (depth > result.depth_reached) result.depth_reached = depth;
    if (depth >= options.max_depth) {
      result.exhaustive = false;
      continue;
    }
    succs.clear();
    Successors(*by_index[cur], succs);
    for (Successor& s : succs) {
      if (options.symmetry_reduction &&
          symmetric_block_.second > symmetric_block_.first) {
        s.config.SortThreadBlock(symmetric_block_.first,
                                 symmetric_block_.second);
      }
      auto [sit, fresh] = seen.emplace(std::move(s.config), seen.size());
      if (!fresh && !s.violation) continue;
      if (fresh) {
        info.push_back(
            NodeInfo{static_cast<std::int64_t>(cur),
                     RaTraceStep{s.thread, s.instr}, depth + 1});
        by_index.push_back(&sit->first);
        frontier.push_back(sit->second);
        note_config(sit->first);
      }
      if (s.violation && !result.violation) {
        result.violation = true;
        // Reconstruct witness.
        std::vector<RaTraceStep> steps;
        std::int64_t at = fresh ? static_cast<std::int64_t>(sit->second)
                                : static_cast<std::int64_t>(cur);
        if (!fresh) {
          steps.push_back(RaTraceStep{s.thread, s.instr});
        }
        while (at > 0) {
          steps.push_back(info[at].step);
          at = info[at].parent;
        }
        result.witness.assign(steps.rbegin(), steps.rend());
        if (options.stop_on_violation) {
          result.states = seen.size();
          result.exhaustive = false;
          return result;
        }
      }
      if (seen.size() >= options.max_states) {
        result.exhaustive = false;
        result.states = seen.size();
        return result;
      }
    }
  }
  result.states = seen.size();
  return result;
}

}  // namespace rapar
