// Views (Var -> Time) for the standard RA semantics (§2).
//
// The explorer keeps timestamps *canonical*: for every variable the
// messages in memory occupy the dense positions 0..k in modification
// order, and views store positions. Timestamp lifting (Lemma 3.1) justifies
// this: any RA computation can be renumbered to dense timestamps without
// affecting reachability. Inserting a message in the middle of the order
// shifts the positions of later messages; the configuration performs that
// renumbering globally (see RaConfig::InsertMessage).
#ifndef RAPAR_RA_VIEW_H_
#define RAPAR_RA_VIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/ids.h"
#include "lang/symbols.h"

namespace rapar {

// Per-variable timestamp (dense position in modification order; 0 is the
// initial message).
using Timestamp = std::int32_t;

// A map Var -> Timestamp, total over the system's variable universe.
class View {
 public:
  View() = default;
  explicit View(std::size_t num_vars) : ts_(num_vars, 0) {}

  std::size_t size() const { return ts_.size(); }

  Timestamp operator[](VarId x) const { return ts_[x.index()]; }
  void Set(VarId x, Timestamp t) { ts_[x.index()] = t; }

  // Pointwise maximum (the join used by loads).
  View Join(const View& other) const {
    View out(*this);
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (other.ts_[i] > out.ts_[i]) out.ts_[i] = other.ts_[i];
    }
    return out;
  }

  // Pointwise <=.
  bool Leq(const View& other) const {
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (ts_[i] > other.ts_[i]) return false;
    }
    return true;
  }

  bool operator==(const View& other) const { return ts_ == other.ts_; }
  bool operator<(const View& other) const { return ts_ < other.ts_; }

  std::size_t Hash() const {
    std::size_t seed = 0x517cc1b7;
    for (Timestamp t : ts_) HashCombine(seed, static_cast<std::size_t>(t));
    return seed;
  }

  // Direct slot access used by renumbering.
  Timestamp& Slot(std::size_t i) { return ts_[i]; }
  Timestamp Slot(std::size_t i) const { return ts_[i]; }

  std::string ToString(const VarTable& vars) const;

 private:
  std::vector<Timestamp> ts_;
};

}  // namespace rapar

namespace std {
template <>
struct hash<rapar::View> {
  size_t operator()(const rapar::View& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // RAPAR_RA_VIEW_H_
