#include "dlopt/optimize.h"

#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "dlopt/pred_graph.h"
#include "dlopt/rule_checks.h"
#include "obs/trace.h"

namespace rapar::dlopt {

DlOptStats& DlOptStats::operator+=(const DlOptStats& o) {
  rules_before += o.rules_before;
  rules_after += o.rules_after;
  unproductive_removed += o.unproductive_removed;
  unreachable_removed += o.unreachable_removed;
  demand_removed += o.demand_removed;
  duplicates_removed += o.duplicates_removed;
  subsumed_removed += o.subsumed_removed;
  copy_aliased_removed += o.copy_aliased_removed;
  preds_before += o.preds_before;
  preds_after += o.preds_after;
  return *this;
}

std::string DlOptStats::ToString() const {
  return StrCat("rules ", rules_before, " -> ", rules_after,
                " (unreachable ", unreachable_removed, ", unproductive ",
                unproductive_removed, ", demand ", demand_removed,
                ", dup ", duplicates_removed, ", subsumed ",
                subsumed_removed, ", aliased ", copy_aliased_removed,
                ")");
}

namespace {

// Per-predicate, per-position demanded constants; ⊤ ("any value") as soon
// as some occurrence binds the position with a variable.
struct Demand {
  std::vector<std::vector<bool>> top;                     // [pred][pos]
  std::vector<std::vector<std::unordered_set<dl::Sym>>> consts;

  explicit Demand(const dl::Program& prog) {
    top.resize(prog.num_preds());
    consts.resize(prog.num_preds());
    for (std::size_t p = 0; p < prog.num_preds(); ++p) {
      top[p].assign(prog.pred(p).arity, false);
      consts[p].resize(prog.pred(p).arity);
    }
  }

  void AddUse(const dl::Atom& a) {
    for (std::size_t i = 0; i < a.args.size(); ++i) {
      if (a.args[i].kind == dl::Term::Kind::kConst) {
        consts[a.pred][i].insert(a.args[i].val);
      } else {
        top[a.pred][i] = true;
      }
    }
  }

  // A head deriving `a` can be consumed: every constant head position is
  // demanded.
  bool HeadDemanded(const dl::Atom& a) const {
    for (std::size_t i = 0; i < a.args.size(); ++i) {
      if (a.args[i].kind != dl::Term::Kind::kConst) continue;
      if (top[a.pred][i]) continue;
      if (consts[a.pred][i].count(a.args[i].val) == 0) return false;
    }
    return true;
  }
};

class Optimizer {
 public:
  Optimizer(const dl::Program& prog, const dl::Atom& goal,
            const DlOptOptions& options)
      : prog_(prog),
        goal_(goal),
        options_(options),
        rules_(prog.rules()) {
    cause_.assign(rules_.size(), RemovalCause::kKept);
  }

  OptimizeResult Run() {
    DlOptStats stats;
    stats.rules_before = rules_.size();
    stats.preds_before = MentionedPreds();

    // Per-pass tracing: every invocation (incl. fixpoint re-runs) is a
    // "dlopt:<pass>" span. A null recorder makes `timed` a plain call.
    auto timed = [this](const char* name, auto&& fn) {
      obs::ScopedSpan span(options_.trace, name);
      return fn();
    };

    // Passes 1–3 shrink each other's inputs; iterate to fixpoint, then
    // run the (pricier) structural passes once and give the cheap passes
    // one more chance on their output.
    auto cheap_passes = [&, this] {
      bool changed = false;
      if (options_.dead_rule_elimination) {
        changed |= timed("dlopt:unproductive", [&] {
          return DropUnproductive(&stats.unproductive_removed);
        });
        changed |= timed("dlopt:unreachable", [&] {
          return DropUnreachable(&stats.unreachable_removed);
        });
      }
      if (options_.demand_specialization) {
        changed |= timed("dlopt:demand", [&] {
          return DropUndemanded(&stats.demand_removed);
        });
      }
      if (options_.copy_alias_elimination) {
        changed |= timed("dlopt:copy_alias", [&] {
          return DropCopyAliases(&stats.copy_aliased_removed);
        });
      }
      return changed;
    };
    bool changed = true;
    while (changed) changed = cheap_passes();
    if (options_.duplicate_elimination) {
      if (timed("dlopt:duplicates", [&] {
            return DropDuplicates(&stats.duplicates_removed);
          })) {
        changed = true;
      }
    }
    if (options_.subsumption_elimination) {
      if (timed("dlopt:subsumption", [&] {
            return DropSubsumed(&stats.subsumed_removed);
          })) {
        changed = true;
      }
    }
    while (changed) changed = cheap_passes();

    OptimizeResult result{prog_, std::move(stats), {}};
    std::vector<dl::Rule> rules;
    for (std::size_t i = 0; i < cause_.size(); ++i) {
      if (Alive(i)) rules.push_back(rules_[i]);
    }
    result.stats.rules_after = rules.size();
    result.prog.SetRules(std::move(rules));
    result.stats.preds_after = MentionedPreds();
    result.cause = std::move(cause_);
    return result;
  }

 private:
  bool Alive(std::size_t i) const {
    return cause_[i] == RemovalCause::kKept;
  }
  std::size_t MentionedPreds() const {
    std::vector<bool> seen(prog_.num_preds(), false);
    for (std::size_t i = 0; i < cause_.size(); ++i) {
      if (!Alive(i)) continue;
      const dl::Rule& r = rules_[i];
      seen[r.head.pred] = true;
      for (const dl::Atom& a : r.body) seen[a.pred] = true;
    }
    std::size_t n = 0;
    for (bool b : seen) n += b;
    return n;
  }

  // Least fixpoint of "can hold a tuple" over the alive rules.
  bool DropUnproductive(std::size_t* count) {
    std::vector<bool> productive(prog_.num_preds(), false);
    bool grew = true;
    while (grew) {
      grew = false;
      for (std::size_t i = 0; i < cause_.size(); ++i) {
        if (!Alive(i)) continue;
        const dl::Rule& r = rules_[i];
        if (productive[r.head.pred]) continue;
        bool all = true;
        for (const dl::Atom& a : r.body) {
          if (!productive[a.pred]) {
            all = false;
            break;
          }
        }
        if (all) {
          productive[r.head.pred] = true;
          grew = true;
        }
      }
    }
    bool changed = false;
    for (std::size_t i = 0; i < cause_.size(); ++i) {
      if (!Alive(i)) continue;
      for (const dl::Atom& a : rules_[i].body) {
        if (!productive[a.pred]) {
          cause_[i] = RemovalCause::kUnproductive;
          ++*count;
          changed = true;
          break;
        }
      }
    }
    return changed;
  }

  bool DropUnreachable(std::size_t* count) {
    std::vector<bool> reach(prog_.num_preds(), false);
    std::deque<dl::PredId> work{goal_.pred};
    reach[goal_.pred] = true;
    // Backward reachability over alive rules only.
    std::vector<std::vector<std::size_t>> by_head(prog_.num_preds());
    for (std::size_t i = 0; i < cause_.size(); ++i) {
      if (Alive(i)) by_head[rules_[i].head.pred].push_back(i);
    }
    while (!work.empty()) {
      const dl::PredId p = work.front();
      work.pop_front();
      for (std::size_t i : by_head[p]) {
        for (const dl::Atom& a : rules_[i].body) {
          if (!reach[a.pred]) {
            reach[a.pred] = true;
            work.push_back(a.pred);
          }
        }
      }
    }
    bool changed = false;
    for (std::size_t i = 0; i < cause_.size(); ++i) {
      if (Alive(i) && !reach[rules_[i].head.pred]) {
        cause_[i] = RemovalCause::kUnreachable;
        ++*count;
        changed = true;
      }
    }
    return changed;
  }

  bool DropUndemanded(std::size_t* count) {
    Demand demand(prog_);
    demand.AddUse(goal_);
    for (std::size_t i = 0; i < cause_.size(); ++i) {
      if (!Alive(i)) continue;
      for (const dl::Atom& a : rules_[i].body) demand.AddUse(a);
    }
    bool changed = false;
    for (std::size_t i = 0; i < cause_.size(); ++i) {
      if (Alive(i) && !demand.HeadDemanded(rules_[i].head)) {
        cause_[i] = RemovalCause::kUndemanded;
        ++*count;
        changed = true;
      }
    }
    return changed;
  }

  // A rule is an identity copy when it derives p(X0..Xn) :- q(X0..Xn)
  // with the head and body argument vectors equal, all distinct
  // variables, and no natives: then p ⊆ q instance-for-instance. When it
  // is also p's *only* derivation (no other rule, no fact) and p is not
  // the query predicate, p ≡ q — rewrite every occurrence of p to q and
  // drop the rule. makeP's dis-chain nop/assume/assign steps have exactly
  // this shape.
  static bool IsIdentityCopy(const dl::Rule& r) {
    if (r.body.size() != 1 || !r.natives.empty()) return false;
    const dl::Atom& b = r.body[0];
    if (b.pred == r.head.pred) return false;
    if (r.head.args.size() != b.args.size()) return false;
    std::unordered_set<dl::VarSym> seen;
    for (std::size_t i = 0; i < b.args.size(); ++i) {
      const dl::Term& h = r.head.args[i];
      const dl::Term& t = b.args[i];
      if (h.kind != dl::Term::Kind::kVar || t.kind != dl::Term::Kind::kVar) {
        return false;
      }
      if (h.val != t.val) return false;
      if (!seen.insert(h.val).second) return false;  // repeated variable
    }
    return true;
  }

  bool DropCopyAliases(std::size_t* count) {
    bool changed = false;
    bool again = true;
    while (again) {
      again = false;
      // Defining-rule census over the alive rules (facts included).
      std::vector<std::size_t> defs(prog_.num_preds(), 0);
      std::vector<std::size_t> def_rule(prog_.num_preds(), 0);
      for (std::size_t i = 0; i < cause_.size(); ++i) {
        if (!Alive(i)) continue;
        ++defs[rules_[i].head.pred];
        def_rule[rules_[i].head.pred] = i;
      }
      for (std::size_t p = 0; p < prog_.num_preds(); ++p) {
        if (defs[p] != 1 || p == goal_.pred) continue;
        const std::size_t i = def_rule[p];
        if (!IsIdentityCopy(rules_[i])) continue;
        const dl::PredId q = rules_[i].body[0].pred;
        cause_[i] = RemovalCause::kCopyAliased;
        ++*count;
        for (std::size_t j = 0; j < cause_.size(); ++j) {
          if (!Alive(j)) continue;
          for (dl::Atom& a : rules_[j].body) {
            if (a.pred == p) a.pred = q;
          }
        }
        changed = again = true;
        break;  // census is stale; rescan (chains collapse link by link)
      }
    }
    return changed;
  }

  bool DropDuplicates(std::size_t* count) {
    std::unordered_set<std::string> seen;
    bool changed = false;
    for (std::size_t i = 0; i < cause_.size(); ++i) {
      if (!Alive(i)) continue;
      if (!seen.insert(CanonicalRuleKey(rules_[i])).second) {
        cause_[i] = RemovalCause::kDuplicate;
        ++*count;
        changed = true;
      }
    }
    return changed;
  }

  bool DropSubsumed(std::size_t* count) {
    std::unordered_map<dl::PredId, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < cause_.size(); ++i) {
      if (Alive(i)) groups[rules_[i].head.pred].push_back(i);
    }
    bool changed = false;
    for (const auto& [pred, members] : groups) {
      if (members.size() < 2 ||
          members.size() > options_.max_subsumption_group) {
        continue;
      }
      for (std::size_t j : members) {
        if (!Alive(j)) continue;
        for (std::size_t i : members) {
          if (i == j || !Alive(i)) continue;
          if (Subsumes(rules_[i], rules_[j])) {
            cause_[j] = RemovalCause::kSubsumed;
            ++*count;
            changed = true;
            break;
          }
        }
      }
    }
    return changed;
  }

  const dl::Program& prog_;
  const dl::Atom goal_;
  const DlOptOptions& options_;
  // Working copy: aliasing rewrites these in place; indices match the
  // input program's rule list (and cause_).
  std::vector<dl::Rule> rules_;
  std::vector<RemovalCause> cause_;
};

}  // namespace

OptimizeResult OptimizeForQuery(const dl::Program& prog,
                                const dl::Atom& goal,
                                const DlOptOptions& options) {
  assert(goal.pred < prog.num_preds());
  Optimizer opt(prog, goal, options);
  return opt.Run();
}

}  // namespace rapar::dlopt
