// Diagnostics for generated Cache-Datalog programs (rapar_dlopt).
//
// Extends the RA0xx registry of analysis/diagnostics.h to the Datalog
// half of the pipeline. These diagnostics describe the *encoding*, not
// the source program, so their SrcLoc is invalid (synthetic); renderers
// fall back to file-only prefixes.
//
// Codes (stable, referenced by DESIGN.md and tests):
//   RA020  warning  dead rule: head predicate cannot reach the query
//   RA021  warning  rule can never fire: a body predicate derives no
//                   tuples
//   RA022  note     rule head specialises outside the demanded constant
//                   cone (magic-sets-lite would never ask for it)
//   RA023  warning  duplicate rule (equal up to variable renaming)
//   RA024  note     rule subsumed by a more general rule
//   RA025  error    range-restriction violation: unbound head variable or
//                   native input — the rule is not evaluable
//   RA026  note     per-SCC width classification (which solver applies,
//                   and the static cache bound when one exists)
//   RA027  note     identity copy rule inlined: the head predicate is
//                   extensionally equal to the body predicate and was
//                   aliased away
#ifndef RAPAR_DLOPT_DL_DIAGNOSTICS_H_
#define RAPAR_DLOPT_DL_DIAGNOSTICS_H_

#include <vector>

#include "analysis/diagnostics.h"
#include "dlopt/optimize.h"
#include "dlopt/pred_graph.h"
#include "dlopt/width.h"

namespace rapar::dlopt {

// Everything dlanalyze reports about one query instance (Prog, g).
struct DlAnalysis {
  PredGraph graph;
  WidthReport width;
  OptimizeResult opt;
  std::vector<Diagnostic> diagnostics;  // RA020–RA026, sorted
};

DlAnalysis AnalyzeDlProgram(const dl::Program& prog, const dl::Atom& goal,
                            const DlOptOptions& options = {});

}  // namespace rapar::dlopt

#endif  // RAPAR_DLOPT_DL_DIAGNOSTICS_H_
