#include "dlopt/dl_diagnostics.h"

#include "common/strings.h"
#include "dlopt/rule_checks.h"

namespace rapar::dlopt {

namespace {

// Rules render long (views inline one argument per variable); keep the
// one-line diagnostic format readable.
std::string Clip(std::string s) {
  constexpr std::size_t kMax = 96;
  if (s.size() > kMax) {
    s.resize(kMax - 3);
    s += "...";
  }
  return s;
}

}  // namespace

DlAnalysis AnalyzeDlProgram(const dl::Program& prog, const dl::Atom& goal,
                            const DlOptOptions& options) {
  DlAnalysis a;
  a.graph = PredGraph::Build(prog);
  a.width = AnalyzeWidth(prog, a.graph, goal.pred);
  a.opt = OptimizeForQuery(prog, goal, options);

  auto emit = [&](Severity sev, const char* code, std::string message) {
    a.diagnostics.push_back(
        Diagnostic{sev, code, std::move(message), SrcLoc{}});
  };

  for (const RangeRestrictionViolation& v :
       ValidateRangeRestriction(prog)) {
    emit(Severity::kError, "RA025",
         StrCat("range-restriction violation in '",
                Clip(prog.RuleToString(prog.rules()[v.rule_index])),
                "': ", v.detail));
  }

  for (std::size_t i = 0; i < a.opt.cause.size(); ++i) {
    const std::string rule = Clip(prog.RuleToString(prog.rules()[i]));
    switch (a.opt.cause[i]) {
      case RemovalCause::kKept:
        break;
      case RemovalCause::kUnreachable:
        emit(Severity::kWarning, "RA020",
             StrCat("dead rule: '", rule, "' — predicate '",
                    prog.pred(prog.rules()[i].head.pred).name,
                    "' cannot reach the query '",
                    prog.pred(goal.pred).name, "'"));
        break;
      case RemovalCause::kUnproductive:
        emit(Severity::kWarning, "RA021",
             StrCat("rule can never fire: '", rule,
                    "' — a body predicate derives no tuples"));
        break;
      case RemovalCause::kUndemanded:
        emit(Severity::kNote, "RA022",
             StrCat("demand-pruned rule: '", rule,
                    "' — its head constants are outside the cone the "
                    "query demands"));
        break;
      case RemovalCause::kDuplicate:
        emit(Severity::kWarning, "RA023",
             StrCat("duplicate rule: '", rule,
                    "' (equal to an earlier rule up to variable "
                    "renaming)"));
        break;
      case RemovalCause::kSubsumed:
        emit(Severity::kNote, "RA024",
             StrCat("subsumed rule: '", rule,
                    "' — a more general surviving rule derives every "
                    "instance it derives"));
        break;
      case RemovalCause::kCopyAliased:
        emit(Severity::kNote, "RA027",
             StrCat("copy rule inlined: '", rule,
                    "' — its head predicate has no other derivation, so "
                    "it is aliased to the body predicate"));
        break;
    }
  }

  for (const SccWidth& w : a.width.sccs) {
    if (w.num_rules == 0) continue;
    std::string members;
    for (dl::PredId p : a.graph.sccs[w.scc]) {
      if (!a.graph.mentioned[p]) continue;
      members += StrCat(members.empty() ? "" : " ", prog.pred(p).name);
    }
    std::string msg =
        StrCat("scc {", members, "} is ", WidthClassName(w.cls),
               w.recursive ? " (recursive)" : "", ": ");
    if (w.cls == WidthClass::kLinear || w.cls == WidthClass::kCache) {
      msg += "the bounded-cache solver (⊢_k) applies";
      if (w.linear_transform_applicable) {
        msg += "; bodies have <= 3 atoms, so the Lemma 4.2 "
               "linearisation applies too";
      }
    } else if (w.cls == WidthClass::kWide) {
      msg += StrCat("some rule joins ", w.max_idb_body_atoms,
                    " IDB atoms — outside the Cache Datalog fragment, "
                    "standard evaluation only");
    }
    emit(Severity::kNote, "RA026", std::move(msg));
  }
  if (a.width.static_k_bound.has_value()) {
    emit(Severity::kNote, "RA026",
         StrCat("query cone is non-recursive: static cache bound k <= ",
                *a.width.static_k_bound,
                " (condensation height x max body + 1)"));
  }

  SortDiagnostics(a.diagnostics);
  return a;
}

}  // namespace rapar::dlopt
