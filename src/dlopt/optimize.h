// Query-driven optimization of datalog::Program (rapar_dlopt).
//
// `OptimizeForQuery` rewrites a program into a smaller one with the same
// answer to a fixed ground query — verdict-preserving by construction,
// checked by tests/dlopt_differential_test.cpp. Four transformations, to
// fixpoint:
//
//   1. unproductive-rule elimination — a body atom whose predicate can
//      never hold a tuple (pred_graph.h) keeps the rule from ever firing;
//   2. dead-rule & unreachable-EDB elimination — rules (and facts) whose
//      head predicate is not backward-reachable from the query cannot
//      take part in any derivation of it;
//   3. demand specialization (magic-sets-lite) — per predicate and
//      argument position, collect the set of constants demanded by the
//      body atoms of surviving rules and by the query itself (⊤ as soon
//      as some occurrence has a variable there). A rule whose head
//      carries a constant outside the demanded set derives only tuples no
//      surviving rule or the query can consume. For the makeP encoding
//      this specialises on the ground arguments of the dis guess: control
//      locations, read values, goal variable/value;
//   4. duplicate & subsumed-rule removal (rule_checks.h);
//   5. copy-rule aliasing — a predicate whose single deriving rule is an
//      identity copy  p(X0..Xn) :- q(X0..Xn)  (distinct variables, no
//      natives, no facts for p) is extensionally equal to q; every
//      occurrence of p is rewritten to q and the copy rule dropped. The
//      dis-chain steps makeP emits for nop/assume/assign are exactly this
//      shape, so long guessed runs collapse to their load/store skeleton.
//
// The result shares the input's predicate and constant tables, so Sym
// values (and the natives that capture them) stay valid.
#ifndef RAPAR_DLOPT_OPTIMIZE_H_
#define RAPAR_DLOPT_OPTIMIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace rapar::obs {
class TraceRecorder;
}

namespace rapar::dlopt {

struct DlOptOptions {
  bool dead_rule_elimination = true;   // passes 1 + 2
  bool demand_specialization = true;   // pass 3
  bool duplicate_elimination = true;   // pass 4a
  bool subsumption_elimination = true; // pass 4b
  bool copy_alias_elimination = true;  // pass 5
  // Subsumption is quadratic per head predicate; groups larger than this
  // skip it (duplicate removal still applies).
  std::size_t max_subsumption_group = 64;
  // Optional span sink: each pass invocation is recorded as a
  // "dlopt:<pass>" span (obs/trace.h). Null = no tracing, no cost.
  obs::TraceRecorder* trace = nullptr;
};

struct DlOptStats {
  std::size_t rules_before = 0;
  std::size_t rules_after = 0;
  // Removal counts by cause (facts count as rules throughout).
  std::size_t unproductive_removed = 0;
  std::size_t unreachable_removed = 0;
  std::size_t demand_removed = 0;
  std::size_t duplicates_removed = 0;
  std::size_t subsumed_removed = 0;
  std::size_t copy_aliased_removed = 0;
  // Predicates mentioned by rules before vs after.
  std::size_t preds_before = 0;
  std::size_t preds_after = 0;

  std::size_t removed() const { return rules_before - rules_after; }
  bool Any() const { return removed() > 0; }
  DlOptStats& operator+=(const DlOptStats& o);
  // "rules 120 -> 45 (unreachable 50, unproductive 10, demand 12, dup 2,
  // subsumed 1)".
  std::string ToString() const;
};

// Why an input rule was removed (kKept = it survived). Recorded per input
// rule index so diagnostics (dl_diagnostics.h) can explain each removal.
enum class RemovalCause : std::uint8_t {
  kKept,
  kUnproductive,
  kUnreachable,
  kUndemanded,
  kDuplicate,
  kSubsumed,
  kCopyAliased,
};

// Optimizes `prog` for the ground query `goal`. Requires goal.pred to be
// a predicate of `prog` and goal ground. Surviving rules may be rewritten
// (copy-rule aliasing renames predicates inside them); removed rules are
// reported against the input rule indices.
struct OptimizeResult {
  dl::Program prog;
  DlOptStats stats;
  // One entry per rule of the *input* program.
  std::vector<RemovalCause> cause;
};

OptimizeResult OptimizeForQuery(const dl::Program& prog,
                                const dl::Atom& goal,
                                const DlOptOptions& options = {});

}  // namespace rapar::dlopt

#endif  // RAPAR_DLOPT_OPTIMIZE_H_
