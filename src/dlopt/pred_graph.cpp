#include "dlopt/pred_graph.h"

#include <algorithm>
#include <deque>

#include "common/strings.h"

namespace rapar::dlopt {

namespace {

void Dedup(std::vector<dl::PredId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

// Iterative Tarjan SCC over `deps`. Emits components in reverse
// topological order (callees first); the caller renumbers.
struct Tarjan {
  const std::vector<std::vector<dl::PredId>>& adj;
  std::vector<int> index, low, on_stack;
  std::vector<dl::PredId> stack;
  std::vector<std::vector<dl::PredId>> comps;
  int next_index = 0;

  explicit Tarjan(const std::vector<std::vector<dl::PredId>>& a)
      : adj(a),
        index(a.size(), -1),
        low(a.size(), 0),
        on_stack(a.size(), 0) {}

  void Run() {
    for (dl::PredId v = 0; v < adj.size(); ++v) {
      if (index[v] < 0) Visit(v);
    }
  }

  void Visit(dl::PredId root) {
    // Explicit DFS stack: (node, next child position).
    std::vector<std::pair<dl::PredId, std::size_t>> dfs{{root, 0}};
    while (!dfs.empty()) {
      auto& [v, child] = dfs.back();
      if (child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      if (child < adj[v].size()) {
        const dl::PredId w = adj[v][child++];
        if (index[w] < 0) {
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
        continue;
      }
      if (low[v] == index[v]) {
        std::vector<dl::PredId> comp;
        for (;;) {
          const dl::PredId w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp.push_back(w);
          if (w == v) break;
        }
        std::sort(comp.begin(), comp.end());
        comps.push_back(std::move(comp));
      }
      const dl::PredId done = v;
      dfs.pop_back();
      if (!dfs.empty()) {
        low[dfs.back().first] =
            std::min(low[dfs.back().first], low[done]);
      }
    }
  }
};

}  // namespace

PredGraph PredGraph::Build(const dl::Program& prog) {
  PredGraph g;
  g.num_preds = prog.num_preds();
  g.deps.resize(g.num_preds);
  g.rdeps.resize(g.num_preds);
  g.is_idb.assign(g.num_preds, false);
  g.has_fact.assign(g.num_preds, false);
  g.mentioned.assign(g.num_preds, false);

  for (const dl::Rule& r : prog.rules()) {
    g.mentioned[r.head.pred] = true;
    if (r.IsFact()) {
      g.has_fact[r.head.pred] = true;
      continue;
    }
    g.is_idb[r.head.pred] = true;
    for (const dl::Atom& a : r.body) {
      g.mentioned[a.pred] = true;
      g.deps[r.head.pred].push_back(a.pred);
    }
  }
  for (std::size_t p = 0; p < g.num_preds; ++p) Dedup(g.deps[p]);
  for (dl::PredId p = 0; p < g.num_preds; ++p) {
    for (dl::PredId q : g.deps[p]) g.rdeps[q].push_back(p);
  }
  for (std::size_t p = 0; p < g.num_preds; ++p) Dedup(g.rdeps[p]);

  Tarjan tarjan(g.deps);
  tarjan.Run();
  // Tarjan emits callees first; reverse so dependencies get higher ids and
  // scc_of is topologically ordered along `deps`.
  std::reverse(tarjan.comps.begin(), tarjan.comps.end());
  g.sccs = std::move(tarjan.comps);
  g.scc_of.assign(g.num_preds, -1);
  for (std::size_t c = 0; c < g.sccs.size(); ++c) {
    for (dl::PredId p : g.sccs[c]) g.scc_of[p] = static_cast<int>(c);
  }
  g.scc_recursive.assign(g.sccs.size(), false);
  for (std::size_t c = 0; c < g.sccs.size(); ++c) {
    if (g.sccs[c].size() > 1) {
      g.scc_recursive[c] = true;
      continue;
    }
    const dl::PredId p = g.sccs[c][0];
    g.scc_recursive[c] = std::binary_search(g.deps[p].begin(),
                                            g.deps[p].end(), p);
  }
  return g;
}

std::vector<bool> PredGraph::ReachableFrom(dl::PredId query) const {
  std::vector<bool> reach(num_preds, false);
  std::deque<dl::PredId> work{query};
  reach[query] = true;
  while (!work.empty()) {
    const dl::PredId p = work.front();
    work.pop_front();
    for (dl::PredId q : deps[p]) {
      if (!reach[q]) {
        reach[q] = true;
        work.push_back(q);
      }
    }
  }
  return reach;
}

std::vector<bool> PredGraph::Productive(const dl::Program& prog) const {
  std::vector<bool> productive = has_fact;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const dl::Rule& r : prog.rules()) {
      if (r.IsFact() || productive[r.head.pred]) continue;
      bool all = true;
      for (const dl::Atom& a : r.body) {
        if (!productive[a.pred]) {
          all = false;
          break;
        }
      }
      if (all) {
        productive[r.head.pred] = true;
        changed = true;
      }
    }
  }
  return productive;
}

std::size_t PredGraph::CondensationHeight(dl::PredId from) const {
  // Longest path over components, memoised; scc_of is topological along
  // deps, so a plain descending-id sweep is a valid evaluation order.
  std::vector<std::size_t> height(sccs.size(), 0);
  for (std::size_t c = sccs.size(); c-- > 0;) {
    std::size_t best = 0;
    bool counts = false;
    for (dl::PredId p : sccs[c]) {
      if (mentioned[p]) counts = true;
      for (dl::PredId q : deps[p]) {
        const std::size_t qc = static_cast<std::size_t>(scc_of[q]);
        if (qc != c) best = std::max(best, height[qc]);
      }
    }
    height[c] = best + (counts ? 1 : 0);
  }
  return height[static_cast<std::size_t>(scc_of[from])];
}

std::string PredGraph::ToDot(const dl::Program& prog,
                             const std::vector<bool>& highlight) const {
  std::string out = "digraph preds {\n  rankdir=LR;\n";
  for (std::size_t c = 0; c < sccs.size(); ++c) {
    bool any = false;
    for (dl::PredId p : sccs[c]) any = any || mentioned[p];
    if (!any) continue;
    const bool cluster = sccs[c].size() > 1;
    if (cluster) {
      out += StrCat("  subgraph cluster_scc", c,
                    " {\n    label=\"scc ", c, "\";\n");
    }
    for (dl::PredId p : sccs[c]) {
      if (!mentioned[p]) continue;
      out += StrCat(cluster ? "    " : "  ", "p", p, " [label=\"",
                    prog.pred(p).name, "/", prog.pred(p).arity, "\"");
      if (!is_idb[p]) out += ", shape=box";
      if (!highlight.empty() && highlight[p]) {
        out += ", style=filled, fillcolor=lightgrey";
      }
      out += "];\n";
    }
    if (cluster) out += "  }\n";
  }
  for (dl::PredId p = 0; p < num_preds; ++p) {
    for (dl::PredId q : deps[p]) {
      out += StrCat("  p", p, " -> p", q, ";\n");
    }
  }
  out += "}\n";
  return out;
}

std::string PredGraph::ToText(const dl::Program& prog) const {
  std::string out;
  for (dl::PredId p = 0; p < num_preds; ++p) {
    if (!mentioned[p]) continue;
    out += StrCat(prog.pred(p).name, "/", prog.pred(p).arity,
                  is_idb[p] ? "" : " (edb)", " ->");
    if (deps[p].empty()) {
      out += " (none)";
    } else {
      bool first = true;
      for (dl::PredId q : deps[p]) {
        out += StrCat(first ? " " : ", ", prog.pred(q).name);
        first = false;
      }
    }
    out += "\n";
  }
  for (std::size_t c = 0; c < sccs.size(); ++c) {
    bool any = false;
    for (dl::PredId p : sccs[c]) any = any || mentioned[p];
    if (!any) continue;
    out += StrCat("scc ", c, scc_recursive[c] ? " (recursive):" : ":");
    for (dl::PredId p : sccs[c]) {
      if (mentioned[p]) out += StrCat(" ", prog.pred(p).name);
    }
    out += "\n";
  }
  return out;
}

}  // namespace rapar::dlopt
