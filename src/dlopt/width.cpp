#include "dlopt/width.h"

#include <algorithm>

#include "common/strings.h"

namespace rapar::dlopt {

const char* WidthClassName(WidthClass w) {
  switch (w) {
    case WidthClass::kEdbOnly:
      return "edb-only";
    case WidthClass::kLinear:
      return "linear";
    case WidthClass::kCache:
      return "cache";
    case WidthClass::kWide:
      return "wide";
  }
  return "?";
}

namespace {

WidthClass ClassOf(std::size_t max_idb_body, bool has_rules) {
  if (!has_rules) return WidthClass::kEdbOnly;
  if (max_idb_body <= 1) return WidthClass::kLinear;
  if (max_idb_body <= 2) return WidthClass::kCache;
  return WidthClass::kWide;
}

}  // namespace

WidthReport AnalyzeWidth(const dl::Program& prog, const PredGraph& graph,
                         std::optional<dl::PredId> query) {
  const std::vector<bool> idb = prog.IdbPreds();
  std::vector<bool> in_cone(graph.num_preds, true);
  if (query.has_value()) in_cone = graph.ReachableFrom(*query);

  std::vector<SccWidth> per_scc(graph.num_sccs());
  for (std::size_t c = 0; c < graph.num_sccs(); ++c) {
    per_scc[c].scc = c;
    per_scc[c].recursive = graph.scc_recursive[c];
  }
  for (const dl::Rule& r : prog.rules()) {
    SccWidth& w =
        per_scc[static_cast<std::size_t>(graph.scc_of[r.head.pred])];
    if (r.IsFact()) {
      ++w.num_facts;
      continue;
    }
    ++w.num_rules;
    std::size_t idb_atoms = 0;
    for (const dl::Atom& a : r.body) {
      if (idb[a.pred]) ++idb_atoms;
    }
    w.max_body_atoms = std::max(w.max_body_atoms, r.body.size());
    w.max_idb_body_atoms = std::max(w.max_idb_body_atoms, idb_atoms);
  }

  WidthReport report;
  bool cone_recursive = false;
  std::size_t cone_max_idb = 0;
  bool cone_has_rules = false;
  for (std::size_t c = 0; c < graph.num_sccs(); ++c) {
    SccWidth& w = per_scc[c];
    if (w.num_rules + w.num_facts == 0) continue;  // declaration-only
    w.cls = ClassOf(w.max_idb_body_atoms, w.num_rules > 0);
    w.linear_transform_applicable =
        w.num_rules > 0 && w.max_body_atoms <= 3;
    const bool scc_in_cone =
        std::any_of(graph.sccs[c].begin(), graph.sccs[c].end(),
                    [&](dl::PredId p) { return in_cone[p]; });
    if (scc_in_cone) {
      cone_has_rules = cone_has_rules || w.num_rules > 0;
      cone_recursive = cone_recursive || w.recursive;
      cone_max_idb = std::max(cone_max_idb, w.max_idb_body_atoms);
      report.max_body_atoms =
          std::max(report.max_body_atoms, w.max_body_atoms);
    }
    report.sccs.push_back(w);
  }
  report.program_cls = ClassOf(cone_max_idb, cone_has_rules);
  report.program_recursive = cone_recursive;
  if (!cone_recursive && cone_has_rules && query.has_value()) {
    // Non-recursive cone: derivation height ≤ condensation height H, so a
    // depth-first cache evaluation needs at most H·B + 1 atoms live.
    const std::size_t h = graph.CondensationHeight(*query);
    report.static_k_bound = h * std::max<std::size_t>(
                                    report.max_body_atoms, 1) +
                            1;
  }
  return report;
}

std::string WidthReport::ToString(const dl::Program& prog,
                                  const PredGraph& graph) const {
  std::string out;
  for (const SccWidth& w : sccs) {
    out += StrCat("scc ", w.scc, " [", WidthClassName(w.cls),
                  w.recursive ? ", recursive" : "", "]");
    out += StrCat(" rules=", w.num_rules, " facts=", w.num_facts,
                  " max-body=", w.max_body_atoms,
                  " max-idb-body=", w.max_idb_body_atoms);
    if (w.num_rules > 0) {
      out += StrCat("  solvers: standard");
      if (w.cls == WidthClass::kLinear || w.cls == WidthClass::kCache) {
        out += ", cache(⊢_k)";
      }
      if (w.linear_transform_applicable) out += ", linearise(Lemma 4.2)";
    }
    out += "  {";
    bool first = true;
    for (dl::PredId p : graph.sccs[w.scc]) {
      if (!graph.mentioned[p]) continue;
      out += StrCat(first ? "" : " ", prog.pred(p).name);
      first = false;
    }
    out += "}\n";
  }
  out += StrCat("program: ", WidthClassName(program_cls),
                program_recursive ? " (recursive)" : " (non-recursive)",
                ", max body ", max_body_atoms);
  if (static_k_bound.has_value()) {
    out += StrCat(", static cache bound k <= ", *static_k_bound);
  } else if (program_recursive) {
    out += ", no static cache bound (recursive; Lemma 4.4's dynamic "
           "O(Q0^2) bound applies)";
  }
  out += "\n";
  return out;
}

dl::JoinHints MakeJoinHints(const PredGraph& graph) {
  dl::JoinHints hints;
  hints.growth.assign(graph.num_preds, 0);
  for (std::size_t p = 0; p < graph.num_preds; ++p) {
    if (!graph.is_idb[p]) continue;
    const int c = graph.scc_of[p];
    const bool recursive =
        c >= 0 && graph.scc_recursive[static_cast<std::size_t>(c)];
    hints.growth[p] = recursive ? 2 : 1;
  }
  return hints;
}

}  // namespace rapar::dlopt
