// Predicate dependency graph over a datalog::Program (rapar_dlopt).
//
// Nodes are predicates; there is an edge p -> q when some rule with head
// predicate p has q in its body ("p depends on q"). On top of the graph:
//
//   * SCC decomposition (iterative Tarjan) with a topologically ordered
//     condensation — the unit of the width analysis (width.h) and of the
//     per-SCC report `rapar_cli dlanalyze` prints;
//   * backward reachability from the query predicate — the cone of
//     predicates that can contribute to deriving the query; rules outside
//     it are dead (optimize.h drops them, diagnostics flag them RA020);
//   * productivity — the least set of predicates that can hold at least
//     one tuple (facts, or a rule whose body predicates are all
//     productive, ignoring native constraints). A rule with an
//     unproductive body atom can never fire (RA021). Productivity is an
//     over-approximation (natives may still reject every binding), so
//     *un*productivity is definite and pruning on it is sound.
//
// The makeP programs (§4.1) are the motivating instance: every etp/dtp
// use carries a constant control location, so the graph mirrors the
// system's control structure and the reachable cone of `unsafe()` is
// usually a small fraction of the emitted rules.
#ifndef RAPAR_DLOPT_PRED_GRAPH_H_
#define RAPAR_DLOPT_PRED_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace rapar::dlopt {

struct PredGraph {
  std::size_t num_preds = 0;
  // Adjacency, deduplicated: deps[p] = body predicates of p's rules.
  std::vector<std::vector<dl::PredId>> deps;
  // Reverse adjacency: rdeps[q] = head predicates whose rules use q.
  std::vector<std::vector<dl::PredId>> rdeps;
  // Head of some non-fact rule.
  std::vector<bool> is_idb;
  // Head of some fact.
  std::vector<bool> has_fact;
  // Mentioned in some rule (head or body); unmentioned predicates are
  // declaration-only and excluded from the dumps.
  std::vector<bool> mentioned;

  // SCC decomposition. Components are numbered in topological order of the
  // condensation: if p depends on q and they are in different components,
  // scc_of[p] < scc_of[q] (dependencies point to higher ids).
  std::vector<int> scc_of;
  std::vector<std::vector<dl::PredId>> sccs;  // members per component
  // Component contains a cycle (size > 1, or a self-loop): the predicates
  // are mutually recursive.
  std::vector<bool> scc_recursive;

  static PredGraph Build(const dl::Program& prog);

  std::size_t num_sccs() const { return sccs.size(); }

  // Predicates backward-reachable from `query` (query included): the set
  // whose rules can take part in a derivation of the query atom.
  std::vector<bool> ReachableFrom(dl::PredId query) const;

  // Least fixpoint of "can hold a tuple": has a fact, or has a rule whose
  // body predicates are all productive. Ignores natives (sound
  // over-approximation).
  std::vector<bool> Productive(const dl::Program& prog) const;

  // Longest path (in #components) from `from`'s component through the
  // condensation, counting only components with at least one rule or fact.
  // This bounds the height of any derivation tree for a query on `from`
  // when no component is recursive (width.h uses it for the static cache
  // bound).
  std::size_t CondensationHeight(dl::PredId from) const;

  // Graphviz dump: one node per mentioned predicate, clustered by SCC,
  // EDB-only predicates boxed. `highlight` (optional, may be empty) marks
  // the backward-reachable cone of the query.
  std::string ToDot(const dl::Program& prog,
                    const std::vector<bool>& highlight = {}) const;
  // Text dump: "pred -> dep, dep, ..." per mentioned predicate plus an
  // SCC listing, stable order.
  std::string ToText(const dl::Program& prog) const;
};

}  // namespace rapar::dlopt

#endif  // RAPAR_DLOPT_PRED_GRAPH_H_
