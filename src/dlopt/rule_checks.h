// Rule-level static checks over datalog::Rule (rapar_dlopt).
//
//   * canonicalisation & duplicate detection — rules equal up to a
//     renaming of their (rule-local) variables are interchangeable; makeP
//     can emit duplicates when distinct CFA edges compile to the same
//     rule (e.g. two nop edges between the same locations);
//   * subsumption — r subsumes r' when some substitution θ maps head(r)
//     onto head(r') and θ(body(r)) ⊆ body(r') with θ(natives(r)) ⊆
//     natives(r'): every instance r' derives, r derives too, so r' is
//     redundant. Natives compare by (tag, inputs, output) and only when
//     the tag is non-empty — an empty tag is an unknown function and
//     defeats both checks (conservative);
//   * range restriction — every head variable must be bound by a body
//     atom or a native output, and every native input must be bound by
//     the body or an *earlier* native's output (the engine's evaluation
//     order). Violations make the engine assert; the validator reports
//     them statically (diagnostic RA025).
#ifndef RAPAR_DLOPT_RULE_CHECKS_H_
#define RAPAR_DLOPT_RULE_CHECKS_H_

#include <string>
#include <vector>

#include "datalog/ast.h"

namespace rapar::dlopt {

// A printable canonical form: variables renumbered in first-occurrence
// order (head, then body, then natives). Two rules with equal keys are
// duplicates — provided every native carries a non-empty tag; a rule with
// an untagged native gets a unique key and never collides.
std::string CanonicalRuleKey(const dl::Rule& rule);

// True if `general` subsumes `specific` (see above). Reflexive on
// fully-tagged rules; conservative (may return false for genuinely
// subsumed pairs — the matcher does not search all body multisets beyond
// a small backtracking budget).
bool Subsumes(const dl::Rule& general, const dl::Rule& specific);

struct RangeRestrictionViolation {
  std::size_t rule_index = 0;
  // Human-readable cause ("head variable X3 is unbound", "input of native
  // 'leq' is unbound").
  std::string detail;
};

// Validates every rule of `prog`; returns all violations (empty = safe to
// evaluate).
std::vector<RangeRestrictionViolation> ValidateRangeRestriction(
    const dl::Program& prog);

}  // namespace rapar::dlopt

#endif  // RAPAR_DLOPT_RULE_CHECKS_H_
