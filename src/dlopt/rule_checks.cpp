#include "dlopt/rule_checks.h"

#include <cstdint>
#include <optional>

#include "common/strings.h"

namespace rapar::dlopt {

namespace {

std::size_t NumVars(const dl::Rule& rule) {
  std::size_t mx = 0;
  auto scan = [&](const dl::Term& t) {
    if (t.kind == dl::Term::Kind::kVar && t.val + 1 > mx) mx = t.val + 1;
  };
  for (const dl::Term& t : rule.head.args) scan(t);
  for (const dl::Atom& a : rule.body) {
    for (const dl::Term& t : a.args) scan(t);
  }
  for (const dl::Native& n : rule.natives) {
    for (const dl::Term& t : n.inputs) scan(t);
    if (n.output.has_value() && *n.output + 1 > mx) mx = *n.output + 1;
  }
  return mx;
}

}  // namespace

std::string CanonicalRuleKey(const dl::Rule& rule) {
  std::vector<std::uint32_t> renumber(NumVars(rule), UINT32_MAX);
  std::uint32_t next = 0;
  auto term = [&](const dl::Term& t) {
    if (t.kind == dl::Term::Kind::kConst) return StrCat("c", t.val);
    if (renumber[t.val] == UINT32_MAX) renumber[t.val] = next++;
    return StrCat("v", renumber[t.val]);
  };
  auto atom = [&](const dl::Atom& a) {
    std::string out = StrCat("p", a.pred, "(");
    for (const dl::Term& t : a.args) out += term(t) + ",";
    return out + ")";
  };
  std::string key = "H" + atom(rule.head) + "|B";
  for (const dl::Atom& a : rule.body) key += atom(a) + ";";
  key += "|N";
  for (const dl::Native& n : rule.natives) {
    if (n.tag.empty()) {
      // Unknown function: a key that collides with nothing (the native's
      // own address is unique per rule instance).
      key += StrCat("?", reinterpret_cast<std::uintptr_t>(&n), ";");
      continue;
    }
    key += StrCat("[", n.tag, "](");
    for (const dl::Term& t : n.inputs) key += term(t) + ",";
    key += ")";
    if (n.output.has_value()) {
      const dl::Term out = dl::V(*n.output);
      key += "->" + term(out);
    }
    key += ";";
  }
  return key;
}

namespace {

// Substitution from `general`'s variables to terms of `specific`.
class Subst {
 public:
  explicit Subst(std::size_t num_vars) : map_(num_vars) {}

  bool MatchTerm(const dl::Term& g, const dl::Term& s) {
    if (g.kind == dl::Term::Kind::kConst) {
      return s.kind == dl::Term::Kind::kConst && s.val == g.val;
    }
    if (map_[g.val].has_value()) return *map_[g.val] == s;
    map_[g.val] = s;
    trail_.push_back(g.val);
    return true;
  }

  bool MatchAtom(const dl::Atom& g, const dl::Atom& s) {
    if (g.pred != s.pred || g.args.size() != s.args.size()) return false;
    for (std::size_t i = 0; i < g.args.size(); ++i) {
      if (!MatchTerm(g.args[i], s.args[i])) return false;
    }
    return true;
  }

  std::size_t Mark() const { return trail_.size(); }
  void Undo(std::size_t mark) {
    while (trail_.size() > mark) {
      map_[trail_.back()] = std::nullopt;
      trail_.pop_back();
    }
  }

 private:
  std::vector<std::optional<dl::Term>> map_;
  std::vector<dl::VarSym> trail_;
};

bool MatchNative(const dl::Native& g, const dl::Native& s, Subst& subst) {
  if (g.tag.empty() || g.tag != s.tag) return false;
  if (g.inputs.size() != s.inputs.size()) return false;
  if (g.output.has_value() != s.output.has_value()) return false;
  for (std::size_t i = 0; i < g.inputs.size(); ++i) {
    if (!subst.MatchTerm(g.inputs[i], s.inputs[i])) return false;
  }
  if (g.output.has_value() &&
      !subst.MatchTerm(dl::V(*g.output), dl::V(*s.output))) {
    return false;
  }
  return true;
}

struct SubsumeSearch {
  const dl::Rule& general;
  const dl::Rule& specific;
  Subst subst;
  int budget = 10'000;

  SubsumeSearch(const dl::Rule& g, const dl::Rule& s)
      : general(g), specific(s), subst(NumVars(g)) {}

  bool Run() {
    if (!subst.MatchAtom(general.head, specific.head)) return false;
    return Body(0);
  }

  // θ(body(general)) ⊆ body(specific), as sets: each general atom maps to
  // *some* specific atom (reuse allowed).
  bool Body(std::size_t at) {
    if (at == general.body.size()) return Natives(0);
    if (--budget < 0) return false;
    for (const dl::Atom& cand : specific.body) {
      const std::size_t mark = subst.Mark();
      if (subst.MatchAtom(general.body[at], cand) && Body(at + 1)) {
        return true;
      }
      subst.Undo(mark);
    }
    return false;
  }

  bool Natives(std::size_t at) {
    if (at == general.natives.size()) return true;
    if (--budget < 0) return false;
    for (const dl::Native& cand : specific.natives) {
      const std::size_t mark = subst.Mark();
      if (MatchNative(general.natives[at], cand, subst) &&
          Natives(at + 1)) {
        return true;
      }
      subst.Undo(mark);
    }
    return false;
  }
};

}  // namespace

bool Subsumes(const dl::Rule& general, const dl::Rule& specific) {
  // A rule with an unknown (untagged) native cannot be proved harmless in
  // either role.
  for (const dl::Native& n : general.natives) {
    if (n.tag.empty()) return false;
  }
  if (general.body.size() > specific.body.size()) return false;
  if (general.natives.size() > specific.natives.size()) return false;
  SubsumeSearch search(general, specific);
  return search.Run();
}

std::vector<RangeRestrictionViolation> ValidateRangeRestriction(
    const dl::Program& prog) {
  std::vector<RangeRestrictionViolation> out;
  for (std::size_t ri = 0; ri < prog.rules().size(); ++ri) {
    const dl::Rule& rule = prog.rules()[ri];
    std::vector<bool> bound(NumVars(rule), false);
    for (const dl::Atom& a : rule.body) {
      for (const dl::Term& t : a.args) {
        if (t.kind == dl::Term::Kind::kVar) bound[t.val] = true;
      }
    }
    for (const dl::Native& n : rule.natives) {
      for (const dl::Term& t : n.inputs) {
        if (t.kind == dl::Term::Kind::kVar && !bound[t.val]) {
          out.push_back({ri, StrCat("input X", t.val, " of native '",
                                    n.name,
                                    "' is not bound by the body or an "
                                    "earlier native")});
        }
      }
      if (n.output.has_value()) bound[*n.output] = true;
    }
    for (const dl::Term& t : rule.head.args) {
      if (t.kind == dl::Term::Kind::kVar && !bound[t.val]) {
        out.push_back(
            {ri, StrCat("head variable X", t.val,
                        " is not bound by the body or a native output")});
      }
    }
  }
  return out;
}

}  // namespace rapar::dlopt
