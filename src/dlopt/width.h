// Static linearity / cache-width analysis (rapar_dlopt).
//
// Classifies each SCC of the predicate dependency graph by how many IDB
// atoms its rules join, which decides which solver applies to a query on
// that part of the program (§4):
//
//   kEdbOnly   — no deriving rules: fact lookups only;
//   kLinear    — every rule joins at most one IDB atom: the linear
//                Datalog fragment, query evaluation in PSPACE (Gottlob &
//                Papadimitriou; Program::IsLinear is the whole-program
//                version);
//   kCache     — at most two IDB atoms per body: the Cache Datalog shape
//                makeP emits (thread predicate ⋈ message predicate); the
//                ⊢_k bounded-cache solver (datalog/cache.h) and, when
//                every body has ≤ 3 atoms, the Lemma 4.2 linearisation
//                (datalog/cache_to_linear.h) apply;
//   kWide      — some rule joins ≥ 3 IDB atoms: outside the paper's
//                fragment, only standard evaluation applies.
//
// The analysis also derives a static cache bound: when no SCC reachable
// from the query is recursive, every derivation tree for the query has
// height at most the condensation height H, and a depth-first ⊢_k
// evaluation that caches one rule frame (≤ max-body-size atoms) per tree
// level plus the goal needs at most k = H·B + 1 cached atoms (B = the
// largest body). The bound is coarse but sound, and it is *static*:
// recursive programs get no static bound — there Lemma 4.4's dynamic
// O(Q0²) bound applies and datalog/cache.h's MinimalCacheSize probes it.
#ifndef RAPAR_DLOPT_WIDTH_H_
#define RAPAR_DLOPT_WIDTH_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "datalog/engine.h"
#include "dlopt/pred_graph.h"

namespace rapar::dlopt {

enum class WidthClass { kEdbOnly, kLinear, kCache, kWide };

const char* WidthClassName(WidthClass w);

struct SccWidth {
  // Index into PredGraph::sccs.
  std::size_t scc = 0;
  WidthClass cls = WidthClass::kEdbOnly;
  bool recursive = false;
  // Over the rules whose head lies in this SCC:
  std::size_t num_rules = 0;          // non-fact rules
  std::size_t num_facts = 0;
  std::size_t max_body_atoms = 0;     // all atoms
  std::size_t max_idb_body_atoms = 0; // atoms on IDB predicates
  // Lemma 4.2 requires every body to have at most 3 atoms.
  bool linear_transform_applicable = false;
};

struct WidthReport {
  std::vector<SccWidth> sccs;  // topological order, only non-empty SCCs
  // Whole-program classification (over rules reachable from the query
  // when one was given, else all rules).
  WidthClass program_cls = WidthClass::kEdbOnly;
  bool program_recursive = false;
  std::size_t max_body_atoms = 0;
  // Static ⊢_k bound (see file comment); unset when some reachable SCC is
  // recursive.
  std::optional<std::size_t> static_k_bound;

  // One row per SCC: members, class, widths, applicable solvers.
  std::string ToString(const dl::Program& prog,
                       const PredGraph& graph) const;
};

// Analyzes `prog` over its dependency graph. With `query` set, rules
// outside the query's backward-reachable cone are ignored (they do not
// constrain which solver the query needs).
WidthReport AnalyzeWidth(const dl::Program& prog, const PredGraph& graph,
                         std::optional<dl::PredId> query = std::nullopt);

// Join-planner hints for the evaluation engine, from the same
// linearity/recursion classification the width report is built on:
// EDB predicates (static extensions) rank 0, derived predicates in a
// non-recursive SCC rank 1 (they stabilise once their stratum saturates),
// mutually recursive predicates rank 2. The engine's cheapest-first body
// ordering uses the rank as a growth tie-break (engine.h, JoinHints).
dl::JoinHints MakeJoinHints(const PredGraph& graph);

}  // namespace rapar::dlopt

#endif  // RAPAR_DLOPT_WIDTH_H_
