#include "tmai/relational.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "tmai/fixpoint.h"
#include "tmai/tmai.h"

namespace rapar::tmai {

PairSet PairSet::Top() {
  PairSet s;
  s.top_ = true;
  return s;
}

PairSet PairSet::Of(VarVal p) {
  PairSet s;
  s.pairs_.push_back(p);
  return s;
}

bool PairSet::Contains(VarVal p) const {
  if (top_) return true;
  return std::binary_search(pairs_.begin(), pairs_.end(), p);
}

void PairSet::Insert(VarVal p) {
  if (top_) return;
  auto it = std::lower_bound(pairs_.begin(), pairs_.end(), p);
  if (it == pairs_.end() || *it != p) pairs_.insert(it, p);
}

bool PairSet::UnionWith(const PairSet& o) {
  if (top_) return false;
  if (o.top_) {
    top_ = true;
    pairs_.clear();
    return true;
  }
  const std::size_t before = pairs_.size();
  std::vector<VarVal> merged;
  merged.reserve(before + o.pairs_.size());
  std::set_union(pairs_.begin(), pairs_.end(), o.pairs_.begin(),
                 o.pairs_.end(), std::back_inserter(merged));
  pairs_ = std::move(merged);
  return pairs_.size() != before;
}

bool PairSet::IntersectWith(const PairSet& o) {
  if (o.top_) return false;
  if (top_) {
    top_ = false;
    pairs_ = o.pairs_;
    return true;
  }
  const std::size_t before = pairs_.size();
  std::vector<VarVal> meet;
  std::set_intersection(pairs_.begin(), pairs_.end(), o.pairs_.begin(),
                        o.pairs_.end(), std::back_inserter(meet));
  pairs_ = std::move(meet);
  return pairs_.size() != before;
}

bool PairSet::SubsetOf(const PairSet& o) const {
  if (o.top_) return true;
  if (top_) return false;
  return std::includes(o.pairs_.begin(), o.pairs_.end(), pairs_.begin(),
                       pairs_.end());
}

void PairSet::Widen(int limit) {
  if (top_ || pairs_.size() > static_cast<std::size_t>(limit)) {
    // Must-polarity: dropping pairs loses information, which is the
    // sound direction.
    top_ = false;
    pairs_.clear();
  }
}

bool PairSet::operator==(const PairSet& o) const {
  return top_ == o.top_ && pairs_ == o.pairs_;
}

std::string PairSet::ToString() const {
  if (top_) return "top";
  std::string out = "{";
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    if (i > 0) out += ",";
    out += StrCat("(", pairs_[i].var, ",", pairs_[i].val, ")");
  }
  out += "}";
  return out;
}

void InterferenceTables::Init(std::size_t num_threads, std::size_t num_vars,
                              std::size_t dom,
                              const std::vector<std::size_t>& edges_per_thread) {
  store_vals.assign(num_threads, std::vector<ValueSet>(num_vars));
  acq.assign(num_vars, std::vector<std::vector<ValueSet>>(
                           dom, std::vector<ValueSet>(num_vars)));
  present.assign(num_vars, std::vector<char>(dom, 0));
  for (std::size_t x = 0; x < num_vars; ++x) present[x][0] = 1;
  edge_store.assign(num_threads, {});
  for (std::size_t t = 0; t < num_threads; ++t) {
    edge_store[t].assign(edges_per_thread[t], ValueSet());
  }
}

void MustTables::Init(std::size_t num_vars, std::size_t dom) {
  // Entries start at top — the vacuous intersection over zero store
  // events — and shrink as events contribute. The init message (val 0)
  // has an empty causal past and no consumptions, pinned here.
  obs.assign(num_vars, std::vector<PairSet>(dom, PairSet::Top()));
  cons.assign(num_vars, std::vector<PairSet>(dom, PairSet::Top()));
  for (std::size_t x = 0; x < num_vars; ++x) {
    obs[x][0] = PairSet();
    cons[x][0] = PairSet();
  }
}

namespace internal {

RelationalContext BuildRelationalContext(const TmaiSystem& sys,
                                         const InterferenceTables& just,
                                         const MustTables& must) {
  RelationalContext rel;
  rel.just = &just;
  rel.must = &must;

  const std::size_t T = sys.threads.size();
  rel.reach.resize(T);
  std::vector<char> unbounded(T, 0);
  for (std::size_t t = 0; t < T; ++t) {
    const Cfa& cfa = *sys.threads[t].cfa;
    const std::size_t n = cfa.num_nodes();
    std::vector<char>& reach = rel.reach[t];
    reach.assign(n * n, 0);
    for (std::size_t a = 0; a < n; ++a) {
      // Reflexive DFS from a.
      std::vector<std::size_t> stack{a};
      reach[a * n + a] = 1;
      while (!stack.empty()) {
        const std::size_t b = stack.back();
        stack.pop_back();
        for (EdgeId e : cfa.OutEdges(NodeId(b))) {
          const std::size_t to = cfa.edges()[e.index()].to.index();
          if (!reach[a * n + to]) {
            reach[a * n + to] = 1;
            stack.push_back(to);
          }
        }
      }
    }
    // A replicated thread has unboundedly many instances; a cyclic CFA
    // revisits its store edges. Either way one store edge can emit the
    // same message more than once.
    unbounded[t] = sys.threads[t].replicated || !cfa.IsAcyclic();
  }

  const std::size_t D = static_cast<std::size_t>(sys.dom);
  std::vector<std::vector<int>> count(sys.num_vars, std::vector<int>(D, 0));
  for (std::size_t x = 0; x < sys.num_vars; ++x) {
    count[x][0] = 1;  // the per-variable init dis message
  }
  for (std::size_t t = 0; t < T; ++t) {
    const Cfa& cfa = *sys.threads[t].cfa;
    const int mult = unbounded[t] ? 2 : 1;
    for (std::size_t e = 0; e < cfa.edges().size(); ++e) {
      const CfaEdge& edge = cfa.edges()[e];
      if (!edge.instr.IsStoreLike()) continue;
      const std::size_t y = edge.instr.var.index();
      for (Value w : just.edge_store[t][e].Enumerate(sys.dom)) {
        if (w >= 0 && static_cast<std::size_t>(w) < D) count[y][w] += mult;
      }
    }
  }
  rel.linear.assign(sys.num_vars, std::vector<char>(D, 0));
  for (std::size_t y = 0; y < sys.num_vars; ++y) {
    for (std::size_t w = 0; w < D; ++w) {
      rel.linear[y][w] = count[y][w] <= 1;
    }
  }
  return rel;
}

TmaiResult RunTmaiRelational(const TmaiSystem& sys, const TmaiGoal& goal,
                             const TmaiOptions& opts) {
  TmaiResult result;
  result.domain_used = Domain::kRelational;

  // Round 0: the tracking fixpoint — obs/cons and the must tables are
  // computed, but nothing is pruned, so the round is a sound
  // over-approximation on its own.
  FixpointRun prev = RunFixpoint(sys, opts, /*track_pairs=*/true, nullptr);
  result.iterations = prev.iterations;
  result.max_disjuncts_seen = prev.max_disjuncts_seen;
  if (!prev.converged) return result;  // kUnknown
  FinishConverged(sys, goal, opts, prev, nullptr, Domain::kRelational,
                  &result);
  if (result.safe) return result;

  // Strengthening rounds: re-run the full fixpoint with R1/R2 reading
  // the *previous* round's frozen converged tables. Pruning against a
  // converged over-approximation is sound, so every round's verdict
  // stands on its own; a *certificate*, however, is re-validated by
  // certcheck against its own embedded tables, so it is only emitted
  // from a self-stable round (tables identical to the justification it
  // was pruned with — then the checker replays exactly this round).
  TmaiResult safe_result;
  bool have_safe = false;
  for (int round = 1; round <= opts.max_strengthen_rounds; ++round) {
    RelationalContext rel =
        BuildRelationalContext(sys, prev.tables, prev.must);
    FixpointRun cur = RunFixpoint(sys, opts, /*track_pairs=*/true, &rel);
    result.strengthen_rounds = round;
    result.iterations += cur.iterations;
    result.max_disjuncts_seen =
        std::max(result.max_disjuncts_seen, cur.max_disjuncts_seen);
    if (!cur.converged) break;  // report the previous converged round
    result.pruned_reads = cur.pruned_reads;
    const bool stable = cur.tables == prev.tables && cur.must == prev.must;
    TmaiOptions round_opts = opts;
    round_opts.emit_certificate = opts.emit_certificate && stable;
    FinishConverged(sys, goal, round_opts, cur, &rel, Domain::kRelational,
                    &result);
    if (result.safe && stable) return result;
    if (result.safe && !have_safe) {
      // Sound verdict without a self-stable certificate (yet); keep
      // strengthening in the hope a later round stabilizes.
      safe_result = result;
      have_safe = true;
    }
    prev = std::move(cur);
    if (stable) break;  // a fixpoint of the strengthening loop itself
  }
  if (have_safe) {
    safe_result.iterations = result.iterations;
    safe_result.strengthen_rounds = result.strengthen_rounds;
    safe_result.max_disjuncts_seen = result.max_disjuncts_seen;
    return safe_result;
  }
  return result;
}

}  // namespace internal
}  // namespace rapar::tmai
