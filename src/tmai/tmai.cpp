#include "tmai/tmai.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "analysis/dataflow.h"
#include "tmai/certcheck.h"
#include "tmai/fixpoint.h"

namespace rapar::tmai {
namespace internal {
namespace {

// The worklist state attached to each CFA node.
struct NodeState {
  std::vector<AbsState> djs;
  int joins = 0;
};

std::size_t EdgeIndex(const TransferCtx& c, const CfaEdge& edge) {
  // Transfer callbacks receive the edge by reference into the Cfa's
  // edge vector, so the index is recoverable by address.
  return static_cast<std::size_t>(&edge - c.cfa->edges().data());
}

// Values a load of x may return: the view filtered by message presence.
std::vector<Value> Readable(const TransferCtx& c, const AbsState& d,
                            VarId x) {
  std::vector<Value> out;
  for (Value v : d.view[x.index()].Enumerate(c.sys->dom)) {
    if (c.tables->present[x.index()][v]) out.push_back(v);
  }
  return out;
}

// Joins the writer's view after reading message (x,v): intersect with
// the acquire snapshot. The init message (v == 0) constrains nothing.
void AcquireInto(const TransferCtx& c, AbsState& d, VarId x, Value v) {
  if (v == 0) return;
  const VarSets& snap = c.tables->acq[x.index()][v];
  for (std::size_t y = 0; y < d.view.size(); ++y) {
    d.view[y].IntersectWith(snap[y], c.sys->dom);
  }
}

// Must-side effect of reading message (x,v): the pair itself plus the
// producer's must-observations (OBS) enter the reader's causal past.
// Pairs with value 0 carry no information — the init message always
// exists and has an empty past.
void TrackRead(const TransferCtx& c, AbsState& d, VarId x, Value v) {
  if (!c.track_pairs || v == 0) return;
  d.obs.Insert(VarVal{static_cast<std::uint32_t>(x.index()), v});
  const PairSet& prod = c.must->obs[x.index()][v];
  // A top entry means "no store event recorded yet" (vacuous
  // intersection), not "everything observed" — using it would be
  // unsound, so it contributes nothing.
  if (!prod.top()) d.obs.UnionWith(prod);
}

// The relational pruning rules R1/R2 (relational.h): can the case-split
// on reading message (x,v) at the source node of `edge` be dropped for
// the reading disjunct `d`?
bool PrunedRead(const TransferCtx& c, const CfaEdge& edge, const AbsState& d,
                VarId x, Value v) {
  if (c.rel == nullptr) return false;
  const RelationalContext& rel = *c.rel;
  const std::size_t xi = x.index();
  const std::size_t n = edge.from.index();
  const std::size_t num_nodes = c.cfa->num_nodes();
  const std::vector<char>& reach = rel.reach[c.t];
  // True when no (y,w)-storing edge of this thread can reach n — a
  // single instance sitting at n has certainly not yet stored (y,w).
  auto no_own_store_before = [&](std::uint32_t y, Value w) {
    const std::vector<ValueSet>& own = rel.just->edge_store[c.t];
    for (std::size_t e2 = 0; e2 < c.cfa->edges().size(); ++e2) {
      const CfaEdge& cand = c.cfa->edges()[e2];
      if (!cand.instr.IsStoreLike() || cand.instr.var.index() != y) continue;
      if (!own[e2].Contains(w)) continue;
      if (reach[cand.to.index() * num_nodes + n]) return false;
    }
    return true;
  };
  // R1 — causal past. Only a single-instance thread can conclude "I am
  // the sole producer and have not produced yet".
  if (!c.sys->threads[c.t].replicated) {
    auto r1_excludes = [&](std::uint32_t y, Value w) {
      if (w == 0) return false;  // the init message always exists
      for (std::size_t u = 0; u < c.sys->threads.size(); ++u) {
        if (u == c.t) continue;
        if (rel.just->store_vals[u][y].Contains(w)) return false;
      }
      return no_own_store_before(y, w);
    };
    if (v != 0 && r1_excludes(static_cast<std::uint32_t>(xi), v)) return true;
    const PairSet& obs = rel.must->obs[xi][v];
    if (!obs.top()) {
      for (const VarVal& p : obs.pairs()) {
        if (r1_excludes(p.var, p.val)) return true;
      }
    }
  }
  // R2 — consumption linearity. Every producer of (x,v) consumed
  // (y,w); the pair is linear, so there is at most one consumption
  // ever, and this very instance performed it — so the producer was
  // this instance, which cannot have stored (x,v) before reaching n.
  // Valid for replicated threads too: other copies are other instances.
  const PairSet& consumed = rel.must->cons[xi][v];
  if (!consumed.top()) {
    for (const VarVal& p : consumed.pairs()) {
      if (!rel.linear[p.var][p.val]) continue;
      if (!d.cons.Contains(p)) continue;
      if (no_own_store_before(static_cast<std::uint32_t>(xi), v)) return true;
    }
  }
  return false;
}

// Publishes a store of the value set S to x from abstract state `d`
// (view and must-sets taken at the moment of the store) into the
// contribution tables.
void RecordStore(const TransferCtx& c, const CfaEdge& edge, const AbsState& d,
                 VarId x, const ValueSet& S) {
  const std::size_t eidx = EdgeIndex(c, edge);
  if (c.report_edge_store != nullptr) {
    (*c.report_edge_store)[eidx].UnionWith(S);
  }
  if (c.contrib == nullptr) return;
  bool& changed = *c.changed;
  changed |= c.contrib->store_vals[c.t][x.index()].UnionWith(S);
  changed |= c.contrib->edge_store[c.t][eidx].UnionWith(S);
  const VarSets& fut = c.future_own[edge.to.index()];
  for (Value v : S.Enumerate(c.sys->dom)) {
    char& present = c.contrib->present[x.index()][v];
    if (!present) {
      present = 1;
      changed = true;
    }
    if (v == 0) continue;  // init snapshot is already top
    VarSets& snap = c.contrib->acq[x.index()][v];
    for (std::size_t y = 0; y < snap.size(); ++y) {
      // What a reader of (x,v) may subsequently read from y: the
      // writer's view of y now, the writer's own later stores, and
      // anything other threads store at any time.
      ValueSet add =
          (y == x.index()) ? ValueSet::Of(v) : d.view[y];
      add.UnionWith(fut[y]);
      add.UnionWith(c.all_other[y]);
      changed |= snap[y].UnionWith(add);
    }
    if (c.track_pairs) {
      // Must contribution of this store event: the producer's causal
      // past is its obs plus the published pair itself; its own
      // consumptions are d.cons. OBS/CONS(x,v) must be covered by
      // *every* event, so contributions intersect.
      PairSet ev = d.obs;
      ev.Insert(VarVal{static_cast<std::uint32_t>(x.index()), v});
      changed |= c.must_contrib->obs[x.index()][v].IntersectWith(ev);
      changed |= c.must_contrib->cons[x.index()][v].IntersectWith(d.cons);
    }
  }
}

void ReportRead(const TransferCtx& c, const CfaEdge& edge, Value v) {
  if (c.report_edge_read != nullptr) {
    (*c.report_edge_read)[EdgeIndex(c, edge)].Insert(v);
  }
}

// Post-fixpoint classification of one thread's nodes and edges for the
// verdict and the lint diagnostics.
ThreadReport ClassifyThread(TransferCtx c,
                            const std::vector<std::vector<AbsState>>& states) {
  ThreadReport r;
  const Cfa& cfa = *c.cfa;
  r.node_reachable.assign(cfa.num_nodes(), 0);
  r.edge_enabled.assign(cfa.edges().size(), 0);
  r.guard_unsat.assign(cfa.edges().size(), 0);
  r.edge_store_vals.assign(cfa.edges().size(), ValueSet());
  r.edge_read_vals.assign(cfa.edges().size(), ValueSet());
  for (std::size_t n = 0; n < cfa.num_nodes(); ++n) {
    r.node_reachable[n] = !states[n].empty();
  }
  c.contrib = nullptr;
  c.must_contrib = nullptr;
  c.changed = nullptr;
  c.pruned_reads = nullptr;
  c.report_edge_store = &r.edge_store_vals;
  c.report_edge_read = &r.edge_read_vals;
  for (std::size_t e = 0; e < cfa.edges().size(); ++e) {
    const CfaEdge& edge = cfa.edges()[e];
    const std::vector<AbsState>& in = states[edge.from.index()];
    const bool src_reachable = !in.empty();
    if (edge.instr.kind == Instr::Kind::kAssertFail) {
      r.edge_enabled[e] = src_reachable;
      r.assert_reachable |= src_reachable;
      continue;
    }
    std::vector<AbsState> out;
    for (const AbsState& d : in) ApplyEdge(c, edge, d, out);
    r.edge_enabled[e] = !out.empty();
    if (edge.instr.kind == Instr::Kind::kAssume && src_reachable &&
        out.empty()) {
      r.guard_unsat[e] = 1;
    }
  }
  r.interference_empty = true;
  for (const ValueSet& s : c.all_other) {
    if (!s.empty()) r.interference_empty = false;
  }
  return r;
}

// Disjunctive join with subsumption, a disjunct cap, and widening after
// `widening_delay` joins at the same node.
bool JoinNodeState(const TransferCtx& c, NodeState& into, NodeState& from,
                   std::size_t* max_disjuncts_seen) {
  bool changed = false;
  for (AbsState& d : from.djs) {
    bool subsumed = false;
    for (const AbsState& e : into.djs) {
      if (d.SubsumedBy(e)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    into.djs.push_back(std::move(d));
    changed = true;
  }
  if (!changed) return false;
  into.joins++;
  *max_disjuncts_seen = std::max(*max_disjuncts_seen, into.djs.size());
  const bool widen = into.joins > c.opts->widening_delay;
  if (widen ||
      into.djs.size() > static_cast<std::size_t>(c.opts->max_disjuncts)) {
    AbsState merged = std::move(into.djs.front());
    for (std::size_t i = 1; i < into.djs.size(); ++i) {
      merged.MergeWith(into.djs[i]);
    }
    if (widen) {
      for (ValueSet& s : merged.regs) s.Widen(c.opts->value_set_limit);
      for (ValueSet& s : merged.view) s.Widen(c.opts->value_set_limit);
      merged.obs.Widen(c.opts->value_set_limit);
      merged.cons.Widen(c.opts->value_set_limit);
    }
    into.djs.clear();
    into.djs.push_back(std::move(merged));
  }
  return true;
}

// One thread's forward fixpoint against the current tables.
std::vector<NodeState> AnalyzeThread(const TransferCtx& c,
                                     std::size_t* max_disjuncts_seen) {
  NodeState entry;
  entry.djs.push_back(EntryState(c));
  return SolveForward(
      *c.cfa, std::move(entry), NodeState{},
      [&](const CfaEdge& edge, const NodeState& in) {
        NodeState out;
        for (const AbsState& d : in.djs) ApplyEdge(c, edge, d, out.djs);
        return out;
      },
      [&](NodeState& into, NodeState& from) {
        return JoinNodeState(c, into, from, max_disjuncts_seen);
      });
}

}  // namespace

VarSets ComputeAllOther(const TmaiSystem& sys,
                        const InterferenceTables& tables, std::size_t t) {
  VarSets out(sys.num_vars);
  for (std::size_t u = 0; u < sys.threads.size(); ++u) {
    if (u == t && !sys.threads[u].replicated) continue;
    for (std::size_t x = 0; x < sys.num_vars; ++x) {
      out[x].UnionWith(tables.store_vals[u][x]);
    }
  }
  return out;
}

std::vector<VarSets> ComputeFutureOwn(const TransferCtx& c) {
  const std::size_t num_vars = c.sys->num_vars;
  return SolveBackward(
      *c.cfa, VarSets(num_vars),
      [&](const CfaEdge& edge, const VarSets& at_target) {
        VarSets out = at_target;
        if (edge.instr.IsStoreLike()) {
          out[edge.instr.var.index()].UnionWith(
              c.tables->edge_store[c.t][EdgeIndex(c, edge)]);
        }
        return out;
      },
      [](VarSets& into, const VarSets& from) {
        bool changed = false;
        for (std::size_t x = 0; x < into.size(); ++x) {
          changed |= into[x].UnionWith(from[x]);
        }
        return changed;
      });
}

AbsState EntryState(const TransferCtx& c) {
  AbsState s;
  s.regs.assign(c.cfa->program().regs().size(), ValueSet::Of(kInitValue));
  s.view.resize(c.sys->num_vars);
  for (std::size_t x = 0; x < c.sys->num_vars; ++x) {
    s.view[x] = ValueSet::Of(kInitValue);  // the init message
    s.view[x].UnionWith(c.all_other[x]);   // anything others may store
  }
  return s;
}

void ApplyEdge(const TransferCtx& c, const CfaEdge& edge, const AbsState& d,
               std::vector<AbsState>& out) {
  const Instr& instr = edge.instr;
  const Value dom = c.sys->dom;
  const int limit = c.opts->value_set_limit;
  switch (instr.kind) {
    case Instr::Kind::kNop:
      out.push_back(d);
      break;
    case Instr::Kind::kAssume: {
      AbsState nd = d;
      if (RefineAssume(*instr.expr, nd.regs, dom, limit)) {
        out.push_back(std::move(nd));
      }
      break;
    }
    case Instr::Kind::kAssign: {
      ValueSet v = EvalExprSet(*instr.expr, d.regs, dom, limit);
      if (v.empty()) break;
      AbsState nd = d;
      nd.regs[instr.reg.index()] = std::move(v);
      out.push_back(std::move(nd));
      break;
    }
    case Instr::Kind::kLoad: {
      // Case-split on the loaded value so the acquire refinement stays
      // correlated with it.
      for (Value v : Readable(c, d, instr.var)) {
        if (PrunedRead(c, edge, d, instr.var, v)) {
          if (c.pruned_reads != nullptr) ++*c.pruned_reads;
          continue;
        }
        ReportRead(c, edge, v);
        AbsState nd = d;
        nd.regs[instr.reg.index()] = ValueSet::Of(v);
        AcquireInto(c, nd, instr.var, v);
        TrackRead(c, nd, instr.var, v);
        out.push_back(std::move(nd));
      }
      break;
    }
    case Instr::Kind::kStore: {
      const ValueSet& S = d.regs[instr.reg.index()];
      if (S.empty()) break;
      RecordStore(c, edge, d, instr.var, S);
      AbsState nd = d;
      // Own store becomes the view; later stores by others stay
      // readable.
      nd.view[instr.var.index()] = S;
      nd.view[instr.var.index()].UnionWith(c.all_other[instr.var.index()]);
      if (c.track_pairs) {
        // A singleton store is a must-observation of the published
        // pair (the producer's own past contains it).
        Value v = 0;
        if (S.IsSingleton(dom, &v) && v != 0) {
          nd.obs.Insert(VarVal{static_cast<std::uint32_t>(instr.var.index()),
                               v});
        }
      }
      out.push_back(std::move(nd));
      break;
    }
    case Instr::Kind::kCas: {
      // Blocking CAS: enabled only when a readable message matches the
      // expected register. Acquire-read the message, then release-store
      // the desired value.
      const ValueSet expected = d.regs[instr.reg.index()];
      for (Value e : Readable(c, d, instr.var)) {
        if (!expected.Contains(e)) continue;
        if (PrunedRead(c, edge, d, instr.var, e)) {
          if (c.pruned_reads != nullptr) ++*c.pruned_reads;
          continue;
        }
        ReportRead(c, edge, e);
        AbsState nd = d;
        nd.regs[instr.reg.index()] = ValueSet::Of(e);
        AcquireInto(c, nd, instr.var, e);
        TrackRead(c, nd, instr.var, e);
        if (c.track_pairs) {
          // Record the CAS read as a consumption. Whether it really
          // consumed a dis message (froze its gap) is certified later
          // by R2's linearity check against the frozen justification —
          // an env/replicated/cyclic producer makes the pair
          // non-linear, so a recorded-but-unreal consumption is never
          // acted upon.
          nd.cons.Insert(
              VarVal{static_cast<std::uint32_t>(instr.var.index()), e});
        }
        const ValueSet S = nd.regs[instr.reg2.index()];
        if (S.empty()) continue;
        RecordStore(c, edge, nd, instr.var, S);
        nd.view[instr.var.index()] = S;
        nd.view[instr.var.index()].UnionWith(
            c.all_other[instr.var.index()]);
        if (c.track_pairs) {
          Value v = 0;
          if (S.IsSingleton(dom, &v) && v != 0) {
            nd.obs.Insert(
                VarVal{static_cast<std::uint32_t>(instr.var.index()), v});
          }
        }
        out.push_back(std::move(nd));
      }
      break;
    }
    case Instr::Kind::kAssertFail:
      // Traversing the edge is the violation; it has no successor
      // state. Source reachability is what the verdict checks.
      break;
  }
}

FixpointRun RunFixpoint(const TmaiSystem& sys, const TmaiOptions& opts,
                        bool track_pairs, const RelationalContext* rel) {
  FixpointRun run;
  const std::size_t T = sys.threads.size();
  std::vector<std::size_t> edges_per_thread(T);
  for (std::size_t t = 0; t < T; ++t) {
    edges_per_thread[t] = sys.threads[t].cfa->edges().size();
  }
  run.tables.Init(T, sys.num_vars, static_cast<std::size_t>(sys.dom),
                  edges_per_thread);
  if (track_pairs) {
    run.must.Init(sys.num_vars, static_cast<std::size_t>(sys.dom));
  }

  std::vector<std::vector<NodeState>> states(T);
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    InterferenceTables next = run.tables;
    MustTables next_must = run.must;
    bool changed = false;
    std::size_t pruned = 0;
    for (std::size_t t = 0; t < T; ++t) {
      TransferCtx c;
      c.sys = &sys;
      c.opts = &opts;
      c.tables = &run.tables;
      c.must = track_pairs ? &run.must : nullptr;
      c.contrib = &next;
      c.must_contrib = track_pairs ? &next_must : nullptr;
      c.rel = rel;
      c.track_pairs = track_pairs;
      c.changed = &changed;
      c.pruned_reads = &pruned;
      c.t = t;
      c.cfa = sys.threads[t].cfa;
      c.all_other = ComputeAllOther(sys, run.tables, t);
      c.future_own = ComputeFutureOwn(c);
      states[t] = AnalyzeThread(c, &run.max_disjuncts_seen);
    }
    run.iterations = iter;
    run.pruned_reads = pruned;
    if (!changed) {
      run.converged = true;
      break;
    }
    run.tables = std::move(next);
    run.must = std::move(next_must);
  }

  run.states.assign(T, {});
  for (std::size_t t = 0; t < T; ++t) {
    run.states[t].resize(states[t].size());
    for (std::size_t n = 0; n < states[t].size(); ++n) {
      run.states[t][n] = std::move(states[t][n].djs);
    }
  }
  return run;
}

void FinishConverged(const TmaiSystem& sys, const TmaiGoal& goal,
                     const TmaiOptions& opts, const FixpointRun& run,
                     const RelationalContext* rel, Domain domain,
                     TmaiResult* result) {
  assert(run.converged);
  const std::size_t T = sys.threads.size();
  result->converged = true;
  result->domain_used = domain;
  result->assert_reachable = false;
  result->threads.clear();
  result->threads.reserve(T);
  const bool relational = domain == Domain::kRelational;
  for (std::size_t t = 0; t < T; ++t) {
    TransferCtx c;
    c.sys = &sys;
    c.opts = &opts;
    c.tables = &run.tables;
    c.must = relational ? &run.must : nullptr;
    c.rel = rel;
    c.track_pairs = relational;
    c.t = t;
    c.cfa = sys.threads[t].cfa;
    c.all_other = ComputeAllOther(sys, run.tables, t);
    c.future_own = ComputeFutureOwn(c);
    result->threads.push_back(ClassifyThread(std::move(c), run.states[t]));
    result->assert_reachable |= result->threads.back().assert_reachable;
  }

  if (goal.check_assert) {
    result->safe = !result->assert_reachable;
  } else {
    // MG query: is some message (var, val) ever in memory? val 0 is the
    // init message, trivially present.
    bool stored = goal.val == 0;
    for (std::size_t t = 0; t < T; ++t) {
      stored |= run.tables.store_vals[t][goal.var.index()].Contains(goal.val);
    }
    result->safe = !stored;
  }
  if (result->safe && opts.emit_certificate) {
    result->certificate = BuildCertificate(sys, goal, opts, run.states,
                                           run.tables, run.must, domain);
  }
}

}  // namespace internal

const char* DomainName(Domain d) {
  switch (d) {
    case Domain::kSmallSet:
      return "smallset";
    case Domain::kRelational:
      return "relational";
    case Domain::kAuto:
      return "auto";
  }
  return "smallset";
}

bool AbsState::SubsumedBy(const AbsState& o) const {
  for (std::size_t i = 0; i < regs.size(); ++i) {
    if (!regs[i].SubsetOf(o.regs[i])) return false;
  }
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (!view[i].SubsetOf(o.view[i])) return false;
  }
  // Must-sets: `this` is more precise when it knows *more* pairs, so
  // inclusion runs the other way (γ(this) ⊆ γ(o) needs o's knowledge
  // to be a subset of ours).
  return o.obs.SubsetOf(obs) && o.cons.SubsetOf(cons);
}

void AbsState::MergeWith(const AbsState& o) {
  for (std::size_t i = 0; i < regs.size(); ++i) regs[i].UnionWith(o.regs[i]);
  for (std::size_t i = 0; i < view.size(); ++i) view[i].UnionWith(o.view[i]);
  // Must-side join: only pairs both branches guarantee survive.
  obs.IntersectWith(o.obs);
  cons.IntersectWith(o.cons);
}

TmaiSystem TmaiSystem::FromSimpl(const SimplSystem& s) {
  TmaiSystem sys;
  sys.num_vars = s.num_vars;
  sys.dom = s.dom;
  if (s.env != nullptr) {
    sys.threads.push_back(TmaiThread{s.env, /*replicated=*/true});
  }
  // Collapse duplicate dis programs: n copies of one program equal a
  // single self-interfering (replicated) thread.
  const std::size_t first_dis = sys.threads.size();
  for (const Cfa* dis : s.dis) {
    bool found = false;
    for (std::size_t i = first_dis; i < sys.threads.size(); ++i) {
      if (sys.threads[i].cfa == dis) {
        sys.threads[i].replicated = true;
        found = true;
        break;
      }
    }
    if (!found) {
      sys.threads.push_back(TmaiThread{dis, /*replicated=*/false});
    }
  }
  return sys;
}

TmaiResult RunTmai(const TmaiSystem& sys, const TmaiGoal& goal,
                   const TmaiOptions& opts) {
  if (opts.domain == Domain::kRelational) {
    return internal::RunTmaiRelational(sys, goal, opts);
  }
  TmaiResult result;
  internal::FixpointRun run =
      internal::RunFixpoint(sys, opts, /*track_pairs=*/false, nullptr);
  result.iterations = run.iterations;
  result.max_disjuncts_seen = run.max_disjuncts_seen;
  if (run.converged) {
    internal::FinishConverged(sys, goal, opts, run, nullptr,
                              Domain::kSmallSet, &result);
  }
  if (opts.domain == Domain::kAuto && !result.safe) {
    // Retry with the relational domain only on small-set kUnknown —
    // the fast path above stays untouched.
    TmaiResult rel = internal::RunTmaiRelational(sys, goal, opts);
    if (rel.safe || !result.converged) return rel;
    // Keep the (converged) small-set reports for the lints, but
    // surface that the retry ran and what it pruned.
    result.strengthen_rounds = rel.strengthen_rounds;
    result.pruned_reads = rel.pruned_reads;
  }
  return result;
}

}  // namespace rapar::tmai
