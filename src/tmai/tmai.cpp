#include "tmai/tmai.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "analysis/dataflow.h"

namespace rapar::tmai {
namespace {

using VarSets = std::vector<ValueSet>;

// The interference summary shared between threads. All components grow
// monotonically across fixpoint rounds; since every set lives in the
// finite powerset of [0, dom) the iteration terminates.
struct Tables {
  // [thread][var]: values the thread may store to var (any copy).
  std::vector<VarSets> store_vals;
  // [var][val][var2]: the acquire snapshot ACQ(var,val) — see tmai.h.
  // Entry val == 0 is unused (the init message has the top snapshot).
  std::vector<std::vector<VarSets>> acq;
  // [var][val]: some message (var,val) may exist (val 0 always).
  std::vector<std::vector<char>> present;
  // [thread][edge]: values stored by that specific edge — feeds the
  // "writer's own later stores" component of next round's snapshots.
  std::vector<std::vector<ValueSet>> edge_store;
};

// Per-thread context for one fixpoint round.
struct Ctx {
  const TmaiSystem* sys = nullptr;
  const TmaiOptions* opts = nullptr;
  const Tables* tables = nullptr;  // read side (previous round)
  Tables* contrib = nullptr;       // write side (null in classify pass)
  bool* changed = nullptr;
  std::size_t t = 0;  // thread index
  const Cfa* cfa = nullptr;
  // [var]: stores by every other thread (incl. own copies if replicated).
  VarSets all_other;
  // [node][var]: values this thread may store at or after node
  // (previous round's edge stores, propagated backwards).
  std::vector<VarSets> future_own;
  // Classification pass only: per-edge store sets for the report.
  std::vector<ValueSet>* report_edge_store = nullptr;
};

// The worklist state attached to each CFA node.
struct NodeState {
  std::vector<AbsState> djs;
  int joins = 0;
};

std::size_t EdgeIndex(const Ctx& c, const CfaEdge& edge) {
  // Transfer callbacks receive the edge by reference into the Cfa's
  // edge vector, so the index is recoverable by address.
  return static_cast<std::size_t>(&edge - c.cfa->edges().data());
}

VarSets ComputeAllOther(const TmaiSystem& sys, const Tables& tables,
                        std::size_t t) {
  VarSets out(sys.num_vars);
  for (std::size_t u = 0; u < sys.threads.size(); ++u) {
    if (u == t && !sys.threads[u].replicated) continue;
    for (std::size_t x = 0; x < sys.num_vars; ++x) {
      out[x].UnionWith(tables.store_vals[u][x]);
    }
  }
  return out;
}

std::vector<VarSets> ComputeFutureOwn(const Ctx& c) {
  const std::size_t num_vars = c.sys->num_vars;
  return SolveBackward(
      *c.cfa, VarSets(num_vars),
      [&](const CfaEdge& edge, const VarSets& at_target) {
        VarSets out = at_target;
        if (edge.instr.IsStoreLike()) {
          out[edge.instr.var.index()].UnionWith(
              c.tables->edge_store[c.t][EdgeIndex(c, edge)]);
        }
        return out;
      },
      [](VarSets& into, const VarSets& from) {
        bool changed = false;
        for (std::size_t x = 0; x < into.size(); ++x) {
          changed |= into[x].UnionWith(from[x]);
        }
        return changed;
      });
}

AbsState EntryState(const Ctx& c) {
  AbsState s;
  s.regs.assign(c.cfa->program().regs().size(), ValueSet::Of(kInitValue));
  s.view.resize(c.sys->num_vars);
  for (std::size_t x = 0; x < c.sys->num_vars; ++x) {
    s.view[x] = ValueSet::Of(kInitValue);  // the init message
    s.view[x].UnionWith(c.all_other[x]);   // anything others may store
  }
  return s;
}

// Values a load of x may return: the view filtered by message presence.
std::vector<Value> Readable(const Ctx& c, const AbsState& d, VarId x) {
  std::vector<Value> out;
  for (Value v : d.view[x.index()].Enumerate(c.sys->dom)) {
    if (c.tables->present[x.index()][v]) out.push_back(v);
  }
  return out;
}

// Joins the writer's view after reading message (x,v): intersect with
// the acquire snapshot. The init message (v == 0) constrains nothing.
void AcquireInto(const Ctx& c, AbsState& d, VarId x, Value v) {
  if (v == 0) return;
  const VarSets& snap = c.tables->acq[x.index()][v];
  for (std::size_t y = 0; y < d.view.size(); ++y) {
    d.view[y].IntersectWith(snap[y], c.sys->dom);
  }
}

// Publishes a store of the value set S to x from abstract state `d`
// (view taken at the moment of the store) into the contribution tables.
void RecordStore(const Ctx& c, const CfaEdge& edge, const AbsState& d,
                 VarId x, const ValueSet& S) {
  const std::size_t eidx = EdgeIndex(c, edge);
  if (c.report_edge_store != nullptr) {
    (*c.report_edge_store)[eidx].UnionWith(S);
  }
  if (c.contrib == nullptr) return;
  bool& changed = *c.changed;
  changed |= c.contrib->store_vals[c.t][x.index()].UnionWith(S);
  changed |= c.contrib->edge_store[c.t][eidx].UnionWith(S);
  const VarSets& fut = c.future_own[edge.to.index()];
  for (Value v : S.Enumerate(c.sys->dom)) {
    char& present = c.contrib->present[x.index()][v];
    if (!present) {
      present = 1;
      changed = true;
    }
    if (v == 0) continue;  // init snapshot is already top
    VarSets& snap = c.contrib->acq[x.index()][v];
    for (std::size_t y = 0; y < snap.size(); ++y) {
      // What a reader of (x,v) may subsequently read from y: the
      // writer's view of y now, the writer's own later stores, and
      // anything other threads store at any time.
      ValueSet add =
          (y == x.index()) ? ValueSet::Of(v) : d.view[y];
      add.UnionWith(fut[y]);
      add.UnionWith(c.all_other[y]);
      changed |= snap[y].UnionWith(add);
    }
  }
}

void ApplyEdge(const Ctx& c, const CfaEdge& edge, const AbsState& d,
               std::vector<AbsState>& out) {
  const Instr& instr = edge.instr;
  const Value dom = c.sys->dom;
  const int limit = c.opts->value_set_limit;
  switch (instr.kind) {
    case Instr::Kind::kNop:
      out.push_back(d);
      break;
    case Instr::Kind::kAssume: {
      AbsState nd = d;
      if (RefineAssume(*instr.expr, nd.regs, dom, limit)) {
        out.push_back(std::move(nd));
      }
      break;
    }
    case Instr::Kind::kAssign: {
      ValueSet v = EvalExprSet(*instr.expr, d.regs, dom, limit);
      if (v.empty()) break;
      AbsState nd = d;
      nd.regs[instr.reg.index()] = std::move(v);
      out.push_back(std::move(nd));
      break;
    }
    case Instr::Kind::kLoad: {
      // Case-split on the loaded value so the acquire refinement stays
      // correlated with it.
      for (Value v : Readable(c, d, instr.var)) {
        AbsState nd = d;
        nd.regs[instr.reg.index()] = ValueSet::Of(v);
        AcquireInto(c, nd, instr.var, v);
        out.push_back(std::move(nd));
      }
      break;
    }
    case Instr::Kind::kStore: {
      const ValueSet& S = d.regs[instr.reg.index()];
      if (S.empty()) break;
      RecordStore(c, edge, d, instr.var, S);
      AbsState nd = d;
      // Own store becomes the view; later stores by others stay
      // readable.
      nd.view[instr.var.index()] = S;
      nd.view[instr.var.index()].UnionWith(c.all_other[instr.var.index()]);
      out.push_back(std::move(nd));
      break;
    }
    case Instr::Kind::kCas: {
      // Blocking CAS: enabled only when a readable message matches the
      // expected register. Acquire-read the message, then release-store
      // the desired value.
      const ValueSet expected = d.regs[instr.reg.index()];
      for (Value e : Readable(c, d, instr.var)) {
        if (!expected.Contains(e)) continue;
        AbsState nd = d;
        nd.regs[instr.reg.index()] = ValueSet::Of(e);
        AcquireInto(c, nd, instr.var, e);
        const ValueSet S = nd.regs[instr.reg2.index()];
        if (S.empty()) continue;
        RecordStore(c, edge, nd, instr.var, S);
        nd.view[instr.var.index()] = S;
        nd.view[instr.var.index()].UnionWith(
            c.all_other[instr.var.index()]);
        out.push_back(std::move(nd));
      }
      break;
    }
    case Instr::Kind::kAssertFail:
      // Traversing the edge is the violation; it has no successor
      // state. Source reachability is what the verdict checks.
      break;
  }
}

// Disjunctive join with subsumption, a disjunct cap, and widening after
// `widening_delay` joins at the same node.
bool JoinNodeState(const Ctx& c, NodeState& into, NodeState& from,
                   std::size_t* max_disjuncts_seen) {
  bool changed = false;
  for (AbsState& d : from.djs) {
    bool subsumed = false;
    for (const AbsState& e : into.djs) {
      if (d.SubsumedBy(e)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    into.djs.push_back(std::move(d));
    changed = true;
  }
  if (!changed) return false;
  into.joins++;
  *max_disjuncts_seen = std::max(*max_disjuncts_seen, into.djs.size());
  const bool widen = into.joins > c.opts->widening_delay;
  if (widen ||
      into.djs.size() > static_cast<std::size_t>(c.opts->max_disjuncts)) {
    AbsState merged = std::move(into.djs.front());
    for (std::size_t i = 1; i < into.djs.size(); ++i) {
      merged.MergeWith(into.djs[i]);
    }
    if (widen) {
      for (ValueSet& s : merged.regs) s.Widen(c.opts->value_set_limit);
      for (ValueSet& s : merged.view) s.Widen(c.opts->value_set_limit);
    }
    into.djs.clear();
    into.djs.push_back(std::move(merged));
  }
  return true;
}

// One thread's forward fixpoint against the current tables.
std::vector<NodeState> AnalyzeThread(const Ctx& c,
                                     std::size_t* max_disjuncts_seen) {
  NodeState entry;
  entry.djs.push_back(EntryState(c));
  return SolveForward(
      *c.cfa, std::move(entry), NodeState{},
      [&](const CfaEdge& edge, const NodeState& in) {
        NodeState out;
        for (const AbsState& d : in.djs) ApplyEdge(c, edge, d, out.djs);
        return out;
      },
      [&](NodeState& into, NodeState& from) {
        return JoinNodeState(c, into, from, max_disjuncts_seen);
      });
}

// Post-fixpoint classification of one thread's nodes and edges for the
// verdict and the lint diagnostics.
ThreadReport Classify(Ctx c, const std::vector<NodeState>& states) {
  ThreadReport r;
  const Cfa& cfa = *c.cfa;
  r.node_reachable.assign(cfa.num_nodes(), 0);
  r.edge_enabled.assign(cfa.edges().size(), 0);
  r.guard_unsat.assign(cfa.edges().size(), 0);
  r.edge_store_vals.assign(cfa.edges().size(), ValueSet());
  for (std::size_t n = 0; n < cfa.num_nodes(); ++n) {
    r.node_reachable[n] = !states[n].djs.empty();
  }
  c.contrib = nullptr;
  c.changed = nullptr;
  c.report_edge_store = &r.edge_store_vals;
  for (std::size_t e = 0; e < cfa.edges().size(); ++e) {
    const CfaEdge& edge = cfa.edges()[e];
    const NodeState& in = states[edge.from.index()];
    const bool src_reachable = !in.djs.empty();
    if (edge.instr.kind == Instr::Kind::kAssertFail) {
      r.edge_enabled[e] = src_reachable;
      r.assert_reachable |= src_reachable;
      continue;
    }
    std::vector<AbsState> out;
    for (const AbsState& d : in.djs) ApplyEdge(c, edge, d, out);
    r.edge_enabled[e] = !out.empty();
    if (edge.instr.kind == Instr::Kind::kAssume && src_reachable &&
        out.empty()) {
      r.guard_unsat[e] = 1;
    }
  }
  r.interference_empty = true;
  for (const ValueSet& s : c.all_other) {
    if (!s.empty()) r.interference_empty = false;
  }
  return r;
}

}  // namespace

bool AbsState::SubsumedBy(const AbsState& o) const {
  for (std::size_t i = 0; i < regs.size(); ++i) {
    if (!regs[i].SubsetOf(o.regs[i])) return false;
  }
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (!view[i].SubsetOf(o.view[i])) return false;
  }
  return true;
}

void AbsState::MergeWith(const AbsState& o) {
  for (std::size_t i = 0; i < regs.size(); ++i) regs[i].UnionWith(o.regs[i]);
  for (std::size_t i = 0; i < view.size(); ++i) view[i].UnionWith(o.view[i]);
}

TmaiSystem TmaiSystem::FromSimpl(const SimplSystem& s) {
  TmaiSystem sys;
  sys.num_vars = s.num_vars;
  sys.dom = s.dom;
  if (s.env != nullptr) {
    sys.threads.push_back(TmaiThread{s.env, /*replicated=*/true});
  }
  // Collapse duplicate dis programs: n copies of one program equal a
  // single self-interfering (replicated) thread.
  const std::size_t first_dis = sys.threads.size();
  for (const Cfa* dis : s.dis) {
    bool found = false;
    for (std::size_t i = first_dis; i < sys.threads.size(); ++i) {
      if (sys.threads[i].cfa == dis) {
        sys.threads[i].replicated = true;
        found = true;
        break;
      }
    }
    if (!found) {
      sys.threads.push_back(TmaiThread{dis, /*replicated=*/false});
    }
  }
  return sys;
}

TmaiResult RunTmai(const TmaiSystem& sys, const TmaiGoal& goal,
                   const TmaiOptions& opts) {
  TmaiResult result;
  const std::size_t T = sys.threads.size();
  const std::size_t V = sys.num_vars;
  const std::size_t D = static_cast<std::size_t>(sys.dom);

  Tables tables;
  tables.store_vals.assign(T, VarSets(V));
  tables.acq.assign(V, std::vector<VarSets>(D, VarSets(V)));
  tables.present.assign(V, std::vector<char>(D, 0));
  for (std::size_t x = 0; x < V; ++x) tables.present[x][0] = 1;
  tables.edge_store.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    tables.edge_store[t].assign(sys.threads[t].cfa->edges().size(),
                                ValueSet());
  }

  std::vector<std::vector<NodeState>> states(T);
  std::vector<Ctx> ctxs(T);
  bool converged = false;
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    Tables next = tables;
    bool changed = false;
    for (std::size_t t = 0; t < T; ++t) {
      Ctx c;
      c.sys = &sys;
      c.opts = &opts;
      c.tables = &tables;
      c.contrib = &next;
      c.changed = &changed;
      c.t = t;
      c.cfa = sys.threads[t].cfa;
      c.all_other = ComputeAllOther(sys, tables, t);
      c.future_own = ComputeFutureOwn(c);
      states[t] = AnalyzeThread(c, &result.max_disjuncts_seen);
      ctxs[t] = std::move(c);
    }
    result.iterations = iter;
    if (!changed) {
      converged = true;
      break;
    }
    tables = std::move(next);
  }
  result.converged = converged;
  if (!converged) return result;  // kUnknown; reports would be unsound

  result.threads.reserve(T);
  for (std::size_t t = 0; t < T; ++t) {
    ctxs[t].tables = &tables;
    result.threads.push_back(Classify(ctxs[t], states[t]));
    result.assert_reachable |= result.threads.back().assert_reachable;
  }

  if (goal.check_assert) {
    result.safe = !result.assert_reachable;
  } else {
    // MG query: is some message (var, val) ever in memory? val 0 is the
    // init message, trivially present.
    bool stored = goal.val == 0;
    for (std::size_t t = 0; t < T; ++t) {
      stored |= tables.store_vals[t][goal.var.index()].Contains(goal.val);
    }
    result.safe = !stored;
  }
  return result;
}

}  // namespace rapar::tmai
