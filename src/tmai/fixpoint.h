// Internal engine API of the thread-modular abstract interpreter,
// shared by the domain drivers (tmai.cpp: small-set and dispatch;
// relational.cpp: strengthening rounds) and by the certificate checker
// (certcheck.cpp), which re-applies single transfer steps against a
// certificate's embedded tables. Everything here is an implementation
// detail of rapar_tmai — include tmai/tmai.h from the outside.
#ifndef RAPAR_TMAI_FIXPOINT_H_
#define RAPAR_TMAI_FIXPOINT_H_

#include <cstddef>
#include <vector>

#include "tmai/tmai.h"

namespace rapar::tmai::internal {

using VarSets = std::vector<ValueSet>;

// The frozen justification the pruning rules R1/R2 read. Soundness of
// a strengthening round requires that pruning never consults the
// tables the round itself is computing: `just`/`must` point at the
// *previous* round's converged tables (or, in the certificate
// checker, at the certificate's own tables — sound by the
// first-uncovered-event induction documented in certcheck.h).
struct RelationalContext {
  const InterferenceTables* just = nullptr;
  const MustTables* must = nullptr;
  // [var][val]: global producer multiplicity <= 1, counting the init
  // message for val == 0 and counting every store edge of a
  // replicated or cyclic thread twice (unbounded copies/revisits).
  std::vector<std::vector<char>> linear;
  // [thread]: CFA node reachability, flattened num_nodes * num_nodes
  // (reach[a * n + b] <=> some path a ->* b; reflexively true).
  std::vector<std::vector<char>> reach;
};

RelationalContext BuildRelationalContext(const TmaiSystem& sys,
                                         const InterferenceTables& just,
                                         const MustTables& must);

// Per-thread context for one transfer application. Read tables are
// the previous iteration's; contributions go to the write side
// (two-phase, so a round is independent of thread order).
struct TransferCtx {
  const TmaiSystem* sys = nullptr;
  const TmaiOptions* opts = nullptr;
  const InterferenceTables* tables = nullptr;  // read side
  const MustTables* must = nullptr;   // read side; null when not tracking
  InterferenceTables* contrib = nullptr;       // write side (null: classify)
  MustTables* must_contrib = nullptr;          // write side
  const RelationalContext* rel = nullptr;      // pruning; null: disabled
  bool track_pairs = false;
  bool* changed = nullptr;
  std::size_t* pruned_reads = nullptr;  // R1/R2 prune event counter
  std::size_t t = 0;                    // thread index
  const Cfa* cfa = nullptr;
  // [var]: stores by every other thread (incl. own copies if replicated).
  VarSets all_other;
  // [node][var]: values this thread may store at or after node
  // (previous round's edge stores, propagated backwards).
  std::vector<VarSets> future_own;
  // Classification pass only.
  std::vector<ValueSet>* report_edge_store = nullptr;
  std::vector<ValueSet>* report_edge_read = nullptr;
};

VarSets ComputeAllOther(const TmaiSystem& sys,
                        const InterferenceTables& tables, std::size_t t);
std::vector<VarSets> ComputeFutureOwn(const TransferCtx& c);
AbsState EntryState(const TransferCtx& c);
void ApplyEdge(const TransferCtx& c, const CfaEdge& edge, const AbsState& d,
               std::vector<AbsState>& out);

// One complete two-phase interference fixpoint in the given
// configuration. `track_pairs` grows obs/cons and the must tables;
// `rel` (nullable) enables the pruning rules against a frozen
// justification.
struct FixpointRun {
  bool converged = false;
  int iterations = 0;
  std::size_t max_disjuncts_seen = 0;
  // R1/R2 prune events in the final (stable) iteration.
  std::size_t pruned_reads = 0;
  InterferenceTables tables;
  MustTables must;  // meaningful only when tracking
  // [thread][node]: converged disjuncts.
  std::vector<std::vector<std::vector<AbsState>>> states;
};

FixpointRun RunFixpoint(const TmaiSystem& sys, const TmaiOptions& opts,
                        bool track_pairs, const RelationalContext* rel);

// Classification + goal evaluation + certificate emission for a
// converged run; fills reports/safe/assert_reachable/certificate on
// `result` (which must already carry the iteration counters).
void FinishConverged(const TmaiSystem& sys, const TmaiGoal& goal,
                     const TmaiOptions& opts, const FixpointRun& run,
                     const RelationalContext* rel, Domain domain,
                     TmaiResult* result);

// The relational driver: tracking round, then up to
// `opts.max_strengthen_rounds` pruning rounds against the previous
// round's frozen tables. Implemented in relational.cpp.
TmaiResult RunTmaiRelational(const TmaiSystem& sys, const TmaiGoal& goal,
                             const TmaiOptions& opts);

}  // namespace rapar::tmai::internal

#endif  // RAPAR_TMAI_FIXPOINT_H_
