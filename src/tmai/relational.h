// The relational extension of the thread-modular abstract domain
// (src/tmai/): per-variable-pair *must* information layered on top of
// the small-set may analysis of tmai.h.
//
// Why the small-set domain cannot prove mutual exclusion. Its
// interference tables answer only "which values may ever be stored to
// x"; once both critical-section flags have been stored once, every
// later load may read them, so Peterson/Dekker-style protocols always
// look racy. What mutual exclusion actually rests on is a correlation
// *between* variables ("whoever published c1 = 1 had already observed
// turn = 1") or on the single-shot nature of a CAS arbiter ("whoever
// published c1 = 1 consumed the unique (k, 0) message"). Both are
// statements about pairs (variable, value), which is what this file
// adds.
//
// PairSet. A sorted small set of (var, val) pairs with an explicit top
// (the universe of all pairs) — the same representation, subsumption
// and widening discipline as ValueSet, but used in *must* polarity:
// more pairs mean more information, joins intersect, and widening
// drops toward the empty set (no information). Two must-sets ride on
// every abstract disjunct:
//   obs  — pairs (y, w), w != 0, that are definitely in the causal
//          (happens-before) past of the thread at this point: every
//          value it loaded, every singleton value it stored, and the
//          producer's own must-observations inherited through the RA
//          acquire of a read message.
//   cons — pairs this very thread *instance* consumed with its own
//          successful CAS reads, recorded only when the pair is
//          *linear* (global producer multiplicity <= 1), so that a
//          recorded consumption is provably the unique one.
//
// Must interference tables. Dual to the may tables: OBS(x, v) (resp.
// CONS(x, v)) is the intersection, over every abstract store event
// publishing v to x, of the producer's obs ∪ {(x, v)} (resp. cons) at
// the store. They start at top and only shrink; at the joint fixpoint
// every store event's contribution covers the table entry, which is
// exactly the condition the certificate checker re-validates.
//
// Pruning. A load/CAS case-split on value v at node n of thread t
// drops v when the must tables contradict its existence:
//   R1 (causal past): some (y, w) ∈ {(x, v)} ∪ OBS(x, v) with w != 0
//      is produced *only* by t (not replicated), and none of t's
//      (y, w)-store edges can reach n in t's CFA — so when this single
//      instance sits at n, no (y, w) message exists yet, hence no
//      (x, v) message whose causal past contains it.
//   R2 (consumption linearity): some (y, w) ∈ CONS(x, v) is linear and
//      already in the reading disjunct's own cons, and no (x, v)-store
//      edge of t reaches n — the unique consumption was ours, so no
//      *other* instance can have performed the CAS that guards every
//      production of (x, v).
// Pruning never reads the tables it is helping to compute: the driver
// (relational.cpp) first runs a tracking-only fixpoint, then re-runs
// the full fixpoint in strengthening rounds where the rules read the
// *frozen* previous round's converged tables.
#ifndef RAPAR_TMAI_RELATIONAL_H_
#define RAPAR_TMAI_RELATIONAL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lang/value.h"
#include "tmai/domain.h"

namespace rapar::tmai {

// One (shared variable, value) pair; the element of the relational
// must-sets. Ordered lexicographically for the sorted representation.
struct VarVal {
  std::uint32_t var = 0;
  Value val = 0;
  friend auto operator<=>(const VarVal&, const VarVal&) = default;
};

// A must-set of VarVal pairs: sorted small set with an explicit top
// (the universe). Dual polarity to ValueSet — see the file comment.
class PairSet {
 public:
  // Default-constructed: the empty set (no must information).
  PairSet() = default;

  static PairSet Top();
  static PairSet Of(VarVal p);

  bool top() const { return top_; }
  bool empty() const { return !top_ && pairs_.empty(); }
  bool Contains(VarVal p) const;

  void Insert(VarVal p);
  // Must-side *gain* of information (set union); top absorbs. Returns
  // true if this set grew.
  bool UnionWith(const PairSet& o);
  // Must-side join (set intersection; top is neutral). Returns true if
  // this set shrank.
  bool IntersectWith(const PairSet& o);
  // this ⊆ o as plain sets; top is the universe.
  bool SubsetOf(const PairSet& o) const;
  // Must-side widening: drop to the empty set (no information) once
  // the explicit representation exceeds `limit`.
  void Widen(int limit);

  // The explicit pairs. Precondition: !top().
  std::span<const VarVal> pairs() const { return pairs_; }

  bool operator==(const PairSet& o) const;
  std::string ToString() const;

 private:
  bool top_ = false;
  std::vector<VarVal> pairs_;  // sorted, unique; empty when top_
};

// The may-side interference summary shared between threads (grows
// monotonically across fixpoint rounds). Public so that invariant
// certificates can embed it and `certcheck` can re-validate against
// it; the fixpoint drivers in tmai.cpp/relational.cpp fill it in.
struct InterferenceTables {
  // [thread][var]: values the thread may store to var (any copy).
  std::vector<std::vector<ValueSet>> store_vals;
  // [var][val][var2]: the acquire snapshot ACQ(var,val) — see tmai.h.
  // Entry val == 0 is unused (the init message has the top snapshot).
  std::vector<std::vector<std::vector<ValueSet>>> acq;
  // [var][val]: some message (var,val) may exist (val 0 always).
  std::vector<std::vector<char>> present;
  // [thread][edge]: values stored by that specific edge — feeds the
  // "writer's own later stores" component of next round's snapshots.
  std::vector<std::vector<ValueSet>> edge_store;

  void Init(std::size_t num_threads, std::size_t num_vars, std::size_t dom,
            const std::vector<std::size_t>& edges_per_thread);
  bool operator==(const InterferenceTables&) const = default;
};

// The must-side interference summary (shrinks monotonically: each
// fixpoint iteration intersects every store event's contribution into
// the previous entry). Entries for val == 0 are pinned to the empty
// set — the init message has an empty causal past.
struct MustTables {
  // [var][val]: intersection over all store events of producer obs.
  std::vector<std::vector<PairSet>> obs;
  // [var][val]: intersection over all store events of producer cons.
  std::vector<std::vector<PairSet>> cons;

  void Init(std::size_t num_vars, std::size_t dom);
  bool operator==(const MustTables&) const = default;
};

}  // namespace rapar::tmai

#endif  // RAPAR_TMAI_RELATIONAL_H_
