// Lint diagnostics backed by the TMAI interference fixpoint.
//
// These are whole-system facts the per-program dataflow lints
// (analysis/diagnostics.h) cannot see: satisfiability and reachability
// under the abstract RA semantics with cross-thread interference.
// All four codes are notes — the abstraction proves properties, it
// never demotes a program.
//
//   RA030  note  guard provably never satisfiable at the fixpoint
//   RA031  note  store value provably constant
//   RA032  note  error location proven unreachable — assert is dead
//   RA033  note  thread has an empty interference set — it runs
//                sequentially (no other thread's stores are visible)
//   RA034  note  read values excluded only by the relational must-domain
//                (tmai/relational.h): the small-set fixpoint considers
//                them observable, the relational one proves they are not
//   RA035  note  assert proven dead only by the relational domain — a
//                mutual-exclusion-style invariant the small-set domain
//                cannot express
//
// The lint runs the fixpoint twice — once per domain. RA030–RA033 are
// derived from the small-set run; RA034/RA035 from the precision delta
// between the two. Diagnostics are only emitted when the respective
// fixpoint converged; a non-converged analysis proves nothing.
#ifndef RAPAR_TMAI_TMAI_DIAGNOSTICS_H_
#define RAPAR_TMAI_TMAI_DIAGNOSTICS_H_

#include <vector>

#include "analysis/diagnostics.h"
#include "tmai/tmai.h"

namespace rapar::tmai {

// Runs TMAI on `sys` (assert-reachability goal) and derives per-thread
// diagnostics. The outer vector is parallel to sys.threads; entries are
// unsorted (callers merge them into their own diagnostic streams).
std::vector<std::vector<Diagnostic>> TmaiLint(const TmaiSystem& sys,
                                              const TmaiOptions& opts = {});

}  // namespace rapar::tmai

#endif  // RAPAR_TMAI_TMAI_DIAGNOSTICS_H_
