// Lint diagnostics backed by the TMAI interference fixpoint.
//
// These are whole-system facts the per-program dataflow lints
// (analysis/diagnostics.h) cannot see: satisfiability and reachability
// under the abstract RA semantics with cross-thread interference.
// All four codes are notes — the abstraction proves properties, it
// never demotes a program.
//
//   RA030  note  guard provably never satisfiable at the fixpoint
//   RA031  note  store value provably constant
//   RA032  note  error location proven unreachable — assert is dead
//   RA033  note  thread has an empty interference set — it runs
//                sequentially (no other thread's stores are visible)
//
// Diagnostics are only emitted when the fixpoint converged; a
// non-converged analysis proves nothing.
#ifndef RAPAR_TMAI_TMAI_DIAGNOSTICS_H_
#define RAPAR_TMAI_TMAI_DIAGNOSTICS_H_

#include <vector>

#include "analysis/diagnostics.h"
#include "tmai/tmai.h"

namespace rapar::tmai {

// Runs TMAI on `sys` (assert-reachability goal) and derives per-thread
// diagnostics. The outer vector is parallel to sys.threads; entries are
// unsorted (callers merge them into their own diagnostic streams).
std::vector<std::vector<Diagnostic>> TmaiLint(const TmaiSystem& sys,
                                              const TmaiOptions& opts = {});

}  // namespace rapar::tmai

#endif  // RAPAR_TMAI_TMAI_DIAGNOSTICS_H_
