#include "tmai/domain.h"

#include <algorithm>
#include <cstddef>

namespace rapar::tmai {
namespace {

// Cap on the number of concrete register assignments enumerated when
// evaluating or refining through Expr::Eval. Beyond this the evaluator
// degrades to a coarse but sound result. With dom <= 4 and at most a
// handful of registers per expression the cap is never hit in practice.
constexpr std::size_t kEnumLimit = 512;

bool IsBooleanShaped(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kAnd:
    case ExprOp::kOr:
    case ExprOp::kNot:
      return true;
    default:
      return false;
  }
}

// Enumerates every concrete assignment of the registers read by `e`
// drawn from their value sets and calls `fn(rv)` for each. Returns
// false (without calling `fn`) when the product of set sizes exceeds
// kEnumLimit or some read register has an empty set with the product
// being zero — callers distinguish the two via `any_empty`.
template <typename Fn>
bool ForEachAssignment(const Expr& e, std::span<const ValueSet> regs,
                       Value dom, bool* any_empty, Fn&& fn) {
  std::vector<RegId> read;
  e.CollectRegs(read);
  std::sort(read.begin(), read.end());
  read.erase(std::unique(read.begin(), read.end()), read.end());

  *any_empty = false;
  std::size_t product = 1;
  std::vector<std::vector<Value>> cands;
  cands.reserve(read.size());
  for (RegId r : read) {
    cands.push_back(regs[r.index()].Enumerate(dom));
    if (cands.back().empty()) *any_empty = true;
    product *= cands.back().size();
    if (product > kEnumLimit) return false;
  }
  if (*any_empty) return true;

  std::size_t max_reg = 0;
  for (RegId r : read) max_reg = std::max(max_reg, r.index() + 1);
  std::vector<Value> rv(std::max(max_reg, regs.size()), 0);
  std::vector<std::size_t> idx(read.size(), 0);
  for (;;) {
    for (std::size_t i = 0; i < read.size(); ++i) {
      rv[read[i].index()] = cands[i][idx[i]];
    }
    fn(read, idx, std::span<const Value>(rv));
    std::size_t i = 0;
    for (; i < read.size(); ++i) {
      if (++idx[i] < cands[i].size()) break;
      idx[i] = 0;
    }
    if (i == read.size()) break;
    if (read.empty()) break;
  }
  return true;
}

}  // namespace

ValueSet ValueSet::Top() {
  ValueSet s;
  s.top_ = true;
  return s;
}

ValueSet ValueSet::Of(Value v) {
  ValueSet s;
  s.vals_.push_back(v);
  return s;
}

std::size_t ValueSet::Size(Value dom) const {
  return top_ ? static_cast<std::size_t>(dom) : vals_.size();
}

bool ValueSet::Contains(Value v) const {
  if (top_) return true;
  return std::binary_search(vals_.begin(), vals_.end(), v);
}

bool ValueSet::IsSingleton(Value dom, Value* out) const {
  if (Size(dom) != 1) return false;
  if (out != nullptr) *out = top_ ? 0 : vals_[0];
  return true;
}

void ValueSet::Insert(Value v) {
  if (top_) return;
  auto it = std::lower_bound(vals_.begin(), vals_.end(), v);
  if (it == vals_.end() || *it != v) vals_.insert(it, v);
}

bool ValueSet::UnionWith(const ValueSet& o) {
  if (top_) return false;
  if (o.top_) {
    top_ = true;
    vals_.clear();
    return true;
  }
  const std::size_t before = vals_.size();
  std::vector<Value> merged;
  merged.reserve(vals_.size() + o.vals_.size());
  std::set_union(vals_.begin(), vals_.end(), o.vals_.begin(), o.vals_.end(),
                 std::back_inserter(merged));
  vals_ = std::move(merged);
  return vals_.size() != before;
}

void ValueSet::IntersectWith(const ValueSet& o, Value dom) {
  if (o.top_) return;
  if (top_) {
    // Materialize top within [0, dom) first.
    top_ = false;
    vals_.clear();
    for (Value v = 0; v < dom; ++v) {
      if (o.Contains(v)) vals_.push_back(v);
    }
    return;
  }
  std::vector<Value> out;
  std::set_intersection(vals_.begin(), vals_.end(), o.vals_.begin(),
                        o.vals_.end(), std::back_inserter(out));
  vals_ = std::move(out);
}

bool ValueSet::SubsetOf(const ValueSet& o) const {
  if (o.top_) return true;
  if (top_) return false;
  return std::includes(o.vals_.begin(), o.vals_.end(), vals_.begin(),
                       vals_.end());
}

void ValueSet::Widen(int limit) {
  if (!top_ && vals_.size() > static_cast<std::size_t>(limit)) {
    top_ = true;
    vals_.clear();
  }
}

std::vector<Value> ValueSet::Enumerate(Value dom) const {
  if (!top_) return vals_;
  std::vector<Value> all;
  all.reserve(static_cast<std::size_t>(dom));
  for (Value v = 0; v < dom; ++v) all.push_back(v);
  return all;
}

bool ValueSet::operator==(const ValueSet& o) const {
  return top_ == o.top_ && vals_ == o.vals_;
}

std::string ValueSet::ToString() const {
  if (top_) return "T";
  std::string s = "{";
  for (std::size_t i = 0; i < vals_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(vals_[i]);
  }
  s += "}";
  return s;
}

ValueSet EvalExprSet(const Expr& e, std::span<const ValueSet> regs,
                     Value dom, int value_set_limit) {
  ValueSet out;
  bool any_empty = false;
  const bool enumerated = ForEachAssignment(
      e, regs, dom, &any_empty,
      [&](const std::vector<RegId>&, const std::vector<std::size_t>&,
          std::span<const Value> rv) { out.Insert(e.Eval(rv, dom)); });
  if (!enumerated) {
    // Too many assignments: coarse but sound.
    if (IsBooleanShaped(e.op())) {
      ValueSet b;
      b.Insert(0);
      b.Insert(1);
      return b;
    }
    return ValueSet::Top();
  }
  if (any_empty) return ValueSet();  // some operand is bottom
  out.Widen(value_set_limit);
  return out;
}

bool RefineAssume(const Expr& e, std::vector<ValueSet>& regs, Value dom,
                  int value_set_limit) {
  // Conjunctions refine each side in turn; the second side sees the
  // first side's narrowed sets.
  if (e.op() == ExprOp::kAnd) {
    return RefineAssume(*e.children()[0], regs, dom, value_set_limit) &&
           RefineAssume(*e.children()[1], regs, dom, value_set_limit);
  }

  // Project the satisfying assignments onto each read register.
  std::vector<RegId> read_regs;
  std::vector<ValueSet> kept;
  bool any_sat = false;
  bool any_empty = false;
  const bool enumerated = ForEachAssignment(
      e, std::span<const ValueSet>(regs), dom, &any_empty,
      [&](const std::vector<RegId>& read, const std::vector<std::size_t>&,
          std::span<const Value> rv) {
        if (read_regs.empty() && !read.empty()) {
          read_regs = read;
          kept.resize(read.size());
        }
        if (e.Eval(rv, dom) == 0) return;
        any_sat = true;
        for (std::size_t i = 0; i < read.size(); ++i) {
          kept[i].Insert(rv[read[i].index()]);
        }
      });
  if (!enumerated) return true;  // too many assignments: no refinement
  if (any_empty || !any_sat) return false;
  for (std::size_t i = 0; i < read_regs.size(); ++i) {
    regs[read_regs[i].index()] = std::move(kept[i]);
  }
  return true;
}

}  // namespace rapar::tmai
