#include "tmai/certcheck.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "tmai/fixpoint.h"

namespace rapar::tmai {
namespace {

bool ValueSetInRange(const ValueSet& s, Value dom) {
  if (s.top()) return true;
  for (Value v : s.Enumerate(dom)) {
    if (v < 0 || v >= dom) return false;
  }
  return true;
}

bool PairSetInRange(const PairSet& s, std::size_t num_vars, Value dom) {
  if (s.top()) return true;
  for (const VarVal& p : s.pairs()) {
    if (p.var >= num_vars || p.val < 0 || p.val >= dom) return false;
  }
  return true;
}

bool Covered(const AbsState& s, const std::vector<AbsState>& djs) {
  for (const AbsState& d : djs) {
    if (s.SubsumedBy(d)) return true;
  }
  return false;
}

}  // namespace

std::shared_ptr<const Certificate> BuildCertificate(
    const TmaiSystem& sys, const TmaiGoal& goal, const TmaiOptions& opts,
    const std::vector<std::vector<std::vector<AbsState>>>& states,
    const InterferenceTables& tables, const MustTables& must, Domain domain) {
  auto cert = std::make_shared<Certificate>();
  cert->domain = domain;
  cert->check_assert = goal.check_assert;
  cert->goal_var = goal.check_assert
                       ? 0
                       : static_cast<std::uint32_t>(goal.var.index());
  cert->goal_val = goal.check_assert ? 0 : goal.val;
  cert->num_vars = sys.num_vars;
  cert->dom = sys.dom;
  cert->value_set_limit = opts.value_set_limit;
  cert->threads.reserve(sys.threads.size());
  for (std::size_t t = 0; t < sys.threads.size(); ++t) {
    Certificate::Thread th;
    th.replicated = sys.threads[t].replicated;
    th.num_nodes = sys.threads[t].cfa->num_nodes();
    th.num_edges = sys.threads[t].cfa->edges().size();
    th.invariants = states[t];
    cert->threads.push_back(std::move(th));
  }
  cert->tables = tables;
  cert->must = must;
  return cert;
}

CertCheckResult CheckCertificate(const TmaiSystem& sys,
                                 const Certificate& cert) {
  CertCheckResult res;

  // ---- Condition 1: shape, ranges, and the axioms the fixpoint pins
  // (init-message rows) — everything the inductive argument assumes but
  // does not itself re-derive. A certificate from an untrusted source
  // must not be able to index outside the tables or smuggle in
  // must-information about the init message.
  if (cert.schema_version != kCertificateSchemaVersion) {
    res.error = StrCat("unsupported certificate schema_version ",
                       cert.schema_version);
    return res;
  }
  if (cert.domain != Domain::kSmallSet && cert.domain != Domain::kRelational) {
    res.error = "certificate domain must be smallset or relational";
    return res;
  }
  const std::size_t V = sys.num_vars;
  const Value dom = sys.dom;
  const std::size_t T = sys.threads.size();
  if (cert.num_vars != V || cert.dom != dom) {
    res.error = StrCat("certificate is for a different system shape (",
                       cert.num_vars, " vars, dom ", cert.dom, " vs ", V,
                       " vars, dom ", dom, ")");
    return res;
  }
  if (cert.value_set_limit < 1) {
    res.error = "certificate value_set_limit must be positive";
    return res;
  }
  if (!cert.check_assert) {
    if (cert.goal_var >= V || cert.goal_val <= 0 || cert.goal_val >= dom) {
      res.error = "certificate MG goal out of range";
      return res;
    }
  }
  if (cert.threads.size() != T) {
    res.error = StrCat("certificate has ", cert.threads.size(),
                       " threads, system has ", T);
    return res;
  }
  for (std::size_t t = 0; t < T; ++t) {
    const Cfa& cfa = *sys.threads[t].cfa;
    const Certificate::Thread& th = cert.threads[t];
    if (th.replicated != sys.threads[t].replicated ||
        th.num_nodes != cfa.num_nodes() ||
        th.num_edges != cfa.edges().size() ||
        th.invariants.size() != cfa.num_nodes()) {
      res.error = StrCat("certificate thread ", t,
                         " does not match the system's CFA shape");
      return res;
    }
    const std::size_t R = cfa.program().regs().size();
    for (std::size_t n = 0; n < th.invariants.size(); ++n) {
      for (const AbsState& d : th.invariants[n]) {
        if (d.regs.size() != R || d.view.size() != V) {
          res.error = StrCat("certificate thread ", t, " node ", n,
                             ": malformed invariant disjunct");
          return res;
        }
        bool ok = PairSetInRange(d.obs, V, dom) &&
                  PairSetInRange(d.cons, V, dom);
        for (const ValueSet& s : d.regs) ok = ok && ValueSetInRange(s, dom);
        for (const ValueSet& s : d.view) ok = ok && ValueSetInRange(s, dom);
        if (!ok) {
          res.error = StrCat("certificate thread ", t, " node ", n,
                             ": invariant value out of range");
          return res;
        }
      }
    }
  }
  const InterferenceTables& tb = cert.tables;
  if (tb.store_vals.size() != T || tb.acq.size() != V ||
      tb.present.size() != V || tb.edge_store.size() != T) {
    res.error = "certificate interference tables have wrong dimensions";
    return res;
  }
  for (std::size_t t = 0; t < T; ++t) {
    bool ok = tb.store_vals[t].size() == V &&
              tb.edge_store[t].size() == sys.threads[t].cfa->edges().size();
    if (ok) {
      for (const ValueSet& s : tb.store_vals[t]) {
        ok = ok && ValueSetInRange(s, dom);
      }
      for (const ValueSet& s : tb.edge_store[t]) {
        ok = ok && ValueSetInRange(s, dom);
      }
    }
    if (!ok) {
      res.error =
          StrCat("certificate store tables malformed for thread ", t);
      return res;
    }
  }
  for (std::size_t x = 0; x < V; ++x) {
    bool ok = tb.acq[x].size() == static_cast<std::size_t>(dom) &&
              tb.present[x].size() == static_cast<std::size_t>(dom) &&
              tb.present[x][0];  // the init message always exists
    if (ok) {
      for (const std::vector<ValueSet>& snap : tb.acq[x]) {
        ok = ok && snap.size() == V;
        if (!ok) break;
        for (const ValueSet& s : snap) ok = ok && ValueSetInRange(s, dom);
      }
    }
    if (!ok) {
      res.error = StrCat("certificate acquire/present tables malformed ",
                         "for variable ", x);
      return res;
    }
  }
  const bool relational = cert.domain == Domain::kRelational;
  if (relational) {
    const MustTables& mt = cert.must;
    if (mt.obs.size() != V || mt.cons.size() != V) {
      res.error = "certificate must tables have wrong dimensions";
      return res;
    }
    for (std::size_t x = 0; x < V; ++x) {
      bool ok = mt.obs[x].size() == static_cast<std::size_t>(dom) &&
                mt.cons[x].size() == static_cast<std::size_t>(dom) &&
                // The init message has an empty causal past and no
                // consumptions; a certificate claiming otherwise could
                // prune reads of init messages unsoundly.
                mt.obs[x][0].empty() && mt.cons[x][0].empty();
      if (ok) {
        for (const PairSet& p : mt.obs[x]) {
          ok = ok && PairSetInRange(p, V, dom);
        }
        for (const PairSet& p : mt.cons[x]) {
          ok = ok && PairSetInRange(p, V, dom);
        }
      }
      if (!ok) {
        res.error =
            StrCat("certificate must tables malformed for variable ", x);
        return res;
      }
    }
  }

  // ---- Conditions 2 + 3: entry coverage and inductiveness, with the
  // pruning rules justified by the certificate's own tables (sound by
  // the first-uncovered-event induction in the header comment). Table
  // contributions accumulate into copies; any growth (may side) or
  // shrink (must side) means the tables are not closed.
  internal::RelationalContext rel;
  if (relational) {
    rel = internal::BuildRelationalContext(sys, cert.tables, cert.must);
  }
  TmaiOptions opts;
  opts.value_set_limit = cert.value_set_limit;
  InterferenceTables may_closure = cert.tables;
  MustTables must_closure = cert.must;
  bool changed = false;
  for (std::size_t t = 0; t < T; ++t) {
    internal::TransferCtx c;
    c.sys = &sys;
    c.opts = &opts;
    c.tables = &cert.tables;
    c.must = relational ? &cert.must : nullptr;
    c.contrib = &may_closure;
    c.must_contrib = relational ? &must_closure : nullptr;
    c.rel = relational ? &rel : nullptr;
    c.track_pairs = relational;
    c.changed = &changed;
    c.t = t;
    c.cfa = sys.threads[t].cfa;
    c.all_other = internal::ComputeAllOther(sys, cert.tables, t);
    c.future_own = internal::ComputeFutureOwn(c);
    const std::vector<std::vector<AbsState>>& inv = cert.threads[t].invariants;
    if (!Covered(internal::EntryState(c), inv[0])) {
      res.error = StrCat("thread ", t,
                         ": entry state not covered by the invariant");
      return res;
    }
    res.nodes_checked += inv.size();
    for (std::size_t e = 0; e < c.cfa->edges().size(); ++e) {
      const CfaEdge& edge = c.cfa->edges()[e];
      ++res.edges_checked;
      if (edge.instr.kind == Instr::Kind::kAssertFail) {
        // ---- Condition 4a: assert-goal exclusion.
        if (cert.check_assert && !inv[edge.from.index()].empty()) {
          res.error = StrCat("thread ", t, ": assert edge ", e,
                             " has a reachable source");
          return res;
        }
        continue;
      }
      std::vector<AbsState> out;
      for (const AbsState& d : inv[edge.from.index()]) {
        internal::ApplyEdge(c, edge, d, out);
      }
      for (const AbsState& o : out) {
        if (!Covered(o, inv[edge.to.index()])) {
          res.error =
              StrCat("thread ", t, ": invariant not inductive at edge ", e);
          return res;
        }
      }
    }
  }
  if (changed) {
    res.error = "interference tables not closed under the invariants";
    return res;
  }

  // ---- Condition 4b: MG-goal exclusion.
  if (!cert.check_assert) {
    for (std::size_t t = 0; t < T; ++t) {
      if (tb.store_vals[t][cert.goal_var].Contains(cert.goal_val)) {
        res.error = StrCat("thread ", t, " may store the goal value ",
                           cert.goal_val, " to variable ", cert.goal_var);
        return res;
      }
    }
  }

  res.valid = true;
  return res;
}

namespace {

void WriteValueSet(const ValueSet& s, Value dom, JsonWriter* w) {
  if (s.top()) {
    w->String("top");
    return;
  }
  w->BeginArray();
  for (Value v : s.Enumerate(dom)) w->Int(v);
  w->EndArray();
}

void WritePairSet(const PairSet& s, JsonWriter* w) {
  if (s.top()) {
    w->String("top");
    return;
  }
  w->BeginArray();
  for (const VarVal& p : s.pairs()) {
    w->BeginArray().UInt(p.var).Int(p.val).EndArray();
  }
  w->EndArray();
}

void WriteAbsState(const AbsState& d, Value dom, JsonWriter* w) {
  w->BeginObject();
  w->Key("regs").BeginArray();
  for (const ValueSet& s : d.regs) WriteValueSet(s, dom, w);
  w->EndArray();
  w->Key("view").BeginArray();
  for (const ValueSet& s : d.view) WriteValueSet(s, dom, w);
  w->EndArray();
  w->Key("obs");
  WritePairSet(d.obs, w);
  w->Key("cons");
  WritePairSet(d.cons, w);
  w->EndObject();
}

}  // namespace

void WriteCertificateJson(const Certificate& cert, JsonWriter* w) {
  const Value dom = cert.dom;
  w->BeginObject();
  w->Key("schema_version").Int(cert.schema_version);
  w->Key("domain").String(DomainName(cert.domain));
  w->Key("check_assert").Bool(cert.check_assert);
  if (!cert.check_assert) {
    w->Key("goal_var").UInt(cert.goal_var);
    w->Key("goal_val").Int(cert.goal_val);
  }
  w->Key("value_set_limit").Int(cert.value_set_limit);
  w->Key("num_vars").UInt(cert.num_vars);
  w->Key("dom").Int(dom);
  w->Key("threads").BeginArray();
  for (const Certificate::Thread& th : cert.threads) {
    w->BeginObject();
    w->Key("replicated").Bool(th.replicated);
    w->Key("num_nodes").UInt(th.num_nodes);
    w->Key("num_edges").UInt(th.num_edges);
    w->Key("invariants").BeginArray();
    for (const std::vector<AbsState>& djs : th.invariants) {
      w->BeginArray();
      for (const AbsState& d : djs) WriteAbsState(d, dom, w);
      w->EndArray();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->Key("tables").BeginObject();
  w->Key("store_vals").BeginArray();
  for (const auto& row : cert.tables.store_vals) {
    w->BeginArray();
    for (const ValueSet& s : row) WriteValueSet(s, dom, w);
    w->EndArray();
  }
  w->EndArray();
  w->Key("acq").BeginArray();
  for (const auto& by_val : cert.tables.acq) {
    w->BeginArray();
    for (const auto& snap : by_val) {
      w->BeginArray();
      for (const ValueSet& s : snap) WriteValueSet(s, dom, w);
      w->EndArray();
    }
    w->EndArray();
  }
  w->EndArray();
  w->Key("present").BeginArray();
  for (const auto& row : cert.tables.present) {
    w->BeginArray();
    for (char p : row) w->Int(p ? 1 : 0);
    w->EndArray();
  }
  w->EndArray();
  w->Key("edge_store").BeginArray();
  for (const auto& row : cert.tables.edge_store) {
    w->BeginArray();
    for (const ValueSet& s : row) WriteValueSet(s, dom, w);
    w->EndArray();
  }
  w->EndArray();
  w->EndObject();
  if (cert.domain == Domain::kRelational) {
    w->Key("must").BeginObject();
    w->Key("obs").BeginArray();
    for (const auto& row : cert.must.obs) {
      w->BeginArray();
      for (const PairSet& p : row) WritePairSet(p, w);
      w->EndArray();
    }
    w->EndArray();
    w->Key("cons").BeginArray();
    for (const auto& row : cert.must.cons) {
      w->BeginArray();
      for (const PairSet& p : row) WritePairSet(p, w);
      w->EndArray();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndObject();
}

namespace {

// Parse helpers. Structural and representational validation only
// (types, int bounds, sortedness via Insert); range validation against
// the system shape is CheckCertificate's job.

bool JsonToValue(const JsonValue& v, Value* out) {
  if (!v.is_number() || !v.number_is_int) return false;
  if (v.integer < std::numeric_limits<Value>::min() ||
      v.integer > std::numeric_limits<Value>::max()) {
    return false;
  }
  *out = static_cast<Value>(v.integer);
  return true;
}

bool JsonToSize(const JsonValue& v, std::size_t* out) {
  if (!v.is_number() || !v.number_is_int || v.integer < 0) return false;
  *out = static_cast<std::size_t>(v.integer);
  return true;
}

bool ParseValueSet(const JsonValue& v, ValueSet* out) {
  if (v.is_string() && v.string == "top") {
    *out = ValueSet::Top();
    return true;
  }
  if (!v.is_array()) return false;
  *out = ValueSet();
  for (const JsonValue& item : v.items) {
    Value val = 0;
    if (!JsonToValue(item, &val)) return false;
    out->Insert(val);
  }
  return true;
}

bool ParsePairSet(const JsonValue& v, PairSet* out) {
  if (v.is_string() && v.string == "top") {
    *out = PairSet::Top();
    return true;
  }
  if (!v.is_array()) return false;
  *out = PairSet();
  for (const JsonValue& item : v.items) {
    if (!item.is_array() || item.items.size() != 2) return false;
    std::size_t var = 0;
    Value val = 0;
    if (!JsonToSize(item.items[0], &var) ||
        var > std::numeric_limits<std::uint32_t>::max() ||
        !JsonToValue(item.items[1], &val)) {
      return false;
    }
    out->Insert(VarVal{static_cast<std::uint32_t>(var), val});
  }
  return true;
}

bool ParseAbsState(const JsonValue& v, AbsState* out) {
  if (!v.is_object()) return false;
  const JsonValue* regs = v.Find("regs");
  const JsonValue* view = v.Find("view");
  const JsonValue* obs = v.Find("obs");
  const JsonValue* cons = v.Find("cons");
  if (regs == nullptr || !regs->is_array() || view == nullptr ||
      !view->is_array() || obs == nullptr || cons == nullptr) {
    return false;
  }
  out->regs.resize(regs->items.size());
  for (std::size_t i = 0; i < regs->items.size(); ++i) {
    if (!ParseValueSet(regs->items[i], &out->regs[i])) return false;
  }
  out->view.resize(view->items.size());
  for (std::size_t i = 0; i < view->items.size(); ++i) {
    if (!ParseValueSet(view->items[i], &out->view[i])) return false;
  }
  return ParsePairSet(*obs, &out->obs) && ParsePairSet(*cons, &out->cons);
}

bool ParseValueSetMatrix(const JsonValue& v,
                         std::vector<std::vector<ValueSet>>* out) {
  if (!v.is_array()) return false;
  out->resize(v.items.size());
  for (std::size_t i = 0; i < v.items.size(); ++i) {
    const JsonValue& row = v.items[i];
    if (!row.is_array()) return false;
    (*out)[i].resize(row.items.size());
    for (std::size_t j = 0; j < row.items.size(); ++j) {
      if (!ParseValueSet(row.items[j], &(*out)[i][j])) return false;
    }
  }
  return true;
}

bool ParsePairSetMatrix(const JsonValue& v,
                        std::vector<std::vector<PairSet>>* out) {
  if (!v.is_array()) return false;
  out->resize(v.items.size());
  for (std::size_t i = 0; i < v.items.size(); ++i) {
    const JsonValue& row = v.items[i];
    if (!row.is_array()) return false;
    (*out)[i].resize(row.items.size());
    for (std::size_t j = 0; j < row.items.size(); ++j) {
      if (!ParsePairSet(row.items[j], &(*out)[i][j])) return false;
    }
  }
  return true;
}

}  // namespace

Expected<Certificate> ParseCertificateJson(const JsonValue& v) {
  auto err = [](std::string_view what) {
    return Expected<Certificate>::Error(
        StrCat("malformed certificate: ", what));
  };
  if (!v.is_object()) return err("not an object");
  Certificate cert;

  const JsonValue* f = v.Find("schema_version");
  if (f == nullptr || !f->is_number() || !f->number_is_int) {
    return err("missing schema_version");
  }
  cert.schema_version = static_cast<int>(f->integer);

  f = v.Find("domain");
  if (f == nullptr || !f->is_string()) return err("missing domain");
  if (f->string == DomainName(Domain::kSmallSet)) {
    cert.domain = Domain::kSmallSet;
  } else if (f->string == DomainName(Domain::kRelational)) {
    cert.domain = Domain::kRelational;
  } else {
    return err("unknown domain");
  }

  f = v.Find("check_assert");
  if (f == nullptr || !f->is_bool()) return err("missing check_assert");
  cert.check_assert = f->boolean;
  if (!cert.check_assert) {
    const JsonValue* gv = v.Find("goal_var");
    const JsonValue* gl = v.Find("goal_val");
    std::size_t var = 0;
    if (gv == nullptr || gl == nullptr || !JsonToSize(*gv, &var) ||
        var > std::numeric_limits<std::uint32_t>::max() ||
        !JsonToValue(*gl, &cert.goal_val)) {
      return err("missing or malformed MG goal");
    }
    cert.goal_var = static_cast<std::uint32_t>(var);
  }

  f = v.Find("value_set_limit");
  if (f == nullptr || !f->is_number() || !f->number_is_int) {
    return err("missing value_set_limit");
  }
  cert.value_set_limit = static_cast<int>(f->integer);

  f = v.Find("num_vars");
  if (f == nullptr || !JsonToSize(*f, &cert.num_vars)) {
    return err("missing num_vars");
  }
  f = v.Find("dom");
  if (f == nullptr || !JsonToValue(*f, &cert.dom)) return err("missing dom");

  f = v.Find("threads");
  if (f == nullptr || !f->is_array()) return err("missing threads");
  cert.threads.resize(f->items.size());
  for (std::size_t t = 0; t < f->items.size(); ++t) {
    const JsonValue& tv = f->items[t];
    Certificate::Thread& th = cert.threads[t];
    const JsonValue* rep = tv.Find("replicated");
    const JsonValue* nn = tv.Find("num_nodes");
    const JsonValue* ne = tv.Find("num_edges");
    const JsonValue* inv = tv.Find("invariants");
    if (!tv.is_object() || rep == nullptr || !rep->is_bool() ||
        nn == nullptr || !JsonToSize(*nn, &th.num_nodes) || ne == nullptr ||
        !JsonToSize(*ne, &th.num_edges) || inv == nullptr ||
        !inv->is_array()) {
      return err(StrCat("thread ", t));
    }
    th.replicated = rep->boolean;
    th.invariants.resize(inv->items.size());
    for (std::size_t n = 0; n < inv->items.size(); ++n) {
      const JsonValue& node = inv->items[n];
      if (!node.is_array()) return err(StrCat("thread ", t, " node ", n));
      th.invariants[n].resize(node.items.size());
      for (std::size_t d = 0; d < node.items.size(); ++d) {
        if (!ParseAbsState(node.items[d], &th.invariants[n][d])) {
          return err(StrCat("thread ", t, " node ", n, " disjunct ", d));
        }
      }
    }
  }

  f = v.Find("tables");
  if (f == nullptr || !f->is_object()) return err("missing tables");
  const JsonValue* sv = f->Find("store_vals");
  const JsonValue* acq = f->Find("acq");
  const JsonValue* present = f->Find("present");
  const JsonValue* es = f->Find("edge_store");
  if (sv == nullptr || !ParseValueSetMatrix(*sv, &cert.tables.store_vals) ||
      es == nullptr || !ParseValueSetMatrix(*es, &cert.tables.edge_store)) {
    return err("tables.store_vals/edge_store");
  }
  if (acq == nullptr || !acq->is_array()) return err("tables.acq");
  cert.tables.acq.resize(acq->items.size());
  for (std::size_t x = 0; x < acq->items.size(); ++x) {
    if (!ParseValueSetMatrix(acq->items[x], &cert.tables.acq[x])) {
      return err("tables.acq");
    }
  }
  if (present == nullptr || !present->is_array()) return err("tables.present");
  cert.tables.present.resize(present->items.size());
  for (std::size_t x = 0; x < present->items.size(); ++x) {
    const JsonValue& row = present->items[x];
    if (!row.is_array()) return err("tables.present");
    cert.tables.present[x].resize(row.items.size());
    for (std::size_t val = 0; val < row.items.size(); ++val) {
      Value bit = 0;
      if (!JsonToValue(row.items[val], &bit) || (bit != 0 && bit != 1)) {
        return err("tables.present");
      }
      cert.tables.present[x][val] = static_cast<char>(bit);
    }
  }

  if (cert.domain == Domain::kRelational) {
    f = v.Find("must");
    if (f == nullptr || !f->is_object()) return err("missing must tables");
    const JsonValue* obs = f->Find("obs");
    const JsonValue* cons = f->Find("cons");
    if (obs == nullptr || !ParsePairSetMatrix(*obs, &cert.must.obs) ||
        cons == nullptr || !ParsePairSetMatrix(*cons, &cert.must.cons)) {
      return err("must tables");
    }
  }
  return cert;
}

}  // namespace rapar::tmai
