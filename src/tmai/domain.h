// The abstract domain of the thread-modular abstract interpreter
// (src/tmai/tmai.h): small value sets over the finite domain [0, dom),
// with an explicit top element and a size-triggered widening.
//
// A ValueSet over-approximates the set of concrete Values a register can
// hold or a shared variable can yield to a load. The lattice is the
// powerset of [0, dom) with an explicit top representative; sets whose
// explicit enumeration exceeds the configured limit are widened to top,
// which keeps every operation O(limit) regardless of dom.
//
// Expression evaluation and assume-guard refinement reuse the concrete
// Expr::Eval by enumerating the (small) product of the operand sets, so
// the abstract semantics agrees with the interpreter by construction
// instead of re-implementing the modular arithmetic.
#ifndef RAPAR_TMAI_DOMAIN_H_
#define RAPAR_TMAI_DOMAIN_H_

#include <span>
#include <string>
#include <vector>

#include "lang/expr.h"
#include "lang/value.h"

namespace rapar::tmai {

class ValueSet {
 public:
  // Default-constructed: the empty set (bottom).
  ValueSet() = default;

  static ValueSet Top();
  static ValueSet Of(Value v);

  bool top() const { return top_; }
  bool empty() const { return !top_ && vals_.empty(); }
  // Cardinality of the concretization.
  std::size_t Size(Value dom) const;
  bool Contains(Value v) const;
  // True if the set is exactly {v}; top counts only when dom == 1.
  bool IsSingleton(Value dom, Value* out = nullptr) const;

  void Insert(Value v);
  // Set-lattice join; returns true if this set grew.
  bool UnionWith(const ValueSet& o);
  void IntersectWith(const ValueSet& o, Value dom);
  bool SubsetOf(const ValueSet& o) const;
  // Widen to top once the explicit representation exceeds `limit`.
  void Widen(int limit);

  // The concrete values, materialized (top enumerates [0, dom)).
  std::vector<Value> Enumerate(Value dom) const;

  bool operator==(const ValueSet& o) const;
  std::string ToString() const;

 private:
  bool top_ = false;
  std::vector<Value> vals_;  // sorted, unique; empty when top_
};

// Over-approximates [[e]] under per-register value sets (indexed by
// RegId). Exact — the product of the read registers' sets is enumerated
// through Expr::Eval — as long as the product is small; beyond the
// internal enumeration cap the result degrades to {0,1} for boolean-
// shaped operators and top otherwise. Returns the empty set iff some
// register read by `e` has an empty set.
ValueSet EvalExprSet(const Expr& e, std::span<const ValueSet> regs,
                     Value dom, int value_set_limit);

// Refines `regs` in place under the assumption that `e` evaluates to a
// non-zero value (the `assume` guard semantics). The refinement is the
// relational projection of the satisfying assignments onto each register
// read by the guard, so single-register equalities (`r == c`), register
// equalities (`a == b`) and conjunctions all narrow precisely. Returns
// false when no assignment drawn from the current sets satisfies the
// guard — the disjunct is dead.
bool RefineAssume(const Expr& e, std::vector<ValueSet>& regs, Value dom,
                  int value_set_limit);

}  // namespace rapar::tmai

#endif  // RAPAR_TMAI_DOMAIN_H_
