#include "tmai/tmai_diagnostics.h"

#include <string>

namespace rapar::tmai {
namespace {

Diagnostic Note(std::string code, std::string message, SrcLoc loc) {
  Diagnostic d;
  d.severity = Severity::kNote;
  d.code = std::move(code);
  d.message = std::move(message);
  d.loc = loc;
  return d;
}

}  // namespace

std::vector<std::vector<Diagnostic>> TmaiLint(const TmaiSystem& sys,
                                              const TmaiOptions& opts) {
  std::vector<std::vector<Diagnostic>> out(sys.threads.size());
  TmaiGoal goal;  // assert reachability
  TmaiOptions small_opts = opts;
  small_opts.domain = Domain::kSmallSet;
  const TmaiResult result = RunTmai(sys, goal, small_opts);
  if (!result.converged) return out;
  // Second fixpoint under the relational domain; RA034/RA035 report the
  // precision it gains over the small-set run above.
  TmaiOptions rel_opts = opts;
  rel_opts.domain = Domain::kRelational;
  const TmaiResult rel = RunTmai(sys, goal, rel_opts);

  for (std::size_t t = 0; t < sys.threads.size(); ++t) {
    const Cfa& cfa = *sys.threads[t].cfa;
    const ThreadReport& r = result.threads[t];
    const VarTable& vars = cfa.program().vars();
    const RegTable& regs = cfa.program().regs();
    for (std::size_t e = 0; e < cfa.edges().size(); ++e) {
      const CfaEdge& edge = cfa.edges()[e];
      const Instr& instr = edge.instr;
      switch (instr.kind) {
        case Instr::Kind::kAssume:
          if (r.guard_unsat[e]) {
            out[t].push_back(Note(
                "RA030",
                "guard '" + instr.expr->ToString(regs) +
                    "' is provably never satisfiable under interference",
                instr.loc));
          }
          break;
        case Instr::Kind::kStore:
        case Instr::Kind::kCas: {
          Value v = 0;
          if (r.edge_enabled[e] &&
              r.edge_store_vals[e].IsSingleton(sys.dom, &v)) {
            out[t].push_back(Note(
                "RA031",
                "store to '" + vars.Name(instr.var) +
                    "' always writes the constant " + std::to_string(v),
                instr.loc));
          }
          break;
        }
        case Instr::Kind::kAssertFail:
          if (!r.node_reachable[edge.from.index()]) {
            out[t].push_back(Note(
                "RA032",
                "assert is dead: error location proven unreachable "
                "under interference",
                instr.loc));
          }
          break;
        default:
          break;
      }
      if (!rel.converged) continue;
      const ThreadReport& rr = rel.threads[t];
      switch (instr.kind) {
        case Instr::Kind::kLoad:
        case Instr::Kind::kCas: {
          // RA034: values the small-set fixpoint lets this read observe
          // but the relational must-domain (causal-past / consumption
          // pruning) excludes.
          if (!r.edge_enabled[e]) break;
          std::string pruned;
          for (Value v : r.edge_read_vals[e].Enumerate(sys.dom)) {
            if (rr.edge_read_vals[e].Contains(v)) continue;
            if (!pruned.empty()) pruned += ", ";
            pruned += std::to_string(v);
          }
          if (!pruned.empty()) {
            out[t].push_back(Note(
                "RA034",
                "read of '" + vars.Name(instr.var) +
                    "' never observes {" + pruned +
                    "}: excluded by the relational must-domain",
                instr.loc));
          }
          break;
        }
        case Instr::Kind::kAssertFail:
          // RA035: the small-set domain considers the error location
          // reachable, but the relational invariant proves it dead —
          // the mutual-exclusion pattern of DESIGN.md §10.
          if (r.node_reachable[edge.from.index()] &&
              !rr.node_reachable[edge.from.index()]) {
            out[t].push_back(Note(
                "RA035",
                "assert is dead under the relational domain: a "
                "mutual-exclusion invariant excludes the error location",
                instr.loc));
          }
          break;
        default:
          break;
      }
    }
    if (r.interference_empty) {
      out[t].push_back(Note(
          "RA033",
          "thread is sequential: no other thread's stores are visible "
          "(empty interference set)",
          SrcLoc()));
    }
  }
  return out;
}

}  // namespace rapar::tmai
