// Invariant certificates for the thread-modular abstract interpreter,
// and an independent checker that re-validates one without re-running
// the fixpoint.
//
// A certificate is everything the TMAI fixpoint converged to: per
// thread and per CFA node the disjunctive invariants (register/view
// value sets plus, under the relational domain, the obs/cons
// must-sets of relational.h), the may-side interference tables and the
// must-side OBS/CONS tables, and the goal the run proved. It is
// emitted on every kSafe verdict and rides the versioned JSON result
// envelope under the "certificate" key.
//
// What the checker verifies (CheckCertificate):
//   1. Shape: the certificate matches the system it claims to certify
//      (thread count and roles, node/edge counts, num_vars, dom).
//   2. Entry coverage: each thread's abstract entry state is subsumed
//      by an invariant disjunct at the entry node.
//   3. Inductiveness: applying the one-edge abstract transfer to every
//      invariant disjunct yields only states subsumed at the target
//      node, and the transfer's table contributions are already
//      contained in the certificate's tables (may side) resp. already
//      imply the certificate's claims (must side: every store event's
//      obs/cons covers the OBS/CONS entry it feeds).
//   4. Goal exclusion: no kAssertFail edge has a reachable source
//      (assert goal), or the goal value is never stored (MG goal).
//
// Why a checker that validates a *relational* certificate against the
// certificate's own tables is sound (self-justification): suppose some
// concrete run escaped the certified invariants, and take its first
// event e not covered by them. Every event before e is covered, so
// every message existing when e fires is covered by a store event the
// checker validated — hence the certificate's may tables
// over-approximate and its must tables under-approximate the true
// prefix, so the pruning rules R1/R2 (relational.h), justified by
// those very tables, exclude nothing the prefix can do. The transfer
// applied to e's covered pre-state therefore covers e's post-state
// (condition 3), contradicting the choice of e. With every reachable
// state covered, condition 4 transfers abstract goal exclusion to the
// concrete system.
#ifndef RAPAR_TMAI_CERTCHECK_H_
#define RAPAR_TMAI_CERTCHECK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/json.h"
#include "tmai/tmai.h"

namespace rapar::tmai {

// Versions the "certificate" JSON object independently of the result
// envelope's kResultSchemaVersion (the envelope stays at version 1;
// the key is additive).
inline constexpr int kCertificateSchemaVersion = 1;

struct Certificate {
  int schema_version = kCertificateSchemaVersion;
  // The domain that produced the proof; tells the checker whether the
  // relational machinery (must tables, pruning) participates.
  Domain domain = Domain::kSmallSet;
  // The proved goal (TmaiGoal): assert-edge unreachability or the MG
  // query "no thread ever stores goal_val to goal_var".
  bool check_assert = true;
  std::uint32_t goal_var = 0;
  Value goal_val = 0;
  // System shape, validated against the system the checker rebuilds.
  std::size_t num_vars = 0;
  Value dom = 2;
  // The abstract transfer is parameterized by the explicit value-set
  // size cutoff (EvalExprSet/RefineAssume saturate to top above it);
  // the checker must replay with the producing run's limit.
  int value_set_limit = 16;

  struct Thread {
    bool replicated = false;
    std::size_t num_nodes = 0;
    std::size_t num_edges = 0;
    // [node]: the converged invariant disjuncts.
    std::vector<std::vector<AbsState>> invariants;
  };
  std::vector<Thread> threads;

  InterferenceTables tables;
  // Meaningful (and serialized) only for the relational domain.
  MustTables must;
};

// Snapshot of a converged fixpoint run as a certificate. `states` is
// [thread][node][disjunct], parallel to sys.threads.
std::shared_ptr<const Certificate> BuildCertificate(
    const TmaiSystem& sys, const TmaiGoal& goal, const TmaiOptions& opts,
    const std::vector<std::vector<std::vector<AbsState>>>& states,
    const InterferenceTables& tables, const MustTables& must, Domain domain);

struct CertCheckResult {
  bool valid = false;
  // First violated condition, empty when valid.
  std::string error;
  std::size_t nodes_checked = 0;
  std::size_t edges_checked = 0;
};

// Independently re-validates `cert` against `sys` (conditions 1–4
// above) without running the fixpoint.
CertCheckResult CheckCertificate(const TmaiSystem& sys,
                                 const Certificate& cert);

// The "certificate" JSON object (written inside an already-open value
// position of `w`), and its inverse.
void WriteCertificateJson(const Certificate& cert, JsonWriter* w);
Expected<Certificate> ParseCertificateJson(const JsonValue& v);

}  // namespace rapar::tmai

#endif  // RAPAR_TMAI_CERTCHECK_H_
