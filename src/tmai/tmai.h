// Thread-modular abstract interpretation (TMAI) over the RA semantics.
//
// A sound over-approximating analysis in the style of Sharma & Sharma,
// "Thread-modular Analysis of Release-Acquire Concurrency": each thread
// is analyzed in isolation against an interference summary of every
// other thread, and the summaries are iterated to a joint fixpoint.
//
// Abstraction. A per-thread abstract state maps
//   - each register r to a ValueSet over-approximating the values r may
//     hold, and
//   - each shared variable x to a "view" ValueSet over-approximating the
//     values any load of x may return at this program point (the
//     message-buffer abstraction: the lattice join of all release-stores
//     the thread may observe under RA, plus the init message 0 while the
//     thread's view can still point below every store).
// States are kept as small disjunctive sets per CFA node so that load
// case-splits (r := x picks ONE value) retain relational precision
// between a loaded value and the view refinement it implies.
//
// RA acquire refinement. Every store edge publishes an acquire snapshot
// ACQ(x,v): for each variable y, the join over all abstract stores of v
// to x of (writer view of y at the store) ∪ (writer's own later stores
// of y) ∪ (all stores of y by other threads). Under RA, a thread that
// reads (x,v) joins the writer's view, so afterwards it can only read
// y-values with timestamps at or above the writer's — a subset of
// ACQ(x,v)(y). Loads therefore intersect the local view with the
// snapshot, which is what proves message-passing idioms safe. The init
// message (x,0) carries the top snapshot.
//
// Interference fixpoint. Store summaries, acquire snapshots and
// per-edge store sets grow monotonically across rounds; each round
// re-analyzes every thread against the previous round's tables
// (two-phase, so the result is independent of thread order). The
// analysis converges when a full round adds nothing; only then is a
// kSafe answer derived. TMAI never reports unsafe: reaching an assert
// edge in the abstraction merely means "unknown".
#ifndef RAPAR_TMAI_TMAI_H_
#define RAPAR_TMAI_TMAI_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "lang/cfa.h"
#include "simplified/transitions.h"
#include "tmai/domain.h"
#include "tmai/relational.h"

namespace rapar::tmai {

// Which abstract domain the fixpoint runs in. kSmallSet is the
// original non-relational value-set domain; kRelational layers the
// per-variable-pair must analysis of relational.h on top (more
// precise, a few times slower); kAuto runs kSmallSet first and retries
// kRelational only when the small-set fixpoint finished kUnknown, so
// the fast path stays fast.
enum class Domain {
  kSmallSet,
  kRelational,
  kAuto,
};

const char* DomainName(Domain d);

struct TmaiOptions {
  // Interference fixpoint rounds before giving up (kUnknown).
  int max_iterations = 64;
  // Joins at one CFA node before states are widened (merge disjuncts,
  // then push oversized value sets to top).
  int widening_delay = 8;
  // Explicit value-set size beyond which a set becomes top.
  int value_set_limit = 16;
  // Disjuncts kept per CFA node before merging into their join.
  int max_disjuncts = 16;
  // Abstract domain (see Domain above).
  Domain domain = Domain::kSmallSet;
  // Relational only: strengthening rounds (full re-fixpoints whose
  // pruning rules read the previous round's frozen tables) before
  // giving up. Round 0 — tracking without pruning — is not counted.
  int max_strengthen_rounds = 3;
  // Emit an invariant certificate (tmai/certcheck.h) on kSafe.
  bool emit_certificate = true;
};

// What "safe" means: assert-edge unreachability (default) or the
// memory-guess query "no thread ever stores `val` to `var`".
struct TmaiGoal {
  bool check_assert = true;
  VarId var;
  Value val = 0;
};

struct TmaiThread {
  const Cfa* cfa = nullptr;
  // True if any number of copies of this program may run concurrently
  // (the env template, or a dis program listed more than once) — the
  // thread then interferes with itself.
  bool replicated = false;
};

struct TmaiSystem {
  std::vector<TmaiThread> threads;
  std::size_t num_vars = 0;
  Value dom = 2;

  // Adapts the simplified-semantics system: env (replicated) + dis
  // threads, with duplicate dis programs collapsed into one replicated
  // entry. `thread_of_dis[i]` maps dis index i to its TmaiThread.
  static TmaiSystem FromSimpl(const SimplSystem& s);
};

// One abstract disjunct: per-register and per-variable value sets,
// plus the relational must-sets (empty — no information — under the
// small-set domain, so the small-set analysis is bit-identical to the
// pre-relational one).
struct AbsState {
  std::vector<ValueSet> regs;
  std::vector<ValueSet> view;
  // Must-observations: (y, w) pairs definitely in the causal past.
  PairSet obs;
  // Linear pairs consumed by this instance's own CAS reads.
  PairSet cons;

  bool SubsumedBy(const AbsState& o) const;
  void MergeWith(const AbsState& o);
  bool operator==(const AbsState& o) const {
    return regs == o.regs && view == o.view && obs == o.obs &&
           cons == o.cons;
  }
};

// Fixpoint facts about one thread, for the safety verdict and the
// TMAI-backed lint diagnostics (RA030–RA033). Only meaningful when the
// enclosing result converged.
struct ThreadReport {
  std::vector<char> node_reachable;  // per NodeId
  std::vector<char> edge_enabled;    // per EdgeId: some disjunct survives
  // kAssume edges whose source is reachable but whose guard no reaching
  // disjunct can satisfy (RA030).
  std::vector<char> guard_unsat;
  // Per edge: abstract set of values a kStore/kCas edge may publish
  // (empty for other kinds). Singleton => RA031.
  std::vector<ValueSet> edge_store_vals;
  // Per edge: values a kLoad/kCas edge actually reads, i.e. the
  // case-split values that survive presence filtering and (relational
  // domain) the pruning rules. Comparing the two domains' sets per
  // edge is what backs the RA034 lint.
  std::vector<ValueSet> edge_read_vals;
  // No other thread's stores are visible to this one (RA033).
  bool interference_empty = false;
  // Some kAssertFail edge is abstractly reachable.
  bool assert_reachable = false;
};

struct Certificate;  // tmai/certcheck.h

struct TmaiResult {
  bool converged = false;
  // Goal proven unreachable in the abstraction. Requires convergence;
  // false means kUnknown, never kUnsafe.
  bool safe = false;
  bool assert_reachable = false;
  int iterations = 0;
  std::size_t max_disjuncts_seen = 0;
  // The domain that produced this result (kAuto resolves to the
  // stronger domain that actually ran last).
  Domain domain_used = Domain::kSmallSet;
  // Relational domain only: strengthening rounds run (0 when only the
  // tracking round ran) and reads pruned by R1/R2 in the final round.
  int strengthen_rounds = 0;
  std::size_t pruned_reads = 0;
  // Parallel to TmaiSystem::threads; populated only when converged.
  std::vector<ThreadReport> threads;
  // Machine-checkable invariant certificate; set on kSafe when
  // TmaiOptions::emit_certificate (see tmai/certcheck.h).
  std::shared_ptr<const Certificate> certificate;
};

TmaiResult RunTmai(const TmaiSystem& sys, const TmaiGoal& goal,
                   const TmaiOptions& opts);

}  // namespace rapar::tmai

#endif  // RAPAR_TMAI_TMAI_H_
