// Theorem 1.1: parameterized safety verification for env(acyc) — loop-free
// env threads *with CAS* — is undecidable. The proof (full version [22])
// reduces from Minsky counter machines.
//
// This module provides an executable form of the construction: a
// two-counter machine is compiled to a single loop-free env program in
// which every thread executes at most one machine step. CAS on a lock
// variable is what makes the construction work: CAS adjacency means each
// release message has at most one successor acquire, so the unboundedly
// many env threads form one exact, totally-ordered chain of machine steps,
// and the RA view carried through the lock hands the machine state from
// step to step. The machine halts iff the program's assertion is
// reachable.
//
// Substitution note (documented in DESIGN.md): full undecidability needs
// unbounded counters, which the paper encodes in the unbounded timestamp
// structure; values in Com range over the finite Dom, so counters here are
// bounded by a parameter. The demo validates the exactly-once CAS handoff
// — the mechanism the undecidability proof rests on — on bounded
// instances, which is also all any terminating test can exercise.
#ifndef RAPAR_LOWERBOUND_COUNTER_MACHINE_H_
#define RAPAR_LOWERBOUND_COUNTER_MACHINE_H_

#include <string>
#include <vector>

#include "lang/program.h"

namespace rapar {

// A two-counter Minsky machine.
struct CounterMachine {
  enum class Op { kInc, kDec, kJz };

  struct Instr {
    Op op = Op::kInc;
    int counter = 0;  // 0 or 1
    int from = 0;     // source state
    int to = 0;       // target state (taken branch for kJz: counter == 0)
    int to_nz = 0;    // kJz: target when counter != 0 (falls through after
                      // decrement-free test)
  };

  int num_states = 1;
  int initial = 0;
  int halt = 0;
  std::vector<Instr> instrs;
};

// Compiles `machine` to an env(acyc)-with-CAS program. `counter_bound`
// caps counter values (Dom must hold states and counters). Reaching the
// halt state triggers `assert false`.
Program CounterMachineToEnvCas(const CounterMachine& machine,
                               int counter_bound);

// Reference semantics: does the machine reach `halt` within `max_steps`
// steps and counters bounded by `counter_bound`?
bool MachineHalts(const CounterMachine& machine, int counter_bound,
                  int max_steps);

}  // namespace rapar

#endif  // RAPAR_LOWERBOUND_COUNTER_MACHINE_H_
