// The PSPACE-hardness reduction of §5 (Figure 6): TQBF → parameterized
// safety verification for env(nocas, acyc), in PureRA form.
//
// For each Boolean variable b of Ψ there are shared variables t_b and f_b
// (initially 0); a view vw encodes b via
//   (vw(t_b) = 0 ⟺ b = 1)  ∧  (vw(f_b) = 0 ⟺ b = 0),
// i.e. a thread's opinion on b is expressed by which init messages it can
// still read. The generated program c_env is a nondeterministic choice of
// the roles
//   c_AG      — assignment guesser: pick(b) stores 1 to t_b (b := 0) or
//               f_b (b := 1) for every variable, then raises the start
//               flag s whose message carries the guess in its view;
//   c_SATC    — reads s, checks Φ by reading the still-readable init
//               messages, and records the value of u_n in a_{n,·};
//   c_FE[i]   — reads witnesses a_{i+1,0} and a_{i+1,1} (joining their
//               views), checks that e_{i+1} remained consistent (both
//               witnesses used the same value — otherwise both init
//               messages are overwritten in the joined view) and records
//               the value of u_i in a_{i,·};
//   c_assert  — reads a_{0,0} and a_{0,1} and fails the assertion.
// The program is unsafe iff Ψ is true (Theorem 5.1).
#ifndef RAPAR_LOWERBOUND_TQBF_REDUCTION_H_
#define RAPAR_LOWERBOUND_TQBF_REDUCTION_H_

#include "core/param_system.h"
#include "lowerbound/qbf.h"

namespace rapar {

// Builds the PureRA program c_env for Ψ. The result is in
// env(nocas, acyc); IsPureRA holds for it.
Program TqbfToPureRa(const Qbf& qbf);

// Convenience: the full parameterized system (no dis threads).
Expected<ParamSystem> TqbfSystem(const Qbf& qbf);

// The same reduction with the asserting role as the distinguished
// thread: env keeps the guesser/checker roles, dis reads both level-0
// witnesses and fails the assertion. Unsafe iff Ψ is true, exactly like
// TqbfSystem, but the verdict goes through the dis-run guess machinery
// (Lemmas 4.3/4.4) instead of the goal-message shortcut.
Expected<ParamSystem> TqbfDisSystem(const Qbf& qbf);

// The witness-generation form of the reduction — the induction behind
// Theorem 5.1 stated as MG queries (§4.1): drop the assert role and ask
// whether the level-i witness message (a_{i,j}, 1) can be generated.
// (a_{i,1}, 1) is generable iff the quantifier suffix from level i is
// true with u_i = 1, and (a_{i,0}, 1) likewise with u_i = 0; by
// parameterized monotonicity Ψ is true iff both level-0 witnesses are
// generable. Higher levels involve fewer roles, so the MG query's
// backward cone shrinks with i — the family that exercises query-driven
// demand slicing on the hardness construction.
struct TqbfWitnessQuery {
  Expected<ParamSystem> system;  // AG/SATC/FE roles only, no assert
  VarId goal_var;                // a_{level,j}
  Value goal_value;              // 1
};
TqbfWitnessQuery TqbfLevelQuery(const Qbf& qbf, int level, int j = 0);

}  // namespace rapar

#endif  // RAPAR_LOWERBOUND_TQBF_REDUCTION_H_
