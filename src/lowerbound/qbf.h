// Quantified Boolean formulas in the paper's shape (§5):
//   Ψ = ∀u_0 ∃e_1 ∀u_1 … ∃e_n ∀u_n Φ(u_0, e_1, …, u_n)
// with Φ quantifier-free in negation normal form. TQBF for this shape is
// PSPACE-complete.
#ifndef RAPAR_LOWERBOUND_QBF_H_
#define RAPAR_LOWERBOUND_QBF_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rapar {

// NNF propositional formula over variable indices 0..m-1.
struct QbfFormula;
using QbfFormulaPtr = std::shared_ptr<const QbfFormula>;

struct QbfFormula {
  enum class Kind { kLit, kAnd, kOr };
  Kind kind = Kind::kLit;
  int var = 0;            // kLit
  bool negated = false;   // kLit
  std::vector<QbfFormulaPtr> children;  // kAnd / kOr
};

QbfFormulaPtr QLit(int var, bool negated = false);
QbfFormulaPtr QAnd(std::vector<QbfFormulaPtr> children);
QbfFormulaPtr QOr(std::vector<QbfFormulaPtr> children);

// A QBF in the paper's alternation shape. With alternation depth n there
// are 2n+1 variables: indices 0, 2, 4, …, 2n are the universals u_0..u_n;
// odd indices 1, 3, …, 2n-1 are the existentials e_1..e_n.
struct Qbf {
  int n = 0;  // number of ∃ quantifiers
  QbfFormulaPtr matrix;

  int num_vars() const { return 2 * n + 1; }
  // Variable index of u_i (0 <= i <= n) resp. e_i (1 <= i <= n).
  static int U(int i) { return 2 * i; }
  static int E(int i) { return 2 * i - 1; }
  static bool IsUniversal(int var) { return var % 2 == 0; }

  std::string ToString() const;
};

// Decides Ψ by direct recursive expansion (exponential; the reference
// oracle for the reduction tests).
bool EvalQbf(const Qbf& qbf);

// Evaluates the matrix under a full assignment.
bool EvalMatrix(const QbfFormula& f, const std::vector<bool>& assignment);

// Random QBF in the paper shape: alternation depth n, matrix a random
// NNF tree with ~`literals` leaves.
Qbf RandomQbf(Rng& rng, int n, int literals);

}  // namespace rapar

#endif  // RAPAR_LOWERBOUND_QBF_H_
