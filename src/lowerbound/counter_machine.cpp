#include "lowerbound/counter_machine.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <set>
#include <tuple>

namespace rapar {

Program CounterMachineToEnvCas(const CounterMachine& machine,
                               int counter_bound) {
  assert(machine.num_states >= 1 && counter_bound >= 1);
  const Value dom = std::max(
      {static_cast<Value>(machine.num_states),
       static_cast<Value>(counter_bound + 1), Value{2}});

  VarTable vars;
  const VarId lock = vars.Add("lock");
  const VarId pc = vars.Add("pc");
  const std::array<VarId, 2> ctr = {vars.Add("c0"), vars.Add("c1")};
  RegTable regs;
  const RegId zero = regs.Add("zero");
  const RegId one = regs.Add("one");
  const RegId r = regs.Add("r");
  const RegId q = regs.Add("q");

  auto goto_state = [&](int s) {
    return SSeq(SAssign(q, EConst(s)), SStore(pc, q));
  };

  // One arm per machine instruction (guarded by the current state).
  std::vector<StmtPtr> arms;
  for (const CounterMachine::Instr& ins : machine.instrs) {
    const VarId c = ctr[ins.counter];
    std::vector<StmtPtr> seq;
    seq.push_back(SAssume(ERegEq(r, ins.from)));
    switch (ins.op) {
      case CounterMachine::Op::kInc:
        seq.push_back(SLoad(q, c));
        seq.push_back(SAssume(ELt(EReg(q), EConst(counter_bound))));
        seq.push_back(SAssign(q, EAdd(EReg(q), EConst(1))));
        seq.push_back(SStore(c, q));
        seq.push_back(goto_state(ins.to));
        break;
      case CounterMachine::Op::kDec:
        seq.push_back(SLoad(q, c));
        seq.push_back(SAssume(ELt(EConst(0), EReg(q))));
        seq.push_back(SAssign(q, ESub(EReg(q), EConst(1))));
        seq.push_back(SStore(c, q));
        seq.push_back(goto_state(ins.to));
        break;
      case CounterMachine::Op::kJz: {
        // Two arms: zero branch and non-zero branch.
        std::vector<StmtPtr> z = seq;
        z.push_back(SLoad(q, c));
        z.push_back(SAssume(ERegEq(q, 0)));
        z.push_back(goto_state(ins.to));
        arms.push_back(SSeqN(std::move(z)));
        seq.push_back(SLoad(q, c));
        seq.push_back(SAssume(ENe(EReg(q), EConst(0))));
        seq.push_back(goto_state(ins.to_nz));
        break;
      }
    }
    arms.push_back(SSeqN(std::move(seq)));
  }

  // A simulator thread: acquire the lock (exactly-once successor of the
  // previous release, by CAS adjacency), perform one step on the carried
  // state, release.
  StmtPtr simulator = SSeqN(
      {SCas(lock, zero, one), SLoad(r, pc), SChoiceN(std::move(arms)),
       SStore(lock, zero)});

  // The observer: any thread that ever reads the halt state fails.
  StmtPtr observer = SSeqN({SLoad(r, pc), SAssume(ERegEq(r, machine.halt)),
                            SAssertFail()});

  StmtPtr body =
      SSeqN({SAssign(zero, EConst(0)), SAssign(one, EConst(1)),
             SChoice(std::move(simulator), std::move(observer))});
  return Program("counter_machine_env", std::move(vars), std::move(regs),
                 dom, std::move(body));
}

bool MachineHalts(const CounterMachine& machine, int counter_bound,
                  int max_steps) {
  using State = std::tuple<int, int, int>;  // (state, c0, c1)
  std::set<State> seen;
  std::deque<std::pair<State, int>> frontier;
  const State init{machine.initial, 0, 0};
  seen.insert(init);
  frontier.push_back({init, 0});
  while (!frontier.empty()) {
    auto [st, depth] = frontier.front();
    frontier.pop_front();
    auto [s, c0, c1] = st;
    if (s == machine.halt) return true;
    if (depth >= max_steps) continue;
    for (const CounterMachine::Instr& ins : machine.instrs) {
      if (ins.from != s) continue;
      int c = ins.counter == 0 ? c0 : c1;
      std::vector<std::pair<int, int>> next;  // (state, new counter)
      switch (ins.op) {
        case CounterMachine::Op::kInc:
          if (c < counter_bound) next.push_back({ins.to, c + 1});
          break;
        case CounterMachine::Op::kDec:
          if (c > 0) next.push_back({ins.to, c - 1});
          break;
        case CounterMachine::Op::kJz:
          next.push_back(c == 0 ? std::pair{ins.to, c}
                                : std::pair{ins.to_nz, c});
          break;
      }
      for (auto [ns, nc] : next) {
        State nstate{ns, ins.counter == 0 ? nc : c0,
                     ins.counter == 1 ? nc : c1};
        if (seen.insert(nstate).second) {
          frontier.push_back({nstate, depth + 1});
        }
      }
    }
  }
  return false;
}

}  // namespace rapar
