#include "lowerbound/qbf.h"

#include <cassert>

#include "common/strings.h"

namespace rapar {

QbfFormulaPtr QLit(int var, bool negated) {
  auto f = std::make_shared<QbfFormula>();
  f->kind = QbfFormula::Kind::kLit;
  f->var = var;
  f->negated = negated;
  return f;
}

QbfFormulaPtr QAnd(std::vector<QbfFormulaPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto f = std::make_shared<QbfFormula>();
  f->kind = QbfFormula::Kind::kAnd;
  f->children = std::move(children);
  return f;
}

QbfFormulaPtr QOr(std::vector<QbfFormulaPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto f = std::make_shared<QbfFormula>();
  f->kind = QbfFormula::Kind::kOr;
  f->children = std::move(children);
  return f;
}

bool EvalMatrix(const QbfFormula& f, const std::vector<bool>& assignment) {
  switch (f.kind) {
    case QbfFormula::Kind::kLit: {
      bool v = assignment[f.var];
      return f.negated ? !v : v;
    }
    case QbfFormula::Kind::kAnd:
      for (const auto& c : f.children) {
        if (!EvalMatrix(*c, assignment)) return false;
      }
      return true;
    case QbfFormula::Kind::kOr:
      for (const auto& c : f.children) {
        if (EvalMatrix(*c, assignment)) return true;
      }
      return false;
  }
  return false;
}

namespace {

bool EvalFrom(const Qbf& qbf, std::vector<bool>& assignment, int var) {
  if (var == qbf.num_vars()) return EvalMatrix(*qbf.matrix, assignment);
  const bool universal = Qbf::IsUniversal(var);
  for (bool v : {false, true}) {
    assignment[var] = v;
    const bool sub = EvalFrom(qbf, assignment, var + 1);
    if (universal && !sub) return false;
    if (!universal && sub) return true;
  }
  return universal;
}

std::string FormulaToString(const QbfFormula& f) {
  switch (f.kind) {
    case QbfFormula::Kind::kLit: {
      std::string name =
          Qbf::IsUniversal(f.var)
              ? StrCat("u", f.var / 2)
              : StrCat("e", (f.var + 1) / 2);
      return f.negated ? "!" + name : name;
    }
    case QbfFormula::Kind::kAnd: {
      std::vector<std::string> parts;
      for (const auto& c : f.children) parts.push_back(FormulaToString(*c));
      return "(" + Join(parts, " & ") + ")";
    }
    case QbfFormula::Kind::kOr: {
      std::vector<std::string> parts;
      for (const auto& c : f.children) parts.push_back(FormulaToString(*c));
      return "(" + Join(parts, " | ") + ")";
    }
  }
  return "?";
}

QbfFormulaPtr RandomFormula(Rng& rng, int num_vars, int leaves, int depth) {
  if (leaves <= 1 || depth <= 0) {
    return QLit(static_cast<int>(rng.Below(num_vars)), rng.Chance(1, 2));
  }
  const int left = rng.IntIn(1, leaves - 1);
  std::vector<QbfFormulaPtr> children;
  children.push_back(RandomFormula(rng, num_vars, left, depth - 1));
  children.push_back(RandomFormula(rng, num_vars, leaves - left, depth - 1));
  return rng.Chance(1, 2) ? QAnd(std::move(children))
                          : QOr(std::move(children));
}

}  // namespace

bool EvalQbf(const Qbf& qbf) {
  assert(qbf.matrix != nullptr);
  std::vector<bool> assignment(qbf.num_vars(), false);
  return EvalFrom(qbf, assignment, 0);
}

std::string Qbf::ToString() const {
  std::string out;
  for (int i = 0; i <= n; ++i) {
    out += StrCat("Au", i, ".");
    if (i < n) out += StrCat("Ee", i + 1, ".");
  }
  out += " " + FormulaToString(*matrix);
  return out;
}

Qbf RandomQbf(Rng& rng, int n, int literals) {
  Qbf qbf;
  qbf.n = n;
  qbf.matrix = RandomFormula(rng, qbf.num_vars(), literals, 6);
  return qbf;
}

}  // namespace rapar
