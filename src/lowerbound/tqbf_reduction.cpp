#include "lowerbound/tqbf_reduction.h"

#include <array>
#include <cassert>

#include "common/strings.h"

namespace rapar {

namespace {

// Assembles c_env statement-by-statement against shared symbol tables.
class ReductionBuilder {
 public:
  explicit ReductionBuilder(const Qbf& qbf) : qbf_(qbf) {
    // Shared variables: t_b / f_b per Boolean variable, the start flag s,
    // and the level witnesses a_{i,0}, a_{i,1} for 0 <= i <= n.
    t_.resize(qbf.num_vars());
    f_.resize(qbf.num_vars());
    for (int b = 0; b < qbf.num_vars(); ++b) {
      const std::string name = VarName(b);
      t_[b] = vars_.Add("t_" + name);
      f_[b] = vars_.Add("f_" + name);
    }
    s_ = vars_.Add("s");
    a_.resize(qbf.n + 1);
    for (int i = 0; i <= qbf.n; ++i) {
      a_[i][0] = vars_.Add(StrCat("a_", i, "_0"));
      a_[i][1] = vars_.Add(StrCat("a_", i, "_1"));
    }
    one_ = regs_.Add("one");
    tmp_ = regs_.Add("tmp");
  }

  Program Build(bool assert_in_env = true) {
    std::vector<StmtPtr> roles;
    roles.push_back(Ag());
    roles.push_back(Satc());
    for (int i = qbf_.n - 1; i >= 0; --i) roles.push_back(Fe(i));
    if (assert_in_env) roles.push_back(AssertRole());
    // one := 1 precedes the role choice (PureRA store source).
    StmtPtr body =
        SSeq(SAssign(one_, EConst(1)), SChoiceN(std::move(roles)));
    return Program("tqbf_env", vars_, regs_, /*dom=*/2, std::move(body));
  }

  // The asserting role as a standalone program (same symbol tables), for
  // the distinguished-thread variant of the reduction.
  Program BuildAssertThread() {
    return Program("tqbf_assert", vars_, regs_, /*dom=*/2, AssertRole());
  }

  VarId WitnessVar(int level, int j) const { return a_[level][j]; }

 private:
  static std::string VarName(int b) {
    return Qbf::IsUniversal(b) ? StrCat("u", b / 2)
                               : StrCat("e", (b + 1) / 2);
  }

  // Load-and-check: tmp := x; assume tmp == d.
  StmtPtr ReadCheck(VarId x, Value d) {
    return SSeq(SLoad(tmp_, x), SAssume(ERegEq(tmp_, d)));
  }
  // Store 1 (PureRA store).
  StmtPtr StoreOne(VarId x) { return SStore(x, one_); }

  // pick(b): choose the value of b. Storing 1 to t_b makes the init
  // message of t_b unreadable in this thread's view, i.e. b := 0;
  // storing to f_b encodes b := 1.
  StmtPtr Pick(int b) {
    return SChoice(StoreOne(t_[b]), StoreOne(f_[b]));
  }

  // The truth of literal (b / !b) under the view encoding: the matching
  // init message must still be readable.
  StmtPtr CheckLiteral(int b, bool negated) {
    return ReadCheck(negated ? f_[b] : t_[b], 0);
  }

  StmtPtr CheckFormula(const QbfFormula& phi) {
    switch (phi.kind) {
      case QbfFormula::Kind::kLit:
        return CheckLiteral(phi.var, phi.negated);
      case QbfFormula::Kind::kAnd: {
        std::vector<StmtPtr> seq;
        for (const auto& c : phi.children) seq.push_back(CheckFormula(*c));
        return SSeqN(std::move(seq));
      }
      case QbfFormula::Kind::kOr: {
        std::vector<StmtPtr> branches;
        for (const auto& c : phi.children) {
          branches.push_back(CheckFormula(*c));
        }
        return SChoiceN(std::move(branches));
      }
    }
    assert(false);
    return SSkip();
  }

  // c_AG: guess an assignment for every variable in prefix order, then
  // raise the start flag (its message view carries the guess).
  StmtPtr Ag() {
    std::vector<StmtPtr> seq;
    for (int b = 0; b < qbf_.num_vars(); ++b) seq.push_back(Pick(b));
    seq.push_back(StoreOne(s_));
    return SSeqN(std::move(seq));
  }

  // Record the value of universal u_i into a_{i,·}: reading t_{u_i} == 0
  // means u_i = 1 (write a_{i,1}); reading f_{u_i} == 0 means u_i = 0.
  StmtPtr RecordU(int i) {
    const int b = Qbf::U(i);
    return SChoice(
        SSeq(ReadCheck(t_[b], 0), StoreOne(a_[i][1])),
        SSeq(ReadCheck(f_[b], 0), StoreOne(a_[i][0])));
  }

  // c_SATC: adopt a guess via s, verify Φ, record u_n.
  StmtPtr Satc() {
    return SSeqN({ReadCheck(s_, 1), CheckFormula(*qbf_.matrix),
                  RecordU(qbf_.n)});
  }

  // c_FE[i]: discharge ∃e_{i+1} ∀u_{i+1}.
  StmtPtr Fe(int i) {
    const int e = Qbf::E(i + 1);
    std::vector<StmtPtr> seq;
    seq.push_back(ReadCheck(a_[i + 1][0], 1));
    seq.push_back(ReadCheck(a_[i + 1][1], 1));
    // Consistency of e_{i+1}: after joining both witness views, one of
    // t_e / f_e must still be readable — both witnesses agreed on e.
    seq.push_back(SChoice(ReadCheck(f_[e], 0), ReadCheck(t_[e], 0)));
    seq.push_back(RecordU(i));
    return SSeqN(std::move(seq));
  }

  StmtPtr AssertRole() {
    return SSeqN({ReadCheck(a_[0][0], 1), ReadCheck(a_[0][1], 1),
                  SAssertFail()});
  }

  const Qbf& qbf_;
  VarTable vars_;
  RegTable regs_;
  std::vector<VarId> t_, f_;
  VarId s_;
  std::vector<std::array<VarId, 2>> a_;
  RegId one_, tmp_;
};

}  // namespace

Program TqbfToPureRa(const Qbf& qbf) {
  assert(qbf.matrix != nullptr);
  ReductionBuilder builder(qbf);
  return builder.Build();
}

Expected<ParamSystem> TqbfSystem(const Qbf& qbf) {
  ParamSystem::Builder b;
  b.Env(TqbfToPureRa(qbf));
  return b.Build();
}

TqbfWitnessQuery TqbfLevelQuery(const Qbf& qbf, int level, int j) {
  assert(qbf.matrix != nullptr);
  assert(level >= 0 && level <= qbf.n);
  assert(j == 0 || j == 1);
  ReductionBuilder builder(qbf);
  ParamSystem::Builder b;
  b.Env(builder.Build(/*assert_in_env=*/false));
  return TqbfWitnessQuery{b.Build(), builder.WitnessVar(level, j),
                          Value{1}};
}

Expected<ParamSystem> TqbfDisSystem(const Qbf& qbf) {
  assert(qbf.matrix != nullptr);
  ReductionBuilder builder(qbf);
  Program env = builder.Build(/*assert_in_env=*/false);
  Program assert_thread = builder.BuildAssertThread();
  ParamSystem::Builder b;
  b.Env(std::move(env)).Dis(std::move(assert_thread));
  return b.Build();
}

}  // namespace rapar
