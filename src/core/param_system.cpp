#include "core/param_system.h"

#include "common/strings.h"
#include "lang/transform.h"
#include "lang/unroll.h"

namespace rapar {

namespace {

// Remaps `program` onto the unified variable table, registering any new
// variables.
Program UnifyVars(const Program& program, VarTable& vars) {
  std::vector<VarId> mapping;
  mapping.reserve(program.vars().size());
  for (const std::string& name : program.vars().names()) {
    mapping.push_back(vars.Add(name));
  }
  Program out(program.name(), VarTable{}, program.regs(), program.dom(),
              RemapVars(program.body(), mapping));
  return out;
}

// Replaces a program's (empty) variable table by the unified one.
Program WithVars(const Program& program, const VarTable& vars) {
  return Program(program.name(), vars, program.regs(), program.dom(),
                 program.body());
}

}  // namespace

Expected<ParamSystem> ParamSystem::Builder::Build() const {
  if (!have_env_) {
    return Expected<ParamSystem>::Error("no env program set");
  }
  ParamSystem sys;
  sys.dom_ = env_.dom();

  // Unified variable table: env's variables first, then new dis variables
  // in order of appearance.
  Program env = UnifyVars(env_, sys.vars_);
  std::vector<Program> dis;
  for (const Program& d : dis_) {
    if (d.dom() != sys.dom_) {
      return Expected<ParamSystem>::Error(
          StrCat("domain mismatch: env has dom ", sys.dom_, ", dis '",
                 d.name(), "' has dom ", d.dom()));
    }
    dis.push_back(UnifyVars(d, sys.vars_));
  }
  // Attach the now-complete table to every program (the table must be
  // final before this point: CFAs and explorers require every program to
  // see the full variable universe).
  sys.env_program_ = WithVars(env, sys.vars_);
  for (Program& d : dis) {
    Program unified = WithVars(d, sys.vars_);
    Classification c = Classify(unified);
    if (!c.loop_free) {
      if (unroll_ <= 0) {
        return Expected<ParamSystem>::Error(
            StrCat("dis program '", unified.name(),
                   "' has loops; set UnrollDis(k) to bound them"));
      }
      unified = UnrollProgram(unified, unroll_);
    }
    sys.dis_programs_.push_back(std::move(unified));
  }

  // Class validation: Table 1 requires CAS-freedom of the env threads
  // specifically (dis threads may CAS).
  Classification env_class = Classify(sys.env_program_);
  if (!env_class.cas_free) {
    return Expected<ParamSystem>::Error(
        StrCat("env program '", sys.env_program_.name(),
               "' must be CAS-free: ", env_class.cas_detail,
               " puts the system in env(cas), undecidable (Theorem 1.1); "
               "rejected"));
  }

  sys.env_cfa_ = std::make_unique<Cfa>(Cfa::Build(sys.env_program_));
  for (const Program& d : sys.dis_programs_) {
    sys.dis_cfas_.push_back(std::make_unique<Cfa>(Cfa::Build(d)));
  }
  sys.simpl_.env = sys.env_cfa_.get();
  for (const auto& d : sys.dis_cfas_) sys.simpl_.dis.push_back(d.get());
  sys.simpl_.dom = sys.dom_;
  sys.simpl_.num_vars = sys.vars_.size();
  return sys;
}

int ParamSystem::TimestampBudget() const {
  int t = 0;
  for (const auto& d : dis_cfas_) t += d->CountStoreInstructions();
  return t;
}

int ParamSystem::Q0() const {
  std::size_t dis_size = 0;
  for (const auto& d : dis_cfas_) dis_size += d->edges().size();
  return static_cast<int>(dom_ * static_cast<Value>(vars_.size()) +
                          static_cast<Value>(dis_size));
}

std::string ParamSystem::Signature() const {
  Classification env_class = Classify(env_program_);
  std::string out = StrCat("env(", env_class.ToString(), ")");
  std::vector<Classification> dis_classes;
  for (std::size_t i = 0; i < dis_programs_.size(); ++i) {
    dis_classes.push_back(Classify(dis_programs_[i]));
    out += StrCat(" || dis", i + 1, "(", dis_classes.back().ToString(), ")");
  }
  // Append the paper's Table 1 class of the whole system.
  out += StrCat("  [", ClassifySystem(env_class, dis_classes).ToString(), "]");
  return out;
}

}  // namespace rapar
