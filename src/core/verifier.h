// SafetyVerifier: the library's main entry point.
//
//   ParamSystem sys = ParamSystem::Builder().Env(producer).Dis(consumer)
//                         .Build().value();
//   SafetyVerifier verifier(sys);
//   VerifierOptions options;                   // pick backend + knobs
//   Verdict v = verifier.Run(std::nullopt, options);  // assert-false
//   Verdict m = verifier.Run(std::pair{x, d}, options);  // MG (§4.1)
//
// Run() is the single entry point: the goal selects the question
// (std::nullopt = assert-false reachability, a (var, val) pair = Message
// Generation), VerifierOptions::backend selects the engine. The legacy
// Verify()/VerifyMessageGeneration() wrappers survive as deprecated
// aliases of Run().
//
// Backends:
//   kSimplifiedExplorer — saturation over the simplified semantics (§3);
//                         sound & complete (Theorem 3.4), the default.
//   kDatalog            — Theorem 4.1: enumerate makeP guesses, evaluate
//                         the emitted Cache Datalog query instances.
//   kConcrete           — standard RA semantics with a fixed number of env
//                         threads (sound for bugs; not parameterized).
//   kTmai               — thread-modular abstract interpretation (see
//                         tmai/tmai.h): sound for kSafe, never kUnsafe;
//                         answers kUnknown when the abstraction reaches
//                         the error location.
//   kPortfolio          — races TMAI, the simplified explorer and the
//                         Datalog backend; first definitive answer wins
//                         and the losers are cancelled cooperatively.
//
// Results carry a single obs::Telemetry registry with every statistic the
// run produced under a stable dotted name (see obs/telemetry.h). The
// pre-telemetry flat counter fields survive as deprecated accessor
// methods that read the registry back; new code should query
// Verdict::telemetry directly.
#ifndef RAPAR_CORE_VERIFIER_H_
#define RAPAR_CORE_VERIFIER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "analysis/prepass.h"
#include "common/cancellation.h"
#include "core/param_system.h"
#include "datalog/engine.h"
#include "dlopt/optimize.h"
#include "encoding/datalog_verifier.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tmai/tmai.h"

namespace rapar {

enum class Backend {
  kSimplifiedExplorer,
  kDatalog,
  kConcrete,
  kTmai,
  kPortfolio,
};

// Knobs that only the Datalog backend reads.
struct DatalogBackendOptions {
  // Optimize every emitted query instance (dead-rule, demand
  // specialization, dedup/subsumption — see src/dlopt/optimize.h) before
  // evaluation. Verdict-preserving; pruned counts land in the dlopt.*
  // metrics.
  bool enable_dlopt = true;
  // Evaluation-core tuning — argument-hash join indexes, cheapest-first
  // body ordering, EDB snapshot reuse across guesses (dl::EngineOptions).
  // All on by default; the bench_backends index ablation flips them off
  // to measure the effect.
  dl::EngineOptions engine;
  // Worker threads for the per-guess solves. 1 = legacy serial loop,
  // 0 = std::thread::hardware_concurrency(), N > 1 = work-stealing pool
  // of N workers. Verdict, witness and aggregate statistics are
  // thread-count independent (see encoding/datalog_verifier.h).
  unsigned threads = 1;
  // Guesses per work unit pulled from the streaming enumerator.
  std::size_t batch_size = 32;
  // Borrowed warm engine for the serial path (threads == 1): arena and
  // interned-fact reuse across Verify calls instead of a cold engine per
  // request. Used by the serve daemon (core/serve.h), which keeps one
  // engine per pool worker alive across requests. Ignored when
  // threads != 1 — the parallel driver owns one engine per worker.
  dl::Engine* warm_engine = nullptr;
  // ---- Sharding / checkpoint / resume (DESIGN.md §14) ----
  // Stride sharding of the guess enumeration: this run scans exactly the
  // global indices ≡ shard_index (mod shard_count). The default (0 of 1)
  // scans everything. The `rapar_cli verify --shards=N` orchestrator
  // merges per-shard envelopes under first-terminating-event-wins.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  // Resume: skip global indices below start_index (scanned by a previous
  // run) and carry its solve count so guess accounting matches an
  // uninterrupted run. Both typically come from a CursorCheckpoint.
  std::size_t start_index = 0;
  std::size_t resume_scanned_base = 0;
  // Periodic checkpoint emission: every `checkpoint_every` solves (0 =
  // off) plus whenever the scan stops without a definitive verdict, a
  // CursorCheckpoint goes through the sink (the CLI writes it to
  // --checkpoint=FILE atomically).
  std::size_t checkpoint_every = 0;
  std::function<void(const CursorCheckpoint&)> checkpoint_sink;
  // Stop after this many solves in this invocation (0 = unlimited);
  // deterministic truncation for kill-and-resume (stopped_phase becomes
  // "scan-limit").
  std::size_t scan_limit = 0;
};

// Knobs that only the concrete (standard-RA) backend reads.
struct ConcreteBackendOptions {
  // Number of env threads in the verified instance.
  int env_threads = 2;
};

// Knobs that only the TMAI backend reads (see tmai/tmai.h). The
// portfolio backend runs TMAI with the same knobs as its first stage.
struct TmaiBackendOptions {
  // Interference fixpoint rounds before giving up (kUnknown).
  int max_iterations = 64;
  // Joins at one CFA node before the disjuncts are widened.
  int widening_delay = 8;
  // Explicit value-set size beyond which a set becomes top.
  int value_set_limit = 16;
  // Abstract domain: kSmallSet is the PR6 per-variable value-set domain;
  // kRelational layers the per-variable-pair must-domain on top
  // (tmai/relational.h) and can prove mutual-exclusion properties the
  // small-set domain cannot; kAuto (the verifier default) runs small-set
  // first and retries relationally only on kUnknown, so easy proofs stay
  // cheap.
  tmai::Domain domain = tmai::Domain::kAuto;
};

// Observability configuration. The recorder pointer is borrowed — the
// caller owns it and keeps it alive across the Verify call; null (the
// default) disables tracing at near-zero cost (see obs/trace.h).
struct ObsOptions {
  obs::TraceRecorder* trace = nullptr;
};

struct VerifierOptions {
  Backend backend = Backend::kSimplifiedExplorer;
  // Run the analysis pre-pass (dead-edge elimination, guard folding,
  // store slicing, dead-assignment dropping — see analysis/prepass.h)
  // before handing the CFAs to the backend. Verdict-preserving; the
  // pruned counts are reported in the prepass.* metrics.
  bool enable_prepass = true;
  // Per-backend knobs, grouped by the backend that reads them.
  DatalogBackendOptions datalog;
  ConcreteBackendOptions concrete;
  TmaiBackendOptions tmai;
  ObsOptions obs;
  // Borrowed external cancellation (advisory): when it fires, backends
  // stop at the next check and the verdict degrades to kUnknown. Null
  // disables. The portfolio driver uses this to cancel losing backends.
  const CancellationToken* cancel = nullptr;
  // Resource bounds (apply per backend as applicable). time_budget_ms is
  // a wall-clock deadline enforced cooperatively by every backend; on
  // expiry the verdict degrades to kUnknown and Verdict::stopped_phase
  // names the phase that was cut short.
  std::size_t max_states = 1'000'000;
  int max_depth = 100'000;
  long long time_budget_ms = 0;
  std::size_t max_guesses = 200'000;
};

struct Verdict {
  enum class Result { kSafe, kUnsafe, kUnknown };
  Result result = Result::kUnknown;

  bool unsafe() const { return result == Result::kUnsafe; }
  bool safe() const { return result == Result::kSafe; }

  // Human-readable witness (step trace or guess) when unsafe.
  std::string witness;
  // §4.3: over-approximate number of env threads sufficient to exhibit
  // the bug (from the witness dependency graph); unset when safe or not
  // computed.
  std::optional<long long> env_thread_bound;
  // Static width/solver classification of the first optimized query
  // instance (Datalog backend only).
  std::string width_report;
  // Phase a wall-clock deadline stopped ("explore" for the state-space
  // backends, "solve" for the Datalog guess scan, "fixpoint" for TMAI);
  // empty when no deadline fired. A non-empty value implies the search
  // was truncated.
  std::string stopped_phase;
  // Which backend actually produced this verdict ("simplified",
  // "datalog", "concrete", "tmai", "portfolio:<winner>"). Filled by
  // every Run* path so envelopes stay unambiguous when the portfolio
  // driver or a budget/deadline is involved.
  std::string backend;
  // Every statistic of the run, keyed by the stable names in
  // obs/telemetry.h (verify.*, engine.*, datalog.*, prepass.*, dlopt.*,
  // parallel.*, phase.*).
  obs::Telemetry telemetry;
  // Machine-checkable invariant certificate justifying a TMAI kSafe
  // verdict (tmai/certcheck.h). Set only when the TMAI backend (directly
  // or as the winning portfolio stage) proved safety; null otherwise, so
  // certificate-free JSON envelopes are unchanged. Re-validate with
  // `rapar_cli certcheck` or tmai::CheckCertificate.
  std::shared_ptr<const tmai::Certificate> certificate;

  // --- deprecated accessors --------------------------------------------
  // The pre-obs flat fields, reconstructed from `telemetry`. Kept so the
  // migration is mechanical (`v.states` -> `v.states()`); prefer
  // telemetry.counter(obs::metric::...) in new code.
  std::size_t states() const;   // explored abstract/concrete states
  std::size_t guesses() const;  // Datalog backend: makeP executions
  std::size_t tuples() const;   // Datalog backend: derived tuples
  std::size_t rule_firings() const;
  std::size_t join_attempts() const;
  std::size_t index_probes() const;
  std::size_t index_hits() const;
  std::size_t index_builds() const;
  std::size_t fact_reuses() const;
  std::size_t merge_scans() const;  // columnar storage: merge-scan probes
  // Index of the guess whose query blew the tuple budget; kNoGuessIndex
  // when no abort occurred.
  std::size_t budget_aborted_guess() const;
  // What the analysis pre-pass pruned.
  PrepassStats prepass() const;
  // What the Datalog program optimizer pruned, summed over all evaluated
  // query instances.
  ::rapar::dlopt::DlOptStats dlopt() const;
  // Parallel-driver telemetry (threads, batches, steals, early exit).
  ParallelStats parallel() const;

  std::string ToString() const;
};

class SafetyVerifier {
 public:
  explicit SafetyVerifier(const ParamSystem& system) : system_(system) {}

  // The single entry point. The goal selects the question — std::nullopt
  // asks assert-false reachability, a (var, val) pair asks Message
  // Generation (§4.1) — and options.backend selects the engine. The
  // per-backend Run* entry points this replaced live on as file-local
  // dispatch targets in verifier.cpp.
  Verdict Run(std::optional<std::pair<VarId, Value>> goal,
              const VerifierOptions& options = {}) const;

  // Deprecated: thin wrapper over Run(std::nullopt, options).
  Verdict Verify(const VerifierOptions& options = {}) const;

  // Deprecated: thin wrapper over Run(std::pair{var, val}, options).
  Verdict VerifyMessageGeneration(VarId var, Value val,
                                  const VerifierOptions& options = {}) const;

 private:
  const ParamSystem& system_;
};

}  // namespace rapar

#endif  // RAPAR_CORE_VERIFIER_H_
