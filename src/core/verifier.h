// SafetyVerifier: the library's main entry point.
//
//   ParamSystem sys = ParamSystem::Builder().Env(producer).Dis(consumer)
//                         .Build().value();
//   SafetyVerifier verifier(sys);
//   Verdict v = verifier.Verify();             // assert-false reachability
//   Verdict m = verifier.VerifyMessageGeneration(x, d);  // MG (§4.1)
//
// Backends:
//   kSimplifiedExplorer — saturation over the simplified semantics (§3);
//                         sound & complete (Theorem 3.4), the default.
//   kDatalog            — Theorem 4.1: enumerate makeP guesses, evaluate
//                         the emitted Cache Datalog query instances.
//   kConcrete           — standard RA semantics with a fixed number of env
//                         threads (sound for bugs; not parameterized).
#ifndef RAPAR_CORE_VERIFIER_H_
#define RAPAR_CORE_VERIFIER_H_

#include <optional>
#include <string>

#include "analysis/prepass.h"
#include "core/param_system.h"
#include "datalog/engine.h"
#include "dlopt/optimize.h"
#include "encoding/datalog_verifier.h"

namespace rapar {

enum class Backend {
  kSimplifiedExplorer,
  kDatalog,
  kConcrete,
};

struct VerifierOptions {
  Backend backend = Backend::kSimplifiedExplorer;
  // Run the analysis pre-pass (dead-edge elimination, guard folding,
  // store slicing, dead-assignment dropping — see analysis/prepass.h)
  // before handing the CFAs to the backend. Verdict-preserving; the
  // pruned counts are reported in Verdict::prepass.
  bool enable_prepass = true;
  // kDatalog: optimize every emitted query instance (dead-rule, demand
  // specialization, dedup/subsumption — see src/dlopt/optimize.h) before
  // evaluation. Verdict-preserving; pruned counts land in Verdict::dlopt.
  bool enable_dlopt = true;
  // kDatalog: evaluation-core tuning — argument-hash join indexes,
  // cheapest-first body ordering, EDB snapshot reuse across guesses
  // (dl::EngineOptions). All on by default; the bench_backends index
  // ablation flips them off to measure the effect.
  dl::EngineOptions engine;
  // kDatalog: worker threads for the per-guess solves. 1 = legacy serial
  // loop, 0 = std::thread::hardware_concurrency(), N > 1 = work-stealing
  // pool of N workers. Verdict, witness and aggregate statistics are
  // thread-count independent (see encoding/datalog_verifier.h).
  unsigned threads = 1;
  // kConcrete: number of env threads in the instance.
  int concrete_env_threads = 2;
  // Resource bounds (apply per backend as applicable).
  std::size_t max_states = 1'000'000;
  int max_depth = 100'000;
  long long time_budget_ms = 0;
  std::size_t max_guesses = 200'000;
};

struct Verdict {
  enum class Result { kSafe, kUnsafe, kUnknown };
  Result result = Result::kUnknown;

  bool unsafe() const { return result == Result::kUnsafe; }
  bool safe() const { return result == Result::kSafe; }

  // Search statistics.
  std::size_t states = 0;   // explored abstract/concrete states
  std::size_t guesses = 0;  // Datalog backend: makeP executions
  std::size_t tuples = 0;   // Datalog backend: derived tuples
  // Datalog backend engine counters (summed across query instances).
  std::size_t rule_firings = 0;
  std::size_t join_attempts = 0;
  // Argument-hash index counters (zero with indexing disabled or on other
  // backends), and the number of solves that re-seeded the previous
  // guess's EDB snapshot instead of rebuilding the fact database.
  std::size_t index_probes = 0;
  std::size_t index_hits = 0;
  std::size_t index_builds = 0;
  std::size_t fact_reuses = 0;
  // Datalog backend: index of the guess whose query blew the tuple budget
  // (the scan stops there and the verdict degrades to kUnknown);
  // kNoGuessIndex when no abort occurred.
  std::size_t budget_aborted_guess = kNoGuessIndex;
  // Human-readable witness (step trace or guess) when unsafe.
  std::string witness;
  // §4.3: over-approximate number of env threads sufficient to exhibit
  // the bug (from the witness dependency graph); unset when safe or not
  // computed.
  std::optional<long long> env_thread_bound;
  // What the analysis pre-pass pruned (all zero when disabled or nothing
  // was prunable).
  PrepassStats prepass;
  // What the Datalog program optimizer pruned, summed over all evaluated
  // query instances (all zero when disabled or on other backends).
  dlopt::DlOptStats dlopt;
  // Static width/solver classification of the first optimized query
  // instance (Datalog backend only).
  std::string width_report;
  // Parallel-driver telemetry (Datalog backend): threads used, chunks
  // dispatched, deque steals, early-exit index.
  ParallelStats parallel;

  std::string ToString() const;
};

class SafetyVerifier {
 public:
  explicit SafetyVerifier(const ParamSystem& system) : system_(system) {}

  // Is some assertion violation reachable in some instance?
  Verdict Verify(const VerifierOptions& options = {}) const;

  // Message Generation (§4.1): can a message (var, val) be generated?
  Verdict VerifyMessageGeneration(VarId var, Value val,
                                  const VerifierOptions& options = {}) const;

 private:
  Verdict RunSimplified(std::optional<std::pair<VarId, Value>> goal,
                        const VerifierOptions& options) const;
  Verdict RunDatalog(std::optional<std::pair<VarId, Value>> goal,
                     const VerifierOptions& options) const;
  Verdict RunConcrete(std::optional<std::pair<VarId, Value>> goal,
                      const VerifierOptions& options) const;

  const ParamSystem& system_;
};

}  // namespace rapar

#endif  // RAPAR_CORE_VERIFIER_H_
